// The paper's motivating question (Sections 1 and 5): when is recovery-based
// routing preferable to avoidance-based routing?
//
// Unrestricted routing + true-deadlock recovery (DOR1, TFAR1, TFAR2) against
// avoidance baselines that spend VCs on restrictions instead (dateline DOR
// with 2 VCs, Duato's protocol with 3 VCs), matched on the bidirectional
// 16-ary 2-cube.
//
// Paper conclusion: with >= 2-3 unrestricted VCs deadlock becomes so
// improbable that recovery-based routing is viable and avoidance's routing
// restrictions are overly conservative.
#include "common.hpp"

namespace {

struct Contender {
  const char* name;
  flexnet::RoutingKind routing;
  int vcs;
};

}  // namespace

int main() {
  using namespace flexnet;
  namespace fb = flexnet::bench;

  fb::banner("Avoidance vs recovery (throughput / latency / deadlocks)");

  const std::vector<double> loads{0.1, 0.2, 0.3, 0.4, 0.5, 0.7};
  const Contender contenders[] = {
      {"DOR1+recovery", RoutingKind::DOR, 1},
      {"TFAR1+recovery", RoutingKind::TFAR, 1},
      {"TFAR2+recovery", RoutingKind::TFAR, 2},
      {"TFAR3+recovery", RoutingKind::TFAR, 3},
      {"DatelineDOR2 (avoidance)", RoutingKind::DatelineDOR, 2},
      {"DuatoTFAR3 (avoidance)", RoutingKind::DuatoTFAR, 3},
  };

  std::vector<std::vector<ExperimentResult>> all;
  for (const Contender& c : contenders) {
    ExperimentConfig cfg = fb::paper_default();
    cfg.sim.routing = c.routing;
    cfg.sim.vcs = c.vcs;
    all.push_back(sweep_loads(cfg, loads));
    fb::emit("avoidance_vs_recovery", c.name, all.back(),
             throughput_columns(), c.name);
  }

  std::cout << "Normalized accepted throughput by load:\n";
  std::printf("  %-26s", "scheme");
  for (const double load : loads) std::printf("  %5.2f", load);
  std::printf("  deadlocks\n");
  for (std::size_t ci = 0; ci < all.size(); ++ci) {
    std::printf("  %-26s", contenders[ci].name);
    std::int64_t deadlocks = 0;
    for (const auto& r : all[ci]) {
      std::printf("  %5.3f", r.normalized_throughput);
      deadlocks += r.window.deadlocks;
    }
    std::printf("  %lld\n", static_cast<long long>(deadlocks));
  }
  return 0;
}
