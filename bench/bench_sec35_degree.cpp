// Section 3.5 — Effect of network node degree on deadlocks.
//
// TFAR with 1 VC on a 16-ary 2-cube (2D) vs a 4-ary 4-cube (4D), both with
// 256 nodes, loads normalized per topology (total link bandwidth and average
// internode distance differ).
//
// Paper expectations: the 4D network sees <1% of the 2D network's deadlocks
// before saturation, keeps performing well beyond the 2D saturation load,
// and its few deadlocks are all single-cycle (adaptivity exhausted near the
// destination).
#include "common.hpp"

int main() {
  using namespace flexnet;
  namespace fb = flexnet::bench;

  fb::banner("Section 3.5: 16-ary 2-cube vs 4-ary 4-cube, TFAR, 1 VC");

  const std::vector<double> loads = fb::default_loads();

  ExperimentConfig d2 = fb::paper_default();
  d2.sim.routing = RoutingKind::TFAR;
  d2.sim.vcs = 1;
  const auto d2_results = sweep_loads(d2, loads);

  ExperimentConfig d4 = d2;
  d4.sim.topology.k = 4;
  d4.sim.topology.n = 4;
  const auto d4_results = sweep_loads(d4, loads);

  fb::emit("sec35", "16-ary 2-cube (2D): deadlocks vs load", d2_results,
           deadlock_columns(), "2D");
  fb::emit("sec35", "4-ary 4-cube (4D): deadlocks vs load", d4_results,
           deadlock_columns(), "4D");
  print_load_series(std::cout, "2D set sizes", d2_results, set_size_columns());
  std::cout << '\n';
  print_load_series(std::cout, "4D set sizes", d4_results, set_size_columns());

  std::cout << "\nSummary (paper: 4D has <1% of 2D's deadlocks; all 4D"
               " deadlocks single-cycle):\n";
  std::int64_t d2_total = 0;
  std::int64_t d4_total = 0;
  std::int64_t d4_multi = 0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    d2_total += d2_results[i].window.deadlocks;
    d4_total += d4_results[i].window.deadlocks;
    d4_multi += d4_results[i].window.multi_cycle_deadlocks;
    std::printf("  load %.2f | norm deadlocks 2D/4D = %.5f / %.5f | "
                "norm throughput 2D/4D = %.3f / %.3f\n",
                loads[i], d2_results[i].window.normalized_deadlocks,
                d4_results[i].window.normalized_deadlocks,
                d2_results[i].normalized_throughput,
                d4_results[i].normalized_throughput);
  }
  std::printf("  totals: 2D %lld deadlocks, 4D %lld (%.2f%% of 2D), 4D "
              "multi-cycle %lld\n",
              static_cast<long long>(d2_total), static_cast<long long>(d4_total),
              d2_total > 0 ? 100.0 * static_cast<double>(d4_total) /
                                 static_cast<double>(d2_total)
                           : 0.0,
              static_cast<long long>(d4_multi));
  std::printf("  saturation load: 2D %.2f, 4D %.2f\n",
              saturation_load(d2_results), saturation_load(d4_results));
  return 0;
}
