// Figure 7 — Effect of virtual channels on deadlocks (Section 3.3).
//
// DOR and TFAR with 1-4 VCs per physical channel, bidirectional 16-ary
// 2-cube, uniform traffic:
//   (a) normalized deadlocks vs load,
//   (b) number of CWG cycles vs percentage of blocked messages.
//
// Paper expectations: the 2nd VC more than doubles DOR's deadlock onset
// load; DOR with >= 3 VCs and TFAR with >= 2 VCs showed NO deadlocks (in our
// dynamics they stay at zero through saturation, with rare full-ring knots
// deep in saturation - see EXPERIMENTS.md); extra VCs cut congestion, and
// cycles explode only once saturation is reached.
#include "common.hpp"

int main() {
  using namespace flexnet;
  namespace fb = flexnet::bench;

  fb::banner("Figure 7: DOR/TFAR x 1-4 VCs");

  const std::vector<double> loads = fb::default_loads();

  for (const RoutingKind routing : {RoutingKind::DOR, RoutingKind::TFAR}) {
    for (int vcs = 1; vcs <= 4; ++vcs) {
      ExperimentConfig cfg = fb::paper_default();
      cfg.sim.routing = routing;
      cfg.sim.vcs = vcs;
      cfg.detector.count_total_cycles = true;
      cfg.detector.cycle_sample_every = 16;
      cfg.detector.total_cycle_cap = 5000;

      const auto results = sweep_loads(cfg, loads);
      const std::string name =
          std::string(to_string(routing)) + std::to_string(vcs);

      fb::emit("fig7", "Fig 7a (" + name + "): normalized deadlocks vs load",
               results, deadlock_columns(), name);
      print_load_series(std::cout,
                        "Fig 7b (" + name + "): cycles vs %blocked", results,
                        cycle_columns());
      std::int64_t total_deadlocks = 0;
      double onset = -1.0;
      for (const auto& r : results) {
        total_deadlocks += r.window.deadlocks;
        if (onset < 0 && r.window.deadlocks > 0) onset = r.load;
      }
      std::printf("  -> %s: total deadlocks %lld, first-deadlock load %s, "
                  "saturation load %s\n\n",
                  name.c_str(), static_cast<long long>(total_deadlocks),
                  onset < 0 ? "none" : TableWriter::num(onset, 2).c_str(),
                  TableWriter::num(saturation_load(results), 2).c_str());
    }
  }
  return 0;
}
