// Shared scaffolding for the figure-reproduction benches.
//
// Every bench binary prints the paper-style series to stdout and drops a CSV
// under ./bench_results/ for plotting. Windows default to half the paper's
// (warmup 5,000 + measured 15,000 cycles); set FLEXNET_BENCH_SCALE=2 for the
// paper's full 30,000-cycle measurement windows, or <1 for smoke runs.
#pragma once

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "flexnet.hpp"

namespace flexnet::bench {

/// The paper's baseline (Section 3): 16-ary 2-cube, bidirectional, 1 VC,
/// 2-flit buffers, 32-flit messages, uniform traffic, detection every 50
/// cycles, Disha-style recovery.
inline ExperimentConfig paper_default() {
  ExperimentConfig cfg;
  cfg.sim.topology.k = 16;
  cfg.sim.topology.n = 2;
  cfg.sim.routing = RoutingKind::TFAR;
  const double scale = bench_scale();
  cfg.run.warmup = static_cast<Cycle>(5000 * scale);
  cfg.run.measure = static_cast<Cycle>(15000 * scale);
  if (cfg.run.warmup < 200) cfg.run.warmup = 200;
  if (cfg.run.measure < 500) cfg.run.measure = 500;
  return cfg;
}

/// Load points: dense below the typical saturation region, sparser beyond
/// ("up to full network capacity ... generally well beyond the loads at
/// which network performance saturates").
inline std::vector<double> default_loads() {
  return {0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50, 0.70, 0.90};
}

/// Prints the series and also writes the full CSV to bench_results/.
inline void emit(const std::string& file_tag, const std::string& title,
                 const std::vector<ExperimentResult>& results,
                 const std::vector<SeriesColumn>& columns,
                 const std::string& label) {
  print_load_series(std::cout, title, results, columns);
  std::cout << '\n';
  std::filesystem::create_directories("bench_results");
  const std::string path = "bench_results/" + file_tag + ".csv";
  std::ofstream out(path, std::ios::app);
  write_results_csv(out, results, label);
}

inline void banner(const std::string& text) {
  std::cout << "\n########## " << text << " ##########\n\n";
}

}  // namespace flexnet::bench
