// Figure 6 — Effect of routing adaptivity on deadlocks (Section 3.2).
//
// DOR vs minimal true fully adaptive routing (TFAR), 1 VC each, bidirectional
// 16-ary 2-cube, uniform traffic, with total CWG cycle counting enabled:
//   (a) normalized deadlocks and cycles vs load,
//   (b) deadlock and resource set sizes vs load.
//
// Paper expectations: DOR deadlocks earlier and more often (only single-cycle
// knots, small local sets) yet sustains higher throughput; TFAR's deadlocks
// are rarer but are large multi-cycle knots (deadlock sets 5-7x, resource
// sets 7-10x, knot cycle density 10-30x DOR's) that wreck performance; TFAR
// additionally shows many cyclic non-deadlocks.
#include "common.hpp"

int main() {
  using namespace flexnet;
  namespace fb = flexnet::bench;

  fb::banner("Figure 6: DOR vs TFAR, 1 VC, cycle counting on");

  ExperimentConfig base = fb::paper_default();
  base.sim.vcs = 1;
  base.detector.count_total_cycles = true;
  base.detector.cycle_sample_every = 16;
  base.detector.total_cycle_cap = 5000;

  const std::vector<double> loads = fb::default_loads();

  ExperimentConfig dor = base;
  dor.sim.routing = RoutingKind::DOR;
  const auto dor_results = sweep_loads(dor, loads);

  ExperimentConfig tfar = base;
  tfar.sim.routing = RoutingKind::TFAR;
  const auto tfar_results = sweep_loads(tfar, loads);

  fb::emit("fig6", "Fig 6a (DOR): normalized deadlocks vs load", dor_results,
           deadlock_columns(), "DOR1");
  fb::emit("fig6", "Fig 6a (TFAR): normalized deadlocks vs load", tfar_results,
           deadlock_columns(), "TFAR1");

  print_load_series(std::cout, "Fig 6a (DOR): cycles vs load", dor_results,
                    cycle_columns());
  std::cout << '\n';
  print_load_series(std::cout, "Fig 6a (TFAR): cycles vs load", tfar_results,
                    cycle_columns());
  std::cout << '\n';
  print_load_series(std::cout, "Fig 6b (DOR): set sizes vs load", dor_results,
                    set_size_columns());
  std::cout << '\n';
  print_load_series(std::cout, "Fig 6b (TFAR): set sizes vs load",
                    tfar_results, set_size_columns());

  std::cout << "\nSummary (paper: TFAR sets 5-7x / resources 7-10x / density"
               " 10-30x DOR; DOR keeps higher throughput with more deadlocks):\n";
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const auto& d = dor_results[i].window;
    const auto& t = tfar_results[i].window;
    std::printf(
        "  load %.2f | deadlocks DOR/TFAR = %lld / %lld | dset TFAR/DOR = "
        "%.1f / %.1f | rset = %.1f / %.1f | density max = %.0f / %.0f | "
        "thruput DOR/TFAR = %.3f / %.3f\n",
        loads[i], static_cast<long long>(d.deadlocks),
        static_cast<long long>(t.deadlocks), t.deadlock_set_size.mean(),
        d.deadlock_set_size.mean(), t.resource_set_size.mean(),
        d.resource_set_size.mean(), t.knot_cycle_density.max(),
        d.knot_cycle_density.max(), dor_results[i].normalized_throughput,
        tfar_results[i].normalized_throughput);
  }
  return 0;
}
