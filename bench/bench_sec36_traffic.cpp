// Section 3.6 — Effect of non-uniform traffic on deadlocks.
//
// Bit-reversal, matrix-transpose, perfect-shuffle and hot-spot traffic vs
// uniform, for DOR and TFAR with 1 VC on the bidirectional 16-ary 2-cube.
//
// Paper expectations: deadlock frequencies and characteristics for the
// non-uniform patterns land near uniform's (mostly within ~10%), EXCEPT for
// DOR under permutations whose source/destination structure precludes the
// circular overlap its single-cycle deadlocks require (deadlocks then vanish).
#include "common.hpp"

int main() {
  using namespace flexnet;
  namespace fb = flexnet::bench;

  fb::banner("Section 3.6: non-uniform traffic patterns");

  const std::vector<double> loads{0.2, 0.4, 0.6, 0.9};
  const std::vector<TrafficKind> patterns{
      TrafficKind::Uniform, TrafficKind::BitReversal, TrafficKind::Transpose,
      TrafficKind::PerfectShuffle, TrafficKind::HotSpot};

  for (const RoutingKind routing : {RoutingKind::DOR, RoutingKind::TFAR}) {
    std::vector<std::vector<ExperimentResult>> all;
    for (const TrafficKind pattern : patterns) {
      ExperimentConfig cfg = fb::paper_default();
      cfg.sim.routing = routing;
      cfg.sim.vcs = 1;
      cfg.traffic.pattern = pattern;
      all.push_back(sweep_loads(cfg, loads));
      fb::emit("sec36",
               std::string(to_string(routing)) + "1 / " +
                   std::string(to_string(pattern)),
               all.back(), deadlock_columns(),
               std::string(to_string(routing)) + "1-" +
                   std::string(to_string(pattern)));
    }

    std::cout << "Summary for " << to_string(routing)
              << "1 (normalized deadlocks; uniform first):\n";
    for (std::size_t li = 0; li < loads.size(); ++li) {
      std::printf("  load %.2f |", loads[li]);
      for (std::size_t pi = 0; pi < patterns.size(); ++pi) {
        std::printf(" %s=%.5f", std::string(to_string(patterns[pi])).c_str(),
                    all[pi][li].window.normalized_deadlocks);
      }
      std::printf("\n");
    }
    std::cout << '\n';
  }
  return 0;
}
