#!/usr/bin/env bash
# Runs the micro-benchmark suite and writes BENCH_micro_core.json at the repo
# root: a flat, fixed-schema summary (one record per benchmark) for tracking
# performance across commits.
#
#   bench/run_bench.sh [BUILD_DIR]      # default build dir: ./build
#
# Schema: {"git_sha": ..., "metadata": {"hardware_concurrency",
# "worker_threads", "flexnet_threads", "sharded_shard_counts"},
# "benchmarks": [{"name", "cpu_time_ns", "real_time_ns", "iterations"},
# ...]}. Requires an already-built bench_micro_core.
#
# metadata.worker_threads is the thread count the sharded engine would use on
# this host (FLEXNET_THREADS when set, else hardware concurrency);
# sharded_shard_counts lists the shard counts the BM_NetworkStepSharded
# family actually exercised. compare_bench.py uses hardware_concurrency to
# decide whether the sharded scaling gate is meaningful on this machine.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
bench_bin="${build_dir}/bench/bench_micro_core"

if [[ ! -x "${bench_bin}" ]]; then
  echo "error: ${bench_bin} not found; build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j --target bench_micro_core" >&2
  exit 1
fi

raw_json="$(mktemp)"
trap 'rm -f "${raw_json}"' EXIT

"${bench_bin}" --benchmark_format=json --benchmark_out="${raw_json}" \
  --benchmark_out_format=json >&2

git_sha="$(git -C "${repo_root}" rev-parse --short=12 HEAD 2>/dev/null || echo unknown)"
hw_threads="$(nproc 2>/dev/null || echo 1)"

python3 - "${raw_json}" "${git_sha}" "${hw_threads}" "${FLEXNET_THREADS:-}" \
  > "${repo_root}/BENCH_micro_core.json" <<'PY'
import json
import re
import sys

with open(sys.argv[1]) as f:
    raw = json.load(f)

records = []
shard_counts = []
for b in raw.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    # google-benchmark reports cpu_time/real_time in time_unit (ns default).
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[b.get("time_unit", "ns")]
    records.append({
        "name": b["name"],
        "cpu_time_ns": b["cpu_time"] * scale,
        "real_time_ns": b["real_time"] * scale,
        "iterations": b["iterations"],
    })
    m = re.match(r"BM_NetworkStepSharded/(\d+)", b["name"])
    if m:
        shard_counts.append(int(m.group(1)))

hw = int(sys.argv[3])
flexnet_threads = int(sys.argv[4]) if sys.argv[4].isdigit() else None
metadata = {
    "hardware_concurrency": hw,
    "worker_threads": flexnet_threads if flexnet_threads else hw,
    "flexnet_threads": flexnet_threads,
    "sharded_shard_counts": sorted(shard_counts),
}
json.dump({"git_sha": sys.argv[2], "metadata": metadata,
           "benchmarks": records}, sys.stdout, indent=2)
sys.stdout.write("\n")
PY

echo "wrote ${repo_root}/BENCH_micro_core.json (${git_sha})" >&2
