// Figure 8 — Effect of buffer depth on deadlocks (Section 3.4).
//
// TFAR with 1 VC on the bidirectional 16-ary 2-cube with edge buffer depths
// {2, 4, 6, 8, 16, 32} flits (32 = message length = virtual cut-through):
//   (a) normalized deadlocks vs load,
//   (b) normalized deadlocks vs messages in the network.
//
// Paper expectations: depths 2/4/6 saturate at a similar load, 8 at ~25%
// higher and 16/32 at ~75% higher (message compaction); VCT sees the fewest
// deadlocks; normalized per messages-in-network, the shallow buffers
// deadlock far more.
#include "common.hpp"

int main() {
  using namespace flexnet;
  namespace fb = flexnet::bench;

  fb::banner("Figure 8: buffer depth sweep, TFAR, 1 VC");

  const std::vector<double> loads = fb::default_loads();

  std::vector<SeriesColumn> fig8b = deadlock_columns();
  fig8b.push_back({"msgs_in_net",
                   [](const ExperimentResult& r) {
                     return r.window.in_network_messages.mean();
                   },
                   1});
  fig8b.push_back({"dl_per_msg_in_net",
                   [](const ExperimentResult& r) {
                     const double in_net = r.window.in_network_messages.mean();
                     return in_net > 0
                                ? static_cast<double>(r.window.deadlocks) / in_net
                                : 0.0;
                   },
                   3});

  for (const int depth : {2, 4, 6, 8, 16, 32}) {
    ExperimentConfig cfg = fb::paper_default();
    cfg.sim.routing = RoutingKind::TFAR;
    cfg.sim.vcs = 1;
    cfg.sim.buffer_depth = depth;

    const auto results = sweep_loads(cfg, loads);
    const std::string name = "buffer=" + std::to_string(depth) +
                             (depth >= cfg.sim.message_length ? " (VCT)" : "");
    fb::emit("fig8", "Fig 8a/8b (" + name + ")", results, fig8b, name);
    std::printf("  -> %s: saturation load %s\n\n", name.c_str(),
                TableWriter::num(saturation_load(results), 2).c_str());
  }
  return 0;
}
