// Ablation — recovery victim policy and the quiescence filter.
//
// (1) Which deadlock-set message should Disha-style recovery kill? The paper
//     removes "a message in the deadlock set"; we compare oldest / newest /
//     most-resources / random victims on deadlock-heavy DOR1.
// (2) How much does requiring quiescence (true deadlock) matter versus
//     counting every instantaneous knot? The gap is exactly the population
//     of transient knots that would have dissolved by buffer compaction.
#include "common.hpp"

int main() {
  using namespace flexnet;
  namespace fb = flexnet::bench;

  fb::banner("Ablation A: recovery victim policy (DOR, 1 VC)");

  const std::vector<double> loads{0.2, 0.3, 0.5};

  for (const RecoveryKind recovery :
       {RecoveryKind::RemoveOldest, RecoveryKind::RemoveNewest,
        RecoveryKind::RemoveMostResources, RecoveryKind::RemoveRandom}) {
    ExperimentConfig cfg = fb::paper_default();
    cfg.sim.routing = RoutingKind::DOR;
    cfg.sim.vcs = 1;
    cfg.detector.recovery = recovery;

    const auto results = sweep_loads(cfg, loads);
    const std::string name(to_string(recovery));
    fb::emit("ablation_recovery", "victim = " + name, results,
             deadlock_columns(), name);
    print_load_series(std::cout, "victim = " + name + " (throughput)", results,
                      throughput_columns());
    std::cout << '\n';
  }

  fb::banner("Ablation B: quiescence filter (true vs instantaneous knots)");
  for (const bool require : {true, false}) {
    ExperimentConfig cfg = fb::paper_default();
    cfg.sim.routing = RoutingKind::DOR;
    cfg.sim.vcs = 1;
    cfg.detector.require_quiescence = require;
    const auto results = sweep_loads(cfg, loads);
    std::printf("require_quiescence=%s:\n", require ? "true" : "false");
    for (const auto& r : results) {
      std::printf("  load %.2f: %lld deadlocks (%.5f normalized)\n", r.load,
                  static_cast<long long>(r.window.deadlocks),
                  r.window.normalized_deadlocks);
    }
    std::cout << '\n';
  }
  return 0;
}
