// Extensions from the paper's "future work" list (Section 5): misrouting,
// hybrid (bimodal) message lengths, and mesh topology with turn-model
// routing.
#include "common.hpp"

int main() {
  using namespace flexnet;
  namespace fb = flexnet::bench;

  const std::vector<double> loads{0.2, 0.4, 0.6};

  fb::banner("Extension 1: bounded misrouting (TFAR, 2 VCs)");
  for (const int misroutes : {0, 2, 4}) {
    ExperimentConfig cfg = fb::paper_default();
    cfg.sim.routing = RoutingKind::TFAR;
    cfg.sim.vcs = 2;
    cfg.sim.max_misroutes = misroutes;
    const auto results = sweep_loads(cfg, loads);
    const std::string name = "misroutes=" + std::to_string(misroutes);
    fb::emit("ext_futurework", name, results, deadlock_columns(), name);
    print_load_series(std::cout, name + " (throughput)", results,
                      throughput_columns());
    std::cout << '\n';
  }

  fb::banner("Extension 2: hybrid message lengths (TFAR, 1 VC)");
  for (const double fraction : {0.0, 0.5, 0.9}) {
    ExperimentConfig cfg = fb::paper_default();
    cfg.sim.routing = RoutingKind::TFAR;
    cfg.sim.vcs = 1;
    cfg.sim.short_message_fraction = fraction;
    cfg.sim.short_message_length = 4;
    const auto results = sweep_loads(cfg, loads);
    const std::string name =
        "short_fraction=" + TableWriter::num(fraction, 1);
    fb::emit("ext_futurework", name, results, deadlock_columns(), name);
  }

  fb::banner("Extension 3: link faults (TFAR, 1 VC) - irregular topology");
  for (const double fraction : {0.0, 0.05, 0.1, 0.2}) {
    ExperimentConfig cfg = fb::paper_default();
    cfg.sim.routing = RoutingKind::TFAR;
    cfg.sim.vcs = 1;
    cfg.sim.link_fault_fraction = fraction;
    cfg.detector.livelock_hop_limit = 512;
    const auto results = sweep_loads(cfg, loads);
    const std::string name = "faults=" + TableWriter::num(fraction, 2);
    fb::emit("ext_futurework", name, results, deadlock_columns(), name);
    print_load_series(std::cout, name + " (throughput)", results,
                      throughput_columns());
    std::cout << '\n';
  }

  fb::banner("Extension 4: hybrid traffic (uniform + transpose), TFAR, 1 VC");
  for (const double fraction : {0.0, 0.5}) {
    ExperimentConfig cfg = fb::paper_default();
    cfg.sim.routing = RoutingKind::TFAR;
    cfg.sim.vcs = 1;
    cfg.traffic.pattern = TrafficKind::Uniform;
    cfg.traffic.hybrid_fraction = fraction;
    cfg.traffic.hybrid_with = TrafficKind::Transpose;
    const auto results = sweep_loads(cfg, loads);
    const std::string name = "hybrid_transpose=" + TableWriter::num(fraction, 1);
    fb::emit("ext_futurework", name, results, deadlock_columns(), name);
  }

  fb::banner("Extension 5: 16x16 mesh, negative-first turn model vs TFAR");
  for (const bool turn_model : {true, false}) {
    ExperimentConfig cfg = fb::paper_default();
    cfg.sim.topology.wrap = false;
    cfg.sim.routing =
        turn_model ? RoutingKind::NegativeFirst : RoutingKind::TFAR;
    cfg.sim.vcs = 1;
    const auto results = sweep_loads(cfg, loads);
    const std::string name =
        turn_model ? "mesh NegativeFirst (avoidance)" : "mesh TFAR1+recovery";
    fb::emit("ext_futurework", name, results, deadlock_columns(), name);
    print_load_series(std::cout, name + " (throughput)", results,
                      throughput_columns());
    std::cout << '\n';
  }
  return 0;
}
