// Microbenchmarks (google-benchmark): the cost of the detection machinery
// itself — CWG construction, SCC, knot finding, cycle enumeration — and the
// simulator's cycle rate. These bound the overhead of running true deadlock
// detection every 50 cycles.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "flexnet.hpp"

namespace flexnet {
namespace {

/// A saturated 16-ary 2-cube TFAR1 network: the realistic worst-case CWG.
std::unique_ptr<Simulation> saturated_sim(int k, double load,
                                          bool telemetry = false,
                                          bool obs = false) {
  ExperimentConfig cfg;
  cfg.sim.topology.k = k;
  cfg.sim.topology.n = 2;
  cfg.sim.routing = RoutingKind::TFAR;
  cfg.sim.vcs = 1;
  cfg.traffic.load = load;
  cfg.detector.recovery = RecoveryKind::None;  // leave congestion in place
  cfg.telemetry.collect = telemetry;
  cfg.obs.collect = obs;
  auto sim = std::make_unique<Simulation>(cfg);
  sim->run_cycles(3000);
  return sim;
}

void BM_NetworkStep(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  auto sim = saturated_sim(k, 0.4);
  for (auto _ : state) {
    sim->injection().tick(sim->network());
    sim->network().step();
  }
  state.SetItemsProcessed(state.iterations() *
                          sim->network().topology().num_nodes());
}
BENCHMARK(BM_NetworkStep)->Arg(8)->Arg(16)->Arg(32);

/// Sharded engine cycle rate: the BM_NetworkStep harness on the 16-ary
/// 2-cube at load 0.5, with deadlock recovery left on (default RemoveOldest,
/// interval 50) so the network keeps flowing for the whole measured run — a
/// permanently wedged network sheds its active sets and leaves nothing to
/// parallelize. Arg is the shard count; 0 runs the serial engine in the
/// identical harness so the single-shard overhead is measured like-for-like.
/// Wall clock (UseRealTime) is the honest metric for a multi-threaded step:
/// the compare_bench.py gate enforces /8 at >= 3x over /1 and /1 within 10%
/// of /0 on real time within one summary.
void BM_NetworkStepSharded(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  ExperimentConfig cfg;
  cfg.sim.topology.k = 16;
  cfg.sim.topology.n = 2;
  cfg.sim.routing = RoutingKind::TFAR;
  cfg.sim.vcs = 1;
  cfg.traffic.load = 0.5;
  cfg.detector.keep_records = false;
  auto sim = std::make_unique<Simulation>(cfg);
  sim->run_cycles(3000);
  if (shards > 0) sim->network().set_shards(shards);
  for (auto _ : state) {
    sim->injection().tick(sim->network());
    sim->network().step();
    sim->detector().tick(sim->network());
  }
  state.SetItemsProcessed(state.iterations() *
                          sim->network().topology().num_nodes());
}
BENCHMARK(BM_NetworkStepSharded)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

/// Empty-network cycle rate: the activity-gated scheduler's floor. With no
/// messages anywhere all three active sets are empty, so a step is three
/// first()-returns-(-1) probes — cost independent of network size. The dense
/// capture runs the same empty network under the --step-dense oracle sweep,
/// which pays O(nodes + channels) per cycle; the pair bounds the win.
void BM_NetworkStepIdle(benchmark::State& state, bool dense) {
  ExperimentConfig cfg;
  cfg.sim.topology.k = 16;
  cfg.sim.topology.n = 2;
  cfg.sim.routing = RoutingKind::TFAR;
  Simulation sim(cfg);
  sim.network().set_step_dense(dense);
  for (auto _ : state) {
    sim.network().step();
  }
  state.SetItemsProcessed(state.iterations() *
                          sim.network().topology().num_nodes());
}
BENCHMARK_CAPTURE(BM_NetworkStepIdle, event, false);
BENCHMARK_CAPTURE(BM_NetworkStepIdle, dense, true);

/// Light-traffic cycle rate (load 0.1, 16-ary 2-cube): most nodes and
/// channels are quiet most cycles, so the active sets visit a small working
/// set while the dense oracle still sweeps all 256 nodes and 1088 channels.
/// This is the paper's common operating regime and the headline number for
/// the event-driven core.
void BM_NetworkStepLowLoad(benchmark::State& state, bool dense) {
  // Unlike saturated_sim, recovery stays on: a light network's steady state
  // is a handful of in-flight messages, not congestion wedged by
  // recovery=None during warmup.
  ExperimentConfig cfg;
  cfg.sim.topology.k = 16;
  cfg.sim.topology.n = 2;
  cfg.sim.routing = RoutingKind::TFAR;
  cfg.sim.vcs = 1;
  cfg.traffic.load = 0.1;
  auto sim = std::make_unique<Simulation>(cfg);
  sim->run_cycles(3000);
  sim->network().set_step_dense(dense);
  for (auto _ : state) {
    sim->injection().tick(sim->network());
    sim->network().step();
  }
  state.SetItemsProcessed(state.iterations() *
                          sim->network().topology().num_nodes());
}
BENCHMARK_CAPTURE(BM_NetworkStepLowLoad, event, false);
BENCHMARK_CAPTURE(BM_NetworkStepLowLoad, dense, true);

/// Saturation cycle rate under the dense oracle, against BM_NetworkStep/16
/// (same configuration, event-driven): the activity gate must cost under 10%
/// when nearly everything has work every cycle.
void BM_NetworkStepSaturatedDense(benchmark::State& state) {
  auto sim = saturated_sim(16, 0.4);
  sim->network().set_step_dense(true);
  for (auto _ : state) {
    sim->injection().tick(sim->network());
    sim->network().step();
  }
  state.SetItemsProcessed(state.iterations() *
                          sim->network().topology().num_nodes());
}
BENCHMARK(BM_NetworkStepSaturatedDense);

/// Same cycle with full telemetry attached (interval series + heatmap +
/// phase profiler, default 100-cycle cadence): budget <5% over BM_NetworkStep.
void BM_NetworkStepTelemetry(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  auto sim = saturated_sim(k, 0.4, /*telemetry=*/true);
  for (auto _ : state) {
    sim->injection().tick(sim->network());
    sim->network().step();
    sim->telemetry()->tick(sim->network(), sim->detector());
  }
  state.SetItemsProcessed(state.iterations() *
                          sim->network().topology().num_nodes());
}
BENCHMARK(BM_NetworkStepTelemetry)->Arg(8)->Arg(16);

/// Same cycle with the observability layer attached (delivery-latency hook +
/// default 100-cycle metrics sampling, no stream): budget <5% over
/// BM_NetworkStep — amortized, one sample per 100 cycles plus the
/// null-guarded delivery branch.
void BM_NetworkStepMetrics(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  auto sim = saturated_sim(k, 0.4, /*telemetry=*/false, /*obs=*/true);
  for (auto _ : state) {
    sim->injection().tick(sim->network());
    sim->network().step();
    sim->obs()->tick(sim->network(), sim->detector());
  }
  state.SetItemsProcessed(state.iterations() *
                          sim->network().topology().num_nodes());
}
BENCHMARK(BM_NetworkStepMetrics)->Arg(8)->Arg(16);

/// The BM_NetworkStep/16 harness re-run from a recorded arrival stream:
/// bounds the trace-replay tick overhead against the Bernoulli baseline
/// (budget <5%). The capture — the identical configuration driven far enough
/// to cover warmup plus every measured iteration — happens once per process
/// and goes through a real temp file, exactly as production replay does.
/// Iterations are pinned so the measured loop never outruns the trace.
constexpr Cycle kReplayWarmCycles = 3000;
constexpr int kReplayIterations = 4000;

SimConfig replay_sim_config() {
  SimConfig cfg;
  cfg.topology.k = 16;
  cfg.topology.n = 2;
  cfg.routing = RoutingKind::TFAR;
  cfg.vcs = 1;
  return cfg;
}

const std::string& replay_trace_path() {
  static const std::string path = [] {
    const std::string out =
        (std::filesystem::temp_directory_path() / "flexnet_bench_replay.trace")
            .string();
    const SimConfig cfg = replay_sim_config();
    Network net(cfg, NetworkDeps{nullptr, make_routing(cfg),
                                 make_selection(cfg.selection)});
    TrafficConfig traffic;
    traffic.load = 0.4;
    InjectionProcess inj(net, traffic, cfg.seed);
    std::ofstream file(out, std::ios::binary | std::ios::trunc);
    TraceHeader header;
    header.nodes = net.topology().num_nodes();
    header.traffic = traffic;
    header.avg_distance = inj.average_distance();
    header.capacity = inj.capacity_flits_per_node();
    header.offered = inj.offered_flit_rate();
    TraceCaptureWriter writer(file, header);
    inj.set_capture(&writer);
    for (Cycle c = 0; c < kReplayWarmCycles + kReplayIterations + 1000; ++c) {
      inj.tick(net);
      net.step();
    }
    inj.set_capture(nullptr);
    writer.finish();
    return out;
  }();
  return path;
}

void BM_NetworkStepTraceReplay(benchmark::State& state) {
  const SimConfig cfg = replay_sim_config();
  Network net(cfg, NetworkDeps{nullptr, make_routing(cfg),
                               make_selection(cfg.selection)});
  TraceReplayInjection inj(net, replay_trace_path(), cfg.seed);
  while (net.now() < kReplayWarmCycles) {
    inj.tick(net);
    net.step();
  }
  for (auto _ : state) {
    inj.tick(net);
    net.step();
  }
  state.SetItemsProcessed(state.iterations() * net.topology().num_nodes());
}
BENCHMARK(BM_NetworkStepTraceReplay)->Iterations(kReplayIterations);

/// Same harness under a mean-normalized burst pace profile: the per-cycle
/// multiplier lookup plus the usual Bernoulli draws. Budget <5% over
/// BM_NetworkStep/16.
void BM_NetworkStepPaced(benchmark::State& state) {
  ExperimentConfig cfg;
  cfg.sim.topology.k = 16;
  cfg.sim.topology.n = 2;
  cfg.sim.routing = RoutingKind::TFAR;
  cfg.sim.vcs = 1;
  cfg.traffic.load = 0.4;
  cfg.detector.recovery = RecoveryKind::None;
  cfg.workload = parse_workload_spec("pace:burst(100,0.2,4)");
  auto sim = std::make_unique<Simulation>(cfg);
  sim->run_cycles(3000);
  for (auto _ : state) {
    sim->injection().tick(sim->network());
    sim->network().step();
  }
  state.SetItemsProcessed(state.iterations() *
                          sim->network().topology().num_nodes());
}
BENCHMARK(BM_NetworkStepPaced);

/// One forced metrics sample on the frozen saturated network: the full
/// stall-age scan, union-find component pass, census and score. This is the
/// cost paid once per --metrics-interval; the CI gate tracks it.
void BM_MetricsSample(benchmark::State& state) {
  auto sim = saturated_sim(16, 0.5, /*telemetry=*/false, /*obs=*/true);
  for (auto _ : state) {
    sim->obs()->sample(sim->network(), sim->detector());
    benchmark::DoNotOptimize(sim->obs()->last_sample().score);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsSample);

void BM_CwgBuild(benchmark::State& state) {
  auto sim = saturated_sim(16, 0.5);
  for (auto _ : state) {
    const Cwg cwg = Cwg::from_network(sim->network());
    benchmark::DoNotOptimize(cwg.num_blocked_messages());
  }
}
BENCHMARK(BM_CwgBuild);

void BM_KnotDetection(benchmark::State& state) {
  auto sim = saturated_sim(16, 0.5);
  const Cwg cwg = Cwg::from_network(sim->network());
  for (auto _ : state) {
    const auto knots = find_knots(cwg);
    benchmark::DoNotOptimize(knots.size());
  }
}
BENCHMARK(BM_KnotDetection);

void BM_FullDetectionPass(benchmark::State& state) {
  auto sim = saturated_sim(16, 0.5);
  DetectorConfig cfg;
  cfg.recovery = RecoveryKind::None;
  cfg.keep_records = false;
  // Oracle path: every pass rebuilds the CWG and runs Tarjan over all VCs.
  // This is the number the CI perf gate tracks — it bounds the worst case
  // and must not regress even though the default pipeline rarely pays it.
  cfg.full_rebuild = true;
  DeadlockDetector detector(cfg, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.run_detection(sim->network()));
  }
}
BENCHMARK(BM_FullDetectionPass);

/// The incremental pipeline in BM_FullDetectionPass's exact harness (same
/// frozen network, same config, only the pipeline flag differs), so the pair
/// is directly comparable. This is the steady-state cost of interval=1
/// detection between graph changes — the dominant regime both at idle (the
/// zero-blocked fast path answers) and during a wedged saturation phase (the
/// arc epoch stands still, so the cached verdict is re-checked for
/// quiescence and re-reported without a rebuild or SCC). The cost of a pass
/// that *does* rebuild is bounded separately by BM_CwgRebuild +
/// BM_KnotDetection and, worst-case, BM_FullDetectionPass.
void BM_DetectionIncremental(benchmark::State& state, double load) {
  auto sim = saturated_sim(16, load);
  DetectorConfig cfg;
  cfg.recovery = RecoveryKind::None;  // keep the network frozen, as the oracle
  cfg.keep_records = false;
  DeadlockDetector detector(cfg, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.run_detection(sim->network()));
  }
}
BENCHMARK_CAPTURE(BM_DetectionIncremental, idle, 0.05);
BENCHMARK_CAPTURE(BM_DetectionIncremental, sat, 0.5);

/// Allocation-free rebuild into the detector's persistent scratch — the hot
/// path behind every non-skipped pass. Contrast with BM_CwgBuild, which
/// constructs a fresh Cwg (and all its vectors) from scratch each call.
void BM_CwgRebuild(benchmark::State& state) {
  auto sim = saturated_sim(16, 0.5);
  CwgScratch scratch;
  for (auto _ : state) {
    const Cwg& cwg = scratch.rebuild(sim->network());
    benchmark::DoNotOptimize(cwg.num_blocked_messages());
  }
}
BENCHMARK(BM_CwgRebuild);

void BM_SccDense(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Digraph g(n);
  Pcg32 rng(7);
  for (int e = 0; e < 4 * n; ++e) {
    g.add_edge(static_cast<int>(rng.bounded(static_cast<std::uint32_t>(n))),
               static_cast<int>(rng.bounded(static_cast<std::uint32_t>(n))));
  }
  for (auto _ : state) {
    const SccResult scc = strongly_connected_components(g);
    benchmark::DoNotOptimize(scc.num_components);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SccDense)->Arg(1000)->Arg(10000);

void BM_CycleEnumerationCapped(benchmark::State& state) {
  // A ring with chords: many cycles, enumeration capped at 1000.
  constexpr int kN = 64;
  Digraph g(kN);
  for (int i = 0; i < kN; ++i) g.add_edge(i, (i + 1) % kN);
  for (int i = 0; i < kN; i += 4) g.add_edge(i, (i + 7) % kN);
  for (int i = 0; i < kN; i += 8) g.add_edge((i + 3) % kN, i);
  for (auto _ : state) {
    const CycleEnumeration r = enumerate_simple_cycles(g, 1000);
    benchmark::DoNotOptimize(r.count);
  }
}
BENCHMARK(BM_CycleEnumerationCapped);

void BM_ImmobilityCheck(benchmark::State& state) {
  auto sim = saturated_sim(16, 0.5);
  const Network& net = sim->network();
  for (auto _ : state) {
    int immobile = 0;
    for (const MessageId id : net.active_messages()) {
      if (net.message_immobile(id)) ++immobile;
    }
    benchmark::DoNotOptimize(immobile);
  }
}
BENCHMARK(BM_ImmobilityCheck);

}  // namespace
}  // namespace flexnet

BENCHMARK_MAIN();
