#!/usr/bin/env python3
"""Perf-regression gate over BENCH_micro_core.json summaries.

Compares a freshly produced benchmark summary against the committed baseline
and fails (exit 1) when a gated benchmark regressed by more than the
threshold. Raw nanoseconds are not comparable across hosts (the committed
baseline and a CI runner differ in clock speed and contention), so both sides
are first normalized by a calibration benchmark — BM_CycleEnumerationCapped,
a pure CPU-bound graph kernel on a fixed synthetic graph, whose ratio
between two hosts approximates their general speed ratio. (Calibration must
be code the repo rarely touches: normalizing by e.g. BM_SccDense would turn
any SCC optimization into a phantom regression of every gated benchmark.)
The gate then compares *normalized* times:

    regression = (fresh[b] / fresh[cal]) / (base[b] / base[cal]) - 1

The sharded engine is gated separately on intra-summary wall-clock ratios
(no calibration needed): BM_NetworkStepSharded/8 must run >= 3x faster than
/1 on hosts with >= 8 hardware threads, and /1 must stay within 10% of the
serial engine (/0) in the identical harness.

Usage:
    bench/compare_bench.py --baseline BENCH_micro_core.json \
        --fresh /tmp/fresh.json [--threshold 0.15]

Exit codes: 0 ok, 1 regression past threshold, 2 malformed/missing input.
"""

import argparse
import json
import sys

# Benchmarks the gate enforces: the simulator cycle rate (saturated, light
# load, and idle — the activity-gated scheduler's three regimes), the same
# cycle under trace replay and a pace profile (the workload subsystem's
# overhead budget), the worst-case (full-rebuild oracle) detection pass, and
# one observability sample.
GATED = ["BM_NetworkStep/8", "BM_NetworkStep/16", "BM_NetworkStep/32",
         "BM_NetworkStepIdle/event", "BM_NetworkStepLowLoad/event",
         "BM_NetworkStepTraceReplay/iterations:4000", "BM_NetworkStepPaced",
         "BM_FullDetectionPass", "BM_MetricsSample"]
CALIBRATION = "BM_CycleEnumerationCapped"

# Sharded scaling gate: intra-summary wall-clock ratios on the fresh run, so
# no cross-host calibration is involved. BM_NetworkStepSharded/0 is the
# serial engine in the identical harness, /1 the one-shard engine (inline
# pool, no worker threads), /8 the scaling headline. The speedup leg only
# runs on hosts with >= 8 hardware threads (metadata.hardware_concurrency);
# the overhead leg is thread-free and always applies.
SHARDED_SERIAL = "BM_NetworkStepSharded/0/real_time"
SHARDED_ONE = "BM_NetworkStepSharded/1/real_time"
SHARDED_MANY = "BM_NetworkStepSharded/8/real_time"
MIN_SHARDED_SPEEDUP = 3.0   # /1 vs /8 wall clock
MAX_SHARD_OVERHEAD = 0.10   # /1 vs /0 wall clock


def load_summary(path):
    with open(path) as f:
        data = json.load(f)
    cpu = {b["name"]: float(b["cpu_time_ns"]) for b in data["benchmarks"]}
    # real_time_ns joined the schema with the sharded engine; fall back to
    # cpu time for summaries that predate it.
    real = {b["name"]: float(b.get("real_time_ns", b["cpu_time_ns"]))
            for b in data["benchmarks"]}
    return cpu, real, data.get("metadata", {})


def check_sharded_scaling(real, metadata):
    """Returns False when the sharded gate fails, True otherwise."""
    missing = [n for n in (SHARDED_SERIAL, SHARDED_ONE, SHARDED_MANY)
               if n not in real]
    if missing:
        print(f"  sharded gate: {', '.join(missing)} missing from fresh "
              "summary, skipped")
        return True

    ok = True
    overhead = real[SHARDED_ONE] / real[SHARDED_SERIAL] - 1.0
    verdict = "FAIL" if overhead > MAX_SHARD_OVERHEAD else "ok"
    ok &= overhead <= MAX_SHARD_OVERHEAD
    print(f"  sharded overhead /1 vs /0: {overhead:+.1%} "
          f"(max {MAX_SHARD_OVERHEAD:.0%}) [{verdict}]")

    cores = metadata.get("hardware_concurrency")
    if cores is None or cores < 8:
        print(f"  sharded speedup /8 vs /1: skipped "
              f"(hardware_concurrency={cores}, need >= 8)")
        return ok
    speedup = real[SHARDED_ONE] / real[SHARDED_MANY]
    verdict = "FAIL" if speedup < MIN_SHARDED_SPEEDUP else "ok"
    ok &= speedup >= MIN_SHARDED_SPEEDUP
    print(f"  sharded speedup /8 vs /1: {speedup:.2f}x "
          f"(min {MIN_SHARDED_SPEEDUP:.1f}x) [{verdict}]")
    return ok


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_micro_core.json")
    parser.add_argument("--fresh", required=True,
                        help="summary produced by this run")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max allowed normalized regression (0.15 = 15%%)")
    args = parser.parse_args()

    try:
        base, _, _ = load_summary(args.baseline)
        fresh, fresh_real, fresh_meta = load_summary(args.fresh)
    except (OSError, KeyError, ValueError) as err:
        print(f"error: cannot load summaries: {err}", file=sys.stderr)
        return 2

    for side, times in (("baseline", base), ("fresh", fresh)):
        if CALIBRATION not in times:
            print(f"error: calibration benchmark {CALIBRATION} missing from "
                  f"{side} summary", file=sys.stderr)
            return 2

    failed = False
    print(f"calibration {CALIBRATION}: baseline {base[CALIBRATION]:.0f}ns, "
          f"fresh {fresh[CALIBRATION]:.0f}ns")
    for name in GATED:
        if name not in base:
            # A benchmark new in this commit has no baseline yet; the refresh
            # of BENCH_micro_core.json in the same PR closes the gap.
            print(f"  {name}: not in baseline, skipped")
            continue
        if name not in fresh:
            print(f"error: gated benchmark {name} missing from fresh summary",
                  file=sys.stderr)
            return 2
        norm_base = base[name] / base[CALIBRATION]
        norm_fresh = fresh[name] / fresh[CALIBRATION]
        delta = norm_fresh / norm_base - 1.0
        verdict = "FAIL" if delta > args.threshold else "ok"
        if delta > args.threshold:
            failed = True
        print(f"  {name}: baseline {base[name]:.0f}ns, fresh "
              f"{fresh[name]:.0f}ns, normalized {delta:+.1%} [{verdict}]")

    if not check_sharded_scaling(fresh_real, fresh_meta):
        failed = True

    if failed:
        print(f"perf gate: regression beyond {args.threshold:.0%} threshold",
              file=sys.stderr)
        return 1
    print("perf gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
