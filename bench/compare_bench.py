#!/usr/bin/env python3
"""Perf-regression gate over BENCH_micro_core.json summaries.

Compares a freshly produced benchmark summary against the committed baseline
and fails (exit 1) when a gated benchmark regressed by more than the
threshold. Raw nanoseconds are not comparable across hosts (the committed
baseline and a CI runner differ in clock speed and contention), so both sides
are first normalized by a calibration benchmark — BM_CycleEnumerationCapped,
a pure CPU-bound graph kernel on a fixed synthetic graph, whose ratio
between two hosts approximates their general speed ratio. (Calibration must
be code the repo rarely touches: normalizing by e.g. BM_SccDense would turn
any SCC optimization into a phantom regression of every gated benchmark.)
The gate then compares *normalized* times:

    regression = (fresh[b] / fresh[cal]) / (base[b] / base[cal]) - 1

Usage:
    bench/compare_bench.py --baseline BENCH_micro_core.json \
        --fresh /tmp/fresh.json [--threshold 0.15]

Exit codes: 0 ok, 1 regression past threshold, 2 malformed/missing input.
"""

import argparse
import json
import sys

# Benchmarks the gate enforces: the simulator cycle rate (saturated, light
# load, and idle — the activity-gated scheduler's three regimes), the same
# cycle under trace replay and a pace profile (the workload subsystem's
# overhead budget), the worst-case (full-rebuild oracle) detection pass, and
# one observability sample.
GATED = ["BM_NetworkStep/8", "BM_NetworkStep/16",
         "BM_NetworkStepIdle/event", "BM_NetworkStepLowLoad/event",
         "BM_NetworkStepTraceReplay/iterations:4000", "BM_NetworkStepPaced",
         "BM_FullDetectionPass", "BM_MetricsSample"]
CALIBRATION = "BM_CycleEnumerationCapped"


def load_times(path):
    with open(path) as f:
        data = json.load(f)
    return {b["name"]: float(b["cpu_time_ns"]) for b in data["benchmarks"]}


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_micro_core.json")
    parser.add_argument("--fresh", required=True,
                        help="summary produced by this run")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max allowed normalized regression (0.15 = 15%%)")
    args = parser.parse_args()

    try:
        base = load_times(args.baseline)
        fresh = load_times(args.fresh)
    except (OSError, KeyError, ValueError) as err:
        print(f"error: cannot load summaries: {err}", file=sys.stderr)
        return 2

    for side, times in (("baseline", base), ("fresh", fresh)):
        if CALIBRATION not in times:
            print(f"error: calibration benchmark {CALIBRATION} missing from "
                  f"{side} summary", file=sys.stderr)
            return 2

    failed = False
    print(f"calibration {CALIBRATION}: baseline {base[CALIBRATION]:.0f}ns, "
          f"fresh {fresh[CALIBRATION]:.0f}ns")
    for name in GATED:
        if name not in base:
            # A benchmark new in this commit has no baseline yet; the refresh
            # of BENCH_micro_core.json in the same PR closes the gap.
            print(f"  {name}: not in baseline, skipped")
            continue
        if name not in fresh:
            print(f"error: gated benchmark {name} missing from fresh summary",
                  file=sys.stderr)
            return 2
        norm_base = base[name] / base[CALIBRATION]
        norm_fresh = fresh[name] / fresh[CALIBRATION]
        delta = norm_fresh / norm_base - 1.0
        verdict = "FAIL" if delta > args.threshold else "ok"
        if delta > args.threshold:
            failed = True
        print(f"  {name}: baseline {base[name]:.0f}ns, fresh "
              f"{fresh[name]:.0f}ns, normalized {delta:+.1%} [{verdict}]")

    if failed:
        print(f"perf gate: regression beyond {args.threshold:.0%} threshold",
              file=sys.stderr)
        return 1
    print("perf gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
