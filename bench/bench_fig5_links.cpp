// Figure 5 — Effect of physical links on deadlocks (Section 3.1).
//
// DOR with 1 VC on a 16-ary 2-cube torus with unidirectional vs
// bidirectional channels, uniform traffic:
//   (a) normalized deadlocks vs normalized load,
//   (b) deadlock set size vs normalized load.
//
// Paper expectations: the uni-torus deadlocks far more (~7 vs ~1 per 100
// messages below saturation; 60% vs 11% deep in saturation); its minimal
// deadlock set is 2 messages vs 3 for the bi-torus; both converge to ~6
// messages per deadlock deep in saturation.
#include "common.hpp"

int main() {
  using namespace flexnet;
  namespace fb = flexnet::bench;

  fb::banner("Figure 5: uni- vs bidirectional torus, DOR, 1 VC");

  ExperimentConfig base = fb::paper_default();
  base.sim.routing = RoutingKind::DOR;
  base.sim.vcs = 1;

  const std::vector<double> loads = fb::default_loads();

  ExperimentConfig bi = base;
  bi.sim.topology.bidirectional = true;
  const auto bi_results = sweep_loads(bi, loads);

  ExperimentConfig uni = base;
  uni.sim.topology.bidirectional = false;
  const auto uni_results = sweep_loads(uni, loads);

  fb::emit("fig5", "Fig 5a/5b (bidirectional): deadlocks & set sizes vs load",
           bi_results, deadlock_columns(), "bi");
  fb::emit("fig5", "Fig 5a/5b (unidirectional): deadlocks & set sizes vs load",
           uni_results, deadlock_columns(), "uni");

  print_load_series(std::cout, "Fig 5b (bidirectional): set sizes", bi_results,
                    set_size_columns());
  std::cout << '\n';
  print_load_series(std::cout, "Fig 5b (unidirectional): set sizes",
                    uni_results, set_size_columns());

  // Headline comparison at matched points.
  std::cout << "\nSummary (paper: uni >> bi in normalized deadlocks; set sizes"
               " converge ~6 deep in saturation):\n";
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const auto& b = bi_results[i].window;
    const auto& u = uni_results[i].window;
    std::printf(
        "  load %.2f | norm deadlocks uni/bi = %.5f / %.5f (ratio %s) | "
        "dset mean uni/bi = %.1f / %.1f\n",
        loads[i], u.normalized_deadlocks, b.normalized_deadlocks,
        b.normalized_deadlocks > 0
            ? TableWriter::num(u.normalized_deadlocks / b.normalized_deadlocks, 1)
                  .c_str()
            : "-",
        u.deadlock_set_size.mean(), b.deadlock_set_size.mean());
  }
  std::printf("  saturation load: uni %.2f, bi %.2f\n",
              saturation_load(uni_results), saturation_load(bi_results));
  return 0;
}
