// Ablation — channel-selection policy.
//
// The paper fixes "a channel selection policy which favors continuing
// routing in the current dimension over turning" (Section 3). This ablation
// quantifies how much the policy matters for deadlock formation and
// throughput under TFAR with 1 VC.
#include "common.hpp"

int main() {
  using namespace flexnet;
  namespace fb = flexnet::bench;

  fb::banner("Ablation: channel selection policy (TFAR, 1 VC)");

  const std::vector<double> loads{0.1, 0.2, 0.3, 0.5, 0.7};

  for (const SelectionKind selection :
       {SelectionKind::PreferStraight, SelectionKind::Random,
        SelectionKind::LowestIndex}) {
    ExperimentConfig cfg = fb::paper_default();
    cfg.sim.routing = RoutingKind::TFAR;
    cfg.sim.vcs = 1;
    cfg.sim.selection = selection;

    const auto results = sweep_loads(cfg, loads);
    const std::string name(to_string(selection));
    fb::emit("ablation_selection", "selection = " + name, results,
             deadlock_columns(), name);
    print_load_series(std::cout, "selection = " + name + " (throughput)",
                      results, throughput_columns());
    std::cout << '\n';
  }
  return 0;
}
