
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cwg.cpp" "src/CMakeFiles/flexnet.dir/core/cwg.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/core/cwg.cpp.o.d"
  "/root/repo/src/core/cycles.cpp" "src/CMakeFiles/flexnet.dir/core/cycles.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/core/cycles.cpp.o.d"
  "/root/repo/src/core/detector.cpp" "src/CMakeFiles/flexnet.dir/core/detector.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/core/detector.cpp.o.d"
  "/root/repo/src/core/dot.cpp" "src/CMakeFiles/flexnet.dir/core/dot.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/core/dot.cpp.o.d"
  "/root/repo/src/core/graph.cpp" "src/CMakeFiles/flexnet.dir/core/graph.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/core/graph.cpp.o.d"
  "/root/repo/src/core/knot.cpp" "src/CMakeFiles/flexnet.dir/core/knot.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/core/knot.cpp.o.d"
  "/root/repo/src/core/pwg.cpp" "src/CMakeFiles/flexnet.dir/core/pwg.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/core/pwg.cpp.o.d"
  "/root/repo/src/core/recovery.cpp" "src/CMakeFiles/flexnet.dir/core/recovery.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/core/recovery.cpp.o.d"
  "/root/repo/src/core/scc.cpp" "src/CMakeFiles/flexnet.dir/core/scc.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/core/scc.cpp.o.d"
  "/root/repo/src/core/timeout.cpp" "src/CMakeFiles/flexnet.dir/core/timeout.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/core/timeout.cpp.o.d"
  "/root/repo/src/exp/cli.cpp" "src/CMakeFiles/flexnet.dir/exp/cli.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/exp/cli.cpp.o.d"
  "/root/repo/src/exp/experiment.cpp" "src/CMakeFiles/flexnet.dir/exp/experiment.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/exp/experiment.cpp.o.d"
  "/root/repo/src/exp/report.cpp" "src/CMakeFiles/flexnet.dir/exp/report.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/exp/report.cpp.o.d"
  "/root/repo/src/exp/sweep.cpp" "src/CMakeFiles/flexnet.dir/exp/sweep.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/exp/sweep.cpp.o.d"
  "/root/repo/src/metrics/metrics.cpp" "src/CMakeFiles/flexnet.dir/metrics/metrics.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/metrics/metrics.cpp.o.d"
  "/root/repo/src/routing/dateline.cpp" "src/CMakeFiles/flexnet.dir/routing/dateline.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/routing/dateline.cpp.o.d"
  "/root/repo/src/routing/dor.cpp" "src/CMakeFiles/flexnet.dir/routing/dor.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/routing/dor.cpp.o.d"
  "/root/repo/src/routing/duato.cpp" "src/CMakeFiles/flexnet.dir/routing/duato.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/routing/duato.cpp.o.d"
  "/root/repo/src/routing/routing.cpp" "src/CMakeFiles/flexnet.dir/routing/routing.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/routing/routing.cpp.o.d"
  "/root/repo/src/routing/selection.cpp" "src/CMakeFiles/flexnet.dir/routing/selection.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/routing/selection.cpp.o.d"
  "/root/repo/src/routing/tfar.cpp" "src/CMakeFiles/flexnet.dir/routing/tfar.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/routing/tfar.cpp.o.d"
  "/root/repo/src/routing/turnmodel.cpp" "src/CMakeFiles/flexnet.dir/routing/turnmodel.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/routing/turnmodel.cpp.o.d"
  "/root/repo/src/sim/buffer.cpp" "src/CMakeFiles/flexnet.dir/sim/buffer.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/sim/buffer.cpp.o.d"
  "/root/repo/src/sim/config.cpp" "src/CMakeFiles/flexnet.dir/sim/config.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/sim/config.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/CMakeFiles/flexnet.dir/sim/network.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/sim/network.cpp.o.d"
  "/root/repo/src/topo/coordinates.cpp" "src/CMakeFiles/flexnet.dir/topo/coordinates.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/topo/coordinates.cpp.o.d"
  "/root/repo/src/topo/torus.cpp" "src/CMakeFiles/flexnet.dir/topo/torus.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/topo/torus.cpp.o.d"
  "/root/repo/src/traffic/injection.cpp" "src/CMakeFiles/flexnet.dir/traffic/injection.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/traffic/injection.cpp.o.d"
  "/root/repo/src/traffic/traffic.cpp" "src/CMakeFiles/flexnet.dir/traffic/traffic.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/traffic/traffic.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/flexnet.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/flexnet.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/options.cpp" "src/CMakeFiles/flexnet.dir/util/options.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/util/options.cpp.o.d"
  "/root/repo/src/util/parallel.cpp" "src/CMakeFiles/flexnet.dir/util/parallel.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/util/parallel.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/flexnet.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/flexnet.dir/util/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
