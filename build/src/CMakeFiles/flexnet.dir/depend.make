# Empty dependencies file for flexnet.
# This may be replaced when dependencies are built.
