file(REMOVE_RECURSE
  "libflexnet.a"
)
