file(REMOVE_RECURSE
  "CMakeFiles/recovery_study.dir/recovery_study.cpp.o"
  "CMakeFiles/recovery_study.dir/recovery_study.cpp.o.d"
  "recovery_study"
  "recovery_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
