# Empty dependencies file for recovery_study.
# This may be replaced when dependencies are built.
