# Empty compiler generated dependencies file for avoidance_vs_recovery.
# This may be replaced when dependencies are built.
