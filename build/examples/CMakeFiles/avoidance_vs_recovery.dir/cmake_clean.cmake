file(REMOVE_RECURSE
  "CMakeFiles/avoidance_vs_recovery.dir/avoidance_vs_recovery.cpp.o"
  "CMakeFiles/avoidance_vs_recovery.dir/avoidance_vs_recovery.cpp.o.d"
  "avoidance_vs_recovery"
  "avoidance_vs_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avoidance_vs_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
