# Empty compiler generated dependencies file for deadlock_anatomy.
# This may be replaced when dependencies are built.
