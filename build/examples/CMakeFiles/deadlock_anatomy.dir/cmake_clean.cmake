file(REMOVE_RECURSE
  "CMakeFiles/deadlock_anatomy.dir/deadlock_anatomy.cpp.o"
  "CMakeFiles/deadlock_anatomy.dir/deadlock_anatomy.cpp.o.d"
  "deadlock_anatomy"
  "deadlock_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadlock_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
