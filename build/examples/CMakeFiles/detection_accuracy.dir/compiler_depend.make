# Empty compiler generated dependencies file for detection_accuracy.
# This may be replaced when dependencies are built.
