file(REMOVE_RECURSE
  "CMakeFiles/detection_accuracy.dir/detection_accuracy.cpp.o"
  "CMakeFiles/detection_accuracy.dir/detection_accuracy.cpp.o.d"
  "detection_accuracy"
  "detection_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detection_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
