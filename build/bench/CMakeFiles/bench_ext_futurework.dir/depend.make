# Empty dependencies file for bench_ext_futurework.
# This may be replaced when dependencies are built.
