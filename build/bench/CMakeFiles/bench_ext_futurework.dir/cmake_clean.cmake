file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_futurework.dir/bench_ext_futurework.cpp.o"
  "CMakeFiles/bench_ext_futurework.dir/bench_ext_futurework.cpp.o.d"
  "bench_ext_futurework"
  "bench_ext_futurework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_futurework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
