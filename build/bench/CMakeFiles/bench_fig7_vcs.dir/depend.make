# Empty dependencies file for bench_fig7_vcs.
# This may be replaced when dependencies are built.
