file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_vcs.dir/bench_fig7_vcs.cpp.o"
  "CMakeFiles/bench_fig7_vcs.dir/bench_fig7_vcs.cpp.o.d"
  "bench_fig7_vcs"
  "bench_fig7_vcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_vcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
