file(REMOVE_RECURSE
  "../tools/diag_fault"
  "../tools/diag_fault.pdb"
  "CMakeFiles/diag_fault.dir/__/tools/diag_fault.cpp.o"
  "CMakeFiles/diag_fault.dir/__/tools/diag_fault.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diag_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
