# Empty compiler generated dependencies file for diag_fault.
# This may be replaced when dependencies are built.
