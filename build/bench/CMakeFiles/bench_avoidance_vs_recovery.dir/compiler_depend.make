# Empty compiler generated dependencies file for bench_avoidance_vs_recovery.
# This may be replaced when dependencies are built.
