file(REMOVE_RECURSE
  "CMakeFiles/bench_avoidance_vs_recovery.dir/bench_avoidance_vs_recovery.cpp.o"
  "CMakeFiles/bench_avoidance_vs_recovery.dir/bench_avoidance_vs_recovery.cpp.o.d"
  "bench_avoidance_vs_recovery"
  "bench_avoidance_vs_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_avoidance_vs_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
