file(REMOVE_RECURSE
  "CMakeFiles/bench_sec36_traffic.dir/bench_sec36_traffic.cpp.o"
  "CMakeFiles/bench_sec36_traffic.dir/bench_sec36_traffic.cpp.o.d"
  "bench_sec36_traffic"
  "bench_sec36_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec36_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
