# Empty dependencies file for bench_sec36_traffic.
# This may be replaced when dependencies are built.
