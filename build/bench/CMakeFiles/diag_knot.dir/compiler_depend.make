# Empty compiler generated dependencies file for diag_knot.
# This may be replaced when dependencies are built.
