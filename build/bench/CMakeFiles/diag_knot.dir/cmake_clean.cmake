file(REMOVE_RECURSE
  "../tools/diag_knot"
  "../tools/diag_knot.pdb"
  "CMakeFiles/diag_knot.dir/__/tools/diag_knot.cpp.o"
  "CMakeFiles/diag_knot.dir/__/tools/diag_knot.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diag_knot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
