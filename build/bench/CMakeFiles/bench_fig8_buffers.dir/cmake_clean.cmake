file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_buffers.dir/bench_fig8_buffers.cpp.o"
  "CMakeFiles/bench_fig8_buffers.dir/bench_fig8_buffers.cpp.o.d"
  "bench_fig8_buffers"
  "bench_fig8_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
