# Empty dependencies file for bench_fig8_buffers.
# This may be replaced when dependencies are built.
