# Empty dependencies file for bench_fig5_links.
# This may be replaced when dependencies are built.
