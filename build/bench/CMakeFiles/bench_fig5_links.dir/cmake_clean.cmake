file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_links.dir/bench_fig5_links.cpp.o"
  "CMakeFiles/bench_fig5_links.dir/bench_fig5_links.cpp.o.d"
  "bench_fig5_links"
  "bench_fig5_links.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
