# Empty dependencies file for bench_fig6_adaptivity.
# This may be replaced when dependencies are built.
