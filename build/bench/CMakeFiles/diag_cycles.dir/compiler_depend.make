# Empty compiler generated dependencies file for diag_cycles.
# This may be replaced when dependencies are built.
