file(REMOVE_RECURSE
  "../tools/diag_cycles"
  "../tools/diag_cycles.pdb"
  "CMakeFiles/diag_cycles.dir/__/tools/diag_cycles.cpp.o"
  "CMakeFiles/diag_cycles.dir/__/tools/diag_cycles.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diag_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
