file(REMOVE_RECURSE
  "CMakeFiles/bench_sec35_degree.dir/bench_sec35_degree.cpp.o"
  "CMakeFiles/bench_sec35_degree.dir/bench_sec35_degree.cpp.o.d"
  "bench_sec35_degree"
  "bench_sec35_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec35_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
