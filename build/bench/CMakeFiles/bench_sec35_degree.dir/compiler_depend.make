# Empty compiler generated dependencies file for bench_sec35_degree.
# This may be replaced when dependencies are built.
