file(REMOVE_RECURSE
  "CMakeFiles/test_timeout.dir/test_timeout.cpp.o"
  "CMakeFiles/test_timeout.dir/test_timeout.cpp.o.d"
  "test_timeout"
  "test_timeout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timeout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
