# Empty dependencies file for test_timeout.
# This may be replaced when dependencies are built.
