# Empty compiler generated dependencies file for test_cwg.
# This may be replaced when dependencies are built.
