# Empty compiler generated dependencies file for test_knot.
# This may be replaced when dependencies are built.
