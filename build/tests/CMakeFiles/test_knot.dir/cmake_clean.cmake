file(REMOVE_RECURSE
  "CMakeFiles/test_knot.dir/test_knot.cpp.o"
  "CMakeFiles/test_knot.dir/test_knot.cpp.o.d"
  "test_knot"
  "test_knot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_knot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
