file(REMOVE_RECURSE
  "CMakeFiles/test_detector_live.dir/test_detector_live.cpp.o"
  "CMakeFiles/test_detector_live.dir/test_detector_live.cpp.o.d"
  "test_detector_live"
  "test_detector_live.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detector_live.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
