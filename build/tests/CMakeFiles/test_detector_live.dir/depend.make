# Empty dependencies file for test_detector_live.
# This may be replaced when dependencies are built.
