file(REMOVE_RECURSE
  "CMakeFiles/test_routing_tfar.dir/test_routing_tfar.cpp.o"
  "CMakeFiles/test_routing_tfar.dir/test_routing_tfar.cpp.o.d"
  "test_routing_tfar"
  "test_routing_tfar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_routing_tfar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
