# Empty dependencies file for test_routing_tfar.
# This may be replaced when dependencies are built.
