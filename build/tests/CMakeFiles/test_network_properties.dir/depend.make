# Empty dependencies file for test_network_properties.
# This may be replaced when dependencies are built.
