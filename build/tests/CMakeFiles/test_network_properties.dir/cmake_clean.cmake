file(REMOVE_RECURSE
  "CMakeFiles/test_network_properties.dir/test_network_properties.cpp.o"
  "CMakeFiles/test_network_properties.dir/test_network_properties.cpp.o.d"
  "test_network_properties"
  "test_network_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
