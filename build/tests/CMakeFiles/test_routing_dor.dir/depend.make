# Empty dependencies file for test_routing_dor.
# This may be replaced when dependencies are built.
