file(REMOVE_RECURSE
  "CMakeFiles/test_routing_dor.dir/test_routing_dor.cpp.o"
  "CMakeFiles/test_routing_dor.dir/test_routing_dor.cpp.o.d"
  "test_routing_dor"
  "test_routing_dor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_routing_dor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
