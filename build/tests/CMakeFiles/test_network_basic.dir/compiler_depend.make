# Empty compiler generated dependencies file for test_network_basic.
# This may be replaced when dependencies are built.
