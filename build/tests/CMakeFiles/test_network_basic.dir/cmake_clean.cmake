file(REMOVE_RECURSE
  "CMakeFiles/test_network_basic.dir/test_network_basic.cpp.o"
  "CMakeFiles/test_network_basic.dir/test_network_basic.cpp.o.d"
  "test_network_basic"
  "test_network_basic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
