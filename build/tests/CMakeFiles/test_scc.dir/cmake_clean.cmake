file(REMOVE_RECURSE
  "CMakeFiles/test_scc.dir/test_scc.cpp.o"
  "CMakeFiles/test_scc.dir/test_scc.cpp.o.d"
  "test_scc"
  "test_scc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
