# Empty dependencies file for test_scc.
# This may be replaced when dependencies are built.
