file(REMOVE_RECURSE
  "CMakeFiles/test_sweep.dir/test_sweep.cpp.o"
  "CMakeFiles/test_sweep.dir/test_sweep.cpp.o.d"
  "test_sweep"
  "test_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
