file(REMOVE_RECURSE
  "CMakeFiles/test_quiescence.dir/test_quiescence.cpp.o"
  "CMakeFiles/test_quiescence.dir/test_quiescence.cpp.o.d"
  "test_quiescence"
  "test_quiescence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quiescence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
