# Empty compiler generated dependencies file for test_quiescence.
# This may be replaced when dependencies are built.
