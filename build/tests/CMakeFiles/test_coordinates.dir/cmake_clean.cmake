file(REMOVE_RECURSE
  "CMakeFiles/test_coordinates.dir/test_coordinates.cpp.o"
  "CMakeFiles/test_coordinates.dir/test_coordinates.cpp.o.d"
  "test_coordinates"
  "test_coordinates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coordinates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
