# Empty dependencies file for test_coordinates.
# This may be replaced when dependencies are built.
