file(REMOVE_RECURSE
  "CMakeFiles/test_torus.dir/test_torus.cpp.o"
  "CMakeFiles/test_torus.dir/test_torus.cpp.o.d"
  "test_torus"
  "test_torus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_torus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
