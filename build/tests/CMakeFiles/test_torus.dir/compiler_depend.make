# Empty compiler generated dependencies file for test_torus.
# This may be replaced when dependencies are built.
