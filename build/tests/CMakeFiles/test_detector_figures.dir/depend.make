# Empty dependencies file for test_detector_figures.
# This may be replaced when dependencies are built.
