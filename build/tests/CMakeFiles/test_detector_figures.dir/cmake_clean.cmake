file(REMOVE_RECURSE
  "CMakeFiles/test_detector_figures.dir/test_detector_figures.cpp.o"
  "CMakeFiles/test_detector_figures.dir/test_detector_figures.cpp.o.d"
  "test_detector_figures"
  "test_detector_figures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detector_figures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
