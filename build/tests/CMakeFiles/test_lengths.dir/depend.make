# Empty dependencies file for test_lengths.
# This may be replaced when dependencies are built.
