file(REMOVE_RECURSE
  "CMakeFiles/test_lengths.dir/test_lengths.cpp.o"
  "CMakeFiles/test_lengths.dir/test_lengths.cpp.o.d"
  "test_lengths"
  "test_lengths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lengths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
