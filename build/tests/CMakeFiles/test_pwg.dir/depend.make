# Empty dependencies file for test_pwg.
# This may be replaced when dependencies are built.
