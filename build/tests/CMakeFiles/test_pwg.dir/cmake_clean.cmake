file(REMOVE_RECURSE
  "CMakeFiles/test_pwg.dir/test_pwg.cpp.o"
  "CMakeFiles/test_pwg.dir/test_pwg.cpp.o.d"
  "test_pwg"
  "test_pwg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pwg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
