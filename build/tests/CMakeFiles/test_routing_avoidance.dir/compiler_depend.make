# Empty compiler generated dependencies file for test_routing_avoidance.
# This may be replaced when dependencies are built.
