file(REMOVE_RECURSE
  "CMakeFiles/test_routing_avoidance.dir/test_routing_avoidance.cpp.o"
  "CMakeFiles/test_routing_avoidance.dir/test_routing_avoidance.cpp.o.d"
  "test_routing_avoidance"
  "test_routing_avoidance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_routing_avoidance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
