// Avoidance vs recovery in one run: the trade-off the paper's introduction
// frames. Avoidance-based routing (dateline DOR, Duato's protocol) buys
// guaranteed deadlock freedom with routing restrictions; recovery-based
// routing (unrestricted DOR/TFAR + true deadlock detection + Disha-style
// removal) keeps full routing freedom and pays only when deadlocks actually
// form — which, with 2-3 VCs, is almost never.
//
//   ./avoidance_vs_recovery [--load X] [--k N]
#include <cstdio>

#include "flexnet.hpp"

int main(int argc, char** argv) {
  using namespace flexnet;
  const auto opts = Options::parse(argc, argv);
  if (!opts) return 1;

  const double load = opts->get_double("load", 0.4);
  const int k = static_cast<int>(opts->get_int("k", 16));

  struct Scheme {
    const char* label;
    RoutingKind routing;
    int vcs;
  };
  const Scheme schemes[] = {
      {"recovery: DOR, 1 VC", RoutingKind::DOR, 1},
      {"recovery: TFAR, 1 VC", RoutingKind::TFAR, 1},
      {"recovery: TFAR, 2 VC", RoutingKind::TFAR, 2},
      {"recovery: TFAR, 3 VC", RoutingKind::TFAR, 3},
      {"avoidance: dateline DOR, 2 VC", RoutingKind::DatelineDOR, 2},
      {"avoidance: Duato TFAR, 3 VC", RoutingKind::DuatoTFAR, 3},
  };

  std::printf("Avoidance vs recovery on a %d-ary 2-cube at load %.2f\n\n", k,
              load);
  std::printf("%-32s %10s %10s %10s %12s\n", "scheme", "deadlocks",
              "recovered", "latency", "norm thruput");
  for (const Scheme& scheme : schemes) {
    ExperimentConfig cfg;
    cfg.sim.topology.k = k;
    cfg.sim.routing = scheme.routing;
    cfg.sim.vcs = scheme.vcs;
    cfg.traffic.load = load;
    cfg.run.warmup = 3000;
    cfg.run.measure = 10000;
    const ExperimentResult r = run_experiment(cfg);
    std::printf("%-32s %10lld %10lld %10.1f %12.4f\n", scheme.label,
                static_cast<long long>(r.window.deadlocks),
                static_cast<long long>(r.window.recovered),
                r.window.avg_latency, r.normalized_throughput);
  }
  std::printf(
      "\nPaper conclusion (Section 5): with unrestricted use of only a few\n"
      "virtual channels deadlock becomes highly improbable, so recovery-based\n"
      "routing is viable and avoidance's restrictions are overly cautious.\n");
  return 0;
}
