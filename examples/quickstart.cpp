// Quickstart: run one simulation with the paper's default configuration and
// print throughput, congestion and deadlock statistics.
//
//   ./quickstart [--routing DOR|TFAR] [--vcs N] [--load X] [--k N] [--n N]
//                [--uni] [--buffer D] [--warmup C] [--measure C]
#include <cstdio>
#include <iostream>

#include "flexnet.hpp"

namespace {

flexnet::RoutingKind parse_routing(const std::string& name) {
  if (name == "DOR") return flexnet::RoutingKind::DOR;
  if (name == "TFAR") return flexnet::RoutingKind::TFAR;
  if (name == "DatelineDOR") return flexnet::RoutingKind::DatelineDOR;
  if (name == "DuatoTFAR") return flexnet::RoutingKind::DuatoTFAR;
  if (name == "NegativeFirst") return flexnet::RoutingKind::NegativeFirst;
  throw std::invalid_argument("unknown routing: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  std::string error;
  const auto opts = flexnet::Options::parse(argc, argv, &error);
  if (!opts) {
    std::cerr << "argument error: " << error << '\n';
    return 1;
  }

  flexnet::ExperimentConfig cfg;  // paper defaults: 16-ary 2-cube, bi, 1 VC
  cfg.sim.routing = parse_routing(opts->get("routing", "TFAR"));
  cfg.sim.vcs = static_cast<int>(opts->get_int("vcs", 1));
  cfg.sim.buffer_depth = static_cast<int>(opts->get_int("buffer", 2));
  cfg.sim.injection_vcs = static_cast<int>(opts->get_int("ivcs", 1));
  cfg.sim.ejection_vcs = static_cast<int>(opts->get_int("evcs", 1));
  cfg.sim.topology.k = static_cast<int>(opts->get_int("k", 16));
  cfg.sim.topology.n = static_cast<int>(opts->get_int("n", 2));
  cfg.sim.topology.bidirectional = !opts->get_bool("uni", false);
  cfg.sim.seed = static_cast<std::uint64_t>(opts->get_int("seed", 1));
  cfg.sim.source_queue_limit = static_cast<int>(opts->get_int("queue", 4));
  cfg.traffic.load = opts->get_double("load", 0.6);
  cfg.run.warmup = opts->get_int("warmup", 5000);
  cfg.run.measure = opts->get_int("measure", 15000);

  std::printf("flexnet quickstart: %s, %d VC(s), %d-ary %d-cube (%s), load %.2f\n",
              std::string(flexnet::to_string(cfg.sim.routing)).c_str(),
              cfg.sim.vcs, cfg.sim.topology.k, cfg.sim.topology.n,
              cfg.sim.topology.bidirectional ? "bidirectional" : "unidirectional",
              cfg.traffic.load);

  const flexnet::ExperimentResult r = flexnet::run_experiment(cfg);
  const flexnet::WindowMetrics& w = r.window;

  std::printf("capacity            %.4f flits/node/cycle\n", r.capacity_flits_per_node);
  std::printf("offered / accepted  %.4f / %.4f flits/node/cycle (%s)\n",
              r.offered_flit_rate, w.throughput_flits_per_node,
              r.saturated ? "SATURATED" : "below saturation");
  std::printf("delivered           %lld messages (+%lld recovered)\n",
              static_cast<long long>(w.delivered),
              static_cast<long long>(w.recovered));
  std::printf("avg latency / hops  %.1f cycles / %.2f\n", w.avg_latency, w.avg_hops);
  std::printf("blocked (mean)      %.1f messages (%.1f%% of in-network)\n",
              w.blocked_messages.mean(), 100.0 * w.blocked_fraction.mean());
  std::printf("deadlocks           %lld (%.5f per delivered message)\n",
              static_cast<long long>(w.deadlocks), w.normalized_deadlocks);
  if (w.deadlocks > 0) {
    std::printf("  deadlock set size %.2f mean / %.0f max\n",
                w.deadlock_set_size.mean(), w.deadlock_set_size.max());
    std::printf("  resource set size %.2f mean / %.0f max\n",
                w.resource_set_size.mean(), w.resource_set_size.max());
    std::printf("  knot cycle density %.2f mean / %.0f max (%lld single-cycle, %lld multi-cycle)\n",
                w.knot_cycle_density.mean(), w.knot_cycle_density.max(),
                static_cast<long long>(w.single_cycle_deadlocks),
                static_cast<long long>(w.multi_cycle_deadlocks));
  }
  return 0;
}
