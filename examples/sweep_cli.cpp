// sweep_cli: run any flexnet experiment sweep from the command line and get
// the paper-style table plus CSV. Every configuration knob is exposed; see
// src/exp/cli.hpp for the full option list.
//
// Examples:
//   ./sweep_cli --routing DOR --vcs 1 --uni --loads 0.1,0.2,0.4
//   ./sweep_cli --routing TFAR --vcs 2 --traffic Transpose --load-steps 6
//   ./sweep_cli --routing TFAR --faults 0.1 --count-cycles --csv out.csv
//   ./sweep_cli --routing DOR --vcs 1 --uni --loads 0.6
//       --trace-chrome trace.json --forensics     # chrome://tracing + forensics
//   ./sweep_cli --routing TFAR --loads 0.3,0.6 --telemetry-json run.json
//       --heatmap heat.csv --heatmap-ascii --profile  # telemetry manifests
//   ./sweep_cli --routing DOR --uni --loads 0.8 --metrics run.ndjson
//       --metrics-interval 50                # streaming observability NDJSON
//   ./sweep_cli --routing DOR --uni --loads 0.8 --checkpoint-every 5000
//       --checkpoint-dir ckpt                # periodic resumable checkpoints
//   ./sweep_cli --resume ckpt.p0/ckpt-15000.snap   # continue that run
//   ./sweep_cli --routing DOR --uni --loads 0.8 --capture-deadlocks corpus
//       --capture-limit 8                    # dump deduped knot snapshots
//   ./sweep_cli --routing TFAR --loads 0.5 --interval 1
//       --detector-full-rebuild              # oracle: rebuild CWG every pass
//   ./sweep_cli --routing DOR --loads 0.2 --step-dense
//                                            # oracle: dense per-cycle sweep
//   ./sweep_cli --routing TFAR --k 32 --n 3 --loads 0.4 --shards auto
//                                            # 32k routers, parallel stepping
//   ./sweep_cli --routing DOR --loads 0.5 --shards 8
//       # deterministic: byte-identical to --shards 1 for any shard count.
//       # --shards outranks FLEXNET_THREADS ('auto' = that thread count,
//       # capped at the node count); combining with --step-dense is an error.
//   ./sweep_cli --topology file:examples/topologies/irregular-16.topo
//       --loads 0.6 --capture-deadlocks corpus  # irregular network, TableMin
//   ./sweep_cli --topology dragonfly --df-routers 8 --df-globals 1
//       --routing TableUpDown --loads 0.4    # deadlock-free any-topology
//   ./sweep_cli --topology random --nodes 24 --degree 3 --topo-seed 7
//       --route-table-dump tables.rt --loads 0.3  # dump the routing tables
//   ./sweep_cli --routing DOR --loads 0.3 --capture-trace run.trace
//                                            # record the arrival stream
//   ./sweep_cli --workload trace:run.trace --routing DOR --loads 0.3
//                                            # replay it byte-identically
//   ./sweep_cli --routing DOR --uni --vcs 1 --length 8 --loads 0.08
//       --workload 'pace:burst(200,0.2,4)' --forensics  # bursty workload
#include <fstream>
#include <iostream>

#include "exp/cli.hpp"
#include "flexnet.hpp"
#include "routing/table.hpp"

int main(int argc, char** argv) {
  using namespace flexnet;
  std::string error;
  const auto opts = Options::parse(argc, argv, &error);
  if (!opts) {
    std::cerr << "argument error: " << error << '\n';
    return 1;
  }

  try {
    const ExperimentConfig base = experiment_from_options(*opts);

    // Resuming is a single-run operation: the snapshot fixes the load and
    // every sim parameter, so the sweep collapses to one point.
    if (!base.snapshot.resume_path.empty()) {
      Simulation sim(base);
      std::cout << "flexnet resume: " << base.snapshot.resume_path
                << " @ cycle " << sim.network().now() << " of "
                << (sim.config().run.warmup + sim.config().run.measure)
                << '\n';
      const ExperimentResult result = sim.run();
      const std::vector<ExperimentResult> results{result};
      print_load_series(std::cout, "deadlocks", results, deadlock_columns());
      std::cout << '\n';
      print_load_series(std::cout, "throughput", results, throughput_columns());
      if (!base.telemetry.manifest_path.empty()) {
        std::cout << "\nTelemetry manifest written to "
                  << base.telemetry.manifest_path << '\n';
      }
      if (!result.obs.metrics_path.empty()) {
        std::cout << "Metrics stream appended to " << result.obs.metrics_path
                  << " (" << result.obs.samples << " sample(s), "
                  << result.obs.warnings << " warning(s))\n";
      }
      if (result.deadlocks_captured > 0) {
        std::cout << result.deadlocks_captured << " deadlock snapshot(s) in "
                  << base.snapshot.capture_dir << '\n';
      }
      return 0;
    }

    // --route-table-dump FILE: build the network once, write its routing
    // tables as flexnet-rtable-v1, and exit (no sweep).
    if (opts->has("route-table-dump")) {
      Simulation sim(base);
      const auto* table =
          dynamic_cast<const TableRouting*>(&sim.network().routing_algorithm());
      if (table == nullptr) {
        throw std::runtime_error(
            "--route-table-dump needs --routing TableMin or TableUpDown");
      }
      const std::string path = opts->get("route-table-dump");
      std::ofstream out(path);
      if (!out) throw std::runtime_error("cannot open " + path);
      table->dump(out);
      std::cout << "routing tables (" << table->name() << ", "
                << sim.network().topology().name() << ") written to " << path
                << '\n';
      return 0;
    }

    const std::vector<double> loads = loads_from_options(*opts);

    std::cout << "flexnet sweep: " << to_string(base.sim.routing) << ", "
              << base.sim.vcs << " VC(s), ";
    if (base.sim.topo_kind == TopoKind::Torus) {
      std::cout << base.sim.topology.k << "-ary " << base.sim.topology.n
                << "-cube (" << (base.sim.topology.wrap ? "torus" : "mesh")
                << ", " << (base.sim.topology.bidirectional ? "bi" : "uni")
                << "), ";
    } else {
      std::cout << to_string(base.sim.topo_kind);
      if (!base.sim.topo_file.empty()) std::cout << ' ' << base.sim.topo_file;
      std::cout << ", ";
    }
    std::cout << to_string(base.traffic.pattern) << " traffic, "
              << loads.size() << " load points\n\n";

    const auto results = sweep_loads(base, loads);

    print_load_series(std::cout, "deadlocks", results, deadlock_columns());
    std::cout << '\n';
    print_load_series(std::cout, "set sizes", results, set_size_columns());
    std::cout << '\n';
    print_load_series(std::cout, "throughput", results, throughput_columns());
    if (base.detector.count_total_cycles) {
      std::cout << '\n';
      print_load_series(std::cout, "cycles", results, cycle_columns());
    }

    if (opts->has("csv")) {
      std::ofstream out(opts->get("csv"));
      if (!out) {
        throw std::runtime_error("cannot open CSV output file: " +
                                 opts->get("csv"));
      }
      write_results_csv(out, results, opts->get("label", "sweep"));
      std::cout << "\nCSV written to " << opts->get("csv") << '\n';
    }

    if (opts->get_bool("heatmap-ascii", false)) {
      for (const ExperimentResult& r : results) {
        if (r.telemetry.heatmap_ascii.empty()) continue;
        std::cout << "\n== traversal heatmap @ load " << r.load << " ==\n"
                  << r.telemetry.heatmap_ascii;
      }
    }
    if (opts->get_bool("profile", false)) {
      for (const ExperimentResult& r : results) {
        if (r.telemetry.profile_table.empty()) continue;
        std::cout << "\n@ load " << r.load << '\n' << r.telemetry.profile_table;
      }
    }
    if (!base.telemetry.manifest_path.empty()) {
      std::cout << "\nTelemetry manifest(s) written to "
                << base.telemetry.manifest_path
                << (loads.size() > 1 ? " (per-point .pN suffix)" : "") << '\n';
    }
    if (!base.telemetry.heatmap_csv_path.empty()) {
      std::cout << "Heatmap CSV written to " << base.telemetry.heatmap_csv_path
                << (loads.size() > 1 ? " (per-point .pN suffix)" : "") << '\n';
    }
    if (!base.obs.metrics_path.empty()) {
      std::int64_t warnings = 0;
      for (const ExperimentResult& r : results) warnings += r.obs.warnings;
      std::cout << "Metrics stream(s) written to " << base.obs.metrics_path
                << (loads.size() > 1 ? " (per-point .pN suffix)" : "") << ", "
                << warnings << " deadlock warning(s) — tail with "
                << "tools/metrics_tail\n";
    }

    if (!base.snapshot.capture_dir.empty()) {
      int total = 0;
      for (const ExperimentResult& r : results) total += r.deadlocks_captured;
      std::cout << '\n' << total << " deadlock snapshot(s) captured under "
                << base.snapshot.capture_dir
                << (loads.size() > 1 ? " (per-point .pN suffix)" : "") << '\n';
    }

    if (base.trace.forensics) {
      for (const ExperimentResult& r : results) {
        if (r.forensics.empty()) continue;
        std::cout << "\n== forensics @ load " << r.load << " ("
                  << r.forensics.size() << " deadlock(s) retained) ==\n";
        for (const ForensicsReport& report : r.forensics) {
          std::cout << '\n' << format_forensics_report(report);
        }
      }
    }
    if (!base.trace.chrome_path.empty()) {
      std::cout << "\nChrome trace written to " << base.trace.chrome_path
                << (loads.size() > 1 ? " (per-point .pN suffix)" : "")
                << " — load it in chrome://tracing or ui.perfetto.dev\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
