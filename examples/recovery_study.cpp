// Recovery study: how victim selection and detection cadence shape the cost
// of deadlock recovery on a deadlock-heavy configuration (DOR, 1 VC, beyond
// saturation). The paper breaks deadlocks "immediately upon detection" every
// 50 cycles with a Disha-style removal; this example quantifies what happens
// when the detector runs slower or chooses victims differently.
//
//   ./recovery_study [--load X] [--k N] [--measure C]
#include <cstdio>

#include "flexnet.hpp"

int main(int argc, char** argv) {
  using namespace flexnet;
  const auto opts = Options::parse(argc, argv);
  if (!opts) return 1;

  ExperimentConfig base;
  base.sim.routing = RoutingKind::DOR;
  base.sim.vcs = 1;
  base.sim.topology.k = static_cast<int>(opts->get_int("k", 16));
  base.traffic.load = opts->get_double("load", 0.4);
  base.run.warmup = 3000;
  base.run.measure = opts->get_int("measure", 10000);

  std::printf("Recovery study: DOR, 1 VC, %d-ary 2-cube, load %.2f\n\n",
              base.sim.topology.k, base.traffic.load);

  std::printf("%-22s %-10s %10s %10s %10s %10s %10s\n", "victim policy",
              "interval", "deadlocks", "recovered", "delivered", "latency",
              "thruput");
  for (const Cycle interval : {Cycle{25}, Cycle{50}, Cycle{200}}) {
    for (const RecoveryKind recovery :
         {RecoveryKind::RemoveOldest, RecoveryKind::RemoveNewest,
          RecoveryKind::RemoveMostResources, RecoveryKind::RemoveRandom}) {
      ExperimentConfig cfg = base;
      cfg.detector.interval = interval;
      cfg.detector.recovery = recovery;
      const ExperimentResult r = run_experiment(cfg);
      std::printf("%-22s %-10lld %10lld %10lld %10lld %10.1f %10.4f\n",
                  std::string(to_string(recovery)).c_str(),
                  static_cast<long long>(interval),
                  static_cast<long long>(r.window.deadlocks),
                  static_cast<long long>(r.window.recovered),
                  static_cast<long long>(r.window.delivered),
                  r.window.avg_latency, r.window.throughput_flits_per_node);
    }
  }

  // What if we never recover? Deadlocks freeze rings permanently; the same
  // knots are re-counted at every detector pass and throughput decays.
  ExperimentConfig none = base;
  none.detector.recovery = RecoveryKind::None;
  const ExperimentResult frozen = run_experiment(none);
  std::printf("%-22s %-10d %10lld %10lld %10lld %10.1f %10.4f\n", "None", 50,
              static_cast<long long>(frozen.window.deadlocks),
              static_cast<long long>(frozen.window.recovered),
              static_cast<long long>(frozen.window.delivered),
              frozen.window.avg_latency,
              frozen.window.throughput_flits_per_node);
  std::printf("\n(with RecoveryKind::None each frozen knot is re-counted every"
              " detector pass, so 'deadlocks' counts sightings, not events)\n");
  return 0;
}
