// Detection accuracy: how does timeout-based presumed-deadlock detection
// (Compressionless Routing / Disha style) compare against true knot-based
// detection — and how often do packet-wait-for-graph cycles appear without
// any deadlock?
//
// This is the paper's Related Work quantified: "Deadlock approximation
// schemes proposed previously have provided little insight into the
// frequency of true deadlocks", and Section 2.2.3's point that eliminating
// PWG cycles (Dally & Aoki) is overly restrictive.
//
//   ./detection_accuracy [--routing DOR|TFAR] [--vcs N] [--load X] [--k N]
#include <cstdio>

#include "core/pwg.hpp"
#include "core/timeout.hpp"
#include "flexnet.hpp"

int main(int argc, char** argv) {
  using namespace flexnet;
  const auto opts = Options::parse(argc, argv);
  if (!opts) return 1;

  ExperimentConfig cfg;
  cfg.sim.routing = opts->get("routing", "DOR") == "TFAR" ? RoutingKind::TFAR
                                                          : RoutingKind::DOR;
  cfg.sim.vcs = static_cast<int>(opts->get_int("vcs", 1));
  cfg.sim.topology.k = static_cast<int>(opts->get_int("k", 16));
  cfg.traffic.load = opts->get_double("load", 0.4);
  cfg.detector.recovery = RecoveryKind::None;  // observe, don't intervene

  std::printf("Detection accuracy study: %s, %d VC(s), %d-ary 2-cube, "
              "load %.2f (no recovery; sampling every 50 cycles)\n\n",
              std::string(to_string(cfg.sim.routing)).c_str(), cfg.sim.vcs,
              cfg.sim.topology.k, cfg.traffic.load);

  Simulation sim(cfg);
  Network& net = sim.network();

  const Cycle thresholds[] = {25, 50, 100, 250, 1000};
  TimeoutAccuracy totals[5];
  std::int64_t samples = 0;
  std::int64_t pwg_cycle_samples = 0;
  std::int64_t knot_samples = 0;
  std::int64_t pwg_messages_on_cycles = 0;

  for (Cycle t = 0; t < 6000; ++t) {
    sim.injection().tick(net);
    net.step();
    if (net.now() % 50 != 0) continue;
    ++samples;
    for (std::size_t i = 0; i < 5; ++i) {
      const TimeoutAccuracy acc = classify_timeout_detection(net, thresholds[i]);
      totals[i].presumed += acc.presumed;
      totals[i].true_positive += acc.true_positive;
      totals[i].dependent += acc.dependent;
      totals[i].false_positive += acc.false_positive;
      totals[i].actually_deadlocked += acc.actually_deadlocked;
    }
    const Cwg cwg = Cwg::from_network(net);
    const Pwg pwg = Pwg::from_cwg(cwg);
    if (pwg.has_cycle()) {
      ++pwg_cycle_samples;
      pwg_messages_on_cycles += pwg.messages_on_cycles();
    }
    if (has_deadlock(cwg)) ++knot_samples;
  }

  std::printf("%-10s %10s %10s %10s %10s %10s %8s\n", "timeout", "presumed",
              "true+", "dependent", "false+", "missed", "FP rate");
  for (std::size_t i = 0; i < 5; ++i) {
    std::printf("%-10lld %10lld %10lld %10lld %10lld %10lld %7.1f%%\n",
                static_cast<long long>(thresholds[i]),
                static_cast<long long>(totals[i].presumed),
                static_cast<long long>(totals[i].true_positive),
                static_cast<long long>(totals[i].dependent),
                static_cast<long long>(totals[i].false_positive),
                static_cast<long long>(totals[i].missed()),
                100.0 * totals[i].false_positive_rate());
  }
  std::printf("\n(true+ = presumed messages actually in a deadlock set;"
              " dependent = blocked on a deadlock but removing them would not"
              " resolve it; false+ = merely congested)\n");
  std::printf("\nPWG vs CWG over %lld samples: PWG cycles present in %lld"
              " samples (avg %.1f messages on cycles), true deadlock present"
              " in %lld samples.\n",
              static_cast<long long>(samples),
              static_cast<long long>(pwg_cycle_samples),
              pwg_cycle_samples > 0
                  ? static_cast<double>(pwg_messages_on_cycles) /
                        static_cast<double>(pwg_cycle_samples)
                  : 0.0,
              static_cast<long long>(knot_samples));
  std::printf("Every PWG-cycle sample without a knot is routing freedom that"
              " cycle-eliminating avoidance would have sacrificed for"
              " nothing.\n");
  return 0;
}
