// Deadlock anatomy: runs a deadlock-prone configuration with recovery
// disabled, waits for the first *true* (quiescent) deadlock, and dissects it
// the way the paper's Section 2 figures do: the knot's virtual channels, the
// deadlock set with each message's held chain and request set, the resource
// set, dependent messages, and the knot cycle density with the actual cycles.
//
// The run is traced through an always-on ring buffer, so the dissection ends
// with a *formation* forensics report: when each deadlocked message last made
// progress and the order their blocked episodes closed the knot.
//
//   ./deadlock_anatomy [--routing DOR|TFAR] [--vcs N] [--load X] [--k N]
//                      [--uni] [--seed S] [--max-cycles C] [--dot FILE]
//                      [--trace-chrome FILE] [--ring N]
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "flexnet.hpp"

namespace {

using namespace flexnet;

std::string describe_vc(const Network& net, VcId vc_id) {
  const VcState& vc = net.vc(vc_id);
  const PhysChannel& pc = net.phys(vc.channel);
  const Coordinates& coords = torus_topology(net.topology()).coordinates();
  char buf[96];
  switch (pc.kind) {
    case ChannelKind::Injection:
      std::snprintf(buf, sizeof(buf), "vc%-5d inj@(%d,%d)", vc_id,
                    coords.coordinate(pc.src, 0), coords.coordinate(pc.src, 1));
      break;
    case ChannelKind::Ejection:
      std::snprintf(buf, sizeof(buf), "vc%-5d ej@(%d,%d)", vc_id,
                    coords.coordinate(pc.src, 0), coords.coordinate(pc.src, 1));
      break;
    case ChannelKind::Network:
      std::snprintf(buf, sizeof(buf), "vc%-5d (%d,%d)->(%d,%d) d%d%s.%d",
                    vc_id, coords.coordinate(pc.src, 0),
                    coords.coordinate(pc.src, 1), coords.coordinate(pc.dst, 0),
                    coords.coordinate(pc.dst, 1), pc.dim,
                    pc.dir > 0 ? "+" : "-", vc.index);
      break;
  }
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = Options::parse(argc, argv);
  if (!opts) return 1;

  ExperimentConfig cfg;
  cfg.sim.routing = opts->get("routing", "DOR") == "TFAR" ? RoutingKind::TFAR
                                                          : RoutingKind::DOR;
  cfg.sim.vcs = static_cast<int>(opts->get_int("vcs", 1));
  cfg.sim.topology.k = static_cast<int>(opts->get_int("k", 16));
  cfg.sim.topology.bidirectional = !opts->get_bool("uni", false);
  cfg.sim.seed = static_cast<std::uint64_t>(opts->get_int("seed", 1));
  cfg.traffic.load = opts->get_double("load", 0.5);
  cfg.detector.recovery = RecoveryKind::None;  // keep the specimen intact
  const auto max_cycles =
      static_cast<std::int64_t>(opts->get_int("max-cycles", 100000));

  std::printf("Hunting for a true deadlock: %s, %d VC(s), %d-ary 2-cube (%s), "
              "load %.2f...\n",
              std::string(to_string(cfg.sim.routing)).c_str(), cfg.sim.vcs,
              cfg.sim.topology.k,
              cfg.sim.topology.bidirectional ? "bi" : "uni", cfg.traffic.load);

  Simulation sim(cfg);
  Network& net = sim.network();

  // Always-on trace ring so the eventual deadlock comes with its formation
  // history; optional Chrome trace for the whole hunt.
  Tracer tracer;
  RingBufferSink ring(
      static_cast<std::size_t>(opts->get_int("ring", 1 << 16)));
  tracer.add_sink(&ring);
  std::ofstream chrome_file;
  std::unique_ptr<ChromeTraceSink> chrome;
  if (opts->has("trace-chrome")) {
    chrome_file.open(opts->get("trace-chrome"), std::ios::binary);
    chrome = std::make_unique<ChromeTraceSink>(chrome_file);
    tracer.add_sink(chrome.get());
  }
  NetworkHooks hooks = net.hooks();  // keep whatever Simulation installed
  hooks.tracer = &tracer;
  net.install_hooks(hooks);
  DeadlockForensics forensics(&ring);

  for (Cycle t = 0; t < 300000; ++t) {
    sim.injection().tick(net);
    net.step();
    if (net.now() % 50 != 0) continue;

    const Cwg cwg = Cwg::from_network(net);
    const std::vector<Knot> knots = find_knots(cwg);
    for (const Knot& knot : knots) {
      const bool quiescent =
          std::all_of(knot.deadlock_set.begin(), knot.deadlock_set.end(),
                      [&](MessageId id) { return net.message_immobile(id); });
      if (!quiescent) continue;

      const CycleEnumeration density =
          knot_cycle_density(cwg, knot, max_cycles, 16);

      std::printf("\n=== TRUE DEADLOCK at cycle %lld ===\n",
                  static_cast<long long>(net.now()));
      std::printf("knot: %zu VCs | deadlock set: %zu messages | resource set: "
                  "%zu VCs | dependent: %zu | knot cycle density: %lld%s -> "
                  "%s deadlock\n",
                  knot.knot_vcs.size(), knot.deadlock_set.size(),
                  knot.resource_set.size(), knot.dependent_messages.size(),
                  static_cast<long long>(density.count),
                  density.capped ? "+ (capped)" : "",
                  density.count == 1 ? "SINGLE-CYCLE" : "MULTI-CYCLE");

      std::printf("\nknot virtual channels:\n");
      for (const VcId vc : knot.knot_vcs) {
        std::printf("  %s  owned by m%lld\n", describe_vc(net, vc).c_str(),
                    static_cast<long long>(cwg.owner_of(vc)));
      }

      std::printf("\ndeadlock set (held chain -> requests):\n");
      for (const MessageId id : knot.deadlock_set) {
        const Message& m = net.message(id);
        const Coordinates& coords = torus_topology(net.topology()).coordinates();
        std::printf("  m%-6lld (%d,%d)->(%d,%d) len %d, blocked since %lld\n",
                    static_cast<long long>(id), coords.coordinate(m.src, 0),
                    coords.coordinate(m.src, 1), coords.coordinate(m.dst, 0),
                    coords.coordinate(m.dst, 1), m.length,
                    static_cast<long long>(m.blocked_since));
        for (const VcId held : m.held) {
          std::printf("      holds    %s\n", describe_vc(net, held).c_str());
        }
        for (const VcId want : m.request_set) {
          std::printf("      requests %s (owned by m%lld)\n",
                      describe_vc(net, want).c_str(),
                      static_cast<long long>(net.vc(want).owner));
        }
      }

      if (!knot.dependent_messages.empty()) {
        std::printf("\ndependent messages (blocked on the deadlock, but "
                    "removing them would NOT resolve it):\n");
        for (const MessageId id : knot.dependent_messages) {
          std::printf("  m%lld\n", static_cast<long long>(id));
        }
      }

      if (!density.cycles.empty()) {
        std::printf("\nfirst %zu cycle(s) of the knot:\n",
                    density.cycles.size());
        for (const auto& cycle : density.cycles) {
          std::printf("  ");
          for (const int vc : cycle) std::printf("vc%d -> ", vc);
          std::printf("vc%d\n", cycle.front());
        }
      }

      if (opts->has("dot")) {
        std::ofstream dot(opts->get("dot"));
        dot << cwg_to_dot(cwg, knots);
        std::printf("\nCWG written to %s (render: dot -Tsvg %s -o cwg.svg)\n",
                    opts->get("dot").c_str(), opts->get("dot").c_str());
      }

      Pcg32 rng(cfg.sim.seed);
      const MessageId victim =
          choose_victim(net, knot.deadlock_set, RecoveryKind::RemoveOldest, rng);

      const ForensicsReport& report =
          forensics.on_deadlock(net, cwg, knot, victim, density.count);
      std::printf("\n%s", format_forensics_report(report, &net).c_str());

      std::printf("\nBreaking it Disha-style: removing the oldest deadlock-set"
                  " message...\n");
      net.remove_message(victim);
      std::printf("removed m%lld; the survivors now drain.\n",
                  static_cast<long long>(victim));
      if (chrome) {
        tracer.flush();
        std::printf("Chrome trace written to %s (load in chrome://tracing)\n",
                    opts->get("trace-chrome").c_str());
      }
      return 0;
    }
  }
  std::printf("no true deadlock formed within the budget; raise --load.\n");
  return 0;
}
