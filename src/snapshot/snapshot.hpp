// Deterministic full-state snapshots: the flexnet-snap container.
//
// A snapshot file is
//
//   magic "flexnet-snap" (12 bytes) | u32 version (=3) | sections...
//
// where each section is framed as `u32 id | u64 length | payload`, so readers
// can skip sections they do not understand and inspectors can decode the meta
// and config sections without reconstructing a network. Sections:
//
//   1 meta       — SnapshotMeta (kind, cycle, run schedule, knot metadata)
//   2 sim        — SimConfig codec
//   3 traffic    — TrafficConfig codec
//   4 detector   — DetectorConfig codec
//   5 network    — Network::save_state payload
//   6 injection  — InjectionProcess::save_state payload
//   7 det-state  — DeadlockDetector::save_state payload
//   8 metrics    — MetricsCollector::save_state payload
//   9 topology   — topology identity + link list (v2; restores file-defined
//                  and generated topologies without touching the filesystem)
//  10 obs        — ObsCollector::save_state payload (optional; present only
//                  when the captured run had observability attached)
//  11 workload   — WorkloadConfig codec (v3; trace path + cursor validation
//                  hash live in the injection payload, pace phases here)
//
// Version history: v1 had no topology section and a shorter sim-config
// record (torus only); v2 files append the topo_* fields to the sim codec
// and embed the topology; v3 adds the workload section, a per-message class
// byte and per-class counters to the network payload, per-class deadlock
// participation to the detector payload, and per-class latency histograms
// to the obs payload. Readers accept all three; older files decode with
// Bernoulli/Bulk defaults, so every pre-existing capture keeps restoring
// bit-identically.
//
// The round-trip guarantee: restore_snapshot() on a capture of a live
// simulation produces components whose subsequent evolution is flit-for-flit
// identical to the original — every RNG position, buffer occupancy,
// arbitration cursor and accumulated statistic is part of the image.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "metrics/metrics.hpp"
#include "sim/config.hpp"
#include "traffic/traffic.hpp"
#include "workload/workload.hpp"

namespace flexnet {

class InjectionProcess;
class Network;

inline constexpr char kSnapshotMagic[] = "flexnet-snap";  // 12 chars + NUL
inline constexpr std::uint32_t kSnapshotVersion = 3;
static_assert(kSnapshotVersion == kStateFormatVersion,
              "container and component codecs version together");
/// Oldest version decode_snapshot still reads.
inline constexpr std::uint32_t kMinSnapshotVersion = 1;

enum class SnapshotKind : std::uint8_t {
  Checkpoint = 1,       ///< Periodic mid-run checkpoint (resumable).
  DeadlockCapture = 2,  ///< Dumped at knot confirmation, pre-recovery.
};

/// Self-describing header record stored in every snapshot.
struct SnapshotMeta {
  SnapshotKind kind = SnapshotKind::Checkpoint;
  Cycle cycle = 0;       ///< Network::now() at capture.
  bool measuring = false;  ///< Inside the measurement window?
  // Run schedule (mirrors exp::RunConfig) so a resume completes the original
  // warmup/measure plan without re-specifying it on the command line.
  Cycle warmup = 0;
  Cycle measure = 0;
  std::int32_t sample_every = 1;
  // Deadlock-capture metadata (meaningful when kind == DeadlockCapture):
  // the recorded verdict a corpus replay must reproduce.
  std::int32_t deadlock_set_size = 0;
  std::int32_t resource_set_size = 0;
  std::int32_t knot_size = 0;
  std::int64_t knot_cycle_density = -1;
  std::uint64_t cwg_hash = 0;  ///< canonical_knot_hash of the captured knot.
};

/// The embedded topology record (section 9). For non-torus topologies the
/// link list makes the snapshot self-contained: restore rebuilds the graph
/// from these links instead of re-reading topo_file or re-running a
/// generator. Tori rebuild from SimConfig::topology and store no links.
struct TopoImage {
  bool present = false;  ///< False for v1 snapshots.
  TopoKind kind = TopoKind::Torus;
  std::string name;
  NodeId nodes = 0;
  std::uint64_t content_hash = 0;
  std::vector<TopoLink> links;  ///< Empty when kind == Torus.
};

/// A decoded snapshot: meta + configs, plus the opaque component-state
/// sections kept as raw bytes until restore_snapshot() replays them.
struct Snapshot {
  /// Container version the bytes were decoded from (kSnapshotVersion when
  /// built by capture_snapshot); component restores gate on it.
  std::uint32_t version = kSnapshotVersion;
  SnapshotMeta meta;
  SimConfig sim;
  TrafficConfig traffic;
  DetectorConfig detector;
  /// Section 11: arrival process selection (v3; Bernoulli for older files).
  /// The capture path is a run-local attachment and is not serialized.
  WorkloadConfig workload;
  TopoImage topo;
  std::vector<std::uint8_t> network_state;
  std::vector<std::uint8_t> injection_state;
  std::vector<std::uint8_t> detector_state;
  std::vector<std::uint8_t> metrics_state;
  /// Section 10: ObsCollector::save_state payload. Optional — empty when the
  /// captured run had no observability attached; old readers skip it.
  std::vector<std::uint8_t> obs_state;
};

/// Live components rebuilt from a snapshot, ready to keep stepping.
struct RestoredSim {
  SnapshotMeta meta;
  SimConfig sim;
  TrafficConfig traffic;
  DetectorConfig detector_config;
  WorkloadConfig workload;
  std::unique_ptr<Network> net;
  std::unique_ptr<InjectionProcess> injection;
  std::unique_ptr<DeadlockDetector> detector;
  MetricsCollector metrics;
};

/// Captures the full dynamic state of a live simulation. `workload`
/// identifies the arrival process so restore rebuilds the same subclass.
[[nodiscard]] Snapshot capture_snapshot(const SnapshotMeta& meta,
                                        const SimConfig& sim,
                                        const TrafficConfig& traffic,
                                        const DetectorConfig& detector,
                                        const WorkloadConfig& workload,
                                        const Network& net,
                                        const InjectionProcess& injection,
                                        const DeadlockDetector& det,
                                        const MetricsCollector& metrics);

/// Serializes to the flexnet-snap-v1 byte layout.
[[nodiscard]] std::vector<std::uint8_t> encode_snapshot(const Snapshot& snap);

/// Parses the byte layout; throws std::runtime_error on bad magic, version,
/// truncation, or a missing required section.
[[nodiscard]] Snapshot decode_snapshot(const std::uint8_t* data,
                                       std::size_t size);

/// Rebuilds live components (network, injection, detector, metrics) from the
/// stored configs and replays each state section into them. Throws
/// std::runtime_error when the stored state does not fit the stored config.
[[nodiscard]] RestoredSim restore_snapshot(const Snapshot& snap);

/// File I/O helpers (binary, whole-file). Both throw std::runtime_error on
/// I/O failure; the writer creates missing parent directories.
void write_snapshot_file(const std::string& path, const Snapshot& snap);
[[nodiscard]] Snapshot read_snapshot_file(const std::string& path);

// Config codecs, exposed for tests and the dump tool.
class BinReader;
class BinWriter;
void save_sim_config(BinWriter& out, const SimConfig& c);
/// `version` selects the field layout: v1 records stop after `seed` and
/// decode with torus defaults for the topo_* fields.
[[nodiscard]] SimConfig load_sim_config(BinReader& in,
                                        std::uint32_t version = kSnapshotVersion);
void save_traffic_config(BinWriter& out, const TrafficConfig& c);
[[nodiscard]] TrafficConfig load_traffic_config(BinReader& in);
void save_detector_config(BinWriter& out, const DetectorConfig& c);
[[nodiscard]] DetectorConfig load_detector_config(BinReader& in);
void save_workload_config(BinWriter& out, const WorkloadConfig& c);
[[nodiscard]] WorkloadConfig load_workload_config(BinReader& in);
void save_meta(BinWriter& out, const SnapshotMeta& m);
[[nodiscard]] SnapshotMeta load_meta(BinReader& in);

}  // namespace flexnet
