#include "snapshot/snapshot.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "routing/routing.hpp"
#include "routing/selection.hpp"
#include "sim/network.hpp"
#include "topo/factory.hpp"
#include "topo/graph_topology.hpp"
#include "traffic/injection.hpp"
#include "util/binio.hpp"

namespace flexnet {

namespace {

// Section ids of the flexnet-snap container.
enum Section : std::uint32_t {
  kMeta = 1,
  kSim = 2,
  kTraffic = 3,
  kDetector = 4,
  kNetwork = 5,
  kInjection = 6,
  kDetectorState = 7,
  kMetrics = 8,
  kTopology = 9,  // v2
  kObs = 10,      // ObsCollector::save_state payload; optional
  kWorkload = 11,  // v3: WorkloadConfig codec
};

constexpr std::size_t kMagicLen = 12;

[[noreturn]] void bad_snapshot(const std::string& what) {
  throw std::runtime_error("snapshot: " + what);
}

void begin_section(BinWriter& out, std::uint32_t id, std::size_t& len_at) {
  out.u32(id);
  len_at = out.size();
  out.u64(0);  // back-patched once the payload is written
}

void write_section(BinWriter& out, std::uint32_t id,
                   const std::vector<std::uint8_t>& payload) {
  out.u32(id);
  out.u64(payload.size());
  out.raw(payload.data(), payload.size());
}

}  // namespace

// --- config codecs ---------------------------------------------------------
//
// Every field is written explicitly (no memcpy of structs), so the format is
// stable against compiler padding and survives field reordering in headers.

namespace {

void save_topo_image(BinWriter& out, const TopoImage& t) {
  out.u8(static_cast<std::uint8_t>(t.kind));
  out.str(t.name);
  out.i32(t.nodes);
  out.u64(t.content_hash);
  out.u64(t.links.size());
  for (const TopoLink& link : t.links) {
    out.i32(link.src);
    out.i32(link.dst);
    out.i32(link.width);
  }
}

TopoImage load_topo_image(BinReader& in) {
  TopoImage t;
  t.present = true;
  const std::uint8_t kind = in.u8();
  if (kind > static_cast<std::uint8_t>(TopoKind::File)) {
    bad_snapshot("unknown topology kind " + std::to_string(kind));
  }
  t.kind = static_cast<TopoKind>(kind);
  t.name = in.str();
  t.nodes = in.i32();
  t.content_hash = in.u64();
  const std::uint64_t count = in.u64();
  if (count > in.remaining()) bad_snapshot("topology link list truncated");
  t.links.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    TopoLink link;
    link.src = in.i32();
    link.dst = in.i32();
    link.width = in.i32();
    t.links.push_back(link);
  }
  return t;
}

}  // namespace

void save_sim_config(BinWriter& out, const SimConfig& c) {
  out.i32(c.topology.k);
  out.i32(c.topology.n);
  out.u8(c.topology.bidirectional ? 1 : 0);
  out.u8(c.topology.wrap ? 1 : 0);
  out.i32(c.vcs);
  out.i32(c.buffer_depth);
  out.i32(c.injection_vcs);
  out.i32(c.ejection_vcs);
  out.i32(c.message_length);
  out.f64(c.short_message_fraction);
  out.i32(c.short_message_length);
  out.u8(static_cast<std::uint8_t>(c.routing));
  out.u8(static_cast<std::uint8_t>(c.selection));
  out.i32(c.max_misroutes);
  out.f64(c.link_fault_fraction);
  out.i32(c.source_queue_limit);
  out.u64(c.seed);
  // v2 fields (the generalized-topology parameters).
  out.u8(static_cast<std::uint8_t>(c.topo_kind));
  out.i32(c.topo_nodes);
  out.i32(c.topo_degree);
  out.i32(c.topo_df_routers);
  out.i32(c.topo_df_globals);
  out.u64(c.topo_seed);
  out.str(c.topo_file);
  out.str(c.route_table_file);
}

SimConfig load_sim_config(BinReader& in, std::uint32_t version) {
  SimConfig c;
  c.topology.k = in.i32();
  c.topology.n = in.i32();
  c.topology.bidirectional = in.u8() != 0;
  c.topology.wrap = in.u8() != 0;
  c.vcs = in.i32();
  c.buffer_depth = in.i32();
  c.injection_vcs = in.i32();
  c.ejection_vcs = in.i32();
  c.message_length = in.i32();
  c.short_message_fraction = in.f64();
  c.short_message_length = in.i32();
  c.routing = static_cast<RoutingKind>(in.u8());
  c.selection = static_cast<SelectionKind>(in.u8());
  c.max_misroutes = in.i32();
  c.link_fault_fraction = in.f64();
  c.source_queue_limit = in.i32();
  c.seed = in.u64();
  if (version >= 2) {
    const std::uint8_t kind = in.u8();
    if (kind > static_cast<std::uint8_t>(TopoKind::File)) {
      bad_snapshot("unknown topology kind " + std::to_string(kind));
    }
    c.topo_kind = static_cast<TopoKind>(kind);
    c.topo_nodes = in.i32();
    c.topo_degree = in.i32();
    c.topo_df_routers = in.i32();
    c.topo_df_globals = in.i32();
    c.topo_seed = in.u64();
    c.topo_file = in.str();
    c.route_table_file = in.str();
  }
  // v1 records predate topo_kind: they are torus snapshots by construction
  // and keep the TopoKind::Torus defaults.
  return c;
}

void save_traffic_config(BinWriter& out, const TrafficConfig& c) {
  out.u8(static_cast<std::uint8_t>(c.pattern));
  out.f64(c.load);
  out.i32(c.hotspot_nodes);
  out.f64(c.hotspot_fraction);
  out.f64(c.hybrid_fraction);
  out.u8(static_cast<std::uint8_t>(c.hybrid_with));
}

TrafficConfig load_traffic_config(BinReader& in) {
  TrafficConfig c;
  c.pattern = static_cast<TrafficKind>(in.u8());
  c.load = in.f64();
  c.hotspot_nodes = in.i32();
  c.hotspot_fraction = in.f64();
  c.hybrid_fraction = in.f64();
  c.hybrid_with = static_cast<TrafficKind>(in.u8());
  return c;
}

void save_detector_config(BinWriter& out, const DetectorConfig& c) {
  out.i64(c.interval);
  out.u8(static_cast<std::uint8_t>(c.recovery));
  out.u8(c.require_quiescence ? 1 : 0);
  out.u8(c.measure_knot_density ? 1 : 0);
  out.i64(c.knot_density_cap);
  out.u8(c.count_total_cycles ? 1 : 0);
  out.i32(c.cycle_sample_every);
  out.i64(c.total_cycle_cap);
  out.u8(c.keep_records ? 1 : 0);
  out.i32(c.livelock_hop_limit);
}

DetectorConfig load_detector_config(BinReader& in) {
  DetectorConfig c;
  c.interval = in.i64();
  c.recovery = static_cast<RecoveryKind>(in.u8());
  c.require_quiescence = in.u8() != 0;
  c.measure_knot_density = in.u8() != 0;
  c.knot_density_cap = in.i64();
  c.count_total_cycles = in.u8() != 0;
  c.cycle_sample_every = in.i32();
  c.total_cycle_cap = in.i64();
  c.keep_records = in.u8() != 0;
  c.livelock_hop_limit = in.i32();
  return c;
}

void save_workload_config(BinWriter& out, const WorkloadConfig& c) {
  out.u8(static_cast<std::uint8_t>(c.kind));
  out.str(c.trace_path);
  out.str(c.pace_spec);
  out.u8(c.pace.repeat() ? 1 : 0);
  out.u64(c.pace.phases().size());
  for (const PacePhase& p : c.pace.phases()) {
    out.i64(p.cycles);
    out.f64(p.rate0);
    out.f64(p.rate1);
    out.u8(static_cast<std::uint8_t>(p.cls));
  }
  // capture_path is a run-local attachment, deliberately not serialized: a
  // resume decides afresh whether (and where) to record.
}

WorkloadConfig load_workload_config(BinReader& in) {
  WorkloadConfig c;
  const std::uint8_t kind = in.u8();
  if (kind > static_cast<std::uint8_t>(WorkloadKind::Paced)) {
    bad_snapshot("unknown workload kind " + std::to_string(kind));
  }
  c.kind = static_cast<WorkloadKind>(kind);
  c.trace_path = in.str();
  c.pace_spec = in.str();
  const bool repeat = in.u8() != 0;
  const std::uint64_t count = in.u64();
  if (count > in.remaining()) bad_snapshot("pace phase list truncated");
  std::vector<PacePhase> phases;
  phases.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    PacePhase p;
    p.cycles = in.i64();
    p.rate0 = in.f64();
    p.rate1 = in.f64();
    p.cls = message_class_from_index(in.u8());
    phases.push_back(p);
  }
  // The profile is rebuilt from the serialized phases (not re-parsed from
  // pace_spec): the snapshot stays self-contained even if a referenced pace
  // file changed or vanished.
  if (!phases.empty()) c.pace = PaceProfile(std::move(phases), repeat);
  if (c.kind == WorkloadKind::Paced && c.pace.empty()) {
    bad_snapshot("paced workload without phases");
  }
  return c;
}

void save_meta(BinWriter& out, const SnapshotMeta& m) {
  out.u8(static_cast<std::uint8_t>(m.kind));
  out.i64(m.cycle);
  out.u8(m.measuring ? 1 : 0);
  out.i64(m.warmup);
  out.i64(m.measure);
  out.i32(m.sample_every);
  out.i32(m.deadlock_set_size);
  out.i32(m.resource_set_size);
  out.i32(m.knot_size);
  out.i64(m.knot_cycle_density);
  out.u64(m.cwg_hash);
}

SnapshotMeta load_meta(BinReader& in) {
  SnapshotMeta m;
  m.kind = static_cast<SnapshotKind>(in.u8());
  if (m.kind != SnapshotKind::Checkpoint &&
      m.kind != SnapshotKind::DeadlockCapture) {
    bad_snapshot("unknown snapshot kind");
  }
  m.cycle = in.i64();
  m.measuring = in.u8() != 0;
  m.warmup = in.i64();
  m.measure = in.i64();
  m.sample_every = in.i32();
  m.deadlock_set_size = in.i32();
  m.resource_set_size = in.i32();
  m.knot_size = in.i32();
  m.knot_cycle_density = in.i64();
  m.cwg_hash = in.u64();
  return m;
}

// --- capture / encode / decode / restore -----------------------------------

Snapshot capture_snapshot(const SnapshotMeta& meta, const SimConfig& sim,
                          const TrafficConfig& traffic,
                          const DetectorConfig& detector,
                          const WorkloadConfig& workload, const Network& net,
                          const InjectionProcess& injection,
                          const DeadlockDetector& det,
                          const MetricsCollector& metrics) {
  Snapshot snap;
  snap.meta = meta;
  snap.meta.cycle = net.now();
  snap.sim = sim;
  snap.traffic = traffic;
  snap.detector = detector;
  snap.workload = workload;
  snap.workload.capture_path.clear();

  const Topology& topo = net.topology();
  snap.topo.present = true;
  snap.topo.kind = topo.kind();
  snap.topo.name = topo.name();
  snap.topo.nodes = topo.num_nodes();
  snap.topo.content_hash = topo.content_hash();
  if (topo.kind() != TopoKind::Torus) {
    snap.topo.links.reserve(topo.channels().size());
    for (const ChannelDesc& ch : topo.channels()) {
      snap.topo.links.push_back(TopoLink{ch.src, ch.dst, ch.width});
    }
  }

  BinWriter w;
  net.save_state(w);
  snap.network_state = w.bytes();

  BinWriter wi;
  injection.save_state(wi);
  snap.injection_state = wi.bytes();

  BinWriter wd;
  det.save_state(wd);
  snap.detector_state = wd.bytes();

  BinWriter wm;
  metrics.save_state(wm);
  snap.metrics_state = wm.bytes();
  return snap;
}

std::vector<std::uint8_t> encode_snapshot(const Snapshot& snap) {
  BinWriter out;
  out.raw(kSnapshotMagic, kMagicLen);
  out.u32(kSnapshotVersion);

  std::size_t len_at = 0;
  begin_section(out, kMeta, len_at);
  const std::size_t meta_start = out.size();
  save_meta(out, snap.meta);
  out.patch_u64(len_at, out.size() - meta_start);

  begin_section(out, kSim, len_at);
  const std::size_t sim_start = out.size();
  save_sim_config(out, snap.sim);
  out.patch_u64(len_at, out.size() - sim_start);

  begin_section(out, kTraffic, len_at);
  const std::size_t traffic_start = out.size();
  save_traffic_config(out, snap.traffic);
  out.patch_u64(len_at, out.size() - traffic_start);

  begin_section(out, kDetector, len_at);
  const std::size_t det_start = out.size();
  save_detector_config(out, snap.detector);
  out.patch_u64(len_at, out.size() - det_start);

  begin_section(out, kWorkload, len_at);
  const std::size_t wl_start = out.size();
  save_workload_config(out, snap.workload);
  out.patch_u64(len_at, out.size() - wl_start);

  if (snap.topo.present) {
    begin_section(out, kTopology, len_at);
    const std::size_t topo_start = out.size();
    save_topo_image(out, snap.topo);
    out.patch_u64(len_at, out.size() - topo_start);
  }

  write_section(out, kNetwork, snap.network_state);
  write_section(out, kInjection, snap.injection_state);
  write_section(out, kDetectorState, snap.detector_state);
  write_section(out, kMetrics, snap.metrics_state);
  if (!snap.obs_state.empty()) write_section(out, kObs, snap.obs_state);
  return out.bytes();
}

Snapshot decode_snapshot(const std::uint8_t* data, std::size_t size) {
  BinReader in(data, size);
  if (in.remaining() < kMagicLen ||
      std::memcmp(data, kSnapshotMagic, kMagicLen) != 0) {
    bad_snapshot("bad magic (not a flexnet-snap file)");
  }
  in.skip(kMagicLen);
  const std::uint32_t version = in.u32();
  if (version < kMinSnapshotVersion || version > kSnapshotVersion) {
    bad_snapshot("unsupported version " + std::to_string(version));
  }

  Snapshot snap;
  snap.version = version;
  bool have_meta = false, have_sim = false, have_traffic = false,
       have_detector = false, have_network = false;
  while (!in.done()) {
    const std::uint32_t id = in.u32();
    const std::uint64_t len = in.u64();
    if (len > in.remaining()) bad_snapshot("truncated section");
    const std::uint8_t* begin = data + (size - in.remaining());
    BinReader section = in.sub(static_cast<std::size_t>(len));
    switch (id) {
      case kMeta:
        snap.meta = load_meta(section);
        have_meta = true;
        break;
      case kSim:
        snap.sim = load_sim_config(section, version);
        have_sim = true;
        break;
      case kTraffic:
        snap.traffic = load_traffic_config(section);
        have_traffic = true;
        break;
      case kDetector:
        snap.detector = load_detector_config(section);
        have_detector = true;
        break;
      case kNetwork:
        snap.network_state.assign(begin, begin + len);
        have_network = true;
        break;
      case kInjection:
        snap.injection_state.assign(begin, begin + len);
        break;
      case kDetectorState:
        snap.detector_state.assign(begin, begin + len);
        break;
      case kMetrics:
        snap.metrics_state.assign(begin, begin + len);
        break;
      case kTopology:
        snap.topo = load_topo_image(section);
        break;
      case kObs:
        snap.obs_state.assign(begin, begin + len);
        break;
      case kWorkload:
        snap.workload = load_workload_config(section);
        break;
      default:
        break;  // forward compatibility: unknown sections are skipped
    }
  }
  if (!have_meta || !have_sim || !have_traffic || !have_detector ||
      !have_network) {
    bad_snapshot("missing required section");
  }
  return snap;
}

RestoredSim restore_snapshot(const Snapshot& snap) {
  snap.sim.validate();
  RestoredSim out;
  out.meta = snap.meta;
  out.sim = snap.sim;
  out.traffic = snap.traffic;
  out.detector_config = snap.detector;
  out.metrics = MetricsCollector(snap.meta.sample_every);

  // Non-torus topologies rebuild from the embedded link list, so a capture
  // of a file-defined network restores without the original .topo file (and
  // a generator version bump cannot silently change the graph under a
  // stored state). Tori rebuild from SimConfig::topology as always.
  std::shared_ptr<const Topology> topo;
  if (snap.topo.present && snap.topo.kind != TopoKind::Torus) {
    GraphTopology::Spec spec;
    spec.kind = snap.topo.kind;
    spec.name = snap.topo.name;
    spec.nodes = snap.topo.nodes;
    spec.links = snap.topo.links;
    topo = std::make_shared<GraphTopology>(std::move(spec));
  } else {
    topo = make_topology(snap.sim);
  }
  if (snap.topo.present && topo->content_hash() != snap.topo.content_hash) {
    bad_snapshot("topology hash mismatch (stored " + snap.topo.name +
                 ", rebuilt " + topo->name() + ")");
  }

  out.net = std::make_unique<Network>(
      snap.sim, NetworkDeps{std::move(topo), make_routing(snap.sim),
                            make_selection(snap.sim.selection)});
  {
    BinReader in(snap.network_state.data(), snap.network_state.size());
    out.net->restore_state(in, snap.version);
    if (!in.done()) bad_snapshot("trailing bytes in network section");
  }

  // The injection process derives its rate constants from config + seed
  // (Monte Carlo distance sampling uses the seed directly), so constructing
  // the stored workload's subclass with the stored seed and replaying its
  // RNG position (plus trace cursor / profile hash) is exact.
  out.workload = snap.workload;
  out.injection =
      make_injection(*out.net, snap.traffic, snap.workload, snap.sim.seed);
  if (out.injection->kind() != snap.workload.kind) {
    bad_snapshot("workload kind mismatch after restore");
  }
  if (!snap.injection_state.empty()) {
    BinReader in(snap.injection_state.data(), snap.injection_state.size());
    out.injection->restore_state(in, snap.version);
    if (!in.done()) bad_snapshot("trailing bytes in injection section");
  }

  out.detector =
      std::make_unique<DeadlockDetector>(snap.detector, snap.sim.seed);
  if (!snap.detector_state.empty()) {
    BinReader in(snap.detector_state.data(), snap.detector_state.size());
    out.detector->restore_state(in, snap.version);
    if (!in.done()) bad_snapshot("trailing bytes in detector section");
  }

  if (!snap.metrics_state.empty()) {
    BinReader in(snap.metrics_state.data(), snap.metrics_state.size());
    out.metrics.restore_state(in, snap.version);
    if (!in.done()) bad_snapshot("trailing bytes in metrics section");
  }
  return out;
}

void write_snapshot_file(const std::string& path, const Snapshot& snap) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) {
      bad_snapshot("cannot create directory " + p.parent_path().string() +
                   ": " + ec.message());
    }
  }
  const std::vector<std::uint8_t> bytes = encode_snapshot(snap);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) bad_snapshot("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) bad_snapshot("write failed: " + path);
}

Snapshot read_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) bad_snapshot("cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) bad_snapshot("read failed: " + path);
  return decode_snapshot(bytes.data(), bytes.size());
}

}  // namespace flexnet
