// Deadlock corpus: capture every confirmed knot as a replayable snapshot.
//
// DeadlockCorpus hooks DeadlockDetector (KnotCaptureHook): at the moment a
// knot is confirmed — record filled, victim chosen, nothing removed yet — it
// dumps a full flexnet-snap-v1 image of the simulation with the knot's
// characterization (set sizes, cycle density, canonical hash) in the meta
// section. Captures are deduplicated by canonical_knot_hash, so a saturated
// run that forms the same translated wait-for pattern hundreds of times
// contributes one corpus entry, and capped to bound disk use.
//
// replay_capture() is the other half: restore the image, rebuild the CWG,
// re-run knot detection, and check the fresh verdict against the recorded
// metadata. A corpus therefore doubles as a regression suite for the
// detector: any change that alters knot finding, quiescence filtering or
// characterization trips a replay mismatch.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>

#include "core/detector.hpp"
#include "snapshot/snapshot.hpp"

namespace flexnet {

class DeadlockCorpus final : public KnotCaptureHook {
 public:
  /// Snapshots are written to `dir` (created on first capture) as
  /// `knot-<cycle>-<hash>.snap`. At most `limit` files are written (<=0
  /// disables the cap). The component pointers are non-owning and must stay
  /// valid while the corpus is attached.
  DeadlockCorpus(std::string dir, int limit, const SimConfig& sim,
                 const TrafficConfig& traffic, const WorkloadConfig& workload,
                 const DetectorConfig& detector,
                 const InjectionProcess* injection,
                 const DeadlockDetector* det, const MetricsCollector* metrics);

  void on_knot(const Network& net, const Cwg& cwg, const Knot& knot,
               const DeadlockRecord& record) override;

  /// Lets the owner keep meta.measuring / the run schedule current.
  void set_run_state(Cycle warmup, Cycle measure, std::int32_t sample_every,
                     bool measuring) noexcept {
    warmup_ = warmup;
    measure_ = measure;
    sample_every_ = sample_every;
    measuring_ = measuring;
  }

  [[nodiscard]] int captured() const noexcept { return captured_; }
  /// Knots skipped because their canonical hash was already captured.
  [[nodiscard]] int duplicates() const noexcept { return duplicates_; }
  /// Knots skipped because the capture cap was reached.
  [[nodiscard]] int dropped() const noexcept { return dropped_; }

 private:
  std::string dir_;
  int limit_;
  SimConfig sim_;
  TrafficConfig traffic_;
  WorkloadConfig workload_;
  DetectorConfig detector_config_;
  const InjectionProcess* injection_;
  const DeadlockDetector* detector_;
  const MetricsCollector* metrics_;
  Cycle warmup_ = 0;
  Cycle measure_ = 0;
  std::int32_t sample_every_ = 1;
  bool measuring_ = false;
  std::unordered_set<std::uint64_t> seen_;
  int captured_ = 0;
  int duplicates_ = 0;
  int dropped_ = 0;
};

/// Outcome of replaying one captured deadlock.
struct ReplayResult {
  bool knot_found = false;  ///< Detection found at least one knot.
  bool matches = false;     ///< Some knot reproduces the recorded verdict.
  // The best-matching knot's fresh characterization (valid when knot_found).
  int deadlock_set_size = 0;
  int resource_set_size = 0;
  int knot_size = 0;
  std::uint64_t cwg_hash = 0;
  std::string detail;  ///< Human-readable mismatch description (empty on match).
};

/// Restores a DeadlockCapture snapshot and re-runs knot detection on the
/// restored network, comparing against the snapshot's recorded verdict.
/// Throws std::runtime_error if the snapshot is not a DeadlockCapture.
[[nodiscard]] ReplayResult replay_capture(const Snapshot& snap);

}  // namespace flexnet
