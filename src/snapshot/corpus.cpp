#include "snapshot/corpus.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "core/cwg.hpp"
#include "core/knot.hpp"
#include "sim/network.hpp"
#include "traffic/injection.hpp"

namespace flexnet {

DeadlockCorpus::DeadlockCorpus(std::string dir, int limit, const SimConfig& sim,
                               const TrafficConfig& traffic,
                               const WorkloadConfig& workload,
                               const DetectorConfig& detector,
                               const InjectionProcess* injection,
                               const DeadlockDetector* det,
                               const MetricsCollector* metrics)
    : dir_(std::move(dir)),
      limit_(limit),
      sim_(sim),
      traffic_(traffic),
      workload_(workload),
      detector_config_(detector),
      injection_(injection),
      detector_(det),
      metrics_(metrics) {}

void DeadlockCorpus::on_knot(const Network& net, const Cwg& cwg,
                             const Knot& knot, const DeadlockRecord& record) {
  const std::uint64_t hash = canonical_knot_hash(cwg, knot);
  if (!seen_.insert(hash).second) {
    ++duplicates_;
    return;
  }
  if (limit_ > 0 && captured_ >= limit_) {
    ++dropped_;
    return;
  }

  SnapshotMeta meta;
  meta.kind = SnapshotKind::DeadlockCapture;
  meta.cycle = net.now();
  meta.measuring = measuring_;
  meta.warmup = warmup_;
  meta.measure = measure_;
  meta.sample_every = sample_every_;
  meta.deadlock_set_size = record.deadlock_set_size;
  meta.resource_set_size = record.resource_set_size;
  meta.knot_size = record.knot_size;
  meta.knot_cycle_density = record.knot_cycle_density;
  meta.cwg_hash = hash;

  const Snapshot snap =
      capture_snapshot(meta, sim_, traffic_, detector_config_, workload_, net,
                       *injection_, *detector_, *metrics_);

  char name[64];
  std::snprintf(name, sizeof(name), "knot-%lld-%016llx.snap",
                static_cast<long long>(net.now()),
                static_cast<unsigned long long>(hash));
  write_snapshot_file(dir_ + "/" + name, snap);
  ++captured_;
}

ReplayResult replay_capture(const Snapshot& snap) {
  if (snap.meta.kind != SnapshotKind::DeadlockCapture) {
    throw std::runtime_error("replay_capture: snapshot is not a deadlock capture");
  }
  RestoredSim sim = restore_snapshot(snap);

  ReplayResult result;
  const Cwg cwg = Cwg::from_network(*sim.net);
  const std::vector<Knot> knots = find_knots(cwg);
  result.knot_found = !knots.empty();
  if (knots.empty()) {
    result.detail = "no knot found in restored network";
    return result;
  }

  // The capture happened mid-detector-pass: earlier knots in the same pass
  // had their victims removed before this one was dumped, so the restored
  // CWG can contain several knots. Match by canonical hash first, then by
  // recorded sizes.
  const Knot* best = nullptr;
  std::uint64_t best_hash = 0;
  for (const Knot& knot : knots) {
    const std::uint64_t h = canonical_knot_hash(cwg, knot);
    if (h == snap.meta.cwg_hash) {
      best = &knot;
      best_hash = h;
      break;
    }
    if (best == nullptr) {
      best = &knot;
      best_hash = h;
    }
  }

  result.deadlock_set_size = static_cast<int>(best->deadlock_set.size());
  result.resource_set_size = static_cast<int>(best->resource_set.size());
  result.knot_size = static_cast<int>(best->knot_vcs.size());
  result.cwg_hash = best_hash;

  const bool sizes_match =
      result.deadlock_set_size == snap.meta.deadlock_set_size &&
      result.resource_set_size == snap.meta.resource_set_size &&
      result.knot_size == snap.meta.knot_size;
  const bool hash_match = best_hash == snap.meta.cwg_hash;
  result.matches = sizes_match && hash_match;
  if (!result.matches) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "recorded set/resource/knot=%d/%d/%d hash=%016llx, "
                  "replayed %d/%d/%d hash=%016llx",
                  snap.meta.deadlock_set_size, snap.meta.resource_set_size,
                  snap.meta.knot_size,
                  static_cast<unsigned long long>(snap.meta.cwg_hash),
                  result.deadlock_set_size, result.resource_set_size,
                  result.knot_size,
                  static_cast<unsigned long long>(best_hash));
    result.detail = buf;
  }
  return result;
}

}  // namespace flexnet
