// Umbrella header: the full flexnet public API.
//
// flexnet reproduces "Characterization of Deadlocks in Interconnection
// Networks" (Warnakulasuriya & Pinkston, IPPS 1997): a flit-level k-ary
// n-cube simulator with true deadlock detection (knots in channel wait-for
// graphs), deadlock characterization, and Disha-style recovery.
//
// Typical use:
//   flexnet::ExperimentConfig cfg;             // paper defaults
//   cfg.sim.routing = flexnet::RoutingKind::TFAR;
//   cfg.traffic.load = 0.6;
//   auto result = flexnet::run_experiment(cfg);
//   std::cout << result.window.normalized_deadlocks << '\n';
#pragma once

#include "core/cwg.hpp"          // IWYU pragma: export
#include "core/cycles.hpp"       // IWYU pragma: export
#include "core/detector.hpp"     // IWYU pragma: export
#include "core/dot.hpp"          // IWYU pragma: export
#include "core/graph.hpp"        // IWYU pragma: export
#include "core/incremental.hpp"  // IWYU pragma: export
#include "core/knot.hpp"         // IWYU pragma: export
#include "core/pwg.hpp"          // IWYU pragma: export
#include "core/recovery.hpp"     // IWYU pragma: export
#include "core/timeout.hpp"      // IWYU pragma: export
#include "core/scc.hpp"          // IWYU pragma: export
#include "exp/cli.hpp"           // IWYU pragma: export
#include "exp/experiment.hpp"    // IWYU pragma: export
#include "exp/report.hpp"        // IWYU pragma: export
#include "exp/sweep.hpp"         // IWYU pragma: export
#include "metrics/metrics.hpp"   // IWYU pragma: export
#include "obs/histogram.hpp"     // IWYU pragma: export
#include "obs/obs.hpp"           // IWYU pragma: export
#include "routing/dateline.hpp"  // IWYU pragma: export
#include "routing/dor.hpp"       // IWYU pragma: export
#include "routing/duato.hpp"     // IWYU pragma: export
#include "routing/routing.hpp"   // IWYU pragma: export
#include "routing/selection.hpp" // IWYU pragma: export
#include "routing/table.hpp"     // IWYU pragma: export
#include "routing/tfar.hpp"      // IWYU pragma: export
#include "routing/turnmodel.hpp" // IWYU pragma: export
#include "sim/network.hpp"       // IWYU pragma: export
#include "snapshot/corpus.hpp"   // IWYU pragma: export
#include "snapshot/snapshot.hpp" // IWYU pragma: export
#include "telemetry/heatmap.hpp"   // IWYU pragma: export
#include "telemetry/interval.hpp"  // IWYU pragma: export
#include "telemetry/manifest.hpp"  // IWYU pragma: export
#include "telemetry/profiler.hpp"  // IWYU pragma: export
#include "telemetry/telemetry.hpp" // IWYU pragma: export
#include "topo/factory.hpp"        // IWYU pragma: export
#include "topo/generators.hpp"     // IWYU pragma: export
#include "topo/graph_topology.hpp" // IWYU pragma: export
#include "topo/topo_file.hpp"      // IWYU pragma: export
#include "topo/topology.hpp"       // IWYU pragma: export
#include "topo/torus.hpp"          // IWYU pragma: export
#include "trace/forensics.hpp"   // IWYU pragma: export
#include "trace/sinks.hpp"       // IWYU pragma: export
#include "trace/trace.hpp"       // IWYU pragma: export
#include "traffic/injection.hpp" // IWYU pragma: export
#include "traffic/traffic.hpp"   // IWYU pragma: export
#include "util/binio.hpp"        // IWYU pragma: export
#include "util/csv.hpp"          // IWYU pragma: export
#include "util/json.hpp"         // IWYU pragma: export
#include "util/options.hpp"      // IWYU pragma: export
#include "util/parallel.hpp"     // IWYU pragma: export
#include "util/rng.hpp"          // IWYU pragma: export
#include "util/stats.hpp"        // IWYU pragma: export
#include "workload/pace.hpp"       // IWYU pragma: export
#include "workload/replay.hpp"     // IWYU pragma: export
#include "workload/trace_file.hpp" // IWYU pragma: export
#include "workload/workload.hpp"   // IWYU pragma: export
