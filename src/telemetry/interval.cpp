#include "telemetry/interval.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/detector.hpp"
#include "sim/network.hpp"

namespace flexnet {

IntervalRecorder::IntervalRecorder(Cycle interval, std::size_t capacity)
    : interval_(interval), ring_(capacity == 0 ? 1 : capacity) {
  if (interval < 1) {
    throw std::invalid_argument("IntervalRecorder interval must be >= 1");
  }
}

void IntervalRecorder::sample(const Network& net,
                              const DeadlockDetector& detector) {
  const Network::Counters& c = net.counters();
  IntervalSample s;
  s.cycle = net.now();

  s.generated = c.generated - prev_.generated;
  s.injected = c.injected - prev_.injected;
  s.delivered = c.delivered - prev_.delivered;
  s.recovered = c.recovered - prev_.recovered;
  s.flits_delivered = c.flits_delivered - prev_.flits_delivered;
  for (std::size_t k = 0; k < kNumMessageClasses; ++k) {
    s.class_delivered[k] = c.class_delivered[k] - prev_.class_delivered[k];
  }

  const Cycle span = std::max<Cycle>(net.now() - prev_cycle_, 1);
  s.throughput_flits_per_node =
      static_cast<double>(s.flits_delivered) /
      (static_cast<double>(net.topology().num_nodes()) *
       static_cast<double>(span));
  if (s.delivered > 0) {
    s.avg_latency =
        static_cast<double>(c.delivered_latency_sum -
                            prev_.delivered_latency_sum) /
        static_cast<double>(s.delivered);
  }

  s.blocked = net.blocked_message_count();
  s.in_network = static_cast<std::int64_t>(net.active_messages().size());
  if (s.in_network > 0) {
    s.blocked_fraction =
        static_cast<double>(s.blocked) / static_cast<double>(s.in_network);
  }
  s.queued = net.queued_message_count();

  // Cheap CWG arc census straight off the message state — the held chain of
  // every active message contributes held-1 solid arcs, and each blocked
  // message one dashed arc per requested VC (matching Cwg::from_network
  // without building the graph).
  for (const MessageId id : net.active_messages()) {
    const Message& msg = net.message(id);
    if (!msg.held.empty()) {
      s.cwg_ownership_arcs += static_cast<std::int64_t>(msg.held.size()) - 1;
    }
    if (msg.blocked) {
      s.cwg_request_arcs += static_cast<std::int64_t>(msg.request_set.size());
    }
  }

  // Clamp: DeadlockDetector::reset_statistics() (end of warmup) zeroes these
  // counters mid-run, which would otherwise yield one negative interval.
  s.detector_invocations =
      std::max<std::int64_t>(detector.invocations() - prev_.invocations, 0);
  s.detector_skipped =
      std::max<std::int64_t>(detector.skipped_passes() - prev_.skipped, 0);
  s.deadlocks =
      std::max<std::int64_t>(detector.total_deadlocks() - prev_.deadlocks, 0);
  s.transient_knots = std::max<std::int64_t>(
      detector.transient_knots() - prev_.transient_knots, 0);
  s.livelocks =
      std::max<std::int64_t>(detector.livelocks() - prev_.livelocks, 0);

  prev_cycle_ = net.now();
  prev_.generated = c.generated;
  prev_.injected = c.injected;
  prev_.delivered = c.delivered;
  prev_.recovered = c.recovered;
  prev_.flits_delivered = c.flits_delivered;
  prev_.delivered_latency_sum = c.delivered_latency_sum;
  prev_.class_delivered = c.class_delivered;
  prev_.invocations = detector.invocations();
  prev_.skipped = detector.skipped_passes();
  prev_.deadlocks = detector.total_deadlocks();
  prev_.transient_knots = detector.transient_knots();
  prev_.livelocks = detector.livelocks();

  ring_[head_] = s;
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
  ++seen_;
}

const IntervalSample& IntervalRecorder::at(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("IntervalRecorder sample index");
  // head_ points one past the newest; the oldest sits at head_ when full.
  const std::size_t oldest = (head_ + ring_.size() - size_) % ring_.size();
  return ring_[(oldest + i) % ring_.size()];
}

}  // namespace flexnet
