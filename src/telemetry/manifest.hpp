// The JSON run manifest: one machine-readable artifact per experiment
// capturing everything needed to interpret (and re-run) it — configuration
// and seed, window metrics, the interval time series, a heatmap summary, the
// phase profile, and build provenance. Schema "flexnet-telemetry-v1"; field
// names are stable and documented in DESIGN.md. Identical (config, seed)
// runs produce byte-identical manifests except under "profile", whose
// wall-clock numbers are inherently non-deterministic.
#pragma once

#include <iosfwd>
#include <string_view>

namespace flexnet {

struct ExperimentConfig;
struct ExperimentResult;
class ObsCollector;
class Telemetry;
class Network;

inline constexpr std::string_view kManifestSchema = "flexnet-telemetry-v1";

/// Git revision baked in at configure time ("unknown" outside a checkout).
[[nodiscard]] std::string_view build_git_sha() noexcept;

/// When `obs` is non-null (a finalized ObsCollector), the manifest gains a
/// "metrics" block carrying the same cumulative summary as the NDJSON
/// stream's final record.
void write_manifest_json(std::ostream& out, const ExperimentConfig& config,
                         const ExperimentResult& result,
                         const Telemetry& telemetry, const Network& net,
                         const ObsCollector* obs = nullptr);

}  // namespace flexnet
