#include "telemetry/manifest.hpp"

#include <ostream>

#include "exp/experiment.hpp"
#include "sim/message_class.hpp"
#include "sim/network.hpp"
#include "telemetry/telemetry.hpp"
#include "util/json.hpp"

namespace flexnet {

std::string_view build_git_sha() noexcept {
#ifdef FLEXNET_GIT_SHA
  return FLEXNET_GIT_SHA;
#else
  return "unknown";
#endif
}

namespace {

void write_stat(JsonWriter& json, std::string_view name,
                const RunningStat& stat) {
  json.key(name).begin_object();
  json.field("count", stat.count());
  json.field("mean", stat.mean());
  json.field("stddev", stat.stddev());
  json.field("min", stat.min());
  json.field("max", stat.max());
  json.end_object();
}

void write_config(JsonWriter& json, const ExperimentConfig& cfg) {
  json.key("config").begin_object();

  json.key("sim").begin_object();
  json.field("k", cfg.sim.topology.k);
  json.field("n", cfg.sim.topology.n);
  json.field("wrap", cfg.sim.topology.wrap);
  json.field("bidirectional", cfg.sim.topology.bidirectional);
  json.field("vcs", cfg.sim.vcs);
  json.field("buffer_depth", cfg.sim.buffer_depth);
  json.field("injection_vcs", cfg.sim.injection_vcs);
  json.field("ejection_vcs", cfg.sim.ejection_vcs);
  json.field("message_length", cfg.sim.message_length);
  json.field("short_message_fraction", cfg.sim.short_message_fraction);
  json.field("short_message_length", cfg.sim.short_message_length);
  json.field("routing", to_string(cfg.sim.routing));
  json.field("selection", to_string(cfg.sim.selection));
  json.field("max_misroutes", cfg.sim.max_misroutes);
  json.field("link_fault_fraction", cfg.sim.link_fault_fraction);
  json.field("source_queue_limit", cfg.sim.source_queue_limit);
  json.field("seed", static_cast<std::uint64_t>(cfg.sim.seed));
  json.field("topology", to_string(cfg.sim.topo_kind));
  if (!cfg.sim.topo_file.empty()) json.field("topo_file", cfg.sim.topo_file);
  if (!cfg.sim.route_table_file.empty()) {
    json.field("route_table_file", cfg.sim.route_table_file);
  }
  json.end_object();

  json.key("traffic").begin_object();
  json.field("pattern", to_string(cfg.traffic.pattern));
  json.field("load", cfg.traffic.load);
  json.field("hotspot_nodes", cfg.traffic.hotspot_nodes);
  json.field("hotspot_fraction", cfg.traffic.hotspot_fraction);
  json.field("hybrid_fraction", cfg.traffic.hybrid_fraction);
  json.field("hybrid_with", to_string(cfg.traffic.hybrid_with));
  json.end_object();

  // The arrival process. This block is the one place a capture run and its
  // replay legitimately differ; the CI replay check strips it before diffing.
  json.key("workload").begin_object();
  json.field("kind", to_string(cfg.workload.kind));
  if (!cfg.workload.trace_path.empty()) {
    json.field("trace", cfg.workload.trace_path);
  }
  if (!cfg.workload.pace_spec.empty()) {
    json.field("pace", cfg.workload.pace_spec);
  }
  if (!cfg.workload.capture_path.empty()) {
    json.field("capture", cfg.workload.capture_path);
  }
  json.end_object();

  json.key("detector").begin_object();
  json.field("interval", cfg.detector.interval);
  json.field("recovery", to_string(cfg.detector.recovery));
  json.field("require_quiescence", cfg.detector.require_quiescence);
  json.field("measure_knot_density", cfg.detector.measure_knot_density);
  json.field("count_total_cycles", cfg.detector.count_total_cycles);
  json.field("livelock_hop_limit", cfg.detector.livelock_hop_limit);
  json.field("full_rebuild", cfg.detector.full_rebuild);
  json.end_object();

  json.key("run").begin_object();
  json.field("warmup", cfg.run.warmup);
  json.field("measure", cfg.run.measure);
  json.field("sample_every", cfg.run.sample_every);
  json.end_object();

  json.key("telemetry").begin_object();
  json.field("interval", cfg.telemetry.interval);
  json.field("ring_capacity",
             static_cast<std::uint64_t>(cfg.telemetry.ring_capacity));
  json.end_object();

  json.end_object();
}

void write_window(JsonWriter& json, const WindowMetrics& w) {
  json.key("window").begin_object();
  json.field("cycles", w.window_cycles);
  json.field("generated", w.generated);
  json.field("injected", w.injected);
  json.field("delivered", w.delivered);
  json.field("recovered", w.recovered);
  json.field("flits_delivered", w.flits_delivered);
  json.field("throughput_flits_per_node", w.throughput_flits_per_node);
  json.field("avg_latency", w.avg_latency);
  json.field("avg_hops", w.avg_hops);
  write_stat(json, "blocked_messages", w.blocked_messages);
  write_stat(json, "blocked_fraction", w.blocked_fraction);
  write_stat(json, "in_network_messages", w.in_network_messages);
  write_stat(json, "queued_messages", w.queued_messages);
  json.field("deadlocks", w.deadlocks);
  json.field("normalized_deadlocks", w.normalized_deadlocks);
  write_stat(json, "deadlock_set_size", w.deadlock_set_size);
  write_stat(json, "resource_set_size", w.resource_set_size);
  write_stat(json, "knot_cycle_density", w.knot_cycle_density);
  write_stat(json, "dependent_messages", w.dependent_messages);
  json.field("single_cycle_deadlocks", w.single_cycle_deadlocks);
  json.field("multi_cycle_deadlocks", w.multi_cycle_deadlocks);
  write_stat(json, "cwg_cycles", w.cwg_cycles);
  json.field("cycle_count_capped", w.cycle_count_capped);
  json.key("classes").begin_object();
  for (const MessageClass cls : all_message_classes()) {
    const WindowMetrics::ClassMetrics& cm = w.classes[class_index(cls)];
    json.key(to_string(cls)).begin_object();
    json.field("generated", cm.generated);
    json.field("delivered", cm.delivered);
    json.field("recovered", cm.recovered);
    json.field("avg_latency", cm.avg_latency);
    json.field("deadlock_participants", cm.deadlock_participants);
    json.end_object();
  }
  json.end_object();
  json.end_object();
}

void write_series(JsonWriter& json, const IntervalRecorder& series) {
  json.key("series").begin_object();
  json.field("interval", series.interval());
  json.field("capacity", static_cast<std::uint64_t>(series.capacity()));
  json.field("total_samples", series.total_samples());
  json.field("dropped", series.dropped());
  json.key("samples").begin_array();
  for (std::size_t i = 0; i < series.size(); ++i) {
    const IntervalSample& s = series.at(i);
    json.begin_object();
    json.field("cycle", s.cycle);
    json.field("generated", s.generated);
    json.field("injected", s.injected);
    json.field("delivered", s.delivered);
    json.field("recovered", s.recovered);
    json.field("flits_delivered", s.flits_delivered);
    json.field("throughput_flits_per_node", s.throughput_flits_per_node);
    json.field("avg_latency", s.avg_latency);
    json.field("blocked", s.blocked);
    json.field("blocked_fraction", s.blocked_fraction);
    json.field("in_network", s.in_network);
    json.field("queued", s.queued);
    json.field("cwg_ownership_arcs", s.cwg_ownership_arcs);
    json.field("cwg_request_arcs", s.cwg_request_arcs);
    json.field("detector_invocations", s.detector_invocations);
    json.field("detector_skipped", s.detector_skipped);
    json.field("deadlocks", s.deadlocks);
    json.field("transient_knots", s.transient_knots);
    json.field("livelocks", s.livelocks);
    json.key("class_delivered").begin_array();
    for (const std::int64_t n : s.class_delivered) json.value(n);
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

void write_heatmap_summary(JsonWriter& json, const SpatialHeatmap& heatmap,
                           const Network& net) {
  json.key("heatmap").begin_object();
  json.field("total_traversals", heatmap.total_traversals());
  json.field("total_blocked_cycles", heatmap.total_blocked_cycles());
  json.field("total_injection_stall_cycles",
             heatmap.total_injection_stalls());
  json.key("hot_channels").begin_array();
  for (const ChannelId id :
       heatmap.hottest_channels(8, net.num_network_channels())) {
    const PhysChannel& pc = net.phys(id);
    const SpatialHeatmap::ChannelCounters& c = heatmap.channel(id);
    json.begin_object();
    json.field("channel", id);
    json.field("src", pc.src);
    json.field("dst", pc.dst);
    json.field("dim", pc.dim);
    json.field("dir", pc.dir);
    json.field("traversals", c.traversals);
    json.field("busy_cycles", c.busy_cycles);
    json.field("blocked_cycles", c.blocked_cycles);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

void write_profile(JsonWriter& json, const PhaseProfiler& profiler) {
  json.key("profile").begin_object();
  json.field("total_ns", profiler.total_ns());
  json.key("phases").begin_array();
  for (std::size_t i = 0; i < kNumSimPhases; ++i) {
    const auto phase = static_cast<SimPhase>(i);
    const PhaseProfiler::PhaseStats& s = profiler.stats(phase);
    json.begin_object();
    json.field("name", to_string(phase));
    json.field("calls", s.calls);
    json.field("total_ns", s.total_ns);
    json.field("mean_ns", s.mean_ns());
    json.field("max_ns", s.max_ns);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

}  // namespace

void write_manifest_json(std::ostream& out, const ExperimentConfig& config,
                         const ExperimentResult& result,
                         const Telemetry& telemetry, const Network& net,
                         const ObsCollector* obs) {
  JsonWriter json(out);
  json.begin_object();
  json.field("schema", kManifestSchema);

  json.key("build").begin_object();
  json.field("git_sha", build_git_sha());
  json.end_object();

  write_config(json, config);

  // The realized topology (vs the requested config): identity, size, and the
  // content hash that snapshot restore and route-table load validate against.
  json.key("topology").begin_object();
  json.field("kind", to_string(net.topology().kind()));
  json.field("name", net.topology().name());
  json.field("nodes", net.topology().num_nodes());
  json.field("channels",
             static_cast<std::uint64_t>(net.topology().channels().size()));
  json.field("avg_distance", net.topology().average_distance());
  json.field("content_hash", net.topology().content_hash());
  json.end_object();

  json.key("result").begin_object();
  json.field("load", result.load);
  json.field("capacity_flits_per_node", result.capacity_flits_per_node);
  json.field("offered_flit_rate", result.offered_flit_rate);
  json.field("avg_distance", result.avg_distance);
  json.field("normalized_throughput", result.normalized_throughput);
  json.field("accepted_ratio", result.accepted_ratio);
  json.field("saturated", result.saturated);
  write_window(json, result.window);
  // Effective detection cost: how many scheduled passes the incremental
  // pipeline answered without rebuilding the wait-for graph.
  json.key("detector").begin_object();
  json.field("invocations", result.detector_invocations);
  json.field("skipped_passes", result.detector_skipped_passes);
  json.end_object();
  json.end_object();

  // Resume lineage + corpus capture summary, so a manifest always records
  // whether its window was produced by an uninterrupted run.
  json.key("snapshot").begin_object();
  json.field("resumed_from", result.resumed_from);
  json.field("checkpoint_cycle", result.resumed_at_cycle);
  json.field("deadlocks_captured", result.deadlocks_captured);
  json.field("capture_duplicates", result.capture_duplicates);
  json.field("capture_dropped", result.capture_dropped);
  json.end_object();

  write_series(json, telemetry.interval_series());
  write_heatmap_summary(json, telemetry.heatmap(), net);
  write_profile(json, telemetry.profiler());

  // Observability summary: the NDJSON stream's final record, folded into the
  // manifest so one artifact answers "did this run warn, and how early?".
  if (obs != nullptr) {
    json.key("metrics").begin_object();
    if (!obs->config().metrics_path.empty()) {
      json.field("path", obs->config().metrics_path);
    }
    json.field("interval", obs->config().interval);
    json.field("warn_threshold", obs->config().warn_threshold);
    json.field("stall_ref", obs->config().stall_ref);
    obs->write_summary_fields(json, net);
    json.end_object();
  }

  json.end_object();
  out << '\n';
}

}  // namespace flexnet
