#include "telemetry/heatmap.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "sim/network.hpp"
#include "topo/torus.hpp"
#include "util/csv.hpp"

namespace flexnet {

namespace {
std::string_view kind_name(ChannelKind kind) noexcept {
  switch (kind) {
    case ChannelKind::Network: return "network";
    case ChannelKind::Injection: return "injection";
    case ChannelKind::Ejection: return "ejection";
  }
  return "?";
}
}  // namespace

std::string_view to_string(SpatialHeatmap::Field field) noexcept {
  switch (field) {
    case SpatialHeatmap::Field::Traversals: return "traversals";
    case SpatialHeatmap::Field::BlockedCycles: return "blocked_cycles";
    case SpatialHeatmap::Field::InjectionStalls: return "injection_stalls";
  }
  return "?";
}

SpatialHeatmap::SpatialHeatmap(const Network& net)
    : channels_(net.num_channels()),
      vc_traversals_(net.num_vcs(), 0),
      vc_busy_(net.num_vcs(), 0),
      vc_blocked_(net.num_vcs(), 0),
      injection_stall_cycles_(
          static_cast<std::size_t>(net.topology().num_nodes()), 0) {}

void SpatialHeatmap::sample_occupancy(const Network& net,
                                      Cycle cycles_covered) {
  if (cycles_covered <= 0) return;
  const std::size_t num_vcs = net.num_vcs();
  for (std::size_t v = 0; v < num_vcs; ++v) {
    const VcState& vc = net.vc(static_cast<VcId>(v));
    if (vc.is_free()) continue;
    vc_busy_[v] += cycles_covered;
    ChannelCounters& ch = channels_[static_cast<std::size_t>(vc.channel)];
    ch.busy_cycles += cycles_covered;
    if (net.message(vc.owner).blocked) {
      vc_blocked_[v] += cycles_covered;
      ch.blocked_cycles += cycles_covered;
    }
  }
}

std::int64_t SpatialHeatmap::total_traversals() const noexcept {
  std::int64_t total = 0;
  for (const ChannelCounters& c : channels_) total += c.traversals;
  return total;
}

std::int64_t SpatialHeatmap::total_blocked_cycles() const noexcept {
  std::int64_t total = 0;
  for (const ChannelCounters& c : channels_) total += c.blocked_cycles;
  return total;
}

std::int64_t SpatialHeatmap::total_injection_stalls() const noexcept {
  std::int64_t total = 0;
  for (const std::int64_t s : injection_stall_cycles_) total += s;
  return total;
}

std::vector<ChannelId> SpatialHeatmap::hottest_channels(
    std::size_t top, std::size_t num_network_channels) const {
  std::vector<ChannelId> ids;
  ids.reserve(std::min(num_network_channels, channels_.size()));
  for (std::size_t c = 0; c < channels_.size() && c < num_network_channels;
       ++c) {
    ids.push_back(static_cast<ChannelId>(c));
  }
  std::sort(ids.begin(), ids.end(), [this](ChannelId a, ChannelId b) {
    const auto& ca = channels_[static_cast<std::size_t>(a)];
    const auto& cb = channels_[static_cast<std::size_t>(b)];
    if (ca.traversals != cb.traversals) return ca.traversals > cb.traversals;
    return a < b;
  });
  if (ids.size() > top) ids.resize(top);
  return ids;
}

std::string SpatialHeatmap::ascii_grid(const Network& net, Field field) const {
  const NodeId nodes = net.topology().num_nodes();

  std::vector<double> value(static_cast<std::size_t>(nodes), 0.0);
  if (field == Field::InjectionStalls) {
    for (NodeId n = 0; n < nodes; ++n) {
      value[static_cast<std::size_t>(n)] =
          static_cast<double>(injection_stall_cycles_[static_cast<std::size_t>(n)]);
    }
  } else {
    // Aggregate each node's incoming network channels.
    for (std::size_t c = 0; c < net.num_network_channels(); ++c) {
      const PhysChannel& pc = net.phys(static_cast<ChannelId>(c));
      const ChannelCounters& counters = channels_[c];
      value[static_cast<std::size_t>(pc.dst)] +=
          static_cast<double>(field == Field::Traversals
                                  ? counters.traversals
                                  : counters.blocked_cycles);
    }
  }
  double peak = 0.0;
  for (const double v : value) peak = std::max(peak, v);

  static constexpr std::string_view kScale = " .:-=+*#%@";

  // Non-torus (or non-2-D) topologies have no natural grid; render a
  // degree-ordered per-node table instead — the hubs land at the top, which
  // is where irregular-network congestion concentrates.
  const KAryNCube* torus = net.topology().as_torus();
  if (torus == nullptr || torus->dimensions() != 2) {
    const auto pad = [](std::string s, std::size_t width) {
      if (s.size() < width) s.insert(0, width - s.size(), ' ');
      return s;
    };
    std::string out;
    out += "heatmap ";
    out += to_string(field);
    out += " (per-node, degree-ordered, peak=";
    out += TableWriter::num(peak, 0);
    out += ")\n";
    out += "  node  degree       value  bar\n";
    std::vector<NodeId> order(static_cast<std::size_t>(nodes));
    for (NodeId n = 0; n < nodes; ++n) order[static_cast<std::size_t>(n)] = n;
    const Topology& topo = net.topology();
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      const std::size_t da = topo.out_channels(a).size();
      const std::size_t db = topo.out_channels(b).size();
      if (da != db) return da > db;
      return a < b;
    });
    for (const NodeId n : order) {
      const double v = value[static_cast<std::size_t>(n)];
      out += pad(std::to_string(n), 6);
      out += pad(std::to_string(topo.out_channels(n).size()), 8);
      out += pad(TableWriter::num(v, 0), 12);
      out += "  ";
      if (peak > 0.0 && v > 0.0) {
        const int bar = std::max(
            1, static_cast<int>(v / peak * static_cast<double>(kScale.size())));
        out.append(static_cast<std::size_t>(
                       std::min<int>(bar, static_cast<int>(kScale.size()))),
                   '#');
      }
      out += '\n';
    }
    return out;
  }

  const int k = torus->radix();
  std::string out;
  out += "heatmap ";
  out += to_string(field);
  out += " (";
  out += std::to_string(k);
  out += "x";
  out += std::to_string(k);
  out += ", peak=";
  out += TableWriter::num(peak, 0);
  out += ", scale \"";
  out += kScale;
  out += "\")\n";
  // Dimension 0 (least-significant coordinate) runs horizontally.
  for (int y = 0; y < k; ++y) {
    for (int x = 0; x < k; ++x) {
      const auto node = static_cast<std::size_t>(y) *
                            static_cast<std::size_t>(k) +
                        static_cast<std::size_t>(x);
      int idx = 0;
      if (peak > 0.0 && value[node] > 0.0) {
        idx = 1 + static_cast<int>(value[node] / peak *
                                   static_cast<double>(kScale.size() - 2));
        idx = std::min<int>(idx, static_cast<int>(kScale.size()) - 1);
      }
      out += kScale[static_cast<std::size_t>(idx)];
    }
    out += '\n';
  }
  return out;
}

void SpatialHeatmap::write_csv(std::ostream& out, const Network& net) const {
  CsvWriter csv(out);
  csv.header({"row", "id", "kind", "src", "dst", "dim", "dir", "channel",
              "vc_index", "traversals", "busy_cycles", "blocked_cycles",
              "stall_cycles"});
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    const PhysChannel& pc = net.phys(static_cast<ChannelId>(c));
    const ChannelCounters& counters = channels_[c];
    csv.row({"channel", TableWriter::integer(static_cast<long long>(c)),
             std::string(kind_name(pc.kind)), TableWriter::integer(pc.src),
             TableWriter::integer(pc.dst), TableWriter::integer(pc.dim),
             TableWriter::integer(pc.dir), "", "",
             TableWriter::integer(counters.traversals),
             TableWriter::integer(counters.busy_cycles),
             TableWriter::integer(counters.blocked_cycles), ""});
  }
  for (std::size_t v = 0; v < vc_busy_.size(); ++v) {
    const VcState& vc = net.vc(static_cast<VcId>(v));
    const PhysChannel& pc = net.phys(vc.channel);
    csv.row({"vc", TableWriter::integer(static_cast<long long>(v)),
             std::string(kind_name(pc.kind)), TableWriter::integer(pc.src),
             TableWriter::integer(pc.dst), TableWriter::integer(pc.dim),
             TableWriter::integer(pc.dir), TableWriter::integer(vc.channel),
             TableWriter::integer(vc.index),
             TableWriter::integer(vc_traversals_[v]),
             TableWriter::integer(vc_busy_[v]),
             TableWriter::integer(vc_blocked_[v]), ""});
  }
  for (std::size_t n = 0; n < injection_stall_cycles_.size(); ++n) {
    csv.row({"node", TableWriter::integer(static_cast<long long>(n)), "", "",
             "", "", "", "", "", "", "", "",
             TableWriter::integer(injection_stall_cycles_[n])});
  }
}

}  // namespace flexnet
