// Spatial heatmap: where in the network traffic flows and congestion sits.
//
// Three kinds of counters:
//  * per-channel / per-VC traversal counts — exact, incremented by a
//    null-guarded hook in the transmit phase (one flit per channel per
//    cycle, so a traversal count is also the channel's active-cycle count);
//  * per-VC busy / blocked cycles — accumulated at every telemetry sampling
//    instant (each owned VC gains the interval's cycle count; "blocked"
//    additionally requires the owning message's header to be blocked), i.e.
//    piecewise-constant occupancy integration at the sampling resolution;
//  * per-node injection-stall cycles — exact, counted in the route phase
//    whenever a node's source queue stays non-empty after injection grants.
//
// Renderable as ASCII density grids for 2D topologies and dumpable as a
// single CSV (channel, VC and node rows discriminated by a `row` column).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace flexnet {

class Network;

class SpatialHeatmap {
 public:
  struct ChannelCounters {
    std::int64_t traversals = 0;      ///< Flits transmitted (exact).
    std::int64_t busy_cycles = 0;     ///< Sampled VC-occupancy cycles.
    std::int64_t blocked_cycles = 0;  ///< Sampled blocked-owner cycles.
  };

  /// Sizes every counter array from the network's static shape.
  explicit SpatialHeatmap(const Network& net);

  // --- hot-path hooks (call sites in Network are null-guarded) -------------
  void on_traversal(ChannelId channel, VcId vc) noexcept {
    ++channels_[static_cast<std::size_t>(channel)].traversals;
    ++vc_traversals_[static_cast<std::size_t>(vc)];
  }
  void on_injection_stall(NodeId node) noexcept {
    ++injection_stall_cycles_[static_cast<std::size_t>(node)];
  }

  /// Occupancy accumulation at a sampling instant: every owned VC gains
  /// `cycles_covered` busy cycles (blocked cycles too when its owner's
  /// header is blocked).
  void sample_occupancy(const Network& net, Cycle cycles_covered);

  // --- observers -----------------------------------------------------------
  [[nodiscard]] const ChannelCounters& channel(ChannelId id) const {
    return channels_.at(static_cast<std::size_t>(id));
  }
  [[nodiscard]] std::int64_t vc_traversals(VcId id) const {
    return vc_traversals_.at(static_cast<std::size_t>(id));
  }
  [[nodiscard]] std::int64_t vc_busy_cycles(VcId id) const {
    return vc_busy_.at(static_cast<std::size_t>(id));
  }
  [[nodiscard]] std::int64_t vc_blocked_cycles(VcId id) const {
    return vc_blocked_.at(static_cast<std::size_t>(id));
  }
  [[nodiscard]] std::int64_t injection_stall_cycles(NodeId node) const {
    return injection_stall_cycles_.at(static_cast<std::size_t>(node));
  }

  [[nodiscard]] std::int64_t total_traversals() const noexcept;
  [[nodiscard]] std::int64_t total_blocked_cycles() const noexcept;
  [[nodiscard]] std::int64_t total_injection_stalls() const noexcept;

  /// Network-channel ids (< `num_network_channels`) ordered by descending
  /// `traversals` (ties by id); at most `top` entries. The manifest's "hot
  /// channels" list — injection/ejection channels are excluded so endpoint
  /// totals don't drown the fabric.
  [[nodiscard]] std::vector<ChannelId> hottest_channels(
      std::size_t top, std::size_t num_network_channels) const;

  enum class Field : std::uint8_t {
    Traversals,       ///< Incoming network-channel flit counts per node.
    BlockedCycles,    ///< Incoming network-channel blocked cycles per node.
    InjectionStalls,  ///< Source-queue stall cycles per node.
  };

  /// ASCII density rendering. 2-D tori/meshes get the grid form (one glyph
  /// per node, dimension 0 horizontal, scale ' .:-=+*#%@' normalized to the
  /// hottest node, with a legend line); every other topology gets a
  /// degree-ordered per-node table (node, degree, value, '#' bar) so
  /// irregular networks still have a human-readable view.
  [[nodiscard]] std::string ascii_grid(const Network& net, Field field) const;

  /// CSV dump: one row per channel, per VC, and per node, discriminated by
  /// the leading `row` column. Fixed schema (see write_csv header row).
  void write_csv(std::ostream& out, const Network& net) const;

 private:
  std::vector<ChannelCounters> channels_;
  std::vector<std::int64_t> vc_traversals_;
  std::vector<std::int64_t> vc_busy_;
  std::vector<std::int64_t> vc_blocked_;
  std::vector<std::int64_t> injection_stall_cycles_;
};

[[nodiscard]] std::string_view to_string(SpatialHeatmap::Field field) noexcept;

}  // namespace flexnet
