// Per-phase wall-clock self-profiling. A PhaseProfiler accumulates call
// counts and total/max nanoseconds for each of the simulator's per-cycle
// phases; ScopedPhase is the RAII timer placed at the hot-path hook points.
// Both follow the tracer's null-guard discipline: a null profiler pointer
// makes every hook a single predictable branch, and a ScopedPhase built from
// nullptr never touches the clock.
//
// Nesting: deadlock recovery runs *inside* a detector invocation, so the
// Detector phase's total includes the Recovery phase's total. total_ns()
// therefore sums all phases except Recovery.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

namespace flexnet {

/// The simulator's per-cycle phases, in execution order.
enum class SimPhase : std::uint8_t {
  Deliver,   ///< Reception interfaces drain ejection VCs.
  Route,     ///< Injection grants + header VC allocation.
  Transmit,  ///< Link transmission (one flit per physical channel).
  Detector,  ///< Deadlock detection pass (includes Recovery).
  Recovery,  ///< Victim removal inside a detection pass.
  kCount_,   ///< Sentinel; not a real phase.
};

inline constexpr std::size_t kNumSimPhases =
    static_cast<std::size_t>(SimPhase::kCount_);

[[nodiscard]] std::string_view to_string(SimPhase phase) noexcept;

class PhaseProfiler {
 public:
  struct PhaseStats {
    std::int64_t calls = 0;
    std::int64_t total_ns = 0;
    std::int64_t max_ns = 0;

    [[nodiscard]] double mean_ns() const noexcept {
      return calls > 0 ? static_cast<double>(total_ns) /
                             static_cast<double>(calls)
                       : 0.0;
    }
  };

  void record(SimPhase phase, std::int64_t ns) noexcept {
    PhaseStats& s = phases_[static_cast<std::size_t>(phase)];
    ++s.calls;
    s.total_ns += ns;
    if (ns > s.max_ns) s.max_ns = ns;
  }

  [[nodiscard]] const PhaseStats& stats(SimPhase phase) const noexcept {
    return phases_[static_cast<std::size_t>(phase)];
  }

  /// Total profiled time; excludes Recovery (already inside Detector).
  [[nodiscard]] std::int64_t total_ns() const noexcept;

  void reset() noexcept { phases_.fill(PhaseStats{}); }

  /// Aligned text table (phase, calls, total ms, mean us, max us, share).
  [[nodiscard]] std::string table() const;

 private:
  std::array<PhaseStats, kNumSimPhases> phases_{};
};

/// RAII phase timer; no-op when constructed with a null profiler.
class ScopedPhase {
 public:
  ScopedPhase(PhaseProfiler* profiler, SimPhase phase) noexcept
      : profiler_(profiler), phase_(phase) {
    if (profiler_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

  ~ScopedPhase() {
    if (profiler_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    profiler_->record(
        phase_,
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  }

 private:
  PhaseProfiler* profiler_;
  SimPhase phase_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace flexnet
