#include "telemetry/profiler.hpp"

#include <sstream>

#include "util/csv.hpp"

namespace flexnet {

std::string_view to_string(SimPhase phase) noexcept {
  switch (phase) {
    case SimPhase::Deliver: return "deliver";
    case SimPhase::Route: return "route";
    case SimPhase::Transmit: return "transmit";
    case SimPhase::Detector: return "detector";
    case SimPhase::Recovery: return "recovery";
    case SimPhase::kCount_: break;
  }
  return "?";
}

std::int64_t PhaseProfiler::total_ns() const noexcept {
  std::int64_t total = 0;
  for (std::size_t i = 0; i < kNumSimPhases; ++i) {
    if (static_cast<SimPhase>(i) == SimPhase::Recovery) continue;
    total += phases_[i].total_ns;
  }
  return total;
}

std::string PhaseProfiler::table() const {
  TableWriter table("phase profile");
  table.header({"phase", "calls", "total_ms", "mean_us", "max_us", "share"});
  const double total = static_cast<double>(total_ns());
  for (std::size_t i = 0; i < kNumSimPhases; ++i) {
    const auto phase = static_cast<SimPhase>(i);
    const PhaseStats& s = phases_[i];
    const double share =
        (total > 0 && phase != SimPhase::Recovery)
            ? 100.0 * static_cast<double>(s.total_ns) / total
            : 0.0;
    table.row({std::string(to_string(phase)), TableWriter::integer(s.calls),
               TableWriter::num(static_cast<double>(s.total_ns) / 1e6, 3),
               TableWriter::num(s.mean_ns() / 1e3, 3),
               TableWriter::num(static_cast<double>(s.max_ns) / 1e3, 3),
               phase == SimPhase::Recovery ? "(in detector)"
                                           : TableWriter::num(share, 1) + "%"});
  }
  std::ostringstream out;
  table.print(out);
  return out.str();
}

}  // namespace flexnet
