// Interval time series: every N cycles the recorder snapshots the network
// into one fixed-schema sample — flow over the interval (deliveries,
// throughput, latency of the interval's deliveries), instantaneous congestion
// (blocked/in-network/queued messages, CWG solid and dashed arc counts), and
// detector activity (invocations, confirmed deadlocks, transient knots,
// livelock removals). This is the temporal ramp the paper's deadlock story
// needs: knots close only after sustained congestion builds, and the series
// makes that build-up visible.
//
// The store is ring-bounded: at most `capacity` samples are retained and long
// runs overwrite the oldest, so memory stays O(capacity) regardless of run
// length. `total_samples()` still counts everything ever recorded.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/message_class.hpp"
#include "sim/types.hpp"

namespace flexnet {

class Network;
class DeadlockDetector;

struct IntervalSample {
  Cycle cycle = -1;  ///< Sample instant (end of the covered interval).

  // Flow over the interval (diffs of the network's monotonic counters).
  std::int64_t generated = 0;
  std::int64_t injected = 0;
  std::int64_t delivered = 0;
  std::int64_t recovered = 0;
  std::int64_t flits_delivered = 0;
  double throughput_flits_per_node = 0.0;
  /// Mean latency of messages delivered during this interval; 0 when none.
  double avg_latency = 0.0;
  /// Interval deliveries per message class (index = class_index; sums to
  /// `delivered`). All-Bulk for Bernoulli workloads.
  std::array<std::int64_t, kNumMessageClasses> class_delivered{};

  // Instantaneous state at the sample cycle.
  std::int32_t blocked = 0;
  double blocked_fraction = 0.0;  ///< blocked / in-network; 0 when empty.
  std::int64_t in_network = 0;
  std::int64_t queued = 0;
  std::int64_t cwg_ownership_arcs = 0;  ///< Solid arcs (held-chain links).
  std::int64_t cwg_request_arcs = 0;    ///< Dashed arcs (blocked requests).

  // Detector activity over the interval.
  std::int64_t detector_invocations = 0;
  /// Passes the incremental pipeline answered without a CWG rebuild (arc
  /// epoch unchanged or nothing blocked); <= detector_invocations.
  std::int64_t detector_skipped = 0;
  std::int64_t deadlocks = 0;
  std::int64_t transient_knots = 0;
  std::int64_t livelocks = 0;
};

class IntervalRecorder {
 public:
  /// Samples cover `interval` cycles each; the ring retains `capacity`.
  IntervalRecorder(Cycle interval, std::size_t capacity);

  /// Records one sample at net.now(), covering the cycles since the previous
  /// call. The caller (Telemetry) controls the cadence. Detector statistics
  /// diffs are clamped at zero so a mid-run reset_statistics() (end of
  /// warmup) yields an empty interval rather than a negative one.
  void sample(const Network& net, const DeadlockDetector& detector);

  [[nodiscard]] Cycle interval() const noexcept { return interval_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  /// Samples currently retained (<= capacity).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// Samples ever recorded (size() + overwritten).
  [[nodiscard]] std::uint64_t total_samples() const noexcept { return seen_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return seen_ - size_;
  }

  /// i-th retained sample, oldest first (i < size()).
  [[nodiscard]] const IntervalSample& at(std::size_t i) const;

 private:
  Cycle interval_;
  std::vector<IntervalSample> ring_;
  std::size_t head_ = 0;  ///< Next write position.
  std::size_t size_ = 0;
  std::uint64_t seen_ = 0;

  Cycle prev_cycle_ = 0;
  struct Snapshot {
    std::int64_t generated = 0;
    std::int64_t injected = 0;
    std::int64_t delivered = 0;
    std::int64_t recovered = 0;
    std::int64_t flits_delivered = 0;
    std::int64_t delivered_latency_sum = 0;
    std::array<std::int64_t, kNumMessageClasses> class_delivered{};
    std::int64_t invocations = 0;
    std::int64_t skipped = 0;
    std::int64_t deadlocks = 0;
    std::int64_t transient_knots = 0;
    std::int64_t livelocks = 0;
  } prev_{};
};

}  // namespace flexnet
