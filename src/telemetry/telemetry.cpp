#include "telemetry/telemetry.hpp"

#include "core/detector.hpp"
#include "sim/network.hpp"

namespace flexnet {

TelemetryConfig TelemetryConfig::with_point_suffix(std::size_t point) const {
  TelemetryConfig out = *this;
  const std::string suffix = ".p" + std::to_string(point);
  if (!out.manifest_path.empty()) out.manifest_path += suffix;
  if (!out.heatmap_csv_path.empty()) out.heatmap_csv_path += suffix;
  return out;
}

Telemetry::Telemetry(const TelemetryConfig& config, const Network& net)
    : config_(config),
      interval_(config.interval, config.ring_capacity),
      heatmap_(net),
      next_sample_(net.now() + config.interval) {
  last_sample_ = net.now();
}

void Telemetry::contribute_hooks(NetworkHooks& hooks,
                                 DeadlockDetector& detector) {
  hooks.heatmap = &heatmap_;
  hooks.profiler = &profiler_;
  detector.set_profiler(&profiler_);
}

void Telemetry::sample_now(const Network& net,
                           const DeadlockDetector& detector) {
  interval_.sample(net, detector);
  heatmap_.sample_occupancy(net, net.now() - last_sample_);
  last_sample_ = net.now();
  next_sample_ = net.now() + config_.interval;
}

}  // namespace flexnet
