// Run-scoped telemetry: one object bundling the three collectors —
// IntervalRecorder (time series), SpatialHeatmap (where congestion sits),
// PhaseProfiler (where wall-clock time goes) — plus the configuration that
// turns them on. Simulation owns a Telemetry when TelemetryConfig::enabled()
// and wires its probes into the network and detector; with telemetry off the
// simulator pays exactly the tracer's price: one null-pointer branch per
// instrumentation point.
#pragma once

#include <cstdint>
#include <string>

#include "sim/network.hpp"
#include "sim/types.hpp"
#include "telemetry/heatmap.hpp"
#include "telemetry/interval.hpp"
#include "telemetry/profiler.hpp"

namespace flexnet {

class DeadlockDetector;

struct TelemetryConfig {
  /// Master switch; any output path below also enables collection.
  bool collect = false;
  /// Sampling stride in cycles (interval series + heatmap occupancy).
  Cycle interval = 100;
  /// Interval samples retained (ring-bounded; older samples are dropped).
  std::size_t ring_capacity = 4096;
  /// Write the JSON run manifest here (--telemetry-json).
  std::string manifest_path;
  /// Write the heatmap counter CSV here (--heatmap).
  std::string heatmap_csv_path;

  [[nodiscard]] bool enabled() const noexcept {
    return collect || !manifest_path.empty() || !heatmap_csv_path.empty();
  }

  /// Per-point file names for sweeps: "out.json" -> "out.json.p<i>", same
  /// convention as TraceConfig so parallel points never share a stream.
  [[nodiscard]] TelemetryConfig with_point_suffix(std::size_t point) const;
};

/// What a telemetry-enabled run leaves behind in its ExperimentResult:
/// cheap, preformatted summaries plus the paths of any files written.
struct TelemetryArtifacts {
  bool enabled = false;
  std::size_t interval_samples = 0;   ///< Retained in the ring.
  std::uint64_t samples_dropped = 0;  ///< Overwritten by ring bounding.
  std::int64_t deadlocks_in_series = 0;
  std::string manifest_path;     ///< Empty when no manifest was written.
  std::string heatmap_csv_path;  ///< Empty when no CSV was written.
  std::string heatmap_ascii;     ///< Traversal grid; empty unless 2D.
  std::string profile_table;     ///< PhaseProfiler::table().
};

class Telemetry {
 public:
  /// `config.interval` < 1 throws; the network fixes the counter shapes.
  Telemetry(const TelemetryConfig& config, const Network& net);

  /// Contributes the hot-path probes — heatmap + profiler — to the network
  /// observer surface being assembled, and wires the profiler into the
  /// detector. Pointers are non-owning; this Telemetry must outlive every
  /// consumer (Simulation guarantees it).
  void contribute_hooks(NetworkHooks& hooks, DeadlockDetector& detector);

  /// Per-cycle driver hook (call after Network::step() + detector tick);
  /// samples the collectors whenever the configured interval elapses.
  void tick(const Network& net, const DeadlockDetector& detector) {
    if (net.now() < next_sample_) return;
    sample_now(net, detector);
  }

  /// Forces a final sample covering any residual partial interval, so the
  /// series and heatmap occupancy account for every cycle of the run.
  void finalize(const Network& net, const DeadlockDetector& detector) {
    if (net.now() > last_sample_) sample_now(net, detector);
  }

  [[nodiscard]] const TelemetryConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const IntervalRecorder& interval_series() const noexcept {
    return interval_;
  }
  [[nodiscard]] const SpatialHeatmap& heatmap() const noexcept {
    return heatmap_;
  }
  [[nodiscard]] SpatialHeatmap& heatmap() noexcept { return heatmap_; }
  [[nodiscard]] const PhaseProfiler& profiler() const noexcept {
    return profiler_;
  }
  [[nodiscard]] PhaseProfiler& profiler() noexcept { return profiler_; }

 private:
  void sample_now(const Network& net, const DeadlockDetector& detector);

  TelemetryConfig config_;
  IntervalRecorder interval_;
  SpatialHeatmap heatmap_;
  PhaseProfiler profiler_;
  Cycle next_sample_;
  Cycle last_sample_ = 0;
};

}  // namespace flexnet
