// Log-bucketed histogram: p50/p99/p999 without storing samples.
//
// Values land in power-of-two buckets (bucket 0 holds value 0, bucket b >= 1
// holds [2^(b-1), 2^b - 1]); 64 buckets cover the full non-negative int64
// range, so recording never saturates into an overflow bin. Quantiles are
// recovered by walking the cumulative counts and interpolating linearly
// inside the target bucket — an upper-bound error of one bucket width
// (a factor-of-two resolution), which is exactly the fidelity the latency
// and stall-age ramps need while keeping the store a fixed 64-slot array:
// allocation-free, mergeable, and byte-stable for deterministic streams.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

namespace flexnet {

class BinReader;
class BinWriter;

class LogHistogram {
 public:
  static constexpr int kBuckets = 64;

  /// Bucket index for a value (negative values clamp to bucket 0).
  [[nodiscard]] static int bucket_of(std::int64_t v) noexcept {
    if (v <= 0) return 0;
    return std::bit_width(static_cast<std::uint64_t>(v));
  }
  /// Inclusive value range [lo, hi] covered by bucket `b`.
  [[nodiscard]] static std::int64_t bucket_lo(int b) noexcept {
    return b <= 0 ? 0 : std::int64_t{1} << (b - 1);
  }
  [[nodiscard]] static std::int64_t bucket_hi(int b) noexcept {
    if (b <= 0) return 0;
    if (b >= 63) return INT64_MAX;
    return (std::int64_t{1} << b) - 1;
  }

  void record(std::int64_t v) noexcept {
    ++counts_[static_cast<std::size_t>(bucket_of(v))];
    ++count_;
    sum_ += v;
    if (v > max_) max_ = v;
  }

  void merge(const LogHistogram& other) noexcept {
    for (int b = 0; b < kBuckets; ++b) counts_[static_cast<std::size_t>(b)] +=
        other.counts_[static_cast<std::size_t>(b)];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.max_ > max_) max_ = other.max_;
  }

  void reset() noexcept {
    counts_.fill(0);
    count_ = 0;
    sum_ = 0;
    max_ = 0;
  }

  [[nodiscard]] std::int64_t count() const noexcept { return count_; }
  [[nodiscard]] std::int64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::int64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ > 0 ? static_cast<double>(sum_) / static_cast<double>(count_)
                      : 0.0;
  }
  [[nodiscard]] std::int64_t bucket_count(int b) const {
    return counts_.at(static_cast<std::size_t>(b));
  }

  /// Quantile estimate for q in [0, 1]: linear interpolation inside the
  /// bucket holding the ceil(q * count)-th sample, clamped by the recorded
  /// maximum. 0 when empty. Pure integer/double arithmetic on the fixed
  /// bucket bounds, so identical histograms always yield identical bytes.
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] double p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] double p99() const noexcept { return quantile(0.99); }
  [[nodiscard]] double p999() const noexcept { return quantile(0.999); }

  /// Snapshot codec (fixed layout: 64 bucket counts + the three scalars).
  void save_state(BinWriter& out) const;
  void restore_state(BinReader& in);

  friend bool operator==(const LogHistogram&, const LogHistogram&) = default;

 private:
  std::array<std::int64_t, kBuckets> counts_{};
  std::int64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t max_ = 0;
};

}  // namespace flexnet
