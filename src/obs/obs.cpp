#include "obs/obs.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/binio.hpp"
#include "util/json.hpp"

namespace flexnet {

ObsConfig ObsConfig::with_point_suffix(std::size_t point) const {
  ObsConfig c = *this;
  const std::string suffix = ".p" + std::to_string(point);
  if (!c.metrics_path.empty()) c.metrics_path += suffix;
  return c;
}

ObsCollector::ObsCollector(const ObsConfig& config, const Network& net)
    : config_(config) {
  if (config_.interval < 1) {
    throw std::invalid_argument("metrics interval must be >= 1");
  }
  if (config_.stall_ref < 1) {
    throw std::invalid_argument("warn stall reference must be >= 1");
  }
  const std::size_t nvcs = net.num_vcs();
  const std::size_t nchannels = net.num_channels();
  const auto nnodes = static_cast<std::size_t>(net.topology().num_nodes());
  vc_stall_hwm_.assign(nvcs, 0);
  channel_stall_hwm_.assign(nchannels, 0);
  dsu_parent_.assign(nvcs, kInvalidVc);
  dsu_gen_.assign(nvcs, 0);
  comp_count_.assign(nvcs, 0);
  comp_gen_.assign(nvcs, 0);
  node_gen_.assign(nnodes, 0);
  involved_.reserve(nvcs);
  next_sample_ = net.now() + config_.interval;

  if (!config_.metrics_path.empty()) {
    out_.open(config_.metrics_path, std::ios::binary | std::ios::trunc);
    if (!out_) {
      throw std::runtime_error("cannot open metrics file: " +
                               config_.metrics_path);
    }
    stream_open_ = true;
    // Header record: schema + the shape every later record is relative to.
    JsonWriter json(out_, 0);
    json.begin_object();
    json.field("schema", kMetricsSchema);
    json.field("interval", config_.interval);
    json.field("warn_threshold", config_.warn_threshold);
    json.field("stall_ref", config_.stall_ref);
    json.field("nodes", static_cast<std::uint64_t>(nnodes));
    json.field("vcs", static_cast<std::uint64_t>(nvcs));
    json.field("channels", static_cast<std::uint64_t>(nchannels));
    json.end_object();
    out_ << '\n';
    out_.flush();
  }
}

VcId ObsCollector::dsu_find(VcId v) noexcept {
  while (dsu_parent_[static_cast<std::size_t>(v)] != v) {
    const VcId parent = dsu_parent_[static_cast<std::size_t>(v)];
    dsu_parent_[static_cast<std::size_t>(v)] =
        dsu_parent_[static_cast<std::size_t>(parent)];
    v = dsu_parent_[static_cast<std::size_t>(v)];
  }
  return v;
}

void ObsCollector::dsu_union(VcId a, VcId b) noexcept {
  a = dsu_find(a);
  b = dsu_find(b);
  if (a != b) dsu_parent_[static_cast<std::size_t>(b)] = a;
}

void ObsCollector::sample_now(const Network& net, const DeadlockDetector& detector) {
  const Cycle now = net.now();
  ObsSample s;
  s.cycle = now;

  // Flow over the interval + cumulative latency percentiles.
  const Network::Counters& c = net.counters();
  s.delivered = c.delivered - prev_delivered_;
  s.recovered = c.recovered - prev_recovered_;
  prev_delivered_ = c.delivered;
  prev_recovered_ = c.recovered;
  for (std::size_t k = 0; k < kNumMessageClasses; ++k) {
    s.class_delivered[k] = c.class_delivered[k] - prev_class_delivered_[k];
    prev_class_delivered_[k] = c.class_delivered[k];
  }
  s.latency_p50 = latency_hist_.p50();
  s.latency_p99 = latency_hist_.p99();
  s.latency_p999 = latency_hist_.p999();
  s.latency_max = latency_hist_.max();

  // One scan over the active messages covers arcs, stall ages, and the
  // blocked-component union-find. Generation marks reset the scratch.
  ++gen_;
  involved_.clear();
  auto touch = [&](VcId v) {
    const auto idx = static_cast<std::size_t>(v);
    if (dsu_gen_[idx] != gen_) {
      dsu_gen_[idx] = gen_;
      dsu_parent_[idx] = v;
      involved_.push_back(v);
    }
  };
  for (const MessageId id : net.active_messages()) {
    const Message& msg = net.message(id);
    if (!msg.held.empty()) {
      s.ownership_arcs += static_cast<std::int64_t>(msg.held.size()) - 1;
    }
    if (!msg.blocked) continue;
    ++s.blocked;
    s.request_arcs += static_cast<std::int64_t>(msg.request_set.size());
    const Cycle age = msg.blocked_since >= 0 ? now - msg.blocked_since : 0;
    stall_hist_.record(age);
    if (age > s.max_stall_age) s.max_stall_age = age;
    if (age > stall_hwm_) stall_hwm_ = age;
    if (!msg.held.empty()) {
      const VcId tip = msg.held.back();
      auto& vc_hwm = vc_stall_hwm_[static_cast<std::size_t>(tip)];
      if (age > vc_hwm) vc_hwm = age;
      const ChannelId ch = net.vc(tip).channel;
      auto& ch_hwm = channel_stall_hwm_[static_cast<std::size_t>(ch)];
      if (age > ch_hwm) ch_hwm = age;
    }
    // A blocked message's held chain plus the VCs it is requesting form one
    // wait-for component; chains sharing any VC coalesce.
    VcId anchor = kInvalidVc;
    for (const VcId v : msg.held) {
      touch(v);
      if (anchor == kInvalidVc) anchor = v;
      else dsu_union(anchor, v);
    }
    for (const VcId v : msg.request_set) {
      touch(v);
      if (anchor == kInvalidVc) anchor = v;
      else dsu_union(anchor, v);
    }
  }
  s.stall_hwm = stall_hwm_;
  s.stall_p99 = stall_hist_.p99();
  for (const VcId v : involved_) {
    const auto root = static_cast<std::size_t>(dsu_find(v));
    if (comp_gen_[root] != gen_) {
      comp_gen_[root] = gen_;
      comp_count_[root] = 0;
    }
    if (++comp_count_[root] > s.largest_component) {
      s.largest_component = comp_count_[root];
    }
  }
  s.arc_growth = s.request_arcs - prev_request_arcs_;
  prev_request_arcs_ = s.request_arcs;

  // Detector-side pressure: keep the last valid reading so a record emitted
  // between restore and the detector's first pass (when its process-local
  // cache is cold) still matches the uninterrupted run's bytes.
  if (detector.pressure().valid) last_pressure_ = detector.pressure();
  s.det_closure = last_pressure_.closure_size;
  s.det_largest_scc = last_pressure_.largest_scc;
  s.det_knots = last_pressure_.knots;
  s.det_cycle = last_pressure_.computed_at;
  s.det_valid = last_pressure_.valid;

  // Activity census.
  const std::size_t nvcs = net.num_vcs();
  for (std::size_t i = 0; i < nvcs; ++i) {
    const VcState& vc = net.vc(static_cast<VcId>(i));
    if (vc.is_free()) continue;
    ++s.active_vcs;
    const auto dst = static_cast<std::size_t>(net.phys(vc.channel).dst);
    if (node_gen_[dst] != gen_) {
      node_gen_[dst] = gen_;
      ++s.active_routers;
    }
  }
  const auto nnodes = static_cast<NodeId>(node_gen_.size());
  s.idle_routers = static_cast<std::int32_t>(nnodes) - s.active_routers;
  for (NodeId n = 0; n < nnodes; ++n) {
    if (net.source_queue_length(n) > 0) ++s.active_sources;
  }
  s.in_network = static_cast<std::int64_t>(net.active_messages().size());
  s.queued = net.queued_message_count();

  // Precursor score: stall age is the dominant term (a knot's members age
  // without bound), amplified by how much of the network is entangled.
  const double s_age = static_cast<double>(s.max_stall_age) /
                       static_cast<double>(config_.stall_ref);
  const double s_arcs =
      static_cast<double>(s.request_arcs) / static_cast<double>(nvcs);
  const double s_comp =
      static_cast<double>(s.largest_component) / static_cast<double>(nvcs);
  // Structural factor from the detector's last valid pass: a blocked SCC
  // means a cyclic wait already exists (deadlock's necessary condition), so
  // the age evidence is amplified; an acyclic blocked structure is draining
  // congestion, so ages alone must be ~4x as extreme before we believe them.
  // No reading (detection withheld, or restored detector before its first
  // pass) leaves the age evidence unscaled. This is what keeps saturated but
  // deadlock-free runs (up*/down*, Duato escape VCs) warning-silent.
  double s_struct = 1.0;
  if (last_pressure_.valid) {
    s_struct = last_pressure_.largest_scc > 1 ? 2.0 : 0.25;
  }
  s.score = s_age * (1.0 + s_arcs + s_comp) * s_struct;
  if (s.score > peak_score_) peak_score_ = s.score;

  // Rising-edge warning latch; re-arms at half threshold so a score
  // hovering at the boundary cannot fire every sample.
  if (!warn_active_ && s.score >= config_.warn_threshold) {
    warn_active_ = true;
    s.warning = true;
    ++warning_count_;
    if (first_warning_cycle_ < 0) first_warning_cycle_ = now;
    if (Tracer* tracer = net.hooks().tracer) {
      TraceEvent event;
      event.cycle = now;
      event.kind = TraceEventKind::DeadlockWarning;
      event.arg = static_cast<std::int32_t>(
          std::min<std::int64_t>(s.max_stall_age, INT32_MAX));
      tracer->emit(event);
    }
  } else if (warn_active_ && s.score < config_.warn_threshold * 0.5) {
    warn_active_ = false;
  }

  last_ = s;
  ++samples_recorded_;
  next_sample_ = now + config_.interval;
  emit_record(s);
}

void ObsCollector::emit_record(const ObsSample& s) {
  if (!stream_open_) return;
  JsonWriter json(out_, 0);
  json.begin_object();
  json.field("cycle", s.cycle);
  json.field("delivered", s.delivered);
  json.field("recovered", s.recovered);
  json.field("latency_p50", s.latency_p50);
  json.field("latency_p99", s.latency_p99);
  json.field("latency_p999", s.latency_p999);
  json.field("latency_max", s.latency_max);
  json.field("blocked", s.blocked);
  json.field("max_stall_age", s.max_stall_age);
  json.field("stall_hwm", s.stall_hwm);
  json.field("stall_p99", s.stall_p99);
  json.field("ownership_arcs", s.ownership_arcs);
  json.field("request_arcs", s.request_arcs);
  json.field("arc_growth", s.arc_growth);
  json.field("largest_component", s.largest_component);
  json.field("det_closure", s.det_closure);
  json.field("det_largest_scc", s.det_largest_scc);
  json.field("det_knots", s.det_knots);
  json.field("det_cycle", s.det_cycle);
  json.field("det_valid", s.det_valid);
  json.field("score", s.score);
  json.field("warning", s.warning);
  json.field("active_routers", s.active_routers);
  json.field("idle_routers", s.idle_routers);
  json.field("active_vcs", s.active_vcs);
  json.field("active_sources", s.active_sources);
  json.field("in_network", s.in_network);
  json.field("queued", s.queued);
  json.key("class_delivered").begin_array();
  for (const std::int64_t n : s.class_delivered) json.value(n);
  json.end_array();
  json.end_object();
  out_ << '\n';
  out_.flush();
}

void ObsCollector::finalize(const Network& net, const DeadlockDetector& detector) {
  if (finalized_) return;
  finalized_ = true;
  // Residual partial interval: make the stream's last sample cover the run's
  // actual end, then fold the cumulative summary into a trailing record.
  if (net.now() > last_.cycle) sample_now(net, detector);
  if (!detector.records().empty()) {
    first_confirmation_cycle_ = detector.records().front().detected_at;
  }
  if (stream_open_) {
    JsonWriter json(out_, 0);
    json.begin_object();
    json.field("final", true);
    write_summary_fields(json, net);
    json.end_object();
    out_ << '\n';
    out_.flush();
  }
}

void ObsCollector::write_summary_fields(JsonWriter& json,
                                        const Network& net) const {
  json.field("schema", kMetricsSchema);
  json.field("samples", samples_recorded_);
  json.field("peak_score", peak_score_);
  json.field("warnings", warning_count_);
  json.field("first_warning_cycle", first_warning_cycle_);
  json.field("first_confirmation_cycle", first_confirmation_cycle_);
  json.field("lead_cycles", lead_cycles());
  json.field("stall_hwm", stall_hwm_);
  json.field("delivered", net.counters().delivered);
  json.field("recovered", net.counters().recovered);
  json.key("latency").begin_object();
  json.field("count", latency_hist_.count());
  json.field("mean", latency_hist_.mean());
  json.field("p50", latency_hist_.p50());
  json.field("p99", latency_hist_.p99());
  json.field("p999", latency_hist_.p999());
  json.field("max", latency_hist_.max());
  json.end_object();
  json.key("stall_age").begin_object();
  json.field("count", stall_hist_.count());
  json.field("p50", stall_hist_.p50());
  json.field("p99", stall_hist_.p99());
  json.field("max", stall_hist_.max());
  json.end_object();
  json.key("classes").begin_object();
  for (const MessageClass cls : all_message_classes()) {
    const LogHistogram& h = class_latency_hist_[class_index(cls)];
    json.key(to_string(cls)).begin_object();
    json.field("delivered", net.counters().class_delivered[class_index(cls)]);
    json.field("latency_p50", h.p50());
    json.field("latency_p99", h.p99());
    json.field("latency_max", h.max());
    json.end_object();
  }
  json.end_object();
}

ObsArtifacts ObsCollector::artifacts() const {
  ObsArtifacts a;
  a.enabled = config_.enabled();
  a.metrics_path = config_.metrics_path;
  a.samples = samples_recorded_;
  a.peak_score = peak_score_;
  a.warnings = warning_count_;
  a.first_warning_cycle = first_warning_cycle_;
  a.first_confirmation_cycle = first_confirmation_cycle_;
  a.lead_cycles = lead_cycles();
  return a;
}

void ObsCollector::save_state(BinWriter& out) const {
  out.u32(static_cast<std::uint32_t>(vc_stall_hwm_.size()));
  out.u32(static_cast<std::uint32_t>(channel_stall_hwm_.size()));
  latency_hist_.save_state(out);
  stall_hist_.save_state(out);
  for (const std::int64_t v : vc_stall_hwm_) out.i64(v);
  for (const std::int64_t v : channel_stall_hwm_) out.i64(v);
  out.i64(stall_hwm_);
  out.f64(peak_score_);
  out.u8(warn_active_ ? 1 : 0);
  out.i64(warning_count_);
  out.i64(first_warning_cycle_);
  out.i64(prev_delivered_);
  out.i64(prev_recovered_);
  out.i64(prev_request_arcs_);
  out.u64(samples_recorded_);
  out.i64(next_sample_);
  out.i64(last_.cycle);
  out.i64(last_pressure_.computed_at);
  out.i64(last_pressure_.closure_size);
  out.i64(last_pressure_.largest_scc);
  out.i64(last_pressure_.knots);
  out.u8(last_pressure_.valid ? 1 : 0);
  for (const LogHistogram& h : class_latency_hist_) h.save_state(out);
  for (const std::int64_t n : prev_class_delivered_) out.i64(n);
}

void ObsCollector::restore_state(BinReader& in, std::uint32_t version) {
  const std::uint32_t nvcs = in.u32();
  const std::uint32_t nchannels = in.u32();
  if (nvcs != vc_stall_hwm_.size() || nchannels != channel_stall_hwm_.size()) {
    throw std::runtime_error(
        "obs snapshot shape mismatch (different network configuration?)");
  }
  latency_hist_.restore_state(in);
  stall_hist_.restore_state(in);
  for (std::int64_t& v : vc_stall_hwm_) v = in.i64();
  for (std::int64_t& v : channel_stall_hwm_) v = in.i64();
  stall_hwm_ = in.i64();
  peak_score_ = in.f64();
  warn_active_ = in.u8() != 0;
  warning_count_ = in.i64();
  first_warning_cycle_ = in.i64();
  prev_delivered_ = in.i64();
  prev_recovered_ = in.i64();
  prev_request_arcs_ = in.i64();
  samples_recorded_ = in.u64();
  next_sample_ = in.i64();
  last_ = ObsSample{};
  last_.cycle = in.i64();
  last_pressure_.computed_at = in.i64();
  last_pressure_.closure_size = in.i64();
  last_pressure_.largest_scc = in.i64();
  last_pressure_.knots = in.i64();
  last_pressure_.valid = in.u8() != 0;
  class_latency_hist_.fill(LogHistogram{});
  prev_class_delivered_.fill(0);
  if (version >= 3) {
    for (LogHistogram& h : class_latency_hist_) h.restore_state(in);
    for (std::int64_t& n : prev_class_delivered_) n = in.i64();
  }
}

}  // namespace flexnet
