#include "obs/histogram.hpp"

#include <algorithm>

#include "util/binio.hpp"

namespace flexnet {

double LogHistogram::quantile(double q) const noexcept {
  if (count_ <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based; q = 0 means the first sample.
  const auto rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(q * static_cast<double>(count_) + 0.5));
  std::int64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::int64_t in_bucket = counts_[static_cast<std::size_t>(b)];
    if (in_bucket == 0) continue;
    if (cum + in_bucket >= rank) {
      const auto lo = static_cast<double>(bucket_lo(b));
      // The recorded max tightens the top bucket's upper bound.
      const auto hi =
          static_cast<double>(std::min(bucket_hi(b), max_));
      const double frac = static_cast<double>(rank - cum) /
                          static_cast<double>(in_bucket);
      return lo + (hi - lo) * frac;
    }
    cum += in_bucket;
  }
  return static_cast<double>(max_);
}

void LogHistogram::save_state(BinWriter& out) const {
  for (const std::int64_t c : counts_) out.i64(c);
  out.i64(count_);
  out.i64(sum_);
  out.i64(max_);
}

void LogHistogram::restore_state(BinReader& in) {
  for (std::int64_t& c : counts_) c = in.i64();
  count_ = in.i64();
  sum_ = in.i64();
  max_ = in.i64();
}

}  // namespace flexnet
