// Live observability: a streaming, allocation-free metrics layer that
// watches a run *approach* deadlock instead of characterizing it after the
// knot has closed.
//
// Sampled every `--metrics-interval` cycles, an ObsCollector tracks
//
//  * stall age — how long each blocked header has been waiting, with a
//    run-scoped high-watermark per VC and per channel and a log-bucketed age
//    histogram (every sampling instant contributes every blocked header's
//    current age, i.e. a time-integrated age distribution at the sampling
//    resolution);
//  * CWG pressure — solid/dashed arc counts recomputed from message state,
//    the largest blocked component (union-find over the VCs that blocked
//    messages hold or request), and the blocked-closure / largest-SCC stats
//    the incremental detector's scratch recorded at its most recent pass;
//  * a composite precursor score — stall age normalized by `stall_ref`,
//    amplified by arc/component pressure, and scaled by the structural
//    verdict of the detector's last valid pass (a blocked SCC doubles the
//    evidence; an acyclic blocked structure quarters it, which keeps
//    saturated deadlock-free runs silent) — with a `--warn-threshold` that
//    fires a DeadlockWarning trace event strictly before the detector
//    confirms a knot;
//  * end-to-end latency percentiles (p50/p99/p999) from a log-bucketed
//    histogram fed by a null-guarded delivery hook in the network — no
//    samples are stored;
//  * an activity census: how many routers, VCs and sources are actually
//    doing work at the sampling instant (the measurement baseline for the
//    event-driven-core roadmap item).
//
// Every sample is appended to a deterministic `flexnet-metrics-v1` NDJSON
// stream (one compact JSON record per line, flushed per record so
// `metrics_tail --follow` can watch a live run), and a cumulative summary is
// folded into the telemetry manifest. The collector's cumulative state is
// serialized into snapshot section 10, so a resumed run continues the stream
// bit-exactly. Disabled cost inside the simulator: one null-pointer branch
// at the delivery hook, nothing else.
#pragma once

#include <array>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "obs/histogram.hpp"
#include "sim/message_class.hpp"
#include "sim/network.hpp"
#include "sim/types.hpp"

namespace flexnet {

class JsonWriter;

inline constexpr std::string_view kMetricsSchema = "flexnet-metrics-v1";

struct ObsConfig {
  /// Master switch; a metrics path also enables collection.
  bool collect = false;
  /// Append the flexnet-metrics-v1 NDJSON stream here (--metrics).
  std::string metrics_path;
  /// Sampling stride in cycles (--metrics-interval).
  Cycle interval = 100;
  /// Precursor score at or above which a DeadlockWarning fires
  /// (--warn-threshold).
  double warn_threshold = 1.0;
  /// Stall-age normalization for the score's dominant term
  /// (--warn-stall-ref); roughly "a header this old is alarming".
  Cycle stall_ref = 400;

  [[nodiscard]] bool enabled() const noexcept {
    return collect || !metrics_path.empty();
  }

  /// Per-point file names for sweeps: "m.ndjson" -> "m.ndjson.p<i>", same
  /// convention as TelemetryConfig so parallel points never share a stream.
  [[nodiscard]] ObsConfig with_point_suffix(std::size_t point) const;
};

/// One interval record — exactly the fields of one NDJSON line.
struct ObsSample {
  Cycle cycle = -1;

  // Flow over the interval + cumulative latency percentiles.
  std::int64_t delivered = 0;
  std::int64_t recovered = 0;
  double latency_p50 = 0.0;
  double latency_p99 = 0.0;
  double latency_p999 = 0.0;
  std::int64_t latency_max = 0;

  // Stall ages at the sampling instant.
  std::int32_t blocked = 0;
  std::int64_t max_stall_age = 0;
  std::int64_t stall_hwm = 0;  ///< Run-scoped high-watermark.
  double stall_p99 = 0.0;      ///< Cumulative blocked-age histogram.

  // CWG pressure.
  std::int64_t ownership_arcs = 0;
  std::int64_t request_arcs = 0;
  std::int64_t arc_growth = 0;  ///< request_arcs minus previous sample's.
  std::int64_t largest_component = 0;  ///< VCs in the largest blocked component.
  std::int64_t det_closure = 0;     ///< Detector's blocked-closure size.
  std::int64_t det_largest_scc = 0; ///< Detector's largest blocked SCC.
  std::int64_t det_knots = 0;
  Cycle det_cycle = -1;  ///< Pass the detector stats are current as of.
  bool det_valid = false;

  // Precursor score.
  double score = 0.0;
  bool warning = false;  ///< True on the rising-edge sample that fired.

  // Activity census.
  std::int32_t active_routers = 0;
  std::int32_t idle_routers = 0;
  std::int32_t active_vcs = 0;
  std::int32_t active_sources = 0;
  std::int64_t in_network = 0;
  std::int64_t queued = 0;

  /// Deliveries over the interval broken down by message class (index =
  /// class_index; sums to `delivered`). All-Bulk until a workload tags
  /// classes, so pre-workload streams stay byte-meaningful.
  std::array<std::int64_t, kNumMessageClasses> class_delivered{};
};

/// What an obs-enabled run leaves behind in its ExperimentResult.
struct ObsArtifacts {
  bool enabled = false;
  std::string metrics_path;  ///< Empty when no stream was written.
  std::uint64_t samples = 0;
  double peak_score = 0.0;
  std::int64_t warnings = 0;  ///< Rising-edge warning count.
  Cycle first_warning_cycle = -1;
  Cycle first_confirmation_cycle = -1;
  /// first_confirmation - first_warning; -1 unless both occurred.
  Cycle lead_cycles = -1;
};

class ObsCollector {
 public:
  /// `config.interval` < 1 throws; opens the NDJSON stream (if any) and
  /// writes its header record. The network fixes the counter shapes.
  ObsCollector(const ObsConfig& config, const Network& net);

  /// Contributes the delivery hook to the network observer surface being
  /// assembled. Non-owning; this collector must outlive the network's use of
  /// it (Simulation guarantees it).
  void contribute_hooks(NetworkHooks& hooks) noexcept { hooks.obs = this; }

  /// Per-cycle driver hook (call after the detector tick, so pressure stats
  /// are current); samples whenever the configured interval elapses.
  void tick(const Network& net, const DeadlockDetector& detector) {
    if (net.now() < next_sample_) return;
    sample_now(net, detector);
  }

  /// Forces a sample at the current cycle regardless of cadence — the same
  /// path tick() takes when the interval elapses (bench/test hook; finalize
  /// uses it for the residual partial interval).
  void sample(const Network& net, const DeadlockDetector& detector) {
    sample_now(net, detector);
  }

  /// Forces a final sample covering any residual partial interval, records
  /// the first knot-confirmation cycle, and appends the summary record
  /// ("final": true) to the stream.
  void finalize(const Network& net, const DeadlockDetector& detector);

  // --- hot-path hook (call site in Network is null-guarded) ----------------
  void on_delivery(Cycle latency, std::int32_t hops, MessageClass cls) noexcept {
    (void)hops;
    latency_hist_.record(latency);
    class_latency_hist_[class_index(cls)].record(latency);
  }

  // --- observers -----------------------------------------------------------
  [[nodiscard]] const ObsConfig& config() const noexcept { return config_; }
  [[nodiscard]] const ObsSample& last_sample() const noexcept { return last_; }
  [[nodiscard]] std::uint64_t samples_recorded() const noexcept {
    return samples_recorded_;
  }
  [[nodiscard]] const LogHistogram& latency_histogram() const noexcept {
    return latency_hist_;
  }
  [[nodiscard]] const LogHistogram& class_latency_histogram(
      MessageClass cls) const noexcept {
    return class_latency_hist_[class_index(cls)];
  }
  [[nodiscard]] const LogHistogram& stall_histogram() const noexcept {
    return stall_hist_;
  }
  [[nodiscard]] double peak_score() const noexcept { return peak_score_; }
  [[nodiscard]] std::int64_t warnings() const noexcept { return warning_count_; }
  [[nodiscard]] Cycle first_warning_cycle() const noexcept {
    return first_warning_cycle_;
  }
  /// First DeadlockRecord cycle seen by finalize(); -1 before finalize or
  /// when the run confirmed no knot.
  [[nodiscard]] Cycle first_confirmation_cycle() const noexcept {
    return first_confirmation_cycle_;
  }
  [[nodiscard]] Cycle lead_cycles() const noexcept {
    return (first_warning_cycle_ >= 0 && first_confirmation_cycle_ >= 0)
               ? first_confirmation_cycle_ - first_warning_cycle_
               : -1;
  }
  [[nodiscard]] std::int64_t vc_stall_hwm(VcId vc) const {
    return vc_stall_hwm_.at(static_cast<std::size_t>(vc));
  }
  [[nodiscard]] std::int64_t channel_stall_hwm(ChannelId ch) const {
    return channel_stall_hwm_.at(static_cast<std::size_t>(ch));
  }

  /// Fills the summary the manifest and ExperimentResult carry.
  [[nodiscard]] ObsArtifacts artifacts() const;

  /// Writes the cumulative summary fields (the "final" record's body) into
  /// an already-open JSON object — shared by the NDJSON summary record and
  /// the manifest's "metrics" block.
  void write_summary_fields(JsonWriter& json, const Network& net) const;

  /// Snapshot codec (section 10): every cumulative histogram, watermark,
  /// latch and cadence cursor, so a resumed run's stream continues
  /// bit-exactly where the checkpoint left off. Pre-v3 payloads carry no
  /// per-class histograms/cursors (restored empty/zeroed).
  void save_state(BinWriter& out) const;
  void restore_state(BinReader& in,
                     std::uint32_t version = kStateFormatVersion);

 private:
  void sample_now(const Network& net, const DeadlockDetector& detector);
  void emit_record(const ObsSample& s);
  [[nodiscard]] VcId dsu_find(VcId v) noexcept;
  void dsu_union(VcId a, VcId b) noexcept;

  ObsConfig config_;
  std::ofstream out_;
  bool stream_open_ = false;

  // Cumulative state (serialized).
  LogHistogram latency_hist_;
  std::array<LogHistogram, kNumMessageClasses> class_latency_hist_;
  std::array<std::int64_t, kNumMessageClasses> prev_class_delivered_{};
  LogHistogram stall_hist_;
  std::vector<std::int64_t> vc_stall_hwm_;
  std::vector<std::int64_t> channel_stall_hwm_;
  std::int64_t stall_hwm_ = 0;
  double peak_score_ = 0.0;
  bool warn_active_ = false;
  std::int64_t warning_count_ = 0;
  Cycle first_warning_cycle_ = -1;
  std::int64_t prev_delivered_ = 0;
  std::int64_t prev_recovered_ = 0;
  std::int64_t prev_request_arcs_ = 0;
  std::uint64_t samples_recorded_ = 0;
  Cycle next_sample_ = 0;
  PressureStats last_pressure_;  ///< Detector reading carried across resume.

  // Derived / per-run state (not serialized).
  Cycle first_confirmation_cycle_ = -1;
  ObsSample last_;
  bool finalized_ = false;

  // Census + component scratch, sized once from the network shape and reset
  // per sample with generation marks (no per-sample allocation or O(n) clear
  // beyond the touched entries).
  std::vector<VcId> dsu_parent_;
  std::vector<std::uint64_t> dsu_gen_;
  std::vector<std::int64_t> comp_count_;
  std::vector<std::uint64_t> comp_gen_;
  std::vector<std::uint64_t> node_gen_;
  std::vector<VcId> involved_;
  std::uint64_t gen_ = 0;
};

}  // namespace flexnet
