#include "routing/selection.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/network.hpp"

namespace flexnet {

namespace {

/// Paper default (Section 3): "a channel selection policy which favors
/// continuing routing in the current dimension over turning".
class PreferStraight final : public SelectionPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "PreferStraight";
  }

  void order(const Network& net, const Message& /*msg*/, VcId in_vc,
             std::vector<ChannelId>& channels, Pcg32& rng) const override {
    // Shuffle first so channels of equal preference are tried in random
    // order — without this, adaptive routing degenerates into near-static
    // dimension-ordered paths (the fixed candidate order always favors
    // dimension 0) and artificially correlates resource dependencies.
    for (std::size_t i = channels.size(); i > 1; --i) {
      const auto j = rng.bounded(static_cast<std::uint32_t>(i));
      std::swap(channels[i - 1], channels[j]);
    }
    const PhysChannel& in_ch = net.phys(net.vc(in_vc).channel);
    if (in_ch.kind != ChannelKind::Network) return;  // injection: no history
    std::stable_sort(channels.begin(), channels.end(),
                     [&](ChannelId a, ChannelId b) {
                       const int ka = net.phys(a).dim == in_ch.dim ? 0 : 1;
                       const int kb = net.phys(b).dim == in_ch.dim ? 0 : 1;
                       return ka < kb;
                     });
  }
};

class RandomSelection final : public SelectionPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "Random";
  }

  void order(const Network& /*net*/, const Message& /*msg*/, VcId /*in_vc*/,
             std::vector<ChannelId>& channels, Pcg32& rng) const override {
    for (std::size_t i = channels.size(); i > 1; --i) {
      const auto j = rng.bounded(static_cast<std::uint32_t>(i));
      std::swap(channels[i - 1], channels[j]);
    }
  }
};

class LowestIndexSelection final : public SelectionPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "LowestIndex";
  }

  void order(const Network& /*net*/, const Message& /*msg*/, VcId /*in_vc*/,
             std::vector<ChannelId>& channels, Pcg32& /*rng*/) const override {
    std::sort(channels.begin(), channels.end());
  }
};

}  // namespace

std::unique_ptr<SelectionPolicy> make_selection(SelectionKind kind) {
  switch (kind) {
    case SelectionKind::PreferStraight: return std::make_unique<PreferStraight>();
    case SelectionKind::Random: return std::make_unique<RandomSelection>();
    case SelectionKind::LowestIndex: return std::make_unique<LowestIndexSelection>();
  }
  throw std::invalid_argument("unknown selection kind");
}

}  // namespace flexnet
