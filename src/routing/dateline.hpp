// Dateline (Dally/Seitz-style) deadlock-AVOIDANCE routing for tori: DOR with
// two VC classes per direction. A message uses class-0 VCs until it crosses
// the wrap-around ("dateline") link of the dimension it is traversing, then
// class-1 VCs. The class split breaks the ring dependency cycle, so no knot
// can ever form — a baseline the paper's recovery-based approach is compared
// against.
#pragma once

#include "routing/routing.hpp"

namespace flexnet {

class DatelineDorRouting final : public RoutingAlgorithm {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "DatelineDOR";
  }

  void candidate_channels(const Network& net, const Message& msg, NodeId here,
                          VcId in_vc,
                          std::vector<ChannelId>& out) const override;

  [[nodiscard]] bool vc_allowed(const Network& net, const Message& msg,
                                ChannelId out_ch, int vc_index,
                                VcId in_vc) const override;

  [[nodiscard]] bool deadlock_free() const noexcept override { return true; }

  /// VC class (0 before the dateline, 1 after) a message needs on `out_ch`.
  /// Derivable without per-message state because DOR's per-dimension path is
  /// deterministic from (src, dst).
  static int dateline_class(const Network& net, const Message& msg,
                            ChannelId out_ch);
};

}  // namespace flexnet
