#include "routing/turnmodel.hpp"

#include <cassert>

#include "sim/network.hpp"
#include "topo/torus.hpp"

namespace flexnet {

void NegativeFirstRouting::candidate_channels(const Network& net,
                                              const Message& msg, NodeId here,
                                              VcId /*in_vc*/,
                                              std::vector<ChannelId>& out) const {
  const KAryNCube& topo = torus_topology(net.topology());
  assert(!topo.wrap() && "negative-first targets meshes");

  // Phase 1: while any dimension still needs a negative hop, only negative
  // hops are offered. Phase 2: the remaining (positive) hops, adaptively.
  bool needs_negative = false;
  for (int dim = 0; dim < topo.dimensions(); ++dim) {
    const DimRoute route = topo.minimal_dirs(here, msg.dst, dim);
    if (route.count > 0 && route.dirs[0] == -1) {
      needs_negative = true;
      const ChannelId ch = topo.out_channel(here, dim, -1);
      assert(ch != kInvalidChannel);
      out.push_back(ch);
    }
  }
  if (needs_negative) return;
  for (int dim = 0; dim < topo.dimensions(); ++dim) {
    const DimRoute route = topo.minimal_dirs(here, msg.dst, dim);
    if (route.count > 0) {
      const ChannelId ch = topo.out_channel(here, dim, route.dirs[0]);
      assert(ch != kInvalidChannel);
      out.push_back(ch);
    }
  }
  assert(!out.empty());
}

}  // namespace flexnet
