// Static dimension-order routing (DOR). Resolves dimensions lowest-first and
// supplies exactly one output channel; with unrestricted VC use this is the
// paper's deadlock-prone static algorithm (Fig. 1).
#pragma once

#include "routing/routing.hpp"

namespace flexnet {

class DorRouting final : public RoutingAlgorithm {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "DOR"; }

  void candidate_channels(const Network& net, const Message& msg, NodeId here,
                          VcId in_vc,
                          std::vector<ChannelId>& out) const override;

  /// The single (dim, dir) DOR takes from `here` toward `dst`; used by the
  /// dateline and Duato escape layers as well.
  static ChannelId dor_channel(const Network& net, NodeId here, NodeId dst);
};

}  // namespace flexnet
