#include "routing/dateline.hpp"

#include <cassert>

#include "routing/dor.hpp"
#include "sim/network.hpp"
#include "topo/torus.hpp"

namespace flexnet {

int DatelineDorRouting::dateline_class(const Network& net, const Message& msg,
                                       ChannelId out_ch) {
  const KAryNCube& topo = torus_topology(net.topology());
  const PhysChannel& pc = net.phys(out_ch);
  assert(pc.kind == ChannelKind::Network);
  const int dim = pc.dim;
  const NodeId here = pc.src;

  // DOR enters a dimension at the source's coordinate and travels one fixed
  // direction, so "crossed the wrap link already" is a pure function of the
  // source and current coordinates.
  const int c_src = topo.coordinates().coordinate(msg.src, dim);
  const int c_here = topo.coordinates().coordinate(here, dim);
  const bool crossed_already =
      pc.dir > 0 ? (c_here < c_src) : (c_here > c_src);
  return (crossed_already || pc.is_wrap) ? 1 : 0;
}

void DatelineDorRouting::candidate_channels(const Network& net,
                                            const Message& msg, NodeId here,
                                            VcId /*in_vc*/,
                                            std::vector<ChannelId>& out) const {
  const ChannelId ch = DorRouting::dor_channel(net, here, msg.dst);
  assert(ch != kInvalidChannel);
  out.push_back(ch);
}

bool DatelineDorRouting::vc_allowed(const Network& net, const Message& msg,
                                    ChannelId out_ch, int vc_index,
                                    VcId /*in_vc*/) const {
  return vc_index % 2 == dateline_class(net, msg, out_ch);
}

}  // namespace flexnet
