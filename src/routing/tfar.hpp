// Minimal true fully adaptive routing (TFAR): every channel that reduces the
// distance to the destination is a candidate, on any VC, with no ordering
// restriction — the paper's deadlock-prone adaptive algorithm. Optionally
// extended with bounded misrouting (non-minimal hops), one of the paper's
// stated future-work directions.
#pragma once

#include "routing/routing.hpp"

namespace flexnet {

class TfarRouting final : public RoutingAlgorithm {
 public:
  explicit TfarRouting(int max_misroutes = 0) : max_misroutes_(max_misroutes) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "TFAR"; }

  void candidate_channels(const Network& net, const Message& msg, NodeId here,
                          VcId in_vc,
                          std::vector<ChannelId>& out) const override;

 private:
  int max_misroutes_;
};

}  // namespace flexnet
