#include "routing/tfar.hpp"

#include <algorithm>
#include <cassert>

#include "sim/network.hpp"
#include "topo/torus.hpp"

namespace flexnet {

void TfarRouting::candidate_channels(const Network& net, const Message& msg,
                                     NodeId here, VcId in_vc,
                                     std::vector<ChannelId>& out) const {
  const KAryNCube& topo = torus_topology(net.topology());
  for (int dim = 0; dim < topo.dimensions(); ++dim) {
    const DimRoute route = topo.minimal_dirs(here, msg.dst, dim);
    for (int i = 0; i < route.count; ++i) {
      const ChannelId ch =
          topo.out_channel(here, dim, route.dirs[static_cast<std::size_t>(i)]);
      assert(ch != kInvalidChannel);
      if (!net.phys(ch).faulted) out.push_back(ch);
    }
  }

  ChannelId reverse = kInvalidChannel;
  const PhysChannel& in_ch = net.phys(net.vc(in_vc).channel);
  if (in_ch.kind == ChannelKind::Network) {
    reverse = topo.out_channel(here, in_ch.dim, -in_ch.dir);
  }

  // Non-minimal candidates: voluntarily when the misroute budget allows, and
  // forcibly when faults have removed every minimal channel at this router
  // (the fault injector guarantees the network stays strongly connected, so
  // some non-faulted escape always exists). Note that unconstrained
  // misrouting lets a message circle back onto a channel it already owns —
  // a self-deadlock the detector reports as a knot whose deadlock set is the
  // message itself; recovery resolves it like any other deadlock.
  // A candidate channel is useless if every one of its VCs is owned by this
  // very message (it wrapped a ring onto its own body); such a request can
  // never be granted, so a detour is forced just as with faults.
  const auto self_owned = [&](ChannelId ch) {
    const PhysChannel& pc = net.phys(ch);
    for (int v = 0; v < pc.num_vcs; ++v) {
      if (net.vc(pc.first_vc + v).owner != msg.id) return false;
    }
    return true;
  };
  const bool forced =
      out.empty() || std::all_of(out.begin(), out.end(), self_owned);
  if (!forced && msg.misroutes >= max_misroutes_) return;
  for (int dim = 0; dim < topo.dimensions(); ++dim) {
    for (const int dir : {+1, -1}) {
      const ChannelId ch = topo.out_channel(here, dim, dir);
      if (ch == kInvalidChannel || net.phys(ch).faulted) continue;
      if (!forced && ch == reverse) continue;
      if (std::find(out.begin(), out.end(), ch) != out.end()) continue;
      out.push_back(ch);
    }
  }
  assert(!out.empty());
}

}  // namespace flexnet
