// Channel-selection policies: how a router orders the candidate channels
// supplied by the routing relation before trying to allocate a VC. The paper
// uses a policy that "favors continuing routing in the current dimension over
// turning" (Section 3); Random and LowestIndex support the ablation bench.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "sim/config.hpp"
#include "sim/message.hpp"
#include "sim/types.hpp"
#include "util/rng.hpp"

namespace flexnet {

class Network;

class SelectionPolicy {
 public:
  virtual ~SelectionPolicy() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Reorders `channels` in place into preference order (most preferred
  /// first). `in_vc` identifies the VC holding the header.
  virtual void order(const Network& net, const Message& msg, VcId in_vc,
                     std::vector<ChannelId>& channels, Pcg32& rng) const = 0;
};

[[nodiscard]] std::unique_ptr<SelectionPolicy> make_selection(SelectionKind kind);

}  // namespace flexnet
