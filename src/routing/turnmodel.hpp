// Negative-first turn-model routing (Glass & Ni) for meshes: a message first
// makes every hop in a negative direction (fully adaptively among them), then
// every positive hop; no turn from a positive to a negative direction ever
// occurs, which provably breaks all dependency cycles on a mesh with a single
// VC. Deadlock-avoidance baseline for the mesh extension.
#pragma once

#include "routing/routing.hpp"

namespace flexnet {

class NegativeFirstRouting final : public RoutingAlgorithm {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "NegativeFirst";
  }

  void candidate_channels(const Network& net, const Message& msg, NodeId here,
                          VcId in_vc,
                          std::vector<ChannelId>& out) const override;

  [[nodiscard]] bool deadlock_free() const noexcept override { return true; }
};

}  // namespace flexnet
