#include "routing/table.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <numeric>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "sim/network.hpp"
#include "topo/topology.hpp"

namespace flexnet {
namespace {

constexpr std::string_view kTableMagic = "flexnet-rtable-v1";
constexpr int kInf = std::numeric_limits<int>::max() / 2;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("TableRouting: " + what);
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

TableRouting::TableRouting(Mode mode, std::string table_file)
    : mode_(mode), table_file_(std::move(table_file)) {}

std::string_view TableRouting::name() const noexcept {
  return mode_ == Mode::MinimalAdaptive ? "TableMin" : "TableUpDown";
}

void TableRouting::attach(const Network& net) {
  const Topology& topo = net.topology();
  if (topo.num_nodes() > kMaxTableNodes) {
    fail("topology " + topo.name() + " has " +
         std::to_string(topo.num_nodes()) + " nodes; table routing caps at " +
         std::to_string(kMaxTableNodes));
  }
  if (table_file_.empty()) {
    build(topo);
  } else {
    load(net);
  }
  validate_complete();
}

void TableRouting::build(const Topology& topo) {
  nodes_ = topo.num_nodes();
  states_ = mode_ == Mode::UpDown ? 2 : 1;
  topo_hash_ = topo.content_hash();
  down_.assign(topo.channels().size(), 0);
  std::vector<std::vector<ChannelId>> slots(
      static_cast<std::size_t>(nodes_) * static_cast<std::size_t>(states_) *
      static_cast<std::size_t>(nodes_));
  if (mode_ == Mode::MinimalAdaptive) {
    build_minimal(topo, slots);
  } else {
    build_updown(topo, slots);
  }
  pack(slots);
}

void TableRouting::build_minimal(
    const Topology& topo, std::vector<std::vector<ChannelId>>& slots) const {
  // out_channels are ascending, so each slot lists channels in id order —
  // the same canonical order the torus algorithms produce.
  for (NodeId v = 0; v < nodes_; ++v) {
    for (const ChannelId ch_id : topo.out_channels(v)) {
      const ChannelDesc& ch = topo.channel(ch_id);
      for (NodeId dst = 0; dst < nodes_; ++dst) {
        if (dst == v) continue;
        if (topo.hop_is_minimal(ch, dst)) {
          slots[slot(v, 0, dst)].push_back(ch_id);
        }
      }
    }
  }
}

void TableRouting::build_updown(const Topology& topo,
                                std::vector<std::vector<ChannelId>>& slots) {
  const auto n = static_cast<std::size_t>(nodes_);

  // BFS levels from root 0 over the undirected view of the links.
  std::vector<std::vector<NodeId>> und(n);
  for (const ChannelDesc& ch : topo.channels()) {
    und[static_cast<std::size_t>(ch.src)].push_back(ch.dst);
    und[static_cast<std::size_t>(ch.dst)].push_back(ch.src);
  }
  std::vector<int> level(n, kInf);
  std::vector<NodeId> bfs{0};
  level[0] = 0;
  for (std::size_t head = 0; head < bfs.size(); ++head) {
    const NodeId v = bfs[head];
    for (const NodeId w : und[static_cast<std::size_t>(v)]) {
      if (level[static_cast<std::size_t>(w)] != kInf) continue;
      level[static_cast<std::size_t>(w)] = level[static_cast<std::size_t>(v)] + 1;
      bfs.push_back(w);
    }
  }
  if (bfs.size() != n) fail("topology is not connected");  // defense in depth

  // Orient every channel: "up" moves to the lexicographically smaller
  // (level, id) endpoint, i.e. strictly toward the root.
  auto is_up = [&](const ChannelDesc& ch) {
    const int ls = level[static_cast<std::size_t>(ch.src)];
    const int ld = level[static_cast<std::size_t>(ch.dst)];
    return ld < ls || (ld == ls && ch.dst < ch.src);
  };
  std::vector<std::vector<ChannelId>> in_down(n);  // down channels, by head
  for (const ChannelDesc& ch : topo.channels()) {
    if (is_up(ch)) continue;
    down_[static_cast<std::size_t>(ch.id)] = 1;
    in_down[static_cast<std::size_t>(ch.dst)].push_back(ch.id);
  }

  // Nodes ascending by (level, id): an up channel's head strictly precedes
  // its tail, so a single pass in this order resolves the d0 recurrence.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    const int la = level[static_cast<std::size_t>(a)];
    const int lb = level[static_cast<std::size_t>(b)];
    return la < lb || (la == lb && a < b);
  });

  std::vector<int> d1(n), d0(n);
  for (NodeId dst = 0; dst < nodes_; ++dst) {
    // d1[v]: shortest down-only path v -> dst (backward BFS over down links).
    std::fill(d1.begin(), d1.end(), kInf);
    d1[static_cast<std::size_t>(dst)] = 0;
    std::vector<NodeId> queue{dst};
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId v = queue[head];
      for (const ChannelId ch_id : in_down[static_cast<std::size_t>(v)]) {
        const NodeId u = topo.channel(ch_id).src;
        if (d1[static_cast<std::size_t>(u)] != kInf) continue;
        d1[static_cast<std::size_t>(u)] = d1[static_cast<std::size_t>(v)] + 1;
        queue.push_back(u);
      }
    }
    // d0[v]: shortest legal up*/down* path v -> dst.
    for (const NodeId v : order) {
      int best = d1[static_cast<std::size_t>(v)];
      for (const ChannelId ch_id : topo.out_channels(v)) {
        if (down_[static_cast<std::size_t>(ch_id)] != 0) continue;
        const int via = d0[static_cast<std::size_t>(topo.channel(ch_id).dst)];
        if (via + 1 < best) best = via + 1;
      }
      d0[static_cast<std::size_t>(v)] = best;
    }

    for (NodeId v = 0; v < nodes_; ++v) {
      if (v == dst) continue;
      if (d0[static_cast<std::size_t>(v)] >= kInf) {
        fail("up*/down* cannot route from node " + std::to_string(v) +
             " to node " + std::to_string(dst) +
             " (needs an up path toward node 0; check link directions)");
      }
      for (const ChannelId ch_id : topo.out_channels(v)) {
        const ChannelDesc& ch = topo.channel(ch_id);
        if (down_[static_cast<std::size_t>(ch_id)] == 0) {
          if (d0[static_cast<std::size_t>(ch.dst)] + 1 ==
              d0[static_cast<std::size_t>(v)]) {
            slots[slot(v, 0, dst)].push_back(ch_id);
          }
        } else {
          if (d1[static_cast<std::size_t>(ch.dst)] + 1 ==
              d0[static_cast<std::size_t>(v)]) {
            slots[slot(v, 0, dst)].push_back(ch_id);
          }
          if (d1[static_cast<std::size_t>(v)] < kInf &&
              d1[static_cast<std::size_t>(ch.dst)] + 1 ==
                  d1[static_cast<std::size_t>(v)]) {
            slots[slot(v, 1, dst)].push_back(ch_id);
          }
        }
      }
    }
  }
}

void TableRouting::pack(const std::vector<std::vector<ChannelId>>& slots) {
  offsets_.assign(slots.size() + 1, 0);
  std::size_t total = 0;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    offsets_[i] = static_cast<std::uint32_t>(total);
    total += slots[i].size();
  }
  offsets_[slots.size()] = static_cast<std::uint32_t>(total);
  entries_.clear();
  entries_.reserve(total);
  for (const auto& s : slots) entries_.insert(entries_.end(), s.begin(), s.end());
}

void TableRouting::validate_complete() const {
  for (NodeId v = 0; v < nodes_; ++v) {
    for (NodeId dst = 0; dst < nodes_; ++dst) {
      if (v == dst) continue;
      const std::size_t s = slot(v, 0, dst);
      if (offsets_[s] == offsets_[s + 1]) {
        fail("no route from node " + std::to_string(v) + " to node " +
             std::to_string(dst));
      }
    }
  }
}

void TableRouting::candidate_channels(const Network& net, const Message& msg,
                                      NodeId here, VcId in_vc,
                                      std::vector<ChannelId>& out) const {
  // A header's routing state is carried by the channel it arrived on:
  // injection VCs (and every hop before the first down hop) keep state 0;
  // arriving on a down channel commits the message to down-only (state 1).
  int state = 0;
  if (states_ > 1) {
    const ChannelId in_ch = net.vc(in_vc).channel;
    if (static_cast<std::size_t>(in_ch) < net.num_network_channels() &&
        down_[static_cast<std::size_t>(in_ch)] != 0) {
      state = 1;
    }
  }
  const std::size_t s = slot(here, state, msg.dst);
  for (std::uint32_t i = offsets_[s]; i < offsets_[s + 1]; ++i) {
    out.push_back(entries_[i]);
  }
}

void TableRouting::dump(std::ostream& out) const {
  out << kTableMagic << '\n';
  out << "mode " << name() << '\n';
  out << "topology " << hex64(topo_hash_) << '\n';
  out << "nodes " << nodes_ << '\n';
  out << "states " << states_ << '\n';
  for (std::size_t ch = 0; ch < down_.size(); ++ch) {
    if (down_[ch] != 0) out << "down " << ch << '\n';
  }
  for (NodeId v = 0; v < nodes_; ++v) {
    for (int st = 0; st < states_; ++st) {
      for (NodeId dst = 0; dst < nodes_; ++dst) {
        const std::size_t s = slot(v, st, dst);
        if (offsets_[s] == offsets_[s + 1]) continue;
        out << "route " << v << ' ' << st << ' ' << dst;
        for (std::uint32_t i = offsets_[s]; i < offsets_[s + 1]; ++i) {
          out << ' ' << entries_[i];
        }
        out << '\n';
      }
    }
  }
}

void TableRouting::load(const Network& net) {
  std::ifstream in(table_file_);
  if (!in) fail("cannot open route table file: " + table_file_);

  const Topology& topo = net.topology();
  const auto num_channels = topo.channels().size();
  nodes_ = topo.num_nodes();
  states_ = mode_ == Mode::UpDown ? 2 : 1;
  topo_hash_ = topo.content_hash();
  down_.assign(num_channels, 0);
  std::vector<std::vector<ChannelId>> slots(
      static_cast<std::size_t>(nodes_) * static_cast<std::size_t>(states_) *
      static_cast<std::size_t>(nodes_));

  bool seen_magic = false, seen_mode = false, seen_hash = false,
       seen_nodes = false, seen_states = false;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    auto err = [&](const std::string& what) -> void {
      fail(table_file_ + ":" + std::to_string(lineno) + ": " + what);
    };
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!seen_magic) {
      if (line != kTableMagic) err("missing flexnet-rtable-v1 magic");
      seen_magic = true;
      continue;
    }
    const std::size_t hash_pos = line.find('#');
    if (hash_pos != std::string::npos) line.resize(hash_pos);
    std::istringstream ss(line);
    std::string key;
    if (!(ss >> key)) continue;  // blank / comment-only line
    std::string extra;
    if (key == "mode") {
      std::string m;
      if (!(ss >> m) || (ss >> extra)) err("expected: mode <name>");
      if (m != name()) {
        err("table mode " + m + " does not match routing " +
            std::string(name()));
      }
      seen_mode = true;
    } else if (key == "topology") {
      std::string h;
      if (!(ss >> h) || (ss >> extra)) err("expected: topology <hex hash>");
      if (h != hex64(topo_hash_)) {
        err("table was built for a different topology (hash " + h +
            ", network has " + hex64(topo_hash_) + ")");
      }
      seen_hash = true;
    } else if (key == "nodes") {
      long n = -1;
      if (!(ss >> n) || (ss >> extra)) err("expected: nodes <count>");
      if (n != nodes_) {
        err("table covers " + std::to_string(n) + " nodes, network has " +
            std::to_string(nodes_));
      }
      seen_nodes = true;
    } else if (key == "states") {
      int s = -1;
      if (!(ss >> s) || (ss >> extra)) err("expected: states <count>");
      if (s != states_) err("state count does not match the routing mode");
      seen_states = true;
    } else if (key == "down") {
      if (states_ < 2) err("down lines are only valid for TableUpDown");
      long ch = -1;
      if (!(ss >> ch) || (ss >> extra)) err("expected: down <channel>");
      if (ch < 0 || static_cast<std::size_t>(ch) >= num_channels) {
        err("channel id out of range");
      }
      down_[static_cast<std::size_t>(ch)] = 1;
    } else if (key == "route") {
      long v = -1, st = -1, dst = -1;
      if (!(ss >> v >> st >> dst)) {
        err("expected: route <node> <state> <dst> <channel>...");
      }
      if (v < 0 || v >= nodes_ || dst < 0 || dst >= nodes_) {
        err("node id out of range");
      }
      if (st < 0 || st >= states_) err("state out of range");
      if (v == dst) err("route to self");
      auto& entry = slots[slot(static_cast<NodeId>(v), static_cast<int>(st),
                               static_cast<NodeId>(dst))];
      if (!entry.empty()) err("duplicate route entry");
      long ch = -1;
      while (ss >> ch) {
        if (ch < 0 || static_cast<std::size_t>(ch) >= num_channels) {
          err("channel id out of range");
        }
        if (topo.channel(static_cast<ChannelId>(ch)).src != v) {
          err("channel " + std::to_string(ch) + " does not leave node " +
              std::to_string(v));
        }
        entry.push_back(static_cast<ChannelId>(ch));
      }
      if (entry.empty()) err("route line lists no channels");
    } else {
      err("unknown directive '" + key + "'");
    }
  }
  if (!seen_magic) fail(table_file_ + ": empty file");
  if (!seen_mode || !seen_hash || !seen_nodes || !seen_states) {
    fail(table_file_ + ": missing mode/topology/nodes/states header");
  }
  pack(slots);
}

}  // namespace flexnet
