#include "routing/dor.hpp"

#include <cassert>

#include "sim/network.hpp"
#include "topo/torus.hpp"

namespace flexnet {

ChannelId DorRouting::dor_channel(const Network& net, NodeId here, NodeId dst) {
  const KAryNCube& topo = torus_topology(net.topology());
  for (int dim = 0; dim < topo.dimensions(); ++dim) {
    if (topo.dim_distance(here, dst, dim) == 0) continue;
    const DimRoute route = topo.minimal_dirs(here, dst, dim);
    assert(route.count >= 1);
    // minimal_dirs lists +1 first on a tie, making DOR fully deterministic.
    const ChannelId ch = topo.out_channel(here, dim, route.dirs[0]);
    assert(ch != kInvalidChannel);
    return ch;
  }
  return kInvalidChannel;  // already at destination
}

void DorRouting::candidate_channels(const Network& net, const Message& msg,
                                    NodeId here, VcId /*in_vc*/,
                                    std::vector<ChannelId>& out) const {
  const ChannelId ch = dor_channel(net, here, msg.dst);
  assert(ch != kInvalidChannel);
  out.push_back(ch);
}

}  // namespace flexnet
