// Routing relation interface.
//
// A routing algorithm answers: for a message whose header sits at router
// `here` (having arrived through `in_vc`), which output channels may it take,
// and which VC indices on those channels may it use. The simulator turns the
// answer into the candidate VC set that drives both allocation and the
// dashed (request) arcs of the channel wait-for graph.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "sim/config.hpp"
#include "sim/message.hpp"
#include "sim/types.hpp"

namespace flexnet {

class Network;

class RoutingAlgorithm {
 public:
  virtual ~RoutingAlgorithm() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Called once, at the end of Network construction, before any routing
  /// query. Table-based algorithms build (or load) their next-channel tables
  /// here; the torus algorithms need no setup and keep the default no-op.
  virtual void attach(const Network& net);

  /// Appends the permitted output channels for `msg` at router `here`.
  /// `in_vc` is the VC holding the header (an injection VC for the first
  /// hop). Must never produce an empty set when here != msg.dst.
  virtual void candidate_channels(const Network& net, const Message& msg,
                                  NodeId here, VcId in_vc,
                                  std::vector<ChannelId>& out) const = 0;

  /// Whether VC `vc_index` of `out_ch` may be used for this hop. Default:
  /// unrestricted (the paper's DOR/TFAR); avoidance algorithms restrict.
  [[nodiscard]] virtual bool vc_allowed(const Network& net, const Message& msg,
                                        ChannelId out_ch, int vc_index,
                                        VcId in_vc) const;

  /// When true the allocator tries high VC indices first (Duato's protocol
  /// keeps low indices as escape channels of last resort).
  [[nodiscard]] virtual bool prefer_high_vc_indices() const noexcept {
    return false;
  }

  /// True if the algorithm enforces deadlock freedom (avoidance); false for
  /// the unrestricted algorithms the paper studies under recovery.
  [[nodiscard]] virtual bool deadlock_free() const noexcept { return false; }
};

/// Builds the algorithm selected by `config.routing`.
[[nodiscard]] std::unique_ptr<RoutingAlgorithm> make_routing(const SimConfig& config);

}  // namespace flexnet
