// Duato's-protocol-style deadlock-AVOIDANCE adaptive routing: VC indices >= 2
// are minimal fully adaptive; indices 0 and 1 form a dateline-DOR escape
// pair. Cycles may appear among the adaptive VCs, but the connected,
// cycle-free escape sub-function guarantees an exit — exactly the "escape
// resource" the paper's Fig. 4 discussion describes. Requires >= 3 VCs.
#pragma once

#include "routing/routing.hpp"

namespace flexnet {

class DuatoTfarRouting final : public RoutingAlgorithm {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "DuatoTFAR";
  }

  void candidate_channels(const Network& net, const Message& msg, NodeId here,
                          VcId in_vc,
                          std::vector<ChannelId>& out) const override;

  [[nodiscard]] bool vc_allowed(const Network& net, const Message& msg,
                                ChannelId out_ch, int vc_index,
                                VcId in_vc) const override;

  /// Adaptive VCs are tried before the escape pair.
  [[nodiscard]] bool prefer_high_vc_indices() const noexcept override {
    return true;
  }

  [[nodiscard]] bool deadlock_free() const noexcept override { return true; }
};

}  // namespace flexnet
