// Table-based routing: per-(router, state, destination) next-channel tables
// precomputed from any Topology, so irregular and file-defined networks route
// without topology-specific code.
//
// Two table builders share the machinery:
//   MinimalAdaptive ("TableMin") — every distance-decreasing output channel
//     is a candidate. Fully adaptive and minimal, with unrestricted VC use:
//     the general-topology analogue of the paper's deadlock-prone subjects.
//   UpDown ("TableUpDown") — up*/down* routing on a BFS spanning tree rooted
//     at node 0. Channels are oriented up (toward the root, lexicographically
//     smaller (level, id)) or down; a legal path is zero or more up hops
//     followed by zero or more down hops. Since every up→up dependency moves
//     strictly toward the root and down→up transitions are forbidden, the
//     channel dependency graph is acyclic, so the relation is deadlock-free
//     on any topology regardless of adaptivity (see DESIGN.md §3f).
//
// Tables are built eagerly in attach() (end of Network construction) or
// loaded from a flexnet-rtable-v1 text file whose topology hash must match.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "routing/routing.hpp"

namespace flexnet {

class Topology;

/// Table routing materializes O(nodes^2) entries; beyond this it would stop
/// being "a few MB of tables" and a different representation is needed.
inline constexpr NodeId kMaxTableNodes = 1024;

class TableRouting final : public RoutingAlgorithm {
 public:
  enum class Mode : std::uint8_t {
    MinimalAdaptive,  ///< All minimal channels; deadlock-prone (subject).
    UpDown,           ///< up*/down* over a BFS tree; deadlock-free.
  };

  /// `table_file` empty = build tables from the network's topology in
  /// attach(); otherwise load (and validate) that flexnet-rtable-v1 file.
  explicit TableRouting(Mode mode, std::string table_file = {});

  [[nodiscard]] std::string_view name() const noexcept override;
  void attach(const Network& net) override;
  void candidate_channels(const Network& net, const Message& msg, NodeId here,
                          VcId in_vc,
                          std::vector<ChannelId>& out) const override;
  [[nodiscard]] bool deadlock_free() const noexcept override {
    return mode_ == Mode::UpDown;
  }

  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] bool attached() const noexcept { return nodes_ > 0; }

  /// Writes the tables as flexnet-rtable-v1 text (the format attach() loads).
  void dump(std::ostream& out) const;

 private:
  [[nodiscard]] std::size_t slot(NodeId node, int state, NodeId dst) const {
    return (static_cast<std::size_t>(node) * static_cast<std::size_t>(states_) +
            static_cast<std::size_t>(state)) *
               static_cast<std::size_t>(nodes_) +
           static_cast<std::size_t>(dst);
  }
  void build(const Topology& topo);
  void build_minimal(const Topology& topo,
                     std::vector<std::vector<ChannelId>>& slots) const;
  void build_updown(const Topology& topo,
                    std::vector<std::vector<ChannelId>>& slots);
  void load(const Network& net);
  void pack(const std::vector<std::vector<ChannelId>>& slots);
  /// Every (node, state 0, dst != node) slot must be non-empty, or routing
  /// would strand a header; throws std::runtime_error naming the hole.
  void validate_complete() const;

  Mode mode_;
  std::string table_file_;

  NodeId nodes_ = 0;
  int states_ = 1;  ///< 1 (MinimalAdaptive) or 2 (UpDown: 0 = may climb, 1 = down-only).
  std::uint64_t topo_hash_ = 0;
  std::vector<std::uint32_t> offsets_;  ///< CSR over slots; size slots+1.
  std::vector<ChannelId> entries_;
  std::vector<std::uint8_t> down_;  ///< Per network channel: 1 = down (UpDown).
};

}  // namespace flexnet
