#include "routing/duato.hpp"

#include <cassert>

#include "routing/dateline.hpp"
#include "routing/dor.hpp"
#include "sim/network.hpp"
#include "topo/torus.hpp"

namespace flexnet {

void DuatoTfarRouting::candidate_channels(const Network& net,
                                          const Message& msg, NodeId here,
                                          VcId /*in_vc*/,
                                          std::vector<ChannelId>& out) const {
  // All minimal channels; the DOR channel (which carries the escape VCs) is
  // always among them, so the escape path is reachable from every state.
  const KAryNCube& topo = torus_topology(net.topology());
  for (int dim = 0; dim < topo.dimensions(); ++dim) {
    const DimRoute route = topo.minimal_dirs(here, msg.dst, dim);
    for (int i = 0; i < route.count; ++i) {
      const ChannelId ch =
          topo.out_channel(here, dim, route.dirs[static_cast<std::size_t>(i)]);
      assert(ch != kInvalidChannel);
      out.push_back(ch);
    }
  }
  assert(!out.empty());
}

bool DuatoTfarRouting::vc_allowed(const Network& net, const Message& msg,
                                  ChannelId out_ch, int vc_index,
                                  VcId /*in_vc*/) const {
  if (vc_index >= 2) return true;  // adaptive class, any minimal channel
  const NodeId here = net.phys(out_ch).src;
  if (out_ch != DorRouting::dor_channel(net, here, msg.dst)) {
    return false;  // escape VCs only along the DOR path
  }
  return vc_index == DatelineDorRouting::dateline_class(net, msg, out_ch);
}

}  // namespace flexnet
