#include "routing/routing.hpp"

#include <stdexcept>

#include "routing/dateline.hpp"
#include "routing/dor.hpp"
#include "routing/duato.hpp"
#include "routing/table.hpp"
#include "routing/tfar.hpp"
#include "routing/turnmodel.hpp"

namespace flexnet {

void RoutingAlgorithm::attach(const Network& /*net*/) {}

bool RoutingAlgorithm::vc_allowed(const Network& /*net*/,
                                  const Message& /*msg*/,
                                  ChannelId /*out_ch*/, int /*vc_index*/,
                                  VcId /*in_vc*/) const {
  return true;  // the paper's unrestricted VC use
}

std::unique_ptr<RoutingAlgorithm> make_routing(const SimConfig& config) {
  switch (config.routing) {
    case RoutingKind::DOR:
      return std::make_unique<DorRouting>();
    case RoutingKind::TFAR:
      return std::make_unique<TfarRouting>(config.max_misroutes);
    case RoutingKind::DatelineDOR:
      return std::make_unique<DatelineDorRouting>();
    case RoutingKind::DuatoTFAR:
      return std::make_unique<DuatoTfarRouting>();
    case RoutingKind::NegativeFirst:
      return std::make_unique<NegativeFirstRouting>();
    case RoutingKind::TableMin:
      return std::make_unique<TableRouting>(TableRouting::Mode::MinimalAdaptive,
                                            config.route_table_file);
    case RoutingKind::TableUpDown:
      return std::make_unique<TableRouting>(TableRouting::Mode::UpDown,
                                            config.route_table_file);
  }
  throw std::invalid_argument("unknown routing kind");
}

}  // namespace flexnet
