// Allocation-free active-set scheduler for the event-driven simulation core.
//
// An ActiveSet is a fixed-capacity set of component ids (nodes or physical
// channels) backed by a two-level bitmap: level 0 holds one bit per id,
// level 1 summarizes each group of 64 level-0 words so a sparse scan skips
// 4096 ids per summary-word probe. insert/erase/contains are O(1); a full
// ascending scan costs O(active + capacity/4096).
//
// Scan semantics are *live*, chosen to make the event-driven sweep provably
// equivalent to the dense one (see DESIGN.md §3h):
//
//   for (std::int32_t id = set.first(); id != -1; id = set.next_after(id))
//
//   - erasing the current id (or any other) mid-scan is allowed;
//   - an id inserted *ahead* of the cursor is visited later in the same
//     sweep (matching the dense loop, which would reach it in id order);
//   - an id inserted *behind* the cursor is not revisited this sweep but
//     stays in the set for the next one (matching the dense loop, whose
//     single visit to that id happened before the enabling event and was a
//     no-op).
//
// Wakeups are idempotent and always safe: the sets are maintained as
// supersets of the components with work, and each visit re-checks the real
// condition and self-erases when it no longer holds.
#pragma once

#include <cstdint>
#include <vector>

namespace flexnet {

class ActiveSet {
 public:
  ActiveSet() = default;
  explicit ActiveSet(std::size_t capacity) { reset(capacity); }

  /// Re-sizes to `capacity` ids and clears. The only allocating operation.
  void reset(std::size_t capacity);

  /// Removes every id but keeps the capacity.
  void clear();

  void insert(std::int32_t id) noexcept {
    const auto word = static_cast<std::size_t>(id) >> 6;
    const std::uint64_t bit = 1ull << (static_cast<std::size_t>(id) & 63);
    if ((level0_[word] & bit) != 0) return;
    level0_[word] |= bit;
    level1_[word >> 6] |= 1ull << (word & 63);
    ++count_;
  }

  void erase(std::int32_t id) noexcept {
    const auto word = static_cast<std::size_t>(id) >> 6;
    const std::uint64_t bit = 1ull << (static_cast<std::size_t>(id) & 63);
    if ((level0_[word] & bit) == 0) return;
    level0_[word] &= ~bit;
    if (level0_[word] == 0) level1_[word >> 6] &= ~(1ull << (word & 63));
    --count_;
  }

  [[nodiscard]] bool contains(std::int32_t id) const noexcept {
    const auto word = static_cast<std::size_t>(id) >> 6;
    return (level0_[word] >> (static_cast<std::size_t>(id) & 63)) & 1u;
  }

  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Smallest id in the set, or -1 when empty.
  [[nodiscard]] std::int32_t first() const noexcept {
    return count_ == 0 ? -1 : scan_from(0);
  }

  /// Smallest id strictly greater than `id`, or -1. `id` need not be in the
  /// set (it may have been erased by the current visit).
  [[nodiscard]] std::int32_t next_after(std::int32_t id) const noexcept;

 private:
  /// Smallest set id >= `from` (callers guarantee one exists past the
  /// in-word fast path, so the word walk may return -1 only at the end).
  [[nodiscard]] std::int32_t scan_from(std::size_t from) const noexcept;

  std::vector<std::uint64_t> level0_;
  std::vector<std::uint64_t> level1_;
  std::size_t capacity_ = 0;
  std::size_t count_ = 0;
};

}  // namespace flexnet
