// The flit-level network simulator (the paper's "FlexSim" substrate).
//
// Each cycle advances three phases:
//   1. deliver  — reception interfaces drain ejection-VC buffers (1 flit per
//                 reception channel per cycle); tails complete messages.
//   2. route    — queued messages contend for injection VCs; every unrouted
//                 header retries VC allocation against the routing relation's
//                 candidate set. Failures mark the message blocked and record
//                 its request set (the CWG's dashed arcs).
//   3. transmit — every physical channel moves at most one flit from the
//                 feeding VC into the owned downstream VC (or from the source
//                 queue into an injection VC). A tail flit leaving a buffer
//                 releases that VC in acquisition order (wormhole).
//
// Virtual cut-through behavior emerges when buffer_depth >= message_length.
// The class performs no deadlock handling itself: detection and recovery
// live in src/core and operate through the public observers plus
// remove_message().
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "sim/channel.hpp"
#include "sim/config.hpp"
#include "sim/message.hpp"
#include "sim/types.hpp"
#include "topo/topology.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace flexnet {

class BinReader;
class BinWriter;
class ObsCollector;
class RoutingAlgorithm;
class SelectionPolicy;
class SpatialHeatmap;
class PhaseProfiler;

class Network {
 public:
  /// Monotonic event counters; windowed metrics diff snapshots of these.
  struct Counters {
    std::int64_t generated = 0;
    std::int64_t injected = 0;          ///< Messages whose head left the source.
    std::int64_t delivered = 0;         ///< Completed via the network.
    std::int64_t recovered = 0;         ///< Completed via deadlock recovery.
    std::int64_t flits_delivered = 0;
    std::int64_t delivered_latency_sum = 0;
    std::int64_t delivered_hops_sum = 0;
  };

  /// Builds the topology described by `config` (make_topology).
  Network(const SimConfig& config, std::unique_ptr<RoutingAlgorithm> routing,
          std::unique_ptr<SelectionPolicy> selection);
  /// Uses a pre-built topology (snapshot restore rebuilds file-defined
  /// topologies from the embedded section rather than the filesystem).
  Network(const SimConfig& config, std::shared_ptr<const Topology> topology,
          std::unique_ptr<RoutingAlgorithm> routing,
          std::unique_ptr<SelectionPolicy> selection);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Advances the simulation by one cycle.
  void step();

  /// Creates a message in `src`'s source queue. Returns its id.
  MessageId enqueue_message(NodeId src, NodeId dst, std::int32_t length);

  /// Deadlock recovery: removes an in-flight message flit-by-flit, freeing
  /// every VC it owns (synthesizes Disha-style recovery delivery).
  void remove_message(MessageId id);

  // --- observers -----------------------------------------------------------
  [[nodiscard]] Cycle now() const noexcept { return now_; }
  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }
  [[nodiscard]] const Topology& topology() const noexcept { return *topo_; }
  /// Shared handle, for components that outlive or sibling the network
  /// (snapshot capture, tools).
  [[nodiscard]] const std::shared_ptr<const Topology>& topology_ptr()
      const noexcept {
    return topo_;
  }
  [[nodiscard]] const RoutingAlgorithm& routing_algorithm() const noexcept {
    return *routing_;
  }

  [[nodiscard]] std::size_t num_vcs() const noexcept { return vcs_.size(); }
  [[nodiscard]] const VcState& vc(VcId id) const {
    return vcs_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::size_t num_channels() const noexcept { return phys_.size(); }
  [[nodiscard]] const PhysChannel& phys(ChannelId id) const {
    return phys_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] ChannelId injection_channel(NodeId node) const noexcept;
  [[nodiscard]] ChannelId ejection_channel(NodeId node) const noexcept;
  /// Number of network (router-to-router) channels; their ids are [0, count).
  [[nodiscard]] std::size_t num_network_channels() const noexcept {
    return topo_->channels().size();
  }

  [[nodiscard]] const Message& message(MessageId id) const {
    return messages_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::size_t num_messages() const noexcept {
    return messages_.size();
  }
  /// Messages currently in the network (own at least one VC).
  [[nodiscard]] const std::vector<MessageId>& active_messages() const noexcept {
    return active_;
  }

  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }
  /// In-network messages whose header allocation failed this cycle.
  [[nodiscard]] int blocked_message_count() const noexcept { return blocked_count_; }
  /// Monotonic counter bumped on every event that changes the channel
  /// wait-for graph: VC acquisition/release (solid arcs), block/unblock and
  /// request-set changes (dashed arcs), message completion/removal, and
  /// snapshot restore. Equal epochs across two instants guarantee an
  /// identical CWG, which lets the deadlock detector skip or reuse a pass.
  [[nodiscard]] std::uint64_t arc_epoch() const noexcept { return arc_epoch_; }
  /// Messages still waiting in source queues.
  [[nodiscard]] std::int64_t queued_message_count() const noexcept;
  /// Messages waiting in one node's source queue.
  [[nodiscard]] std::size_t source_queue_length(NodeId node) const noexcept {
    return source_queues_[static_cast<std::size_t>(node)].size();
  }

  /// Channels disabled by fault injection.
  [[nodiscard]] int faulted_channel_count() const noexcept { return faulted_; }

  /// Attaches (or detaches, with nullptr) an event tracer. Non-owning; the
  /// tracer must outlive its use. With no tracer the hot paths pay a single
  /// predictable branch per instrumentation point.
  void set_tracer(Tracer* tracer) noexcept { tracer_ = tracer; }
  [[nodiscard]] Tracer* tracer() const noexcept { return tracer_; }

  /// Attaches (or detaches, with nullptr) the telemetry heatmap probe.
  /// Non-owning, same null-guard discipline as the tracer: traversal and
  /// injection-stall counters are bumped inline on the hot path.
  void set_heatmap(SpatialHeatmap* heatmap) noexcept { heatmap_ = heatmap; }
  [[nodiscard]] SpatialHeatmap* heatmap() const noexcept { return heatmap_; }

  /// Attaches (or detaches, with nullptr) the phase profiler; when attached,
  /// step() wall-clocks each of its three phases.
  void set_profiler(PhaseProfiler* profiler) noexcept { profiler_ = profiler; }
  [[nodiscard]] PhaseProfiler* profiler() const noexcept { return profiler_; }

  /// Attaches (or detaches, with nullptr) the observability collector; its
  /// delivery hook feeds the streaming latency histogram. Same non-owning,
  /// null-guarded discipline as the tracer.
  void set_obs(ObsCollector* obs) noexcept { obs_ = obs; }
  [[nodiscard]] ObsCollector* obs() const noexcept { return obs_; }

  /// Peak normalized injection bandwidth: flits/node/cycle at which average
  /// network-channel utilization reaches 1 (paper Section 3 normalization).
  [[nodiscard]] double capacity_flits_per_node(double avg_distance) const noexcept;

  /// True when a blocked message is fully compacted: no flit of it can move
  /// now, and none ever will unless its header is granted a new VC. A knot
  /// whose deadlock set is entirely immobile is a *true* deadlock; a knot
  /// with residual buffer slack can still dissolve on its own (the owner of
  /// a requested VC may release it by tail compaction even though its own
  /// header stays blocked).
  [[nodiscard]] bool message_immobile(MessageId id) const;

  /// Validates every structural invariant (VC exclusivity, chain linkage,
  /// flit conservation). Throws std::logic_error on violation. O(state size);
  /// intended for tests.
  void check_invariants() const;

  // --- snapshot hooks ------------------------------------------------------
  /// Serializes every bit of dynamic state that influences future evolution:
  /// cycle counter, RNG position, counters, per-channel arbitration cursors
  /// and fault flags, every VC (ownership, routing linkage, buffered flits),
  /// the full message table, source queues, active list and the pending-header
  /// rotation order. save_state → restore_state on a Network built from the
  /// same SimConfig is byte-exact: stepping both produces identical flits.
  void save_state(BinWriter& out) const;
  /// Restores state saved by save_state. The network must have been
  /// constructed from the same SimConfig (same topology/VC shape); throws
  /// std::runtime_error on any structural mismatch or corrupt encoding.
  void restore_state(BinReader& in);

  /// Counters codec, shared with MetricsCollector's window snapshot.
  static void save_counters(BinWriter& out, const Counters& c);
  static void restore_counters(BinReader& in, Counters& c);

 private:
  void inject_link_faults();
  [[nodiscard]] bool network_strongly_connected() const;
  void deliver_phase();
  void route_phase();
  void transmit_phase();

  /// Emits a trace event when a tracer is attached. `vc`'s downstream router
  /// is the event's location unless `node` overrides it.
  void trace(TraceEventKind kind, MessageId msg, VcId vc,
             VcId vc2 = kInvalidVc, std::int32_t arg = 0,
             NodeId node = kInvalidNode);
  void trace_request_set_change(const Message& msg, VcId head_vc);

  void try_injection_grants(NodeId node);
  /// Attempts allocation for the unrouted header in `head_vc`; returns true
  /// on success.
  bool try_route_header(VcId head_vc);
  void acquire_vc(Message& msg, VcState& from, VcState& target);
  void complete_delivery(Message& msg, VcState& eject_vc);
  void deactivate(Message& msg);

  SimConfig config_;
  std::shared_ptr<const Topology> topo_;
  std::unique_ptr<RoutingAlgorithm> routing_;
  std::unique_ptr<SelectionPolicy> selection_;
  Pcg32 rng_;

  std::vector<PhysChannel> phys_;  // network channels, then injection, then ejection
  std::vector<VcState> vcs_;
  ChannelId first_injection_ = kInvalidChannel;
  ChannelId first_ejection_ = kInvalidChannel;

  std::vector<Message> messages_;
  std::vector<std::deque<MessageId>> source_queues_;
  std::vector<MessageId> active_;
  std::vector<std::int32_t> active_pos_;  // message id -> index in active_
  std::vector<VcId> pending_;             // VCs holding unrouted headers

  Cycle now_ = 0;
  std::uint64_t arc_epoch_ = 0;
  int blocked_count_ = 0;
  int faulted_ = 0;
  Counters counters_;
  Tracer* tracer_ = nullptr;
  SpatialHeatmap* heatmap_ = nullptr;
  PhaseProfiler* profiler_ = nullptr;
  ObsCollector* obs_ = nullptr;

  // scratch buffers reused across cycles to avoid per-cycle allocation
  std::vector<ChannelId> scratch_channels_;
  std::vector<VcId> scratch_vcs_;
  std::vector<VcId> scratch_pending_;
  std::vector<VcId> scratch_old_requests_;  // tracing only
};

}  // namespace flexnet
