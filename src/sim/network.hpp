// The flit-level network simulator (the paper's "FlexSim" substrate).
//
// Each cycle advances three phases:
//   1. deliver  — reception interfaces drain ejection-VC buffers (1 flit per
//                 reception channel per cycle); tails complete messages.
//   2. route    — queued messages contend for injection VCs; every unrouted
//                 header retries VC allocation against the routing relation's
//                 candidate set. Failures mark the message blocked and record
//                 its request set (the CWG's dashed arcs).
//   3. transmit — every physical channel moves at most one flit from the
//                 feeding VC into the owned downstream VC (or from the source
//                 queue into an injection VC). A tail flit leaving a buffer
//                 releases that VC in acquisition order (wormhole).
//
// Virtual cut-through behavior emerges when buffer_depth >= message_length.
// The class performs no deadlock handling itself: detection and recovery
// live in src/core and operate through the public observers plus
// remove_message().
#pragma once

#include <array>
#include <deque>
#include <memory>
#include <vector>

#include "sim/active.hpp"
#include "sim/channel.hpp"
#include "sim/config.hpp"
#include "sim/message.hpp"
#include "sim/shard.hpp"
#include "sim/types.hpp"
#include "topo/partition.hpp"
#include "topo/topology.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace flexnet {

class WorkerPool;

class BinReader;
class BinWriter;
class ObsCollector;
class RoutingAlgorithm;
class SelectionPolicy;
class SpatialHeatmap;
class PhaseProfiler;

/// The single observer-registration surface on Network. Every subsystem that
/// watches the step loop — tracer, telemetry heatmap, phase profiler, obs
/// collector — is a non-owning, null-guarded pointer in this aggregate,
/// installed in one call instead of through per-subsystem setters. Each hook
/// costs one predictable branch per instrumentation point when absent.
struct NetworkHooks {
  Tracer* tracer = nullptr;            ///< Event tracing (src/trace).
  SpatialHeatmap* heatmap = nullptr;   ///< Traversal/stall counters.
  PhaseProfiler* profiler = nullptr;   ///< Per-phase wall-clock accounting.
  ObsCollector* obs = nullptr;         ///< Delivery-latency hook.
};

/// Construction-time dependencies, aggregated so the constructor stops
/// growing positional unique_ptr parameters. `topology` may be null, in
/// which case the network builds one from the SimConfig (make_topology);
/// snapshot restore passes a pre-built topology rebuilt from the embedded
/// section rather than the filesystem.
struct NetworkDeps {
  std::shared_ptr<const Topology> topology;
  std::unique_ptr<RoutingAlgorithm> routing;
  std::unique_ptr<SelectionPolicy> selection;
};

class Network {
 public:
  /// Monotonic event counters; windowed metrics diff snapshots of these.
  /// The per-class arrays partition the corresponding scalar by MessageClass
  /// (scalar == sum over classes), so windowed diffs break down per class
  /// without a second accounting pass.
  struct Counters {
    std::int64_t generated = 0;
    std::int64_t injected = 0;          ///< Messages whose head left the source.
    std::int64_t delivered = 0;         ///< Completed via the network.
    std::int64_t recovered = 0;         ///< Completed via deadlock recovery.
    std::int64_t flits_delivered = 0;
    std::int64_t delivered_latency_sum = 0;
    std::int64_t delivered_hops_sum = 0;
    std::array<std::int64_t, kNumMessageClasses> class_generated{};
    std::array<std::int64_t, kNumMessageClasses> class_delivered{};
    std::array<std::int64_t, kNumMessageClasses> class_recovered{};
    std::array<std::int64_t, kNumMessageClasses> class_latency_sum{};
  };

  Network(const SimConfig& config, NetworkDeps deps);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Advances the simulation by one cycle.
  void step();

  /// Creates a message in `src`'s source queue. Returns its id.
  MessageId enqueue_message(NodeId src, NodeId dst, std::int32_t length,
                            MessageClass cls = MessageClass::Bulk);

  /// Deadlock recovery: removes an in-flight message flit-by-flit, freeing
  /// every VC it owns (synthesizes Disha-style recovery delivery).
  void remove_message(MessageId id);

  // --- observers -----------------------------------------------------------
  [[nodiscard]] Cycle now() const noexcept { return now_; }
  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }
  [[nodiscard]] const Topology& topology() const noexcept { return *topo_; }
  /// Shared handle, for components that outlive or sibling the network
  /// (snapshot capture, tools).
  [[nodiscard]] const std::shared_ptr<const Topology>& topology_ptr()
      const noexcept {
    return topo_;
  }
  [[nodiscard]] const RoutingAlgorithm& routing_algorithm() const noexcept {
    return *routing_;
  }

  [[nodiscard]] std::size_t num_vcs() const noexcept { return vcs_.size(); }
  [[nodiscard]] const VcState& vc(VcId id) const {
    return vcs_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::size_t num_channels() const noexcept { return phys_.size(); }
  [[nodiscard]] const PhysChannel& phys(ChannelId id) const {
    return phys_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] ChannelId injection_channel(NodeId node) const noexcept;
  [[nodiscard]] ChannelId ejection_channel(NodeId node) const noexcept;
  /// Number of network (router-to-router) channels; their ids are [0, count).
  [[nodiscard]] std::size_t num_network_channels() const noexcept {
    return topo_->channels().size();
  }

  [[nodiscard]] const Message& message(MessageId id) const {
    return messages_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::size_t num_messages() const noexcept {
    return messages_.size();
  }
  /// Messages currently in the network (own at least one VC).
  [[nodiscard]] const std::vector<MessageId>& active_messages() const noexcept {
    return active_;
  }

  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }
  /// In-network messages whose header allocation failed this cycle.
  [[nodiscard]] int blocked_message_count() const noexcept { return blocked_count_; }
  /// Monotonic counter bumped on every event that changes the channel
  /// wait-for graph: VC acquisition/release (solid arcs), block/unblock and
  /// request-set changes (dashed arcs), message completion/removal, and
  /// snapshot restore. Equal epochs across two instants guarantee an
  /// identical CWG, which lets the deadlock detector skip or reuse a pass.
  /// Under sharded stepping the counter is composed: a base term (main-thread
  /// events) plus one monotonic term per shard, so workers bump their own
  /// term without synchronization and the sum keeps the equal-epochs
  /// guarantee (every term is non-decreasing, so sums collide only when no
  /// term moved).
  [[nodiscard]] std::uint64_t arc_epoch() const noexcept {
    std::uint64_t epoch = arc_epoch_;
    for (const ShardCtx& ctx : shard_ctx_) epoch += ctx.epoch;
    return epoch;
  }
  /// Messages still waiting in source queues.
  [[nodiscard]] std::int64_t queued_message_count() const noexcept;
  /// Messages waiting in one node's source queue.
  [[nodiscard]] std::size_t source_queue_length(NodeId node) const noexcept {
    return source_queues_[static_cast<std::size_t>(node)].size();
  }

  /// Channels disabled by fault injection.
  [[nodiscard]] int faulted_channel_count() const noexcept { return faulted_; }

  /// Installs the observer surface wholesale (replacing whatever was
  /// installed before; a default-constructed NetworkHooks detaches
  /// everything). All pointers are non-owning and must outlive their use.
  void install_hooks(const NetworkHooks& hooks) noexcept { hooks_ = hooks; }
  [[nodiscard]] const NetworkHooks& hooks() const noexcept { return hooks_; }

  /// Selects the dense per-cycle sweep (every node and channel visited every
  /// cycle) instead of the default event-driven active-set core. The dense
  /// loop is the lockstep oracle — both paths produce byte-identical state,
  /// traces, and counters (tests/test_step_equivalence.cpp) — kept behind
  /// --step-dense the same way --detector-full-rebuild keeps the detection
  /// oracle. Safe to flip between steps: the active sets are maintained in
  /// both modes.
  void set_step_dense(bool dense) noexcept { step_dense_ = dense; }
  [[nodiscard]] bool step_dense() const noexcept { return step_dense_; }

  /// Selects the sharded parallel stepping engine with `shards` spatial
  /// domains (>= 1; one worker thread per shard, the caller participating),
  /// or restores the serial engine with 0. Safe to flip between steps.
  ///
  /// The sharded engine is deterministic in the strong sense the serial
  /// engine pairs are: every shard count from 1 upward produces byte-
  /// identical state, traces, counters and snapshots. It is NOT byte-
  /// identical to the serial engine — transmit grants buffer space against
  /// cycle-start occupancy (a one-cycle credit-return delay instead of the
  /// serial sweep's same-cycle compaction chaining) and adaptive selection
  /// draws from a per-(message, cycle) hash stream instead of the shared
  /// serial RNG — so the serial path remains the semantics oracle and the
  /// 1-shard run is the byte-equality oracle for N shards (DESIGN.md §3j).
  /// Throws std::invalid_argument for shards > nodes and when the dense
  /// sweep is active (the oracles compose with the event core, not with
  /// each other).
  void set_shards(int shards);
  /// Configured shard count; 0 when the serial engine is active.
  [[nodiscard]] int shards() const noexcept {
    return sharded_ ? static_cast<int>(shard_ctx_.size()) : 0;
  }

  /// Scheduler introspection: how many components the event-driven core will
  /// visit next cycle. All zero on an idle network. Sharded mode sums the
  /// per-shard sets (they partition the components, so counts compose).
  [[nodiscard]] std::size_t active_source_nodes() const noexcept {
    if (!sharded_) return src_active_.count();
    std::size_t n = 0;
    for (const ShardCtx& ctx : shard_ctx_) n += ctx.src_active.count();
    return n;
  }
  [[nodiscard]] std::size_t active_eject_nodes() const noexcept {
    if (!sharded_) return eject_active_.count();
    std::size_t n = 0;
    for (const ShardCtx& ctx : shard_ctx_) n += ctx.eject_active.count();
    return n;
  }
  [[nodiscard]] std::size_t active_channels() const noexcept {
    if (!sharded_) return chan_active_.count();
    std::size_t n = 0;
    for (const ShardCtx& ctx : shard_ctx_) n += ctx.chan_active.count();
    return n;
  }

  /// Peak normalized injection bandwidth: flits/node/cycle at which average
  /// network-channel utilization reaches 1 (paper Section 3 normalization).
  [[nodiscard]] double capacity_flits_per_node(double avg_distance) const noexcept;

  /// True when a blocked message is fully compacted: no flit of it can move
  /// now, and none ever will unless its header is granted a new VC. A knot
  /// whose deadlock set is entirely immobile is a *true* deadlock; a knot
  /// with residual buffer slack can still dissolve on its own (the owner of
  /// a requested VC may release it by tail compaction even though its own
  /// header stays blocked).
  [[nodiscard]] bool message_immobile(MessageId id) const;

  /// Validates every structural invariant (VC exclusivity, chain linkage,
  /// flit conservation). Throws std::logic_error on violation. O(state size);
  /// intended for tests.
  void check_invariants() const;

  // --- snapshot hooks ------------------------------------------------------
  /// Serializes every bit of dynamic state that influences future evolution:
  /// cycle counter, RNG position, counters, per-channel arbitration cursors
  /// and fault flags, every VC (ownership, routing linkage, buffered flits),
  /// the full message table, source queues, active list and the pending-header
  /// rotation order. save_state → restore_state on a Network built from the
  /// same SimConfig is byte-exact: stepping both produces identical flits.
  void save_state(BinWriter& out) const;
  /// Restores state saved by save_state. The network must have been
  /// constructed from the same SimConfig (same topology/VC shape); throws
  /// std::runtime_error on any structural mismatch or corrupt encoding.
  /// `version` is the snapshot container version the payload was written
  /// under; pre-v3 payloads carry no message classes (all restore as Bulk).
  void restore_state(BinReader& in,
                     std::uint32_t version = kStateFormatVersion);

  /// Counters codec, shared with MetricsCollector's window snapshot.
  static void save_counters(BinWriter& out, const Counters& c);
  static void restore_counters(BinReader& in, Counters& c,
                               std::uint32_t version = kStateFormatVersion);

 private:
  void inject_link_faults();
  [[nodiscard]] bool network_strongly_connected() const;
  void deliver_phase();
  void route_phase();
  void transmit_phase();

  // Per-component workers shared by the dense and event-driven sweeps (the
  // two paths differ only in which components they enumerate). Each worker
  // also maintains the active sets, so dense-mode runs keep them valid and
  // the step mode can be flipped at any cycle boundary.
  void deliver_node(NodeId node);
  void route_node_grants(NodeId node);
  void transmit_channel(PhysChannel& pc);
  /// Superset condition keeping a channel in chan_active_: some owned VC
  /// could move a flit now or next cycle (flit age is deliberately ignored —
  /// a flit that arrived this cycle becomes movable on the next one).
  [[nodiscard]] bool transmit_work_possible(const PhysChannel& pc) const;
  /// Schedules a physical channel's wakeup (idempotent). Serial engine only;
  /// sharded workers insert into their own ShardCtx (or its wake outbox).
  void wake_channel(ChannelId ch) noexcept { chan_active_.insert(ch); }
  /// Recomputes all three active sets from current state (constructor and
  /// snapshot restore; the sets are never serialized). Fills the per-shard
  /// slices instead when the sharded engine is active.
  void rebuild_active_sets();

  // --- sharded engine (src/sim/network_sharded.cpp, DESIGN.md §3j) ---------
  // Scheduler routing for main-thread mutations (enqueue_message,
  // remove_message, restore_state) that must land in the right shard's sets.
  void sched_insert_src(NodeId node);
  void sched_insert_eject(NodeId node);
  void sched_wake_channel(ChannelId ch);
  // Shard-aware active-set membership (invariant checks, cold paths).
  [[nodiscard]] bool src_scheduled(NodeId node) const;
  [[nodiscard]] bool eject_scheduled(NodeId node) const;
  [[nodiscard]] bool channel_scheduled(ChannelId ch) const;
  [[nodiscard]] std::int32_t shard_of_node(NodeId node) const noexcept {
    return shard_plan_.node_shard[static_cast<std::size_t>(node)];
  }
  [[nodiscard]] std::int32_t shard_of_channel(ChannelId ch) const noexcept {
    return shard_chan_[static_cast<std::size_t>(ch)];
  }

  void step_sharded();
  void deliver_phase_sharded();
  void deliver_shard(ShardCtx& ctx);
  void commit_deliver();
  void route_phase_sharded();
  void route_shard(ShardCtx& ctx);
  void route_grants_sharded(NodeId node, ShardCtx& ctx);
  bool try_route_header_sharded(VcId head_vc, std::uint32_t scan_index,
                                ShardCtx& ctx);
  void acquire_vc_sharded(Message& msg, VcState& from, VcState& target,
                          std::uint64_t trace_key, ShardCtx& ctx);
  void commit_route();
  void transmit_phase_sharded();
  void transmit_decide_shard(ShardCtx& ctx);
  void transmit_pop_shard(ShardCtx& ctx);
  void transmit_push_shard(ShardCtx& ctx);
  void commit_transmit();
  /// Buffers a trace event (no-op without a tracer); emitted at phase commit
  /// in ascending key order.
  void trace_sharded(ShardCtx& ctx, std::uint64_t key, TraceEventKind kind,
                     MessageId msg, VcId vc, VcId vc2 = kInvalidVc,
                     std::int32_t arg = 0, NodeId node = kInvalidNode);
  /// Emits each shard's key-sorted trace buffer in one globally ascending
  /// k-way merge, then clears the buffers.
  void flush_sharded_traces();

  /// Emits a trace event when a tracer is attached. `vc`'s downstream router
  /// is the event's location unless `node` overrides it.
  void trace(TraceEventKind kind, MessageId msg, VcId vc,
             VcId vc2 = kInvalidVc, std::int32_t arg = 0,
             NodeId node = kInvalidNode);
  void trace_request_set_change(const Message& msg, VcId head_vc);

  void try_injection_grants(NodeId node);
  /// Attempts allocation for the unrouted header in `head_vc`; returns true
  /// on success.
  bool try_route_header(VcId head_vc);
  void acquire_vc(Message& msg, VcState& from, VcState& target);
  void complete_delivery(Message& msg, VcState& eject_vc);
  void deactivate(Message& msg);

  SimConfig config_;
  std::shared_ptr<const Topology> topo_;
  std::unique_ptr<RoutingAlgorithm> routing_;
  std::unique_ptr<SelectionPolicy> selection_;
  Pcg32 rng_;

  std::vector<PhysChannel> phys_;  // network channels, then injection, then ejection
  std::vector<VcState> vcs_;
  ChannelId first_injection_ = kInvalidChannel;
  ChannelId first_ejection_ = kInvalidChannel;

  std::vector<Message> messages_;
  std::vector<std::deque<MessageId>> source_queues_;
  std::vector<MessageId> active_;
  std::vector<std::int32_t> active_pos_;  // message id -> index in active_
  std::vector<VcId> pending_;             // VCs holding unrouted headers

  Cycle now_ = 0;
  std::uint64_t arc_epoch_ = 0;
  int blocked_count_ = 0;
  int faulted_ = 0;
  Counters counters_;
  NetworkHooks hooks_;
  bool step_dense_ = false;

  // Event-driven scheduling state (never serialized; rebuilt on restore).
  // Invariants, maintained in both step modes:
  //   src_active_   == nodes with a non-empty source queue (exact);
  //   eject_active_ ⊇ nodes with any buffered flit in an ejection VC;
  //   chan_active_  ⊇ channels with transmit_work_possible().
  ActiveSet src_active_;
  ActiveSet eject_active_;
  ActiveSet chan_active_;

  // scratch buffers reused across cycles to avoid per-cycle allocation
  std::vector<ChannelId> scratch_channels_;
  std::vector<VcId> scratch_vcs_;
  std::vector<VcId> scratch_pending_;
  std::vector<VcId> scratch_old_requests_;  // tracing only

  // Sharded engine state (set_shards; absent cost is one predictable branch
  // in step() and nothing on the serial phase workers).
  bool sharded_ = false;
  ShardPlan shard_plan_;
  std::vector<std::int32_t> shard_chan_;  // channel id -> owning shard
  std::vector<ShardCtx> shard_ctx_;
  std::unique_ptr<WorkerPool> pool_;
  // Commit-time merge scratch.
  std::vector<std::size_t> merge_cursor_;
};

}  // namespace flexnet
