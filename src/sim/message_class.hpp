// Message classes tag every message end-to-end (generation -> injection ->
// delivery/recovery -> telemetry/obs/forensics) so workloads can mix traffic
// types and every report breaks down per class — including deadlock
// participation. The enum is append-only: class indices are serialized in
// snapshots and trace files.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace flexnet {

enum class MessageClass : std::uint8_t {
  Bulk = 0,         ///< Default background transfers (Bernoulli, pace OFF).
  Burst = 1,        ///< Pace-profile ON-phase / burst traffic.
  Interactive = 2,  ///< Latency-sensitive requests.
  Control = 3,      ///< Small control-plane messages.
};

inline constexpr std::size_t kNumMessageClasses = 4;

[[nodiscard]] constexpr std::array<MessageClass, kNumMessageClasses>
all_message_classes() noexcept {
  return {MessageClass::Bulk, MessageClass::Burst, MessageClass::Interactive,
          MessageClass::Control};
}

[[nodiscard]] constexpr std::string_view to_string(MessageClass cls) noexcept {
  switch (cls) {
    case MessageClass::Bulk: return "bulk";
    case MessageClass::Burst: return "burst";
    case MessageClass::Interactive: return "interactive";
    case MessageClass::Control: return "control";
  }
  return "?";
}

[[nodiscard]] inline MessageClass parse_message_class(std::string_view name) {
  for (const MessageClass cls : all_message_classes()) {
    if (name == to_string(cls)) return cls;
  }
  throw std::invalid_argument("unknown message class: " + std::string(name));
}

/// Bounds-checked index -> class conversion for deserialization paths.
[[nodiscard]] inline MessageClass message_class_from_index(std::uint32_t idx) {
  if (idx >= kNumMessageClasses) {
    throw std::runtime_error("message class index out of range: " +
                             std::to_string(idx));
  }
  return static_cast<MessageClass>(idx);
}

[[nodiscard]] constexpr std::size_t class_index(MessageClass cls) noexcept {
  return static_cast<std::size_t>(cls);
}

}  // namespace flexnet
