// Simulator configuration. Defaults reproduce the paper's baseline setup
// (Section 3): 16-ary 2-cube, bidirectional torus, 1 VC per physical channel,
// 2-flit edge buffers, 32-flit messages, one injection and one reception
// channel, prefer-straight channel selection.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "topo/topology.hpp"
#include "topo/torus.hpp"

namespace flexnet {

/// Routing algorithms. DOR and TFAR use VCs *unrestrictedly* so deadlock is
/// possible (the paper's subjects); the rest are deadlock-avoidance baselines.
/// The first five are torus-only; the Table pair routes any topology through
/// precomputed per-(node, destination) next-channel tables. Values are part
/// of the snapshot format; append only.
enum class RoutingKind : std::uint8_t {
  DOR,           ///< Static dimension-order routing.
  TFAR,          ///< Minimal true fully adaptive routing.
  DatelineDOR,   ///< DOR + Dally/Seitz dateline VC classes (avoidance, >=2 VCs).
  DuatoTFAR,     ///< Adaptive VCs + dateline escape pair (avoidance, >=3 VCs).
  NegativeFirst, ///< Turn-model adaptive routing (avoidance, mesh only).
  TableMin,      ///< Table-based minimal adaptive; deadlock-prone (subject).
  TableUpDown,   ///< Table-based up*/down* (avoidance, any topology).
};

/// Channel-selection policy applied when several candidate VCs are free.
enum class SelectionKind : std::uint8_t {
  PreferStraight,  ///< Favor continuing in the current dimension (paper default).
  Random,          ///< Uniformly random among candidates.
  LowestIndex,     ///< Deterministic lowest channel id first.
};

/// Which deadlock-set message the recovery procedure removes.
enum class RecoveryKind : std::uint8_t {
  None,               ///< Detect only; deadlocks persist.
  RemoveOldest,       ///< Longest-lived message (paper-style victim).
  RemoveNewest,       ///< Most recently injected message.
  RemoveMostResources,///< Message holding the most VCs.
  RemoveRandom,       ///< Uniform random member of the deadlock set.
};

[[nodiscard]] std::string_view to_string(RoutingKind kind) noexcept;
[[nodiscard]] std::string_view to_string(SelectionKind kind) noexcept;
[[nodiscard]] std::string_view to_string(RecoveryKind kind) noexcept;

struct SimConfig {
  /// Which topology family to build; `topology` (the torus shape) applies
  /// only when kind == Torus, the topo_* fields parameterize the rest.
  TopoKind topo_kind = TopoKind::Torus;
  TopologyConfig topology;
  int topo_nodes = 8;        ///< FullMesh / RandomIrregular node count.
  int topo_degree = 3;       ///< RandomIrregular average undirected degree.
  int topo_df_routers = 8;   ///< Dragonfly routers per group (a).
  int topo_df_globals = 1;   ///< Dragonfly global links per router (h).
  std::uint64_t topo_seed = 1;  ///< RandomIrregular generator seed.
  std::string topo_file;     ///< flexnet-topo-v1 path (kind == File).

  /// Optional flexnet-rtable-v1 file overriding the built routing tables
  /// (Table* routing only); empty = build from the topology.
  std::string route_table_file;

  int vcs = 1;            ///< Virtual channels per network physical channel.
  int buffer_depth = 2;   ///< Flits of buffering per VC (edge buffer depth).
  int injection_vcs = 1;  ///< VCs on each node's injection channel.
  int ejection_vcs = 1;   ///< VCs on each node's reception channel.

  int message_length = 32;  ///< Flits per message.
  /// Hybrid (bimodal) message lengths, a paper "future work" extension:
  /// fraction of messages drawn at `short_message_length` instead.
  double short_message_fraction = 0.0;
  int short_message_length = 8;

  RoutingKind routing = RoutingKind::TFAR;
  SelectionKind selection = SelectionKind::PreferStraight;
  /// Maximum non-minimal hops per message (0 = strictly minimal). Only TFAR
  /// honors misrouting; another paper "future work" extension.
  int max_misroutes = 0;

  /// Fraction of network channels disabled at construction (paper future
  /// work: irregular/faulty topologies). Faults are sampled so the surviving
  /// network stays strongly connected; only TFAR can route around them
  /// (forced misroutes when every minimal channel at a router is faulted).
  double link_fault_fraction = 0.0;

  /// Maximum messages waiting in a node's source queue; generation at a full
  /// node stalls (the source is busy). 0 = unbounded. Bounding the backlog
  /// keeps post-saturation pressure finite, so "deep saturation" is a
  /// congested-but-flowing regime rather than total gridlock.
  int source_queue_limit = 4;

  std::uint64_t seed = 1;

  /// Throws std::invalid_argument describing the first inconsistency found
  /// (e.g. DuatoTFAR with fewer than 3 VCs).
  void validate() const;

  /// Flits a single message needs buffered for virtual cut-through behavior.
  [[nodiscard]] bool is_virtual_cut_through() const noexcept {
    return buffer_depth >= message_length;
  }
};

}  // namespace flexnet
