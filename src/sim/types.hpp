// Fundamental identifier types shared by every flexnet module.
//
// Plain integer aliases (not wrapper classes) are used deliberately: ids index
// into dense vectors on the simulator hot path and are compared billions of
// times per run. Negative sentinel constants mark "no value".
#pragma once

#include <cstdint>

namespace flexnet {

using NodeId = std::int32_t;     ///< Router / endpoint index in [0, N).
using ChannelId = std::int32_t;  ///< Physical channel (link) index.
using VcId = std::int32_t;       ///< Global virtual channel index.
using MessageId = std::int64_t;  ///< Monotonically increasing message index.
using Cycle = std::int64_t;      ///< Simulation time in cycles.

/// Binary state-format version shared by every component codec (snapshot
/// container, Network message/counter layout, detector tallies, obs
/// histograms). Bump together with kSnapshotVersion; component restore
/// functions take the container's version so old snapshots keep loading.
inline constexpr std::uint32_t kStateFormatVersion = 3;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr ChannelId kInvalidChannel = -1;
inline constexpr VcId kInvalidVc = -1;
inline constexpr MessageId kInvalidMessage = -1;

/// What a physical channel connects.
enum class ChannelKind : std::uint8_t {
  Network,    ///< Router-to-router link.
  Injection,  ///< Source queue -> local router.
  Ejection,   ///< Local router -> reception (delivery) interface.
};

}  // namespace flexnet
