// Message lifecycle state. A message is generated into its source queue,
// acquires the injection VC, streams flit-by-flit through a chain of
// exclusively-owned VCs (wormhole), and finishes by delivery or by deadlock
// recovery. The `held` chain and `request_set` are exactly the solid and
// dashed arcs of the paper's channel wait-for graph.
#pragma once

#include <vector>

#include "sim/message_class.hpp"
#include "sim/types.hpp"

namespace flexnet {

enum class MessageStatus : std::uint8_t {
  Queued,     ///< Waiting in the source queue for the injection channel.
  InFlight,   ///< Owns at least the injection VC.
  Delivered,  ///< Tail consumed at the destination.
  Recovered,  ///< Removed by deadlock recovery (synthesized delivery).
};

struct Message {
  MessageId id = kInvalidMessage;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::int32_t length = 0;
  MessageClass cls = MessageClass::Bulk;  ///< Workload class tag.

  Cycle created = -1;   ///< Cycle the message entered the source queue.
  Cycle injected = -1;  ///< Cycle its head flit entered the injection VC.
  Cycle finished = -1;  ///< Delivery or recovery cycle.
  MessageStatus status = MessageStatus::Queued;

  std::int32_t flits_sent = 0;       ///< Flits that have left the source.
  std::int32_t flits_delivered = 0;  ///< Flits consumed at the destination.
  std::int32_t hops = 0;             ///< Network channels acquired so far.
  std::int32_t misroutes = 0;        ///< Non-minimal hops taken.

  /// Header failed VC allocation this cycle (the paper's "blocked" state).
  bool blocked = false;
  Cycle blocked_since = -1;

  /// Currently owned VCs in acquisition order (CWG solid-arc chain).
  std::vector<VcId> held;
  /// VCs the blocked header could acquire right now (CWG dashed arcs).
  std::vector<VcId> request_set;

  [[nodiscard]] bool in_network() const noexcept {
    return status == MessageStatus::InFlight;
  }
  [[nodiscard]] bool finished_ok() const noexcept {
    return status == MessageStatus::Delivered ||
           status == MessageStatus::Recovered;
  }
  /// End-to-end latency from generation to completion; -1 while unfinished.
  [[nodiscard]] Cycle latency() const noexcept {
    return finished >= 0 ? finished - created : -1;
  }
};

}  // namespace flexnet
