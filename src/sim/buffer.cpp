#include "sim/buffer.hpp"

#include <cassert>
#include <stdexcept>

#include "util/binio.hpp"

namespace flexnet {

FlitFifo::FlitFifo(int capacity) {
  if (capacity < 1) throw std::invalid_argument("FlitFifo capacity must be >= 1");
  slots_.resize(static_cast<std::size_t>(capacity));
}

void FlitFifo::push(Flit flit) {
  assert(!full());
  const int tail = (head_ + count_) % capacity();
  slots_[static_cast<std::size_t>(tail)] = flit;
  ++count_;
}

Flit FlitFifo::pop() {
  assert(!empty());
  const Flit flit = slots_[static_cast<std::size_t>(head_)];
  head_ = (head_ + 1) % capacity();
  --count_;
  return flit;
}

const Flit& FlitFifo::front() const {
  assert(!empty());
  return slots_[static_cast<std::size_t>(head_)];
}

const Flit& FlitFifo::at(int i) const {
  assert(i >= 0 && i < count_);
  return slots_[static_cast<std::size_t>((head_ + i) % capacity())];
}

void FlitFifo::save_state(BinWriter& out) const {
  out.i32(count_);
  for (int i = 0; i < count_; ++i) {
    const Flit& f = at(i);
    out.i64(f.message);
    out.i32(f.seq);
    out.i64(f.arrived);
  }
}

void FlitFifo::restore_state(BinReader& in) {
  clear();
  const std::int32_t count = in.i32();
  if (count < 0 || count > capacity()) {
    throw std::runtime_error("snapshot: FlitFifo count " +
                             std::to_string(count) + " exceeds capacity " +
                             std::to_string(capacity()));
  }
  for (std::int32_t i = 0; i < count; ++i) {
    Flit f;
    f.message = in.i64();
    f.seq = in.i32();
    f.arrived = in.i64();
    push(f);
  }
}

}  // namespace flexnet
