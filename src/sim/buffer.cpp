#include "sim/buffer.hpp"

#include <cassert>
#include <stdexcept>

namespace flexnet {

FlitFifo::FlitFifo(int capacity) {
  if (capacity < 1) throw std::invalid_argument("FlitFifo capacity must be >= 1");
  slots_.resize(static_cast<std::size_t>(capacity));
}

void FlitFifo::push(Flit flit) {
  assert(!full());
  const int tail = (head_ + count_) % capacity();
  slots_[static_cast<std::size_t>(tail)] = flit;
  ++count_;
}

Flit FlitFifo::pop() {
  assert(!empty());
  const Flit flit = slots_[static_cast<std::size_t>(head_)];
  head_ = (head_ + 1) % capacity();
  --count_;
  return flit;
}

const Flit& FlitFifo::front() const {
  assert(!empty());
  return slots_[static_cast<std::size_t>(head_)];
}

const Flit& FlitFifo::at(int i) const {
  assert(i >= 0 && i < count_);
  return slots_[static_cast<std::size_t>((head_ + i) % capacity())];
}

}  // namespace flexnet
