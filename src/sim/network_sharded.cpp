// The sharded parallel stepping engine (DESIGN.md §3j).
//
// Network::step_sharded() runs each phase as a fleet of per-shard workers
// over the per-shard active sets, separated by pool barriers, with every
// ordered side effect buffered in the worker's ShardCtx and folded into
// global state by a single-threaded commit in canonical component order.
// The result is byte-identical across ALL shard counts: the 1-shard run is
// the oracle and `--shards 8` must reproduce it bit for bit (state, traces,
// counters, snapshots, telemetry, metrics streams).
//
// Ownership discipline (the whole correctness argument, verified by TSan):
//  * a shard owns its nodes' queues/ejection interfaces and every physical
//    channel whose SOURCE router it owns, VCs included;
//  * deliver and route touch only owned state — routing candidates are
//    channels out of the header's current router, which the router's shard
//    owns (the one cross-shard write, `from.route_out` in acquire, targets
//    the header's own VC, which no other shard touches this phase);
//  * transmit is split decide/pop/push: T1 is read-only against cycle-start
//    state, T2 performs the pops (each VC has a unique downstream mover),
//    T3 performs the pushes (each VC is pushed only by its own channel), so
//    no FlitFifo is ever touched by two threads in the same sub-phase.
//
// Two semantic deltas vs the serial engine, both deliberate and documented:
// transmit decisions read cycle-start buffer occupancy (a one-cycle
// credit-return delay instead of the serial sweep's same-cycle compaction
// chaining along ascending channel ids — unparallelizable without
// serializing the sweep), and adaptive selection shuffles with a
// per-(message, cycle) hash stream instead of the shared serial RNG (whose
// draw order is exactly the serial visit order). Neither depends on the
// shard count, which is what the byte-equality suite asserts.
#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "obs/obs.hpp"
#include "routing/routing.hpp"
#include "routing/selection.hpp"
#include "sim/network.hpp"
#include "telemetry/heatmap.hpp"
#include "telemetry/profiler.hpp"
#include "util/parallel.hpp"

namespace flexnet {

namespace {
/// Retry trace/order keys sort after every grant key (node ids < 2^31).
constexpr std::uint64_t kRetryKeyBase = 1ull << 32;
}  // namespace

void Network::set_shards(int shards) {
  if (shards < 0) throw std::invalid_argument("shard count must be >= 0");
  if (shards > topo_->num_nodes()) {
    throw std::invalid_argument("shard count exceeds node count (" +
                                std::to_string(topo_->num_nodes()) + ")");
  }
  // Fold the per-shard epoch terms into the base counter so arc_epoch()
  // stays monotonic across resharding.
  arc_epoch_ = arc_epoch();
  shard_ctx_.clear();
  pool_.reset();
  if (shards == 0) {
    sharded_ = false;
    rebuild_active_sets();
    return;
  }
  if (step_dense_) {
    throw std::invalid_argument(
        "sharded stepping cannot combine with the dense sweep oracle");
  }

  shard_plan_ = make_shard_plan(*topo_, shards);
  shard_chan_.resize(phys_.size());
  for (const PhysChannel& pc : phys_) {
    // Injection/ejection channels have src == dst == their node, so one rule
    // covers all kinds: a channel belongs to its source router's shard.
    shard_chan_[static_cast<std::size_t>(pc.id)] = shard_plan_.shard_of(pc.src);
  }

  shard_ctx_.resize(static_cast<std::size_t>(shard_plan_.shards));
  const auto nodes = static_cast<std::size_t>(topo_->num_nodes());
  for (std::size_t s = 0; s < shard_ctx_.size(); ++s) {
    ShardCtx& ctx = shard_ctx_[s];
    ctx.shard = static_cast<std::int32_t>(s);
    ctx.src_active.reset(nodes);
    ctx.eject_active.reset(nodes);
    ctx.chan_active.reset(phys_.size());
    ctx.epoch = 0;
    ctx.clear_cycle_buffers();
  }
  merge_cursor_.assign(shard_ctx_.size(), 0);
  pool_ = std::make_unique<WorkerPool>(shard_ctx_.size());
  sharded_ = true;
  rebuild_active_sets();
}

void Network::sched_insert_src(NodeId node) {
  if (sharded_) {
    shard_ctx_[static_cast<std::size_t>(shard_of_node(node))].src_active.insert(
        node);
  } else {
    src_active_.insert(node);
  }
}

void Network::sched_insert_eject(NodeId node) {
  if (sharded_) {
    shard_ctx_[static_cast<std::size_t>(shard_of_node(node))]
        .eject_active.insert(node);
  } else {
    eject_active_.insert(node);
  }
}

void Network::sched_wake_channel(ChannelId ch) {
  if (sharded_) {
    shard_ctx_[static_cast<std::size_t>(shard_of_channel(ch))]
        .chan_active.insert(ch);
  } else {
    chan_active_.insert(ch);
  }
}

bool Network::src_scheduled(NodeId node) const {
  if (!sharded_) return src_active_.contains(node);
  return shard_ctx_[static_cast<std::size_t>(shard_of_node(node))]
      .src_active.contains(node);
}

bool Network::eject_scheduled(NodeId node) const {
  if (!sharded_) return eject_active_.contains(node);
  return shard_ctx_[static_cast<std::size_t>(shard_of_node(node))]
      .eject_active.contains(node);
}

bool Network::channel_scheduled(ChannelId ch) const {
  if (!sharded_) return chan_active_.contains(ch);
  return shard_ctx_[static_cast<std::size_t>(shard_of_channel(ch))]
      .chan_active.contains(ch);
}

void Network::trace_sharded(ShardCtx& ctx, std::uint64_t key,
                            TraceEventKind kind, MessageId msg, VcId vc,
                            VcId vc2, std::int32_t arg, NodeId node) {
  ShardTraceRecord rec;
  rec.key = key;
  rec.event.cycle = now_;
  rec.event.kind = kind;
  rec.event.message = msg;
  rec.event.vc = vc;
  rec.event.vc2 = vc2;
  rec.event.arg = arg;
  rec.event.node = (node != kInvalidNode || vc == kInvalidVc)
                       ? node
                       : phys(vcs_[static_cast<std::size_t>(vc)].channel).dst;
  ctx.trace_buf.push_back(rec);
}

void Network::flush_sharded_traces() {
  if (hooks_.tracer == nullptr) {
    for (ShardCtx& ctx : shard_ctx_) ctx.trace_buf.clear();
    return;
  }
  // K-way merge of key-sorted buffers. Keys are unique across shards within
  // a phase segment (each component/scan position is processed by exactly
  // one shard), so ties cannot occur.
  std::fill(merge_cursor_.begin(), merge_cursor_.end(), 0);
  for (;;) {
    std::size_t best = shard_ctx_.size();
    std::uint64_t best_key = 0;
    for (std::size_t s = 0; s < shard_ctx_.size(); ++s) {
      const ShardCtx& ctx = shard_ctx_[s];
      if (merge_cursor_[s] >= ctx.trace_buf.size()) continue;
      const std::uint64_t key = ctx.trace_buf[merge_cursor_[s]].key;
      if (best == shard_ctx_.size() || key < best_key) {
        best = s;
        best_key = key;
      }
    }
    if (best == shard_ctx_.size()) break;
    hooks_.tracer->emit(shard_ctx_[best].trace_buf[merge_cursor_[best]].event);
    ++merge_cursor_[best];
  }
  for (ShardCtx& ctx : shard_ctx_) ctx.trace_buf.clear();
}

void Network::step_sharded() {
  if (hooks_.profiler == nullptr) {
    deliver_phase_sharded();
    route_phase_sharded();
    transmit_phase_sharded();
  } else {
    {
      ScopedPhase timer(hooks_.profiler, SimPhase::Deliver);
      deliver_phase_sharded();
    }
    {
      ScopedPhase timer(hooks_.profiler, SimPhase::Route);
      route_phase_sharded();
    }
    {
      ScopedPhase timer(hooks_.profiler, SimPhase::Transmit);
      transmit_phase_sharded();
    }
  }
}

// --- deliver ---------------------------------------------------------------

void Network::deliver_phase_sharded() {
  pool_->run([this](std::size_t s) { deliver_shard(shard_ctx_[s]); });
  commit_deliver();
}

void Network::deliver_shard(ShardCtx& ctx) {
  ctx.deliveries.clear();
  ctx.flits_delivered = 0;
  for (std::int32_t node = ctx.eject_active.first(); node != -1;
       node = ctx.eject_active.next_after(node)) {
    PhysChannel& pc = phys_[static_cast<std::size_t>(ejection_channel(node))];
    for (int j = 0; j < pc.num_vcs; ++j) {
      const int idx = (pc.rr_cursor + j) % pc.num_vcs;
      VcState& w = vcs_[static_cast<std::size_t>(pc.first_vc + idx)];
      if (w.buffer.empty() || w.buffer.front().arrived >= now_) continue;
      const Flit flit = w.buffer.pop();
      ctx.chan_active.insert(pc.id);  // freed space: the ejector can pull again
      Message& msg = messages_[static_cast<std::size_t>(flit.message)];
      ++msg.flits_delivered;
      ++ctx.flits_delivered;
      const bool tail = flit.is_tail_of(msg.length);
      if (tail || hooks_.tracer != nullptr) {
        ShardDelivery rec;
        rec.node = node;
        rec.msg = msg.id;
        rec.eject_vc = w.id;
        rec.seq = flit.seq;
        rec.tail = tail;
        ctx.deliveries.push_back(rec);
      }
      pc.rr_cursor = (idx + 1) % pc.num_vcs;
      break;  // one flit per reception channel per cycle
    }
    bool drained = true;
    for (int i = 0; i < pc.num_vcs; ++i) {
      if (!vcs_[static_cast<std::size_t>(pc.first_vc + i)].buffer.empty()) {
        drained = false;
        break;
      }
    }
    if (drained) ctx.eject_active.erase(node);
  }
}

void Network::commit_deliver() {
  for (const ShardCtx& ctx : shard_ctx_) {
    counters_.flits_delivered += ctx.flits_delivered;
  }
  // Merge by node id — the order the serial sweep visits reception
  // interfaces — emitting the flit trace and running tail completions (which
  // touch the active list, delivered counters, obs hook and base epoch) on
  // this thread.
  std::fill(merge_cursor_.begin(), merge_cursor_.end(), 0);
  for (;;) {
    std::size_t best = shard_ctx_.size();
    NodeId best_node = kInvalidNode;
    for (std::size_t s = 0; s < shard_ctx_.size(); ++s) {
      const ShardCtx& ctx = shard_ctx_[s];
      if (merge_cursor_[s] >= ctx.deliveries.size()) continue;
      const NodeId node = ctx.deliveries[merge_cursor_[s]].node;
      if (best == shard_ctx_.size() || node < best_node) {
        best = s;
        best_node = node;
      }
    }
    if (best == shard_ctx_.size()) break;
    const ShardDelivery& rec = shard_ctx_[best].deliveries[merge_cursor_[best]];
    ++merge_cursor_[best];
    Message& msg = messages_[static_cast<std::size_t>(rec.msg)];
    if (hooks_.tracer != nullptr) {
      trace(TraceEventKind::FlitDelivered, msg.id, rec.eject_vc, kInvalidVc,
            rec.seq);
    }
    if (rec.tail) {
      complete_delivery(msg, vcs_[static_cast<std::size_t>(rec.eject_vc)]);
    }
  }
}

// --- route -----------------------------------------------------------------

void Network::route_phase_sharded() {
  pool_->run([this](std::size_t s) { route_shard(shard_ctx_[s]); });
  commit_route();
}

void Network::route_shard(ShardCtx& ctx) {
  ctx.grants.clear();
  ctx.injected = 0;
  ctx.failures.clear();
  ctx.trace_buf.clear();

  // Injection grants for this shard's nodes (src_active is exact).
  for (std::int32_t node = ctx.src_active.first(); node != -1;
       node = ctx.src_active.next_after(node)) {
    route_grants_sharded(node, ctx);
  }

  // Retry every unrouted header whose current router this shard owns,
  // walking the globally rotated order so the scan positions — the order the
  // 1-shard run processes and re-files failures — are shard-independent.
  const std::size_t count = pending_.size();
  const std::size_t offset =
      count == 0 ? 0 : static_cast<std::size_t>(now_) % count;
  for (std::size_t i = 0; i < count; ++i) {
    const VcId head_vc = pending_[(offset + i) % count];
    const NodeId here =
        phys(vcs_[static_cast<std::size_t>(head_vc)].channel).dst;
    if (shard_of_node(here) != ctx.shard) continue;
    if (!try_route_header_sharded(head_vc, static_cast<std::uint32_t>(i),
                                  ctx)) {
      ShardRouteFailure failure;
      failure.scan_index = static_cast<std::uint32_t>(i);
      failure.head_vc = head_vc;
      ctx.failures.push_back(failure);
    }
  }
}

void Network::route_grants_sharded(NodeId node, ShardCtx& ctx) {
  auto& queue = source_queues_[static_cast<std::size_t>(node)];
  if (queue.empty()) return;
  const PhysChannel& pc =
      phys_[static_cast<std::size_t>(injection_channel(node))];
  for (int i = 0; i < pc.num_vcs && !queue.empty(); ++i) {
    VcState& vc = vcs_[static_cast<std::size_t>(pc.first_vc + i)];
    if (!vc.is_free()) continue;
    Message& msg = messages_[static_cast<std::size_t>(queue.front())];
    queue.pop_front();
    vc.owner = msg.id;
    vc.route_in = kInvalidVc;  // fed directly by the source
    msg.held.push_back(vc.id);
    ++ctx.epoch;  // a new ownership chain enters the CWG
    msg.status = MessageStatus::InFlight;
    msg.injected = now_;
    ctx.grants.push_back(msg.id);  // active_ membership applied at commit
    ++ctx.injected;
    ctx.chan_active.insert(pc.id);  // injection channel has source flits
    if (hooks_.tracer != nullptr) {
      const auto key = static_cast<std::uint64_t>(node);
      trace_sharded(ctx, key, TraceEventKind::VcAllocated, msg.id, vc.id);
      trace_sharded(ctx, key, TraceEventKind::MessageInjected, msg.id, vc.id,
                    kInvalidVc, static_cast<std::int32_t>(class_index(msg.cls)));
    }
  }
  if (queue.empty()) {
    ctx.src_active.erase(node);
  } else if (hooks_.heatmap != nullptr) {
    // A still-waiting head after the grant pass is an injection stall.
    // Per-node counter slot: safe to bump from the owning shard's worker.
    hooks_.heatmap->on_injection_stall(node);
  }
}

bool Network::try_route_header_sharded(VcId head_vc, std::uint32_t scan_index,
                                       ShardCtx& ctx) {
  VcState& v = vcs_[static_cast<std::size_t>(head_vc)];
  assert(v.owner != kInvalidMessage && v.route_out == kInvalidVc);
  assert(!v.buffer.empty() && v.buffer.front().is_head());
  Message& msg = messages_[static_cast<std::size_t>(v.owner)];
  const NodeId here = phys(v.channel).dst;
  const std::uint64_t key = kRetryKeyBase + scan_index;

  ctx.scratch_channels.clear();
  const bool ejecting = (here == msg.dst);
  if (ejecting) {
    ctx.scratch_channels.push_back(ejection_channel(here));
  } else {
    routing_->candidate_channels(*this, msg, here, v.id, ctx.scratch_channels);
    assert(!ctx.scratch_channels.empty());
    // Selection draws from a per-(message, cycle) hash stream: the serial
    // engine's shared generator encodes the serial visit order in its draw
    // sequence, which no parallel schedule can reproduce. This stream is a
    // pure function of (seed, message, cycle), so every shard count agrees.
    Pcg32 rng(config_.seed ^ (0x9e3779b97f4a7c15ULL *
                              (static_cast<std::uint64_t>(msg.id) + 1)),
              static_cast<std::uint64_t>(now_));
    selection_->order(*this, msg, v.id, ctx.scratch_channels, rng);
  }

  ctx.scratch_vcs.clear();
  const bool high_first = routing_->prefer_high_vc_indices();
  for (const ChannelId ch : ctx.scratch_channels) {
    const PhysChannel& pc = phys(ch);
    for (int j = 0; j < pc.num_vcs; ++j) {
      const int idx = high_first ? pc.num_vcs - 1 - j : j;
      if (pc.kind == ChannelKind::Network &&
          !routing_->vc_allowed(*this, msg, ch, idx, v.id)) {
        continue;
      }
      ctx.scratch_vcs.push_back(pc.first_vc + idx);
    }
  }
  assert(!ctx.scratch_vcs.empty());

  for (const VcId candidate : ctx.scratch_vcs) {
    VcState& w = vcs_[static_cast<std::size_t>(candidate)];
    if (w.is_free()) {
      acquire_vc_sharded(msg, v, w, key, ctx);
      return true;
    }
  }

  const bool newly_blocked = !msg.blocked;
  if (newly_blocked || msg.request_set != ctx.scratch_vcs) ++ctx.epoch;
  if (newly_blocked) {
    msg.blocked = true;
    msg.blocked_since = now_;
  }
  if (hooks_.tracer != nullptr) {
    ctx.scratch_old_requests.assign(msg.request_set.begin(),
                                    msg.request_set.end());
    msg.request_set.assign(ctx.scratch_vcs.begin(), ctx.scratch_vcs.end());
    if (newly_blocked) {
      trace_sharded(ctx, key, TraceEventKind::MessageBlocked, msg.id, head_vc,
                    kInvalidVc,
                    static_cast<std::int32_t>(msg.request_set.size()));
    }
    // Dashed-arc delta, same quadratic diff as the serial path.
    for (const VcId want : msg.request_set) {
      if (std::find(ctx.scratch_old_requests.begin(),
                    ctx.scratch_old_requests.end(),
                    want) == ctx.scratch_old_requests.end()) {
        trace_sharded(ctx, key, TraceEventKind::CwgArcAdded, msg.id, want,
                      head_vc);
      }
    }
    for (const VcId had : ctx.scratch_old_requests) {
      if (std::find(msg.request_set.begin(), msg.request_set.end(), had) ==
          msg.request_set.end()) {
        trace_sharded(ctx, key, TraceEventKind::CwgArcRemoved, msg.id, had,
                      head_vc);
      }
    }
  } else {
    msg.request_set.assign(ctx.scratch_vcs.begin(), ctx.scratch_vcs.end());
  }
  return false;
}

void Network::acquire_vc_sharded(Message& msg, VcState& from, VcState& target,
                                 std::uint64_t trace_key, ShardCtx& ctx) {
  assert(target.is_free() && target.buffer.empty());
  assert(!phys(target.channel).faulted);
  if (hooks_.tracer != nullptr) {
    for (const VcId want : msg.request_set) {
      trace_sharded(ctx, trace_key, TraceEventKind::CwgArcRemoved, msg.id, want,
                    from.id);
    }
    trace_sharded(ctx, trace_key, TraceEventKind::VcAllocated, msg.id,
                  target.id, from.id);
    if (msg.blocked) {
      trace_sharded(ctx, trace_key, TraceEventKind::MessageUnblocked, msg.id,
                    target.id, from.id,
                    static_cast<std::int32_t>(now_ - msg.blocked_since));
    }
  }
  target.owner = msg.id;
  target.route_in = from.id;
  from.route_out = target.id;
  msg.held.push_back(target.id);
  ++ctx.epoch;  // new solid arc; the unblocked message drops its dashed arcs
  // The target channel is out of the header's router, so it belongs to this
  // shard: wake it directly.
  assert(shard_of_channel(target.channel) == ctx.shard);
  ctx.chan_active.insert(target.channel);

  const PhysChannel& pc = phys(target.channel);
  if (pc.kind == ChannelKind::Network) {
    ++msg.hops;
    if (!topo_->hop_is_minimal(topo_->channel(pc.id), msg.dst)) ++msg.misroutes;
  }
  msg.blocked = false;
  msg.request_set.clear();
}

void Network::commit_route() {
  // Injection grants join the active list in source-node order (the serial
  // grant sweep's order); each shard's grant list is already node-ordered.
  std::fill(merge_cursor_.begin(), merge_cursor_.end(), 0);
  for (;;) {
    std::size_t best = shard_ctx_.size();
    NodeId best_node = kInvalidNode;
    for (std::size_t s = 0; s < shard_ctx_.size(); ++s) {
      const ShardCtx& ctx = shard_ctx_[s];
      if (merge_cursor_[s] >= ctx.grants.size()) continue;
      const NodeId node =
          messages_[static_cast<std::size_t>(ctx.grants[merge_cursor_[s]])].src;
      if (best == shard_ctx_.size() || node < best_node) {
        best = s;
        best_node = node;
      }
    }
    if (best == shard_ctx_.size()) break;
    const MessageId id = shard_ctx_[best].grants[merge_cursor_[best]];
    ++merge_cursor_[best];
    active_pos_[static_cast<std::size_t>(id)] =
        static_cast<std::int32_t>(active_.size());
    active_.push_back(id);
  }

  // Rebuild pending_ from the failures, in rotated-scan order.
  scratch_pending_.clear();
  blocked_count_ = 0;
  std::fill(merge_cursor_.begin(), merge_cursor_.end(), 0);
  for (;;) {
    std::size_t best = shard_ctx_.size();
    std::uint32_t best_index = 0;
    for (std::size_t s = 0; s < shard_ctx_.size(); ++s) {
      const ShardCtx& ctx = shard_ctx_[s];
      if (merge_cursor_[s] >= ctx.failures.size()) continue;
      const std::uint32_t index = ctx.failures[merge_cursor_[s]].scan_index;
      if (best == shard_ctx_.size() || index < best_index) {
        best = s;
        best_index = index;
      }
    }
    if (best == shard_ctx_.size()) break;
    scratch_pending_.push_back(
        shard_ctx_[best].failures[merge_cursor_[best]].head_vc);
    ++merge_cursor_[best];
    ++blocked_count_;
  }
  pending_.swap(scratch_pending_);

  for (const ShardCtx& ctx : shard_ctx_) counters_.injected += ctx.injected;
  flush_sharded_traces();
}

// --- transmit --------------------------------------------------------------

void Network::transmit_phase_sharded() {
  pool_->run([this](std::size_t s) { transmit_decide_shard(shard_ctx_[s]); });
  pool_->run([this](std::size_t s) { transmit_pop_shard(shard_ctx_[s]); });
  pool_->run([this](std::size_t s) { transmit_push_shard(shard_ctx_[s]); });
  commit_transmit();
}

void Network::transmit_decide_shard(ShardCtx& ctx) {
  ctx.moves.clear();
  ctx.pending_adds.clear();
  ctx.wake_outbox.clear();
  ctx.trace_buf.clear();
  // Read-only against phase-start state (the only mutation is descheduling
  // our own channels, which touches no VC). Every decision — including the
  // round-robin winner and the deschedule verdict — is therefore a pure
  // function of committed state, independent of shard count and of other
  // shards' concurrent decisions.
  for (std::int32_t ch = ctx.chan_active.first(); ch != -1;
       ch = ctx.chan_active.next_after(ch)) {
    const PhysChannel& pc = phys_[static_cast<std::size_t>(ch)];
    bool moved = false;
    if (pc.kind == ChannelKind::Injection) {
      for (int j = 0; j < pc.num_vcs; ++j) {
        int idx = pc.rr_cursor + j;
        if (idx >= pc.num_vcs) idx -= pc.num_vcs;
        const VcState& w = vcs_[static_cast<std::size_t>(pc.first_vc + idx)];
        if (w.is_free() || w.buffer.full()) continue;
        const Message& msg = messages_[static_cast<std::size_t>(w.owner)];
        if (msg.flits_sent >= msg.length) continue;
        ShardMove move;
        move.channel = pc.id;
        move.dst_vc = w.id;
        move.upstream = kInvalidVc;
        move.rr_index = idx;
        ctx.moves.push_back(move);
        moved = true;
        break;
      }
    } else {
      for (int j = 0; j < pc.num_vcs; ++j) {
        int idx = pc.rr_cursor + j;
        if (idx >= pc.num_vcs) idx -= pc.num_vcs;
        const VcState& w = vcs_[static_cast<std::size_t>(pc.first_vc + idx)];
        if (w.is_free() || w.route_in == kInvalidVc || w.buffer.full()) {
          continue;
        }
        const VcState& u = vcs_[static_cast<std::size_t>(w.route_in)];
        if (u.buffer.empty() || u.buffer.front().arrived >= now_) continue;
        ShardMove move;
        move.channel = pc.id;
        move.dst_vc = w.id;
        move.upstream = u.id;
        move.rr_index = idx;
        ctx.moves.push_back(move);
        moved = true;
        break;
      }
    }
    if (!moved && !transmit_work_possible(pc)) ctx.chan_active.erase(ch);
  }
}

void Network::transmit_pop_shard(ShardCtx& ctx) {
  // Each VC has exactly one downstream mover (route_out is unique), so these
  // pops — possibly of other shards' VCs — never collide; pushes wait for
  // the next barrier so no FlitFifo sees a pop and a push concurrently.
  for (ShardMove& move : ctx.moves) {
    if (move.upstream == kInvalidVc) continue;
    VcState& u = vcs_[static_cast<std::size_t>(move.upstream)];
    move.flit = u.buffer.pop();
    assert(move.flit.message ==
           vcs_[static_cast<std::size_t>(move.dst_vc)].owner);
  }
}

void Network::transmit_push_shard(ShardCtx& ctx) {
  for (const ShardMove& move : ctx.moves) {
    PhysChannel& pc = phys_[static_cast<std::size_t>(move.channel)];
    VcState& w = vcs_[static_cast<std::size_t>(move.dst_vc)];
    const auto key = static_cast<std::uint64_t>(pc.id);
    if (pc.kind == ChannelKind::Injection) {
      Message& msg = messages_[static_cast<std::size_t>(w.owner)];
      Flit flit;
      flit.message = msg.id;
      flit.seq = msg.flits_sent++;
      flit.arrived = now_;
      w.buffer.push(flit);
      if (flit.is_head()) {
        ShardPendingAdd add;
        add.channel = pc.id;
        add.vc = w.id;
        ctx.pending_adds.push_back(add);
      }
      if (w.route_out != kInvalidVc) {
        // A routed head is already downstream; its channel leaves this node,
        // so it is ours to wake directly.
        ctx.chan_active.insert(
            vcs_[static_cast<std::size_t>(w.route_out)].channel);
      }
      if (hooks_.heatmap != nullptr) hooks_.heatmap->on_traversal(pc.id, w.id);
      if (hooks_.tracer != nullptr) {
        trace_sharded(ctx, key, TraceEventKind::FlitInjected, msg.id, w.id,
                      kInvalidVc, flit.seq);
      }
      pc.rr_cursor = move.rr_index + 1 == pc.num_vcs ? 0 : move.rr_index + 1;
      continue;
    }

    Flit flit = move.flit;
    VcState& u = vcs_[static_cast<std::size_t>(move.upstream)];
    Message& msg = messages_[static_cast<std::size_t>(flit.message)];
    // Freed buffer space upstream: wake the feeding channel (often another
    // shard's — route through the outbox).
    if (shard_of_channel(u.channel) == ctx.shard) {
      ctx.chan_active.insert(u.channel);
    } else {
      ctx.wake_outbox.push_back(u.channel);
    }
    const bool tail_left_upstream = flit.is_tail_of(msg.length);
    if (tail_left_upstream) {
      assert(!msg.held.empty() && msg.held.front() == u.id);
      msg.held.erase(msg.held.begin());
      u.release();
      w.route_in = kInvalidVc;  // no further flits arrive from upstream
      ++ctx.epoch;  // oldest solid arc retired, VC ownership vacated
    }
    flit.arrived = now_;
    w.buffer.push(flit);
    if (pc.kind == ChannelKind::Ejection) {
      ctx.eject_active.insert(pc.dst);  // the reception interface has work
    } else if (w.route_out != kInvalidVc) {
      const ChannelId next =
          vcs_[static_cast<std::size_t>(w.route_out)].channel;
      if (shard_of_channel(next) == ctx.shard) {
        ctx.chan_active.insert(next);
      } else {
        ctx.wake_outbox.push_back(next);
      }
    }
    if (hooks_.heatmap != nullptr) hooks_.heatmap->on_traversal(pc.id, w.id);
    if (hooks_.tracer != nullptr) {
      trace_sharded(ctx, key, TraceEventKind::FlitHopped, msg.id, w.id, u.id,
                    flit.seq);
      if (tail_left_upstream) {
        trace_sharded(ctx, key, TraceEventKind::VcFreed, msg.id, u.id);
      }
    }
    if (flit.is_head() && pc.kind != ChannelKind::Ejection) {
      ShardPendingAdd add;
      add.channel = pc.id;
      add.vc = w.id;
      ctx.pending_adds.push_back(add);
    }
    pc.rr_cursor = move.rr_index + 1 == pc.num_vcs ? 0 : move.rr_index + 1;
  }
}

void Network::commit_transmit() {
  // New unrouted heads join pending_ in channel-id order (the serial
  // transmit visit order), after the route phase's rotated rebuild.
  std::fill(merge_cursor_.begin(), merge_cursor_.end(), 0);
  for (;;) {
    std::size_t best = shard_ctx_.size();
    ChannelId best_ch = kInvalidChannel;
    for (std::size_t s = 0; s < shard_ctx_.size(); ++s) {
      const ShardCtx& ctx = shard_ctx_[s];
      if (merge_cursor_[s] >= ctx.pending_adds.size()) continue;
      const ChannelId ch = ctx.pending_adds[merge_cursor_[s]].channel;
      if (best == shard_ctx_.size() || ch < best_ch) {
        best = s;
        best_ch = ch;
      }
    }
    if (best == shard_ctx_.size()) break;
    pending_.push_back(shard_ctx_[best].pending_adds[merge_cursor_[best]].vc);
    ++merge_cursor_[best];
  }

  // Cross-shard wakeups: idempotent set inserts, order irrelevant.
  for (const ShardCtx& ctx : shard_ctx_) {
    for (const ChannelId ch : ctx.wake_outbox) {
      shard_ctx_[static_cast<std::size_t>(shard_of_channel(ch))]
          .chan_active.insert(ch);
    }
  }
  flush_sharded_traces();
}

}  // namespace flexnet
