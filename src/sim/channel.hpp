// Runtime state of physical channels and their virtual channels.
#pragma once

#include "sim/buffer.hpp"
#include "sim/types.hpp"

namespace flexnet {

/// One virtual channel. The buffer models the edge buffer at the channel's
/// downstream end; a VC is exclusively owned by one message from header
/// allocation until the tail flit leaves the buffer (free <=> buffer empty).
struct VcState {
  VcId id = kInvalidVc;
  ChannelId channel = kInvalidChannel;
  int index = 0;  ///< Position within the owning physical channel.

  MessageId owner = kInvalidMessage;
  VcId route_out = kInvalidVc;  ///< Downstream VC the owner forwards into.
  VcId route_in = kInvalidVc;   ///< Upstream VC feeding this one (kInvalidVc
                                ///< when fed directly by the source queue).
  FlitFifo buffer;

  explicit VcState(int buffer_capacity) : buffer(buffer_capacity) {}

  [[nodiscard]] bool is_free() const noexcept { return owner == kInvalidMessage; }

  void release() noexcept {
    owner = kInvalidMessage;
    route_out = kInvalidVc;
    route_in = kInvalidVc;
  }
};

/// One physical channel with its contiguous block of VCs and the round-robin
/// pointer used to arbitrate the single flit it can transmit per cycle.
struct PhysChannel {
  ChannelId id = kInvalidChannel;
  ChannelKind kind = ChannelKind::Network;
  NodeId src = kInvalidNode;  ///< Upstream router (or node, for injection).
  NodeId dst = kInvalidNode;  ///< Downstream router (or node, for ejection).
  int dim = -1;               ///< -1 for injection/ejection channels.
  int dir = 0;
  bool is_wrap = false;

  bool faulted = false;  ///< Disabled link; never a routing candidate.

  VcId first_vc = kInvalidVc;
  int num_vcs = 0;
  int rr_cursor = 0;
};

}  // namespace flexnet
