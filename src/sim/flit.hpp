// A flit: the unit of flow control. Flits carry only their message id and
// sequence number; head/tail status is derived from the owning message's
// length, keeping the struct at 16 bytes for cache-friendly buffers.
#pragma once

#include "sim/types.hpp"

namespace flexnet {

struct Flit {
  MessageId message = kInvalidMessage;
  std::int32_t seq = 0;  ///< 0-based position within the message.
  Cycle arrived = -1;    ///< Cycle the flit entered its current buffer; used
                         ///< to enforce at most one hop per cycle.

  [[nodiscard]] constexpr bool is_head() const noexcept { return seq == 0; }
  [[nodiscard]] constexpr bool is_tail_of(std::int32_t message_length) const noexcept {
    return seq == message_length - 1;
  }
  friend constexpr bool operator==(const Flit&, const Flit&) noexcept = default;
};

}  // namespace flexnet
