#include "sim/config.hpp"

#include <stdexcept>
#include <string>

namespace flexnet {

std::string_view to_string(RoutingKind kind) noexcept {
  switch (kind) {
    case RoutingKind::DOR: return "DOR";
    case RoutingKind::TFAR: return "TFAR";
    case RoutingKind::DatelineDOR: return "DatelineDOR";
    case RoutingKind::DuatoTFAR: return "DuatoTFAR";
    case RoutingKind::NegativeFirst: return "NegativeFirst";
    case RoutingKind::TableMin: return "TableMin";
    case RoutingKind::TableUpDown: return "TableUpDown";
  }
  return "?";
}

std::string_view to_string(SelectionKind kind) noexcept {
  switch (kind) {
    case SelectionKind::PreferStraight: return "PreferStraight";
    case SelectionKind::Random: return "Random";
    case SelectionKind::LowestIndex: return "LowestIndex";
  }
  return "?";
}

std::string_view to_string(RecoveryKind kind) noexcept {
  switch (kind) {
    case RecoveryKind::None: return "None";
    case RecoveryKind::RemoveOldest: return "RemoveOldest";
    case RecoveryKind::RemoveNewest: return "RemoveNewest";
    case RecoveryKind::RemoveMostResources: return "RemoveMostResources";
    case RecoveryKind::RemoveRandom: return "RemoveRandom";
  }
  return "?";
}

void SimConfig::validate() const {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("SimConfig: " + what);
  };
  const bool table_routing =
      routing == RoutingKind::TableMin || routing == RoutingKind::TableUpDown;
  switch (topo_kind) {
    case TopoKind::Torus:
      if (topology.k < 2) fail("radix k must be >= 2");
      if (topology.n < 1) fail("dimensions n must be >= 1");
      if (!topology.wrap && !topology.bidirectional) {
        fail("a unidirectional mesh is not connected");
      }
      break;
    case TopoKind::FullMesh:
      if (topo_nodes < 2) fail("full mesh needs topo_nodes >= 2");
      break;
    case TopoKind::Dragonfly:
      if (topo_df_routers < 2) fail("dragonfly needs topo_df_routers >= 2");
      if (topo_df_globals < 1) fail("dragonfly needs topo_df_globals >= 1");
      break;
    case TopoKind::RandomIrregular:
      if (topo_nodes < 2) fail("irregular topology needs topo_nodes >= 2");
      if (topo_degree < 1 || topo_degree >= topo_nodes) {
        fail("irregular degree must be in [1, topo_nodes)");
      }
      break;
    case TopoKind::File:
      if (topo_file.empty()) fail("File topology needs topo_file");
      break;
  }
  if (topo_kind != TopoKind::Torus && !table_routing) {
    fail(std::string(to_string(routing)) +
         " is torus-only; non-torus topologies need TableMin or TableUpDown");
  }
  if (!route_table_file.empty() && !table_routing) {
    fail("route_table_file requires TableMin or TableUpDown routing");
  }
  if (vcs < 1) fail("vcs must be >= 1");
  if (buffer_depth < 1) fail("buffer_depth must be >= 1");
  if (injection_vcs < 1 || ejection_vcs < 1) {
    fail("injection/ejection channels need at least one VC");
  }
  if (message_length < 1) fail("message_length must be >= 1");
  if (short_message_fraction < 0.0 || short_message_fraction > 1.0) {
    fail("short_message_fraction must be within [0, 1]");
  }
  if (short_message_fraction > 0.0 && short_message_length < 1) {
    fail("short_message_length must be >= 1");
  }
  if (max_misroutes < 0) fail("max_misroutes must be >= 0");
  if (routing == RoutingKind::DatelineDOR) {
    if (vcs < 2) fail("DatelineDOR needs at least 2 VCs");
    if (!topology.wrap) fail("DatelineDOR targets tori");
  }
  if (routing == RoutingKind::DuatoTFAR && vcs < 3) {
    fail("DuatoTFAR needs at least 3 VCs (escape pair + adaptive)");
  }
  if (routing == RoutingKind::NegativeFirst) {
    if (topology.wrap) fail("NegativeFirst (turn model) targets meshes");
  }
  if (routing == RoutingKind::DOR || routing == RoutingKind::DatelineDOR ||
      table_routing) {
    if (max_misroutes != 0) fail("misrouting requires an adaptive algorithm");
  }
  if (link_fault_fraction < 0.0 || link_fault_fraction >= 0.5) {
    fail("link_fault_fraction must be within [0, 0.5)");
  }
  if (link_fault_fraction > 0.0 && routing != RoutingKind::TFAR) {
    fail("only TFAR can route around faulted links");
  }
}

}  // namespace flexnet
