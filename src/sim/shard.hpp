// Per-shard state for the parallel stepping engine (DESIGN.md §3j).
//
// Each worker thread owns one ShardCtx: the shard's slice of the three
// active sets, its own arc-epoch term, reusable scratch buffers, and the
// per-cycle result buffers that the main thread folds into global state at
// each phase commit. Workers write only (a) simulation state owned by their
// shard (their nodes' queues/ejection VCs, their channels' VCs and cursors),
// (b) exclusively-held cross-shard cells (an upstream VC being popped by its
// unique downstream mover), and (c) their own ShardCtx. Everything ordered —
// the active_ list, the pending rotation, the trace stream, counters — is
// buffered here with a canonical sort key and committed single-threaded, so
// an N-shard run is byte-identical to the 1-shard run.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/active.hpp"
#include "sim/flit.hpp"
#include "sim/types.hpp"
#include "trace/trace.hpp"

namespace flexnet {

/// One flit drained from an ejection VC this cycle (deliver phase). At most
/// one per node per cycle, produced in ascending node order within a shard;
/// the commit merges shards by node id and runs tail completions in that
/// order (exactly the serial sweep's order).
struct ShardDelivery {
  NodeId node = kInvalidNode;
  MessageId msg = kInvalidMessage;
  VcId eject_vc = kInvalidVc;
  std::int32_t seq = 0;   ///< Flit sequence number (trace payload).
  bool tail = false;      ///< Completes the message at commit.
};

/// A route-phase allocation failure: the header stays pending. Tagged with
/// its position in this cycle's rotated scan so the commit can rebuild
/// pending_ in exactly the order the serial walk would have.
struct ShardRouteFailure {
  std::uint32_t scan_index = 0;
  VcId head_vc = kInvalidVc;
};

/// A transmit move decided in sub-phase T1 against cycle-start state.
/// `upstream == kInvalidVc` marks an injection move (the flit is synthesized
/// from the source in T3); otherwise T2 pops `flit` from `upstream`.
struct ShardMove {
  ChannelId channel = kInvalidChannel;
  VcId dst_vc = kInvalidVc;
  VcId upstream = kInvalidVc;
  int rr_index = 0;  ///< VC index chosen by the round-robin scan.
  Flit flit{};
};

/// A buffered trace event plus its canonical within-phase sort key
/// (component id or scan position). Shard buffers are key-sorted by
/// construction; the commit k-way merges them.
struct ShardTraceRecord {
  std::uint64_t key = 0;
  TraceEvent event{};
};

/// A head flit that entered a new VC this cycle and must join pending_.
/// Keyed by channel id (the serial transmit visit order; at most one per
/// channel per cycle).
struct ShardPendingAdd {
  ChannelId channel = kInvalidChannel;
  VcId vc = kInvalidVc;
};

struct ShardCtx {
  std::int32_t shard = 0;

  // The shard's slice of the scheduler. Full-capacity bitmaps holding only
  // this shard's component ids (a 32k-node set is 4 KiB — the sparse scan
  // skips foreign regions word-wise).
  ActiveSet src_active;
  ActiveSet eject_active;
  ActiveSet chan_active;

  /// This shard's term of the composed arc epoch (monotonic, never reset
  /// while sharding is enabled; folded into the base counter on reshard).
  std::uint64_t epoch = 0;

  // --- per-cycle result buffers (cleared each phase) -----------------------
  std::vector<ShardDelivery> deliveries;
  std::int64_t flits_delivered = 0;

  std::vector<MessageId> grants;  ///< Injection grants, node-then-queue order.
  std::int64_t injected = 0;
  std::vector<ShardRouteFailure> failures;

  std::vector<ShardMove> moves;
  std::vector<ShardPendingAdd> pending_adds;
  /// Cross-shard scheduler wakeups (transmit only: route/deliver wakes are
  /// provably shard-local). Drained into the owning shards' chan_active at
  /// commit; insertion is idempotent so order is irrelevant.
  std::vector<ChannelId> wake_outbox;

  std::vector<ShardTraceRecord> trace_buf;

  // --- reusable scratch (mirrors Network's serial scratch members) ---------
  std::vector<ChannelId> scratch_channels;
  std::vector<VcId> scratch_vcs;
  std::vector<VcId> scratch_old_requests;

  void clear_cycle_buffers() {
    deliveries.clear();
    flits_delivered = 0;
    grants.clear();
    injected = 0;
    failures.clear();
    moves.clear();
    pending_adds.clear();
    wake_outbox.clear();
    trace_buf.clear();
  }
};

}  // namespace flexnet
