#include "sim/active.hpp"

#include <bit>

namespace flexnet {

void ActiveSet::reset(std::size_t capacity) {
  capacity_ = capacity;
  level0_.assign((capacity + 63) / 64, 0);
  level1_.assign((level0_.size() + 63) / 64, 0);
  count_ = 0;
}

void ActiveSet::clear() {
  std::fill(level0_.begin(), level0_.end(), 0);
  std::fill(level1_.begin(), level1_.end(), 0);
  count_ = 0;
}

std::int32_t ActiveSet::next_after(std::int32_t id) const noexcept {
  if (count_ == 0) return -1;
  return scan_from(static_cast<std::size_t>(id) + 1);
}

std::int32_t ActiveSet::scan_from(std::size_t from) const noexcept {
  if (from >= capacity_) return -1;
  std::size_t word = from >> 6;
  if (const std::uint64_t w = level0_[word] & (~0ull << (from & 63)); w != 0) {
    return static_cast<std::int32_t>((word << 6) |
                                     static_cast<std::size_t>(std::countr_zero(w)));
  }
  // The rest of `word` is clear: continue at the summary level from word+1.
  ++word;
  std::size_t sword = word >> 6;
  if (sword >= level1_.size()) return -1;
  std::uint64_t s = level1_[sword];
  if ((word & 63) != 0) s &= ~0ull << (word & 63);
  while (true) {
    if (s != 0) {
      const std::size_t w2 =
          (sword << 6) | static_cast<std::size_t>(std::countr_zero(s));
      const std::uint64_t bits = level0_[w2];
      return static_cast<std::int32_t>(
          (w2 << 6) | static_cast<std::size_t>(std::countr_zero(bits)));
    }
    if (++sword >= level1_.size()) return -1;
    s = level1_[sword];
  }
}

}  // namespace flexnet
