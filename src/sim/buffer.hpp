// Fixed-capacity flit FIFO backing each virtual channel's edge buffer.
#pragma once

#include <vector>

#include "sim/flit.hpp"

namespace flexnet {

class BinReader;
class BinWriter;

class FlitFifo {
 public:
  explicit FlitFifo(int capacity);

  [[nodiscard]] int capacity() const noexcept { return static_cast<int>(slots_.size()); }
  [[nodiscard]] int size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] bool full() const noexcept { return count_ == capacity(); }

  /// Precondition: !full().
  void push(Flit flit);
  /// Precondition: !empty().
  Flit pop();
  /// Precondition: !empty().
  [[nodiscard]] const Flit& front() const;
  /// Flit at offset `i` from the front; precondition i < size().
  [[nodiscard]] const Flit& at(int i) const;

  void clear() noexcept { head_ = count_ = 0; }

  /// Snapshot hooks: the logical front-to-back flit sequence (head position
  /// is an internal detail, so a round trip is canonicalizing). restore()
  /// throws std::runtime_error when the stored count exceeds capacity.
  void save_state(BinWriter& out) const;
  void restore_state(BinReader& in);

 private:
  std::vector<Flit> slots_;
  int head_ = 0;
  int count_ = 0;
};

}  // namespace flexnet
