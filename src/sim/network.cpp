#include "sim/network.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "obs/obs.hpp"
#include "routing/routing.hpp"
#include "routing/selection.hpp"
#include "telemetry/heatmap.hpp"
#include "telemetry/profiler.hpp"
#include "topo/factory.hpp"
#include "util/binio.hpp"
#include "util/parallel.hpp"  // WorkerPool completeness for ~Network()

namespace flexnet {

namespace {
[[noreturn]] void invariant_failure(const std::string& what) {
  throw std::logic_error("Network invariant violated: " + what);
}

[[noreturn]] void snapshot_mismatch(const std::string& what) {
  throw std::runtime_error("snapshot does not match this network: " + what);
}

void save_rng(BinWriter& out, const Pcg32& rng) {
  const Pcg32::State s = rng.save();
  out.u64(s.state);
  out.u64(s.inc);
  out.u64(s.draws);
}

void restore_rng(BinReader& in, Pcg32& rng) {
  Pcg32::State s;
  s.state = in.u64();
  s.inc = in.u64();
  s.draws = in.u64();
  rng.restore(s);
}

void save_id_vector(BinWriter& out, const std::vector<VcId>& ids) {
  out.u64(ids.size());
  for (const VcId id : ids) out.i32(id);
}

void restore_id_vector(BinReader& in, std::vector<VcId>& ids,
                       std::size_t limit) {
  const std::uint64_t count = in.u64();
  if (count > limit) snapshot_mismatch("VC id list longer than the VC table");
  ids.clear();
  ids.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) ids.push_back(in.i32());
}
}  // namespace

void Network::trace(TraceEventKind kind, MessageId msg, VcId vc, VcId vc2,
                    std::int32_t arg, NodeId node) {
  TraceEvent event;
  event.cycle = now_;
  event.kind = kind;
  event.message = msg;
  event.vc = vc;
  event.vc2 = vc2;
  event.arg = arg;
  event.node = (node != kInvalidNode || vc == kInvalidVc)
                   ? node
                   : phys(vcs_[static_cast<std::size_t>(vc)].channel).dst;
  hooks_.tracer->emit(event);
}

// Diffs the previous request set (stashed in scratch_old_requests_) against
// the new one and emits the CWG dashed-arc delta. Request sets are tiny (one
// entry per candidate VC), so the quadratic scan is cheaper than sorting.
void Network::trace_request_set_change(const Message& msg, VcId head_vc) {
  for (const VcId want : msg.request_set) {
    if (std::find(scratch_old_requests_.begin(), scratch_old_requests_.end(),
                  want) == scratch_old_requests_.end()) {
      trace(TraceEventKind::CwgArcAdded, msg.id, want, head_vc);
    }
  }
  for (const VcId had : scratch_old_requests_) {
    if (std::find(msg.request_set.begin(), msg.request_set.end(), had) ==
        msg.request_set.end()) {
      trace(TraceEventKind::CwgArcRemoved, msg.id, had, head_vc);
    }
  }
}

Network::Network(const SimConfig& config, NetworkDeps deps)
    : config_(config),
      topo_(deps.topology ? std::move(deps.topology) : make_topology(config)),
      routing_(std::move(deps.routing)),
      selection_(std::move(deps.selection)),
      rng_(splitmix64(config.seed), 0x6e657477 /* "netw" */) {
  config_.validate();
  if (!topo_) throw std::invalid_argument("Network requires a topology");
  if (!routing_ || !selection_) {
    throw std::invalid_argument("Network requires routing and selection policies");
  }

  const NodeId nodes = topo_->num_nodes();

  // Physical channels: the topology's network links keep their ids; one
  // injection and one ejection channel per node follow. A link of width w
  // carries w times the configured VCs (width models bundled physical lanes).
  phys_.reserve(topo_->channels().size() + 2 * static_cast<std::size_t>(nodes));
  for (const ChannelDesc& link : topo_->channels()) {
    PhysChannel pc;
    pc.id = link.id;
    pc.kind = ChannelKind::Network;
    pc.src = link.src;
    pc.dst = link.dst;
    pc.dim = link.dim;
    pc.dir = link.dir;
    pc.is_wrap = link.is_wrap;
    pc.num_vcs = config_.vcs * link.width;
    phys_.push_back(pc);
  }
  first_injection_ = static_cast<ChannelId>(phys_.size());
  for (NodeId node = 0; node < nodes; ++node) {
    PhysChannel pc;
    pc.id = static_cast<ChannelId>(phys_.size());
    pc.kind = ChannelKind::Injection;
    pc.src = node;
    pc.dst = node;
    pc.num_vcs = config_.injection_vcs;
    phys_.push_back(pc);
  }
  first_ejection_ = static_cast<ChannelId>(phys_.size());
  for (NodeId node = 0; node < nodes; ++node) {
    PhysChannel pc;
    pc.id = static_cast<ChannelId>(phys_.size());
    pc.kind = ChannelKind::Ejection;
    pc.src = node;
    pc.dst = node;
    pc.num_vcs = config_.ejection_vcs;
    phys_.push_back(pc);
  }

  std::size_t total_vcs = 0;
  for (PhysChannel& pc : phys_) {
    pc.first_vc = static_cast<VcId>(total_vcs);
    total_vcs += static_cast<std::size_t>(pc.num_vcs);
  }
  vcs_.reserve(total_vcs);
  for (const PhysChannel& pc : phys_) {
    for (int i = 0; i < pc.num_vcs; ++i) {
      VcState vc(config_.buffer_depth);
      vc.id = static_cast<VcId>(vcs_.size());
      vc.channel = pc.id;
      vc.index = i;
      vcs_.push_back(std::move(vc));
    }
  }

  source_queues_.resize(static_cast<std::size_t>(nodes));

  src_active_.reset(static_cast<std::size_t>(nodes));
  eject_active_.reset(static_cast<std::size_t>(nodes));
  chan_active_.reset(phys_.size());

  if (config_.link_fault_fraction > 0.0) inject_link_faults();

  // Last: table-based algorithms build (or load) their routing tables against
  // the fully constructed network.
  routing_->attach(*this);
}

bool Network::network_strongly_connected() const {
  const NodeId nodes = topo_->num_nodes();
  // One forward and one backward reachability sweep from node 0 over the
  // surviving network channels.
  for (const bool forward : {true, false}) {
    std::vector<bool> seen(static_cast<std::size_t>(nodes), false);
    std::vector<NodeId> frontier{0};
    seen[0] = true;
    NodeId reached = 1;
    while (!frontier.empty()) {
      const NodeId at = frontier.back();
      frontier.pop_back();
      for (std::size_t c = 0; c < num_network_channels(); ++c) {
        const PhysChannel& pc = phys_[c];
        if (pc.faulted) continue;
        const NodeId from = forward ? pc.src : pc.dst;
        const NodeId to = forward ? pc.dst : pc.src;
        if (from != at || seen[static_cast<std::size_t>(to)]) continue;
        seen[static_cast<std::size_t>(to)] = true;
        ++reached;
        frontier.push_back(to);
      }
    }
    if (reached != nodes) return false;
  }
  return true;
}

void Network::inject_link_faults() {
  const auto network_channels = num_network_channels();
  const int target = static_cast<int>(config_.link_fault_fraction *
                                      static_cast<double>(network_channels));
  if (target == 0) return;

  std::vector<ChannelId> order(network_channels);
  for (std::size_t i = 0; i < network_channels; ++i) {
    order[i] = static_cast<ChannelId>(i);
  }
  Pcg32 rng(splitmix64(config_.seed), 0x6661756c /* "faul" */);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.bounded(static_cast<std::uint32_t>(i))]);
  }

  // Greedily fault channels, keeping the survivors strongly connected so
  // every destination stays reachable.
  for (const ChannelId ch : order) {
    if (faulted_ >= target) break;
    PhysChannel& pc = phys_[static_cast<std::size_t>(ch)];
    pc.faulted = true;
    if (network_strongly_connected()) {
      ++faulted_;
    } else {
      pc.faulted = false;
    }
  }
  if (faulted_ < target) {
    throw std::invalid_argument(
        "link_fault_fraction too high: network would disconnect");
  }
}

Network::~Network() = default;

ChannelId Network::injection_channel(NodeId node) const noexcept {
  return first_injection_ + node;
}

ChannelId Network::ejection_channel(NodeId node) const noexcept {
  return first_ejection_ + node;
}

MessageId Network::enqueue_message(NodeId src, NodeId dst, std::int32_t length,
                                   MessageClass cls) {
  if (src == dst) throw std::invalid_argument("messages must leave their source");
  if (length < 1) throw std::invalid_argument("message length must be >= 1");
  const auto id = static_cast<MessageId>(messages_.size());
  Message msg;
  msg.id = id;
  msg.src = src;
  msg.dst = dst;
  msg.length = length;
  msg.cls = cls;
  msg.created = now_;
  messages_.push_back(std::move(msg));
  active_pos_.push_back(-1);
  source_queues_[static_cast<std::size_t>(src)].push_back(id);
  sched_insert_src(src);  // schedule the node's next grant pass
  ++counters_.generated;
  ++counters_.class_generated[class_index(cls)];
  return id;
}

std::int64_t Network::queued_message_count() const noexcept {
  std::int64_t total = 0;
  for (const auto& q : source_queues_) total += static_cast<std::int64_t>(q.size());
  return total;
}

double Network::capacity_flits_per_node(double avg_distance) const noexcept {
  return static_cast<double>(num_network_channels()) /
         (static_cast<double>(topo_->num_nodes()) * avg_distance);
}

void Network::step() {
  if (sharded_) {
    step_sharded();
    ++now_;
    return;
  }
  if (hooks_.profiler == nullptr) {
    deliver_phase();
    route_phase();
    transmit_phase();
  } else {
    {
      ScopedPhase timer(hooks_.profiler, SimPhase::Deliver);
      deliver_phase();
    }
    {
      ScopedPhase timer(hooks_.profiler, SimPhase::Route);
      route_phase();
    }
    {
      ScopedPhase timer(hooks_.profiler, SimPhase::Transmit);
      transmit_phase();
    }
  }
  ++now_;
}

// Each phase enumerates either every component (dense oracle) or only the
// scheduled ones (event-driven default); the per-component workers are
// shared, so the two paths are the same code acting on the same state in the
// same ascending id order. ActiveSet's live-scan semantics make the orders
// coincide exactly: a component woken ahead of the cursor is visited this
// sweep (as the dense loop would), one woken behind the cursor stays
// scheduled for the next cycle (the dense loop's earlier visit this cycle
// happened before the enabling event and was a no-op).
void Network::deliver_phase() {
  if (step_dense_) {
    const NodeId nodes = topo_->num_nodes();
    for (NodeId node = 0; node < nodes; ++node) deliver_node(node);
  } else {
    for (std::int32_t node = eject_active_.first(); node != -1;
         node = eject_active_.next_after(node)) {
      deliver_node(node);
    }
  }
}

void Network::deliver_node(NodeId node) {
  PhysChannel& pc = phys_[static_cast<std::size_t>(ejection_channel(node))];
  for (int j = 0; j < pc.num_vcs; ++j) {
    const int idx = (pc.rr_cursor + j) % pc.num_vcs;
    VcState& w = vcs_[static_cast<std::size_t>(pc.first_vc + idx)];
    if (w.buffer.empty() || w.buffer.front().arrived >= now_) continue;
    const Flit flit = w.buffer.pop();
    wake_channel(pc.id);  // freed buffer space: the ejector can pull again
    Message& msg = messages_[static_cast<std::size_t>(flit.message)];
    ++msg.flits_delivered;
    ++counters_.flits_delivered;
    if (hooks_.tracer != nullptr) {
      trace(TraceEventKind::FlitDelivered, msg.id, w.id, kInvalidVc, flit.seq);
    }
    if (flit.is_tail_of(msg.length)) complete_delivery(msg, w);
    pc.rr_cursor = (idx + 1) % pc.num_vcs;
    break;  // one flit per reception channel per cycle
  }
  // Stay scheduled while any flit is buffered (it may merely be too young
  // to deliver this cycle); deschedule once the ejection VCs drain.
  for (int i = 0; i < pc.num_vcs; ++i) {
    if (!vcs_[static_cast<std::size_t>(pc.first_vc + i)].buffer.empty()) return;
  }
  eject_active_.erase(node);
}

void Network::complete_delivery(Message& msg, VcState& eject_vc) {
  assert(msg.held.size() == 1 && msg.held.front() == eject_vc.id);
  eject_vc.release();
  msg.held.clear();
  ++arc_epoch_;  // message leaves the CWG
  msg.status = MessageStatus::Delivered;
  msg.finished = now_;
  ++counters_.delivered;
  counters_.delivered_latency_sum += msg.finished - msg.created;
  counters_.delivered_hops_sum += msg.hops;
  ++counters_.class_delivered[class_index(msg.cls)];
  counters_.class_latency_sum[class_index(msg.cls)] += msg.finished - msg.created;
  if (hooks_.obs != nullptr) {
    hooks_.obs->on_delivery(msg.finished - msg.created, msg.hops, msg.cls);
  }
  if (hooks_.tracer != nullptr) {
    trace(TraceEventKind::VcFreed, msg.id, eject_vc.id);
    trace(TraceEventKind::MessageDelivered, msg.id, eject_vc.id, kInvalidVc,
          static_cast<std::int32_t>(msg.finished - msg.created));
  }
  deactivate(msg);
}

void Network::deactivate(Message& msg) {
  const auto pos = active_pos_[static_cast<std::size_t>(msg.id)];
  assert(pos >= 0 && active_[static_cast<std::size_t>(pos)] == msg.id);
  const MessageId moved = active_.back();
  active_[static_cast<std::size_t>(pos)] = moved;
  active_pos_[static_cast<std::size_t>(moved)] = pos;
  active_.pop_back();
  active_pos_[static_cast<std::size_t>(msg.id)] = -1;
}

void Network::route_phase() {
  blocked_count_ = 0;

  // Grant injection VCs to source-queue heads. src_active_ is exactly the
  // nodes with a non-empty queue, so the event path visits the same nodes
  // the dense path's emptiness check admits.
  if (step_dense_) {
    const NodeId nodes = topo_->num_nodes();
    for (NodeId node = 0; node < nodes; ++node) route_node_grants(node);
  } else {
    for (std::int32_t node = src_active_.first(); node != -1;
         node = src_active_.next_after(node)) {
      route_node_grants(node);
    }
  }

  // Retry every unrouted header (fair rotation across cycles).
  scratch_pending_.clear();
  const std::size_t count = pending_.size();
  const std::size_t offset =
      count == 0 ? 0 : static_cast<std::size_t>(now_) % count;
  for (std::size_t i = 0; i < count; ++i) {
    const VcId head_vc = pending_[(offset + i) % count];
    if (!try_route_header(head_vc)) {
      scratch_pending_.push_back(head_vc);
      ++blocked_count_;
    }
  }
  pending_.swap(scratch_pending_);
}

void Network::route_node_grants(NodeId node) {
  const auto& queue = source_queues_[static_cast<std::size_t>(node)];
  if (queue.empty()) return;
  try_injection_grants(node);
  if (queue.empty()) {
    src_active_.erase(node);
  } else if (hooks_.heatmap != nullptr) {
    // A still-waiting head after the grant pass is an injection stall.
    hooks_.heatmap->on_injection_stall(node);
  }
}

void Network::try_injection_grants(NodeId node) {
  auto& queue = source_queues_[static_cast<std::size_t>(node)];
  const PhysChannel& pc =
      phys_[static_cast<std::size_t>(injection_channel(node))];
  for (int i = 0; i < pc.num_vcs && !queue.empty(); ++i) {
    VcState& vc = vcs_[static_cast<std::size_t>(pc.first_vc + i)];
    if (!vc.is_free()) continue;
    Message& msg = messages_[static_cast<std::size_t>(queue.front())];
    queue.pop_front();
    vc.owner = msg.id;
    vc.route_in = kInvalidVc;  // fed directly by the source
    msg.held.push_back(vc.id);
    ++arc_epoch_;  // a new ownership chain enters the CWG
    msg.status = MessageStatus::InFlight;
    msg.injected = now_;
    active_pos_[static_cast<std::size_t>(msg.id)] =
        static_cast<std::int32_t>(active_.size());
    active_.push_back(msg.id);
    ++counters_.injected;
    wake_channel(pc.id);  // the injection channel now has source flits to push
    if (hooks_.tracer != nullptr) {
      trace(TraceEventKind::VcAllocated, msg.id, vc.id);
      trace(TraceEventKind::MessageInjected, msg.id, vc.id, kInvalidVc,
            static_cast<std::int32_t>(class_index(msg.cls)));
    }
  }
}

bool Network::try_route_header(VcId head_vc) {
  VcState& v = vcs_[static_cast<std::size_t>(head_vc)];
  assert(v.owner != kInvalidMessage && v.route_out == kInvalidVc);
  assert(!v.buffer.empty() && v.buffer.front().is_head());
  Message& msg = messages_[static_cast<std::size_t>(v.owner)];
  const NodeId here = phys(v.channel).dst;

  scratch_channels_.clear();
  const bool ejecting = (here == msg.dst);
  if (ejecting) {
    scratch_channels_.push_back(ejection_channel(here));
  } else {
    routing_->candidate_channels(*this, msg, here, v.id, scratch_channels_);
    assert(!scratch_channels_.empty());
    selection_->order(*this, msg, v.id, scratch_channels_, rng_);
  }

  scratch_vcs_.clear();
  const bool high_first = routing_->prefer_high_vc_indices();
  for (const ChannelId ch : scratch_channels_) {
    const PhysChannel& pc = phys(ch);
    for (int j = 0; j < pc.num_vcs; ++j) {
      const int idx = high_first ? pc.num_vcs - 1 - j : j;
      if (pc.kind == ChannelKind::Network &&
          !routing_->vc_allowed(*this, msg, ch, idx, v.id)) {
        continue;
      }
      scratch_vcs_.push_back(pc.first_vc + idx);
    }
  }
  assert(!scratch_vcs_.empty());

  for (const VcId candidate : scratch_vcs_) {
    VcState& w = vcs_[static_cast<std::size_t>(candidate)];
    if (w.is_free()) {
      acquire_vc(msg, v, w);
      return true;
    }
  }

  const bool newly_blocked = !msg.blocked;
  // Dashed arcs change only when the message first blocks or its recomputed
  // candidate set differs from last cycle's (a stable blocked header re-fails
  // with the same request set and leaves the CWG untouched).
  if (newly_blocked || msg.request_set != scratch_vcs_) ++arc_epoch_;
  if (newly_blocked) {
    msg.blocked = true;
    msg.blocked_since = now_;
  }
  if (hooks_.tracer != nullptr) {
    scratch_old_requests_.assign(msg.request_set.begin(), msg.request_set.end());
    msg.request_set.assign(scratch_vcs_.begin(), scratch_vcs_.end());
    if (newly_blocked) {
      trace(TraceEventKind::MessageBlocked, msg.id, head_vc, kInvalidVc,
            static_cast<std::int32_t>(msg.request_set.size()));
    }
    trace_request_set_change(msg, head_vc);
  } else {
    msg.request_set.assign(scratch_vcs_.begin(), scratch_vcs_.end());
  }
  return false;
}

void Network::acquire_vc(Message& msg, VcState& from, VcState& target) {
  assert(target.is_free() && target.buffer.empty());
  assert(!phys(target.channel).faulted);
  if (hooks_.tracer != nullptr) {
    for (const VcId want : msg.request_set) {
      trace(TraceEventKind::CwgArcRemoved, msg.id, want, from.id);
    }
    trace(TraceEventKind::VcAllocated, msg.id, target.id, from.id);
    if (msg.blocked) {
      trace(TraceEventKind::MessageUnblocked, msg.id, target.id, from.id,
            static_cast<std::int32_t>(now_ - msg.blocked_since));
    }
  }
  target.owner = msg.id;
  target.route_in = from.id;
  from.route_out = target.id;
  msg.held.push_back(target.id);
  ++arc_epoch_;  // new solid arc; the unblocked message drops its dashed arcs
  // The target's channel can start pulling from `from` (which holds at least
  // the header flit that just routed).
  wake_channel(target.channel);

  const PhysChannel& pc = phys(target.channel);
  if (pc.kind == ChannelKind::Network) {
    ++msg.hops;
    if (!topo_->hop_is_minimal(topo_->channel(pc.id), msg.dst)) ++msg.misroutes;
  }
  msg.blocked = false;
  msg.request_set.clear();
}

void Network::transmit_phase() {
  if (step_dense_) {
    for (PhysChannel& pc : phys_) transmit_channel(pc);
  } else {
    for (std::int32_t ch = chan_active_.first(); ch != -1;
         ch = chan_active_.next_after(ch)) {
      transmit_channel(phys_[static_cast<std::size_t>(ch)]);
    }
  }
}

bool Network::transmit_work_possible(const PhysChannel& pc) const {
  if (pc.kind == ChannelKind::Injection) {
    for (int i = 0; i < pc.num_vcs; ++i) {
      const VcState& w = vcs_[static_cast<std::size_t>(pc.first_vc + i)];
      if (w.is_free() || w.buffer.full()) continue;
      if (messages_[static_cast<std::size_t>(w.owner)].flits_sent <
          messages_[static_cast<std::size_t>(w.owner)].length) {
        return true;
      }
    }
    return false;
  }
  for (int i = 0; i < pc.num_vcs; ++i) {
    const VcState& w = vcs_[static_cast<std::size_t>(pc.first_vc + i)];
    if (w.is_free() || w.route_in == kInvalidVc || w.buffer.full()) continue;
    if (!vcs_[static_cast<std::size_t>(w.route_in)].buffer.empty()) return true;
  }
  return false;
}

void Network::transmit_channel(PhysChannel& pc) {
  bool moved = false;
  if (pc.kind == ChannelKind::Injection) {
    for (int j = 0; j < pc.num_vcs; ++j) {
      int idx = pc.rr_cursor + j;
      if (idx >= pc.num_vcs) idx -= pc.num_vcs;
      VcState& w = vcs_[static_cast<std::size_t>(pc.first_vc + idx)];
      if (w.is_free() || w.buffer.full()) continue;
      // w.buffer.full() checked above; also need unsent flits.
      Message& msg = messages_[static_cast<std::size_t>(w.owner)];
      if (msg.flits_sent >= msg.length) continue;
      Flit flit;
      flit.message = msg.id;
      flit.seq = msg.flits_sent++;
      flit.arrived = now_;
      w.buffer.push(flit);
      if (flit.is_head()) pending_.push_back(w.id);
      if (w.route_out != kInvalidVc) {
        // A routed head is already downstream; feed its channel.
        wake_channel(vcs_[static_cast<std::size_t>(w.route_out)].channel);
      }
      if (hooks_.heatmap != nullptr) hooks_.heatmap->on_traversal(pc.id, w.id);
      if (hooks_.tracer != nullptr) {
        trace(TraceEventKind::FlitInjected, msg.id, w.id, kInvalidVc,
              flit.seq);
      }
      pc.rr_cursor = idx + 1 == pc.num_vcs ? 0 : idx + 1;
      moved = true;
      break;
    }
    // A channel that just moved a flit stays scheduled (it is revisited and
    // re-checked next cycle anyway); only a fruitless visit pays the full
    // work scan to decide whether to deschedule.
    if (!moved && !transmit_work_possible(pc)) chan_active_.erase(pc.id);
    return;
  }

  // Network and ejection channels pull from the feeding upstream VC.
  for (int j = 0; j < pc.num_vcs; ++j) {
    int idx = pc.rr_cursor + j;
    if (idx >= pc.num_vcs) idx -= pc.num_vcs;
    VcState& w = vcs_[static_cast<std::size_t>(pc.first_vc + idx)];
    if (w.is_free() || w.route_in == kInvalidVc || w.buffer.full()) continue;
    VcState& u = vcs_[static_cast<std::size_t>(w.route_in)];
    if (u.buffer.empty() || u.buffer.front().arrived >= now_) continue;
    Flit flit = u.buffer.pop();
    assert(flit.message == w.owner);
    wake_channel(u.channel);  // freed buffer space upstream
    Message& msg = messages_[static_cast<std::size_t>(flit.message)];
    const bool tail_left_upstream = flit.is_tail_of(msg.length);
    if (tail_left_upstream) {
      assert(!msg.held.empty() && msg.held.front() == u.id);
      msg.held.erase(msg.held.begin());
      u.release();
      w.route_in = kInvalidVc;  // no further flits arrive from upstream
      ++arc_epoch_;  // oldest solid arc retired, VC ownership vacated
    }
    flit.arrived = now_;
    w.buffer.push(flit);
    if (pc.kind == ChannelKind::Ejection) {
      eject_active_.insert(pc.dst);  // the reception interface has work
    } else if (w.route_out != kInvalidVc) {
      wake_channel(vcs_[static_cast<std::size_t>(w.route_out)].channel);
    }
    if (hooks_.heatmap != nullptr) hooks_.heatmap->on_traversal(pc.id, w.id);
    if (hooks_.tracer != nullptr) {
      trace(TraceEventKind::FlitHopped, msg.id, w.id, u.id, flit.seq);
      if (tail_left_upstream) {
        trace(TraceEventKind::VcFreed, msg.id, u.id);
      }
    }
    if (flit.is_head() && pc.kind != ChannelKind::Ejection) {
      pending_.push_back(w.id);
    }
    pc.rr_cursor = idx + 1 == pc.num_vcs ? 0 : idx + 1;
    moved = true;
    break;  // one flit per physical channel per cycle
  }
  if (!moved && !transmit_work_possible(pc)) chan_active_.erase(pc.id);
}

void Network::remove_message(MessageId id) {
  Message& msg = messages_[static_cast<std::size_t>(id)];
  if (msg.status != MessageStatus::InFlight) {
    throw std::invalid_argument("remove_message: message is not in flight");
  }
  if (hooks_.tracer != nullptr) {
    for (const VcId want : msg.request_set) {
      trace(TraceEventKind::CwgArcRemoved, msg.id, want,
            msg.held.empty() ? kInvalidVc : msg.held.back());
    }
    for (const VcId held : msg.held) {
      trace(TraceEventKind::VcFreed, msg.id, held);
    }
    trace(TraceEventKind::MessageRemoved, msg.id,
          msg.held.empty() ? kInvalidVc : msg.held.back(), kInvalidVc,
          static_cast<std::int32_t>(msg.hops));
  }
  for (const VcId held : msg.held) {
    VcState& vc = vcs_[static_cast<std::size_t>(held)];
    assert(vc.owner == msg.id);
    // Wake the freed VC's channel so the event-driven sweep revisits it once
    // another message claims the slot: recovery happens between steps, and a
    // wedged (descheduled) channel must not stay silent while survivors
    // drain through it.
    sched_wake_channel(vc.channel);
    vc.buffer.clear();
    vc.release();
  }
  std::erase_if(pending_, [this](VcId v) {
    return vcs_[static_cast<std::size_t>(v)].is_free();
  });
  msg.held.clear();
  msg.request_set.clear();
  msg.blocked = false;
  ++arc_epoch_;  // message and all its arcs leave the CWG
  msg.status = MessageStatus::Recovered;
  msg.finished = now_;
  ++counters_.recovered;
  ++counters_.class_recovered[class_index(msg.cls)];
  deactivate(msg);
}

bool Network::message_immobile(MessageId id) const {
  const Message& msg = message(id);
  if (msg.status != MessageStatus::InFlight || !msg.blocked) return false;
  // Unsent flits could still enter the injection VC.
  if (msg.flits_sent < msg.length &&
      !vc(msg.held.front()).buffer.full()) {
    return false;
  }
  // Any routed hop with a flit to send and downstream space can still move.
  for (const VcId held : msg.held) {
    const VcState& u = vc(held);
    if (u.route_out == kInvalidVc) continue;  // the blocked header
    if (!u.buffer.empty() && !vc(u.route_out).buffer.full()) return false;
  }
  return true;
}

void Network::check_invariants() const {
  // Per-VC exclusivity and linkage.
  for (const VcState& vc : vcs_) {
    if (vc.is_free()) {
      if (!vc.buffer.empty()) invariant_failure("free VC with buffered flits");
      if (vc.route_out != kInvalidVc || vc.route_in != kInvalidVc) {
        invariant_failure("free VC with route state");
      }
      continue;
    }
    const Message& owner = message(vc.owner);
    if (owner.status != MessageStatus::InFlight) {
      invariant_failure("VC owned by a finished message");
    }
    for (int i = 0; i < vc.buffer.size(); ++i) {
      if (vc.buffer.at(i).message != vc.owner) {
        invariant_failure("buffered flit does not belong to the VC owner");
      }
    }
    if (std::find(owner.held.begin(), owner.held.end(), vc.id) ==
        owner.held.end()) {
      invariant_failure("owned VC missing from the owner's held chain");
    }
  }

  // Per-message chain structure and flit conservation.
  for (const MessageId id : active_) {
    const Message& msg = message(id);
    if (msg.held.empty()) invariant_failure("in-flight message holds no VC");
    int buffered = 0;
    for (std::size_t i = 0; i < msg.held.size(); ++i) {
      const VcState& vc = vcs_[static_cast<std::size_t>(msg.held[i])];
      if (vc.owner != msg.id) invariant_failure("held VC not owned");
      buffered += vc.buffer.size();
      const bool last = (i + 1 == msg.held.size());
      if (last) {
        if (vc.route_out != kInvalidVc) {
          invariant_failure("newest held VC already routed");
        }
      } else if (vc.route_out != msg.held[i + 1]) {
        invariant_failure("held chain route_out linkage broken");
      }
      if (i > 0 && vc.route_in != msg.held[i - 1]) {
        invariant_failure("held chain route_in linkage broken");
      }
    }
    if (buffered != msg.flits_sent - msg.flits_delivered) {
      invariant_failure("flit conservation broken");
    }
  }

  // Pending entries are exactly the owned, unrouted heads.
  for (const VcId v : pending_) {
    const VcState& vc = vcs_[static_cast<std::size_t>(v)];
    if (vc.is_free() || vc.route_out != kInvalidVc) {
      invariant_failure("pending VC is free or already routed");
    }
    if (vc.buffer.empty() || !vc.buffer.front().is_head()) {
      invariant_failure("pending VC front is not a header flit");
    }
  }

  // Active-set coverage: the event-driven core must never deschedule a
  // component that still has work. src_active_ is exact; the other two are
  // supersets (stale entries self-erase on their next visit).
  const NodeId nodes = topo_->num_nodes();
  for (NodeId node = 0; node < nodes; ++node) {
    if (!source_queues_[static_cast<std::size_t>(node)].empty() !=
        src_scheduled(node)) {
      invariant_failure("source active set out of sync with queue state");
    }
    const PhysChannel& ej =
        phys_[static_cast<std::size_t>(ejection_channel(node))];
    for (int i = 0; i < ej.num_vcs; ++i) {
      if (!vcs_[static_cast<std::size_t>(ej.first_vc + i)].buffer.empty() &&
          !eject_scheduled(node)) {
        invariant_failure("buffered ejection flit on a descheduled node");
      }
    }
  }
  for (const PhysChannel& pc : phys_) {
    if (transmit_work_possible(pc) && !channel_scheduled(pc.id)) {
      invariant_failure("transmittable work on a descheduled channel");
    }
  }
  if (sharded_) {
    // Per-shard sets must hold only components the shard owns.
    for (const ShardCtx& ctx : shard_ctx_) {
      for (std::int32_t n = ctx.src_active.first(); n != -1;
           n = ctx.src_active.next_after(n)) {
        if (shard_of_node(n) != ctx.shard) {
          invariant_failure("source node scheduled on a foreign shard");
        }
      }
      for (std::int32_t n = ctx.eject_active.first(); n != -1;
           n = ctx.eject_active.next_after(n)) {
        if (shard_of_node(n) != ctx.shard) {
          invariant_failure("ejection node scheduled on a foreign shard");
        }
      }
      for (std::int32_t ch = ctx.chan_active.first(); ch != -1;
           ch = ctx.chan_active.next_after(ch)) {
        if (shard_of_channel(ch) != ctx.shard) {
          invariant_failure("channel scheduled on a foreign shard");
        }
      }
    }
  }
}

void Network::rebuild_active_sets() {
  src_active_.clear();
  eject_active_.clear();
  chan_active_.clear();
  for (ShardCtx& ctx : shard_ctx_) {
    ctx.src_active.clear();
    ctx.eject_active.clear();
    ctx.chan_active.clear();
  }
  const NodeId nodes = topo_->num_nodes();
  for (NodeId node = 0; node < nodes; ++node) {
    if (!source_queues_[static_cast<std::size_t>(node)].empty()) {
      sched_insert_src(node);
    }
    const PhysChannel& ej =
        phys_[static_cast<std::size_t>(ejection_channel(node))];
    for (int i = 0; i < ej.num_vcs; ++i) {
      if (!vcs_[static_cast<std::size_t>(ej.first_vc + i)].buffer.empty()) {
        sched_insert_eject(node);
        break;
      }
    }
  }
  for (const PhysChannel& pc : phys_) {
    if (transmit_work_possible(pc)) sched_wake_channel(pc.id);
  }
}

void Network::save_counters(BinWriter& out, const Counters& c) {
  out.i64(c.generated);
  out.i64(c.injected);
  out.i64(c.delivered);
  out.i64(c.recovered);
  out.i64(c.flits_delivered);
  out.i64(c.delivered_latency_sum);
  out.i64(c.delivered_hops_sum);
  for (std::size_t k = 0; k < kNumMessageClasses; ++k) {
    out.i64(c.class_generated[k]);
    out.i64(c.class_delivered[k]);
    out.i64(c.class_recovered[k]);
    out.i64(c.class_latency_sum[k]);
  }
}

void Network::restore_counters(BinReader& in, Counters& c,
                               std::uint32_t version) {
  c.generated = in.i64();
  c.injected = in.i64();
  c.delivered = in.i64();
  c.recovered = in.i64();
  c.flits_delivered = in.i64();
  c.delivered_latency_sum = in.i64();
  c.delivered_hops_sum = in.i64();
  c.class_generated.fill(0);
  c.class_delivered.fill(0);
  c.class_recovered.fill(0);
  c.class_latency_sum.fill(0);
  if (version >= 3) {
    for (std::size_t k = 0; k < kNumMessageClasses; ++k) {
      c.class_generated[k] = in.i64();
      c.class_delivered[k] = in.i64();
      c.class_recovered[k] = in.i64();
      c.class_latency_sum[k] = in.i64();
    }
  }
}

void Network::save_state(BinWriter& out) const {
  out.i64(now_);
  out.i32(blocked_count_);
  out.i32(faulted_);
  save_counters(out, counters_);
  save_rng(out, rng_);

  out.u64(phys_.size());
  for (const PhysChannel& pc : phys_) {
    out.i32(pc.rr_cursor);
    out.u8(pc.faulted ? 1 : 0);
  }

  out.u64(vcs_.size());
  for (const VcState& vc : vcs_) {
    out.i64(vc.owner);
    out.i32(vc.route_out);
    out.i32(vc.route_in);
    vc.buffer.save_state(out);
  }

  out.u64(messages_.size());
  for (const Message& msg : messages_) {
    out.i32(msg.src);
    out.i32(msg.dst);
    out.i32(msg.length);
    out.i64(msg.created);
    out.i64(msg.injected);
    out.i64(msg.finished);
    out.u8(static_cast<std::uint8_t>(msg.status));
    out.i32(msg.flits_sent);
    out.i32(msg.flits_delivered);
    out.i32(msg.hops);
    out.i32(msg.misroutes);
    out.u8(msg.blocked ? 1 : 0);
    out.i64(msg.blocked_since);
    out.u8(static_cast<std::uint8_t>(msg.cls));
    save_id_vector(out, msg.held);
    save_id_vector(out, msg.request_set);
  }

  out.u64(source_queues_.size());
  for (const auto& queue : source_queues_) {
    out.u64(queue.size());
    for (const MessageId id : queue) out.i64(id);
  }

  out.u64(active_.size());
  for (const MessageId id : active_) out.i64(id);

  out.u64(pending_.size());
  for (const VcId id : pending_) out.i32(id);
}

void Network::restore_state(BinReader& in, std::uint32_t version) {
  now_ = in.i64();
  blocked_count_ = in.i32();
  faulted_ = in.i32();
  restore_counters(in, counters_, version);
  restore_rng(in, rng_);

  if (in.u64() != phys_.size()) snapshot_mismatch("physical channel count");
  for (PhysChannel& pc : phys_) {
    pc.rr_cursor = in.i32();
    pc.faulted = in.u8() != 0;
  }

  if (in.u64() != vcs_.size()) snapshot_mismatch("virtual channel count");
  for (VcState& vc : vcs_) {
    vc.owner = in.i64();
    vc.route_out = in.i32();
    vc.route_in = in.i32();
    vc.buffer.restore_state(in);
  }

  const std::uint64_t num_messages = in.u64();
  messages_.clear();
  messages_.reserve(static_cast<std::size_t>(num_messages));
  for (std::uint64_t i = 0; i < num_messages; ++i) {
    Message msg;
    msg.id = static_cast<MessageId>(i);
    msg.src = in.i32();
    msg.dst = in.i32();
    msg.length = in.i32();
    msg.created = in.i64();
    msg.injected = in.i64();
    msg.finished = in.i64();
    msg.status = static_cast<MessageStatus>(in.u8());
    msg.flits_sent = in.i32();
    msg.flits_delivered = in.i32();
    msg.hops = in.i32();
    msg.misroutes = in.i32();
    msg.blocked = in.u8() != 0;
    msg.blocked_since = in.i64();
    msg.cls = version >= 3 ? message_class_from_index(in.u8())
                           : MessageClass::Bulk;
    restore_id_vector(in, msg.held, vcs_.size());
    restore_id_vector(in, msg.request_set, vcs_.size());
    messages_.push_back(std::move(msg));
  }

  if (in.u64() != source_queues_.size()) snapshot_mismatch("node count");
  for (auto& queue : source_queues_) {
    const std::uint64_t len = in.u64();
    if (len > num_messages) snapshot_mismatch("source queue length");
    queue.clear();
    for (std::uint64_t i = 0; i < len; ++i) queue.push_back(in.i64());
  }

  const std::uint64_t num_active = in.u64();
  if (num_active > num_messages) snapshot_mismatch("active message count");
  active_.clear();
  active_.reserve(static_cast<std::size_t>(num_active));
  active_pos_.assign(static_cast<std::size_t>(num_messages), -1);
  for (std::uint64_t i = 0; i < num_active; ++i) {
    const MessageId id = in.i64();
    if (id < 0 || static_cast<std::uint64_t>(id) >= num_messages) {
      snapshot_mismatch("active message id out of range");
    }
    active_pos_[static_cast<std::size_t>(id)] = static_cast<std::int32_t>(i);
    active_.push_back(id);
  }

  restore_id_vector(in, pending_, vcs_.size());

  // The epoch is deliberately NOT serialized (it is a process-local cache
  // key, not simulation state); bumping it here invalidates any detector
  // verdict cached against the pre-restore graph. The active sets are
  // likewise process-local scheduling state: recompute them from the
  // restored buffers and queues (the snapshot format is unchanged).
  ++arc_epoch_;
  rebuild_active_sets();

  check_invariants();
}

}  // namespace flexnet
