// Windowed measurement: snapshots the network's monotonic counters at the
// start of the measurement window, samples congestion every cycle, and folds
// in the detector's deadlock records at the end — producing exactly the
// quantities the paper plots (normalized deadlocks, deadlock/resource set
// sizes, knot cycle density, cycle counts, blocked percentages, messages in
// the network).
#pragma once

#include <array>

#include "core/detector.hpp"
#include "sim/network.hpp"
#include "util/stats.hpp"

namespace flexnet {

class BinReader;
class BinWriter;

struct WindowMetrics {
  Cycle window_cycles = 0;

  // Message flow over the window.
  std::int64_t generated = 0;
  std::int64_t injected = 0;
  std::int64_t delivered = 0;   ///< via the network
  std::int64_t recovered = 0;   ///< via deadlock recovery
  std::int64_t flits_delivered = 0;
  double throughput_flits_per_node = 0.0;  ///< flits/node/cycle accepted
  double avg_latency = 0.0;                ///< cycles, delivered messages
  double avg_hops = 0.0;

  // Congestion (per-cycle samples).
  RunningStat blocked_messages;
  RunningStat blocked_fraction;  ///< blocked / in-network
  RunningStat in_network_messages;
  RunningStat queued_messages;

  // Deadlocks.
  std::int64_t deadlocks = 0;
  double normalized_deadlocks = 0.0;  ///< deadlocks per message completed
  RunningStat deadlock_set_size;
  RunningStat resource_set_size;
  RunningStat knot_cycle_density;
  RunningStat dependent_messages;
  std::int64_t single_cycle_deadlocks = 0;
  std::int64_t multi_cycle_deadlocks = 0;
  /// Full deadlock-set size distribution (bucket i = deadlocks of i messages,
  /// larger sets clamped into the last bucket).
  Histogram deadlock_set_histogram{128};

  // CWG cycle counts (only when the detector samples them).
  RunningStat cwg_cycles;
  bool cycle_count_capped = false;

  /// Per-message-class breakdown (index = class_index). Scalar flow fields
  /// above equal the sums over these; deadlock_participants counts the
  /// confirmed deadlock-set members of each class (a deadlock of k messages
  /// contributes k across the classes, so the sum exceeds `deadlocks`).
  struct ClassMetrics {
    std::int64_t generated = 0;
    std::int64_t delivered = 0;
    std::int64_t recovered = 0;
    double avg_latency = 0.0;
    std::int64_t deadlock_participants = 0;
  };
  std::array<ClassMetrics, kNumMessageClasses> classes{};

  /// Messages completed (the normalized-deadlock denominator).
  [[nodiscard]] std::int64_t completed(bool count_recovered) const noexcept {
    return delivered + (count_recovered ? recovered : 0);
  }
};

class MetricsCollector {
 public:
  explicit MetricsCollector(int sample_every = 1)
      : sample_every_(sample_every < 1 ? 1 : sample_every) {}

  /// Marks the start of the measurement window.
  void begin_window(const Network& net);

  /// Per-cycle congestion sampling (subsampled by `sample_every`).
  void sample(const Network& net);

  /// Produces the window's metrics. Pass the detector whose statistics were
  /// reset at the window start.
  [[nodiscard]] WindowMetrics finish(const Network& net,
                                     const DeadlockDetector& detector,
                                     bool count_recovered_as_delivered) const;

  /// Snapshot hooks: window start marker plus the four congestion
  /// accumulators, so a resumed run finishes the window with the exact
  /// RunningStat state (bit-identical WindowMetrics). Pre-v3 payloads carry
  /// no per-class counters in the window-start marker (restored as zeros).
  void save_state(BinWriter& out) const;
  void restore_state(BinReader& in,
                     std::uint32_t version = kStateFormatVersion);

 private:
  int sample_every_;
  Cycle start_cycle_ = 0;
  Network::Counters start_{};
  RunningStat blocked_;
  RunningStat blocked_fraction_;
  RunningStat in_network_;
  RunningStat queued_;
};

}  // namespace flexnet
