#include "metrics/metrics.hpp"

#include <algorithm>

#include "util/binio.hpp"

namespace flexnet {

void MetricsCollector::save_state(BinWriter& out) const {
  out.i64(start_cycle_);
  Network::save_counters(out, start_);
  blocked_.save_state(out);
  blocked_fraction_.save_state(out);
  in_network_.save_state(out);
  queued_.save_state(out);
}

void MetricsCollector::restore_state(BinReader& in, std::uint32_t version) {
  start_cycle_ = in.i64();
  Network::restore_counters(in, start_, version);
  blocked_.restore_state(in);
  blocked_fraction_.restore_state(in);
  in_network_.restore_state(in);
  queued_.restore_state(in);
}

void MetricsCollector::begin_window(const Network& net) {
  start_cycle_ = net.now();
  start_ = net.counters();
  blocked_ = RunningStat{};
  blocked_fraction_ = RunningStat{};
  in_network_ = RunningStat{};
  queued_ = RunningStat{};
}

void MetricsCollector::sample(const Network& net) {
  if ((net.now() - start_cycle_) % sample_every_ != 0) return;
  const auto in_net = static_cast<double>(net.active_messages().size());
  const auto blocked = static_cast<double>(net.blocked_message_count());
  blocked_.add(blocked);
  if (in_net > 0) blocked_fraction_.add(blocked / in_net);
  in_network_.add(in_net);
  queued_.add(static_cast<double>(net.queued_message_count()));
}

WindowMetrics MetricsCollector::finish(const Network& net,
                                       const DeadlockDetector& detector,
                                       bool count_recovered_as_delivered) const {
  WindowMetrics m;
  m.window_cycles = net.now() - start_cycle_;
  const Network::Counters& end = net.counters();
  m.generated = end.generated - start_.generated;
  m.injected = end.injected - start_.injected;
  m.delivered = end.delivered - start_.delivered;
  m.recovered = end.recovered - start_.recovered;
  m.flits_delivered = end.flits_delivered - start_.flits_delivered;

  const double node_cycles =
      static_cast<double>(net.topology().num_nodes()) *
      static_cast<double>(std::max<Cycle>(m.window_cycles, 1));
  m.throughput_flits_per_node = static_cast<double>(m.flits_delivered) / node_cycles;

  const std::int64_t delivered_msgs = m.delivered;
  if (delivered_msgs > 0) {
    m.avg_latency =
        static_cast<double>(end.delivered_latency_sum - start_.delivered_latency_sum) /
        static_cast<double>(delivered_msgs);
    m.avg_hops =
        static_cast<double>(end.delivered_hops_sum - start_.delivered_hops_sum) /
        static_cast<double>(delivered_msgs);
  }

  m.blocked_messages = blocked_;
  m.blocked_fraction = blocked_fraction_;
  m.in_network_messages = in_network_;
  m.queued_messages = queued_;

  for (const DeadlockRecord& record : detector.records()) {
    if (record.detected_at < start_cycle_) continue;
    ++m.deadlocks;
    m.deadlock_set_size.add(record.deadlock_set_size);
    m.deadlock_set_histogram.add(record.deadlock_set_size);
    m.resource_set_size.add(record.resource_set_size);
    m.dependent_messages.add(record.dependent_count);
    if (record.knot_cycle_density >= 0) {
      m.knot_cycle_density.add(static_cast<double>(record.knot_cycle_density));
      if (record.knot_cycle_density == 1) {
        ++m.single_cycle_deadlocks;
      } else {
        ++m.multi_cycle_deadlocks;
      }
    }
  }
  const std::int64_t completed = m.completed(count_recovered_as_delivered);
  m.normalized_deadlocks =
      static_cast<double>(m.deadlocks) /
      static_cast<double>(std::max<std::int64_t>(completed, 1));

  for (const CycleSample& sample : detector.cycle_samples()) {
    if (sample.at < start_cycle_) continue;
    m.cwg_cycles.add(static_cast<double>(sample.cycles));
    m.cycle_count_capped = m.cycle_count_capped || sample.capped;
  }

  for (std::size_t k = 0; k < kNumMessageClasses; ++k) {
    WindowMetrics::ClassMetrics& cm = m.classes[k];
    cm.generated = end.class_generated[k] - start_.class_generated[k];
    cm.delivered = end.class_delivered[k] - start_.class_delivered[k];
    cm.recovered = end.class_recovered[k] - start_.class_recovered[k];
    if (cm.delivered > 0) {
      cm.avg_latency =
          static_cast<double>(end.class_latency_sum[k] -
                              start_.class_latency_sum[k]) /
          static_cast<double>(cm.delivered);
    }
    // The detector tallies are reset at the window start alongside its
    // records, so they are already window-scoped.
    cm.deadlock_participants = detector.class_participation()[k];
  }
  return m;
}

}  // namespace flexnet
