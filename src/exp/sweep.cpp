#include "exp/sweep.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/parallel.hpp"

namespace flexnet {

std::vector<double> linspace(double lo, double hi, int steps) {
  if (steps < 1) throw std::invalid_argument("linspace needs >= 1 step");
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(steps));
  if (steps == 1) {
    out.push_back(lo);
    return out;
  }
  const double delta = (hi - lo) / static_cast<double>(steps - 1);
  for (int i = 0; i < steps; ++i) {
    out.push_back(lo + delta * static_cast<double>(i));
  }
  return out;
}

std::vector<ExperimentResult> sweep_loads(const ExperimentConfig& base,
                                          std::span<const double> loads,
                                          bool parallel) {
  std::vector<ExperimentResult> results(loads.size());
  auto run_point = [&](std::size_t i) {
    ExperimentConfig config = base;
    config.traffic.load = loads[i];
    // Decorrelate per-point random streams while keeping determinism.
    config.sim.seed = splitmix64(base.sim.seed + i + 1);
    // Trace and telemetry files get a per-point suffix so concurrent points
    // never share an output stream.
    if (loads.size() > 1) {
      config.trace = base.trace.with_point_suffix(i);
      config.telemetry = base.telemetry.with_point_suffix(i);
      config.obs = base.obs.with_point_suffix(i);
      config.snapshot = base.snapshot.with_point_suffix(i);
      config.workload = base.workload.with_point_suffix(i);
    }
    results[i] = run_experiment(config);
  };
  if (parallel) {
    parallel_for(loads.size(), run_point);
  } else {
    for (std::size_t i = 0; i < loads.size(); ++i) run_point(i);
  }
  return results;
}

double saturation_load(std::span<const ExperimentResult> results) {
  for (const ExperimentResult& r : results) {
    if (r.saturated) return r.load;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace flexnet
