#include "exp/experiment.hpp"

#include <stdexcept>

#include "routing/routing.hpp"
#include "routing/selection.hpp"
#include "telemetry/manifest.hpp"

namespace flexnet {

TraceConfig TraceConfig::with_point_suffix(std::size_t point) const {
  TraceConfig out = *this;
  const std::string suffix = ".p" + std::to_string(point);
  if (!out.chrome_path.empty()) out.chrome_path += suffix;
  if (!out.binary_path.empty()) out.binary_path += suffix;
  if (!out.forensics_dot_prefix.empty()) out.forensics_dot_prefix += suffix + ".";
  return out;
}

namespace {
std::ofstream open_trace_file(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open trace output file: " + path);
  }
  return out;
}
}  // namespace

Simulation::Simulation(const ExperimentConfig& config)
    : config_(config), metrics_(config.run.sample_every) {
  config_.sim.validate();
  network_ = std::make_unique<Network>(config_.sim, make_routing(config_.sim),
                                       make_selection(config_.sim.selection));
  injection_ = std::make_unique<InjectionProcess>(*network_, config_.traffic,
                                                  config_.sim.seed);
  detector_ =
      std::make_unique<DeadlockDetector>(config_.detector, config_.sim.seed);

  const TraceConfig& trace = config_.trace;
  if (trace.enabled()) {
    tracer_ = std::make_unique<Tracer>();
    std::size_t ring_capacity = trace.ring_capacity;
    if (trace.forensics && ring_capacity == 0) {
      ring_capacity = TraceConfig::kDefaultRingCapacity;
    }
    if (ring_capacity > 0) {
      ring_ = std::make_unique<RingBufferSink>(ring_capacity);
      tracer_->add_sink(ring_.get());
    }
    if (!trace.chrome_path.empty()) {
      chrome_out_ = open_trace_file(trace.chrome_path);
      chrome_sink_ = std::make_unique<ChromeTraceSink>(chrome_out_);
      tracer_->add_sink(chrome_sink_.get());
    }
    if (!trace.binary_path.empty()) {
      binary_out_ = open_trace_file(trace.binary_path);
      binary_sink_ = std::make_unique<BinaryTraceSink>(binary_out_);
      tracer_->add_sink(binary_sink_.get());
    }
    network_->set_tracer(tracer_.get());
    if (trace.forensics) {
      forensics_ = std::make_unique<DeadlockForensics>(ring_.get());
      detector_->set_forensics(forensics_.get());
    }
  }

  if (config_.telemetry.enabled()) {
    telemetry_ = std::make_unique<Telemetry>(config_.telemetry, *network_);
    telemetry_->attach(*network_, *detector_);
  }
}

void Simulation::flush_trace() {
  if (tracer_) tracer_->flush();
}

void Simulation::run_cycles(Cycle cycles) {
  for (Cycle i = 0; i < cycles; ++i) {
    injection_->tick(*network_);
    network_->step();
    detector_->tick(*network_);
    if (telemetry_) telemetry_->tick(*network_, *detector_);
    if (measuring_) metrics_.sample(*network_);
    if (config_.run.check_invariants &&
        network_->now() % config_.run.check_every == 0) {
      network_->check_invariants();
    }
  }
}

ExperimentResult Simulation::run() {
  run_cycles(config_.run.warmup);
  detector_->reset_statistics();
  if (forensics_) forensics_->clear();
  metrics_.begin_window(*network_);
  measuring_ = true;
  run_cycles(config_.run.measure);
  measuring_ = false;

  ExperimentResult result;
  result.load = config_.traffic.load;
  result.capacity_flits_per_node = injection_->capacity_flits_per_node();
  result.offered_flit_rate = injection_->offered_flit_rate();
  result.avg_distance = injection_->average_distance();
  result.window =
      metrics_.finish(*network_, *detector_, config_.count_recovered_as_delivered);
  if (result.capacity_flits_per_node > 0) {
    result.normalized_throughput =
        result.window.throughput_flits_per_node / result.capacity_flits_per_node;
  }
  if (result.offered_flit_rate > 0) {
    result.accepted_ratio =
        result.window.throughput_flits_per_node / result.offered_flit_rate;
  }
  result.saturated = result.accepted_ratio < 0.95;

  flush_trace();
  if (telemetry_) {
    telemetry_->finalize(*network_, *detector_);
    TelemetryArtifacts& artifacts = result.telemetry;
    artifacts.enabled = true;
    const IntervalRecorder& series = telemetry_->interval_series();
    artifacts.interval_samples = series.size();
    artifacts.samples_dropped = series.dropped();
    for (std::size_t i = 0; i < series.size(); ++i) {
      artifacts.deadlocks_in_series += series.at(i).deadlocks;
    }
    artifacts.heatmap_ascii = telemetry_->heatmap().ascii_grid(
        *network_, SpatialHeatmap::Field::Traversals);
    artifacts.profile_table = telemetry_->profiler().table();
    if (!config_.telemetry.heatmap_csv_path.empty()) {
      std::ofstream csv(config_.telemetry.heatmap_csv_path, std::ios::trunc);
      if (!csv) {
        throw std::runtime_error("cannot open heatmap CSV file: " +
                                 config_.telemetry.heatmap_csv_path);
      }
      telemetry_->heatmap().write_csv(csv, *network_);
      artifacts.heatmap_csv_path = config_.telemetry.heatmap_csv_path;
    }
    if (!config_.telemetry.manifest_path.empty()) {
      std::ofstream manifest(config_.telemetry.manifest_path, std::ios::trunc);
      if (!manifest) {
        throw std::runtime_error("cannot open telemetry manifest file: " +
                                 config_.telemetry.manifest_path);
      }
      write_manifest_json(manifest, config_, result, *telemetry_, *network_);
      artifacts.manifest_path = config_.telemetry.manifest_path;
    }
  }
  if (forensics_) {
    result.forensics = forensics_->reports();
    if (!config_.trace.forensics_dot_prefix.empty()) {
      for (const ForensicsReport& report : result.forensics) {
        const std::string path = config_.trace.forensics_dot_prefix +
                                 std::to_string(report.sequence) + ".dot";
        std::ofstream dot(path);
        if (!dot) {
          throw std::runtime_error("cannot open forensics DOT file: " + path);
        }
        dot << report.dot;
      }
    }
  }
  return result;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  Simulation sim(config);
  return sim.run();
}

}  // namespace flexnet
