#include "exp/experiment.hpp"

#include <algorithm>
#include <stdexcept>

#include "routing/routing.hpp"
#include "routing/selection.hpp"
#include "telemetry/manifest.hpp"
#include "util/binio.hpp"
#include "util/parallel.hpp"
#include "workload/replay.hpp"

namespace flexnet {

TraceConfig TraceConfig::with_point_suffix(std::size_t point) const {
  TraceConfig out = *this;
  const std::string suffix = ".p" + std::to_string(point);
  if (!out.chrome_path.empty()) out.chrome_path += suffix;
  if (!out.binary_path.empty()) out.binary_path += suffix;
  if (!out.forensics_dot_prefix.empty()) out.forensics_dot_prefix += suffix + ".";
  return out;
}

SnapshotConfig SnapshotConfig::with_point_suffix(std::size_t point) const {
  SnapshotConfig out = *this;
  const std::string suffix = ".p" + std::to_string(point);
  if (out.checkpoint_every > 0) out.checkpoint_dir += suffix;
  if (!out.capture_dir.empty()) out.capture_dir += suffix;
  return out;
}

namespace {
std::ofstream open_trace_file(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open trace output file: " + path);
  }
  return out;
}
}  // namespace

Simulation::Simulation(const ExperimentConfig& config)
    : config_(config), metrics_(config.run.sample_every) {
  std::vector<std::uint8_t> resumed_obs_state;
  std::uint32_t resumed_version = kSnapshotVersion;
  if (!config_.snapshot.resume_path.empty()) {
    // Resume: the snapshot's configs and run schedule are authoritative (the
    // command line only contributes trace/telemetry/snapshot attachments and
    // the capture tap, which is a run-local attachment like the others).
    const std::string cli_capture = config_.workload.capture_path;
    Snapshot snap = read_snapshot_file(config_.snapshot.resume_path);
    RestoredSim restored = restore_snapshot(snap);
    config_.sim = restored.sim;
    config_.traffic = restored.traffic;
    config_.workload = restored.workload;
    config_.workload.capture_path = cli_capture;
    config_.detector = restored.detector_config;
    config_.run.warmup = snap.meta.warmup;
    config_.run.measure = snap.meta.measure;
    config_.run.sample_every = snap.meta.sample_every;
    network_ = std::move(restored.net);
    injection_ = std::move(restored.injection);
    detector_ = std::move(restored.detector);
    metrics_ = restored.metrics;
    resumed_ = true;
    resumed_measuring_ = snap.meta.measuring;
    resumed_at_cycle_ = snap.meta.cycle;
    resumed_obs_state = std::move(snap.obs_state);
    resumed_version = snap.version;
  } else {
    config_.sim.validate();
    NetworkDeps deps;
    deps.routing = make_routing(config_.sim);
    deps.selection = make_selection(config_.sim.selection);
    network_ = std::make_unique<Network>(config_.sim, std::move(deps));
    injection_ = make_injection(*network_, config_.traffic, config_.workload,
                                config_.sim.seed);
    if (config_.workload.kind == WorkloadKind::Trace) {
      // The trace header carries the capture run's traffic config and
      // normalization; adopt it so manifests and derived rates reproduce the
      // capture byte-for-byte (only the workload block differs).
      config_.traffic =
          static_cast<const TraceReplayInjection&>(*injection_).header().traffic;
    }
    detector_ =
        std::make_unique<DeadlockDetector>(config_.detector, config_.sim.seed);
  }

  if (!config_.workload.capture_path.empty()) {
    capture_out_.open(config_.workload.capture_path,
                      std::ios::binary | std::ios::trunc);
    if (!capture_out_) {
      throw std::runtime_error("cannot open capture trace file: " +
                               config_.workload.capture_path);
    }
    TraceHeader header;
    header.nodes = network_->topology().num_nodes();
    header.traffic = config_.traffic;
    header.avg_distance = injection_->average_distance();
    header.capacity = injection_->capacity_flits_per_node();
    header.offered = injection_->offered_flit_rate();
    capture_writer_ = std::make_unique<TraceCaptureWriter>(capture_out_, header);
    injection_->set_capture(capture_writer_.get());
  }

  if (!config_.snapshot.capture_dir.empty()) {
    corpus_ = std::make_unique<DeadlockCorpus>(
        config_.snapshot.capture_dir, config_.snapshot.capture_limit,
        config_.sim, config_.traffic, config_.workload, config_.detector,
        injection_.get(), detector_.get(), &metrics_);
    sync_corpus_run_state();
    detector_->set_capture(corpus_.get());
  }

  const TraceConfig& trace = config_.trace;
  if (trace.enabled()) {
    tracer_ = std::make_unique<Tracer>();
    std::size_t ring_capacity = trace.ring_capacity;
    if (trace.forensics && ring_capacity == 0) {
      ring_capacity = TraceConfig::kDefaultRingCapacity;
    }
    if (ring_capacity > 0) {
      ring_ = std::make_unique<RingBufferSink>(ring_capacity);
      tracer_->add_sink(ring_.get());
    }
    if (!trace.chrome_path.empty()) {
      chrome_out_ = open_trace_file(trace.chrome_path);
      chrome_sink_ = std::make_unique<ChromeTraceSink>(chrome_out_);
      tracer_->add_sink(chrome_sink_.get());
    }
    if (!trace.binary_path.empty()) {
      binary_out_ = open_trace_file(trace.binary_path);
      binary_sink_ = std::make_unique<BinaryTraceSink>(binary_out_);
      tracer_->add_sink(binary_sink_.get());
    }
    if (trace.forensics) {
      forensics_ = std::make_unique<DeadlockForensics>(ring_.get());
      detector_->set_forensics(forensics_.get());
    }
  }

  if (config_.telemetry.enabled()) {
    telemetry_ = std::make_unique<Telemetry>(config_.telemetry, *network_);
  }

  if (config_.obs.enabled()) {
    obs_ = std::make_unique<ObsCollector>(config_.obs, *network_);
    // Restoring after construction (which re-emits the stream header) makes
    // the resumed stream = header + the records after the checkpoint: the
    // cumulative histograms, watermarks and cadence cursor all come back, so
    // those records are byte-identical to the uninterrupted run's.
    if (!resumed_obs_state.empty()) {
      BinReader in(resumed_obs_state.data(), resumed_obs_state.size());
      obs_->restore_state(in, resumed_version);
    }
  }

  // Assemble the observer surface once every component exists and install it
  // in a single call — the event-driven core has exactly one notification
  // path to keep correct. The step mode honors the (possibly resuming)
  // command line: it is an execution strategy, not simulation state.
  NetworkHooks hooks;
  hooks.tracer = tracer_.get();
  if (telemetry_) telemetry_->contribute_hooks(hooks, *detector_);
  if (obs_) obs_->contribute_hooks(hooks);
  network_->install_hooks(hooks);
  network_->set_step_dense(config_.run.step_dense);
  if (config_.run.shards != 0) {
    // --shards auto: one shard per worker thread, capped so every shard owns
    // at least one router (set_shards rejects an explicit overshoot).
    int shards = config_.run.shards;
    if (shards < 0) {
      shards = static_cast<int>(worker_thread_count());
      const int nodes = network_->topology().num_nodes();
      if (shards > nodes) shards = nodes;
    }
    network_->set_shards(shards);
  }
}

void Simulation::flush_trace() {
  if (tracer_) tracer_->flush();
}

void Simulation::sync_corpus_run_state() noexcept {
  if (corpus_) {
    corpus_->set_run_state(config_.run.warmup, config_.run.measure,
                           config_.run.sample_every, measuring_);
  }
}

Snapshot Simulation::make_checkpoint() const {
  SnapshotMeta meta;
  meta.kind = SnapshotKind::Checkpoint;
  meta.measuring = measuring_;
  meta.warmup = config_.run.warmup;
  meta.measure = config_.run.measure;
  meta.sample_every = config_.run.sample_every;
  Snapshot snap =
      capture_snapshot(meta, config_.sim, config_.traffic, config_.detector,
                       config_.workload, *network_, *injection_, *detector_,
                       metrics_);
  if (obs_) {
    BinWriter out;
    obs_->save_state(out);
    snap.obs_state = out.bytes();
  }
  return snap;
}

void Simulation::save_snapshot(const std::string& path) const {
  write_snapshot_file(path, make_checkpoint());
}

void Simulation::write_checkpoint() {
  save_snapshot(config_.snapshot.checkpoint_dir + "/ckpt-" +
                std::to_string(network_->now()) + ".snap");
}

void Simulation::run_cycles(Cycle cycles) {
  for (Cycle i = 0; i < cycles; ++i) {
    injection_->tick(*network_);
    network_->step();
    detector_->tick(*network_);
    if (telemetry_) telemetry_->tick(*network_, *detector_);
    if (obs_) obs_->tick(*network_, *detector_);
    if (measuring_) metrics_.sample(*network_);
    if (config_.run.check_invariants &&
        network_->now() % config_.run.check_every == 0) {
      network_->check_invariants();
    }
    if (config_.snapshot.checkpoint_every > 0 &&
        network_->now() % config_.snapshot.checkpoint_every == 0) {
      write_checkpoint();
    }
  }
}

ExperimentResult Simulation::run() {
  if (resumed_ && resumed_measuring_) {
    // Mid-measurement resume: detector statistics and the metrics window
    // came back with the snapshot, so just finish the measured cycles.
    measuring_ = true;
    sync_corpus_run_state();
    run_cycles(std::max<Cycle>(
        config_.run.warmup + config_.run.measure - network_->now(), 0));
  } else {
    // Fresh run, or a resume that landed inside warmup.
    run_cycles(std::max<Cycle>(config_.run.warmup - network_->now(), 0));
    detector_->reset_statistics();
    if (forensics_) forensics_->clear();
    metrics_.begin_window(*network_);
    measuring_ = true;
    sync_corpus_run_state();
    run_cycles(config_.run.measure);
  }
  measuring_ = false;
  sync_corpus_run_state();

  ExperimentResult result;
  result.load = config_.traffic.load;
  result.capacity_flits_per_node = injection_->capacity_flits_per_node();
  result.offered_flit_rate = injection_->offered_flit_rate();
  result.avg_distance = injection_->average_distance();
  result.window =
      metrics_.finish(*network_, *detector_, config_.count_recovered_as_delivered);
  if (result.capacity_flits_per_node > 0) {
    result.normalized_throughput =
        result.window.throughput_flits_per_node / result.capacity_flits_per_node;
  }
  if (result.offered_flit_rate > 0) {
    result.accepted_ratio =
        result.window.throughput_flits_per_node / result.offered_flit_rate;
  }
  result.saturated = result.accepted_ratio < 0.95;
  if (resumed_) {
    result.resumed_from = config_.snapshot.resume_path;
    result.resumed_at_cycle = resumed_at_cycle_;
  }
  if (corpus_) {
    result.deadlocks_captured = corpus_->captured();
    result.capture_duplicates = corpus_->duplicates();
    result.capture_dropped = corpus_->dropped();
  }
  result.detector_invocations = detector_->invocations();
  result.detector_skipped_passes = detector_->skipped_passes();

  if (capture_writer_) {
    // Seal the captured trace (writes the `end <count>` trailer readers use
    // to detect truncation) before anything else can throw.
    injection_->set_capture(nullptr);
    capture_writer_->finish();
  }

  flush_trace();
  if (obs_) {
    // Finalize before the manifest is written so its "metrics" block carries
    // the final summary (lead time included).
    obs_->finalize(*network_, *detector_);
    result.obs = obs_->artifacts();
  }
  if (telemetry_) {
    telemetry_->finalize(*network_, *detector_);
    TelemetryArtifacts& artifacts = result.telemetry;
    artifacts.enabled = true;
    const IntervalRecorder& series = telemetry_->interval_series();
    artifacts.interval_samples = series.size();
    artifacts.samples_dropped = series.dropped();
    for (std::size_t i = 0; i < series.size(); ++i) {
      artifacts.deadlocks_in_series += series.at(i).deadlocks;
    }
    artifacts.heatmap_ascii = telemetry_->heatmap().ascii_grid(
        *network_, SpatialHeatmap::Field::Traversals);
    artifacts.profile_table = telemetry_->profiler().table();
    if (!config_.telemetry.heatmap_csv_path.empty()) {
      std::ofstream csv(config_.telemetry.heatmap_csv_path, std::ios::trunc);
      if (!csv) {
        throw std::runtime_error("cannot open heatmap CSV file: " +
                                 config_.telemetry.heatmap_csv_path);
      }
      telemetry_->heatmap().write_csv(csv, *network_);
      artifacts.heatmap_csv_path = config_.telemetry.heatmap_csv_path;
    }
    if (!config_.telemetry.manifest_path.empty()) {
      std::ofstream manifest(config_.telemetry.manifest_path, std::ios::trunc);
      if (!manifest) {
        throw std::runtime_error("cannot open telemetry manifest file: " +
                                 config_.telemetry.manifest_path);
      }
      write_manifest_json(manifest, config_, result, *telemetry_, *network_,
                          obs_.get());
      artifacts.manifest_path = config_.telemetry.manifest_path;
    }
  }
  if (forensics_) {
    result.forensics = forensics_->reports();
    if (!config_.trace.forensics_dot_prefix.empty()) {
      for (const ForensicsReport& report : result.forensics) {
        const std::string path = config_.trace.forensics_dot_prefix +
                                 std::to_string(report.sequence) + ".dot";
        std::ofstream dot(path);
        if (!dot) {
          throw std::runtime_error("cannot open forensics DOT file: " + path);
        }
        dot << report.dot;
      }
    }
  }
  return result;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  Simulation sim(config);
  return sim.run();
}

}  // namespace flexnet
