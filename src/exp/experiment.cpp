#include "exp/experiment.hpp"

#include "routing/routing.hpp"
#include "routing/selection.hpp"

namespace flexnet {

Simulation::Simulation(const ExperimentConfig& config)
    : config_(config), metrics_(config.run.sample_every) {
  config_.sim.validate();
  network_ = std::make_unique<Network>(config_.sim, make_routing(config_.sim),
                                       make_selection(config_.sim.selection));
  injection_ = std::make_unique<InjectionProcess>(*network_, config_.traffic,
                                                  config_.sim.seed);
  detector_ =
      std::make_unique<DeadlockDetector>(config_.detector, config_.sim.seed);
}

void Simulation::run_cycles(Cycle cycles) {
  for (Cycle i = 0; i < cycles; ++i) {
    injection_->tick(*network_);
    network_->step();
    detector_->tick(*network_);
    if (measuring_) metrics_.sample(*network_);
    if (config_.run.check_invariants &&
        network_->now() % config_.run.check_every == 0) {
      network_->check_invariants();
    }
  }
}

ExperimentResult Simulation::run() {
  run_cycles(config_.run.warmup);
  detector_->reset_statistics();
  metrics_.begin_window(*network_);
  measuring_ = true;
  run_cycles(config_.run.measure);
  measuring_ = false;

  ExperimentResult result;
  result.load = config_.traffic.load;
  result.capacity_flits_per_node = injection_->capacity_flits_per_node();
  result.offered_flit_rate = injection_->offered_flit_rate();
  result.avg_distance = injection_->average_distance();
  result.window =
      metrics_.finish(*network_, *detector_, config_.count_recovered_as_delivered);
  if (result.capacity_flits_per_node > 0) {
    result.normalized_throughput =
        result.window.throughput_flits_per_node / result.capacity_flits_per_node;
  }
  if (result.offered_flit_rate > 0) {
    result.accepted_ratio =
        result.window.throughput_flits_per_node / result.offered_flit_rate;
  }
  result.saturated = result.accepted_ratio < 0.95;
  return result;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  Simulation sim(config);
  return sim.run();
}

}  // namespace flexnet
