// Paper-style reporting: prints swept results as aligned series tables (one
// row per load, one column per metric) and as CSV for downstream plotting.
#pragma once

#include <functional>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "exp/experiment.hpp"

namespace flexnet {

/// One column of a printed series.
struct SeriesColumn {
  std::string name;
  std::function<double(const ExperimentResult&)> value;
  int digits = 4;
};

/// Prints a table with a leading "load" column and one column per metric,
/// marking the first saturated load with a '*' (the paper's dashed vertical
/// line).
void print_load_series(std::ostream& out, const std::string& title,
                       std::span<const ExperimentResult> results,
                       std::span<const SeriesColumn> columns);

/// Full-width CSV dump (fixed schema covering every windowed metric).
void write_results_csv(std::ostream& out,
                       std::span<const ExperimentResult> results,
                       const std::string& label);

/// Per-deadlock event log: one CSV row per detected deadlock with its full
/// characterization (detection cycle, set sizes, knot size, density, victim).
void write_deadlock_records_csv(std::ostream& out,
                                std::span<const DeadlockRecord> records,
                                const std::string& label);

/// Prints a deadlock-set size distribution as an ASCII histogram.
void print_set_size_histogram(std::ostream& out, const std::string& title,
                              const Histogram& histogram, int max_rows = 24);

/// Ready-made column sets matching the paper's figures.
[[nodiscard]] std::vector<SeriesColumn> deadlock_columns();
[[nodiscard]] std::vector<SeriesColumn> set_size_columns();
[[nodiscard]] std::vector<SeriesColumn> cycle_columns();
[[nodiscard]] std::vector<SeriesColumn> throughput_columns();

}  // namespace flexnet
