// Load sweeps: run the same configuration across a set of normalized loads,
// optionally in parallel (each point is an independent, deterministically
// seeded simulation).
#pragma once

#include <span>
#include <vector>

#include "exp/experiment.hpp"

namespace flexnet {

/// `steps` evenly spaced values over [lo, hi], inclusive.
[[nodiscard]] std::vector<double> linspace(double lo, double hi, int steps);

/// Runs `base` once per load (overriding traffic.load); results are returned
/// in load order regardless of execution order.
[[nodiscard]] std::vector<ExperimentResult> sweep_loads(
    const ExperimentConfig& base, std::span<const double> loads,
    bool parallel = true);

/// First swept load whose point saturated (accepted < 95% of offered);
/// returns a quiet NaN when none did.
[[nodiscard]] double saturation_load(std::span<const ExperimentResult> results);

}  // namespace flexnet
