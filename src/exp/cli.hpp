// Command-line construction of experiment configurations, shared by the
// sweep_cli example and tests. Every knob of SimConfig / TrafficConfig /
// DetectorConfig / RunConfig is reachable by name.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "exp/experiment.hpp"
#include "util/options.hpp"

namespace flexnet {

/// Parse enum spellings (exact, as printed by to_string). Throws
/// std::invalid_argument on unknown names.
[[nodiscard]] RoutingKind parse_routing(std::string_view name);
[[nodiscard]] SelectionKind parse_selection(std::string_view name);
[[nodiscard]] TrafficKind parse_traffic(std::string_view name);
[[nodiscard]] RecoveryKind parse_recovery(std::string_view name);
/// "torus" | "mesh" | "fullmesh" | "dragonfly" | "random" | "file:<path>"
/// (lowercase family names; "mesh" maps to Torus with wrap=false).
[[nodiscard]] TopoKind parse_topology(std::string_view name);

/// Builds a full experiment configuration from options:
///   --topology torus|mesh|fullmesh|dragonfly|random|file:<path>
///   --nodes --degree --df-routers --df-globals --topo-seed --route-table
///   --k --n --uni --mesh --vcs --buffer --ivcs --evcs --length
///   --short-length --short-fraction --routing --selection --misroutes
///   --faults --queue-limit --seed
///   --traffic --load --hotspots --hotspot-fraction --hybrid --hybrid-fraction
///   --interval --recovery --no-quiescence --count-cycles --cycle-cap
///   --warmup --measure --check --step-dense
///   --trace-ring N --trace-chrome FILE --trace-bin FILE --forensics
///   --forensics-dot PREFIX
///   --telemetry --telemetry-interval N --telemetry-ring N
///   --telemetry-json FILE --heatmap FILE --profile --heatmap-ascii
/// Unspecified options keep the paper's defaults.
[[nodiscard]] ExperimentConfig experiment_from_options(const Options& opts);

/// Parses a comma-separated load list ("0.1,0.2,0.5") or, when absent, an
/// even sweep from --load-min/--load-max/--load-steps.
[[nodiscard]] std::vector<double> loads_from_options(const Options& opts);

}  // namespace flexnet
