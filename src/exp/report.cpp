#include "exp/report.hpp"

#include <algorithm>
#include <string>

#include "util/csv.hpp"

namespace flexnet {

void print_load_series(std::ostream& out, const std::string& title,
                       std::span<const ExperimentResult> results,
                       std::span<const SeriesColumn> columns) {
  TableWriter table(title);
  std::vector<std::string> header{"load"};
  for (const SeriesColumn& col : columns) header.push_back(col.name);
  header.emplace_back("sat");
  table.header(std::move(header));

  bool saturation_marked = false;
  for (const ExperimentResult& r : results) {
    std::vector<std::string> row{TableWriter::num(r.load, 3)};
    for (const SeriesColumn& col : columns) {
      row.push_back(TableWriter::num(col.value(r), col.digits));
    }
    if (r.saturated && !saturation_marked) {
      row.emplace_back("*");  // the paper's vertical dashed line
      saturation_marked = true;
    } else {
      row.emplace_back(r.saturated ? "+" : "");
    }
    table.row(std::move(row));
  }
  table.print(out);
}

void write_results_csv(std::ostream& out,
                       std::span<const ExperimentResult> results,
                       const std::string& label) {
  CsvWriter csv(out);
  csv.header({"label", "load", "capacity", "offered", "avg_distance",
              "throughput", "norm_throughput", "accepted_ratio", "saturated",
              "generated", "delivered", "recovered", "latency", "hops",
              "blocked_mean", "blocked_frac_mean", "in_network_mean",
              "queued_mean", "deadlocks", "norm_deadlocks",
              "deadlock_set_mean", "deadlock_set_max", "resource_set_mean",
              "resource_set_max", "knot_density_mean", "knot_density_max",
              "dependent_mean", "single_cycle", "multi_cycle", "cycles_mean",
              "cycles_max", "cycles_capped"});
  for (const ExperimentResult& r : results) {
    const WindowMetrics& w = r.window;
    csv.row({label, TableWriter::num(r.load, 4),
             TableWriter::num(r.capacity_flits_per_node, 6),
             TableWriter::num(r.offered_flit_rate, 6),
             TableWriter::num(r.avg_distance, 4),
             TableWriter::num(w.throughput_flits_per_node, 6),
             TableWriter::num(r.normalized_throughput, 4),
             TableWriter::num(r.accepted_ratio, 4),
             r.saturated ? "1" : "0", TableWriter::integer(w.generated),
             TableWriter::integer(w.delivered),
             TableWriter::integer(w.recovered),
             TableWriter::num(w.avg_latency, 2), TableWriter::num(w.avg_hops, 2),
             TableWriter::num(w.blocked_messages.mean(), 2),
             TableWriter::num(w.blocked_fraction.mean(), 4),
             TableWriter::num(w.in_network_messages.mean(), 2),
             TableWriter::num(w.queued_messages.mean(), 2),
             TableWriter::integer(w.deadlocks),
             TableWriter::num(w.normalized_deadlocks, 6),
             TableWriter::num(w.deadlock_set_size.mean(), 2),
             TableWriter::num(w.deadlock_set_size.max(), 0),
             TableWriter::num(w.resource_set_size.mean(), 2),
             TableWriter::num(w.resource_set_size.max(), 0),
             TableWriter::num(w.knot_cycle_density.mean(), 2),
             TableWriter::num(w.knot_cycle_density.max(), 0),
             TableWriter::num(w.dependent_messages.mean(), 2),
             TableWriter::integer(w.single_cycle_deadlocks),
             TableWriter::integer(w.multi_cycle_deadlocks),
             TableWriter::num(w.cwg_cycles.mean(), 1),
             TableWriter::num(w.cwg_cycles.max(), 0),
             w.cycle_count_capped ? "1" : "0"});
  }
}

void write_deadlock_records_csv(std::ostream& out,
                                std::span<const DeadlockRecord> records,
                                const std::string& label) {
  CsvWriter csv(out);
  csv.header({"label", "cycle", "deadlock_set", "resource_set", "knot_size",
              "dependents", "knot_cycle_density", "density_capped", "victim"});
  for (const DeadlockRecord& r : records) {
    csv.row({label, TableWriter::integer(r.detected_at),
             TableWriter::integer(r.deadlock_set_size),
             TableWriter::integer(r.resource_set_size),
             TableWriter::integer(r.knot_size),
             TableWriter::integer(r.dependent_count),
             TableWriter::integer(r.knot_cycle_density),
             r.density_capped ? "1" : "0",
             TableWriter::integer(r.victim)});
  }
}

void print_set_size_histogram(std::ostream& out, const std::string& title,
                              const Histogram& histogram, int max_rows) {
  out << "== " << title << " ==\n";
  if (histogram.total() == 0) {
    out << "(no deadlocks)\n";
    return;
  }
  // Find the densest populated range and scale bars to the largest bucket.
  std::int64_t peak = 1;
  std::size_t last_used = 0;
  for (std::size_t i = 0; i < histogram.size(); ++i) {
    if (histogram.bucket(i) > 0) last_used = i;
    peak = std::max(peak, histogram.bucket(i));
  }
  const std::size_t rows =
      std::min<std::size_t>(last_used + 1, static_cast<std::size_t>(max_rows));
  for (std::size_t i = 0; i < rows; ++i) {
    const std::int64_t count = histogram.bucket(i);
    const int bar = static_cast<int>((40 * count) / peak);
    out << TableWriter::integer(static_cast<long long>(i)) << "\t" << count
        << "\t" << std::string(static_cast<std::size_t>(bar), '#') << '\n';
  }
  if (last_used + 1 > rows) {
    std::int64_t tail = 0;
    for (std::size_t i = rows; i < histogram.size(); ++i) {
      tail += histogram.bucket(i);
    }
    out << ">=" << rows << "\t" << tail << '\n';
  }
}

std::vector<SeriesColumn> deadlock_columns() {
  return {
      {"norm_deadlocks",
       [](const ExperimentResult& r) { return r.window.normalized_deadlocks; },
       5},
      {"deadlocks",
       [](const ExperimentResult& r) {
         return static_cast<double>(r.window.deadlocks);
       },
       0},
      {"delivered",
       [](const ExperimentResult& r) {
         return static_cast<double>(r.window.delivered + r.window.recovered);
       },
       0},
  };
}

std::vector<SeriesColumn> set_size_columns() {
  return {
      {"dset_mean",
       [](const ExperimentResult& r) { return r.window.deadlock_set_size.mean(); },
       2},
      {"dset_max",
       [](const ExperimentResult& r) { return r.window.deadlock_set_size.max(); },
       0},
      {"rset_mean",
       [](const ExperimentResult& r) { return r.window.resource_set_size.mean(); },
       2},
      {"rset_max",
       [](const ExperimentResult& r) { return r.window.resource_set_size.max(); },
       0},
      {"knot_density_mean",
       [](const ExperimentResult& r) { return r.window.knot_cycle_density.mean(); },
       2},
  };
}

std::vector<SeriesColumn> cycle_columns() {
  return {
      {"cycles_mean",
       [](const ExperimentResult& r) { return r.window.cwg_cycles.mean(); }, 1},
      {"cycles_max",
       [](const ExperimentResult& r) { return r.window.cwg_cycles.max(); }, 0},
      {"blocked_pct",
       [](const ExperimentResult& r) {
         return 100.0 * r.window.blocked_fraction.mean();
       },
       2},
  };
}

std::vector<SeriesColumn> throughput_columns() {
  return {
      {"norm_throughput",
       [](const ExperimentResult& r) { return r.normalized_throughput; }, 4},
      {"accepted_ratio",
       [](const ExperimentResult& r) { return r.accepted_ratio; }, 4},
      {"latency",
       [](const ExperimentResult& r) { return r.window.avg_latency; }, 1},
  };
}

}  // namespace flexnet
