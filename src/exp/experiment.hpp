// Experiment driver: wires topology, routing, injection, detector and
// metrics together and runs the paper's methodology — warm up to (approach)
// steady state, then measure for a fixed window with detection every
// `detector.interval` cycles.
#pragma once

#include <memory>

#include "core/detector.hpp"
#include "metrics/metrics.hpp"
#include "sim/network.hpp"
#include "traffic/injection.hpp"

namespace flexnet {

struct RunConfig {
  Cycle warmup = 10000;   ///< Cycles before measurement starts.
  Cycle measure = 30000;  ///< Measured cycles (paper: 30,000 beyond steady state).
  int sample_every = 1;   ///< Congestion sampling stride.
  bool check_invariants = false;  ///< Periodic full invariant validation.
  Cycle check_every = 997;
};

struct ExperimentConfig {
  SimConfig sim;
  TrafficConfig traffic;
  DetectorConfig detector;
  RunConfig run;
  /// Count recovery-delivered messages in the normalized-deadlock
  /// denominator (Disha delivers its victims).
  bool count_recovered_as_delivered = true;
};

struct ExperimentResult {
  double load = 0.0;
  double capacity_flits_per_node = 0.0;
  double offered_flit_rate = 0.0;
  double avg_distance = 0.0;
  WindowMetrics window;

  /// Accepted throughput normalized to channel capacity.
  double normalized_throughput = 0.0;
  /// Accepted / offered; < ~0.95 marks saturation.
  double accepted_ratio = 0.0;
  bool saturated = false;
};

/// A constructed, steppable simulation (examples drive this directly; the
/// one-shot helper below wraps it).
class Simulation {
 public:
  explicit Simulation(const ExperimentConfig& config);

  /// Advances injection + network + detector by `cycles`.
  void run_cycles(Cycle cycles);

  [[nodiscard]] Network& network() noexcept { return *network_; }
  [[nodiscard]] const Network& network() const noexcept { return *network_; }
  [[nodiscard]] DeadlockDetector& detector() noexcept { return *detector_; }
  [[nodiscard]] InjectionProcess& injection() noexcept { return *injection_; }
  [[nodiscard]] const ExperimentConfig& config() const noexcept { return config_; }

  /// Runs warmup + measurement and returns the result.
  [[nodiscard]] ExperimentResult run();

 private:
  ExperimentConfig config_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<InjectionProcess> injection_;
  std::unique_ptr<DeadlockDetector> detector_;
  MetricsCollector metrics_;
  bool measuring_ = false;
};

/// One-shot: build, warm up, measure, summarize.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config);

}  // namespace flexnet
