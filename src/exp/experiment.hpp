// Experiment driver: wires topology, routing, injection, detector and
// metrics together and runs the paper's methodology — warm up to (approach)
// steady state, then measure for a fixed window with detection every
// `detector.interval` cycles.
#pragma once

#include <fstream>
#include <memory>
#include <string>

#include "core/detector.hpp"
#include "metrics/metrics.hpp"
#include "obs/obs.hpp"
#include "sim/network.hpp"
#include "snapshot/corpus.hpp"
#include "snapshot/snapshot.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/forensics.hpp"
#include "trace/sinks.hpp"
#include "traffic/injection.hpp"
#include "workload/trace_file.hpp"
#include "workload/workload.hpp"

namespace flexnet {

struct RunConfig {
  Cycle warmup = 10000;   ///< Cycles before measurement starts.
  Cycle measure = 30000;  ///< Measured cycles (paper: 30,000 beyond steady state).
  int sample_every = 1;   ///< Congestion sampling stride.
  bool check_invariants = false;  ///< Periodic full invariant validation.
  Cycle check_every = 997;
  /// Run the dense per-cycle sweep instead of the event-driven active-set
  /// core (--step-dense). An execution-strategy choice, not simulation
  /// state: both paths produce byte-identical results, so it is never
  /// serialized and a resumed run honors the resuming command line.
  bool step_dense = false;
  /// Sharded parallel stepping (--shards): 0 = serial engine, -1 = auto
  /// (min(worker_thread_count(), nodes); worker_thread_count honors
  /// FLEXNET_THREADS), N >= 1 = exactly N shards. Like step_dense this is an
  /// execution strategy, never serialized: a resumed run honors the resuming
  /// command line, and any shard count >= 1 produces byte-identical results
  /// to any other (Network::set_shards).
  int shards = 0;
};

/// Tracing/forensics attachment for a simulation. Everything is off by
/// default; Simulation materializes the tracer, sinks and forensics recorder
/// from this and owns them for the run.
struct TraceConfig {
  /// Ring sink capacity in events; 0 disables the ring (unless forensics
  /// forces a default-sized one).
  std::size_t ring_capacity = 0;
  /// Write a Chrome trace-event JSON (chrome://tracing / Perfetto) here.
  std::string chrome_path;
  /// Write the deterministic binary encoding here.
  std::string binary_path;
  /// Record per-deadlock forensics (implies a ring sink; if ring_capacity is
  /// 0, kDefaultRingCapacity is used).
  bool forensics = false;
  /// When set, each forensics report's CWG snapshot is written to
  /// "<prefix><seq>.dot" at the end of the run.
  std::string forensics_dot_prefix;

  static constexpr std::size_t kDefaultRingCapacity = 1 << 16;

  [[nodiscard]] bool enabled() const noexcept {
    return ring_capacity > 0 || !chrome_path.empty() || !binary_path.empty() ||
           forensics;
  }

  /// Per-point file names for sweeps: "out.json" -> "out.json.p<i>" so
  /// parallel points never clobber each other.
  [[nodiscard]] TraceConfig with_point_suffix(std::size_t point) const;
};

/// Checkpoint / resume / deadlock-capture attachment. Everything off by
/// default; Simulation materializes the corpus hook and checkpoint writer.
struct SnapshotConfig {
  /// Write a checkpoint every C cycles (0 disables).
  Cycle checkpoint_every = 0;
  /// Directory for periodic checkpoints (created on demand).
  std::string checkpoint_dir = "checkpoints";
  /// Resume from this snapshot file. The snapshot's sim/traffic/detector
  /// configs and run schedule override the corresponding fields here.
  std::string resume_path;
  /// Capture a snapshot at each knot confirmation into this directory
  /// (empty disables), deduplicated by canonical knot hash.
  std::string capture_dir;
  /// Max captures per run (<= 0 = unlimited).
  int capture_limit = 16;

  [[nodiscard]] bool enabled() const noexcept {
    return checkpoint_every > 0 || !resume_path.empty() ||
           !capture_dir.empty();
  }

  /// Per-point directories for sweeps: "corpus" -> "corpus.p<i>" so parallel
  /// points never clobber each other's files. resume_path is left alone
  /// (resuming is a single-run operation).
  [[nodiscard]] SnapshotConfig with_point_suffix(std::size_t point) const;
};

struct ExperimentConfig {
  SimConfig sim;
  TrafficConfig traffic;
  /// Arrival process (--workload) + optional capture tap (--capture-trace).
  /// A trace workload's header overrides `traffic` at construction.
  WorkloadConfig workload;
  DetectorConfig detector;
  RunConfig run;
  TraceConfig trace;
  TelemetryConfig telemetry;
  ObsConfig obs;
  SnapshotConfig snapshot;
  /// Count recovery-delivered messages in the normalized-deadlock
  /// denominator (Disha delivers its victims).
  bool count_recovered_as_delivered = true;
};

struct ExperimentResult {
  double load = 0.0;
  double capacity_flits_per_node = 0.0;
  double offered_flit_rate = 0.0;
  double avg_distance = 0.0;
  WindowMetrics window;

  /// Accepted throughput normalized to channel capacity.
  double normalized_throughput = 0.0;
  /// Accepted / offered; < ~0.95 marks saturation.
  double accepted_ratio = 0.0;
  bool saturated = false;

  /// Forensics reports recorded during measurement (empty unless
  /// TraceConfig::forensics was set).
  std::vector<ForensicsReport> forensics;

  /// Telemetry summaries and output paths (all-default unless
  /// TelemetryConfig::enabled() was set).
  TelemetryArtifacts telemetry;

  /// Observability summary — precursor warnings, lead time, stream path
  /// (all-default unless ObsConfig::enabled() was set).
  ObsArtifacts obs;

  /// Resume lineage (recorded in the telemetry manifest): the snapshot file
  /// this run was resumed from and its cycle, or empty/-1 for fresh runs.
  std::string resumed_from;
  Cycle resumed_at_cycle = -1;

  /// Deadlock-corpus capture summary (zeros unless capture_dir was set).
  int deadlocks_captured = 0;
  int capture_duplicates = 0;
  int capture_dropped = 0;

  /// Detection-cost accounting (recorded in the telemetry manifest):
  /// total detector passes and how many the incremental pipeline satisfied
  /// without a CWG rebuild (arc epoch unchanged or nothing blocked).
  std::int64_t detector_invocations = 0;
  std::int64_t detector_skipped_passes = 0;
};

/// A constructed, steppable simulation (examples drive this directly; the
/// one-shot helper below wraps it).
class Simulation {
 public:
  explicit Simulation(const ExperimentConfig& config);

  /// Advances injection + network + detector by `cycles`.
  void run_cycles(Cycle cycles);

  [[nodiscard]] Network& network() noexcept { return *network_; }
  [[nodiscard]] const Network& network() const noexcept { return *network_; }
  [[nodiscard]] DeadlockDetector& detector() noexcept { return *detector_; }
  [[nodiscard]] InjectionProcess& injection() noexcept { return *injection_; }
  [[nodiscard]] const ExperimentConfig& config() const noexcept { return config_; }

  /// Non-null iff TraceConfig enabled the corresponding component.
  [[nodiscard]] Tracer* tracer() noexcept { return tracer_.get(); }
  [[nodiscard]] const RingBufferSink* trace_ring() const noexcept {
    return ring_.get();
  }
  [[nodiscard]] DeadlockForensics* forensics() noexcept {
    return forensics_.get();
  }
  /// Non-null iff TelemetryConfig::enabled().
  [[nodiscard]] Telemetry* telemetry() noexcept { return telemetry_.get(); }
  /// Non-null iff ObsConfig::enabled().
  [[nodiscard]] ObsCollector* obs() noexcept { return obs_.get(); }

  /// Flushes every attached sink (also done by run() and the destructor).
  void flush_trace();

  /// Captures the live state as a Checkpoint snapshot.
  [[nodiscard]] Snapshot make_checkpoint() const;
  /// Captures and writes a checkpoint to `path` (parents created on demand).
  void save_snapshot(const std::string& path) const;

  /// True when this simulation was restored from SnapshotConfig::resume_path.
  [[nodiscard]] bool resumed() const noexcept { return resumed_; }
  /// Non-null iff SnapshotConfig::capture_dir was set.
  [[nodiscard]] const DeadlockCorpus* corpus() const noexcept {
    return corpus_.get();
  }

  /// Runs warmup + measurement and returns the result. On a resumed
  /// simulation this completes the original schedule: it picks up at the
  /// checkpoint cycle — mid-warmup or mid-measurement — and produces the
  /// same window metrics the uninterrupted run would have.
  [[nodiscard]] ExperimentResult run();

 private:
  void write_checkpoint();
  void sync_corpus_run_state() noexcept;

  ExperimentConfig config_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<InjectionProcess> injection_;
  std::unique_ptr<DeadlockDetector> detector_;
  MetricsCollector metrics_;
  bool measuring_ = false;
  bool resumed_ = false;
  bool resumed_measuring_ = false;
  Cycle resumed_at_cycle_ = -1;
  std::unique_ptr<DeadlockCorpus> corpus_;

  // Trace attachment, owned for the simulation's lifetime. Streams are
  // declared before the sinks writing into them (destruction is reversed).
  std::ofstream chrome_out_;
  std::ofstream binary_out_;
  std::unique_ptr<RingBufferSink> ring_;
  std::unique_ptr<ChromeTraceSink> chrome_sink_;
  std::unique_ptr<BinaryTraceSink> binary_sink_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<DeadlockForensics> forensics_;
  std::unique_ptr<Telemetry> telemetry_;
  std::unique_ptr<ObsCollector> obs_;

  // Workload capture tap (--capture-trace): stream before writer.
  std::ofstream capture_out_;
  std::unique_ptr<TraceCaptureWriter> capture_writer_;
};

/// One-shot: build, warm up, measure, summarize.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config);

}  // namespace flexnet
