#include "exp/cli.hpp"

#include <cerrno>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "exp/sweep.hpp"

namespace flexnet {

namespace {
[[noreturn]] void unknown(const char* what, std::string_view name) {
  throw std::invalid_argument(std::string("unknown ") + what + ": " +
                              std::string(name));
}
}  // namespace

RoutingKind parse_routing(std::string_view name) {
  for (const RoutingKind kind :
       {RoutingKind::DOR, RoutingKind::TFAR, RoutingKind::DatelineDOR,
        RoutingKind::DuatoTFAR, RoutingKind::NegativeFirst,
        RoutingKind::TableMin, RoutingKind::TableUpDown}) {
    if (name == to_string(kind)) return kind;
  }
  unknown("routing", name);
}

SelectionKind parse_selection(std::string_view name) {
  for (const SelectionKind kind :
       {SelectionKind::PreferStraight, SelectionKind::Random,
        SelectionKind::LowestIndex}) {
    if (name == to_string(kind)) return kind;
  }
  unknown("selection", name);
}

TrafficKind parse_traffic(std::string_view name) {
  for (const TrafficKind kind :
       {TrafficKind::Uniform, TrafficKind::BitReversal, TrafficKind::Transpose,
        TrafficKind::PerfectShuffle, TrafficKind::HotSpot, TrafficKind::Tornado,
        TrafficKind::NearestNeighbor}) {
    if (name == to_string(kind)) return kind;
  }
  unknown("traffic", name);
}

RecoveryKind parse_recovery(std::string_view name) {
  for (const RecoveryKind kind :
       {RecoveryKind::None, RecoveryKind::RemoveOldest, RecoveryKind::RemoveNewest,
        RecoveryKind::RemoveMostResources, RecoveryKind::RemoveRandom}) {
    if (name == to_string(kind)) return kind;
  }
  unknown("recovery", name);
}

TopoKind parse_topology(std::string_view name) {
  if (name == "torus" || name == "mesh") return TopoKind::Torus;
  if (name == "fullmesh") return TopoKind::FullMesh;
  if (name == "dragonfly") return TopoKind::Dragonfly;
  if (name == "random") return TopoKind::RandomIrregular;
  if (name.substr(0, 5) == "file:") return TopoKind::File;
  unknown("topology (torus|mesh|fullmesh|dragonfly|random|file:<path>)", name);
}

ExperimentConfig experiment_from_options(const Options& opts) {
  ExperimentConfig cfg;

  // --topology selects the family; "mesh" is torus shorthand for wrap=false,
  // "file:<path>" loads a flexnet-topo-v1 file.
  const std::string topo_arg = opts.get("topology", "torus");
  cfg.sim.topo_kind = parse_topology(topo_arg);
  if (cfg.sim.topo_kind == TopoKind::File) {
    cfg.sim.topo_file = topo_arg.substr(5);
  }

  cfg.sim.topology.k = static_cast<int>(opts.get_int("k", cfg.sim.topology.k));
  cfg.sim.topology.n = static_cast<int>(opts.get_int("n", cfg.sim.topology.n));
  cfg.sim.topology.bidirectional = !opts.get_bool("uni", false);
  cfg.sim.topology.wrap = topo_arg != "mesh" && !opts.get_bool("mesh", false);

  cfg.sim.topo_nodes =
      static_cast<int>(opts.get_int("nodes", cfg.sim.topo_nodes));
  cfg.sim.topo_degree =
      static_cast<int>(opts.get_int("degree", cfg.sim.topo_degree));
  cfg.sim.topo_df_routers =
      static_cast<int>(opts.get_int("df-routers", cfg.sim.topo_df_routers));
  cfg.sim.topo_df_globals =
      static_cast<int>(opts.get_int("df-globals", cfg.sim.topo_df_globals));
  cfg.sim.topo_seed =
      static_cast<std::uint64_t>(opts.get_int("topo-seed", 1));
  cfg.sim.route_table_file = opts.get("route-table");

  cfg.sim.vcs = static_cast<int>(opts.get_int("vcs", cfg.sim.vcs));
  cfg.sim.buffer_depth =
      static_cast<int>(opts.get_int("buffer", cfg.sim.buffer_depth));
  cfg.sim.injection_vcs =
      static_cast<int>(opts.get_int("ivcs", cfg.sim.injection_vcs));
  cfg.sim.ejection_vcs =
      static_cast<int>(opts.get_int("evcs", cfg.sim.ejection_vcs));
  cfg.sim.message_length =
      static_cast<int>(opts.get_int("length", cfg.sim.message_length));
  cfg.sim.short_message_length = static_cast<int>(
      opts.get_int("short-length", cfg.sim.short_message_length));
  cfg.sim.short_message_fraction =
      opts.get_double("short-fraction", cfg.sim.short_message_fraction);

  // The five torus relations cannot route an arbitrary graph, so non-torus
  // topologies default to the table-based deadlock-prone subject.
  cfg.sim.routing = parse_routing(opts.get(
      "routing", cfg.sim.topo_kind == TopoKind::Torus ? "TFAR" : "TableMin"));
  cfg.sim.selection = parse_selection(opts.get("selection", "PreferStraight"));
  cfg.sim.max_misroutes =
      static_cast<int>(opts.get_int("misroutes", cfg.sim.max_misroutes));
  cfg.sim.link_fault_fraction =
      opts.get_double("faults", cfg.sim.link_fault_fraction);
  cfg.sim.source_queue_limit =
      static_cast<int>(opts.get_int("queue-limit", cfg.sim.source_queue_limit));
  cfg.sim.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));

  cfg.traffic.pattern = parse_traffic(opts.get("traffic", "Uniform"));
  cfg.traffic.load = opts.get_double("load", cfg.traffic.load);
  cfg.traffic.hotspot_nodes =
      static_cast<int>(opts.get_int("hotspots", cfg.traffic.hotspot_nodes));
  cfg.traffic.hotspot_fraction =
      opts.get_double("hotspot-fraction", cfg.traffic.hotspot_fraction);
  cfg.traffic.hybrid_fraction =
      opts.get_double("hybrid-fraction", cfg.traffic.hybrid_fraction);
  if (opts.has("hybrid")) {
    cfg.traffic.hybrid_with = parse_traffic(opts.get("hybrid"));
  }

  // Arrival process: bernoulli (default) | trace:<path> | pace:<spec>, plus
  // an optional capture tap mirroring every generated message into a
  // replayable flexnet-trace-v1 file.
  if (opts.has("workload")) {
    cfg.workload = parse_workload_spec(opts.get("workload"));
  }
  cfg.workload.capture_path = opts.get("capture-trace");

  cfg.detector.interval = opts.get_int("interval", cfg.detector.interval);
  cfg.detector.recovery = parse_recovery(opts.get("recovery", "RemoveOldest"));
  cfg.detector.require_quiescence = !opts.get_bool("no-quiescence", false);
  cfg.detector.count_total_cycles = opts.get_bool("count-cycles", false);
  cfg.detector.total_cycle_cap =
      opts.get_int("cycle-cap", cfg.detector.total_cycle_cap);
  cfg.detector.livelock_hop_limit = static_cast<int>(
      opts.get_int("livelock-limit", cfg.detector.livelock_hop_limit));
  cfg.detector.full_rebuild = opts.get_bool("detector-full-rebuild", false);

  cfg.run.warmup = opts.get_int("warmup", cfg.run.warmup);
  cfg.run.measure = opts.get_int("measure", cfg.run.measure);
  cfg.run.check_invariants = opts.get_bool("check", false);
  cfg.run.step_dense = opts.get_bool("step-dense", false);

  // --shards N|auto selects the parallel stepping engine. Strict parse: only
  // "auto" or an all-digit positive count is accepted ("8x", "", "-2" are
  // errors, not silent fallbacks). "auto" resolves at construction to
  // min(worker_thread_count(), nodes); worker_thread_count() honors
  // FLEXNET_THREADS, so the explicit flag outranks the environment.
  if (opts.has("shards")) {
    const std::string shards_arg = opts.get("shards");
    if (shards_arg == "auto") {
      cfg.run.shards = -1;
    } else {
      if (shards_arg.empty() ||
          shards_arg.find_first_not_of("0123456789") != std::string::npos) {
        throw std::invalid_argument("--shards must be a positive integer or "
                                    "'auto', got: " + shards_arg);
      }
      errno = 0;
      char* end = nullptr;
      const long long value = std::strtoll(shards_arg.c_str(), &end, 10);
      if (errno == ERANGE || *end != '\0' || value < 1 ||
          value > std::numeric_limits<int>::max()) {
        throw std::invalid_argument("--shards out of range: " + shards_arg);
      }
      cfg.run.shards = static_cast<int>(value);
    }
    if (cfg.run.step_dense) {
      throw std::invalid_argument(
          "--shards cannot combine with --step-dense (the dense sweep is the "
          "serial engine's oracle)");
    }
  }

  const long long ring = opts.get_int("trace-ring", 0);
  if (ring < 0) throw std::invalid_argument("--trace-ring must be >= 0");
  cfg.trace.ring_capacity = static_cast<std::size_t>(ring);
  cfg.trace.chrome_path = opts.get("trace-chrome");
  cfg.trace.binary_path = opts.get("trace-bin");
  cfg.trace.forensics = opts.get_bool("forensics", false);
  cfg.trace.forensics_dot_prefix = opts.get("forensics-dot");
  if (!cfg.trace.forensics_dot_prefix.empty()) cfg.trace.forensics = true;

  cfg.telemetry.collect = opts.get_bool("telemetry", false);
  const long long telemetry_interval =
      opts.get_int("telemetry-interval", cfg.telemetry.interval);
  if (telemetry_interval < 1) {
    throw std::invalid_argument("--telemetry-interval must be >= 1");
  }
  cfg.telemetry.interval = telemetry_interval;
  const long long telemetry_ring = opts.get_int(
      "telemetry-ring", static_cast<long long>(cfg.telemetry.ring_capacity));
  if (telemetry_ring < 1) {
    throw std::invalid_argument("--telemetry-ring must be >= 1");
  }
  cfg.telemetry.ring_capacity = static_cast<std::size_t>(telemetry_ring);
  cfg.telemetry.manifest_path = opts.get("telemetry-json");
  cfg.telemetry.heatmap_csv_path = opts.get("heatmap");

  cfg.obs.collect = opts.get_bool("metrics-collect", false);
  cfg.obs.metrics_path = opts.get("metrics");
  const long long metrics_interval =
      opts.get_int("metrics-interval", cfg.obs.interval);
  if (metrics_interval < 1) {
    throw std::invalid_argument("--metrics-interval must be >= 1");
  }
  cfg.obs.interval = metrics_interval;
  cfg.obs.warn_threshold =
      opts.get_double("warn-threshold", cfg.obs.warn_threshold);
  if (cfg.obs.warn_threshold <= 0) {
    throw std::invalid_argument("--warn-threshold must be > 0");
  }
  const long long stall_ref = opts.get_int("warn-stall-ref", cfg.obs.stall_ref);
  if (stall_ref < 1) {
    throw std::invalid_argument("--warn-stall-ref must be >= 1");
  }
  cfg.obs.stall_ref = stall_ref;

  const long long checkpoint_every = opts.get_int("checkpoint-every", 0);
  if (checkpoint_every < 0) {
    throw std::invalid_argument("--checkpoint-every must be >= 0");
  }
  cfg.snapshot.checkpoint_every = checkpoint_every;
  cfg.snapshot.checkpoint_dir =
      opts.get("checkpoint-dir", cfg.snapshot.checkpoint_dir);
  cfg.snapshot.resume_path = opts.get("resume");
  cfg.snapshot.capture_dir = opts.get("capture-deadlocks");
  cfg.snapshot.capture_limit = static_cast<int>(
      opts.get_int("capture-limit", cfg.snapshot.capture_limit));
  // Display-only flags still need the collectors running.
  if (opts.get_bool("profile", false) || opts.get_bool("heatmap-ascii", false)) {
    cfg.telemetry.collect = true;
  }

  cfg.sim.validate();
  return cfg;
}

std::vector<double> loads_from_options(const Options& opts) {
  if (opts.has("loads")) {
    std::vector<double> loads;
    const std::string list = opts.get("loads");
    const char* cursor = list.c_str();
    while (*cursor != '\0') {
      char* end = nullptr;
      const double value = std::strtod(cursor, &end);
      if (end == cursor) {
        throw std::invalid_argument("malformed --loads list: " + list);
      }
      loads.push_back(value);
      cursor = (*end == ',') ? end + 1 : end;
    }
    if (loads.empty()) throw std::invalid_argument("--loads list is empty");
    return loads;
  }
  const double lo = opts.get_double("load-min", 0.05);
  const double hi = opts.get_double("load-max", 0.9);
  const int steps = static_cast<int>(opts.get_int("load-steps", 8));
  return linspace(lo, hi, steps);
}

}  // namespace flexnet
