// Simple (elementary) cycle counting via Johnson's algorithm.
//
// The paper uses two cycle statistics: the total number of unique resource
// dependency cycles in the CWG (Figs. 6a, 7b) and the "knot cycle density" —
// the number of unique cycles inside a knot. Cycle counts explode
// exponentially at saturation ("hundreds of thousands"), so enumeration takes
// a hard cap: once `cap` cycles have been found the result is flagged capped
// and reported as a lower bound, which preserves the growth shape the paper
// plots at a bounded cost.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.hpp"

namespace flexnet {

struct CycleEnumeration {
  std::int64_t count = 0;
  bool capped = false;
  /// Up to `store_limit` concrete cycles (vertex sequences), for reporting.
  std::vector<std::vector<int>> cycles;
};

/// Counts elementary cycles of `graph`, stopping at `cap`. When
/// `store_limit` > 0, that many cycles are also materialized.
[[nodiscard]] CycleEnumeration enumerate_simple_cycles(const Digraph& graph,
                                                       std::int64_t cap,
                                                       std::size_t store_limit = 0);

}  // namespace flexnet
