// Timeout-based (approximate) deadlock detection, as used by recovery
// schemes before true detection existed: Compressionless Routing presumes
// deadlock when a packet stalls longer than its path latency; Disha uses a
// blocked-time-out counter. The paper's Related Work notes such schemes
// "provided little insight into the frequency of true deadlocks" — this
// module quantifies how badly a timeout over-approximates by classifying
// every presumed-deadlocked message against the knot-based ground truth.
#pragma once

#include <vector>

#include "sim/types.hpp"

namespace flexnet {

class Network;

struct TimeoutAccuracy {
  std::int64_t presumed = 0;        ///< Messages over the timeout.
  std::int64_t true_positive = 0;   ///< ...that really are in a deadlock set.
  std::int64_t dependent = 0;       ///< ...blocked on a deadlock but not in it.
  std::int64_t false_positive = 0;  ///< ...merely congested.
  std::int64_t actually_deadlocked = 0;  ///< Ground truth (all deadlock sets).

  [[nodiscard]] double false_positive_rate() const noexcept {
    return presumed > 0
               ? static_cast<double>(false_positive) / static_cast<double>(presumed)
               : 0.0;
  }
  /// Deadlocked messages the timeout has not (yet) flagged.
  [[nodiscard]] std::int64_t missed() const noexcept {
    return actually_deadlocked - true_positive;
  }
};

/// Messages continuously blocked for at least `threshold` cycles.
[[nodiscard]] std::vector<MessageId> presumed_deadlocked(const Network& net,
                                                         Cycle threshold);

/// Classifies the presumed set against true (quiescent-knot) deadlocks.
[[nodiscard]] TimeoutAccuracy classify_timeout_detection(const Network& net,
                                                         Cycle threshold);

}  // namespace flexnet
