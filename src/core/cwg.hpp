// Channel wait-for graph (CWG) — the paper's Section 2.1 construct.
//
// Vertices are virtual channels. For every in-network message, a chain of
// solid arcs records the temporal order of the VCs it currently owns; if the
// message is blocked, dashed (request) arcs run from its newest owned VC to
// every VC its header could acquire at this instant. The graph reflects the
// network's *dynamic* state — not the routing relation — so it is generally
// disconnected. A deadlock exists iff the graph contains a knot.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/graph.hpp"
#include "sim/types.hpp"

namespace flexnet {

class Network;

/// A message's contribution to the CWG.
struct CwgMessage {
  MessageId id = kInvalidMessage;
  std::vector<VcId> held;      ///< Owned VCs, oldest first (solid-arc chain).
  std::vector<VcId> requests;  ///< Desired VCs; non-empty iff blocked.
};

class Cwg {
 public:
  /// Empty graph; populate with rebuild_from_network().
  Cwg() = default;

  /// Hand-built scenario (unit tests reproduce the paper's Figs. 1-4).
  Cwg(int num_vcs, std::vector<CwgMessage> messages);

  /// Snapshot of a live network: every active message's held chain plus the
  /// request sets recorded by the most recent routing attempt.
  [[nodiscard]] static Cwg from_network(const Network& net);

  /// In-place equivalent of from_network: rebuilds this graph from the live
  /// network state while reusing all previously allocated storage (adjacency
  /// rows, owner table, message pool, id index). After the first few passes
  /// every vector runs at its high-water capacity and rebuilds allocate
  /// nothing, which is what makes per-cycle detection affordable.
  void rebuild_from_network(const Network& net);

  [[nodiscard]] const Digraph& graph() const noexcept { return graph_; }
  [[nodiscard]] int num_vcs() const noexcept { return graph_.num_vertices(); }
  [[nodiscard]] std::span<const CwgMessage> messages() const noexcept {
    return {messages_.data(), num_messages_};
  }
  /// Owner of a VC vertex; kInvalidMessage when free.
  [[nodiscard]] MessageId owner_of(VcId vc) const {
    return owner_[static_cast<std::size_t>(vc)];
  }
  /// Lookup by message id; nullptr when the message is not in the graph.
  [[nodiscard]] const CwgMessage* find_message(MessageId id) const;

  /// Number of solid (ownership) and dashed (request) arcs.
  [[nodiscard]] int num_ownership_arcs() const noexcept { return ownership_arcs_; }
  [[nodiscard]] int num_request_arcs() const noexcept { return request_arcs_; }
  /// Blocked messages = messages contributing request arcs.
  [[nodiscard]] int num_blocked_messages() const noexcept { return blocked_; }

 private:
  void build();

  Digraph graph_;
  /// Grow-only message pool; entries [0, num_messages_) are live this pass.
  /// Dead tail entries keep their held/requests capacity for reuse.
  std::vector<CwgMessage> messages_;
  std::size_t num_messages_ = 0;
  std::vector<MessageId> owner_;
  /// Dense MessageId -> pool-index map. A slot is valid only when its
  /// generation stamp matches the current build, so rebuilds skip the O(max
  /// id) clear an unordered_map (or a plain -1 fill) would need.
  struct IndexSlot {
    std::uint64_t gen = 0;
    std::uint32_t idx = 0;
  };
  std::vector<IndexSlot> index_;
  std::uint64_t generation_ = 0;
  int ownership_arcs_ = 0;
  int request_arcs_ = 0;
  int blocked_ = 0;
};

}  // namespace flexnet
