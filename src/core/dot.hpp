// Graphviz export of channel wait-for graphs, in the visual language of the
// paper's figures: solid arcs for ownership chains, dashed arcs for requests,
// knot vertices highlighted. Render with `dot -Tsvg cwg.dot -o cwg.svg`.
#pragma once

#include <span>
#include <string>

#include "core/cwg.hpp"
#include "core/knot.hpp"

namespace flexnet {

/// Serializes the CWG (isolated vertices omitted). Vertices belonging to a
/// knot in `knots` are filled red; each arc is labeled with the owning or
/// requesting message id.
[[nodiscard]] std::string cwg_to_dot(const Cwg& cwg,
                                     std::span<const Knot> knots = {});

}  // namespace flexnet
