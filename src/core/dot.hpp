// Graphviz export of channel wait-for graphs, in the visual language of the
// paper's figures: solid arcs for ownership chains, dashed arcs for requests,
// knot vertices highlighted. Render with `dot -Tsvg cwg.dot -o cwg.svg`.
#pragma once

#include <span>
#include <string>

#include "core/cwg.hpp"
#include "core/knot.hpp"

namespace flexnet {

class Topology;

/// Serializes the CWG (isolated vertices omitted). Vertices belonging to a
/// knot in `knots` are filled red; each arc is labeled with the owning or
/// requesting message id.
[[nodiscard]] std::string cwg_to_dot(const Cwg& cwg,
                                     std::span<const Knot> knots = {});

/// Serializes a topology's node/link structure. Antiparallel equal-width
/// channel pairs collapse into one undirected edge; remaining channels are
/// drawn directed. Links of width > 1 are labeled "xW".
[[nodiscard]] std::string topology_to_dot(const Topology& topo);

}  // namespace flexnet
