#include "core/pwg.hpp"

#include <algorithm>

#include "core/scc.hpp"

namespace flexnet {

Pwg Pwg::from_cwg(const Cwg& cwg) {
  Pwg pwg;
  pwg.ids.reserve(cwg.messages().size());
  for (const CwgMessage& msg : cwg.messages()) pwg.ids.push_back(msg.id);
  std::sort(pwg.ids.begin(), pwg.ids.end());

  pwg.graph = Digraph(static_cast<int>(pwg.ids.size()));
  for (const CwgMessage& msg : cwg.messages()) {
    const int from = pwg.index_of(msg.id);
    for (const VcId want : msg.requests) {
      const MessageId owner = cwg.owner_of(want);
      if (owner == kInvalidMessage || owner == msg.id) continue;
      const int to = pwg.index_of(owner);
      if (!pwg.graph.has_edge(from, to)) pwg.graph.add_edge(from, to);
    }
  }
  return pwg;
}

int Pwg::index_of(MessageId id) const {
  const auto it = std::lower_bound(ids.begin(), ids.end(), id);
  if (it == ids.end() || *it != id) return -1;
  return static_cast<int>(it - ids.begin());
}

bool Pwg::has_cycle() const { return messages_on_cycles() > 0; }

int Pwg::messages_on_cycles() const {
  const SccResult scc = strongly_connected_components(graph);
  int on_cycles = 0;
  for (int c = 0; c < scc.num_components; ++c) {
    if (scc.size[static_cast<std::size_t>(c)] >= 2) {
      on_cycles += scc.size[static_cast<std::size_t>(c)];
    }
  }
  // Self-waits cannot appear (filtered in from_cwg), so size-1 SCCs are
  // never cyclic here.
  return on_cycles;
}

}  // namespace flexnet
