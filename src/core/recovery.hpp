// Deadlock recovery: victim selection over a knot's deadlock set.
//
// The paper breaks each detected deadlock "by removing a message in the
// deadlock set (flit-by-flit) from the network so as to synthesize a recovery
// procedure (as in the Disha scheme)". Network::remove_message performs the
// removal; this module only decides who dies.
#pragma once

#include <span>

#include "sim/config.hpp"
#include "sim/types.hpp"
#include "util/rng.hpp"

namespace flexnet {

class Network;

/// Picks the deadlock-set message to remove according to `kind`.
/// Precondition: `deadlock_set` is non-empty and RecoveryKind != None.
[[nodiscard]] MessageId choose_victim(const Network& net,
                                      std::span<const MessageId> deadlock_set,
                                      RecoveryKind kind, Pcg32& rng);

}  // namespace flexnet
