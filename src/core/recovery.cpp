#include "core/recovery.hpp"

#include <cassert>
#include <stdexcept>

#include "sim/network.hpp"

namespace flexnet {

MessageId choose_victim(const Network& net,
                        std::span<const MessageId> deadlock_set,
                        RecoveryKind kind, Pcg32& rng) {
  assert(!deadlock_set.empty());
  switch (kind) {
    case RecoveryKind::None:
      throw std::invalid_argument("choose_victim called with RecoveryKind::None");
    case RecoveryKind::RemoveOldest: {
      MessageId best = deadlock_set.front();
      for (const MessageId id : deadlock_set) {
        if (net.message(id).created < net.message(best).created) best = id;
      }
      return best;
    }
    case RecoveryKind::RemoveNewest: {
      MessageId best = deadlock_set.front();
      for (const MessageId id : deadlock_set) {
        if (net.message(id).created > net.message(best).created) best = id;
      }
      return best;
    }
    case RecoveryKind::RemoveMostResources: {
      MessageId best = deadlock_set.front();
      for (const MessageId id : deadlock_set) {
        if (net.message(id).held.size() > net.message(best).held.size()) {
          best = id;
        }
      }
      return best;
    }
    case RecoveryKind::RemoveRandom:
      return deadlock_set[rng.bounded(
          static_cast<std::uint32_t>(deadlock_set.size()))];
  }
  throw std::invalid_argument("unknown recovery kind");
}

}  // namespace flexnet
