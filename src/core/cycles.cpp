#include "core/cycles.hpp"

#include <algorithm>

#include "core/scc.hpp"

namespace flexnet {

namespace {

/// Johnson's elementary-circuit search over one strongly connected component
/// (self-loops pre-counted and stripped by the caller).
class JohnsonSearch {
 public:
  JohnsonSearch(const Digraph& graph, const std::vector<int>& to_original,
                std::int64_t cap, std::size_t store_limit,
                CycleEnumeration& out)
      : graph_(graph),
        to_original_(to_original),
        cap_(cap),
        store_limit_(store_limit),
        out_(out) {}

  void run() {
    const int n = graph_.num_vertices();
    blocked_.assign(static_cast<std::size_t>(n), false);
    b_sets_.assign(static_cast<std::size_t>(n), {});
    for (start_ = 0; start_ < n && !out_.capped; ++start_) {
      // Restrict to the SCC (within vertices >= start_) containing start_;
      // this keeps start_ the least vertex of every circuit found.
      const Digraph restricted = restrict_from(start_);
      if (restricted.out(start_).empty()) continue;
      for (int v = start_; v < n; ++v) {
        blocked_[static_cast<std::size_t>(v)] = false;
        b_sets_[static_cast<std::size_t>(v)].clear();
      }
      circuit(start_, restricted);
    }
  }

 private:
  /// Subgraph on vertices >= start_, limited to start_'s SCC there.
  [[nodiscard]] Digraph restrict_from(int start) const {
    const int n = graph_.num_vertices();
    Digraph high(n);
    for (int v = start; v < n; ++v) {
      for (const int w : graph_.out(v)) {
        if (w >= start) high.add_edge(v, w);
      }
    }
    const SccResult scc = strongly_connected_components(high);
    const int comp = scc.component[static_cast<std::size_t>(start)];
    Digraph result(n);
    for (int v = start; v < n; ++v) {
      if (scc.component[static_cast<std::size_t>(v)] != comp) continue;
      for (const int w : high.out(v)) {
        if (scc.component[static_cast<std::size_t>(w)] == comp) {
          result.add_edge(v, w);
        }
      }
    }
    return result;
  }

  bool circuit(int v, const Digraph& g) {
    bool found = false;
    path_.push_back(v);
    blocked_[static_cast<std::size_t>(v)] = true;
    for (const int w : g.out(v)) {
      if (out_.capped) break;
      if (w == start_) {
        record_cycle();
        found = true;
      } else if (!blocked_[static_cast<std::size_t>(w)]) {
        if (circuit(w, g)) found = true;
      }
    }
    if (found) {
      unblock(v);
    } else {
      for (const int w : g.out(v)) {
        auto& b = b_sets_[static_cast<std::size_t>(w)];
        if (std::find(b.begin(), b.end(), v) == b.end()) b.push_back(v);
      }
    }
    path_.pop_back();
    return found;
  }

  void unblock(int v) {
    blocked_[static_cast<std::size_t>(v)] = false;
    auto& b = b_sets_[static_cast<std::size_t>(v)];
    while (!b.empty()) {
      const int w = b.back();
      b.pop_back();
      if (blocked_[static_cast<std::size_t>(w)]) unblock(w);
    }
  }

  void record_cycle() {
    ++out_.count;
    if (out_.cycles.size() < store_limit_) {
      std::vector<int> cycle;
      cycle.reserve(path_.size());
      for (const int v : path_) {
        cycle.push_back(to_original_[static_cast<std::size_t>(v)]);
      }
      out_.cycles.push_back(std::move(cycle));
    }
    if (out_.count >= cap_) out_.capped = true;
  }

  const Digraph& graph_;
  const std::vector<int>& to_original_;
  std::int64_t cap_;
  std::size_t store_limit_;
  CycleEnumeration& out_;

  int start_ = 0;
  std::vector<bool> blocked_;
  std::vector<std::vector<int>> b_sets_;
  std::vector<int> path_;
};

}  // namespace

CycleEnumeration enumerate_simple_cycles(const Digraph& graph, std::int64_t cap,
                                         std::size_t store_limit) {
  CycleEnumeration result;
  if (cap <= 0) {
    result.capped = true;
    return result;
  }

  // Self-loops are length-1 cycles; count them upfront and exclude them from
  // the search below.
  for (int v = 0; v < graph.num_vertices() && !result.capped; ++v) {
    for (const int w : graph.out(v)) {
      if (w != v) continue;
      ++result.count;
      if (result.cycles.size() < store_limit) result.cycles.push_back({v});
      if (result.count >= cap) result.capped = true;
    }
  }
  if (result.capped) return result;

  // Cycles never span SCCs; search each nontrivial component independently.
  const SccResult scc = strongly_connected_components(graph);
  for (int comp = 0; comp < scc.num_components && !result.capped; ++comp) {
    if (scc.size[static_cast<std::size_t>(comp)] < 2) continue;
    const std::vector<int> members = scc.members(comp);
    Digraph sub = graph.induced(members);
    // Strip self-loops (already counted).
    Digraph clean(sub.num_vertices());
    for (int v = 0; v < sub.num_vertices(); ++v) {
      for (const int w : sub.out(v)) {
        if (w != v) clean.add_edge(v, w);
      }
    }
    JohnsonSearch search(clean, members, cap, store_limit, result);
    search.run();
  }
  return result;
}

}  // namespace flexnet
