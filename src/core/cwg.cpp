#include "core/cwg.hpp"

#include <stdexcept>

#include "sim/network.hpp"

namespace flexnet {

Cwg::Cwg(int num_vcs, std::vector<CwgMessage> messages)
    : graph_(num_vcs),
      messages_(std::move(messages)),
      owner_(static_cast<std::size_t>(num_vcs), kInvalidMessage) {
  build();
}

Cwg Cwg::from_network(const Network& net) {
  std::vector<CwgMessage> messages;
  messages.reserve(net.active_messages().size());
  for (const MessageId id : net.active_messages()) {
    const Message& msg = net.message(id);
    CwgMessage entry;
    entry.id = id;
    entry.held = msg.held;
    if (msg.blocked) entry.requests = msg.request_set;
    messages.push_back(std::move(entry));
  }
  return Cwg(static_cast<int>(net.num_vcs()), std::move(messages));
}

void Cwg::build() {
  for (std::size_t i = 0; i < messages_.size(); ++i) {
    const CwgMessage& msg = messages_[i];
    if (msg.held.empty()) {
      throw std::invalid_argument("CWG messages must own at least one VC");
    }
    index_.emplace(msg.id, i);
    for (std::size_t h = 0; h < msg.held.size(); ++h) {
      const VcId vc = msg.held[h];
      if (owner_[static_cast<std::size_t>(vc)] != kInvalidMessage) {
        throw std::invalid_argument("VC owned by two messages");
      }
      owner_[static_cast<std::size_t>(vc)] = msg.id;
      if (h + 1 < msg.held.size()) {
        graph_.add_edge(vc, msg.held[h + 1]);
        ++ownership_arcs_;
      }
    }
  }
  // Request (dashed) arcs leave the newest owned VC of each blocked message.
  for (const CwgMessage& msg : messages_) {
    if (msg.requests.empty()) continue;
    ++blocked_;
    const VcId tip = msg.held.back();
    for (const VcId want : msg.requests) {
      graph_.add_edge(tip, want);
      ++request_arcs_;
    }
  }
}

const CwgMessage* Cwg::find_message(MessageId id) const {
  const auto it = index_.find(id);
  return it == index_.end() ? nullptr : &messages_[it->second];
}

}  // namespace flexnet
