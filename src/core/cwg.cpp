#include "core/cwg.hpp"

#include <stdexcept>

#include "sim/network.hpp"

namespace flexnet {

Cwg::Cwg(int num_vcs, std::vector<CwgMessage> messages)
    : graph_(num_vcs),
      messages_(std::move(messages)),
      num_messages_(0),
      owner_(static_cast<std::size_t>(num_vcs), kInvalidMessage) {
  num_messages_ = messages_.size();
  build();
}

Cwg Cwg::from_network(const Network& net) {
  Cwg cwg;
  cwg.rebuild_from_network(net);
  return cwg;
}

void Cwg::rebuild_from_network(const Network& net) {
  const std::vector<MessageId>& active = net.active_messages();
  if (messages_.size() < active.size()) messages_.resize(active.size());
  num_messages_ = active.size();
  for (std::size_t i = 0; i < active.size(); ++i) {
    const Message& msg = net.message(active[i]);
    CwgMessage& entry = messages_[i];
    entry.id = msg.id;
    entry.held.assign(msg.held.begin(), msg.held.end());
    if (msg.blocked) {
      entry.requests.assign(msg.request_set.begin(), msg.request_set.end());
    } else {
      entry.requests.clear();
    }
  }
  graph_.reset(static_cast<int>(net.num_vcs()));
  owner_.assign(net.num_vcs(), kInvalidMessage);
  ownership_arcs_ = 0;
  request_arcs_ = 0;
  blocked_ = 0;
  build();
}

void Cwg::build() {
  ++generation_;
  const std::span<const CwgMessage> live = messages();
  for (std::size_t i = 0; i < live.size(); ++i) {
    const CwgMessage& msg = live[i];
    if (msg.held.empty()) {
      throw std::invalid_argument("CWG messages must own at least one VC");
    }
    if (msg.id < 0) {
      throw std::invalid_argument("CWG message ids must be non-negative");
    }
    if (static_cast<std::size_t>(msg.id) >= index_.size()) {
      index_.resize(static_cast<std::size_t>(msg.id) + 1);
    }
    IndexSlot& slot = index_[static_cast<std::size_t>(msg.id)];
    slot.gen = generation_;
    slot.idx = static_cast<std::uint32_t>(i);
    for (std::size_t h = 0; h < msg.held.size(); ++h) {
      const VcId vc = msg.held[h];
      if (owner_[static_cast<std::size_t>(vc)] != kInvalidMessage) {
        throw std::invalid_argument("VC owned by two messages");
      }
      owner_[static_cast<std::size_t>(vc)] = msg.id;
      if (h + 1 < msg.held.size()) {
        graph_.add_edge(vc, msg.held[h + 1]);
        ++ownership_arcs_;
      }
    }
  }
  // Request (dashed) arcs leave the newest owned VC of each blocked message.
  for (const CwgMessage& msg : live) {
    if (msg.requests.empty()) continue;
    ++blocked_;
    const VcId tip = msg.held.back();
    for (const VcId want : msg.requests) {
      graph_.add_edge(tip, want);
      ++request_arcs_;
    }
  }
}

const CwgMessage* Cwg::find_message(MessageId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= index_.size()) return nullptr;
  const IndexSlot& slot = index_[static_cast<std::size_t>(id)];
  if (slot.gen != generation_) return nullptr;
  return &messages_[slot.idx];
}

}  // namespace flexnet
