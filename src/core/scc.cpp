#include "core/scc.hpp"

#include <algorithm>

namespace flexnet {

std::vector<int> SccResult::members(int c) const {
  std::vector<int> out;
  for (int v = 0; v < static_cast<int>(component.size()); ++v) {
    if (component[static_cast<std::size_t>(v)] == c) out.push_back(v);
  }
  return out;
}

SccResult strongly_connected_components(const Digraph& graph) {
  const int n = graph.num_vertices();
  SccResult result;
  result.component.assign(static_cast<std::size_t>(n), -1);

  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> lowlink(static_cast<std::size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<int> stack;
  int next_index = 0;

  // Explicit DFS frames: (vertex, position within its adjacency list).
  struct Frame {
    int vertex;
    std::size_t edge;
  };
  std::vector<Frame> frames;

  for (int root = 0; root < n; ++root) {
    if (index[static_cast<std::size_t>(root)] != -1) continue;
    frames.push_back({root, 0});
    index[static_cast<std::size_t>(root)] = lowlink[static_cast<std::size_t>(root)] = next_index++;
    stack.push_back(root);
    on_stack[static_cast<std::size_t>(root)] = true;

    while (!frames.empty()) {
      Frame& frame = frames.back();
      const int v = frame.vertex;
      const auto edges = graph.out(v);
      if (frame.edge < edges.size()) {
        const int w = edges[frame.edge++];
        if (index[static_cast<std::size_t>(w)] == -1) {
          index[static_cast<std::size_t>(w)] = lowlink[static_cast<std::size_t>(w)] = next_index++;
          stack.push_back(w);
          on_stack[static_cast<std::size_t>(w)] = true;
          frames.push_back({w, 0});
        } else if (on_stack[static_cast<std::size_t>(w)]) {
          lowlink[static_cast<std::size_t>(v)] =
              std::min(lowlink[static_cast<std::size_t>(v)],
                       index[static_cast<std::size_t>(w)]);
        }
        continue;
      }
      // v is fully explored.
      if (lowlink[static_cast<std::size_t>(v)] == index[static_cast<std::size_t>(v)]) {
        const int comp = result.num_components++;
        int members = 0;
        for (;;) {
          const int w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = false;
          result.component[static_cast<std::size_t>(w)] = comp;
          ++members;
          if (w == v) break;
        }
        result.size.push_back(members);
      }
      frames.pop_back();
      if (!frames.empty()) {
        const int parent = frames.back().vertex;
        lowlink[static_cast<std::size_t>(parent)] =
            std::min(lowlink[static_cast<std::size_t>(parent)],
                     lowlink[static_cast<std::size_t>(v)]);
      }
    }
  }
  return result;
}

}  // namespace flexnet
