#include "core/scc.hpp"

#include <algorithm>

namespace flexnet {

std::vector<int> SccResult::members(int c) const {
  std::vector<int> out;
  for (int v = 0; v < static_cast<int>(component.size()); ++v) {
    if (component[static_cast<std::size_t>(v)] == c) out.push_back(v);
  }
  return out;
}

SccResult strongly_connected_components(const Digraph& graph) {
  SccResult result;
  SccScratch scratch;
  strongly_connected_components(graph, result, scratch);
  return result;
}

void strongly_connected_components(const Digraph& graph, SccResult& result,
                                   SccScratch& scratch) {
  const int n = graph.num_vertices();
  result.num_components = 0;
  result.component.assign(static_cast<std::size_t>(n), -1);
  result.size.clear();

  auto& index = scratch.index;
  auto& lowlink = scratch.lowlink;
  auto& on_stack = scratch.on_stack;
  auto& stack = scratch.stack;
  auto& frames = scratch.frames;  // explicit DFS: (vertex, edge cursor)
  index.assign(static_cast<std::size_t>(n), -1);
  lowlink.assign(static_cast<std::size_t>(n), 0);
  on_stack.assign(static_cast<std::size_t>(n), 0);
  stack.clear();
  frames.clear();
  int next_index = 0;

  for (int root = 0; root < n; ++root) {
    if (index[static_cast<std::size_t>(root)] != -1) continue;
    frames.emplace_back(root, 0);
    index[static_cast<std::size_t>(root)] = lowlink[static_cast<std::size_t>(root)] = next_index++;
    stack.push_back(root);
    on_stack[static_cast<std::size_t>(root)] = 1;

    while (!frames.empty()) {
      auto& frame = frames.back();
      const int v = frame.first;
      const auto edges = graph.out(v);
      if (frame.second < edges.size()) {
        const int w = edges[frame.second++];
        if (index[static_cast<std::size_t>(w)] == -1) {
          index[static_cast<std::size_t>(w)] = lowlink[static_cast<std::size_t>(w)] = next_index++;
          stack.push_back(w);
          on_stack[static_cast<std::size_t>(w)] = 1;
          frames.emplace_back(w, 0);
        } else if (on_stack[static_cast<std::size_t>(w)] != 0) {
          lowlink[static_cast<std::size_t>(v)] =
              std::min(lowlink[static_cast<std::size_t>(v)],
                       index[static_cast<std::size_t>(w)]);
        }
        continue;
      }
      // v is fully explored.
      if (lowlink[static_cast<std::size_t>(v)] == index[static_cast<std::size_t>(v)]) {
        const int comp = result.num_components++;
        int members = 0;
        for (;;) {
          const int w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = 0;
          result.component[static_cast<std::size_t>(w)] = comp;
          ++members;
          if (w == v) break;
        }
        result.size.push_back(members);
      }
      frames.pop_back();
      if (!frames.empty()) {
        const int parent = frames.back().first;
        lowlink[static_cast<std::size_t>(parent)] =
            std::min(lowlink[static_cast<std::size_t>(parent)],
                     lowlink[static_cast<std::size_t>(v)]);
      }
    }
  }
}

}  // namespace flexnet
