#include "core/timeout.hpp"

#include <algorithm>

#include "core/knot.hpp"
#include "sim/network.hpp"

namespace flexnet {

std::vector<MessageId> presumed_deadlocked(const Network& net,
                                           Cycle threshold) {
  std::vector<MessageId> out;
  for (const MessageId id : net.active_messages()) {
    const Message& msg = net.message(id);
    if (msg.blocked && net.now() - msg.blocked_since >= threshold) {
      out.push_back(id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

TimeoutAccuracy classify_timeout_detection(const Network& net,
                                           Cycle threshold) {
  TimeoutAccuracy acc;
  const std::vector<MessageId> presumed = presumed_deadlocked(net, threshold);
  acc.presumed = static_cast<std::int64_t>(presumed.size());

  // Ground truth: quiescent knots only (true deadlocks).
  const Cwg cwg = Cwg::from_network(net);
  std::vector<MessageId> deadlocked;
  std::vector<MessageId> dependents;
  for (const Knot& knot : find_knots(cwg)) {
    const bool quiescent =
        std::all_of(knot.deadlock_set.begin(), knot.deadlock_set.end(),
                    [&](MessageId id) { return net.message_immobile(id); });
    if (!quiescent) continue;
    deadlocked.insert(deadlocked.end(), knot.deadlock_set.begin(),
                      knot.deadlock_set.end());
    dependents.insert(dependents.end(), knot.dependent_messages.begin(),
                      knot.dependent_messages.end());
  }
  std::sort(deadlocked.begin(), deadlocked.end());
  std::sort(dependents.begin(), dependents.end());
  acc.actually_deadlocked = static_cast<std::int64_t>(deadlocked.size());

  for (const MessageId id : presumed) {
    if (std::binary_search(deadlocked.begin(), deadlocked.end(), id)) {
      ++acc.true_positive;
    } else if (std::binary_search(dependents.begin(), dependents.end(), id)) {
      ++acc.dependent;  // removing it would NOT resolve the deadlock
    } else {
      ++acc.false_positive;  // merely congested
    }
  }
  return acc;
}

}  // namespace flexnet
