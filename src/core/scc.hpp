// Strongly connected components via an iterative Tarjan's algorithm
// (explicit stack; CWGs at saturation can hold thousands of vertices, so no
// recursion). Components are numbered in reverse topological order: every
// edge between components goes from a higher component id to a lower one.
#pragma once

#include <vector>

#include "core/graph.hpp"

namespace flexnet {

struct SccResult {
  int num_components = 0;
  std::vector<int> component;  ///< vertex -> component id
  std::vector<int> size;       ///< component id -> vertex count

  /// Vertices of component `c` (computed on demand, O(V)).
  [[nodiscard]] std::vector<int> members(int c) const;
};

[[nodiscard]] SccResult strongly_connected_components(const Digraph& graph);

}  // namespace flexnet
