// Strongly connected components via an iterative Tarjan's algorithm
// (explicit stack; CWGs at saturation can hold thousands of vertices, so no
// recursion). Components are numbered in reverse topological order: every
// edge between components goes from a higher component id to a lower one.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/graph.hpp"

namespace flexnet {

struct SccResult {
  int num_components = 0;
  std::vector<int> component;  ///< vertex -> component id
  std::vector<int> size;       ///< component id -> vertex count

  /// Vertices of component `c` (computed on demand, O(V)).
  [[nodiscard]] std::vector<int> members(int c) const;
};

[[nodiscard]] SccResult strongly_connected_components(const Digraph& graph);

/// Working storage for the allocation-free overload below. Reusing one
/// instance across invocations keeps Tarjan's five auxiliary arrays at their
/// high-water capacity instead of reallocating them every detection pass.
struct SccScratch {
  std::vector<int> index;
  std::vector<int> lowlink;
  std::vector<std::uint8_t> on_stack;
  std::vector<int> stack;
  std::vector<std::pair<int, std::size_t>> frames;  ///< (vertex, edge cursor)
};

/// Identical result to the value-returning overload, but writes into `result`
/// and draws working memory from `scratch` (both grown on demand, never
/// shrunk).
void strongly_connected_components(const Digraph& graph, SccResult& result,
                                   SccScratch& scratch);

}  // namespace flexnet
