// Persistent working state for the incremental detection pipeline.
//
// CwgScratch owns a Cwg that is rebuilt in place every pass (allocation-free
// once warm, see Cwg::rebuild_from_network) plus the arenas for the
// blocked-subgraph knot search: instead of running Tarjan over every VC
// vertex, find_knots_blocked() restricts it to the forward closure of the
// blocked messages' dashed-arc sources.
//
// Why that is exact, not an approximation: solid (ownership) arcs alone form
// vertex-disjoint simple paths — each VC has at most one owner and each
// message's held chain is a path — so the solid-only graph is acyclic. Every
// cycle therefore contains at least one dashed arc, whose source is the tip
// (newest held VC) of a blocked message. Since every vertex of an SCC with
// an edge lies on a cycle, every knot contains a blocked tip and is wholly
// inside the tips' forward closure. The closure is closed under out-edges,
// so the induced subgraph preserves every member's full out-neighborhood:
// its SCC decomposition, terminality, and self-loops restricted to the
// closure match the full graph exactly. Hence the subgraph search finds
// precisely the knots of the full CWG.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cwg.hpp"
#include "core/knot.hpp"
#include "core/scc.hpp"

namespace flexnet {

class Network;

/// Byproduct statistics of one blocked-subgraph knot search — the
/// observability layer's "CWG pressure" source. Pure functions of the CWG
/// the search ran on, so two searches over identical graphs (e.g. before a
/// checkpoint and after its resume) report identical values.
struct BlockedSubgraphStats {
  std::int64_t closure_size = 0;  ///< VCs in the blocked tips' forward closure.
  std::int64_t largest_scc = 0;   ///< Largest SCC in the blocked subgraph.
  std::int64_t knots = 0;         ///< Knots (terminal SCCs with an edge) found.
};

class CwgScratch {
 public:
  /// Rebuilds the owned CWG from the live network, reusing all storage.
  const Cwg& rebuild(const Network& net) {
    cwg_.rebuild_from_network(net);
    return cwg_;
  }

  /// The CWG produced by the most recent rebuild().
  [[nodiscard]] const Cwg& cwg() const noexcept { return cwg_; }

  /// Equivalent to find_knots(cwg()) — same knots, same canonical order —
  /// but SCC runs only over the blocked-reachable induced subgraph, with
  /// vertex renumbering kept inside this scratch arena.
  [[nodiscard]] std::vector<Knot> find_knots_blocked();

  /// Stats recorded by the most recent find_knots_blocked() call.
  [[nodiscard]] const BlockedSubgraphStats& blocked_stats() const noexcept {
    return blocked_stats_;
  }

 private:
  Cwg cwg_;

  // Blocked-closure collection: generation-stamped visit marks avoid an
  // O(num_vcs) clear per pass; subset_ holds the closure, ascending.
  std::vector<std::uint64_t> mark_;
  std::uint64_t mark_gen_ = 0;
  std::vector<int> subset_;
  std::vector<int> dfs_stack_;
  std::vector<int> local_of_;  ///< global VC -> subgraph vertex (when marked)

  Digraph sub_;
  SccResult scc_;
  SccScratch scc_scratch_;
  BlockedSubgraphStats blocked_stats_;
};

}  // namespace flexnet
