#include "core/detector.hpp"

#include <algorithm>

#include "core/recovery.hpp"
#include "sim/network.hpp"
#include "telemetry/profiler.hpp"
#include "trace/forensics.hpp"

namespace flexnet {

DeadlockDetector::DeadlockDetector(const DetectorConfig& config,
                                   std::uint64_t seed)
    : config_(config), rng_(splitmix64(seed), 0x64657465 /* "dete" */) {}

int DeadlockDetector::tick(Network& net) {
  if (config_.interval <= 0 || net.now() % config_.interval != 0) return 0;
  return run_detection(net);
}

int DeadlockDetector::run_detection(Network& net) {
  ScopedPhase detector_timer(profiler_, SimPhase::Detector);
  ++invocations_;

  if (config_.livelock_hop_limit > 0) {
    // Collect first: remove_message mutates the active list.
    std::vector<MessageId> livelocked;
    for (const MessageId id : net.active_messages()) {
      if (net.message(id).hops >= config_.livelock_hop_limit) {
        livelocked.push_back(id);
      }
    }
    if (!livelocked.empty()) {
      ScopedPhase recovery_timer(profiler_, SimPhase::Recovery);
      for (const MessageId id : livelocked) {
        net.remove_message(id);
        ++livelocks_;
      }
    }
  }

  const Cwg cwg = Cwg::from_network(net);

  if (config_.count_total_cycles &&
      (invocations_ % config_.cycle_sample_every) == 0) {
    const CycleEnumeration total =
        enumerate_simple_cycles(cwg.graph(), config_.total_cycle_cap);
    CycleSample sample;
    sample.at = net.now();
    sample.cycles = total.count;
    sample.capped = total.capped;
    sample.blocked_messages = cwg.num_blocked_messages();
    sample.in_network_messages = static_cast<int>(net.active_messages().size());
    cycle_samples_.push_back(sample);
  }

  const std::vector<Knot> knots = find_knots(cwg);
  int confirmed = 0;
  for (const Knot& knot : knots) {
    if (config_.require_quiescence) {
      const bool quiescent =
          std::all_of(knot.deadlock_set.begin(), knot.deadlock_set.end(),
                      [&](MessageId id) { return net.message_immobile(id); });
      if (!quiescent) {
        ++transient_knots_;  // may dissolve by compaction; recheck next pass
        continue;
      }
    }
    ++confirmed;
    ++total_deadlocks_;
    DeadlockRecord record;
    record.detected_at = net.now();
    record.deadlock_set_size = static_cast<int>(knot.deadlock_set.size());
    record.resource_set_size = static_cast<int>(knot.resource_set.size());
    record.knot_size = static_cast<int>(knot.knot_vcs.size());
    record.dependent_count = static_cast<int>(knot.dependent_messages.size());
    if (config_.measure_knot_density) {
      const CycleEnumeration density =
          knot_cycle_density(cwg, knot, config_.knot_density_cap);
      record.knot_cycle_density = density.count;
      record.density_capped = density.capped;
    }
    if (config_.recovery != RecoveryKind::None) {
      record.victim =
          choose_victim(net, knot.deadlock_set, config_.recovery, rng_);
    }
    if (Tracer* tracer = net.tracer()) {
      TraceEvent event;
      event.cycle = net.now();
      event.kind = TraceEventKind::DeadlockDetected;
      event.vc = knot.knot_vcs.front();
      event.node = net.phys(net.vc(knot.knot_vcs.front()).channel).dst;
      event.arg = record.deadlock_set_size;
      tracer->emit(event);
      if (record.victim != kInvalidMessage) {
        event.kind = TraceEventKind::DeadlockRecovered;
        event.message = record.victim;
        tracer->emit(event);
      }
    }
    if (forensics_ != nullptr) {
      forensics_->on_deadlock(net, cwg, knot, record.victim,
                              record.knot_cycle_density);
    }
    if (record.victim != kInvalidMessage) {
      ScopedPhase recovery_timer(profiler_, SimPhase::Recovery);
      net.remove_message(record.victim);
    }
    if (config_.keep_records) records_.push_back(record);
  }
  return confirmed;
}

void DeadlockDetector::reset_statistics() {
  records_.clear();
  cycle_samples_.clear();
  total_deadlocks_ = 0;
  transient_knots_ = 0;
  livelocks_ = 0;
}

}  // namespace flexnet
