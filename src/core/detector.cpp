#include "core/detector.hpp"

#include <algorithm>

#include "core/recovery.hpp"
#include "sim/network.hpp"
#include "telemetry/profiler.hpp"
#include "trace/forensics.hpp"
#include "util/binio.hpp"

namespace flexnet {

DeadlockDetector::DeadlockDetector(const DetectorConfig& config,
                                   std::uint64_t seed)
    : config_(config), rng_(splitmix64(seed), 0x64657465 /* "dete" */) {}

int DeadlockDetector::tick(Network& net) {
  if (config_.interval <= 0 || net.now() % config_.interval != 0) return 0;
  return run_detection(net);
}

int DeadlockDetector::run_detection(Network& net) {
  ScopedPhase detector_timer(profiler_, SimPhase::Detector);
  ++invocations_;  // counted even for skipped passes: the cycle-sampling
                   // schedule and telemetry invocation counts must not depend
                   // on which pipeline ran

  if (config_.livelock_hop_limit > 0) {
    // Collect first: remove_message mutates the active list. (A removal
    // bumps the arc epoch, so gating below cannot reuse a stale verdict.)
    livelock_scratch_.clear();
    for (const MessageId id : net.active_messages()) {
      if (net.message(id).hops >= config_.livelock_hop_limit) {
        livelock_scratch_.push_back(id);
      }
    }
    if (!livelock_scratch_.empty()) {
      ScopedPhase recovery_timer(profiler_, SimPhase::Recovery);
      for (const MessageId id : livelock_scratch_) {
        net.remove_message(id);
        ++livelocks_;
      }
    }
  }

  const bool sample_due = config_.count_total_cycles &&
                          (invocations_ % config_.cycle_sample_every) == 0;

  if (!config_.full_rebuild && !sample_due) {
    if (cache_valid_ && cached_net_ == &net &&
        cached_epoch_ == net.arc_epoch()) {
      // No arc changed since the last pass, so the CWG — and therefore the
      // knot set, a pure function of it — is exactly what we found then.
      // Quiescence, victim choice, and record/hook emission still rerun:
      // buffer occupancy (message_immobile) can change without arc changes,
      // and the paper's methodology re-reports a persisting knot each pass.
      ++skipped_passes_;
      if (pressure_.valid) pressure_.computed_at = net.now();
      if (cached_knots_.empty()) return 0;
      return process_knots(net, scratch_.cwg());
    }
    if (net.blocked_message_count() == 0) {
      // No blocked messages means no dashed arcs; the CWG is a disjoint
      // union of ownership paths and cannot contain a cycle, let alone a
      // knot. Skip the rebuild entirely and cache the knot-free verdict.
      cached_knots_.clear();
      cached_density_.clear();
      cached_net_ = &net;
      cached_epoch_ = net.arc_epoch();
      cache_valid_ = true;
      ++skipped_passes_;
      pressure_ = PressureStats{net.now(), 0, 0, 0, true};
      return 0;
    }
  }

  const Cwg& cwg = scratch_.rebuild(net);

  if (sample_due) {
    const CycleEnumeration total =
        enumerate_simple_cycles(cwg.graph(), config_.total_cycle_cap);
    CycleSample sample;
    sample.at = net.now();
    sample.cycles = total.count;
    sample.capped = total.capped;
    sample.blocked_messages = cwg.num_blocked_messages();
    sample.in_network_messages = static_cast<int>(net.active_messages().size());
    cycle_samples_.push_back(sample);
  }

  cached_knots_ =
      config_.full_rebuild ? find_knots(cwg) : scratch_.find_knots_blocked();
  if (!config_.full_rebuild) {
    const BlockedSubgraphStats& stats = scratch_.blocked_stats();
    pressure_ = PressureStats{net.now(), stats.closure_size, stats.largest_scc,
                              stats.knots, true};
  }
  cached_density_.assign(cached_knots_.size(), CachedDensity{});
  cached_net_ = &net;
  cached_epoch_ = net.arc_epoch();
  cache_valid_ = !config_.full_rebuild;
  return process_knots(net, cwg);
}

int DeadlockDetector::process_knots(Network& net, const Cwg& cwg) {
  int confirmed = 0;
  for (std::size_t ki = 0; ki < cached_knots_.size(); ++ki) {
    const Knot& knot = cached_knots_[ki];
    if (config_.require_quiescence) {
      const bool quiescent =
          std::all_of(knot.deadlock_set.begin(), knot.deadlock_set.end(),
                      [&](MessageId id) { return net.message_immobile(id); });
      if (!quiescent) {
        ++transient_knots_;  // may dissolve by compaction; recheck next pass
        continue;
      }
    }
    ++confirmed;
    ++total_deadlocks_;
    for (const MessageId id : knot.deadlock_set) {
      ++class_participation_[class_index(net.message(id).cls)];
    }
    DeadlockRecord record;
    record.detected_at = net.now();
    record.deadlock_set_size = static_cast<int>(knot.deadlock_set.size());
    record.resource_set_size = static_cast<int>(knot.resource_set.size());
    record.knot_size = static_cast<int>(knot.knot_vcs.size());
    record.dependent_count = static_cast<int>(knot.dependent_messages.size());
    if (config_.measure_knot_density) {
      // Measured at most once per cached knot: within an epoch the knot
      // subgraph is frozen, so the enumeration result cannot change.
      CachedDensity& cache = cached_density_[ki];
      if (!cache.measured) {
        const CycleEnumeration density =
            knot_cycle_density(cwg, knot, config_.knot_density_cap);
        cache.measured = true;
        cache.count = density.count;
        cache.capped = density.capped;
      }
      record.knot_cycle_density = cache.count;
      record.density_capped = cache.capped;
    }
    if (config_.recovery != RecoveryKind::None) {
      record.victim =
          choose_victim(net, knot.deadlock_set, config_.recovery, rng_);
    }
    if (Tracer* tracer = net.hooks().tracer) {
      TraceEvent event;
      event.cycle = net.now();
      event.kind = TraceEventKind::DeadlockDetected;
      event.vc = knot.knot_vcs.front();
      event.node = net.phys(net.vc(knot.knot_vcs.front()).channel).dst;
      event.arg = record.deadlock_set_size;
      tracer->emit(event);
      if (record.victim != kInvalidMessage) {
        event.kind = TraceEventKind::DeadlockRecovered;
        event.message = record.victim;
        tracer->emit(event);
      }
    }
    if (forensics_ != nullptr) {
      forensics_->on_deadlock(net, cwg, knot, record.victim,
                              record.knot_cycle_density);
    }
    if (capture_ != nullptr) {
      capture_->on_knot(net, cwg, knot, record);
    }
    if (record.victim != kInvalidMessage) {
      ScopedPhase recovery_timer(profiler_, SimPhase::Recovery);
      net.remove_message(record.victim);
    }
    if (config_.keep_records) records_.push_back(record);
  }
  return confirmed;
}

void DeadlockDetector::save_state(BinWriter& out) const {
  const Pcg32::State s = rng_.save();
  out.u64(s.state);
  out.u64(s.inc);
  out.u64(s.draws);
  out.i64(total_deadlocks_);
  out.i64(transient_knots_);
  out.i64(livelocks_);
  out.i64(invocations_);
  out.u64(records_.size());
  for (const DeadlockRecord& r : records_) {
    out.i64(r.detected_at);
    out.i32(r.deadlock_set_size);
    out.i32(r.resource_set_size);
    out.i32(r.knot_size);
    out.i32(r.dependent_count);
    out.i64(r.knot_cycle_density);
    out.u8(r.density_capped ? 1 : 0);
    out.i64(r.victim);
  }
  out.u64(cycle_samples_.size());
  for (const CycleSample& s2 : cycle_samples_) {
    out.i64(s2.at);
    out.i64(s2.cycles);
    out.u8(s2.capped ? 1 : 0);
    out.i32(s2.blocked_messages);
    out.i32(s2.in_network_messages);
  }
  for (const std::int64_t n : class_participation_) out.i64(n);
}

void DeadlockDetector::restore_state(BinReader& in, std::uint32_t version) {
  // Scratch/cache state is intentionally not part of the snapshot format;
  // a restored detector simply pays one full pass to repopulate it.
  cache_valid_ = false;
  cached_net_ = nullptr;
  cached_knots_.clear();
  cached_density_.clear();
  pressure_ = PressureStats{};
  Pcg32::State s;
  s.state = in.u64();
  s.inc = in.u64();
  s.draws = in.u64();
  rng_.restore(s);
  total_deadlocks_ = in.i64();
  transient_knots_ = in.i64();
  livelocks_ = in.i64();
  invocations_ = in.i64();
  records_.clear();
  const std::uint64_t nrecords = in.u64();
  records_.reserve(nrecords);
  for (std::uint64_t i = 0; i < nrecords; ++i) {
    DeadlockRecord r;
    r.detected_at = in.i64();
    r.deadlock_set_size = in.i32();
    r.resource_set_size = in.i32();
    r.knot_size = in.i32();
    r.dependent_count = in.i32();
    r.knot_cycle_density = in.i64();
    r.density_capped = in.u8() != 0;
    r.victim = static_cast<MessageId>(in.i64());
    records_.push_back(r);
  }
  cycle_samples_.clear();
  const std::uint64_t nsamples = in.u64();
  cycle_samples_.reserve(nsamples);
  for (std::uint64_t i = 0; i < nsamples; ++i) {
    CycleSample s2;
    s2.at = in.i64();
    s2.cycles = in.i64();
    s2.capped = in.u8() != 0;
    s2.blocked_messages = in.i32();
    s2.in_network_messages = in.i32();
    cycle_samples_.push_back(s2);
  }
  class_participation_.fill(0);
  if (version >= 3) {
    for (std::int64_t& n : class_participation_) n = in.i64();
  }
}

void DeadlockDetector::reset_statistics() {
  records_.clear();
  cycle_samples_.clear();
  total_deadlocks_ = 0;
  transient_knots_ = 0;
  livelocks_ = 0;
  class_participation_.fill(0);
}

}  // namespace flexnet
