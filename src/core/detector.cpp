#include "core/detector.hpp"

#include <algorithm>

#include "core/recovery.hpp"
#include "sim/network.hpp"
#include "telemetry/profiler.hpp"
#include "trace/forensics.hpp"
#include "util/binio.hpp"

namespace flexnet {

DeadlockDetector::DeadlockDetector(const DetectorConfig& config,
                                   std::uint64_t seed)
    : config_(config), rng_(splitmix64(seed), 0x64657465 /* "dete" */) {}

int DeadlockDetector::tick(Network& net) {
  if (config_.interval <= 0 || net.now() % config_.interval != 0) return 0;
  return run_detection(net);
}

int DeadlockDetector::run_detection(Network& net) {
  ScopedPhase detector_timer(profiler_, SimPhase::Detector);
  ++invocations_;

  if (config_.livelock_hop_limit > 0) {
    // Collect first: remove_message mutates the active list.
    std::vector<MessageId> livelocked;
    for (const MessageId id : net.active_messages()) {
      if (net.message(id).hops >= config_.livelock_hop_limit) {
        livelocked.push_back(id);
      }
    }
    if (!livelocked.empty()) {
      ScopedPhase recovery_timer(profiler_, SimPhase::Recovery);
      for (const MessageId id : livelocked) {
        net.remove_message(id);
        ++livelocks_;
      }
    }
  }

  const Cwg cwg = Cwg::from_network(net);

  if (config_.count_total_cycles &&
      (invocations_ % config_.cycle_sample_every) == 0) {
    const CycleEnumeration total =
        enumerate_simple_cycles(cwg.graph(), config_.total_cycle_cap);
    CycleSample sample;
    sample.at = net.now();
    sample.cycles = total.count;
    sample.capped = total.capped;
    sample.blocked_messages = cwg.num_blocked_messages();
    sample.in_network_messages = static_cast<int>(net.active_messages().size());
    cycle_samples_.push_back(sample);
  }

  const std::vector<Knot> knots = find_knots(cwg);
  int confirmed = 0;
  for (const Knot& knot : knots) {
    if (config_.require_quiescence) {
      const bool quiescent =
          std::all_of(knot.deadlock_set.begin(), knot.deadlock_set.end(),
                      [&](MessageId id) { return net.message_immobile(id); });
      if (!quiescent) {
        ++transient_knots_;  // may dissolve by compaction; recheck next pass
        continue;
      }
    }
    ++confirmed;
    ++total_deadlocks_;
    DeadlockRecord record;
    record.detected_at = net.now();
    record.deadlock_set_size = static_cast<int>(knot.deadlock_set.size());
    record.resource_set_size = static_cast<int>(knot.resource_set.size());
    record.knot_size = static_cast<int>(knot.knot_vcs.size());
    record.dependent_count = static_cast<int>(knot.dependent_messages.size());
    if (config_.measure_knot_density) {
      const CycleEnumeration density =
          knot_cycle_density(cwg, knot, config_.knot_density_cap);
      record.knot_cycle_density = density.count;
      record.density_capped = density.capped;
    }
    if (config_.recovery != RecoveryKind::None) {
      record.victim =
          choose_victim(net, knot.deadlock_set, config_.recovery, rng_);
    }
    if (Tracer* tracer = net.tracer()) {
      TraceEvent event;
      event.cycle = net.now();
      event.kind = TraceEventKind::DeadlockDetected;
      event.vc = knot.knot_vcs.front();
      event.node = net.phys(net.vc(knot.knot_vcs.front()).channel).dst;
      event.arg = record.deadlock_set_size;
      tracer->emit(event);
      if (record.victim != kInvalidMessage) {
        event.kind = TraceEventKind::DeadlockRecovered;
        event.message = record.victim;
        tracer->emit(event);
      }
    }
    if (forensics_ != nullptr) {
      forensics_->on_deadlock(net, cwg, knot, record.victim,
                              record.knot_cycle_density);
    }
    if (capture_ != nullptr) {
      capture_->on_knot(net, cwg, knot, record);
    }
    if (record.victim != kInvalidMessage) {
      ScopedPhase recovery_timer(profiler_, SimPhase::Recovery);
      net.remove_message(record.victim);
    }
    if (config_.keep_records) records_.push_back(record);
  }
  return confirmed;
}

void DeadlockDetector::save_state(BinWriter& out) const {
  const Pcg32::State s = rng_.save();
  out.u64(s.state);
  out.u64(s.inc);
  out.u64(s.draws);
  out.i64(total_deadlocks_);
  out.i64(transient_knots_);
  out.i64(livelocks_);
  out.i64(invocations_);
  out.u64(records_.size());
  for (const DeadlockRecord& r : records_) {
    out.i64(r.detected_at);
    out.i32(r.deadlock_set_size);
    out.i32(r.resource_set_size);
    out.i32(r.knot_size);
    out.i32(r.dependent_count);
    out.i64(r.knot_cycle_density);
    out.u8(r.density_capped ? 1 : 0);
    out.i64(r.victim);
  }
  out.u64(cycle_samples_.size());
  for (const CycleSample& s2 : cycle_samples_) {
    out.i64(s2.at);
    out.i64(s2.cycles);
    out.u8(s2.capped ? 1 : 0);
    out.i32(s2.blocked_messages);
    out.i32(s2.in_network_messages);
  }
}

void DeadlockDetector::restore_state(BinReader& in) {
  Pcg32::State s;
  s.state = in.u64();
  s.inc = in.u64();
  s.draws = in.u64();
  rng_.restore(s);
  total_deadlocks_ = in.i64();
  transient_knots_ = in.i64();
  livelocks_ = in.i64();
  invocations_ = in.i64();
  records_.clear();
  const std::uint64_t nrecords = in.u64();
  records_.reserve(nrecords);
  for (std::uint64_t i = 0; i < nrecords; ++i) {
    DeadlockRecord r;
    r.detected_at = in.i64();
    r.deadlock_set_size = in.i32();
    r.resource_set_size = in.i32();
    r.knot_size = in.i32();
    r.dependent_count = in.i32();
    r.knot_cycle_density = in.i64();
    r.density_capped = in.u8() != 0;
    r.victim = static_cast<MessageId>(in.i64());
    records_.push_back(r);
  }
  cycle_samples_.clear();
  const std::uint64_t nsamples = in.u64();
  cycle_samples_.reserve(nsamples);
  for (std::uint64_t i = 0; i < nsamples; ++i) {
    CycleSample s2;
    s2.at = in.i64();
    s2.cycles = in.i64();
    s2.capped = in.u8() != 0;
    s2.blocked_messages = in.i32();
    s2.in_network_messages = in.i32();
    cycle_samples_.push_back(s2);
  }
}

void DeadlockDetector::reset_statistics() {
  records_.clear();
  cycle_samples_.clear();
  total_deadlocks_ = 0;
  transient_knots_ = 0;
  livelocks_ = 0;
}

}  // namespace flexnet
