// Dense-vertex directed graph used for channel wait-for graphs and their
// analysis (SCC, knots, simple-cycle enumeration).
#pragma once

#include <span>
#include <vector>

namespace flexnet {

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(int num_vertices) : adj_(static_cast<std::size_t>(num_vertices)) {}

  /// Clears all edges and resizes to `num_vertices`, keeping the capacity of
  /// surviving adjacency rows so repeated rebuilds stop allocating.
  void reset(int num_vertices);

  [[nodiscard]] int num_vertices() const noexcept {
    return static_cast<int>(adj_.size());
  }
  [[nodiscard]] int num_edges() const noexcept { return num_edges_; }

  void add_edge(int from, int to);

  [[nodiscard]] std::span<const int> out(int v) const {
    return adj_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] bool has_edge(int from, int to) const noexcept;

  /// Subgraph induced by `vertices`; vertex i of the result corresponds to
  /// vertices[i] in this graph.
  [[nodiscard]] Digraph induced(std::span<const int> vertices) const;

 private:
  std::vector<std::vector<int>> adj_;
  int num_edges_ = 0;
};

}  // namespace flexnet
