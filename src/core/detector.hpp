// DeadlockDetector: periodically snapshots the network's channel wait-for
// graph, finds knots (true deadlocks), characterizes each one (deadlock set,
// resource set, knot cycle density, dependent messages), optionally counts
// the total resource-dependency cycles in the CWG, and triggers recovery.
//
// This mirrors the paper's methodology: detection every 50 cycles, one
// deadlock-set message removed per detected knot, and residual knots picked
// up at the next invocation.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/incremental.hpp"
#include "core/knot.hpp"
#include "sim/config.hpp"
#include "sim/message_class.hpp"
#include "util/rng.hpp"

namespace flexnet {

class BinReader;
class BinWriter;
class Network;
class DeadlockForensics;
class PhaseProfiler;
struct DeadlockRecord;

/// Observer invoked once per confirmed deadlock, after the record (including
/// the chosen victim) is filled but *before* the victim is removed — so the
/// knot is still intact in the network state. The snapshot corpus capture
/// implements this to dump a replayable image of the deadlocked network.
class KnotCaptureHook {
 public:
  virtual ~KnotCaptureHook() = default;
  virtual void on_knot(const Network& net, const Cwg& cwg, const Knot& knot,
                       const DeadlockRecord& record) = 0;
};

struct DetectorConfig {
  Cycle interval = 50;  ///< Cycles between detector invocations.

  RecoveryKind recovery = RecoveryKind::RemoveOldest;

  /// Only count a knot as a deadlock once every deadlock-set message is
  /// fully compacted (Network::message_immobile). An instantaneous knot with
  /// remaining buffer slack can still dissolve by tail compaction; requiring
  /// quiescence makes detection *true* rather than conservative. Knots that
  /// fail the test are tallied as transient_knots and re-examined at the
  /// next invocation.
  bool require_quiescence = true;

  /// Compute each knot's cycle density (off only for speed-critical sweeps).
  bool measure_knot_density = true;
  /// Enumeration cap for knot cycle density.
  std::int64_t knot_density_cap = 100000;

  /// Count the CWG's total elementary cycles (Figs. 6a/7b). Expensive at
  /// saturation, so it runs on every `cycle_sample_every`-th invocation with
  /// a hard cap; capped counts are lower bounds.
  bool count_total_cycles = false;
  int cycle_sample_every = 5;
  std::int64_t total_cycle_cap = 20000;

  /// Retain per-deadlock records (set/resource sizes etc.).
  bool keep_records = true;

  /// Livelock guard (0 = off): a message whose hop count reaches this limit
  /// is removed and delivered via recovery, like Disha's timeout criterion.
  /// Only relevant with misrouting/faults — minimal routing cannot livelock.
  int livelock_hop_limit = 0;

  /// Disables the incremental pipeline (arc-epoch gating, verdict reuse,
  /// blocked-subgraph SCC): every pass rebuilds the CWG and runs Tarjan over
  /// all VCs. The two paths are bit-identical in verdicts, records, and hook
  /// firings; this one exists as the equivalence-test oracle and an escape
  /// hatch (--detector-full-rebuild).
  bool full_rebuild = false;
};

/// One detected deadlock's characterization (paper Section 2.2 metrics).
struct DeadlockRecord {
  Cycle detected_at = -1;
  int deadlock_set_size = 0;
  int resource_set_size = 0;
  int knot_size = 0;  ///< VCs in the knot itself.
  int dependent_count = 0;
  std::int64_t knot_cycle_density = -1;  ///< -1 when not measured.
  bool density_capped = false;
  MessageId victim = kInvalidMessage;

  [[nodiscard]] bool multi_cycle() const noexcept { return knot_cycle_density > 1; }
};

/// The detector's CWG-pressure reading, refreshed at every detection pass by
/// the incremental pipeline: blocked-closure size and largest blocked-SCC
/// from CwgScratch, plus the knot count. `computed_at` advances on every
/// pass that (re)validates the reading — including epoch-gated skips, where
/// the unchanged arc epoch proves the stats still describe the live CWG.
/// Process-local and never serialized (like all scratch state); a restored
/// detector reports valid=false until its first pass. The full-rebuild
/// oracle does not produce subgraph stats, so it leaves valid=false too.
struct PressureStats {
  Cycle computed_at = -1;
  std::int64_t closure_size = 0;  ///< VCs reachable from blocked tips.
  std::int64_t largest_scc = 0;   ///< Largest SCC among those VCs.
  std::int64_t knots = 0;         ///< Knots found by the pass.
  bool valid = false;
};

/// One total-cycle-count sample.
struct CycleSample {
  Cycle at = -1;
  std::int64_t cycles = 0;
  bool capped = false;
  int blocked_messages = 0;
  int in_network_messages = 0;
};

class DeadlockDetector {
 public:
  DeadlockDetector(const DetectorConfig& config, std::uint64_t seed);

  /// Call after every Network::step(); runs the detection algorithm when the
  /// configured interval elapses. Returns the number of knots found this
  /// cycle (0 on off-cycles).
  int tick(Network& net);

  /// Forces one detection pass immediately (used by tests/examples).
  int run_detection(Network& net);

  /// Attaches a forensics recorder (non-owning; nullptr detaches). Every
  /// confirmed deadlock is recorded — with the pre-recovery CWG and the
  /// chosen victim — before the victim is removed.
  void set_forensics(DeadlockForensics* forensics) noexcept {
    forensics_ = forensics;
  }
  [[nodiscard]] DeadlockForensics* forensics() const noexcept {
    return forensics_;
  }

  /// Attaches a knot-capture hook (non-owning; nullptr detaches). Called for
  /// every confirmed deadlock before recovery removes the victim.
  void set_capture(KnotCaptureHook* capture) noexcept { capture_ = capture; }
  [[nodiscard]] KnotCaptureHook* capture() const noexcept { return capture_; }

  /// Attaches a phase profiler (non-owning; nullptr detaches). Detection
  /// passes are recorded as SimPhase::Detector, victim/livelock removals as
  /// the nested SimPhase::Recovery.
  void set_profiler(PhaseProfiler* profiler) noexcept {
    profiler_ = profiler;
  }
  [[nodiscard]] PhaseProfiler* profiler() const noexcept { return profiler_; }

  [[nodiscard]] const std::vector<DeadlockRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] const std::vector<CycleSample>& cycle_samples() const noexcept {
    return cycle_samples_;
  }
  [[nodiscard]] std::int64_t total_deadlocks() const noexcept {
    return total_deadlocks_;
  }
  /// Knots seen before quiescence (not yet — possibly never — deadlocks).
  [[nodiscard]] std::int64_t transient_knots() const noexcept {
    return transient_knots_;
  }
  /// Messages removed by the livelock guard.
  [[nodiscard]] std::int64_t livelocks() const noexcept { return livelocks_; }
  [[nodiscard]] std::int64_t invocations() const noexcept { return invocations_; }
  /// Passes that skipped the CWG rebuild + SCC because the arc epoch proved
  /// the graph unchanged (or no message was blocked). Always counted inside
  /// invocations(); 0 when full_rebuild is set.
  [[nodiscard]] std::int64_t skipped_passes() const noexcept {
    return skipped_passes_;
  }

  /// CWG pressure as of the most recent detection pass (see PressureStats).
  [[nodiscard]] const PressureStats& pressure() const noexcept {
    return pressure_;
  }

  /// Per-class deadlock participation: how many confirmed deadlock-set
  /// members carried each MessageClass, accumulated across every confirmed
  /// knot since the last reset_statistics(). The workload question "which
  /// traffic classes end up inside the knots?" reads straight off this.
  [[nodiscard]] const std::array<std::int64_t, kNumMessageClasses>&
  class_participation() const noexcept {
    return class_participation_;
  }

  /// Drops accumulated records/samples (e.g. at the end of warmup) while
  /// keeping detector state.
  void reset_statistics();

  /// Snapshot hooks: RNG position, tallies, and the retained record/sample
  /// vectors (so a resumed run reports identical detector statistics).
  /// Pre-v3 payloads carry no class-participation array (restores zeroed).
  void save_state(BinWriter& out) const;
  void restore_state(BinReader& in,
                     std::uint32_t version = kStateFormatVersion);

 private:
  /// Quiescence-checks, characterizes, records, and recovers every knot in
  /// cached_knots_ against the given CWG. Returns the confirmed count.
  int process_knots(Network& net, const Cwg& cwg);

  DetectorConfig config_;
  Pcg32 rng_;
  DeadlockForensics* forensics_ = nullptr;
  PhaseProfiler* profiler_ = nullptr;
  KnotCaptureHook* capture_ = nullptr;
  std::vector<DeadlockRecord> records_;
  std::vector<CycleSample> cycle_samples_;
  std::int64_t total_deadlocks_ = 0;
  std::int64_t transient_knots_ = 0;
  std::int64_t livelocks_ = 0;
  std::int64_t invocations_ = 0;
  std::array<std::int64_t, kNumMessageClasses> class_participation_{};

  // --- incremental pipeline state (never serialized: save_state/restore_state
  // deliberately exclude everything below so snapshots stay format-stable and
  // path-independent; restore_state just invalidates the cache) --------------
  CwgScratch scratch_;
  std::vector<MessageId> livelock_scratch_;
  std::int64_t skipped_passes_ = 0;
  PressureStats pressure_;
  /// Knots found by the most recent rebuild, reusable while the arc epoch
  /// stands still. Density is measured lazily once per cached knot — the
  /// graph (hence the count) cannot change within an epoch.
  std::vector<Knot> cached_knots_;
  struct CachedDensity {
    bool measured = false;
    std::int64_t count = 0;
    bool capped = false;
  };
  std::vector<CachedDensity> cached_density_;
  const Network* cached_net_ = nullptr;
  std::uint64_t cached_epoch_ = 0;
  bool cache_valid_ = false;
};

}  // namespace flexnet
