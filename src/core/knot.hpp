// Knot detection: the heart of true deadlock detection.
//
// A knot is a vertex set R in which the set of vertices reachable from every
// member of R is exactly R — equivalently, a terminal (no outgoing edges in
// the condensation) strongly connected component that contains at least one
// edge. Given a connected routing function, a knot in the CWG is a necessary
// and sufficient condition for deadlock [Warnakulasuriya & Pinkston, TR
// CENG 97-01]; cycles alone are necessary but NOT sufficient (paper Fig. 4).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/cwg.hpp"
#include "core/cycles.hpp"

namespace flexnet {

/// One deadlock, characterized as in the paper's Section 2.2.
struct Knot {
  /// Virtual channels forming the knot (the terminal SCC), ascending.
  std::vector<VcId> knot_vcs;
  /// Messages owning at least one knot VC — removing one of these is
  /// necessary to resolve the deadlock.
  std::vector<MessageId> deadlock_set;
  /// Every VC held by the deadlock set (a superset of knot_vcs; this is the
  /// paper's "resource set").
  std::vector<VcId> resource_set;
  /// Blocked messages outside the deadlock set waiting on a resource-set VC.
  /// They cannot proceed until recovery, but removing them would NOT resolve
  /// the deadlock (the paper's "dependent messages").
  std::vector<MessageId> dependent_messages;
};

/// Finds every knot in the CWG. An empty result means no deadlock exists,
/// regardless of how many cycles the graph contains. Knots are ordered by
/// their smallest VC — canonical regardless of how the SCC pass numbered
/// components, so the full-graph and blocked-subgraph pipelines agree.
[[nodiscard]] std::vector<Knot> find_knots(const Cwg& cwg);

struct SccResult;  // core/scc.hpp

/// Extracts the knots (terminal SCCs containing an edge) of `g` given its
/// SCC decomposition, filling only knot_vcs (sorted ascending; knots ordered
/// by smallest VC). When `to_global` is non-empty, `g` is an induced
/// subgraph and vertex v is reported as to_global[v]; the mapping must be
/// strictly increasing so sortedness is preserved.
[[nodiscard]] std::vector<Knot> knots_from_scc(const Digraph& g,
                                               const SccResult& scc,
                                               std::span<const int> to_global = {});

/// Fills each knot's deadlock set, resource set, and dependent messages from
/// the owning CWG (the paper's Section 2.2 characterization).
void characterize_knots(const Cwg& cwg, std::vector<Knot>& knots);

/// Knot cycle density: the number of unique elementary cycles within the
/// knot-induced subgraph (1 for the paper's "single-cycle deadlocks").
[[nodiscard]] CycleEnumeration knot_cycle_density(const Cwg& cwg,
                                                  const Knot& knot,
                                                  std::int64_t cap,
                                                  std::size_t store_limit = 0);

/// Convenience: true iff the CWG contains at least one knot.
[[nodiscard]] bool has_deadlock(const Cwg& cwg);

/// Position-independent structural hash of a knot: Weisfeiler–Leman color
/// refinement over the knot-induced subgraph, seeded with per-vertex local
/// structure (in/out degree plus the owning message's held/request counts).
/// Two deadlocks that are the same wait-for pattern translated across the
/// torus hash equal; structurally different knots collide only by accident.
/// Used to dedupe the captured deadlock corpus.
[[nodiscard]] std::uint64_t canonical_knot_hash(const Cwg& cwg,
                                                const Knot& knot);

}  // namespace flexnet
