#include "core/incremental.hpp"

#include <algorithm>

namespace flexnet {

std::vector<Knot> CwgScratch::find_knots_blocked() {
  const Digraph& g = cwg_.graph();
  const auto n = static_cast<std::size_t>(g.num_vertices());
  ++mark_gen_;
  if (mark_.size() < n) mark_.resize(n, 0);
  if (local_of_.size() < n) local_of_.resize(n, -1);
  subset_.clear();
  dfs_stack_.clear();

  // Seed with every blocked message's tip: each dashed arc leaves there, and
  // the solid arcs further down the chain are reachable through it only if a
  // cycle returns — which is exactly when they can matter for a knot.
  for (const CwgMessage& msg : cwg_.messages()) {
    if (msg.requests.empty()) continue;
    const int tip = msg.held.back();
    if (mark_[static_cast<std::size_t>(tip)] != mark_gen_) {
      mark_[static_cast<std::size_t>(tip)] = mark_gen_;
      subset_.push_back(tip);
      dfs_stack_.push_back(tip);
    }
  }
  if (subset_.empty()) {
    blocked_stats_ = BlockedSubgraphStats{};
    return {};
  }

  // Forward closure over solid + dashed arcs.
  while (!dfs_stack_.empty()) {
    const int v = dfs_stack_.back();
    dfs_stack_.pop_back();
    for (const int w : g.out(v)) {
      if (mark_[static_cast<std::size_t>(w)] != mark_gen_) {
        mark_[static_cast<std::size_t>(w)] = mark_gen_;
        subset_.push_back(w);
        dfs_stack_.push_back(w);
      }
    }
  }

  // Renumber ascending so knots_from_scc's to_global mapping preserves the
  // ascending knot_vcs invariant.
  std::sort(subset_.begin(), subset_.end());
  for (std::size_t i = 0; i < subset_.size(); ++i) {
    local_of_[static_cast<std::size_t>(subset_[i])] = static_cast<int>(i);
  }

  // Induced subgraph; every out-neighbor of a closure member is itself in
  // the closure, so no edge is dropped.
  sub_.reset(static_cast<int>(subset_.size()));
  for (std::size_t i = 0; i < subset_.size(); ++i) {
    for (const int w : g.out(subset_[i])) {
      sub_.add_edge(static_cast<int>(i), local_of_[static_cast<std::size_t>(w)]);
    }
  }

  strongly_connected_components(sub_, scc_, scc_scratch_);
  std::vector<Knot> knots = knots_from_scc(sub_, scc_, subset_);
  characterize_knots(cwg_, knots);

  blocked_stats_.closure_size = static_cast<std::int64_t>(subset_.size());
  blocked_stats_.largest_scc = 0;
  for (int c = 0; c < scc_.num_components; ++c) {
    const auto sz =
        static_cast<std::int64_t>(scc_.size[static_cast<std::size_t>(c)]);
    if (sz > blocked_stats_.largest_scc) blocked_stats_.largest_scc = sz;
  }
  blocked_stats_.knots = static_cast<std::int64_t>(knots.size());
  return knots;
}

}  // namespace flexnet
