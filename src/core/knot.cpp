#include "core/knot.hpp"

#include <algorithm>

#include "core/scc.hpp"

namespace flexnet {

std::vector<Knot> find_knots(const Cwg& cwg) {
  const Digraph& g = cwg.graph();
  const SccResult scc = strongly_connected_components(g);

  // A component is terminal when no member has an edge leaving it; it is a
  // knot when it additionally contains an edge (size >= 2, or a self-loop).
  std::vector<bool> terminal(static_cast<std::size_t>(scc.num_components), true);
  std::vector<bool> has_self_loop(static_cast<std::size_t>(scc.num_components), false);
  for (int v = 0; v < g.num_vertices(); ++v) {
    const int cv = scc.component[static_cast<std::size_t>(v)];
    for (const int w : g.out(v)) {
      if (w == v) {
        has_self_loop[static_cast<std::size_t>(cv)] = true;
      } else if (scc.component[static_cast<std::size_t>(w)] != cv) {
        terminal[static_cast<std::size_t>(cv)] = false;
      }
    }
  }

  std::vector<int> knot_of_comp(static_cast<std::size_t>(scc.num_components), -1);
  std::vector<Knot> knots;
  for (int c = 0; c < scc.num_components; ++c) {
    const bool nontrivial = scc.size[static_cast<std::size_t>(c)] >= 2 ||
                            has_self_loop[static_cast<std::size_t>(c)];
    if (terminal[static_cast<std::size_t>(c)] && nontrivial) {
      knot_of_comp[static_cast<std::size_t>(c)] = static_cast<int>(knots.size());
      knots.emplace_back();
    }
  }
  if (knots.empty()) return knots;

  for (int v = 0; v < g.num_vertices(); ++v) {
    const int k =
        knot_of_comp[static_cast<std::size_t>(scc.component[static_cast<std::size_t>(v)])];
    if (k >= 0) knots[static_cast<std::size_t>(k)].knot_vcs.push_back(v);
  }

  // Characterize each knot: deadlock set, resource set, dependent messages.
  for (Knot& knot : knots) {
    for (const VcId vc : knot.knot_vcs) {
      const MessageId owner = cwg.owner_of(vc);
      if (owner != kInvalidMessage) knot.deadlock_set.push_back(owner);
    }
    std::sort(knot.deadlock_set.begin(), knot.deadlock_set.end());
    knot.deadlock_set.erase(
        std::unique(knot.deadlock_set.begin(), knot.deadlock_set.end()),
        knot.deadlock_set.end());

    for (const MessageId id : knot.deadlock_set) {
      const CwgMessage* msg = cwg.find_message(id);
      knot.resource_set.insert(knot.resource_set.end(), msg->held.begin(),
                               msg->held.end());
    }
    std::sort(knot.resource_set.begin(), knot.resource_set.end());
  }

  // Dependent messages: blocked, outside every deadlock set, requesting a VC
  // inside some knot's resource set.
  for (const CwgMessage& msg : cwg.messages()) {
    if (msg.requests.empty()) continue;
    for (Knot& knot : knots) {
      if (std::binary_search(knot.deadlock_set.begin(), knot.deadlock_set.end(),
                             msg.id)) {
        continue;
      }
      const bool waits_on_knot = std::any_of(
          msg.requests.begin(), msg.requests.end(), [&](VcId want) {
            return std::binary_search(knot.resource_set.begin(),
                                      knot.resource_set.end(), want);
          });
      if (waits_on_knot) knot.dependent_messages.push_back(msg.id);
    }
  }
  return knots;
}

CycleEnumeration knot_cycle_density(const Cwg& cwg, const Knot& knot,
                                    std::int64_t cap, std::size_t store_limit) {
  const Digraph sub = cwg.graph().induced(knot.knot_vcs);
  CycleEnumeration result = enumerate_simple_cycles(sub, cap, store_limit);
  // Map stored cycle vertices back to the original VC ids.
  for (auto& cycle : result.cycles) {
    for (int& v : cycle) {
      v = knot.knot_vcs[static_cast<std::size_t>(v)];
    }
  }
  return result;
}

bool has_deadlock(const Cwg& cwg) { return !find_knots(cwg).empty(); }

}  // namespace flexnet
