#include "core/knot.hpp"

#include <algorithm>

#include "core/scc.hpp"

namespace flexnet {

std::vector<Knot> knots_from_scc(const Digraph& g, const SccResult& scc,
                                 std::span<const int> to_global) {
  // A component is terminal when no member has an edge leaving it; it is a
  // knot when it additionally contains an edge (size >= 2, or a self-loop).
  std::vector<bool> terminal(static_cast<std::size_t>(scc.num_components), true);
  std::vector<bool> has_self_loop(static_cast<std::size_t>(scc.num_components), false);
  for (int v = 0; v < g.num_vertices(); ++v) {
    const int cv = scc.component[static_cast<std::size_t>(v)];
    for (const int w : g.out(v)) {
      if (w == v) {
        has_self_loop[static_cast<std::size_t>(cv)] = true;
      } else if (scc.component[static_cast<std::size_t>(w)] != cv) {
        terminal[static_cast<std::size_t>(cv)] = false;
      }
    }
  }

  std::vector<int> knot_of_comp(static_cast<std::size_t>(scc.num_components), -1);
  std::vector<Knot> knots;
  for (int c = 0; c < scc.num_components; ++c) {
    const bool nontrivial = scc.size[static_cast<std::size_t>(c)] >= 2 ||
                            has_self_loop[static_cast<std::size_t>(c)];
    if (terminal[static_cast<std::size_t>(c)] && nontrivial) {
      knot_of_comp[static_cast<std::size_t>(c)] = static_cast<int>(knots.size());
      knots.emplace_back();
    }
  }
  if (knots.empty()) return knots;

  for (int v = 0; v < g.num_vertices(); ++v) {
    const int k =
        knot_of_comp[static_cast<std::size_t>(scc.component[static_cast<std::size_t>(v)])];
    if (k >= 0) {
      knots[static_cast<std::size_t>(k)].knot_vcs.push_back(
          to_global.empty() ? v : to_global[static_cast<std::size_t>(v)]);
    }
  }

  // Tarjan numbers components in DFS-dependent order, which differs between
  // the full graph and an induced subgraph. Sorting by each knot's smallest
  // VC (knots are disjoint) makes the output order canonical.
  std::sort(knots.begin(), knots.end(), [](const Knot& a, const Knot& b) {
    return a.knot_vcs.front() < b.knot_vcs.front();
  });
  return knots;
}

void characterize_knots(const Cwg& cwg, std::vector<Knot>& knots) {
  if (knots.empty()) return;

  // Characterize each knot: deadlock set, resource set, dependent messages.
  for (Knot& knot : knots) {
    for (const VcId vc : knot.knot_vcs) {
      const MessageId owner = cwg.owner_of(vc);
      if (owner != kInvalidMessage) knot.deadlock_set.push_back(owner);
    }
    std::sort(knot.deadlock_set.begin(), knot.deadlock_set.end());
    knot.deadlock_set.erase(
        std::unique(knot.deadlock_set.begin(), knot.deadlock_set.end()),
        knot.deadlock_set.end());

    for (const MessageId id : knot.deadlock_set) {
      const CwgMessage* msg = cwg.find_message(id);
      knot.resource_set.insert(knot.resource_set.end(), msg->held.begin(),
                               msg->held.end());
    }
    std::sort(knot.resource_set.begin(), knot.resource_set.end());
  }

  // Dependent messages: blocked, outside every deadlock set, requesting a VC
  // inside some knot's resource set.
  for (const CwgMessage& msg : cwg.messages()) {
    if (msg.requests.empty()) continue;
    for (Knot& knot : knots) {
      if (std::binary_search(knot.deadlock_set.begin(), knot.deadlock_set.end(),
                             msg.id)) {
        continue;
      }
      const bool waits_on_knot = std::any_of(
          msg.requests.begin(), msg.requests.end(), [&](VcId want) {
            return std::binary_search(knot.resource_set.begin(),
                                      knot.resource_set.end(), want);
          });
      if (waits_on_knot) knot.dependent_messages.push_back(msg.id);
    }
  }
}

std::vector<Knot> find_knots(const Cwg& cwg) {
  const Digraph& g = cwg.graph();
  const SccResult scc = strongly_connected_components(g);
  std::vector<Knot> knots = knots_from_scc(g, scc);
  characterize_knots(cwg, knots);
  return knots;
}

CycleEnumeration knot_cycle_density(const Cwg& cwg, const Knot& knot,
                                    std::int64_t cap, std::size_t store_limit) {
  const Digraph sub = cwg.graph().induced(knot.knot_vcs);
  CycleEnumeration result = enumerate_simple_cycles(sub, cap, store_limit);
  // Map stored cycle vertices back to the original VC ids.
  for (auto& cycle : result.cycles) {
    for (int& v : cycle) {
      v = knot.knot_vcs[static_cast<std::size_t>(v)];
    }
  }
  return result;
}

bool has_deadlock(const Cwg& cwg) { return !find_knots(cwg).empty(); }

namespace {

// SplitMix64 finalizer: the standard 64-bit avalanche mix.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) noexcept {
  return mix64(h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

}  // namespace

std::uint64_t canonical_knot_hash(const Cwg& cwg, const Knot& knot) {
  const Digraph sub = cwg.graph().induced(knot.knot_vcs);
  const int n = sub.num_vertices();
  if (n == 0) return mix64(0);

  // Reverse adjacency so refinement sees both edge directions.
  std::vector<std::vector<int>> in_adj(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    for (const int w : sub.out(v)) in_adj[static_cast<std::size_t>(w)].push_back(v);
  }

  // Initial color: local structure only (degrees + the owning message's held
  // and request counts) — nothing position-dependent.
  std::vector<std::uint64_t> color(static_cast<std::size_t>(n));
  std::vector<std::uint64_t> next(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    const MessageId owner =
        cwg.owner_of(knot.knot_vcs[static_cast<std::size_t>(v)]);
    std::uint64_t held = 0;
    std::uint64_t requests = 0;
    if (owner != kInvalidMessage) {
      if (const CwgMessage* msg = cwg.find_message(owner)) {
        held = msg->held.size();
        requests = msg->requests.size();
      }
    }
    std::uint64_t h = mix64(static_cast<std::uint64_t>(sub.out(v).size()));
    h = hash_combine(h, in_adj[static_cast<std::size_t>(v)].size());
    h = hash_combine(h, held);
    h = hash_combine(h, requests);
    color[static_cast<std::size_t>(v)] = h;
  }

  // Three rounds of refinement: new color = f(old color, sorted out-neighbor
  // colors, sorted in-neighbor colors). Sorting makes each step independent
  // of vertex numbering.
  std::vector<std::uint64_t> bucket;
  for (int round = 0; round < 3; ++round) {
    for (int v = 0; v < n; ++v) {
      std::uint64_t h = mix64(color[static_cast<std::size_t>(v)]);
      bucket.clear();
      for (const int w : sub.out(v)) bucket.push_back(color[static_cast<std::size_t>(w)]);
      std::sort(bucket.begin(), bucket.end());
      for (const std::uint64_t c : bucket) h = hash_combine(h, c);
      h = hash_combine(h, 0x6f75742f696eULL);  // separate out- from in-fold
      bucket.clear();
      for (const int w : in_adj[static_cast<std::size_t>(v)]) {
        bucket.push_back(color[static_cast<std::size_t>(w)]);
      }
      std::sort(bucket.begin(), bucket.end());
      for (const std::uint64_t c : bucket) h = hash_combine(h, c);
      next[static_cast<std::size_t>(v)] = h;
    }
    color.swap(next);
  }

  std::sort(color.begin(), color.end());
  std::uint64_t h = mix64(static_cast<std::uint64_t>(n));
  for (const std::uint64_t c : color) h = hash_combine(h, c);
  return h;
}

}  // namespace flexnet
