// Packet (message) wait-for graph.
//
// Vertices are in-network messages; an edge m -> m' exists when blocked m
// requests a VC currently owned by m'. Dally & Aoki's avoidance scheme
// forbids cycles in this graph; the paper (Section 2.2.3) shows that is
// overly restrictive: a cyclic non-deadlock has PWG cycles yet no CWG knot,
// so eliminating PWG cycles sacrifices routing freedom that deadlock freedom
// does not require. This module exists to quantify exactly that gap.
#pragma once

#include <vector>

#include "core/cwg.hpp"
#include "core/graph.hpp"

namespace flexnet {

struct Pwg {
  /// Derives the message-level graph from a channel wait-for graph.
  [[nodiscard]] static Pwg from_cwg(const Cwg& cwg);

  Digraph graph;                ///< Vertex i is messages_ids[i].
  std::vector<MessageId> ids;   ///< Vertex -> message id.

  /// Vertex index for a message id; -1 if absent.
  [[nodiscard]] int index_of(MessageId id) const;
  /// True when any wait cycle exists among messages.
  [[nodiscard]] bool has_cycle() const;
  /// Number of messages on at least one wait cycle.
  [[nodiscard]] int messages_on_cycles() const;
};

}  // namespace flexnet
