#include "core/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace flexnet {

void Digraph::reset(int num_vertices) {
  const auto n = static_cast<std::size_t>(num_vertices);
  const std::size_t keep = std::min(adj_.size(), n);
  for (std::size_t i = 0; i < keep; ++i) adj_[i].clear();
  adj_.resize(n);
  num_edges_ = 0;
}

void Digraph::add_edge(int from, int to) {
  if (from < 0 || from >= num_vertices() || to < 0 || to >= num_vertices()) {
    throw std::out_of_range("Digraph::add_edge vertex out of range");
  }
  adj_[static_cast<std::size_t>(from)].push_back(to);
  ++num_edges_;
}

bool Digraph::has_edge(int from, int to) const noexcept {
  const auto& row = adj_[static_cast<std::size_t>(from)];
  return std::find(row.begin(), row.end(), to) != row.end();
}

Digraph Digraph::induced(std::span<const int> vertices) const {
  Digraph sub(static_cast<int>(vertices.size()));
  std::vector<int> index(static_cast<std::size_t>(num_vertices()), -1);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    index[static_cast<std::size_t>(vertices[i])] = static_cast<int>(i);
  }
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    for (const int to : out(vertices[i])) {
      const int mapped = index[static_cast<std::size_t>(to)];
      if (mapped >= 0) sub.add_edge(static_cast<int>(i), mapped);
    }
  }
  return sub;
}

}  // namespace flexnet
