#include "core/dot.hpp"

#include <algorithm>
#include <sstream>

namespace flexnet {

std::string cwg_to_dot(const Cwg& cwg, std::span<const Knot> knots) {
  std::vector<bool> in_knot(static_cast<std::size_t>(cwg.num_vcs()), false);
  for (const Knot& knot : knots) {
    for (const VcId vc : knot.knot_vcs) {
      in_knot[static_cast<std::size_t>(vc)] = true;
    }
  }

  std::ostringstream out;
  out << "digraph cwg {\n"
      << "  rankdir=LR;\n"
      << "  node [shape=circle fontsize=10];\n";

  std::vector<bool> used(static_cast<std::size_t>(cwg.num_vcs()), false);
  for (const CwgMessage& msg : cwg.messages()) {
    for (const VcId vc : msg.held) used[static_cast<std::size_t>(vc)] = true;
    for (const VcId vc : msg.requests) used[static_cast<std::size_t>(vc)] = true;
  }
  for (int vc = 0; vc < cwg.num_vcs(); ++vc) {
    if (!used[static_cast<std::size_t>(vc)]) continue;
    out << "  c" << vc;
    if (in_knot[static_cast<std::size_t>(vc)]) {
      out << " [style=filled fillcolor=salmon]";
    }
    out << ";\n";
  }

  for (const CwgMessage& msg : cwg.messages()) {
    for (std::size_t h = 0; h + 1 < msg.held.size(); ++h) {
      out << "  c" << msg.held[h] << " -> c" << msg.held[h + 1]
          << " [label=\"m" << msg.id << "\"];\n";
    }
    for (const VcId want : msg.requests) {
      out << "  c" << msg.held.back() << " -> c" << want
          << " [style=dashed label=\"m" << msg.id << "\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace flexnet
