#include "core/dot.hpp"

#include <algorithm>
#include <sstream>

#include "topo/topology.hpp"

namespace flexnet {

std::string cwg_to_dot(const Cwg& cwg, std::span<const Knot> knots) {
  std::vector<bool> in_knot(static_cast<std::size_t>(cwg.num_vcs()), false);
  for (const Knot& knot : knots) {
    for (const VcId vc : knot.knot_vcs) {
      in_knot[static_cast<std::size_t>(vc)] = true;
    }
  }

  std::ostringstream out;
  out << "digraph cwg {\n"
      << "  rankdir=LR;\n"
      << "  node [shape=circle fontsize=10];\n";

  std::vector<bool> used(static_cast<std::size_t>(cwg.num_vcs()), false);
  for (const CwgMessage& msg : cwg.messages()) {
    for (const VcId vc : msg.held) used[static_cast<std::size_t>(vc)] = true;
    for (const VcId vc : msg.requests) used[static_cast<std::size_t>(vc)] = true;
  }
  for (int vc = 0; vc < cwg.num_vcs(); ++vc) {
    if (!used[static_cast<std::size_t>(vc)]) continue;
    out << "  c" << vc;
    if (in_knot[static_cast<std::size_t>(vc)]) {
      out << " [style=filled fillcolor=salmon]";
    }
    out << ";\n";
  }

  for (const CwgMessage& msg : cwg.messages()) {
    for (std::size_t h = 0; h + 1 < msg.held.size(); ++h) {
      out << "  c" << msg.held[h] << " -> c" << msg.held[h + 1]
          << " [label=\"m" << msg.id << "\"];\n";
    }
    for (const VcId want : msg.requests) {
      out << "  c" << msg.held.back() << " -> c" << want
          << " [style=dashed label=\"m" << msg.id << "\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

std::string topology_to_dot(const Topology& topo) {
  // Pair up antiparallel channels of equal width so bidirectional links
  // render as a single undirected edge (dir=none) instead of two arrows.
  const auto& channels = topo.channels();
  std::vector<bool> paired(channels.size(), false);
  std::ostringstream out;
  out << "digraph topology {\n"
      << "  label=\"" << topo.name() << "\";\n"
      << "  node [shape=circle fontsize=10];\n";
  for (NodeId v = 0; v < topo.num_nodes(); ++v) out << "  n" << v << ";\n";
  for (const ChannelDesc& ch : channels) {
    if (paired[static_cast<std::size_t>(ch.id)]) continue;
    bool undirected = false;
    for (const ChannelId other_id : topo.out_channels(ch.dst)) {
      const ChannelDesc& other = topo.channel(other_id);
      if (other.dst == ch.src && other.width == ch.width &&
          !paired[static_cast<std::size_t>(other_id)] && other_id != ch.id) {
        paired[static_cast<std::size_t>(other_id)] = true;
        undirected = true;
        break;
      }
    }
    out << "  n" << ch.src << " -> n" << ch.dst;
    const char* sep = " [";
    if (undirected) {
      out << sep << "dir=none";
      sep = " ";
    }
    if (ch.width > 1) {
      out << sep << "label=\"x" << ch.width << "\"";
      sep = " ";
    }
    if (sep[0] == ' ' && sep[1] == '\0') out << ']';
    out << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace flexnet
