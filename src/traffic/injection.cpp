#include "traffic/injection.hpp"

#include <stdexcept>

#include "util/binio.hpp"

namespace flexnet {

InjectionProcess::InjectionProcess(const Network& net,
                                   const TrafficConfig& traffic,
                                   std::uint64_t seed)
    : pattern_(make_traffic(traffic.pattern, net.topology(), traffic)),
      rng_(splitmix64(seed), 0x696e6a65 /* "inje" */),
      length_(net.config().message_length),
      short_length_(net.config().short_message_length),
      short_fraction_(net.config().short_message_fraction) {
  if (traffic.load < 0.0) throw std::invalid_argument("load must be >= 0");
  avg_distance_ = average_pattern_distance(net.topology(), *pattern_, seed);
  capacity_ = net.capacity_flits_per_node(avg_distance_);
  offered_ = traffic.load * capacity_;
  mean_length_ = short_fraction_ * short_length_ +
                 (1.0 - short_fraction_) * length_;
  probability_ = offered_ / mean_length_;
  if (probability_ > 1.0) {
    throw std::invalid_argument(
        "offered load exceeds one message per node per cycle");
  }
}

std::int32_t InjectionProcess::draw_length(Pcg32& rng) const {
  if (short_fraction_ > 0.0 && rng.chance(short_fraction_)) {
    return short_length_;
  }
  return length_;
}

MessageId InjectionProcess::emit(Network& net, NodeId src, NodeId dst,
                                 std::int32_t length, MessageClass cls) {
  if (capture_ != nullptr) capture_->record(net.now(), src, dst, length, cls);
  return net.enqueue_message(src, dst, length, cls);
}

void InjectionProcess::save_state(BinWriter& out) const {
  const Pcg32::State s = rng_.save();
  out.u64(s.state);
  out.u64(s.inc);
  out.u64(s.draws);
  out.i64(stalled_);
}

void InjectionProcess::restore_state(BinReader& in, std::uint32_t version) {
  (void)version;  // the base layout is unchanged across snapshot versions
  Pcg32::State s;
  s.state = in.u64();
  s.inc = in.u64();
  s.draws = in.u64();
  rng_.restore(s);
  stalled_ = in.i64();
}

void InjectionProcess::tick(Network& net) {
  const NodeId nodes = net.topology().num_nodes();
  const int limit = net.config().source_queue_limit;
  for (NodeId src = 0; src < nodes; ++src) {
    if (!rng_.chance(probability_)) continue;
    if (limit > 0 &&
        net.source_queue_length(src) >= static_cast<std::size_t>(limit)) {
      ++stalled_;  // source busy: offered load beyond what the node can queue
      continue;
    }
    const NodeId dst = pattern_->destination(src, rng_);
    if (dst == kInvalidNode) continue;
    emit(net, src, dst, draw_length(rng_), MessageClass::Bulk);
  }
}

}  // namespace flexnet
