// Traffic patterns (paper Section 3 and 3.6): uniform plus the classic
// non-uniform permutations (bit-reversal, matrix transpose, perfect shuffle)
// and hot-spot, with tornado and nearest-neighbor as extras.
//
// Permutation patterns map some sources to themselves; those sources simply
// generate no traffic (the paper notes such patterns preclude the circular
// overlap DOR deadlocks need).
#pragma once

#include <memory>
#include <string_view>

#include "topo/topology.hpp"
#include "util/rng.hpp"

namespace flexnet {

enum class TrafficKind : std::uint8_t {
  Uniform,
  BitReversal,
  Transpose,
  PerfectShuffle,
  HotSpot,
  Tornado,
  NearestNeighbor,
};

[[nodiscard]] std::string_view to_string(TrafficKind kind) noexcept;
/// Inverse of to_string; throws std::invalid_argument on an unknown name.
/// Used by the CLI and the flexnet-trace-v1 header codec.
[[nodiscard]] TrafficKind parse_traffic_kind(std::string_view name);

struct TrafficConfig {
  TrafficKind pattern = TrafficKind::Uniform;
  /// Normalized offered load in [0, ~1.5]; 1.0 saturates the channel budget.
  double load = 0.5;
  // Hot-spot parameters.
  int hotspot_nodes = 4;
  double hotspot_fraction = 0.3;
  /// Hybrid traffic (paper future work: "hybrid non-uniform traffic loads"):
  /// with probability hybrid_fraction a message follows hybrid_with instead
  /// of the primary pattern.
  double hybrid_fraction = 0.0;
  TrafficKind hybrid_with = TrafficKind::Uniform;
};

class TrafficPattern {
 public:
  virtual ~TrafficPattern() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Destination for a message from `src`. May be random. Returns
  /// kInvalidNode when this source generates no traffic (self-mapped
  /// permutation entries).
  [[nodiscard]] virtual NodeId destination(NodeId src, Pcg32& rng) const = 0;

  /// Whether destination() is a deterministic function of src.
  [[nodiscard]] virtual bool deterministic() const noexcept { return true; }
};

/// Builds the pattern over any topology (Tornado and NearestNeighbor keep
/// bit-identical fast paths on tori and generalize via BFS elsewhere; the
/// bit-permutations require power-of-two node counts). Hybrid mixing is
/// validated eagerly: a negative or >1 hybrid_fraction, or a hybrid
/// secondary that generates no traffic on this topology, throws here — at
/// construction — never mid-run.
[[nodiscard]] std::unique_ptr<TrafficPattern> make_traffic(
    TrafficKind kind, const Topology& topo, const TrafficConfig& config);

/// Mean minimal src->dst distance under the pattern: exact for deterministic
/// permutations, Monte Carlo (`samples` draws) otherwise. Used to normalize
/// load by "total link bandwidth and average internode distance" (paper
/// Section 3).
[[nodiscard]] double average_pattern_distance(const Topology& topo,
                                              const TrafficPattern& pattern,
                                              std::uint64_t seed,
                                              int samples = 50000);

}  // namespace flexnet
