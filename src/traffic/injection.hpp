// Injection processes: the arrival side of a workload. The base class is the
// paper's Bernoulli process with load normalization — a normalized load of
// 1.0 offers exactly the flit rate at which average network-channel
// utilization reaches one flit/cycle, computed from total link bandwidth and
// the traffic pattern's average internode distance (paper Section 3.1).
//
// src/workload/ derives the production arrival processes from this base:
// PacedInjection (phased rate schedules) and TraceReplayInjection (recorded
// streams). Every generated message funnels through emit(), which tags the
// message class and mirrors the tuple into an attached trace-capture sink, so
// any live run is replayable.
#pragma once

#include <memory>
#include <string_view>

#include "sim/network.hpp"
#include "traffic/traffic.hpp"
#include "util/rng.hpp"

namespace flexnet {

class BinReader;
class BinWriter;

/// Which arrival process drives a run. Serialized (u8) in snapshots and used
/// as the `--workload` discriminator; append-only.
enum class WorkloadKind : std::uint8_t {
  Bernoulli = 0,  ///< Memoryless per-node coin flips (the default).
  Trace = 1,      ///< Replay of a recorded flexnet-trace-v1 file.
  Paced = 2,      ///< Bernoulli modulated by a phased pace profile.
};

[[nodiscard]] constexpr std::string_view to_string(WorkloadKind kind) noexcept {
  switch (kind) {
    case WorkloadKind::Bernoulli: return "bernoulli";
    case WorkloadKind::Trace: return "trace";
    case WorkloadKind::Paced: return "pace";
  }
  return "?";
}

/// Where emit() mirrors each generated message. TraceCaptureWriter
/// (workload/trace_file.hpp) implements this over an output stream.
class TraceCaptureSink {
 public:
  virtual ~TraceCaptureSink() = default;
  virtual void record(Cycle cycle, NodeId src, NodeId dst, std::int32_t length,
                      MessageClass cls) = 0;
};

class InjectionProcess {
 public:
  InjectionProcess(const Network& net, const TrafficConfig& traffic,
                   std::uint64_t seed);
  virtual ~InjectionProcess() = default;

  InjectionProcess(const InjectionProcess&) = delete;
  InjectionProcess& operator=(const InjectionProcess&) = delete;

  /// Generates this cycle's new messages into the network's source queues.
  /// Call once per cycle before Network::step().
  virtual void tick(Network& net);

  /// Which arrival process this is (snapshot tag; checked on restore).
  [[nodiscard]] virtual WorkloadKind kind() const noexcept {
    return WorkloadKind::Bernoulli;
  }

  [[nodiscard]] const TrafficPattern& pattern() const noexcept { return *pattern_; }
  /// Mean minimal distance under the pattern.
  [[nodiscard]] double average_distance() const noexcept { return avg_distance_; }
  /// Flits/node/cycle corresponding to normalized load 1.0.
  [[nodiscard]] double capacity_flits_per_node() const noexcept { return capacity_; }
  /// Offered flit rate per node at the configured load.
  [[nodiscard]] double offered_flit_rate() const noexcept { return offered_; }
  /// Per-node per-cycle message generation probability.
  [[nodiscard]] double message_probability() const noexcept { return probability_; }
  /// Generation attempts suppressed by a full source queue.
  [[nodiscard]] std::int64_t stalled_generations() const noexcept { return stalled_; }

  /// Attaches (or detaches, with nullptr) a capture sink; every subsequent
  /// emit() mirrors its tuple there. Non-owning.
  void set_capture(TraceCaptureSink* capture) noexcept { capture_ = capture; }

  /// Snapshot hooks. The base serializes the RNG position and the stall
  /// counter; subclasses append their own dynamic state (trace cursor, pace
  /// profile hash) after calling the base. `version` is the snapshot
  /// container version the payload was written under.
  virtual void save_state(BinWriter& out) const;
  virtual void restore_state(BinReader& in,
                             std::uint32_t version = kStateFormatVersion);

 protected:
  /// The single funnel for message creation: tags the class, mirrors the
  /// tuple into the capture sink, and enqueues. Returns the new message id.
  MessageId emit(Network& net, NodeId src, NodeId dst, std::int32_t length,
                 MessageClass cls);

  [[nodiscard]] std::int32_t draw_length(Pcg32& rng) const;

  std::unique_ptr<TrafficPattern> pattern_;
  Pcg32 rng_;
  double avg_distance_ = 0.0;
  double capacity_ = 0.0;
  double offered_ = 0.0;
  double probability_ = 0.0;
  double mean_length_ = 0.0;
  std::int64_t stalled_ = 0;
  // message length parameters (copied from SimConfig)
  std::int32_t length_;
  std::int32_t short_length_;
  double short_fraction_;

 private:
  TraceCaptureSink* capture_ = nullptr;
};

}  // namespace flexnet
