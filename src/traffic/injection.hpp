// Bernoulli injection process with the paper's load normalization: a
// normalized load of 1.0 offers exactly the flit rate at which average
// network-channel utilization reaches one flit/cycle, computed from total
// link bandwidth and the traffic pattern's average internode distance. This
// is why uni- and bidirectional tori (different channel counts and average
// distances) are compared on the same normalized axis (paper Section 3.1).
#pragma once

#include <memory>

#include "sim/network.hpp"
#include "traffic/traffic.hpp"
#include "util/rng.hpp"

namespace flexnet {

class BinReader;
class BinWriter;

class InjectionProcess {
 public:
  InjectionProcess(const Network& net, const TrafficConfig& traffic,
                   std::uint64_t seed);

  /// Generates this cycle's new messages into the network's source queues.
  /// Call once per cycle before Network::step().
  void tick(Network& net);

  [[nodiscard]] const TrafficPattern& pattern() const noexcept { return *pattern_; }
  /// Mean minimal distance under the pattern.
  [[nodiscard]] double average_distance() const noexcept { return avg_distance_; }
  /// Flits/node/cycle corresponding to normalized load 1.0.
  [[nodiscard]] double capacity_flits_per_node() const noexcept { return capacity_; }
  /// Offered flit rate per node at the configured load.
  [[nodiscard]] double offered_flit_rate() const noexcept { return offered_; }
  /// Per-node per-cycle message generation probability.
  [[nodiscard]] double message_probability() const noexcept { return probability_; }
  /// Generation attempts suppressed by a full source queue.
  [[nodiscard]] std::int64_t stalled_generations() const noexcept { return stalled_; }

  /// Snapshot hooks: the RNG position and the stall counter are the only
  /// dynamic state (patterns and rates are pure functions of the config).
  void save_state(BinWriter& out) const;
  void restore_state(BinReader& in);

 private:
  [[nodiscard]] std::int32_t draw_length(Pcg32& rng) const;

  std::unique_ptr<TrafficPattern> pattern_;
  Pcg32 rng_;
  double avg_distance_ = 0.0;
  double capacity_ = 0.0;
  double offered_ = 0.0;
  double probability_ = 0.0;
  double mean_length_ = 0.0;
  std::int64_t stalled_ = 0;
  // message length parameters (copied from SimConfig)
  std::int32_t length_;
  std::int32_t short_length_;
  double short_fraction_;
};

}  // namespace flexnet
