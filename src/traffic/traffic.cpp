#include "traffic/traffic.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "topo/torus.hpp"

namespace flexnet {

std::string_view to_string(TrafficKind kind) noexcept {
  switch (kind) {
    case TrafficKind::Uniform: return "Uniform";
    case TrafficKind::BitReversal: return "BitReversal";
    case TrafficKind::Transpose: return "Transpose";
    case TrafficKind::PerfectShuffle: return "PerfectShuffle";
    case TrafficKind::HotSpot: return "HotSpot";
    case TrafficKind::Tornado: return "Tornado";
    case TrafficKind::NearestNeighbor: return "NearestNeighbor";
  }
  return "?";
}

TrafficKind parse_traffic_kind(std::string_view name) {
  for (const TrafficKind kind :
       {TrafficKind::Uniform, TrafficKind::BitReversal, TrafficKind::Transpose,
        TrafficKind::PerfectShuffle, TrafficKind::HotSpot, TrafficKind::Tornado,
        TrafficKind::NearestNeighbor}) {
    if (name == to_string(kind)) return kind;
  }
  throw std::invalid_argument("unknown traffic kind: " + std::string(name));
}

namespace {

class UniformTraffic final : public TrafficPattern {
 public:
  explicit UniformTraffic(NodeId nodes) : nodes_(nodes) {}
  [[nodiscard]] std::string_view name() const noexcept override { return "Uniform"; }
  [[nodiscard]] bool deterministic() const noexcept override { return false; }

  [[nodiscard]] NodeId destination(NodeId src, Pcg32& rng) const override {
    // Uniform over all nodes except the source.
    const auto draw =
        static_cast<NodeId>(rng.bounded(static_cast<std::uint32_t>(nodes_ - 1)));
    return draw >= src ? draw + 1 : draw;
  }

 private:
  NodeId nodes_;
};

/// Base for the bit-permutation patterns; requires a power-of-two node count.
class BitPermutationTraffic : public TrafficPattern {
 public:
  explicit BitPermutationTraffic(NodeId nodes) : nodes_(nodes) {
    if (!std::has_single_bit(static_cast<unsigned>(nodes))) {
      throw std::invalid_argument(
          "bit-permutation traffic needs a power-of-two node count");
    }
    bits_ = std::bit_width(static_cast<unsigned>(nodes)) - 1;
  }

  [[nodiscard]] NodeId destination(NodeId src, Pcg32& /*rng*/) const override {
    const NodeId dst = permute(static_cast<std::uint32_t>(src));
    return dst == src ? kInvalidNode : dst;
  }

 protected:
  [[nodiscard]] virtual NodeId permute(std::uint32_t src) const = 0;
  NodeId nodes_;
  int bits_ = 0;
};

class BitReversalTraffic final : public BitPermutationTraffic {
 public:
  using BitPermutationTraffic::BitPermutationTraffic;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "BitReversal";
  }

 protected:
  [[nodiscard]] NodeId permute(std::uint32_t src) const override {
    std::uint32_t out = 0;
    for (int b = 0; b < bits_; ++b) {
      out = (out << 1) | ((src >> b) & 1u);
    }
    return static_cast<NodeId>(out);
  }
};

class TransposeTraffic final : public BitPermutationTraffic {
 public:
  explicit TransposeTraffic(NodeId nodes) : BitPermutationTraffic(nodes) {
    if (bits_ % 2 != 0) {
      throw std::invalid_argument("matrix transpose needs an even bit count");
    }
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "Transpose";
  }

 protected:
  [[nodiscard]] NodeId permute(std::uint32_t src) const override {
    const int half = bits_ / 2;
    const std::uint32_t mask = (1u << half) - 1;
    return static_cast<NodeId>(((src & mask) << half) | (src >> half));
  }
};

class PerfectShuffleTraffic final : public BitPermutationTraffic {
 public:
  using BitPermutationTraffic::BitPermutationTraffic;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "PerfectShuffle";
  }

 protected:
  [[nodiscard]] NodeId permute(std::uint32_t src) const override {
    // Rotate the address left by one bit.
    const std::uint32_t top = (src >> (bits_ - 1)) & 1u;
    const std::uint32_t mask = (1u << bits_) - 1;
    return static_cast<NodeId>(((src << 1) & mask) | top);
  }
};

class HotSpotTraffic final : public TrafficPattern {
 public:
  HotSpotTraffic(NodeId nodes, int hotspots, double fraction)
      : nodes_(nodes), fraction_(fraction) {
    if (hotspots < 1 || hotspots > nodes) {
      throw std::invalid_argument("hotspot count out of range");
    }
    // Spread the hot nodes evenly across the id space.
    for (int i = 0; i < hotspots; ++i) {
      hot_.push_back(static_cast<NodeId>(
          (static_cast<std::int64_t>(i) * nodes) / hotspots));
    }
  }
  [[nodiscard]] std::string_view name() const noexcept override { return "HotSpot"; }
  [[nodiscard]] bool deterministic() const noexcept override { return false; }

  [[nodiscard]] NodeId destination(NodeId src, Pcg32& rng) const override {
    if (rng.chance(fraction_)) {
      const NodeId dst =
          hot_[rng.bounded(static_cast<std::uint32_t>(hot_.size()))];
      if (dst != src) return dst;
    }
    const auto draw =
        static_cast<NodeId>(rng.bounded(static_cast<std::uint32_t>(nodes_ - 1)));
    return draw >= src ? draw + 1 : draw;
  }

 private:
  NodeId nodes_;
  double fraction_;
  std::vector<NodeId> hot_;
};

class TornadoTraffic final : public TrafficPattern {
 public:
  explicit TornadoTraffic(const Topology& topo) : torus_(topo.as_torus()) {
    if (torus_ != nullptr) return;
    // Any topology: tornado's "nearly half-way around the ring" generalizes
    // to a fixed destination one hop short of the farthest node (on a k-ary
    // ring both give hop (k+1)/2 - 1 of eccentricity k/2... close enough in
    // spirit: long, fixed, non-uniform paths). Precompute the smallest-id
    // node at distance max(1, eccentricity(src) - 1) per source; BFS layers
    // are contiguous on a connected graph, so one always exists.
    const NodeId nodes = topo.num_nodes();
    dst_.resize(static_cast<std::size_t>(nodes), kInvalidNode);
    for (NodeId src = 0; src < nodes; ++src) {
      int ecc = 0;
      for (NodeId n = 0; n < nodes; ++n) {
        ecc = std::max(ecc, topo.min_distance(src, n));
      }
      const int target = std::max(1, ecc - 1);
      for (NodeId n = 0; n < nodes; ++n) {
        if (topo.min_distance(src, n) == target) {
          dst_[static_cast<std::size_t>(src)] = n;
          break;
        }
      }
    }
  }
  [[nodiscard]] std::string_view name() const noexcept override { return "Tornado"; }

  [[nodiscard]] NodeId destination(NodeId src, Pcg32& /*rng*/) const override {
    if (torus_ != nullptr) {
      // Nearly half-way around every dimension — the classic adversarial
      // pattern for rings (bit-identical to the historical torus-only path).
      const int hop = (torus_->radix() + 1) / 2 - 1;
      if (hop == 0) return kInvalidNode;
      std::vector<int> coords = torus_->coordinates().unpack(src);
      for (int& c : coords) c = (c + hop) % torus_->radix();
      return torus_->coordinates().pack(coords);
    }
    return dst_[static_cast<std::size_t>(src)];
  }

 private:
  const KAryNCube* torus_;
  std::vector<NodeId> dst_;  ///< Per-source fixed destination (non-torus).
};

class NearestNeighborTraffic final : public TrafficPattern {
 public:
  explicit NearestNeighborTraffic(const Topology& topo)
      : topo_(&topo), torus_(topo.as_torus()) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "NearestNeighbor";
  }
  [[nodiscard]] bool deterministic() const noexcept override { return false; }

  [[nodiscard]] NodeId destination(NodeId src, Pcg32& rng) const override {
    if (torus_ != nullptr) {
      // Historical torus draw sequence, kept bit-identical: a random
      // (dimension, direction) pair, retried past mesh boundaries.
      for (int attempts = 0; attempts < 8; ++attempts) {
        const int dim = static_cast<int>(
            rng.bounded(static_cast<std::uint32_t>(torus_->dimensions())));
        const int dir = torus_->bidirectional() && rng.chance(0.5) ? -1 : +1;
        const ChannelId ch = torus_->out_channel(src, dim, dir);
        if (ch != kInvalidChannel) return torus_->channel(ch).dst;
      }
      return kInvalidNode;  // boundary corner of a tiny mesh
    }
    // Any topology: uniform over the outgoing links.
    const std::span<const ChannelId> outs = topo_->out_channels(src);
    if (outs.empty()) return kInvalidNode;
    const ChannelId ch =
        outs[rng.bounded(static_cast<std::uint32_t>(outs.size()))];
    return topo_->channel(ch).dst;
  }

 private:
  const Topology* topo_;
  const KAryNCube* torus_;
};

/// Probabilistic mixture of two patterns.
class HybridTraffic final : public TrafficPattern {
 public:
  HybridTraffic(std::unique_ptr<TrafficPattern> primary,
                std::unique_ptr<TrafficPattern> secondary, double fraction)
      : primary_(std::move(primary)),
        secondary_(std::move(secondary)),
        fraction_(fraction) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "Hybrid";
  }
  [[nodiscard]] bool deterministic() const noexcept override { return false; }

  [[nodiscard]] NodeId destination(NodeId src, Pcg32& rng) const override {
    return rng.chance(fraction_) ? secondary_->destination(src, rng)
                                 : primary_->destination(src, rng);
  }

 private:
  std::unique_ptr<TrafficPattern> primary_;
  std::unique_ptr<TrafficPattern> secondary_;
  double fraction_;
};

/// Dispatch on a single kind (no hybrid wrapping).
std::unique_ptr<TrafficPattern> make_single(TrafficKind kind,
                                            const Topology& topo,
                                            const TrafficConfig& config) {
  switch (kind) {
    case TrafficKind::Uniform:
      return std::make_unique<UniformTraffic>(topo.num_nodes());
    case TrafficKind::BitReversal:
      return std::make_unique<BitReversalTraffic>(topo.num_nodes());
    case TrafficKind::Transpose:
      return std::make_unique<TransposeTraffic>(topo.num_nodes());
    case TrafficKind::PerfectShuffle:
      return std::make_unique<PerfectShuffleTraffic>(topo.num_nodes());
    case TrafficKind::HotSpot:
      return std::make_unique<HotSpotTraffic>(
          topo.num_nodes(), config.hotspot_nodes, config.hotspot_fraction);
    case TrafficKind::Tornado:
      return std::make_unique<TornadoTraffic>(topo);
    case TrafficKind::NearestNeighbor:
      return std::make_unique<NearestNeighborTraffic>(topo);
  }
  throw std::invalid_argument("unknown traffic kind");
}

}  // namespace

std::unique_ptr<TrafficPattern> make_traffic(TrafficKind kind,
                                             const Topology& topo,
                                             const TrafficConfig& config) {
  if (config.hybrid_fraction < 0.0 || config.hybrid_fraction > 1.0) {
    throw std::invalid_argument("hybrid_fraction must be within [0, 1]");
  }
  auto primary = make_single(kind, topo, config);
  if (config.hybrid_fraction == 0.0) return primary;
  auto secondary = make_single(config.hybrid_with, topo, config);
  // Fail at construction if the secondary cannot generate any traffic on
  // this topology (e.g. Tornado on a radix-2 torus maps every source to
  // itself): a hybrid that silently never mixes is a misconfiguration.
  if (secondary->deterministic()) {
    bool any = false;
    Pcg32 probe(0, 0);
    for (NodeId src = 0; src < topo.num_nodes() && !any; ++src) {
      any = secondary->destination(src, probe) != kInvalidNode;
    }
    if (!any) {
      throw std::invalid_argument(
          std::string("hybrid_with pattern ") +
          std::string(to_string(config.hybrid_with)) +
          " generates no traffic on this topology");
    }
  }
  return std::make_unique<HybridTraffic>(std::move(primary),
                                         std::move(secondary),
                                         config.hybrid_fraction);
}

double average_pattern_distance(const Topology& topo,
                                const TrafficPattern& pattern,
                                std::uint64_t seed, int samples) {
  Pcg32 rng(splitmix64(seed), 0x74726166 /* "traf" */);
  double total = 0.0;
  std::int64_t count = 0;
  if (pattern.deterministic()) {
    for (NodeId src = 0; src < topo.num_nodes(); ++src) {
      const NodeId dst = pattern.destination(src, rng);
      if (dst == kInvalidNode) continue;
      total += topo.min_distance(src, dst);
      ++count;
    }
  } else {
    for (int i = 0; i < samples; ++i) {
      const auto src = static_cast<NodeId>(
          rng.bounded(static_cast<std::uint32_t>(topo.num_nodes())));
      const NodeId dst = pattern.destination(src, rng);
      if (dst == kInvalidNode) continue;
      total += topo.min_distance(src, dst);
      ++count;
    }
  }
  if (count == 0) {
    throw std::runtime_error("traffic pattern generates no traffic");
  }
  return total / static_cast<double>(count);
}

}  // namespace flexnet
