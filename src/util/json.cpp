#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace flexnet {

// --- JsonWriter -------------------------------------------------------------

void JsonWriter::newline_indent() {
  if (indent_ == 0) return;
  *out_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) {
    for (int s = 0; s < indent_; ++s) *out_ << ' ';
  }
}

void JsonWriter::before_value() {
  if (key_pending_) {
    key_pending_ = false;
    return;
  }
  if (stack_.empty()) return;
  Level& level = stack_.back();
  if (!level.array) {
    throw std::logic_error("JsonWriter: object member written without key()");
  }
  if (!level.first) *out_ << ',';
  level.first = false;
  newline_indent();
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (stack_.empty() || stack_.back().array || key_pending_) {
    throw std::logic_error("JsonWriter: key() outside an object");
  }
  Level& level = stack_.back();
  if (!level.first) *out_ << ',';
  level.first = false;
  newline_indent();
  write_escaped(*out_, name);
  *out_ << (indent_ > 0 ? ": " : ":");
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  *out_ << '{';
  stack_.push_back(Level{false, true});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back().array || key_pending_) {
    throw std::logic_error("JsonWriter: mismatched end_object()");
  }
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) newline_indent();
  *out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  *out_ << '[';
  stack_.push_back(Level{true, true});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || !stack_.back().array) {
    throw std::logic_error("JsonWriter: mismatched end_array()");
  }
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) newline_indent();
  *out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  write_escaped(*out_, v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  *out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {  // JSON has no NaN/Inf; the manifest uses null
    *out_ << "null";
    return *this;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out_->write(buf, res.ptr - buf);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  *out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  *out_ << v;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  *out_ << "null";
  return *this;
}

void JsonWriter::write_escaped(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

// --- JsonValue parser -------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::String;
        v.string = parse_string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        JsonValue v;
        v.type = JsonValue::Type::Bool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        JsonValue v;
        v.type = JsonValue::Type::Bool;
        return v;
      }
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string name = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(name), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // UTF-8 encode the code point (manifests only use the BMP).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.type = JsonValue::Type::Number;
    const std::string_view token = text_.substr(start, pos_ - start);
    const auto res =
        std::from_chars(token.data(), token.data() + token.size(), v.number);
    if (res.ec != std::errc{} || res.ptr != token.data() + token.size()) {
      pos_ = start;
      fail("malformed number");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

const JsonValue* JsonValue::find(std::string_view name) const noexcept {
  if (type != Type::Object) return nullptr;
  for (const auto& [key, value] : object) {
    if (key == name) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view name) const {
  const JsonValue* v = find(name);
  if (v == nullptr) {
    throw std::runtime_error("JSON object has no member \"" +
                             std::string(name) + "\"");
  }
  return *v;
}

}  // namespace flexnet
