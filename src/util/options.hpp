// Minimal command-line option parser for examples and bench binaries.
//
// Supports `--name value`, `--name=value` and boolean `--flag` forms; every
// option declares a default so binaries are runnable with no arguments.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace flexnet {

class Options {
 public:
  /// Parses argv; returns std::nullopt and fills `error` on malformed input.
  static std::optional<Options> parse(int argc, const char* const* argv,
                                      std::string* error = nullptr);

  [[nodiscard]] bool has(std::string_view name) const;
  [[nodiscard]] std::string get(std::string_view name,
                                std::string def = {}) const;
  /// Numeric getters parse the FULL value: trailing garbage ("1e9x"), empty
  /// values and out-of-range magnitudes throw std::invalid_argument naming
  /// the option, instead of silently truncating (strtoll's behavior).
  [[nodiscard]] long long get_int(std::string_view name, long long def) const;
  [[nodiscard]] double get_double(std::string_view name, double def) const;
  [[nodiscard]] bool get_bool(std::string_view name, bool def) const;

  /// Positional (non --option) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positional_;
};

/// Reads a scale factor from the FLEXNET_BENCH_SCALE environment variable
/// (default 1.0); bench binaries multiply their warmup/measure windows by it
/// so CI can run quick smoke passes.
[[nodiscard]] double bench_scale();

}  // namespace flexnet
