// Minimal JSON support for machine-readable run artifacts.
//
//  * JsonWriter — streaming, indentation-aware writer. Numbers are emitted
//    with std::to_chars (shortest round-trip form), so identical values
//    always serialize to identical bytes — the property the telemetry
//    manifest's determinism guarantee rests on.
//  * JsonValue  — a small recursive-descent parser for reading manifests
//    back (tools/telemetry_dump, round-trip tests). Object member order is
//    preserved. Numbers are held as doubles; integer fidelity holds up to
//    2^53, far beyond any simulator counter.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace flexnet {

class JsonWriter {
 public:
  /// Streams to `out`, which must outlive the writer. `indent` spaces per
  /// nesting level; 0 writes compact single-line JSON.
  explicit JsonWriter(std::ostream& out, int indent = 2)
      : out_(&out), indent_(indent < 0 ? 0 : indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Member key inside an object; must be followed by a value or container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& null();

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& field(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  /// Appends a JSON string literal (quoted, escaped) to `out`.
  static void write_escaped(std::ostream& out, std::string_view s);

 private:
  struct Level {
    bool array = false;
    bool first = true;
  };

  void before_value();
  void newline_indent();

  std::ostream* out_;
  int indent_;
  std::vector<Level> stack_;
  bool key_pending_ = false;
};

struct JsonValue {
  enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Members in document order.
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Parses one JSON document (trailing whitespace allowed, nothing else).
  /// Throws std::runtime_error with an offset-bearing message on bad input.
  [[nodiscard]] static JsonValue parse(std::string_view text);

  [[nodiscard]] bool is_object() const noexcept { return type == Type::Object; }
  [[nodiscard]] bool is_array() const noexcept { return type == Type::Array; }
  [[nodiscard]] bool is_number() const noexcept { return type == Type::Number; }
  [[nodiscard]] bool is_string() const noexcept { return type == Type::String; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view name) const noexcept;
  /// find() that throws std::runtime_error when the member is missing.
  [[nodiscard]] const JsonValue& at(std::string_view name) const;

  /// number as int64 (truncating); 0 for non-numbers.
  [[nodiscard]] std::int64_t as_int() const noexcept {
    return static_cast<std::int64_t>(number);
  }
};

}  // namespace flexnet
