// Lightweight CSV and aligned-console-table writers for experiment output.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace flexnet {

/// Writes RFC-4180-ish CSV: fields containing commas, quotes or newlines are
/// quoted, embedded quotes doubled.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void header(const std::vector<std::string>& names);
  void row(const std::vector<std::string>& fields);

  [[nodiscard]] static std::string escape(std::string_view field);

 private:
  std::ostream* out_;
};

/// Buffers rows then prints them with aligned columns; used by the bench
/// harness to print paper-style tables.
class TableWriter {
 public:
  explicit TableWriter(std::string title = {}) : title_(std::move(title)) {}

  void header(std::vector<std::string> names);
  void row(std::vector<std::string> fields);
  void print(std::ostream& out) const;

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Formats a double with `digits` places, trimming to "-" for NaN.
  [[nodiscard]] static std::string num(double v, int digits = 4);
  [[nodiscard]] static std::string integer(long long v);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace flexnet
