// Minimal leveled logging to stderr. Default level is Warn so simulations are
// quiet unless something is wrong; examples raise it for narration.
#pragma once

#include <sstream>
#include <string_view>

namespace flexnet {

enum class LogLevel { Trace = 0, Debug, Info, Warn, Error, Off };

/// Process-wide log threshold.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

namespace detail {
void log_line(LogLevel level, std::string_view message);
}

/// Usage: FLEXNET_LOG(Info) << "delivered " << n << " messages";
#define FLEXNET_LOG(severity)                                         \
  if (::flexnet::LogLevel::severity < ::flexnet::log_level()) {       \
  } else                                                              \
    ::flexnet::detail::LogStream(::flexnet::LogLevel::severity)

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace flexnet
