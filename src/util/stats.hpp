// Streaming statistics helpers used throughout the metrics layer.
#pragma once

#include <cstdint>
#include <vector>

namespace flexnet {

class BinReader;
class BinWriter;

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
/// Numerically stable; O(1) memory regardless of sample count.
class RunningStat {
 public:
  void add(double x) noexcept;
  void merge(const RunningStat& other) noexcept;
  void reset() noexcept { *this = RunningStat{}; }

  /// Snapshot hooks; doubles round-trip as raw IEEE-754 bits, so a restored
  /// accumulator continues the exact Welford sequence.
  void save_state(BinWriter& out) const;
  void restore_state(BinReader& in);

  [[nodiscard]] std::int64_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0.0; }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bucket histogram over non-negative integers; values beyond the last
/// bucket are clamped into it. Used for deadlock set size distributions.
class Histogram {
 public:
  explicit Histogram(std::size_t num_buckets = 64) : buckets_(num_buckets, 0) {}

  void add(std::int64_t value) noexcept;
  void merge(const Histogram& other);

  [[nodiscard]] std::int64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t size() const noexcept { return buckets_.size(); }
  [[nodiscard]] std::int64_t bucket(std::size_t i) const { return buckets_.at(i); }
  /// Smallest value v such that at least `q` fraction of samples are <= v.
  [[nodiscard]] std::int64_t quantile(double q) const noexcept;

 private:
  std::vector<std::int64_t> buckets_;
  std::int64_t total_ = 0;
};

}  // namespace flexnet
