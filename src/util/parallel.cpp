#include "util/parallel.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <mutex>

namespace flexnet {

std::size_t worker_thread_count() noexcept {
  const auto fallback = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? std::size_t{1} : static_cast<std::size_t>(hw);
  };
  const char* env = std::getenv("FLEXNET_THREADS");
  if (env == nullptr || *env == '\0') return fallback();
  // Accept only a full, positive, in-range decimal integer; "0", negatives,
  // "abc", "4x", " 2", and overflowing values all fall back silently.
  // strtol would skip leading whitespace and signs, so require a digit first.
  if (*env < '0' || *env > '9') return fallback();
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(env, &end, 10);
  if (errno != 0 || *end != '\0' || v < 1) return fallback();
  return static_cast<std::size_t>(v);
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t threads = std::min(worker_thread_count(), count);
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        const std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();

  if (first_error) std::rethrow_exception(first_error);
}

namespace {
// Spin politely: burn a few iterations, then start yielding so an
// oversubscribed machine (CI runners, sanitizer builds) still makes
// progress. The hot case — all parties actively stepping — never yields.
inline void spin_pause(int& spins) {
  if (++spins >= 64) {
    std::this_thread::yield();
    spins = 0;
  }
}
}  // namespace

WorkerPool::WorkerPool(std::size_t parties)
    : parties_(parties == 0 ? 1 : parties) {
  threads_.reserve(parties_ > 0 ? parties_ - 1 : 0);
  for (std::size_t i = 1; i < parties_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkerPool::~WorkerPool() {
  stop_.store(true, std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_release);
  for (auto& th : threads_) th.join();
}

void WorkerPool::run(const std::function<void(std::size_t)>& fn) {
  if (parties_ == 1) {
    fn(0);
    return;
  }
  job_ = &fn;
  outstanding_.store(parties_ - 1, std::memory_order_relaxed);
  // Release-publish job_ and outstanding_ to workers spinning on the
  // generation counter.
  generation_.fetch_add(1, std::memory_order_release);
  try {
    fn(0);
  } catch (...) {
    if (!has_error_.exchange(true, std::memory_order_relaxed)) {
      first_error_ = std::current_exception();
    }
  }
  int spins = 0;
  while (outstanding_.load(std::memory_order_acquire) != 0) spin_pause(spins);
  job_ = nullptr;
  if (has_error_.load(std::memory_order_relaxed)) {
    const std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    has_error_.store(false, std::memory_order_relaxed);
    std::rethrow_exception(err);
  }
}

void WorkerPool::worker_loop(std::size_t index) {
  std::uint64_t seen = 0;
  for (;;) {
    int spins = 0;
    while (generation_.load(std::memory_order_acquire) == seen) {
      spin_pause(spins);
    }
    ++seen;
    if (stop_.load(std::memory_order_relaxed)) return;
    try {
      (*job_)(index);
    } catch (...) {
      if (!has_error_.exchange(true, std::memory_order_relaxed)) {
        first_error_ = std::current_exception();
      }
    }
    // Release our writes (simulation state mutated by the job) to the main
    // thread's acquire-load in run().
    outstanding_.fetch_sub(1, std::memory_order_release);
  }
}

}  // namespace flexnet
