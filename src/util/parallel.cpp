#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace flexnet {

std::size_t worker_thread_count() noexcept {
  const auto fallback = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? std::size_t{1} : static_cast<std::size_t>(hw);
  };
  const char* env = std::getenv("FLEXNET_THREADS");
  if (env == nullptr || *env == '\0') return fallback();
  // Accept only a full, positive, in-range decimal integer; "0", negatives,
  // "abc", "4x", " 2", and overflowing values all fall back silently.
  // strtol would skip leading whitespace and signs, so require a digit first.
  if (*env < '0' || *env > '9') return fallback();
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(env, &end, 10);
  if (errno != 0 || *end != '\0' || v < 1) return fallback();
  return static_cast<std::size_t>(v);
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t threads = std::min(worker_thread_count(), count);
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        const std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace flexnet
