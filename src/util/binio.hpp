// Little-endian binary serialization primitives for the snapshot subsystem.
//
// BinWriter appends fixed-width scalars to a growable byte buffer; BinReader
// decodes them with hard bounds checking — every read validates the remaining
// byte count and throws std::runtime_error on overrun, so a truncated or
// corrupted snapshot fails loudly instead of yielding garbage state.
// Encoding is little-endian regardless of host order, making snapshot files
// portable across machines.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace flexnet {

class BinWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i32(std::int32_t v) { append_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }
  /// Doubles are stored as their IEEE-754 bit pattern, so a round trip is
  /// bit-exact (required for deterministic RunningStat restoration).
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    append_le(bits);
  }
  /// Length-prefixed (u64) byte string.
  void str(std::string_view s) {
    u64(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  /// Raw bytes, no length prefix (caller frames them).
  void raw(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + size);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return bytes_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }

  /// Overwrites a previously written u64 at `offset` (section length
  /// back-patching).
  void patch_u64(std::size_t offset, std::uint64_t v);

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> bytes_;
};

class BinReader {
 public:
  /// Non-owning view; the buffer must outlive the reader.
  BinReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::uint8_t u8() { return take(1)[0]; }
  [[nodiscard]] std::uint32_t u32() { return read_le<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return read_le<std::uint64_t>(); }
  [[nodiscard]] std::int32_t i32() {
    return static_cast<std::int32_t>(read_le<std::uint32_t>());
  }
  [[nodiscard]] std::int64_t i64() {
    return static_cast<std::int64_t>(read_le<std::uint64_t>());
  }
  [[nodiscard]] double f64() {
    const std::uint64_t bits = read_le<std::uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  [[nodiscard]] std::string str();

  /// A sub-reader over the next `size` bytes; advances this reader past them.
  [[nodiscard]] BinReader sub(std::size_t size) {
    const std::uint8_t* p = take(size);
    return BinReader(p, size);
  }
  void skip(std::size_t size) { (void)take(size); }

  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
  [[nodiscard]] bool done() const noexcept { return pos_ == size_; }

 private:
  const std::uint8_t* take(std::size_t count);

  template <typename T>
  [[nodiscard]] T read_le() {
    const std::uint8_t* p = take(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(p[i]) << (8 * i);
    }
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace flexnet
