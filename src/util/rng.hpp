// Deterministic, seedable random number generation for simulations.
//
// PCG32 (O'Neill, pcg-random.org, minimal variant) is used as the workhorse
// generator: small state, excellent statistical quality, and fully
// reproducible across platforms (unlike std::default_random_engine).
// SplitMix64 is provided for seed expansion so that correlated user seeds
// (1, 2, 3, ...) still yield decorrelated streams.
#pragma once

#include <cstdint>
#include <limits>

namespace flexnet {

/// SplitMix64 mixer; used to derive well-distributed seeds from simple ones.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Minimal PCG32 generator (XSH-RR variant). Satisfies
/// std::uniform_random_bit_generator so it composes with <random> if needed.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  /// Complete generator state. `draws` counts values produced since seeding —
  /// a position marker within the stream, useful for asserting that two
  /// generators sit at the same point (snapshot round-trip checks).
  struct State {
    std::uint64_t state = 0;
    std::uint64_t inc = 0;
    std::uint64_t draws = 0;

    friend constexpr bool operator==(const State&, const State&) noexcept =
        default;
  };

  constexpr Pcg32() noexcept { seed(0x853c49e6748fea9bULL, 0xda3e39cb94b95bdbULL); }

  explicit constexpr Pcg32(std::uint64_t seed_value,
                           std::uint64_t stream = 0) noexcept {
    seed(seed_value, stream);
  }

  constexpr void seed(std::uint64_t seed_value, std::uint64_t stream = 0) noexcept {
    state_ = 0;
    inc_ = (splitmix64(stream) << 1u) | 1u;
    next();
    state_ += splitmix64(seed_value);
    next();
    draws_ = 0;  // seeding scrambles; position counting starts here
  }

  /// Snapshot of the full generator state; restoring it resumes the exact
  /// output sequence from the saved position.
  [[nodiscard]] constexpr State save() const noexcept {
    return State{state_, inc_, draws_};
  }
  constexpr void restore(const State& s) noexcept {
    state_ = s.state;
    inc_ = s.inc;
    draws_ = s.draws;
  }
  /// Values produced since the last seed()/restore-to-zero point.
  [[nodiscard]] constexpr std::uint64_t draws() const noexcept { return draws_; }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept { return next(); }

  /// Uniform integer in [0, bound). Uses Lemire's nearly-divisionless method
  /// with rejection to remove modulo bias.
  [[nodiscard]] constexpr std::uint32_t bounded(std::uint32_t bound) noexcept {
    if (bound <= 1) return 0;
    std::uint64_t m = static_cast<std::uint64_t>(next()) * bound;
    auto low = static_cast<std::uint32_t>(m);
    if (low < bound) {
      const std::uint32_t threshold = (0u - bound) % bound;
      while (low < threshold) {
        m = static_cast<std::uint64_t>(next()) * bound;
        low = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  [[nodiscard]] constexpr double uniform() noexcept {
    const std::uint64_t bits =
        (static_cast<std::uint64_t>(next()) << 32) | next();
    return static_cast<double>(bits >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] constexpr bool chance(double p) noexcept { return uniform() < p; }

 private:
  constexpr result_type next() noexcept {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    ++draws_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((0u - rot) & 31u));
  }

  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 0;
  std::uint64_t draws_ = 0;
};

}  // namespace flexnet
