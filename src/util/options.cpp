#include "util/options.hpp"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace flexnet {

namespace {
[[noreturn]] void bad_value(std::string_view name, const std::string& value,
                            const char* expected) {
  throw std::invalid_argument("option --" + std::string(name) + " expects " +
                              expected + ", got '" + value + "'");
}
}  // namespace

std::optional<Options> Options::parse(int argc, const char* const* argv,
                                      std::string* error) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      opts.positional_.emplace_back(arg);
      continue;
    }
    std::string_view body = arg.substr(2);
    if (body.empty()) {
      if (error) *error = "bare '--' is not a valid option";
      return std::nullopt;
    }
    const auto eq = body.find('=');
    if (eq != std::string_view::npos) {
      opts.values_[std::string(body.substr(0, eq))] =
          std::string(body.substr(eq + 1));
      continue;
    }
    // `--name value` if the next token is not itself an option; otherwise a
    // boolean flag.
    if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      opts.values_[std::string(body)] = argv[i + 1];
      ++i;
    } else {
      opts.values_[std::string(body)] = "true";
    }
  }
  return opts;
}

bool Options::has(std::string_view name) const {
  return values_.find(name) != values_.end();
}

std::string Options::get(std::string_view name, std::string def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? std::move(def) : it->second;
}

long long Options::get_int(std::string_view name, long long def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  long long value = 0;
  const char* first = v.c_str();
  if (*first == '+') ++first;  // from_chars rejects an explicit plus sign
  const auto [end, ec] = std::from_chars(first, v.c_str() + v.size(), value);
  if (ec == std::errc::result_out_of_range) {
    bad_value(name, v, "an integer in range (value overflows)");
  }
  if (ec != std::errc{} || end != v.c_str() + v.size() || first == end) {
    bad_value(name, v, "an integer");
  }
  return value;
}

double Options::get_double(std::string_view name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') bad_value(name, v, "a number");
  if (errno == ERANGE && std::isinf(value)) {
    bad_value(name, v, "a finite number (value overflows)");
  }
  return value;
}

bool Options::get_bool(std::string_view name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

double bench_scale() {
  if (const char* env = std::getenv("FLEXNET_BENCH_SCALE")) {
    const double v = std::strtod(env, nullptr);
    if (v > 0.0) return v;
  }
  return 1.0;
}

}  // namespace flexnet
