#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace flexnet {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_mutex;

[[nodiscard]] const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

namespace detail {
void log_line(LogLevel level, std::string_view message) {
  const std::scoped_lock lock(g_mutex);
  std::fprintf(stderr, "[%s] %.*s\n", level_name(level),
               static_cast<int>(message.size()), message.data());
}
}  // namespace detail

}  // namespace flexnet
