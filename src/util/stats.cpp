#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/binio.hpp"

namespace flexnet {

void RunningStat::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

void RunningStat::save_state(BinWriter& out) const {
  out.i64(n_);
  out.f64(mean_);
  out.f64(m2_);
  out.f64(min_);
  out.f64(max_);
}

void RunningStat::restore_state(BinReader& in) {
  n_ = in.i64();
  mean_ = in.f64();
  m2_ = in.f64();
  min_ = in.f64();
  max_ = in.f64();
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

void Histogram::add(std::int64_t value) noexcept {
  if (buckets_.empty()) return;
  const auto idx = static_cast<std::size_t>(
      std::clamp<std::int64_t>(value, 0,
                               static_cast<std::int64_t>(buckets_.size()) - 1));
  ++buckets_[idx];
  ++total_;
}

void Histogram::merge(const Histogram& other) {
  if (buckets_.size() < other.buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  total_ += other.total_;
}

std::int64_t Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0;
  const double target = q * static_cast<double>(total_);
  std::int64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) >= target) {
      return static_cast<std::int64_t>(i);
    }
  }
  return static_cast<std::int64_t>(buckets_.size()) - 1;
}

}  // namespace flexnet
