#include "util/binio.hpp"

#include <stdexcept>

namespace flexnet {

void BinWriter::patch_u64(std::size_t offset, std::uint64_t v) {
  if (offset + sizeof(v) > bytes_.size()) {
    throw std::logic_error("BinWriter::patch_u64 past end of buffer");
  }
  for (std::size_t i = 0; i < sizeof(v); ++i) {
    bytes_[offset + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

const std::uint8_t* BinReader::take(std::size_t count) {
  if (count > size_ - pos_) {
    throw std::runtime_error("binary decode overruns buffer: need " +
                             std::to_string(count) + " bytes, have " +
                             std::to_string(size_ - pos_));
  }
  const std::uint8_t* p = data_ + pos_;
  pos_ += count;
  return p;
}

std::string BinReader::str() {
  const std::uint64_t len = u64();
  if (len > remaining()) {
    throw std::runtime_error("binary decode: string length exceeds buffer");
  }
  const std::uint8_t* p = take(static_cast<std::size_t>(len));
  return std::string(reinterpret_cast<const char*>(p),
                     static_cast<std::size_t>(len));
}

}  // namespace flexnet
