#include "util/csv.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace flexnet {

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::header(const std::vector<std::string>& names) { row(names); }

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) *out_ << ',';
    *out_ << escape(fields[i]);
  }
  *out_ << '\n';
}

void TableWriter::header(std::vector<std::string> names) {
  header_ = std::move(names);
}

void TableWriter::row(std::vector<std::string> fields) {
  rows_.push_back(std::move(fields));
}

void TableWriter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& r : rows_) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (i >= widths.size()) widths.resize(i + 1, 0);
      widths[i] = std::max(widths[i], r[i].size());
    }
  }
  if (!title_.empty()) out << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (i != 0) out << "  ";
      out << r[i];
      if (i + 1 < r.size()) {
        for (std::size_t pad = r[i].size(); pad < widths[i]; ++pad) out << ' ';
      }
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (const std::size_t w : widths) total += w + 2;
    out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
}

std::string TableWriter::num(double v, int digits) {
  if (std::isnan(v)) return "-";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string TableWriter::integer(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

}  // namespace flexnet
