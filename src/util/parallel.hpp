// Small task-parallel helper used to run independent simulation points
// (load sweeps, config grids) across hardware threads.
//
// Simulations are deterministic per (config, seed), so running points in
// parallel never changes results — only wall-clock time. Thread count comes
// from FLEXNET_THREADS or std::thread::hardware_concurrency().
#pragma once

#include <cstddef>
#include <functional>

namespace flexnet {

/// Number of worker threads to use (>= 1).
[[nodiscard]] std::size_t worker_thread_count() noexcept;

/// Runs fn(i) for i in [0, count), distributing indices over worker threads.
/// Blocks until all invocations complete. Exceptions from workers are
/// rethrown (first one wins).
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

}  // namespace flexnet
