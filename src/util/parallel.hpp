// Task-parallel helpers: a one-shot parallel_for used to run independent
// simulation points (load sweeps, config grids) across hardware threads, and
// a persistent WorkerPool used by the sharded stepping engine, which needs
// microsecond-scale dispatch several times per simulated cycle.
//
// Simulations are deterministic per (config, seed), so running points in
// parallel never changes results — only wall-clock time. Thread count comes
// from FLEXNET_THREADS or std::thread::hardware_concurrency().
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

namespace flexnet {

/// Number of worker threads to use (>= 1).
[[nodiscard]] std::size_t worker_thread_count() noexcept;

/// Runs fn(i) for i in [0, count), distributing indices over worker threads.
/// Blocks until all invocations complete. Exceptions from workers are
/// rethrown (first one wins). Threads are spawned per call — fine for
/// second-scale work items, far too slow for per-cycle dispatch (use
/// WorkerPool for that).
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

/// A persistent pool of `parties - 1` spinning worker threads plus the
/// calling thread, dispatching the same job to every party. Built for the
/// sharded simulation core: Network::step() dispatches five sub-phase jobs
/// per cycle, so a dispatch must cost on the order of a microsecond, not the
/// ~50µs of spawning threads.
///
/// run(fn) invokes fn(i) for every party index i in [0, parties); the caller
/// participates as party 0, workers are parties 1..parties-1. run() returns
/// once every invocation finished (a full barrier), so jobs may freely read
/// state written by the previous job without synchronization. Exceptions
/// thrown by any party are captured and rethrown from run() (first wins).
///
/// Dispatch is a generation-counted spin barrier: workers spin (with
/// periodic yields) on an atomic generation counter, so an idle pool burns a
/// little CPU between cycles but a dispatch is two atomic transitions.
/// run() must only be called from one thread at a time (the simulation
/// loop's thread).
class WorkerPool {
 public:
  /// A pool of `parties` total executors (>= 1). parties == 1 degenerates to
  /// calling fn(0) inline with no threads at all.
  explicit WorkerPool(std::size_t parties);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }

  /// Runs fn(i) for i in [0, parties) across the pool; blocks until all
  /// parties finished. Rethrows the first exception any party threw.
  void run(const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop(std::size_t index);

  const std::size_t parties_;
  // The job for the current generation. Written before the release-store to
  // generation_, read by workers after their acquire-load observes the new
  // generation — that pair orders the accesses.
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::size_t> outstanding_{0};
  std::atomic<bool> stop_{false};
  std::exception_ptr first_error_;
  std::atomic<bool> has_error_{false};
  std::vector<std::thread> threads_;
};

}  // namespace flexnet
