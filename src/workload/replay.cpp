#include "workload/replay.hpp"

#include <stdexcept>

#include "util/binio.hpp"

namespace flexnet {

TraceReplayInjection::TraceReplayInjection(const Network& net, std::string path,
                                           std::uint64_t seed)
    : TraceReplayInjection(net, read_trace_file(path), path, seed) {}

TraceReplayInjection::TraceReplayInjection(const Network& net, TraceData data,
                                           std::string path,
                                           std::uint64_t seed)
    : InjectionProcess(net, data.header.traffic, seed),
      path_(std::move(path)),
      data_(std::move(data)) {
  if (data_.header.nodes != net.topology().num_nodes()) {
    throw std::runtime_error(
        path_ + ": trace was recorded on " +
        std::to_string(data_.header.nodes) + " nodes, network has " +
        std::to_string(net.topology().num_nodes()));
  }
  // Adopt the capture run's normalization constants verbatim: the Monte
  // Carlo average distance depends on the sampling seed, and byte-identical
  // replay manifests require the original values, not a re-estimate.
  avg_distance_ = data_.header.avg_distance;
  capacity_ = data_.header.capacity;
  offered_ = data_.header.offered;
  probability_ = 0.0;  // arrivals come from the records, not coin flips
}

void TraceReplayInjection::tick(Network& net) {
  const Cycle now = net.now();
  if (cursor_ < data_.records.size() &&
      data_.records[cursor_].cycle < now) {
    // Can only happen on a corrupted resume: the cursor must never trail
    // the network clock.
    throw std::logic_error(path_ + ": trace cursor behind network cycle");
  }
  while (cursor_ < data_.records.size() &&
         data_.records[cursor_].cycle == now) {
    const TraceRecord& r = data_.records[cursor_++];
    emit(net, r.src, r.dst, r.length, r.cls);
  }
}

void TraceReplayInjection::save_state(BinWriter& out) const {
  InjectionProcess::save_state(out);
  out.u64(cursor_);
  out.u64(data_.content_hash());
}

void TraceReplayInjection::restore_state(BinReader& in,
                                         std::uint32_t version) {
  InjectionProcess::restore_state(in, version);
  const std::uint64_t cursor = in.u64();
  if (cursor > data_.records.size()) {
    throw std::runtime_error(path_ + ": snapshot trace cursor out of range");
  }
  cursor_ = static_cast<std::size_t>(cursor);
  const std::uint64_t hash = in.u64();
  if (hash != data_.content_hash()) {
    throw std::runtime_error(
        path_ + ": trace content differs from the snapshot's workload");
  }
}

}  // namespace flexnet
