// Trace-driven replay: injects the exact (cycle, src, dst, len, class)
// stream recorded in a flexnet-trace-v1 file. The trace header's traffic
// configuration and normalization constants are adopted verbatim, so a
// replay of a captured run — under the same sim flags and seed — reproduces
// its manifests and metrics byte-for-byte (only the config's workload block
// differs). Replay bypasses the source-queue limit: the recorded stream is
// the post-admission stream, so every record is enqueued unconditionally.
#pragma once

#include <string>

#include "traffic/injection.hpp"
#include "workload/trace_file.hpp"

namespace flexnet {

class TraceReplayInjection final : public InjectionProcess {
 public:
  /// Parses `path` eagerly (fail-loud before any cycle runs) and validates
  /// the header's node count against the network.
  TraceReplayInjection(const Network& net, std::string path,
                       std::uint64_t seed);

  void tick(Network& net) override;
  [[nodiscard]] WorkloadKind kind() const noexcept override {
    return WorkloadKind::Trace;
  }

  [[nodiscard]] const TraceHeader& header() const noexcept {
    return data_.header;
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  /// Records injected so far.
  [[nodiscard]] std::size_t cursor() const noexcept { return cursor_; }
  [[nodiscard]] std::size_t num_records() const noexcept {
    return data_.records.size();
  }
  /// True once every record has been injected (the run may still be
  /// draining).
  [[nodiscard]] bool exhausted() const noexcept {
    return cursor_ == data_.records.size();
  }

  /// Base state plus the cursor and the trace content hash; restore
  /// validates the hash so a resume cannot silently continue a different
  /// trace under the same path.
  void save_state(BinWriter& out) const override;
  void restore_state(BinReader& in,
                     std::uint32_t version = kStateFormatVersion) override;

 private:
  TraceReplayInjection(const Network& net, TraceData data, std::string path,
                       std::uint64_t seed);

  std::string path_;
  TraceData data_;
  std::size_t cursor_ = 0;
};

}  // namespace flexnet
