// Workload configuration and the injection factory: the single place that
// maps a `--workload` spec to an arrival process. A WorkloadConfig selects
// Bernoulli (default), trace replay, or a pace profile, and optionally
// attaches a `--capture-trace` output so any run becomes a replayable
// workload. Simulation and snapshot restore both build their injection
// through make_injection(), so live runs and resumes construct identical
// processes.
#pragma once

#include <memory>
#include <string>

#include "traffic/injection.hpp"
#include "workload/pace.hpp"

namespace flexnet {

struct WorkloadConfig {
  WorkloadKind kind = WorkloadKind::Bernoulli;
  /// Trace kind: the flexnet-trace-v1 file to replay.
  std::string trace_path;
  /// Paced kind: the original spec string (recorded in manifests/snapshots)
  /// and the parsed profile.
  std::string pace_spec;
  PaceProfile pace;
  /// When non-empty, the run records its accepted generation stream here
  /// (any kind; --capture-trace).
  std::string capture_path;

  [[nodiscard]] bool enabled() const noexcept {
    return kind != WorkloadKind::Bernoulli || !capture_path.empty();
  }

  /// Per-point file names for sweeps: only the capture output gets the
  /// ".p<i>" suffix (same convention as TraceConfig); trace inputs and pace
  /// specs are shared read-only across points.
  [[nodiscard]] WorkloadConfig with_point_suffix(std::size_t point) const;
};

/// Parses a `--workload` value: "bernoulli", "trace:<path>", or
/// "pace:<spec>" (see parse_pace_spec for specs). Throws
/// std::invalid_argument on anything else. The returned config carries no
/// capture path.
[[nodiscard]] WorkloadConfig parse_workload_spec(const std::string& spec);

/// Builds the configured arrival process. For trace workloads the `traffic`
/// argument is ignored — the replay adopts the trace header's traffic
/// configuration (callers should mirror it into their own config via
/// TraceReplayInjection::header()).
[[nodiscard]] std::unique_ptr<InjectionProcess> make_injection(
    const Network& net, const TrafficConfig& traffic,
    const WorkloadConfig& workload, std::uint64_t seed);

}  // namespace flexnet
