#include "workload/trace_file.hpp"

#include <charconv>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace flexnet {

namespace {

[[noreturn]] void parse_error(const std::string& origin, std::size_t line,
                              const std::string& what) {
  throw std::runtime_error(origin + ":" + std::to_string(line) + ": " + what);
}

/// Splits a line into whitespace-separated tokens.
std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
    std::size_t end = pos;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t') ++end;
    if (end > pos) out.push_back(line.substr(pos, end - pos));
    pos = end;
  }
  return out;
}

template <typename T>
T parse_int(std::string_view tok, const std::string& origin, std::size_t line) {
  T value{};
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), value);
  if (ec != std::errc{} || ptr != tok.data() + tok.size()) {
    parse_error(origin, line, "malformed integer: " + std::string(tok));
  }
  return value;
}

double parse_double(std::string_view tok, const std::string& origin,
                    std::size_t line) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), value);
  if (ec != std::errc{} || ptr != tok.data() + tok.size()) {
    parse_error(origin, line, "malformed number: " + std::string(tok));
  }
  return value;
}

/// Shortest round-trip decimal for a double (same policy as util/json).
std::string format_double(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) throw std::logic_error("double format failed");
  return std::string(buf, ptr);
}

void hash_mix(std::uint64_t& h, std::uint64_t v) noexcept {
  // FNV-1a over the value's 8 bytes.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ULL;
  }
}

std::uint64_t double_bits(double v) noexcept {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

std::uint64_t TraceData::content_hash() const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  hash_mix(h, static_cast<std::uint64_t>(header.nodes));
  hash_mix(h, static_cast<std::uint64_t>(header.traffic.pattern));
  hash_mix(h, double_bits(header.traffic.load));
  hash_mix(h, static_cast<std::uint64_t>(header.traffic.hotspot_nodes));
  hash_mix(h, double_bits(header.traffic.hotspot_fraction));
  hash_mix(h, double_bits(header.traffic.hybrid_fraction));
  hash_mix(h, static_cast<std::uint64_t>(header.traffic.hybrid_with));
  hash_mix(h, double_bits(header.avg_distance));
  hash_mix(h, double_bits(header.capacity));
  hash_mix(h, double_bits(header.offered));
  for (const TraceRecord& r : records) {
    hash_mix(h, static_cast<std::uint64_t>(r.cycle));
    hash_mix(h, static_cast<std::uint64_t>(r.src));
    hash_mix(h, static_cast<std::uint64_t>(r.dst));
    hash_mix(h, static_cast<std::uint64_t>(r.length));
    hash_mix(h, static_cast<std::uint64_t>(r.cls));
  }
  return h;
}

TraceData read_trace(std::istream& in, const std::string& origin) {
  TraceData data;
  std::string line;
  std::size_t lineno = 0;

  if (!std::getline(in, line)) parse_error(origin, 1, "empty trace");
  ++lineno;
  if (line != kTraceMagic) {
    parse_error(origin, lineno,
                "bad magic (expected \"" + std::string(kTraceMagic) + "\")");
  }

  bool have_nodes = false, have_pattern = false, have_load = false;
  bool have_avg = false, have_cap = false, have_off = false;
  bool saw_end = false;
  Cycle last_cycle = -1;

  while (std::getline(in, line)) {
    ++lineno;
    const auto toks = tokenize(line);
    if (toks.empty()) continue;  // blank lines are allowed
    const std::string_view kw = toks[0];
    if (kw == "#") continue;  // comment line

    if (saw_end) parse_error(origin, lineno, "content after end trailer");

    if (kw == "msg") {
      if (toks.size() != 6) {
        parse_error(origin, lineno, "msg needs: cycle src dst len class");
      }
      if (!(have_nodes && have_pattern && have_load && have_avg && have_cap &&
            have_off)) {
        parse_error(origin, lineno, "msg before complete header");
      }
      TraceRecord r;
      r.cycle = parse_int<Cycle>(toks[1], origin, lineno);
      r.src = parse_int<NodeId>(toks[2], origin, lineno);
      r.dst = parse_int<NodeId>(toks[3], origin, lineno);
      r.length = parse_int<std::int32_t>(toks[4], origin, lineno);
      try {
        r.cls = parse_message_class(toks[5]);
      } catch (const std::invalid_argument& e) {
        parse_error(origin, lineno, e.what());
      }
      if (r.cycle < 0) parse_error(origin, lineno, "negative cycle");
      if (r.cycle < last_cycle) {
        parse_error(origin, lineno, "cycles must be nondecreasing");
      }
      if (r.src < 0 || r.src >= data.header.nodes || r.dst < 0 ||
          r.dst >= data.header.nodes) {
        parse_error(origin, lineno, "node id out of range");
      }
      if (r.src == r.dst) parse_error(origin, lineno, "src == dst");
      if (r.length < 1) parse_error(origin, lineno, "length must be >= 1");
      last_cycle = r.cycle;
      data.records.push_back(r);
      continue;
    }
    if (kw == "end") {
      if (toks.size() != 2) parse_error(origin, lineno, "end needs a count");
      const auto count = parse_int<std::uint64_t>(toks[1], origin, lineno);
      if (count != data.records.size()) {
        parse_error(origin, lineno,
                    "trailer count " + std::to_string(count) + " != " +
                        std::to_string(data.records.size()) + " records");
      }
      saw_end = true;
      continue;
    }

    // Header directives: keyword value.
    if (toks.size() != 2) {
      parse_error(origin, lineno,
                  "directive needs one value: " + std::string(kw));
    }
    const std::string_view val = toks[1];
    if (kw == "nodes") {
      data.header.nodes = parse_int<NodeId>(val, origin, lineno);
      if (data.header.nodes < 2) parse_error(origin, lineno, "nodes must be >= 2");
      have_nodes = true;
    } else if (kw == "pattern") {
      try {
        data.header.traffic.pattern = parse_traffic_kind(val);
      } catch (const std::invalid_argument& e) {
        parse_error(origin, lineno, e.what());
      }
      have_pattern = true;
    } else if (kw == "load") {
      data.header.traffic.load = parse_double(val, origin, lineno);
      have_load = true;
    } else if (kw == "hotspots") {
      data.header.traffic.hotspot_nodes =
          parse_int<int>(val, origin, lineno);
    } else if (kw == "hotspot_fraction") {
      data.header.traffic.hotspot_fraction = parse_double(val, origin, lineno);
    } else if (kw == "hybrid_fraction") {
      data.header.traffic.hybrid_fraction = parse_double(val, origin, lineno);
    } else if (kw == "hybrid_with") {
      try {
        data.header.traffic.hybrid_with = parse_traffic_kind(val);
      } catch (const std::invalid_argument& e) {
        parse_error(origin, lineno, e.what());
      }
    } else if (kw == "avg_distance") {
      data.header.avg_distance = parse_double(val, origin, lineno);
      have_avg = true;
    } else if (kw == "capacity") {
      data.header.capacity = parse_double(val, origin, lineno);
      have_cap = true;
    } else if (kw == "offered") {
      data.header.offered = parse_double(val, origin, lineno);
      have_off = true;
    } else {
      parse_error(origin, lineno, "unknown directive: " + std::string(kw));
    }
  }

  if (!saw_end) {
    parse_error(origin, lineno,
                "missing end trailer (truncated trace?)");
  }
  if (!(have_nodes && have_pattern && have_load && have_avg && have_cap &&
        have_off)) {
    parse_error(origin, lineno, "incomplete header");
  }
  return data;
}

TraceData read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return read_trace(in, path);
}

namespace {

void write_trace_header(std::ostream& out, const TraceHeader& h) {
  out << kTraceMagic << '\n';
  out << "nodes " << h.nodes << '\n';
  out << "pattern " << to_string(h.traffic.pattern) << '\n';
  out << "load " << format_double(h.traffic.load) << '\n';
  out << "hotspots " << h.traffic.hotspot_nodes << '\n';
  out << "hotspot_fraction " << format_double(h.traffic.hotspot_fraction)
      << '\n';
  out << "hybrid_fraction " << format_double(h.traffic.hybrid_fraction) << '\n';
  out << "hybrid_with " << to_string(h.traffic.hybrid_with) << '\n';
  out << "avg_distance " << format_double(h.avg_distance) << '\n';
  out << "capacity " << format_double(h.capacity) << '\n';
  out << "offered " << format_double(h.offered) << '\n';
}

void write_trace_record(std::ostream& out, Cycle cycle, NodeId src, NodeId dst,
                        std::int32_t length, MessageClass cls) {
  out << "msg " << cycle << ' ' << src << ' ' << dst << ' ' << length << ' '
      << to_string(cls) << '\n';
}

}  // namespace

void write_trace(std::ostream& out, const TraceData& data) {
  write_trace_header(out, data.header);
  for (const TraceRecord& r : data.records) {
    write_trace_record(out, r.cycle, r.src, r.dst, r.length, r.cls);
  }
  out << "end " << data.records.size() << '\n';
}

TraceCaptureWriter::TraceCaptureWriter(std::ostream& out,
                                       const TraceHeader& header)
    : out_(&out) {
  write_trace_header(*out_, header);
}

void TraceCaptureWriter::record(Cycle cycle, NodeId src, NodeId dst,
                                std::int32_t length, MessageClass cls) {
  if (finished_) throw std::logic_error("trace capture already finished");
  if (cycle < last_cycle_) {
    throw std::logic_error("trace capture cycles must be nondecreasing");
  }
  last_cycle_ = cycle;
  write_trace_record(*out_, cycle, src, dst, length, cls);
  ++count_;
}

void TraceCaptureWriter::finish() {
  if (finished_) throw std::logic_error("trace capture already finished");
  finished_ = true;
  *out_ << "end " << count_ << '\n';
  out_->flush();
  if (!*out_) throw std::runtime_error("trace capture write failed");
}

}  // namespace flexnet
