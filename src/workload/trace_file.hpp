// flexnet-trace-v1: the recorded-workload interchange format. A trace is the
// exact stream of accepted message generations from a run — one
// `msg <cycle> <src> <dst> <len> <class>` line per message, cycles
// nondecreasing — preceded by a header that captures the traffic
// configuration and its derived normalization constants (average distance,
// capacity, offered rate) so a replay reproduces the original run's
// manifests byte-for-byte, and terminated by an `end <count>` trailer so
// truncation fails loudly. Parsing is strict: unknown directives, malformed
// numbers, out-of-range ids, or a missing/miscounted trailer all throw with
// an origin:line position.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/message_class.hpp"
#include "sim/types.hpp"
#include "traffic/injection.hpp"
#include "traffic/traffic.hpp"

namespace flexnet {

inline constexpr std::string_view kTraceMagic = "flexnet-trace-v1";

/// One recorded message generation.
struct TraceRecord {
  Cycle cycle = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::int32_t length = 0;
  MessageClass cls = MessageClass::Bulk;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// The capture run's traffic configuration and normalization constants.
/// Replay adopts these verbatim (instead of recomputing the Monte Carlo
/// average distance under its own seed) so result rows and manifests match
/// the original run exactly.
struct TraceHeader {
  NodeId nodes = 0;
  TrafficConfig traffic;
  double avg_distance = 0.0;
  double capacity = 0.0;
  double offered = 0.0;
};

struct TraceData {
  TraceHeader header;
  std::vector<TraceRecord> records;

  /// FNV-1a over the header fields and every record; stored in snapshots so
  /// a mid-trace resume validates it is replaying the same workload.
  [[nodiscard]] std::uint64_t content_hash() const noexcept;
};

/// Parses a complete trace from `in`; `origin` labels error positions
/// (typically the file path). Throws std::runtime_error on any malformation.
[[nodiscard]] TraceData read_trace(std::istream& in, const std::string& origin);
/// Opens and parses `path`; throws std::runtime_error if unreadable.
[[nodiscard]] TraceData read_trace_file(const std::string& path);

/// Writes a complete trace (header, records, trailer) to `out`.
void write_trace(std::ostream& out, const TraceData& data);

/// Streaming capture: writes the header on construction, one `msg` line per
/// record(), and the `end <count>` trailer on finish(). Attach to an
/// InjectionProcess via set_capture() to record any live run.
class TraceCaptureWriter final : public TraceCaptureSink {
 public:
  /// `out` must outlive the writer; the header is written immediately.
  TraceCaptureWriter(std::ostream& out, const TraceHeader& header);

  void record(Cycle cycle, NodeId src, NodeId dst, std::int32_t length,
              MessageClass cls) override;

  /// Writes the trailer. Must be called exactly once; record() afterwards
  /// throws.
  void finish();

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

 private:
  std::ostream* out_;
  std::uint64_t count_ = 0;
  Cycle last_cycle_ = -1;
  bool finished_ = false;
};

}  // namespace flexnet
