// Phased pace profiles: piecewise-linear rate schedules that modulate the
// Bernoulli injection probability cycle by cycle — ramps, bursts, ON/OFF
// phases — modeled on garnet-standalone's PaceTrafficGenerator/PaceProfile.
// A profile is a list of phases, each lasting `cycles` cycles and sweeping
// the rate multiplier linearly from rate0 to rate1 while tagging generated
// messages with a MessageClass; repeating profiles wrap, non-repeating ones
// clamp at the final rate. The built-in generators (burst/onoff/ramp) are
// mean-normalized to 1.0 so a paced run offers the same average load as the
// smooth Bernoulli run it is compared against. Profiles are pure functions
// of the cycle: the only dynamic injection state remains the RNG position,
// so snapshots stay small and resumes stay bit-exact.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/message_class.hpp"
#include "sim/types.hpp"
#include "traffic/injection.hpp"

namespace flexnet {

inline constexpr std::string_view kPaceMagic = "flexnet-pace-v1";

struct PacePhase {
  Cycle cycles = 0;      ///< Phase duration; must be >= 1.
  double rate0 = 1.0;    ///< Multiplier at the phase's first cycle.
  double rate1 = 1.0;    ///< Multiplier approached at the phase's end.
  MessageClass cls = MessageClass::Bulk;  ///< Class tag for messages generated
                                          ///< during this phase.

  friend bool operator==(const PacePhase&, const PacePhase&) = default;
};

class PaceProfile {
 public:
  /// Empty profile: flat multiplier 1.0, class Bulk.
  PaceProfile() = default;
  /// Validates every phase (cycles >= 1, rates >= 0) and precomputes the
  /// period; throws std::invalid_argument on a bad phase list.
  PaceProfile(std::vector<PacePhase> phases, bool repeat);

  /// Rate multiplier at `cycle`; also reports the phase's message class via
  /// `cls` when non-null. Pure function of the cycle.
  [[nodiscard]] double multiplier_at(Cycle cycle,
                                     MessageClass* cls = nullptr) const;

  /// Largest multiplier any cycle can see (phase endpoints suffice: the
  /// interpolation is linear).
  [[nodiscard]] double max_multiplier() const noexcept;
  /// Cycle-averaged multiplier over one period (repeat) or the phase list
  /// (non-repeat; the trailing clamp is excluded).
  [[nodiscard]] double mean_multiplier() const noexcept;

  [[nodiscard]] const std::vector<PacePhase>& phases() const noexcept {
    return phases_;
  }
  [[nodiscard]] bool repeat() const noexcept { return repeat_; }
  [[nodiscard]] bool empty() const noexcept { return phases_.empty(); }

  /// FNV-1a over phases + repeat flag; serialized in snapshots so a resume
  /// validates it is continuing under the same schedule.
  [[nodiscard]] std::uint64_t content_hash() const noexcept;

  friend bool operator==(const PaceProfile&, const PaceProfile&) = default;

 private:
  std::vector<PacePhase> phases_;
  bool repeat_ = true;
  Cycle period_ = 0;
};

/// Builds a profile from a `--workload pace:<spec>` spec:
///   burst(period,duty,peak)  duty*period ON cycles at rate peak (class
///                            burst), the rest OFF at the mean-preserving
///                            baseline (class bulk); requires 0 < duty < 1
///                            and 1 <= peak <= 1/duty.
///   onoff(period,duty)       burst with peak = 1/duty (OFF rate exactly 0).
///   ramp(period)             sawtooth 0 -> 2 (mean 1.0).
///   file:<path>              a flexnet-pace-v1 file (see load_pace_file).
/// Throws std::invalid_argument on an unknown or malformed spec.
[[nodiscard]] PaceProfile parse_pace_spec(const std::string& spec);

/// flexnet-pace-v1 text format: magic line, optional `repeat on|off`
/// directive (default on), then `phase <cycles> <rate0> <rate1> <class>`
/// lines. Strict origin:line errors, like the trace parser.
[[nodiscard]] PaceProfile read_pace(std::istream& in,
                                    const std::string& origin);
[[nodiscard]] PaceProfile load_pace_file(const std::string& path);
void write_pace(std::ostream& out, const PaceProfile& profile);

/// Bernoulli injection modulated by a pace profile. Construction validates
/// that probability * max_multiplier stays <= 1 (a burst may not demand more
/// than one message per node per cycle). Draw structure matches the base
/// process — one chance() per node per cycle — so per-cycle determinism and
/// snapshot semantics are unchanged.
class PacedInjection final : public InjectionProcess {
 public:
  PacedInjection(const Network& net, const TrafficConfig& traffic,
                 std::uint64_t seed, PaceProfile profile);

  void tick(Network& net) override;
  [[nodiscard]] WorkloadKind kind() const noexcept override {
    return WorkloadKind::Paced;
  }
  [[nodiscard]] const PaceProfile& profile() const noexcept { return profile_; }

  /// Base state plus the profile hash (validated on restore: resuming under
  /// a different schedule would silently diverge).
  void save_state(BinWriter& out) const override;
  void restore_state(BinReader& in,
                     std::uint32_t version = kStateFormatVersion) override;

 private:
  PaceProfile profile_;
};

}  // namespace flexnet
