#include "workload/pace.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/binio.hpp"

namespace flexnet {

namespace {

[[noreturn]] void parse_error(const std::string& origin, std::size_t line,
                              const std::string& what) {
  throw std::runtime_error(origin + ":" + std::to_string(line) + ": " + what);
}

void hash_mix(std::uint64_t& h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ULL;
  }
}

std::uint64_t double_bits(double v) noexcept {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

std::string format_double(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) throw std::logic_error("double format failed");
  return std::string(buf, ptr);
}

}  // namespace

PaceProfile::PaceProfile(std::vector<PacePhase> phases, bool repeat)
    : phases_(std::move(phases)), repeat_(repeat) {
  if (phases_.empty()) {
    throw std::invalid_argument("pace profile needs at least one phase");
  }
  for (const PacePhase& p : phases_) {
    if (p.cycles < 1) {
      throw std::invalid_argument("pace phase duration must be >= 1 cycle");
    }
    if (p.rate0 < 0.0 || p.rate1 < 0.0 || !std::isfinite(p.rate0) ||
        !std::isfinite(p.rate1)) {
      throw std::invalid_argument("pace phase rates must be finite and >= 0");
    }
    period_ += p.cycles;
  }
}

double PaceProfile::multiplier_at(Cycle cycle, MessageClass* cls) const {
  if (phases_.empty()) {
    if (cls != nullptr) *cls = MessageClass::Bulk;
    return 1.0;
  }
  Cycle t = cycle;
  if (repeat_) {
    t = cycle % period_;
  } else if (t >= period_) {
    // Clamp: hold the last phase's terminal rate and class forever.
    const PacePhase& last = phases_.back();
    if (cls != nullptr) *cls = last.cls;
    return last.rate1;
  }
  for (const PacePhase& p : phases_) {
    if (t < p.cycles) {
      if (cls != nullptr) *cls = p.cls;
      return p.rate0 + (p.rate1 - p.rate0) * (static_cast<double>(t) /
                                              static_cast<double>(p.cycles));
    }
    t -= p.cycles;
  }
  // Unreachable: t < period_ == sum of phase durations.
  if (cls != nullptr) *cls = phases_.back().cls;
  return phases_.back().rate1;
}

double PaceProfile::max_multiplier() const noexcept {
  double m = phases_.empty() ? 1.0 : 0.0;
  for (const PacePhase& p : phases_) {
    m = std::max(m, std::max(p.rate0, p.rate1));
  }
  return m;
}

double PaceProfile::mean_multiplier() const noexcept {
  if (phases_.empty()) return 1.0;
  double area = 0.0;
  for (const PacePhase& p : phases_) {
    area += static_cast<double>(p.cycles) * (p.rate0 + p.rate1) / 2.0;
  }
  return area / static_cast<double>(period_);
}

std::uint64_t PaceProfile::content_hash() const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  hash_mix(h, repeat_ ? 1 : 0);
  for (const PacePhase& p : phases_) {
    hash_mix(h, static_cast<std::uint64_t>(p.cycles));
    hash_mix(h, double_bits(p.rate0));
    hash_mix(h, double_bits(p.rate1));
    hash_mix(h, static_cast<std::uint64_t>(p.cls));
  }
  return h;
}

namespace {

/// Parses "name(a,b,...)" argument lists for the built-in generators.
std::vector<double> parse_args(const std::string& spec, std::size_t open,
                               std::size_t expected) {
  if (spec.back() != ')') {
    throw std::invalid_argument("malformed pace spec: " + spec);
  }
  std::vector<double> args;
  std::size_t pos = open + 1;
  const std::size_t close = spec.size() - 1;
  while (pos < close) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos || comma > close) comma = close;
    const std::string_view tok(spec.data() + pos, comma - pos);
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), value);
    if (ec != std::errc{} || ptr != tok.data() + tok.size()) {
      throw std::invalid_argument("malformed pace argument: " +
                                  std::string(tok));
    }
    args.push_back(value);
    pos = comma + 1;
  }
  if (args.size() != expected) {
    throw std::invalid_argument("pace spec expects " +
                                std::to_string(expected) + " arguments: " +
                                spec);
  }
  return args;
}

Cycle checked_period(double period) {
  if (!(period >= 2.0) || period != std::floor(period) || period > 1e12) {
    throw std::invalid_argument("pace period must be an integer >= 2");
  }
  return static_cast<Cycle>(period);
}

PaceProfile make_burst(Cycle period, double duty, double peak) {
  if (!(duty > 0.0 && duty < 1.0)) {
    throw std::invalid_argument("burst duty must be in (0, 1)");
  }
  if (!(peak >= 1.0) || peak * duty > 1.0) {
    throw std::invalid_argument("burst peak must satisfy 1 <= peak <= 1/duty");
  }
  const Cycle on = std::max<Cycle>(
      1, static_cast<Cycle>(std::llround(duty * static_cast<double>(period))));
  const Cycle off = period - on;
  if (off < 1) {
    throw std::invalid_argument("burst duty leaves no OFF cycles");
  }
  // Mean-preserving baseline: on*peak + off*base == period  (average 1.0),
  // using the realized integer ON duration rather than the requested duty.
  const double base = (static_cast<double>(period) -
                       static_cast<double>(on) * peak) /
                      static_cast<double>(off);
  std::vector<PacePhase> phases{
      PacePhase{on, peak, peak, MessageClass::Burst},
      PacePhase{off, base, base, MessageClass::Bulk},
  };
  return PaceProfile(std::move(phases), /*repeat=*/true);
}

}  // namespace

PaceProfile parse_pace_spec(const std::string& spec) {
  if (spec.rfind("file:", 0) == 0) {
    return load_pace_file(spec.substr(5));
  }
  const std::size_t open = spec.find('(');
  if (open == std::string::npos) {
    throw std::invalid_argument("unknown pace spec: " + spec);
  }
  const std::string name = spec.substr(0, open);
  if (name == "burst") {
    const auto args = parse_args(spec, open, 3);
    return make_burst(checked_period(args[0]), args[1], args[2]);
  }
  if (name == "onoff") {
    const auto args = parse_args(spec, open, 2);
    if (!(args[1] > 0.0 && args[1] < 1.0)) {
      throw std::invalid_argument("onoff duty must be in (0, 1)");
    }
    return make_burst(checked_period(args[0]), args[1], 1.0 / args[1]);
  }
  if (name == "ramp") {
    const auto args = parse_args(spec, open, 1);
    std::vector<PacePhase> phases{
        PacePhase{checked_period(args[0]), 0.0, 2.0, MessageClass::Bulk}};
    return PaceProfile(std::move(phases), /*repeat=*/true);
  }
  throw std::invalid_argument("unknown pace generator: " + name);
}

PaceProfile read_pace(std::istream& in, const std::string& origin) {
  std::string line;
  std::size_t lineno = 0;
  if (!std::getline(in, line)) parse_error(origin, 1, "empty pace file");
  ++lineno;
  if (line != kPaceMagic) {
    parse_error(origin, lineno,
                "bad magic (expected \"" + std::string(kPaceMagic) + "\")");
  }
  bool repeat = true;
  std::vector<PacePhase> phases;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kw;
    ls >> kw;
    if (kw == "repeat") {
      std::string val;
      ls >> val;
      if (val == "on") {
        repeat = true;
      } else if (val == "off") {
        repeat = false;
      } else {
        parse_error(origin, lineno, "repeat needs on|off");
      }
    } else if (kw == "phase") {
      PacePhase p;
      std::string cls;
      if (!(ls >> p.cycles >> p.rate0 >> p.rate1 >> cls)) {
        parse_error(origin, lineno, "phase needs: cycles rate0 rate1 class");
      }
      try {
        p.cls = parse_message_class(cls);
      } catch (const std::invalid_argument& e) {
        parse_error(origin, lineno, e.what());
      }
      phases.push_back(p);
    } else {
      parse_error(origin, lineno, "unknown directive: " + kw);
    }
    std::string extra;
    if (ls >> extra) parse_error(origin, lineno, "trailing tokens: " + extra);
  }
  try {
    return PaceProfile(std::move(phases), repeat);
  } catch (const std::invalid_argument& e) {
    parse_error(origin, lineno, e.what());
  }
}

PaceProfile load_pace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open pace file: " + path);
  return read_pace(in, path);
}

void write_pace(std::ostream& out, const PaceProfile& profile) {
  out << kPaceMagic << '\n';
  out << "repeat " << (profile.repeat() ? "on" : "off") << '\n';
  for (const PacePhase& p : profile.phases()) {
    out << "phase " << p.cycles << ' ' << format_double(p.rate0) << ' '
        << format_double(p.rate1) << ' ' << to_string(p.cls) << '\n';
  }
}

PacedInjection::PacedInjection(const Network& net, const TrafficConfig& traffic,
                               std::uint64_t seed, PaceProfile profile)
    : InjectionProcess(net, traffic, seed), profile_(std::move(profile)) {
  if (profile_.empty()) {
    throw std::invalid_argument("paced injection needs a non-empty profile");
  }
  if (probability_ * profile_.max_multiplier() > 1.0) {
    throw std::invalid_argument(
        "pace peak exceeds one message per node per cycle at this load");
  }
}

void PacedInjection::tick(Network& net) {
  MessageClass cls = MessageClass::Bulk;
  const double p = probability_ * profile_.multiplier_at(net.now(), &cls);
  const NodeId nodes = net.topology().num_nodes();
  const int limit = net.config().source_queue_limit;
  for (NodeId src = 0; src < nodes; ++src) {
    if (!rng_.chance(p)) continue;
    if (limit > 0 &&
        net.source_queue_length(src) >= static_cast<std::size_t>(limit)) {
      ++stalled_;
      continue;
    }
    const NodeId dst = pattern_->destination(src, rng_);
    if (dst == kInvalidNode) continue;
    emit(net, src, dst, draw_length(rng_), cls);
  }
}

void PacedInjection::save_state(BinWriter& out) const {
  InjectionProcess::save_state(out);
  out.u64(profile_.content_hash());
}

void PacedInjection::restore_state(BinReader& in, std::uint32_t version) {
  InjectionProcess::restore_state(in, version);
  const std::uint64_t hash = in.u64();
  if (hash != profile_.content_hash()) {
    throw std::runtime_error(
        "snapshot pace profile differs from the configured one");
  }
}

}  // namespace flexnet
