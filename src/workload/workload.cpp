#include "workload/workload.hpp"

#include <stdexcept>

#include "workload/replay.hpp"

namespace flexnet {

WorkloadConfig WorkloadConfig::with_point_suffix(std::size_t point) const {
  WorkloadConfig out = *this;
  if (!out.capture_path.empty()) {
    out.capture_path += ".p" + std::to_string(point);
  }
  return out;
}

WorkloadConfig parse_workload_spec(const std::string& spec) {
  WorkloadConfig config;
  if (spec == "bernoulli") {
    config.kind = WorkloadKind::Bernoulli;
    return config;
  }
  if (spec.rfind("trace:", 0) == 0) {
    config.kind = WorkloadKind::Trace;
    config.trace_path = spec.substr(6);
    if (config.trace_path.empty()) {
      throw std::invalid_argument("trace workload needs a path: " + spec);
    }
    return config;
  }
  if (spec.rfind("pace:", 0) == 0) {
    config.kind = WorkloadKind::Paced;
    config.pace_spec = spec.substr(5);
    config.pace = parse_pace_spec(config.pace_spec);
    return config;
  }
  throw std::invalid_argument(
      "unknown workload spec (want bernoulli | trace:<path> | pace:<spec>): " +
      spec);
}

std::unique_ptr<InjectionProcess> make_injection(const Network& net,
                                                 const TrafficConfig& traffic,
                                                 const WorkloadConfig& workload,
                                                 std::uint64_t seed) {
  switch (workload.kind) {
    case WorkloadKind::Bernoulli:
      return std::make_unique<InjectionProcess>(net, traffic, seed);
    case WorkloadKind::Trace:
      return std::make_unique<TraceReplayInjection>(net, workload.trace_path,
                                                    seed);
    case WorkloadKind::Paced:
      return std::make_unique<PacedInjection>(net, traffic, seed,
                                              workload.pace);
  }
  throw std::invalid_argument("unknown workload kind");
}

}  // namespace flexnet
