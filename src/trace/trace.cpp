#include "trace/trace.hpp"

#include <array>

namespace flexnet {

namespace {
constexpr std::array<std::string_view, kNumTraceEventKinds> kKindNames{
    "FlitInjected",   "FlitHopped",       "FlitDelivered",
    "MessageInjected", "MessageBlocked",  "MessageUnblocked",
    "MessageDelivered", "MessageRemoved", "VcAllocated",
    "VcFreed",        "CwgArcAdded",      "CwgArcRemoved",
    "DeadlockDetected", "DeadlockRecovered", "DeadlockWarning",
};
}  // namespace

std::string_view to_string(TraceEventKind kind) noexcept {
  const auto index = static_cast<std::size_t>(kind);
  return index < kKindNames.size() ? kKindNames[index] : "Unknown";
}

TraceEventKind parse_trace_event_kind(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kKindNames.size(); ++i) {
    if (kKindNames[i] == name) return static_cast<TraceEventKind>(i);
  }
  return TraceEventKind::kCount_;
}

}  // namespace flexnet
