#include "trace/sinks.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace flexnet {

// --- RingBufferSink ---------------------------------------------------------

RingBufferSink::RingBufferSink(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void RingBufferSink::on_event(const TraceEvent& event) {
  ring_[head_] = event;
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
  ++seen_;
}

std::vector<TraceEvent> RingBufferSink::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  const std::size_t start = (head_ + ring_.size() - size_) % ring_.size();
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::vector<TraceEvent> RingBufferSink::events_for_message(MessageId id) const {
  std::vector<TraceEvent> out;
  const std::size_t start = (head_ + ring_.size() - size_) % ring_.size();
  for (std::size_t i = 0; i < size_; ++i) {
    const TraceEvent& e = ring_[(start + i) % ring_.size()];
    if (e.message == id) out.push_back(e);
  }
  return out;
}

Cycle RingBufferSink::last_progress_cycle(MessageId id) const {
  // Scan newest-to-oldest so the first progress hit wins.
  const std::size_t start = (head_ + ring_.size() - size_) % ring_.size();
  for (std::size_t i = size_; i > 0; --i) {
    const TraceEvent& e = ring_[(start + i - 1) % ring_.size()];
    if (e.message == id && is_progress_event(e.kind)) return e.cycle;
  }
  return -1;
}

// --- ChromeTraceSink --------------------------------------------------------

namespace {
/// Track id for events with no single location.
constexpr long long kGlobalTid = 1000000;

long long chrome_tid(NodeId node) noexcept {
  return node == kInvalidNode ? kGlobalTid : static_cast<long long>(node);
}
}  // namespace

ChromeTraceSink::ChromeTraceSink(std::ostream& out) : out_(out) {
  out_ << "[{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
          "\"args\":{\"name\":\"flexnet\"}}";
}

ChromeTraceSink::~ChromeTraceSink() { flush(); }

void ChromeTraceSink::write_record(const TraceEvent& event, char phase,
                                   Cycle duration) {
  out_ << ",\n{\"name\":\"" << to_string(event.kind) << "\",\"ph\":\"" << phase
       << "\",\"ts\":" << event.cycle << ",\"pid\":0,\"tid\":"
       << chrome_tid(event.node);
  if (phase == 'X') out_ << ",\"dur\":" << duration;
  if (phase == 'i') {
    out_ << ",\"s\":\""
         << (event.kind == TraceEventKind::DeadlockDetected ? 'g' : 't')
         << '"';
  }
  out_ << ",\"args\":{\"m\":" << event.message;
  if (event.vc != kInvalidVc) out_ << ",\"vc\":" << event.vc;
  if (event.vc2 != kInvalidVc) out_ << ",\"vc2\":" << event.vc2;
  out_ << ",\"arg\":" << event.arg << "}}";
  ++written_;
}

void ChromeTraceSink::on_event(const TraceEvent& event) {
  if (closed_) return;

  // Blocked episodes become complete ("X") duration slices, emitted when the
  // episode ends so the duration is known.
  if (event.message >= 0) {
    const auto index = static_cast<std::size_t>(event.message);
    if (index >= blocked_since_.size()) blocked_since_.resize(index + 1, -1);
    switch (event.kind) {
      case TraceEventKind::MessageBlocked:
        blocked_since_[index] = event.cycle;
        return;  // rendered at episode end
      case TraceEventKind::MessageUnblocked:
      case TraceEventKind::MessageRemoved: {
        if (blocked_since_[index] >= 0) {
          TraceEvent episode = event;
          episode.kind = TraceEventKind::MessageBlocked;
          episode.cycle = blocked_since_[index];
          write_record(episode, 'X',
                       std::max<Cycle>(event.cycle - blocked_since_[index], 1));
          blocked_since_[index] = -1;
        }
        if (event.kind == TraceEventKind::MessageUnblocked) return;
        break;  // MessageRemoved is also worth an instant of its own
      }
      default:
        break;
    }
  }
  write_record(event, 'i', 0);
}

void ChromeTraceSink::flush() {
  if (closed_) return;
  closed_ = true;
  out_ << "]\n";
  out_.flush();
}

// --- BinaryTraceSink --------------------------------------------------------

namespace {
void put_le(std::uint8_t* out, std::uint64_t value, int bytes) noexcept {
  for (int i = 0; i < bytes; ++i) {
    out[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

std::uint64_t get_le(const std::uint8_t* in, int bytes) noexcept {
  std::uint64_t value = 0;
  for (int i = 0; i < bytes; ++i) {
    value |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return value;
}
}  // namespace

void encode_trace_event(const TraceEvent& event, std::uint8_t* out) noexcept {
  put_le(out + 0, static_cast<std::uint64_t>(event.cycle), 8);
  put_le(out + 8, static_cast<std::uint64_t>(event.message), 8);
  put_le(out + 16, static_cast<std::uint32_t>(event.vc), 4);
  put_le(out + 20, static_cast<std::uint32_t>(event.vc2), 4);
  put_le(out + 24, static_cast<std::uint32_t>(event.node), 4);
  put_le(out + 28, static_cast<std::uint32_t>(event.arg), 4);
  out[32] = static_cast<std::uint8_t>(event.kind);
}

TraceEvent decode_trace_event(const std::uint8_t* in) noexcept {
  TraceEvent event;
  event.cycle = static_cast<Cycle>(get_le(in + 0, 8));
  event.message = static_cast<MessageId>(get_le(in + 8, 8));
  event.vc = static_cast<VcId>(get_le(in + 16, 4));
  event.vc2 = static_cast<VcId>(get_le(in + 20, 4));
  event.node = static_cast<NodeId>(get_le(in + 24, 4));
  event.arg = static_cast<std::int32_t>(get_le(in + 28, 4));
  event.kind = static_cast<TraceEventKind>(in[32]);
  return event;
}

BinaryTraceSink::BinaryTraceSink(std::ostream& out) : out_(out) {}

void BinaryTraceSink::on_event(const TraceEvent& event) {
  std::uint8_t buf[kBinaryTraceEventSize];
  encode_trace_event(event, buf);
  out_.write(reinterpret_cast<const char*>(buf), sizeof(buf));
  ++written_;
}

void BinaryTraceSink::flush() { out_.flush(); }

std::vector<TraceEvent> read_binary_trace(std::istream& in) {
  std::vector<TraceEvent> events;
  std::uint8_t buf[kBinaryTraceEventSize];
  for (;;) {
    in.read(reinterpret_cast<char*>(buf), sizeof(buf));
    const auto got = in.gcount();
    if (got == 0) break;
    if (got != static_cast<std::streamsize>(sizeof(buf))) {
      throw std::runtime_error("truncated binary trace record");
    }
    events.push_back(decode_trace_event(buf));
  }
  return events;
}

}  // namespace flexnet
