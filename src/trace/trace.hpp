// Event tracing: a compact, deterministic record of everything the simulator
// does — flit movement, VC allocation, blocking, CWG arc changes, deadlock
// detection and recovery — emitted through a sink interface that costs one
// predictable null-pointer check when tracing is disabled.
//
// Events are plain 40-byte PODs so the always-on ring buffer stays cheap and
// the binary sink can serialize them byte-for-byte reproducibly. Everything
// an event references (messages, VCs, cycles) is an id into the simulator's
// dense state, never a pointer, so traces survive the run that produced them.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/types.hpp"

namespace flexnet {

enum class TraceEventKind : std::uint8_t {
  FlitInjected,      ///< Flit entered the injection VC. vc=injection VC, arg=seq.
  FlitHopped,        ///< Flit moved downstream. vc=destination VC, vc2=source VC, arg=seq.
  FlitDelivered,     ///< Flit consumed at the reception interface. vc=ejection VC, arg=seq.
  MessageInjected,   ///< Header granted the injection VC (message enters the network).
  MessageBlocked,    ///< Header failed VC allocation (start of a blocked episode). arg=request count.
  MessageUnblocked,  ///< Blocked header finally acquired a VC. arg=blocked cycles.
  MessageDelivered,  ///< Tail consumed at the destination. arg=latency.
  MessageRemoved,    ///< Removed by deadlock recovery / livelock guard.
  VcAllocated,       ///< Message acquired a VC (CWG solid arc vc2 -> vc; vc2 = upstream VC).
  VcFreed,           ///< Tail left the VC buffer; the VC is free again.
  CwgArcAdded,       ///< Request (dashed) arc appeared: newest held VC (vc2) -> wanted VC (vc).
  CwgArcRemoved,     ///< Request arc disappeared (granted, retargeted, or recovered).
  DeadlockDetected,  ///< Detector confirmed a knot. arg=deadlock set size, vc=a knot VC.
  DeadlockRecovered, ///< Detector removed a victim. message=victim, arg=deadlock set size.
  DeadlockWarning,   ///< Obs precursor score crossed --warn-threshold. arg=max stall age.
  kCount_,           ///< Sentinel; not a real event.
};

inline constexpr std::size_t kNumTraceEventKinds =
    static_cast<std::size_t>(TraceEventKind::kCount_);

[[nodiscard]] std::string_view to_string(TraceEventKind kind) noexcept;
/// Inverse of to_string; returns kCount_ for unknown names.
[[nodiscard]] TraceEventKind parse_trace_event_kind(std::string_view name) noexcept;

/// One trace event. `node` is where it happened (the downstream router of the
/// VC involved, or the endpoint for injection/ejection/message events); -1
/// when no single location applies (detector-wide events use a knot VC's node).
struct TraceEvent {
  Cycle cycle = -1;
  MessageId message = kInvalidMessage;
  VcId vc = kInvalidVc;
  VcId vc2 = kInvalidVc;
  NodeId node = kInvalidNode;
  std::int32_t arg = 0;
  TraceEventKind kind = TraceEventKind::kCount_;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// True for events that represent forward progress of `message` (used by
/// forensics to find each deadlocked message's last-progress cycle).
[[nodiscard]] constexpr bool is_progress_event(TraceEventKind kind) noexcept {
  switch (kind) {
    case TraceEventKind::FlitInjected:
    case TraceEventKind::FlitHopped:
    case TraceEventKind::FlitDelivered:
    case TraceEventKind::MessageInjected:
    case TraceEventKind::VcAllocated:
      return true;
    default:
      return false;
  }
}

/// Receives every emitted event. Implementations must not mutate simulator
/// state; they are called mid-phase on the hot path.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
  /// Called at end of run (and by Tracer::flush); sinks buffering output
  /// finalize here. Default: no-op.
  virtual void flush() {}
};

/// Fans events out to registered sinks. The simulator holds a `Tracer*` that
/// is nullptr when tracing is off, so the disabled-path cost is a single
/// branch; with a tracer attached but no sinks, emit() is a no-op loop.
class Tracer {
 public:
  /// Registers a non-owning sink. Sinks must outlive the tracer's use.
  void add_sink(TraceSink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }

  [[nodiscard]] bool has_sinks() const noexcept { return !sinks_.empty(); }

  void emit(const TraceEvent& event) {
    for (TraceSink* sink : sinks_) sink->on_event(event);
  }

  void flush() {
    for (TraceSink* sink : sinks_) sink->flush();
  }

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace flexnet
