#include "trace/forensics.hpp"

#include <algorithm>
#include <array>
#include <sstream>
#include <unordered_set>

#include "core/dot.hpp"
#include "sim/network.hpp"
#include "topo/torus.hpp"

namespace flexnet {

const ForensicsReport& DeadlockForensics::on_deadlock(
    const Network& net, const Cwg& cwg, const Knot& knot, MessageId victim,
    std::int64_t knot_cycle_density) {
  ForensicsReport report;
  report.sequence = total_++;
  report.detected_at = net.now();
  report.knot_size = static_cast<int>(knot.knot_vcs.size());
  report.knot_cycle_density = knot_cycle_density;
  report.dependents = knot.dependent_messages;
  report.victim = victim;

  report.members.reserve(knot.deadlock_set.size());
  for (const MessageId id : knot.deadlock_set) {
    const Message& msg = net.message(id);
    ForensicsMember member;
    member.id = id;
    member.src = msg.src;
    member.dst = msg.dst;
    member.length = msg.length;
    member.cls = msg.cls;
    member.hops = msg.hops;
    member.blocked_since = msg.blocked_since;
    member.last_progress = ring_ != nullptr ? ring_->last_progress_cycle(id) : -1;
    member.held = msg.held;
    member.requests = msg.request_set;
    report.members.push_back(std::move(member));
  }
  // Arc-closure order: the knot closed as each member entered its final
  // blocked episode.
  std::sort(report.members.begin(), report.members.end(),
            [](const ForensicsMember& a, const ForensicsMember& b) {
              if (a.blocked_since != b.blocked_since) {
                return a.blocked_since < b.blocked_since;
              }
              return a.id < b.id;
            });

  if (ring_ != nullptr) {
    std::unordered_set<MessageId> members(knot.deadlock_set.begin(),
                                          knot.deadlock_set.end());
    std::vector<TraceEvent> timeline;
    for (const TraceEvent& event : ring_->snapshot()) {
      if (members.count(event.message) != 0) timeline.push_back(event);
    }
    if (timeline_limit_ > 0 && timeline.size() > timeline_limit_) {
      report.timeline_truncated = true;
      timeline.erase(timeline.begin(),
                     timeline.end() - static_cast<std::ptrdiff_t>(timeline_limit_));
    }
    report.timeline = std::move(timeline);
  }

  if (record_dot_) {
    report.dot = cwg_to_dot(cwg, std::span<const Knot>(&knot, 1));
  }

  reports_.push_back(std::move(report));
  if (max_reports_ > 0 && reports_.size() > max_reports_) {
    reports_.erase(reports_.begin());
  }
  return reports_.back();
}

namespace {

std::string node_label(const Network* net, NodeId node) {
  std::ostringstream out;
  const KAryNCube* torus =
      net == nullptr ? nullptr : net->topology().as_torus();
  if (torus == nullptr || node == kInvalidNode) {
    out << 'n' << node;  // non-grid topologies have no coordinates
    return out.str();
  }
  const Coordinates& coords = torus->coordinates();
  out << '(';
  for (int d = 0; d < coords.dimensions(); ++d) {
    if (d > 0) out << ',';
    out << coords.coordinate(node, d);
  }
  out << ')';
  return out.str();
}

void append_vc_list(std::ostringstream& out, const std::vector<VcId>& vcs) {
  out << '[';
  for (std::size_t i = 0; i < vcs.size(); ++i) {
    if (i > 0) out << ' ';
    out << "vc" << vcs[i];
  }
  out << ']';
}

}  // namespace

std::string format_forensics_report(const ForensicsReport& report,
                                    const Network* net) {
  std::ostringstream out;
  out << "=== deadlock #" << report.sequence << " at cycle "
      << report.detected_at << " — formation forensics ===\n";
  out << "knot: " << report.knot_size << " VCs, deadlock set: "
      << report.members.size() << " messages, dependents: "
      << report.dependents.size();
  if (report.knot_cycle_density >= 0) {
    out << ", cycle density: " << report.knot_cycle_density;
  }
  out << '\n';

  std::array<int, kNumMessageClasses> by_class{};
  for (const ForensicsMember& m : report.members) {
    ++by_class[class_index(m.cls)];
  }
  out << "deadlock set by class:";
  for (const MessageClass cls : all_message_classes()) {
    if (by_class[class_index(cls)] == 0) continue;
    out << ' ' << to_string(cls) << '=' << by_class[class_index(cls)];
  }
  out << '\n';

  out << "\nknot closure order (blocked_since ascending; the last line is the "
         "arc that closed the knot):\n";
  for (const ForensicsMember& m : report.members) {
    out << "  m" << m.id << ' ' << node_label(net, m.src) << "->"
        << node_label(net, m.dst) << " len " << m.length << ' '
        << to_string(m.cls) << ", " << m.hops << " hops"
        << " | blocked since " << m.blocked_since << " | last progress ";
    if (m.last_progress >= 0) {
      out << "cycle " << m.last_progress;
    } else {
      out << "beyond trace horizon";
    }
    out << "\n      holds ";
    append_vc_list(out, m.held);
    out << " -> requests ";
    append_vc_list(out, m.requests);
    out << '\n';
  }

  if (report.victim != kInvalidMessage) {
    out << "\nvictim: m" << report.victim << " (removed for recovery)\n";
  }

  if (!report.timeline.empty()) {
    out << "\nformation timeline (" << report.timeline.size()
        << " deadlock-set events" << (report.timeline_truncated ? ", head truncated" : "")
        << "):\n";
    for (const TraceEvent& e : report.timeline) {
      out << "  @" << e.cycle << ' ' << to_string(e.kind) << " m" << e.message;
      if (e.vc != kInvalidVc) out << " vc" << e.vc;
      if (e.vc2 != kInvalidVc) out << " <-vc" << e.vc2;
      if (e.arg != 0) out << " arg=" << e.arg;
      out << '\n';
    }
  }
  return out.str();
}

}  // namespace flexnet
