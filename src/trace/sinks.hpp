// The three stock trace sinks:
//
//  * RingBufferSink  — fixed-capacity in-memory ring. Cheap enough to leave
//                      on for whole runs; forensics reads the formation
//                      history of a deadlock out of it after detection.
//  * ChromeTraceSink — Chrome trace-event JSON (load in chrome://tracing or
//                      https://ui.perfetto.dev). One track (tid) per node;
//                      blocked episodes render as duration slices, flit/VC
//                      events as instants, deadlocks as global instants.
//  * BinaryTraceSink — fixed-width little-endian encoding of every event,
//                      byte-identical across runs of the same (config, seed).
//                      Used for determinism checking and by tools/trace_dump.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace flexnet {

class RingBufferSink final : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity);

  void on_event(const TraceEvent& event) override;

  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  /// Events currently retained (<= capacity).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// Total events ever seen (size() + overwritten).
  [[nodiscard]] std::uint64_t total_seen() const noexcept { return seen_; }

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  /// Retained events touching `id`, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events_for_message(MessageId id) const;
  /// Cycle of the newest retained progress event for `id`; -1 when none is
  /// retained (the message last progressed before the ring's horizon).
  [[nodiscard]] Cycle last_progress_cycle(MessageId id) const;

  void clear() noexcept { size_ = 0; head_ = 0; }

 private:
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  ///< Next write position.
  std::size_t size_ = 0;
  std::uint64_t seen_ = 0;
};

class ChromeTraceSink final : public TraceSink {
 public:
  /// Streams JSON to `out`, which must outlive the sink. flush() (or the
  /// destructor) closes the JSON array; events after that are dropped.
  explicit ChromeTraceSink(std::ostream& out);
  ~ChromeTraceSink() override;

  void on_event(const TraceEvent& event) override;
  void flush() override;

  [[nodiscard]] std::uint64_t events_written() const noexcept { return written_; }

 private:
  void write_record(const TraceEvent& event, char phase, Cycle duration);

  std::ostream& out_;
  std::uint64_t written_ = 0;
  bool closed_ = false;
  /// Cycle each message's current blocked episode began (index = message id
  /// grown on demand); -1 when not blocked. Lets blocked episodes render as
  /// complete ("X") duration slices.
  std::vector<Cycle> blocked_since_;
};

/// Number of bytes each event occupies in the binary encoding.
inline constexpr std::size_t kBinaryTraceEventSize = 8 + 8 + 4 + 4 + 4 + 4 + 1;

class BinaryTraceSink final : public TraceSink {
 public:
  /// Streams the encoding to `out`, which must outlive the sink.
  explicit BinaryTraceSink(std::ostream& out);

  void on_event(const TraceEvent& event) override;
  void flush() override;

  [[nodiscard]] std::uint64_t events_written() const noexcept { return written_; }

 private:
  std::ostream& out_;
  std::uint64_t written_ = 0;
};

/// Encodes one event exactly as BinaryTraceSink writes it.
void encode_trace_event(const TraceEvent& event, std::uint8_t* out) noexcept;
/// Decodes one event from kBinaryTraceEventSize bytes.
[[nodiscard]] TraceEvent decode_trace_event(const std::uint8_t* in) noexcept;
/// Reads a whole binary trace stream; throws std::runtime_error on a
/// truncated final record.
[[nodiscard]] std::vector<TraceEvent> read_binary_trace(std::istream& in);

}  // namespace flexnet
