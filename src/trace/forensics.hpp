// Deadlock forensics: on every confirmed knot, reconstruct how the deadlock
// *formed* — not just what it looks like — from the always-on trace ring:
// when each deadlock-set message last made forward progress, the order in
// which their blocked episodes closed the knot's request arcs, the event
// timeline leading up to detection, and a DOT snapshot of the CWG. Successive
// reports form the paper-style "formation sequence" of a run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cwg.hpp"
#include "core/knot.hpp"
#include "sim/message_class.hpp"
#include "trace/sinks.hpp"

namespace flexnet {

class Network;

/// One deadlock-set member's forensic record.
struct ForensicsMember {
  MessageId id = kInvalidMessage;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::int32_t length = 0;
  MessageClass cls = MessageClass::Bulk;
  std::int32_t hops = 0;
  Cycle blocked_since = -1;    ///< Start of the blocked episode that closed its arc.
  Cycle last_progress = -1;    ///< Newest progress event in the ring; -1 = beyond horizon.
  std::vector<VcId> held;
  std::vector<VcId> requests;
};

struct ForensicsReport {
  std::int64_t sequence = 0;  ///< 0-based index of this deadlock in the run.
  Cycle detected_at = -1;
  int knot_size = 0;
  std::int64_t knot_cycle_density = -1;  ///< Copied from the detector; -1 unmeasured.
  /// Deadlock set ordered by blocked_since — the order the request arcs
  /// closed the knot (ties broken by message id).
  std::vector<ForensicsMember> members;
  std::vector<MessageId> dependents;
  MessageId victim = kInvalidMessage;
  /// Ring events touching the deadlock set, oldest first (bounded).
  std::vector<TraceEvent> timeline;
  bool timeline_truncated = false;
  /// Graphviz snapshot of the CWG at detection, knot highlighted.
  std::string dot;
};

class DeadlockForensics {
 public:
  /// `ring` supplies formation history; may be nullptr (reports then carry
  /// structure but no timeline / last-progress data). Non-owning.
  explicit DeadlockForensics(const RingBufferSink* ring = nullptr)
      : ring_(ring) {}

  void set_ring(const RingBufferSink* ring) noexcept { ring_ = ring; }
  /// Caps retained reports (oldest dropped); 0 = unbounded. Default 64.
  void set_max_reports(std::size_t max) noexcept { max_reports_ = max; }
  /// Caps per-report timeline events. Default 256.
  void set_timeline_limit(std::size_t limit) noexcept { timeline_limit_ = limit; }
  /// Skip the (potentially large) DOT snapshot.
  void set_record_dot(bool record) noexcept { record_dot_ = record; }

  /// Records one confirmed deadlock. Call with the CWG the knot was found in,
  /// before recovery removes the victim.
  const ForensicsReport& on_deadlock(const Network& net, const Cwg& cwg,
                                     const Knot& knot, MessageId victim,
                                     std::int64_t knot_cycle_density = -1);

  [[nodiscard]] const std::vector<ForensicsReport>& reports() const noexcept {
    return reports_;
  }
  [[nodiscard]] std::int64_t total_recorded() const noexcept { return total_; }

  void clear() noexcept {
    reports_.clear();
    total_ = 0;
  }

 private:
  const RingBufferSink* ring_ = nullptr;
  std::vector<ForensicsReport> reports_;
  std::int64_t total_ = 0;
  std::size_t max_reports_ = 64;
  std::size_t timeline_limit_ = 256;
  bool record_dot_ = true;
};

/// Human-readable rendering of a report (the deadlock_anatomy / sweep_cli
/// "formation timeline" block). `net` adds topology coordinates when given.
[[nodiscard]] std::string format_forensics_report(const ForensicsReport& report,
                                                  const Network* net = nullptr);

}  // namespace flexnet
