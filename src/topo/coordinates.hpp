// Mixed-radix coordinate helpers for k-ary n-cube node numbering.
//
// Node i has coordinates (c0, c1, ..., c_{n-1}) with c_d = (i / k^d) mod k;
// dimension 0 is the least significant digit.
#pragma once

#include <vector>

#include "sim/types.hpp"

namespace flexnet {

class Coordinates {
 public:
  Coordinates(int radix, int dimensions);

  [[nodiscard]] int radix() const noexcept { return k_; }
  [[nodiscard]] int dimensions() const noexcept { return n_; }
  [[nodiscard]] NodeId num_nodes() const noexcept { return num_nodes_; }

  /// Coordinate of node `id` along dimension `dim`.
  [[nodiscard]] int coordinate(NodeId id, int dim) const noexcept;

  /// Full coordinate vector of a node.
  [[nodiscard]] std::vector<int> unpack(NodeId id) const;

  /// Node id from a coordinate vector (values taken mod k).
  [[nodiscard]] NodeId pack(const std::vector<int>& coords) const;

  /// Neighbor of `id` one hop along `dim` in direction `dir` (+1 / -1) with
  /// wrap-around. Callers handle mesh boundaries themselves.
  [[nodiscard]] NodeId neighbor(NodeId id, int dim, int dir) const noexcept;

 private:
  int k_;
  int n_;
  NodeId num_nodes_;
  std::vector<NodeId> stride_;  // k^d for each dimension
};

}  // namespace flexnet
