#include "topo/topo_file.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace flexnet {

namespace {

[[noreturn]] void parse_error(const std::string& origin, int line,
                              const std::string& what) {
  throw std::invalid_argument(origin + ":" + std::to_string(line) + ": " + what);
}

/// Strict non-negative integer parse: the whole token must be digits.
bool parse_id(const std::string& token, long long& out) {
  if (token.empty() || token.size() > 10) return false;
  out = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') return false;
    out = out * 10 + (c - '0');
  }
  return true;
}

}  // namespace

GraphTopology::Spec parse_topology_text(std::istream& in,
                                        const std::string& origin) {
  GraphTopology::Spec spec;
  spec.kind = TopoKind::File;
  spec.name = "file:" + origin;
  spec.nodes = -1;

  std::string line;
  int line_no = 0;
  bool saw_magic = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    // Strip comments, then tokenize.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::string keyword;
    if (!(tokens >> keyword)) {
      if (line_no == 1) parse_error(origin, 1, "missing flexnet-topo-v1 magic");
      continue;  // blank or comment-only line
    }

    if (!saw_magic) {
      if (keyword != kTopoFileMagic) {
        parse_error(origin, line_no,
                    "bad magic '" + keyword + "' (expected flexnet-topo-v1)");
      }
      std::string extra;
      if (tokens >> extra) {
        parse_error(origin, line_no, "trailing token after magic: " + extra);
      }
      saw_magic = true;
      continue;
    }

    if (keyword == "nodes") {
      if (spec.nodes >= 0) parse_error(origin, line_no, "duplicate nodes directive");
      std::string count;
      long long value = 0;
      if (!(tokens >> count) || !parse_id(count, value)) {
        parse_error(origin, line_no, "nodes needs one non-negative integer");
      }
      if (value < 2 || value > kMaxGraphNodes) {
        parse_error(origin, line_no,
                    "node count must be in [2, " +
                        std::to_string(kMaxGraphNodes) + "]");
      }
      std::string extra;
      if (tokens >> extra) {
        parse_error(origin, line_no, "trailing token after nodes: " + extra);
      }
      spec.nodes = static_cast<NodeId>(value);
      continue;
    }

    if (keyword == "link" || keyword == "bilink") {
      if (spec.nodes < 0) {
        parse_error(origin, line_no, "link before the nodes directive");
      }
      std::string src_tok, dst_tok;
      long long src = 0, dst = 0;
      if (!(tokens >> src_tok >> dst_tok) || !parse_id(src_tok, src) ||
          !parse_id(dst_tok, dst)) {
        parse_error(origin, line_no, keyword + " needs two node ids");
      }
      if (src >= spec.nodes || dst >= spec.nodes) {
        parse_error(origin, line_no,
                    "dangling node id " + std::to_string(std::max(src, dst)) +
                        " (only " + std::to_string(spec.nodes) +
                        " nodes declared)");
      }
      if (src == dst) {
        parse_error(origin, line_no, "self-loop at node " + std::to_string(src));
      }
      int width = 1;
      std::string option;
      while (tokens >> option) {
        long long value = 0;
        if (option.rfind("width=", 0) == 0 &&
            parse_id(option.substr(6), value) && value >= 1 && value <= 64) {
          width = static_cast<int>(value);
        } else {
          parse_error(origin, line_no, "bad link option: " + option);
        }
      }
      const auto a = static_cast<NodeId>(src);
      const auto b = static_cast<NodeId>(dst);
      spec.links.push_back({a, b, width});
      if (keyword == "bilink") spec.links.push_back({b, a, width});
      continue;
    }

    parse_error(origin, line_no, "unknown directive: " + keyword);
  }

  if (!saw_magic) parse_error(origin, 1, "empty file (missing magic)");
  if (spec.nodes < 0) parse_error(origin, line_no, "missing nodes directive");
  if (spec.links.empty()) parse_error(origin, line_no, "no links declared");

  // Duplicate detection happens here (not just in GraphTopology) so the
  // error carries the file origin; bilink over an existing link is the
  // classic authoring mistake.
  std::vector<TopoLink> sorted = spec.links;
  std::sort(sorted.begin(), sorted.end(),
            [](const TopoLink& x, const TopoLink& y) {
              return x.src != y.src ? x.src < y.src : x.dst < y.dst;
            });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].src == sorted[i - 1].src && sorted[i].dst == sorted[i - 1].dst) {
      parse_error(origin, line_no,
                  "duplicate link " + std::to_string(sorted[i].src) + "->" +
                      std::to_string(sorted[i].dst));
    }
  }
  return spec;
}

GraphTopology::Spec load_topology_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open topology file: " + path);
  return parse_topology_text(in, path);
}

std::string write_topology_text(const GraphTopology::Spec& spec) {
  std::vector<TopoLink> links = spec.links;
  std::sort(links.begin(), links.end(),
            [](const TopoLink& a, const TopoLink& b) {
              return a.src != b.src ? a.src < b.src : a.dst < b.dst;
            });

  std::string out;
  out += kTopoFileMagic;
  out += "\n# ";
  out += spec.name;
  out += "\nnodes " + std::to_string(spec.nodes) + "\n";

  const auto find_reverse = [&links](const TopoLink& link) {
    return std::find_if(links.begin(), links.end(), [&link](const TopoLink& r) {
      return r.src == link.dst && r.dst == link.src && r.width == link.width;
    });
  };
  std::vector<bool> emitted(links.size(), false);
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (emitted[i]) continue;
    const TopoLink& link = links[i];
    std::string keyword = "link";
    if (link.src < link.dst) {
      const auto rev = find_reverse(link);
      if (rev != links.end() &&
          !emitted[static_cast<std::size_t>(rev - links.begin())]) {
        emitted[static_cast<std::size_t>(rev - links.begin())] = true;
        keyword = "bilink";
      }
    }
    out += keyword + " " + std::to_string(link.src) + " " +
           std::to_string(link.dst);
    if (link.width != 1) out += " width=" + std::to_string(link.width);
    out += "\n";
  }
  return out;
}

}  // namespace flexnet
