#include "topo/topology.hpp"

#include <stdexcept>

#include "topo/torus.hpp"

namespace flexnet {

std::string_view to_string(TopoKind kind) noexcept {
  switch (kind) {
    case TopoKind::Torus: return "Torus";
    case TopoKind::FullMesh: return "FullMesh";
    case TopoKind::Dragonfly: return "Dragonfly";
    case TopoKind::RandomIrregular: return "RandomIrregular";
    case TopoKind::File: return "File";
  }
  return "?";
}

namespace {
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_mix(std::uint64_t& h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffU;
    h *= kFnvPrime;
  }
}
}  // namespace

void Topology::finalize() {
  if (num_nodes_ < 2) {
    throw std::invalid_argument("topology needs at least 2 nodes");
  }
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    const ChannelDesc& ch = channels_[i];
    if (ch.id != static_cast<ChannelId>(i)) {
      throw std::logic_error("topology channel ids must be dense and ordered");
    }
    if (ch.src < 0 || ch.src >= num_nodes_ || ch.dst < 0 ||
        ch.dst >= num_nodes_) {
      throw std::invalid_argument("topology channel endpoint out of range");
    }
    if (ch.src == ch.dst) {
      throw std::invalid_argument("topology channel is a self-loop");
    }
    if (ch.width < 1) {
      throw std::invalid_argument("topology channel width must be >= 1");
    }
  }

  // CSR adjacency: counting sort by source keeps per-node lists id-ascending.
  const auto nodes = static_cast<std::size_t>(num_nodes_);
  out_offsets_.assign(nodes + 1, 0);
  for (const ChannelDesc& ch : channels_) {
    ++out_offsets_[static_cast<std::size_t>(ch.src) + 1];
  }
  for (std::size_t n = 0; n < nodes; ++n) {
    out_offsets_[n + 1] += out_offsets_[n];
  }
  out_list_.assign(channels_.size(), kInvalidChannel);
  std::vector<std::size_t> cursor(out_offsets_.begin(), out_offsets_.end() - 1);
  for (const ChannelDesc& ch : channels_) {
    out_list_[cursor[static_cast<std::size_t>(ch.src)]++] = ch.id;
  }

  std::uint64_t h = kFnvOffset;
  fnv_mix(h, static_cast<std::uint64_t>(num_nodes_));
  for (const ChannelDesc& ch : channels_) {
    fnv_mix(h, static_cast<std::uint64_t>(ch.src));
    fnv_mix(h, static_cast<std::uint64_t>(ch.dst));
    fnv_mix(h, static_cast<std::uint64_t>(ch.width));
  }
  content_hash_ = h;
}

const KAryNCube& torus_topology(const Topology& topo) {
  const KAryNCube* torus = topo.as_torus();
  if (torus == nullptr) {
    throw std::logic_error("topology '" + topo.name() +
                           "' is not a k-ary n-cube; torus-only code path "
                           "reached on an irregular topology");
  }
  return *torus;
}

}  // namespace flexnet
