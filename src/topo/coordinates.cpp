#include "topo/coordinates.hpp"

#include <cassert>
#include <stdexcept>

namespace flexnet {

Coordinates::Coordinates(int radix, int dimensions) : k_(radix), n_(dimensions) {
  if (radix < 2) throw std::invalid_argument("radix must be >= 2");
  if (dimensions < 1) throw std::invalid_argument("dimensions must be >= 1");
  stride_.resize(static_cast<std::size_t>(n_));
  NodeId s = 1;
  for (int d = 0; d < n_; ++d) {
    stride_[static_cast<std::size_t>(d)] = s;
    if (s > (1 << 28) / k_) throw std::invalid_argument("network too large");
    s *= k_;
  }
  num_nodes_ = s;
}

int Coordinates::coordinate(NodeId id, int dim) const noexcept {
  assert(id >= 0 && id < num_nodes_ && dim >= 0 && dim < n_);
  return (id / stride_[static_cast<std::size_t>(dim)]) % k_;
}

std::vector<int> Coordinates::unpack(NodeId id) const {
  std::vector<int> coords(static_cast<std::size_t>(n_));
  for (int d = 0; d < n_; ++d) {
    coords[static_cast<std::size_t>(d)] = coordinate(id, d);
  }
  return coords;
}

NodeId Coordinates::pack(const std::vector<int>& coords) const {
  if (coords.size() != static_cast<std::size_t>(n_)) {
    throw std::invalid_argument("coordinate vector has wrong dimensionality");
  }
  NodeId id = 0;
  for (int d = 0; d < n_; ++d) {
    const int c = ((coords[static_cast<std::size_t>(d)] % k_) + k_) % k_;
    id += c * stride_[static_cast<std::size_t>(d)];
  }
  return id;
}

NodeId Coordinates::neighbor(NodeId id, int dim, int dir) const noexcept {
  assert(dir == 1 || dir == -1);
  const NodeId stride = stride_[static_cast<std::size_t>(dim)];
  const int c = coordinate(id, dim);
  const int next = (c + dir + k_) % k_;
  return id + (next - c) * stride;
}

}  // namespace flexnet
