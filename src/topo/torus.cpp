#include "topo/torus.hpp"

#include <cassert>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace flexnet {

namespace {
std::string torus_name(const TopologyConfig& c) {
  std::string name = c.wrap ? "torus-" : "mesh-";
  name += std::to_string(c.k) + "x" + std::to_string(c.n);
  if (!c.bidirectional) name += "-uni";
  return name;
}
}  // namespace

KAryNCube::KAryNCube(const TopologyConfig& config)
    : Topology(TopoKind::Torus, torus_name(config)),
      config_(config),
      coords_(config.k, config.n) {
  if (!config_.wrap && !config_.bidirectional) {
    throw std::invalid_argument("a unidirectional mesh is not connected");
  }
  const NodeId nodes = coords_.num_nodes();
  num_nodes_ = nodes;
  out_table_.assign(static_cast<std::size_t>(nodes) *
                        static_cast<std::size_t>(config_.n) * 2,
                    kInvalidChannel);

  for (NodeId node = 0; node < nodes; ++node) {
    for (int dim = 0; dim < config_.n; ++dim) {
      for (const int dir : {+1, -1}) {
        if (dir == -1 && !config_.bidirectional) continue;
        const int c = coords_.coordinate(node, dim);
        const bool wraps = (dir == +1 && c == config_.k - 1) ||
                           (dir == -1 && c == 0);
        if (wraps && !config_.wrap) continue;
        ChannelDesc desc;
        desc.id = static_cast<ChannelId>(channels_.size());
        desc.src = node;
        desc.dst = coords_.neighbor(node, dim, dir);
        desc.dim = dim;
        desc.dir = dir;
        desc.is_wrap = wraps;
        out_table_[port_index(node, dim, dir)] = desc.id;
        channels_.push_back(desc);
      }
    }
  }
  avg_distance_ = compute_average_distance();
  finalize();
}

bool KAryNCube::hop_is_minimal(const ChannelDesc& ch, NodeId dst) const {
  const DimRoute minimal = minimal_dirs(ch.src, dst, ch.dim);
  for (int i = 0; i < minimal.count; ++i) {
    if (minimal.dirs[static_cast<std::size_t>(i)] == ch.dir) return true;
  }
  return false;
}

std::size_t KAryNCube::port_index(NodeId node, int dim, int dir) const noexcept {
  assert(dir == 1 || dir == -1);
  return (static_cast<std::size_t>(node) * static_cast<std::size_t>(config_.n) +
          static_cast<std::size_t>(dim)) *
             2 +
         (dir == 1 ? 0 : 1);
}

ChannelId KAryNCube::out_channel(NodeId node, int dim, int dir) const noexcept {
  return out_table_[port_index(node, dim, dir)];
}

int KAryNCube::dim_distance(NodeId from, NodeId to, int dim) const noexcept {
  const int a = coords_.coordinate(from, dim);
  const int b = coords_.coordinate(to, dim);
  if (!config_.wrap) return std::abs(b - a);
  const int fwd = ((b - a) % config_.k + config_.k) % config_.k;
  if (!config_.bidirectional) return fwd;
  return std::min(fwd, config_.k - fwd);
}

int KAryNCube::min_distance(NodeId from, NodeId to) const noexcept {
  int total = 0;
  for (int dim = 0; dim < config_.n; ++dim) {
    total += dim_distance(from, to, dim);
  }
  return total;
}

DimRoute KAryNCube::minimal_dirs(NodeId from, NodeId to, int dim) const noexcept {
  DimRoute route;
  const int a = coords_.coordinate(from, dim);
  const int b = coords_.coordinate(to, dim);
  if (a == b) return route;
  if (!config_.wrap) {
    route.dirs[route.count++] = b > a ? +1 : -1;
    return route;
  }
  const int fwd = ((b - a) % config_.k + config_.k) % config_.k;
  if (!config_.bidirectional) {
    route.dirs[route.count++] = +1;
    return route;
  }
  const int bwd = config_.k - fwd;
  if (fwd <= bwd) route.dirs[route.count++] = +1;
  if (bwd <= fwd) route.dirs[route.count++] = -1;
  return route;
}

double KAryNCube::compute_average_distance() const {
  // Distances decompose per dimension, so average the one-dimensional ring
  // (or path) distance and scale; then condition on src != dst.
  const int k = config_.k;
  double per_dim = 0.0;
  if (config_.wrap) {
    long long sum = 0;
    for (int delta = 0; delta < k; ++delta) {
      sum += config_.bidirectional ? std::min(delta, k - delta) : delta;
    }
    per_dim = static_cast<double>(sum) / k;
  } else {
    long long sum = 0;
    for (int a = 0; a < k; ++a) {
      for (int b = 0; b < k; ++b) sum += std::abs(a - b);
    }
    per_dim = static_cast<double>(sum) / (static_cast<double>(k) * k);
  }
  const double nodes = static_cast<double>(coords_.num_nodes());
  return per_dim * config_.n * nodes / (nodes - 1.0);
}

}  // namespace flexnet
