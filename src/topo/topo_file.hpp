// The flexnet-topo-v1 text format: a topology as a node count plus a link
// list, one directive per line.
//
//   flexnet-topo-v1            # magic, must be the first line
//   # comments and blank lines are ignored
//   nodes 16                   # required, exactly once, before any link
//   link 0 1                   # directed link 0 -> 1
//   link 1 2 width=2           # optional width (multiplies the VC count)
//   bilink 3 4                 # shorthand for link 3 4 + link 4 3
//
// The parser is strict and fails loud: bad magic, unknown directives,
// malformed or trailing tokens, out-of-range/dangling node ids, self-loops,
// duplicate links, a missing nodes declaration, or a graph that is not
// strongly connected all throw std::invalid_argument naming the line.
#pragma once

#include <iosfwd>
#include <string>

#include "topo/graph_topology.hpp"

namespace flexnet {

inline constexpr std::string_view kTopoFileMagic = "flexnet-topo-v1";

/// Parses topology text (the stream form backs tests; `origin` names the
/// source in errors and the topology name).
[[nodiscard]] GraphTopology::Spec parse_topology_text(std::istream& in,
                                                      const std::string& origin);

/// Reads and parses `path`; throws std::runtime_error when the file cannot
/// be opened and std::invalid_argument on malformed content.
[[nodiscard]] GraphTopology::Spec load_topology_file(const std::string& path);

/// Serializes a spec back to flexnet-topo-v1 text (antiparallel link pairs
/// of equal width collapse into bilink lines). parse(write(spec)) rebuilds a
/// topology with the identical content hash.
[[nodiscard]] std::string write_topology_text(const GraphTopology::Spec& spec);

}  // namespace flexnet
