#include "topo/generators.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace flexnet {

namespace {
void add_bilink(std::vector<TopoLink>& links, NodeId a, NodeId b) {
  links.push_back({a, b, 1});
  links.push_back({b, a, 1});
}
}  // namespace

GraphTopology::Spec full_mesh_spec(NodeId nodes) {
  if (nodes < 2) throw std::invalid_argument("full mesh needs >= 2 nodes");
  if (nodes > kMaxGraphNodes) {
    throw std::invalid_argument("full mesh node count exceeds the graph cap");
  }
  GraphTopology::Spec spec;
  spec.kind = TopoKind::FullMesh;
  spec.name = "full-mesh-" + std::to_string(nodes);
  spec.nodes = nodes;
  spec.links.reserve(static_cast<std::size_t>(nodes) *
                     static_cast<std::size_t>(nodes - 1));
  for (NodeId src = 0; src < nodes; ++src) {
    for (NodeId dst = 0; dst < nodes; ++dst) {
      if (src != dst) spec.links.push_back({src, dst, 1});
    }
  }
  return spec;
}

GraphTopology::Spec dragonfly_spec(int routers_per_group,
                                   int global_links_per_router) {
  const int a = routers_per_group;
  const int h = global_links_per_router;
  if (a < 2) throw std::invalid_argument("dragonfly needs >= 2 routers per group");
  if (h < 1) throw std::invalid_argument("dragonfly needs >= 1 global link per router");
  const int g = a * h + 1;  // balanced dragonfly: one global link per group pair
  const NodeId nodes = static_cast<NodeId>(a) * static_cast<NodeId>(g);
  if (nodes > kMaxGraphNodes) {
    throw std::invalid_argument("dragonfly node count exceeds the graph cap");
  }

  GraphTopology::Spec spec;
  spec.kind = TopoKind::Dragonfly;
  spec.name = "dragonfly-a" + std::to_string(a) + "h" + std::to_string(h) +
              "-" + std::to_string(nodes);
  spec.nodes = nodes;

  const auto node_of = [a](int group, int router) {
    return static_cast<NodeId>(group * a + router);
  };

  for (int group = 0; group < g; ++group) {
    // Intra-group full mesh (directed both ways via ordered pairs).
    for (int r1 = 0; r1 < a; ++r1) {
      for (int r2 = 0; r2 < a; ++r2) {
        if (r1 != r2) spec.links.push_back({node_of(group, r1), node_of(group, r2), 1});
      }
    }
    // Global links, consecutive arrangement: router q/h's port q%h (global
    // index q in [0, g-1)) reaches group (group + q + 1) mod g; the peer's
    // reciprocal index is g-2-q, so each direction is emitted exactly once.
    for (int q = 0; q < g - 1; ++q) {
      const int target_group = (group + q + 1) % g;
      const int peer_q = g - 2 - q;
      spec.links.push_back(
          {node_of(group, q / h), node_of(target_group, peer_q / h), 1});
    }
  }
  return spec;
}

GraphTopology::Spec random_irregular_spec(NodeId nodes, int degree,
                                          std::uint64_t seed) {
  if (nodes < 2) throw std::invalid_argument("irregular graph needs >= 2 nodes");
  if (nodes > kMaxGraphNodes) {
    throw std::invalid_argument("irregular node count exceeds the graph cap");
  }
  if (degree < 1 || degree >= nodes) {
    throw std::invalid_argument("irregular degree must be in [1, nodes)");
  }

  GraphTopology::Spec spec;
  spec.kind = TopoKind::RandomIrregular;
  spec.name = "irregular-" + std::to_string(nodes) + "-d" +
              std::to_string(degree) + "-s" + std::to_string(seed);
  spec.nodes = nodes;

  Pcg32 rng(splitmix64(seed), 0x746f706f /* "topo" */);

  // Random spanning tree over a random node permutation: each node links to
  // a uniformly chosen earlier node, guaranteeing (undirected) connectivity.
  std::vector<NodeId> perm(static_cast<std::size_t>(nodes));
  for (NodeId i = 0; i < nodes; ++i) perm[static_cast<std::size_t>(i)] = i;
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.bounded(static_cast<std::uint32_t>(i))]);
  }
  std::vector<std::pair<NodeId, NodeId>> edges;  // undirected, a < b
  const auto has_edge = [&edges](NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return std::find(edges.begin(), edges.end(), std::make_pair(a, b)) !=
           edges.end();
  };
  for (std::size_t i = 1; i < perm.size(); ++i) {
    const NodeId a = perm[i];
    const NodeId b = perm[rng.bounded(static_cast<std::uint32_t>(i))];
    edges.emplace_back(std::min(a, b), std::max(a, b));
  }

  // Extra edges until the average undirected degree reaches `degree`.
  const std::size_t target_edges = std::max<std::size_t>(
      edges.size(), (static_cast<std::size_t>(nodes) *
                     static_cast<std::size_t>(degree)) /
                        2);
  int stale_attempts = 0;
  while (edges.size() < target_edges && stale_attempts < 10000) {
    const auto a = static_cast<NodeId>(
        rng.bounded(static_cast<std::uint32_t>(nodes)));
    const auto b = static_cast<NodeId>(
        rng.bounded(static_cast<std::uint32_t>(nodes)));
    if (a == b || has_edge(a, b)) {
      ++stale_attempts;
      continue;
    }
    stale_attempts = 0;
    edges.emplace_back(std::min(a, b), std::max(a, b));
  }

  for (const auto& [a, b] : edges) add_bilink(spec.links, a, b);
  return spec;
}

}  // namespace flexnet
