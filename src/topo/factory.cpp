#include "topo/factory.hpp"

#include <stdexcept>

#include "topo/generators.hpp"
#include "topo/graph_topology.hpp"
#include "topo/topo_file.hpp"
#include "topo/torus.hpp"

namespace flexnet {

std::shared_ptr<const Topology> make_topology(const SimConfig& config) {
  switch (config.topo_kind) {
    case TopoKind::Torus:
      return std::make_shared<KAryNCube>(config.topology);
    case TopoKind::FullMesh:
      return std::make_shared<GraphTopology>(
          full_mesh_spec(static_cast<NodeId>(config.topo_nodes)));
    case TopoKind::Dragonfly:
      return std::make_shared<GraphTopology>(
          dragonfly_spec(config.topo_df_routers, config.topo_df_globals));
    case TopoKind::RandomIrregular:
      return std::make_shared<GraphTopology>(random_irregular_spec(
          static_cast<NodeId>(config.topo_nodes), config.topo_degree,
          config.topo_seed));
    case TopoKind::File:
      return std::make_shared<GraphTopology>(
          load_topology_file(config.topo_file));
  }
  throw std::invalid_argument("unknown topology kind");
}

}  // namespace flexnet
