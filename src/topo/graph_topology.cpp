#include "topo/graph_topology.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

namespace flexnet {

namespace {
[[noreturn]] void bad_spec(const std::string& name, const std::string& what) {
  throw std::invalid_argument("topology '" + name + "': " + what);
}
}  // namespace

GraphTopology::GraphTopology(Spec spec)
    : Topology(spec.kind, std::move(spec.name)) {
  if (spec.nodes < 2) bad_spec(name_, "needs at least 2 nodes");
  if (spec.nodes > kMaxGraphNodes) {
    bad_spec(name_, "node count " + std::to_string(spec.nodes) +
                        " exceeds the explicit-graph cap of " +
                        std::to_string(kMaxGraphNodes));
  }
  if (spec.links.empty()) bad_spec(name_, "has no links");
  num_nodes_ = spec.nodes;

  for (const TopoLink& link : spec.links) {
    if (link.src < 0 || link.src >= num_nodes_) {
      bad_spec(name_, "link source " + std::to_string(link.src) +
                          " is not a declared node");
    }
    if (link.dst < 0 || link.dst >= num_nodes_) {
      bad_spec(name_, "link destination " + std::to_string(link.dst) +
                          " is not a declared node");
    }
    if (link.src == link.dst) {
      bad_spec(name_, "self-loop at node " + std::to_string(link.src));
    }
    if (link.width < 1) {
      bad_spec(name_, "link " + std::to_string(link.src) + "->" +
                          std::to_string(link.dst) + " has width < 1");
    }
  }

  // Canonical order: (src, dst) ascending; duplicates become adjacent.
  std::sort(spec.links.begin(), spec.links.end(),
            [](const TopoLink& a, const TopoLink& b) {
              return a.src != b.src ? a.src < b.src : a.dst < b.dst;
            });
  for (std::size_t i = 1; i < spec.links.size(); ++i) {
    if (spec.links[i].src == spec.links[i - 1].src &&
        spec.links[i].dst == spec.links[i - 1].dst) {
      bad_spec(name_, "duplicate link " + std::to_string(spec.links[i].src) +
                          "->" + std::to_string(spec.links[i].dst));
    }
  }

  channels_.reserve(spec.links.size());
  for (const TopoLink& link : spec.links) {
    ChannelDesc desc;
    desc.id = static_cast<ChannelId>(channels_.size());
    desc.src = link.src;
    desc.dst = link.dst;
    desc.width = link.width;
    channels_.push_back(desc);
  }
  finalize();
  build_distance_matrix();
}

void GraphTopology::build_distance_matrix() {
  const auto nodes = static_cast<std::size_t>(num_nodes_);
  constexpr std::uint16_t kUnreached = std::numeric_limits<std::uint16_t>::max();
  dist_.assign(nodes * nodes, kUnreached);

  std::vector<NodeId> queue;
  queue.reserve(nodes);
  for (NodeId src = 0; src < num_nodes_; ++src) {
    std::uint16_t* row = dist_.data() + static_cast<std::size_t>(src) * nodes;
    row[static_cast<std::size_t>(src)] = 0;
    queue.clear();
    queue.push_back(src);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId at = queue[head];
      const std::uint16_t next =
          static_cast<std::uint16_t>(row[static_cast<std::size_t>(at)] + 1);
      for (const ChannelId ch : out_channels(at)) {
        const NodeId to = channel(ch).dst;
        if (row[static_cast<std::size_t>(to)] != kUnreached) continue;
        row[static_cast<std::size_t>(to)] = next;
        queue.push_back(to);
      }
    }
    if (queue.size() != nodes) {
      bad_spec(name_, "graph is not strongly connected (node " +
                          std::to_string(src) + " cannot reach every node)");
    }
  }

  // Exact mean over ordered pairs with src != dst.
  std::uint64_t total = 0;
  for (const std::uint16_t d : dist_) total += d;
  avg_distance_ = static_cast<double>(total) /
                  (static_cast<double>(nodes) * (static_cast<double>(nodes) - 1.0));
}

}  // namespace flexnet
