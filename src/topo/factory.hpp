// Builds the topology a SimConfig describes. Returned shared so Network,
// snapshot restore and tools can hold the same immutable instance.
#pragma once

#include <memory>

#include "sim/config.hpp"
#include "topo/topology.hpp"

namespace flexnet {

/// Dispatches on config.topo_kind; throws what the underlying constructor,
/// generator or file parser throws (always fail-loud).
[[nodiscard]] std::shared_ptr<const Topology> make_topology(
    const SimConfig& config);

}  // namespace flexnet
