#include "topo/partition.hpp"

#include <algorithm>
#include <stdexcept>

#include "topo/topology.hpp"

namespace flexnet {

namespace {
/// Nodes in BFS order from node 0 over the (directed) channel list, both
/// directions treated as adjacency. Disconnected leftovers (possible only
/// for pathological inputs; generators guarantee connectivity) are appended
/// in id order so the permutation stays total.
std::vector<NodeId> bfs_order(const Topology& topo) {
  const auto nodes = static_cast<std::size_t>(topo.num_nodes());
  std::vector<std::vector<NodeId>> adj(nodes);
  for (const ChannelDesc& ch : topo.channels()) {
    adj[static_cast<std::size_t>(ch.src)].push_back(ch.dst);
    adj[static_cast<std::size_t>(ch.dst)].push_back(ch.src);
  }
  std::vector<NodeId> order;
  order.reserve(nodes);
  std::vector<bool> seen(nodes, false);
  std::size_t head = 0;
  seen[0] = true;
  order.push_back(0);
  while (head < order.size()) {
    const NodeId at = order[head++];
    // Visit neighbors in ascending id order for a canonical sequence.
    auto& out = adj[static_cast<std::size_t>(at)];
    std::sort(out.begin(), out.end());
    for (const NodeId next : out) {
      if (seen[static_cast<std::size_t>(next)]) continue;
      seen[static_cast<std::size_t>(next)] = true;
      order.push_back(next);
    }
  }
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    if (!seen[static_cast<std::size_t>(n)]) order.push_back(n);
  }
  return order;
}
}  // namespace

ShardPlan make_shard_plan(const Topology& topo, std::int32_t shards) {
  if (shards < 1) throw std::invalid_argument("shard count must be >= 1");
  const NodeId nodes = topo.num_nodes();
  ShardPlan plan;
  plan.shards = std::min<std::int32_t>(shards, nodes);
  plan.node_shard.assign(static_cast<std::size_t>(nodes), 0);
  if (plan.shards == 1) return plan;

  // Cut a canonical node sequence into `shards` nearly equal consecutive
  // chunks (sizes differ by at most one; the first `nodes % shards` chunks
  // get the extra node).
  const auto assign_chunks = [&](const std::vector<NodeId>& order) {
    const std::int32_t base = nodes / plan.shards;
    const std::int32_t extra = nodes % plan.shards;
    std::size_t at = 0;
    for (std::int32_t s = 0; s < plan.shards; ++s) {
      const std::int32_t take = base + (s < extra ? 1 : 0);
      for (std::int32_t i = 0; i < take; ++i) {
        plan.node_shard[static_cast<std::size_t>(order[at++])] = s;
      }
    }
  };

  if (topo.kind() == TopoKind::Torus) {
    // Row-major ids: contiguous slabs are spatial blocks already.
    std::vector<NodeId> identity(static_cast<std::size_t>(nodes));
    for (NodeId n = 0; n < nodes; ++n) identity[static_cast<std::size_t>(n)] = n;
    assign_chunks(identity);
  } else {
    assign_chunks(bfs_order(topo));
  }
  return plan;
}

}  // namespace flexnet
