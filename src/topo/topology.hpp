// Topology as data: the abstract network-shape interface every layer above
// src/topo/ programs against.
//
// A Topology is a finite set of nodes plus a canonically ordered list of
// directed channels (links). "Canonical" means channel ids are dense
// [0, channels().size()) and their order is a pure function of the topology's
// content, so two constructions of the same topology agree on every id — the
// property Network relies on when it mirrors the channel list into physical
// channels and the snapshot layer relies on for byte-identical restores.
//
// KAryNCube (src/topo/torus.hpp) is the grid-shaped implementation with
// coordinates; GraphTopology (src/topo/graph_topology.hpp) covers every
// explicit-link topology (full mesh, dragonfly, random irregular, file
// defined). Code that genuinely needs torus structure — the five
// torus routing relations, tornado traffic, the 2-D heatmap — must go
// through torus_topology()/as_torus() instead of downcasting ad hoc.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.hpp"

namespace flexnet {

class KAryNCube;

/// Topology families selectable from the CLI and recorded in snapshots and
/// telemetry manifests. Values are part of the snapshot format; append only.
enum class TopoKind : std::uint8_t {
  Torus = 0,            ///< k-ary n-cube (torus or mesh), KAryNCube.
  FullMesh = 1,         ///< Every ordered pair directly linked.
  Dragonfly = 2,        ///< Groups of routers, full intra-group + global links.
  RandomIrregular = 3,  ///< Random connected graph (spanning tree + extras).
  File = 4,             ///< Loaded from a flexnet-topo-v1 file.
};

[[nodiscard]] std::string_view to_string(TopoKind kind) noexcept;

/// A directed physical link between two routers.
struct ChannelDesc {
  ChannelId id = kInvalidChannel;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  int dim = -1;  ///< Dimension the link travels along (tori only; -1 otherwise).
  int dir = 0;   ///< +1 or -1 (tori only; 0 otherwise).
  bool is_wrap = false;  ///< Link from coordinate k-1 to 0 (or 0 to k-1).
  int width = 1;  ///< Link width; multiplies the VC count on this channel.
};

/// One undirected-or-directed link record as it appears in generator specs,
/// topology files, and the snapshot topology section.
struct TopoLink {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  int width = 1;
};

class Topology {
 public:
  virtual ~Topology() = default;

  [[nodiscard]] TopoKind kind() const noexcept { return kind_; }
  /// Human-readable identity, e.g. "torus-16x2" or "file:irregular-16.topo".
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] NodeId num_nodes() const noexcept { return num_nodes_; }

  /// Channels in canonical order; ids are dense and equal to vector indices.
  [[nodiscard]] const std::vector<ChannelDesc>& channels() const noexcept {
    return channels_;
  }
  [[nodiscard]] const ChannelDesc& channel(ChannelId id) const {
    return channels_.at(static_cast<std::size_t>(id));
  }

  /// Outgoing channel ids at `node`, ascending (flat CSR adjacency — the
  /// "interface indirection paid for via flat arrays" of the design note).
  [[nodiscard]] std::span<const ChannelId> out_channels(NodeId node) const {
    const auto n = static_cast<std::size_t>(node);
    return {out_list_.data() + out_offsets_[n],
            out_offsets_[n + 1] - out_offsets_[n]};
  }

  /// Minimal hop distance. Every topology here is strongly connected, so the
  /// result is always finite.
  [[nodiscard]] virtual int min_distance(NodeId from, NodeId to) const = 0;

  /// Exact mean minimal distance over all ordered pairs with src != dst;
  /// used for load normalization (paper Section 3).
  [[nodiscard]] double average_distance() const noexcept { return avg_distance_; }

  /// Whether taking channel `ch` moves a message strictly closer to `dst`
  /// (the misroute-accounting predicate). The default compares min_distance
  /// at both endpoints; KAryNCube overrides with the per-dimension check to
  /// keep the torus hot path and its historical semantics bit-identical.
  [[nodiscard]] virtual bool hop_is_minimal(const ChannelDesc& ch,
                                            NodeId dst) const {
    return min_distance(ch.dst, dst) < min_distance(ch.src, dst);
  }

  /// Non-null iff this topology is a k-ary n-cube. The single sanctioned
  /// downcast point; prefer torus_topology() which fails loud.
  [[nodiscard]] virtual const KAryNCube* as_torus() const noexcept {
    return nullptr;
  }

  /// FNV-1a over the node count and the canonical channel list (src, dst,
  /// width). Two topologies hash equal iff a Network built on one is
  /// structurally interchangeable with the other — recorded in telemetry
  /// manifests and validated on snapshot restore and table load.
  [[nodiscard]] std::uint64_t content_hash() const noexcept {
    return content_hash_;
  }

 protected:
  Topology(TopoKind kind, std::string name)
      : kind_(kind), name_(std::move(name)) {}

  /// Derived constructors call this once num_nodes_ and channels_ are final:
  /// validates dense canonical ids, then builds the CSR adjacency and the
  /// content hash.
  void finalize();

  TopoKind kind_;
  std::string name_;
  NodeId num_nodes_ = 0;
  std::vector<ChannelDesc> channels_;
  double avg_distance_ = 0.0;

 private:
  std::vector<std::size_t> out_offsets_;  // per-node CSR offsets into out_list_
  std::vector<ChannelId> out_list_;
  std::uint64_t content_hash_ = 0;
};

/// The assert-and-cast helper for code that genuinely needs torus structure
/// (coordinates, dimensions, wrap links). Throws std::logic_error naming the
/// offending topology when it is not a k-ary n-cube.
[[nodiscard]] const KAryNCube& torus_topology(const Topology& topo);

}  // namespace flexnet
