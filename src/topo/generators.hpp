// Built-in explicit-graph topology generators. Each returns a
// GraphTopology::Spec (node count + link list) so callers can either build
// the topology or write the spec out as a flexnet-topo-v1 file (topo_dump
// --emit). All generators are deterministic: the same parameters (and seed,
// for the random family) always produce the identical canonical link list.
#pragma once

#include <cstdint>

#include "topo/graph_topology.hpp"

namespace flexnet {

/// Every ordered pair of nodes directly linked (Cano et al.'s HOTI 2025
/// subject: deadlock-free by construction under 1-hop minimal routing).
[[nodiscard]] GraphTopology::Spec full_mesh_spec(NodeId nodes);

/// Canonical dragonfly: `routers_per_group` routers per group (a), each with
/// `global_links_per_router` global links (h), giving g = a*h + 1 groups and
/// a*(a*h + 1) nodes. Groups are internally fully meshed; global links use
/// the consecutive arrangement. All links bidirectional.
[[nodiscard]] GraphTopology::Spec dragonfly_spec(int routers_per_group,
                                                 int global_links_per_router);

/// Random connected irregular graph: a random spanning tree guarantees
/// connectivity, then extra random edges are added until the average
/// undirected degree reaches `degree`. All links bidirectional; fully
/// deterministic in (nodes, degree, seed).
[[nodiscard]] GraphTopology::Spec random_irregular_spec(NodeId nodes,
                                                        int degree,
                                                        std::uint64_t seed);

}  // namespace flexnet
