// Spatial shard partitioner for the parallel stepping engine.
//
// A shard plan assigns every router to one of `shards` contiguous-work
// domains so that each worker thread owns a connected, similarly-sized
// region of the network and most channels stay shard-internal:
//
//  * k-ary n-cubes: node ids are row-major coordinates, so equal contiguous
//    id slabs are axis-aligned spatial blocks (the highest dimension varies
//    slowest) — the classic torus decomposition, no graph work needed;
//  * every other topology: nodes are renumbered by BFS from node 0 over the
//    channel list (the same canonical order every construction produces) and
//    the BFS sequence is cut into equal chunks, which keeps each shard a
//    mostly-connected neighborhood of the graph without a full partitioner.
//
// Correctness never depends on the assignment — the sharded engine commits
// results in canonical component order, so ANY map from nodes to shards
// yields byte-identical runs; the plan only controls locality and balance.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace flexnet {

class Topology;

/// A node -> shard assignment. Shard ids are dense [0, shards) and every
/// shard owns at least one node (shards is clamped to num_nodes).
struct ShardPlan {
  std::int32_t shards = 1;
  std::vector<std::int32_t> node_shard;  ///< size == num_nodes

  [[nodiscard]] std::int32_t shard_of(NodeId node) const noexcept {
    return node_shard[static_cast<std::size_t>(node)];
  }
};

/// Builds the plan described above. `shards` < 1 is an error; `shards` >
/// num_nodes is clamped so every shard stays non-empty.
[[nodiscard]] ShardPlan make_shard_plan(const Topology& topo,
                                        std::int32_t shards);

}  // namespace flexnet
