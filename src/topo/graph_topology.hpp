// Explicit-link topology: any strongly connected directed graph, described
// by a node count plus a link list. Covers the built-in generators (full
// mesh, dragonfly, random irregular — src/topo/generators.hpp) and topology
// files (src/topo/topo_file.hpp).
//
// Canonical channel ordering: links sorted by (src, dst); construction
// rejects duplicates, self-loops, dangling endpoints and disconnected
// graphs, so every downstream layer can assume a well-formed network.
// Distances come from an all-pairs BFS matrix computed once at construction
// (flat N*N array — O(1) lookups on the routing path).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace flexnet {

/// Hard cap on explicit-graph nodes: keeps the N*N distance matrix (and the
/// routing tables built on top of it) within tens of megabytes.
inline constexpr NodeId kMaxGraphNodes = 4096;

class GraphTopology final : public Topology {
 public:
  /// Construction recipe. `links` are directed; generators emit both
  /// directions explicitly for bidirectional connectivity.
  struct Spec {
    TopoKind kind = TopoKind::File;
    std::string name;
    NodeId nodes = 0;
    std::vector<TopoLink> links;
  };

  /// Validates and canonicalizes the spec; throws std::invalid_argument
  /// naming the first defect (out-of-range endpoint, self-loop, duplicate
  /// link, disconnected graph, node/link caps).
  explicit GraphTopology(Spec spec);

  [[nodiscard]] int min_distance(NodeId from, NodeId to) const noexcept override {
    return dist_[static_cast<std::size_t>(from) *
                     static_cast<std::size_t>(num_nodes_) +
                 static_cast<std::size_t>(to)];
  }

 private:
  void build_distance_matrix();

  std::vector<std::uint16_t> dist_;  // flat [from][to] minimal hop counts
};

}  // namespace flexnet
