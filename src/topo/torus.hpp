// k-ary n-cube topology (torus), the network family studied by the paper,
// with unidirectional or bidirectional channels, plus the mesh variant
// (wrap-around disabled) used by the turn-model routing extension.
#pragma once

#include <array>
#include <vector>

#include "sim/types.hpp"
#include "topo/coordinates.hpp"
#include "topo/topology.hpp"

namespace flexnet {

struct TopologyConfig {
  int k = 16;                 ///< Nodes per dimension (radix).
  int n = 2;                  ///< Number of dimensions.
  bool bidirectional = true;  ///< Channels in both +/- directions per dim.
  bool wrap = true;           ///< Torus (true) or mesh (false).
};

/// Minimal directions within one dimension: zero (aligned), one, or two
/// (bidirectional torus with the destination exactly halfway around).
struct DimRoute {
  std::array<int, 2> dirs{};
  int count = 0;
};

class KAryNCube final : public Topology {
 public:
  explicit KAryNCube(const TopologyConfig& config);

  [[nodiscard]] const TopologyConfig& config() const noexcept { return config_; }
  [[nodiscard]] int radix() const noexcept { return config_.k; }
  [[nodiscard]] int dimensions() const noexcept { return config_.n; }
  [[nodiscard]] bool bidirectional() const noexcept { return config_.bidirectional; }
  [[nodiscard]] bool wrap() const noexcept { return config_.wrap; }
  [[nodiscard]] const Coordinates& coordinates() const noexcept { return coords_; }

  /// Outgoing channel at `node` along (dim, dir); kInvalidChannel if absent
  /// (unidirectional -1 direction, or mesh boundary).
  [[nodiscard]] ChannelId out_channel(NodeId node, int dim, int dir) const noexcept;

  /// Hops required along `dim` to align `from` with `to`.
  [[nodiscard]] int dim_distance(NodeId from, NodeId to, int dim) const noexcept;

  /// Total minimal hop distance.
  [[nodiscard]] int min_distance(NodeId from, NodeId to) const noexcept override;

  /// Directions along `dim` that reduce distance (the routing relation's raw
  /// material). On a bidirectional torus with the destination exactly k/2
  /// away both directions are minimal.
  [[nodiscard]] DimRoute minimal_dirs(NodeId from, NodeId to, int dim) const noexcept;

  /// The per-dimension check: a hop is minimal iff its direction is one of
  /// minimal_dirs for its dimension (historical misroute semantics — on a
  /// bidirectional torus with the destination halfway around, both
  /// directions count as minimal).
  [[nodiscard]] bool hop_is_minimal(const ChannelDesc& ch,
                                    NodeId dst) const override;

  [[nodiscard]] const KAryNCube* as_torus() const noexcept override {
    return this;
  }

 private:
  [[nodiscard]] std::size_t port_index(NodeId node, int dim, int dir) const noexcept;
  [[nodiscard]] double compute_average_distance() const;

  TopologyConfig config_;
  Coordinates coords_;
  std::vector<ChannelId> out_table_;  // node-major [node][dim][dir]
};

}  // namespace flexnet
