// Snapshot subsystem: binary codec round trips, the byte-identical
// save → load → step N determinism guarantee (DOR and TFAR at saturation),
// checkpoint/resume equivalence including bit-exact WindowMetrics, deadlock
// corpus capture + replay, and corrupt-input rejection.
#include "snapshot/snapshot.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "snapshot/corpus.hpp"
#include "util/binio.hpp"

namespace flexnet {
namespace {

// ---------------------------------------------------------------- binio

TEST(BinIo, ScalarRoundTrip) {
  BinWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefULL);
  w.i32(-12345);
  w.i64(-9876543210LL);
  w.f64(3.141592653589793);
  w.f64(-0.0);
  w.str("hello");

  BinReader r(w.bytes().data(), w.size());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i32(), -12345);
  EXPECT_EQ(r.i64(), -9876543210LL);
  EXPECT_DOUBLE_EQ(r.f64(), 3.141592653589793);
  EXPECT_TRUE(std::signbit(r.f64()));  // -0.0 survives bit-exactly
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.done());
}

TEST(BinIo, LittleEndianLayoutIsFixed) {
  BinWriter w;
  w.u32(0x01020304u);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x04);
  EXPECT_EQ(w.bytes()[3], 0x01);
}

TEST(BinIo, ReaderThrowsOnOverrun) {
  BinWriter w;
  w.u32(7);
  BinReader r(w.bytes().data(), w.size());
  (void)r.u32();
  EXPECT_THROW((void)r.u8(), std::runtime_error);
  BinReader r2(w.bytes().data(), w.size());
  EXPECT_THROW((void)r2.u64(), std::runtime_error);  // 8 > 4 available
}

TEST(BinIo, PatchU64BackfillsSectionLengths) {
  BinWriter w;
  const std::size_t at = w.size();
  w.u64(0);
  w.str("payload");
  w.patch_u64(at, 123);
  BinReader r(w.bytes().data(), w.size());
  EXPECT_EQ(r.u64(), 123u);
}

// ---------------------------------------------------------------- codecs

TEST(SnapshotCodec, ConfigRoundTrip) {
  SimConfig sim;
  sim.topology = {4, 3, false, false};
  sim.vcs = 3;
  sim.buffer_depth = 7;
  sim.message_length = 12;
  sim.short_message_fraction = 0.25;
  sim.routing = RoutingKind::DuatoTFAR;
  sim.selection = SelectionKind::Random;
  sim.max_misroutes = 2;
  sim.link_fault_fraction = 0.125;
  sim.source_queue_limit = 9;
  sim.seed = 0xfeedfaceULL;

  TrafficConfig traffic;
  traffic.pattern = TrafficKind::HotSpot;
  traffic.load = 0.65;
  traffic.hotspot_nodes = 2;
  traffic.hybrid_fraction = 0.1;
  traffic.hybrid_with = TrafficKind::Tornado;

  DetectorConfig det;
  det.interval = 25;
  det.recovery = RecoveryKind::RemoveRandom;
  det.require_quiescence = false;
  det.count_total_cycles = true;
  det.livelock_hop_limit = 99;

  BinWriter w;
  save_sim_config(w, sim);
  save_traffic_config(w, traffic);
  save_detector_config(w, det);
  BinReader r(w.bytes().data(), w.size());
  const SimConfig sim2 = load_sim_config(r);
  const TrafficConfig traffic2 = load_traffic_config(r);
  const DetectorConfig det2 = load_detector_config(r);
  EXPECT_TRUE(r.done());

  EXPECT_EQ(sim2.topology.k, 4);
  EXPECT_EQ(sim2.topology.n, 3);
  EXPECT_FALSE(sim2.topology.bidirectional);
  EXPECT_FALSE(sim2.topology.wrap);
  EXPECT_EQ(sim2.vcs, 3);
  EXPECT_EQ(sim2.buffer_depth, 7);
  EXPECT_EQ(sim2.message_length, 12);
  EXPECT_DOUBLE_EQ(sim2.short_message_fraction, 0.25);
  EXPECT_EQ(sim2.routing, RoutingKind::DuatoTFAR);
  EXPECT_EQ(sim2.selection, SelectionKind::Random);
  EXPECT_EQ(sim2.max_misroutes, 2);
  EXPECT_DOUBLE_EQ(sim2.link_fault_fraction, 0.125);
  EXPECT_EQ(sim2.source_queue_limit, 9);
  EXPECT_EQ(sim2.seed, 0xfeedfaceULL);
  EXPECT_EQ(traffic2.pattern, TrafficKind::HotSpot);
  EXPECT_DOUBLE_EQ(traffic2.load, 0.65);
  EXPECT_EQ(traffic2.hotspot_nodes, 2);
  EXPECT_EQ(traffic2.hybrid_with, TrafficKind::Tornado);
  EXPECT_EQ(det2.interval, 25);
  EXPECT_EQ(det2.recovery, RecoveryKind::RemoveRandom);
  EXPECT_FALSE(det2.require_quiescence);
  EXPECT_TRUE(det2.count_total_cycles);
  EXPECT_EQ(det2.livelock_hop_limit, 99);
}

TEST(SnapshotCodec, RejectsBadMagicVersionAndTruncation) {
  ExperimentConfig cfg;
  cfg.sim.topology = {4, 1, false, true};
  cfg.sim.routing = RoutingKind::DOR;
  Simulation sim(cfg);
  const std::vector<std::uint8_t> bytes = encode_snapshot(sim.make_checkpoint());

  std::vector<std::uint8_t> bad = bytes;
  bad[0] ^= 0xff;
  EXPECT_THROW((void)decode_snapshot(bad.data(), bad.size()),
               std::runtime_error);

  std::vector<std::uint8_t> wrong_version = bytes;
  wrong_version[12] = 99;  // version word follows the 12-byte magic
  EXPECT_THROW((void)decode_snapshot(wrong_version.data(), wrong_version.size()),
               std::runtime_error);

  for (const std::size_t cut : {bytes.size() / 2, bytes.size() - 3}) {
    EXPECT_THROW((void)decode_snapshot(bytes.data(), cut), std::runtime_error);
  }
}

TEST(SnapshotCodec, RestoreIntoMismatchedTopologyThrows) {
  ExperimentConfig cfg;
  cfg.sim.topology = {4, 2, false, true};
  cfg.sim.routing = RoutingKind::DOR;
  Simulation sim(cfg);
  sim.run_cycles(50);
  Snapshot snap = sim.make_checkpoint();
  snap.sim.topology.k = 8;  // state no longer fits the claimed shape
  EXPECT_THROW((void)restore_snapshot(snap), std::runtime_error);
}

// ------------------------------------------------- round-trip determinism

// Serializes the network's full dynamic state for byte comparison: equality
// here means flit-for-flit identical evolution (buffers, message table with
// per-message delivery cycles, counters, RNG position).
std::vector<std::uint8_t> state_bytes(const Network& net) {
  BinWriter w;
  net.save_state(w);
  return w.bytes();
}

void step_restored(RestoredSim& r, Cycle cycles) {
  for (Cycle i = 0; i < cycles; ++i) {
    r.injection->tick(*r.net);
    r.net->step();
    r.detector->tick(*r.net);
  }
}

class RoundTripDeterminism : public ::testing::TestWithParam<RoutingKind> {};

TEST_P(RoundTripDeterminism, SaveLoadStepMatchesStepExactly) {
  // Saturation load on an 8-ary 2-cube, where deep congestion (and for DOR /
  // TFAR with unrestricted VCs, genuine deadlock + recovery) exercises every
  // serialized structure: VC chains, request sets, source queue backlogs,
  // detector RNG victim draws.
  ExperimentConfig cfg;
  cfg.sim.topology.k = 8;
  cfg.sim.topology.n = 2;
  cfg.sim.topology.bidirectional = GetParam() != RoutingKind::DOR;
  cfg.sim.routing = GetParam();
  cfg.sim.vcs = GetParam() == RoutingKind::DOR ? 1 : 2;
  cfg.sim.message_length = 16;
  cfg.traffic.load = 0.95;
  cfg.sim.seed = 2026;
  cfg.detector.interval = 50;

  Simulation sim(cfg);
  sim.run_cycles(1000);

  const Snapshot snap = sim.make_checkpoint();
  // Encode → decode through the file format, not just the in-memory struct.
  const std::vector<std::uint8_t> bytes = encode_snapshot(snap);
  RestoredSim restored = restore_snapshot(decode_snapshot(bytes.data(), bytes.size()));

  ASSERT_EQ(restored.net->now(), sim.network().now());
  ASSERT_EQ(state_bytes(*restored.net), state_bytes(sim.network()));

  // Step both 5000 cycles and compare the complete state byte-for-byte.
  sim.run_cycles(5000);
  step_restored(restored, 5000);

  EXPECT_EQ(state_bytes(*restored.net), state_bytes(sim.network()));
  EXPECT_EQ(restored.net->counters().delivered, sim.network().counters().delivered);
  EXPECT_EQ(restored.net->counters().recovered, sim.network().counters().recovered);
  EXPECT_EQ(restored.detector->total_deadlocks(), sim.detector().total_deadlocks());
  EXPECT_EQ(restored.detector->transient_knots(), sim.detector().transient_knots());
  EXPECT_EQ(restored.detector->records().size(), sim.detector().records().size());
  // And the follow-on evolution stays locked after another save/load.
  BinWriter wa, wb;
  restored.detector->save_state(wa);
  sim.detector().save_state(wb);
  EXPECT_EQ(wa.bytes(), wb.bytes());
}

INSTANTIATE_TEST_SUITE_P(Routings, RoundTripDeterminism,
                         ::testing::Values(RoutingKind::DOR, RoutingKind::TFAR));

// ------------------------------------------------------ checkpoint/resume

ExperimentConfig resume_base_config() {
  ExperimentConfig cfg;
  cfg.sim.topology.k = 4;
  cfg.sim.topology.n = 2;
  cfg.sim.topology.bidirectional = false;
  cfg.sim.routing = RoutingKind::DOR;
  cfg.sim.message_length = 8;
  cfg.sim.seed = 7;
  cfg.traffic.load = 0.8;
  cfg.detector.interval = 50;
  cfg.run.warmup = 500;
  cfg.run.measure = 1500;
  return cfg;
}

void expect_same_window(const WindowMetrics& a, const WindowMetrics& b) {
  EXPECT_EQ(a.window_cycles, b.window_cycles);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.recovered, b.recovered);
  EXPECT_EQ(a.flits_delivered, b.flits_delivered);
  EXPECT_EQ(a.avg_latency, b.avg_latency);  // exact: same sums, same counts
  EXPECT_EQ(a.avg_hops, b.avg_hops);
  EXPECT_EQ(a.deadlocks, b.deadlocks);
  EXPECT_EQ(a.normalized_deadlocks, b.normalized_deadlocks);
  EXPECT_EQ(a.blocked_messages.count(), b.blocked_messages.count());
  EXPECT_EQ(a.blocked_messages.mean(), b.blocked_messages.mean());
  EXPECT_EQ(a.blocked_fraction.mean(), b.blocked_fraction.mean());
  EXPECT_EQ(a.in_network_messages.mean(), b.in_network_messages.mean());
  EXPECT_EQ(a.queued_messages.mean(), b.queued_messages.mean());
  EXPECT_EQ(a.deadlock_set_size.mean(), b.deadlock_set_size.mean());
  EXPECT_EQ(a.resource_set_size.mean(), b.resource_set_size.mean());
  EXPECT_EQ(a.single_cycle_deadlocks, b.single_cycle_deadlocks);
  EXPECT_EQ(a.multi_cycle_deadlocks, b.multi_cycle_deadlocks);
}

TEST(CheckpointResume, MidMeasurementResumeReproducesTheWindowBitExactly) {
  const std::string dir = ::testing::TempDir() + "flexnet_ckpt_measure";
  std::filesystem::remove_all(dir);

  ExperimentConfig with_ckpt = resume_base_config();
  with_ckpt.snapshot.checkpoint_every = 700;
  with_ckpt.snapshot.checkpoint_dir = dir;
  const ExperimentResult full = run_experiment(with_ckpt);

  // Cycle 1400 is inside the measurement window (warmup ends at 500).
  ExperimentConfig resume;
  resume.snapshot.resume_path = dir + "/ckpt-1400.snap";
  const ExperimentResult resumed = run_experiment(resume);

  expect_same_window(full.window, resumed.window);
  EXPECT_EQ(full.normalized_throughput, resumed.normalized_throughput);
  EXPECT_EQ(resumed.resumed_from, resume.snapshot.resume_path);
  EXPECT_EQ(resumed.resumed_at_cycle, 1400);
  EXPECT_TRUE(full.resumed_from.empty());
}

TEST(CheckpointResume, MidWarmupResumeReproducesTheWindowBitExactly) {
  const std::string dir = ::testing::TempDir() + "flexnet_ckpt_warmup";
  std::filesystem::remove_all(dir);

  ExperimentConfig with_ckpt = resume_base_config();
  with_ckpt.snapshot.checkpoint_every = 300;
  with_ckpt.snapshot.checkpoint_dir = dir;
  const ExperimentResult full = run_experiment(with_ckpt);

  // Cycle 300 is still warming up: the resumed run must finish warmup, open
  // its own window, and land on the identical metrics.
  ExperimentConfig resume;
  resume.snapshot.resume_path = dir + "/ckpt-300.snap";
  const ExperimentResult resumed = run_experiment(resume);

  expect_same_window(full.window, resumed.window);
  EXPECT_EQ(resumed.resumed_at_cycle, 300);
}

TEST(CheckpointResume, CheckpointsAppearOnSchedule) {
  const std::string dir = ::testing::TempDir() + "flexnet_ckpt_schedule";
  std::filesystem::remove_all(dir);
  ExperimentConfig cfg = resume_base_config();
  cfg.run.warmup = 100;
  cfg.run.measure = 200;
  cfg.snapshot.checkpoint_every = 100;
  cfg.snapshot.checkpoint_dir = dir;
  (void)run_experiment(cfg);
  for (const Cycle c : {100, 200, 300}) {
    EXPECT_TRUE(std::filesystem::exists(dir + "/ckpt-" + std::to_string(c) +
                                        ".snap"))
        << "missing checkpoint at cycle " << c;
  }
  const Snapshot snap = read_snapshot_file(dir + "/ckpt-200.snap");
  EXPECT_EQ(snap.meta.kind, SnapshotKind::Checkpoint);
  EXPECT_EQ(snap.meta.cycle, 200);
  EXPECT_TRUE(snap.meta.measuring);
  EXPECT_EQ(snap.meta.warmup, 100);
  EXPECT_EQ(snap.meta.measure, 200);
}

// ------------------------------------------------------------- corpus

TEST(DeadlockCorpusTest, CapturesDedupedSnapshotsThatReplay) {
  const std::string dir = ::testing::TempDir() + "flexnet_corpus";
  std::filesystem::remove_all(dir);

  ExperimentConfig cfg = resume_base_config();
  cfg.run.warmup = 200;
  cfg.run.measure = 800;
  cfg.snapshot.capture_dir = dir;
  cfg.snapshot.capture_limit = 6;
  const ExperimentResult result = run_experiment(cfg);

  ASSERT_GT(result.deadlocks_captured, 0);
  EXPECT_LE(result.deadlocks_captured, 6);
  // Every confirmed knot is either captured, deduped, or dropped by the cap
  // (the hook also runs during warmup, so the total can exceed the window's).
  EXPECT_GE(result.deadlocks_captured + result.capture_duplicates +
                result.capture_dropped,
            result.window.deadlocks);

  int files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const Snapshot snap = read_snapshot_file(entry.path().string());
    EXPECT_EQ(snap.meta.kind, SnapshotKind::DeadlockCapture);
    EXPECT_GT(snap.meta.deadlock_set_size, 0);
    const ReplayResult replay = replay_capture(snap);
    EXPECT_TRUE(replay.knot_found) << entry.path();
    EXPECT_TRUE(replay.matches) << entry.path() << ": " << replay.detail;
    ++files;
  }
  EXPECT_EQ(files, result.deadlocks_captured);
}

TEST(DeadlockCorpusTest, ReplayRejectsCheckpointSnapshots) {
  ExperimentConfig cfg;
  cfg.sim.topology = {4, 1, false, true};
  cfg.sim.routing = RoutingKind::DOR;
  Simulation sim(cfg);
  EXPECT_THROW((void)replay_capture(sim.make_checkpoint()), std::runtime_error);
}

}  // namespace
}  // namespace flexnet
