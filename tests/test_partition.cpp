// Shard-plan partitioner: totality, balance, torus slab contiguity, BFS
// locality for irregular graphs, and the clamping/validation contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/config.hpp"
#include "topo/factory.hpp"
#include "topo/partition.hpp"
#include "topo/topology.hpp"

namespace flexnet {
namespace {

std::shared_ptr<const Topology> torus(int k, int n) {
  SimConfig cfg;
  cfg.topology.k = k;
  cfg.topology.n = n;
  return make_topology(cfg);
}

std::vector<std::int32_t> shard_sizes(const ShardPlan& plan, NodeId nodes) {
  std::vector<std::int32_t> sizes(static_cast<std::size_t>(plan.shards), 0);
  for (NodeId n = 0; n < nodes; ++n) {
    ++sizes[static_cast<std::size_t>(plan.shard_of(n))];
  }
  return sizes;
}

TEST(Partition, TotalBalancedAndDense) {
  const auto topo = torus(8, 2);  // 64 nodes
  for (const std::int32_t shards : {1, 2, 3, 7, 8, 64}) {
    SCOPED_TRACE(shards);
    const ShardPlan plan = make_shard_plan(*topo, shards);
    EXPECT_EQ(plan.shards, shards);
    ASSERT_EQ(plan.node_shard.size(), 64u);
    const auto sizes = shard_sizes(plan, 64);
    // Every shard non-empty, sizes differ by at most one.
    const auto [lo, hi] = std::minmax_element(sizes.begin(), sizes.end());
    EXPECT_GE(*lo, 1);
    EXPECT_LE(*hi - *lo, 1);
  }
}

TEST(Partition, TorusShardsAreContiguousIdSlabs) {
  // Row-major torus ids: each shard must be one consecutive id range
  // (axis-aligned spatial blocks), in ascending shard order.
  const auto topo = torus(16, 2);  // 256 nodes
  const ShardPlan plan = make_shard_plan(*topo, 8);
  std::int32_t current = 0;
  for (NodeId n = 0; n < 256; ++n) {
    const std::int32_t s = plan.shard_of(n);
    ASSERT_TRUE(s == current || s == current + 1) << "node " << n;
    current = s;
  }
  EXPECT_EQ(current, 7);
}

TEST(Partition, UnevenSplitGivesExtrasToLowShards) {
  const auto topo = torus(5, 1);  // 5 nodes, 3 shards -> 2/2/1
  const ShardPlan plan = make_shard_plan(*topo, 3);
  EXPECT_EQ(shard_sizes(plan, 5), (std::vector<std::int32_t>{2, 2, 1}));
}

TEST(Partition, IrregularGraphChunksStayConnectedNeighborhoods) {
  SimConfig cfg;
  cfg.topo_kind = TopoKind::RandomIrregular;
  cfg.topo_nodes = 48;
  cfg.topo_degree = 3;
  cfg.topo_seed = 7;
  const auto topo = make_topology(cfg);
  const ShardPlan plan = make_shard_plan(*topo, 4);
  const auto sizes = shard_sizes(plan, topo->num_nodes());
  ASSERT_EQ(sizes, (std::vector<std::int32_t>{12, 12, 12, 12}));

  // BFS-chunk assignment is a locality heuristic: on an expander-like random
  // regular graph no good cut exists, so demand only that it clearly beats a
  // random node->shard map (expected internal fraction 1/shards = 25%).
  std::size_t internal = 0;
  for (const ChannelDesc& ch : topo->channels()) {
    if (plan.shard_of(ch.src) == plan.shard_of(ch.dst)) ++internal;
  }
  EXPECT_GT(internal * 3, topo->channels().size());
}

TEST(Partition, ClampsToNodeCountAndRejectsNonPositive) {
  const auto topo = torus(4, 1);  // 4 nodes
  EXPECT_THROW(make_shard_plan(*topo, 0), std::invalid_argument);
  EXPECT_THROW(make_shard_plan(*topo, -3), std::invalid_argument);
  const ShardPlan plan = make_shard_plan(*topo, 99);
  EXPECT_EQ(plan.shards, 4);  // clamped: every shard owns >= 1 node
  EXPECT_EQ(shard_sizes(plan, 4), (std::vector<std::int32_t>{1, 1, 1, 1}));
}

TEST(Partition, DeterministicAcrossCalls) {
  const auto topo = torus(8, 2);
  const ShardPlan a = make_shard_plan(*topo, 6);
  const ShardPlan b = make_shard_plan(*topo, 6);
  EXPECT_EQ(a.node_shard, b.node_shard);
}

}  // namespace
}  // namespace flexnet
