#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/csv.hpp"
#include "util/options.hpp"
#include "util/parallel.hpp"

namespace flexnet {
namespace {

// ---------------------------------------------------------------- Options

TEST(Options, ParsesAllForms) {
  const char* argv[] = {"prog",     "--alpha", "1",         "--beta=two",
                        "--flag",   "--gamma", "3.5",       "positional",
                        "--truthy"};
  const auto opts = Options::parse(9, argv);
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->get_int("alpha", 0), 1);
  EXPECT_EQ(opts->get("beta"), "two");
  EXPECT_TRUE(opts->get_bool("flag", false));
  EXPECT_DOUBLE_EQ(opts->get_double("gamma", 0.0), 3.5);
  EXPECT_TRUE(opts->get_bool("truthy", false));
  ASSERT_EQ(opts->positional().size(), 1u);
  EXPECT_EQ(opts->positional()[0], "positional");
}

TEST(Options, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  const auto opts = Options::parse(1, argv);
  ASSERT_TRUE(opts.has_value());
  EXPECT_FALSE(opts->has("missing"));
  EXPECT_EQ(opts->get("missing", "fallback"), "fallback");
  EXPECT_EQ(opts->get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(opts->get_double("missing", 2.5), 2.5);
  EXPECT_TRUE(opts->get_bool("missing", true));
}

TEST(Options, BoolSpellings) {
  const char* argv[] = {"prog", "--a=1", "--b=true", "--c=on", "--d=no"};
  const auto opts = Options::parse(5, argv);
  ASSERT_TRUE(opts.has_value());
  EXPECT_TRUE(opts->get_bool("a", false));
  EXPECT_TRUE(opts->get_bool("b", false));
  EXPECT_TRUE(opts->get_bool("c", false));
  EXPECT_FALSE(opts->get_bool("d", true));
}

TEST(Options, StrictIntParsingRejectsGarbageOverflowAndEmpty) {
  const char* argv[] = {"prog",           "--trailing", "1e9x",
                        "--huge",         "99999999999999999999",
                        "--tiny",         "-99999999999999999999",
                        "--empty=",       "--floaty",   "3.5",
                        "--spacey",       "12 ",        "--ok",
                        "-42",            "--plus",     "+7"};
  const auto opts = Options::parse(16, argv);
  ASSERT_TRUE(opts.has_value());
  // "1e9x" silently truncating to 1 is exactly the bug this guards against.
  EXPECT_THROW((void)opts->get_int("trailing", 0), std::invalid_argument);
  EXPECT_THROW((void)opts->get_int("huge", 0), std::invalid_argument);
  EXPECT_THROW((void)opts->get_int("tiny", 0), std::invalid_argument);
  EXPECT_THROW((void)opts->get_int("empty", 0), std::invalid_argument);
  EXPECT_THROW((void)opts->get_int("floaty", 0), std::invalid_argument);
  EXPECT_THROW((void)opts->get_int("spacey", 0), std::invalid_argument);
  EXPECT_EQ(opts->get_int("ok", 0), -42);
  EXPECT_EQ(opts->get_int("plus", 0), 7);
  // The error message names the offending option and value.
  try {
    (void)opts->get_int("trailing", 0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("trailing"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1e9x"), std::string::npos);
  }
}

TEST(Options, StrictDoubleParsingRejectsGarbageAndOverflow) {
  const char* argv[] = {"prog",      "--trailing", "0.5x", "--huge", "1e999",
                        "--empty=",  "--ok",       "2.5",  "--sci",  "1e-3"};
  const auto opts = Options::parse(10, argv);
  ASSERT_TRUE(opts.has_value());
  EXPECT_THROW((void)opts->get_double("trailing", 0.0), std::invalid_argument);
  EXPECT_THROW((void)opts->get_double("huge", 0.0), std::invalid_argument);
  EXPECT_THROW((void)opts->get_double("empty", 0.0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(opts->get_double("ok", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(opts->get_double("sci", 0.0), 1e-3);
}

TEST(Options, RejectsBareDashes) {
  const char* argv[] = {"prog", "--"};
  std::string error;
  EXPECT_FALSE(Options::parse(2, argv, &error).has_value());
  EXPECT_FALSE(error.empty());
}

// ------------------------------------------------------------------- CSV

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvWriter::escape("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b"});
  csv.row({"1", "x,y"});
  EXPECT_EQ(out.str(), "a,b\n1,\"x,y\"\n");
}

TEST(TableWriter, AlignsColumns) {
  std::ostringstream out;
  TableWriter table("demo");
  table.header({"col", "value"});
  table.row({"x", "1"});
  table.row({"longer", "2"});
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("== demo =="), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TableWriter, NumberFormatting) {
  EXPECT_EQ(TableWriter::num(1.23456, 2), "1.23");
  EXPECT_EQ(TableWriter::num(std::nan(""), 2), "-");
  EXPECT_EQ(TableWriter::integer(-42), "-42");
}

// -------------------------------------------------------------- parallel

TEST(Parallel, RunsEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  parallel_for(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(Parallel, ZeroCountIsNoop) {
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(8,
                   [](std::size_t i) {
                     if (i == 3) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(Parallel, WorkerCountIsPositive) {
  EXPECT_GE(worker_thread_count(), 1u);
}

TEST(BenchScale, DefaultsToOne) {
  // The test environment does not set FLEXNET_BENCH_SCALE.
  EXPECT_DOUBLE_EQ(bench_scale(), 1.0);
}

}  // namespace
}  // namespace flexnet
