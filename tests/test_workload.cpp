// Workload subsystem: flexnet-trace-v1 strict parsing, pace profile specs
// and files, capture -> replay determinism (bit-exact windows, byte-identical
// metrics streams, manifests identical modulo the workload/profile blocks),
// mid-trace checkpoint/resume bit-exactness, serial vs parallel pace sweep
// equality, and per-class telemetry consistency.
#include "workload/workload.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/sweep.hpp"
#include "routing/routing.hpp"
#include "routing/selection.hpp"
#include "sim/network.hpp"
#include "util/json.hpp"
#include "workload/pace.hpp"
#include "workload/replay.hpp"
#include "workload/trace_file.hpp"

namespace flexnet {
namespace {

// ---------------------------------------------------------------- helpers

std::string valid_trace_text() {
  return "flexnet-trace-v1\n"
         "nodes 16\n"
         "pattern Uniform\n"
         "load 0.5\n"
         "hotspots 0\n"
         "hotspot_fraction 0\n"
         "hybrid_fraction 0\n"
         "hybrid_with Uniform\n"
         "avg_distance 2\n"
         "capacity 2\n"
         "offered 1\n"
         "# a comment line\n"
         "msg 0 0 5 8 bulk\n"
         "msg 0 3 9 8 burst\n"
         "msg 7 1 2 4 interactive\n"
         "end 3\n";
}

TraceData parse_text(const std::string& text) {
  std::istringstream in(text);
  return read_trace(in, "test");
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Removes the fields a capture run and its replay legitimately disagree on:
// the workload config block, the wall-clock profile section, and the metrics
// stream path. Everything else must match byte-for-byte.
void strip_manifest(JsonValue& manifest) {
  std::erase_if(manifest.object,
                [](const auto& m) { return m.first == "profile"; });
  for (auto& [key, value] : manifest.object) {
    if (key == "config") {
      std::erase_if(value.object,
                    [](const auto& m) { return m.first == "workload"; });
    }
    if (key == "metrics") {
      std::erase_if(value.object,
                    [](const auto& m) { return m.first == "path"; });
    }
  }
}

bool same_json(const JsonValue& a, const JsonValue& b) {
  if (a.type != b.type) return false;
  switch (a.type) {
    case JsonValue::Type::Null:
      return true;
    case JsonValue::Type::Bool:
      return a.boolean == b.boolean;
    case JsonValue::Type::Number:
      return a.number == b.number;
    case JsonValue::Type::String:
      return a.string == b.string;
    case JsonValue::Type::Array:
      if (a.array.size() != b.array.size()) return false;
      for (std::size_t i = 0; i < a.array.size(); ++i) {
        if (!same_json(a.array[i], b.array[i])) return false;
      }
      return true;
    case JsonValue::Type::Object:
      if (a.object.size() != b.object.size()) return false;
      for (std::size_t i = 0; i < a.object.size(); ++i) {
        if (a.object[i].first != b.object[i].first) return false;
        if (!same_json(a.object[i].second, b.object[i].second)) return false;
      }
      return true;
  }
  return false;
}

void expect_same_window(const WindowMetrics& a, const WindowMetrics& b) {
  EXPECT_EQ(a.window_cycles, b.window_cycles);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.recovered, b.recovered);
  EXPECT_EQ(a.flits_delivered, b.flits_delivered);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.avg_hops, b.avg_hops);
  EXPECT_EQ(a.deadlocks, b.deadlocks);
  for (const MessageClass cls : all_message_classes()) {
    const std::size_t k = class_index(cls);
    EXPECT_EQ(a.classes[k].generated, b.classes[k].generated);
    EXPECT_EQ(a.classes[k].delivered, b.classes[k].delivered);
    EXPECT_EQ(a.classes[k].recovered, b.classes[k].recovered);
    EXPECT_EQ(a.classes[k].avg_latency, b.classes[k].avg_latency);
    EXPECT_EQ(a.classes[k].deadlock_participants,
              b.classes[k].deadlock_participants);
  }
}

SimConfig small_sim_config() {
  SimConfig cfg;
  cfg.topology.k = 4;
  cfg.topology.n = 2;
  cfg.message_length = 8;
  cfg.routing = RoutingKind::DOR;
  return cfg;
}

std::unique_ptr<Network> make_network(const SimConfig& cfg) {
  return std::make_unique<Network>(
      cfg, NetworkDeps{nullptr, make_routing(cfg),
                       make_selection(cfg.selection)});
}

// ---------------------------------------------------------------- trace file

TEST(TraceFormat, WriteReadRoundTrip) {
  const TraceData data = parse_text(valid_trace_text());
  ASSERT_EQ(data.records.size(), 3u);
  EXPECT_EQ(data.header.nodes, 16);
  EXPECT_EQ(data.header.traffic.pattern, TrafficKind::Uniform);
  EXPECT_EQ(data.header.traffic.load, 0.5);
  EXPECT_EQ(data.header.avg_distance, 2.0);
  EXPECT_EQ(data.records[1],
            (TraceRecord{0, 3, 9, 8, MessageClass::Burst}));
  EXPECT_EQ(data.records[2].cls, MessageClass::Interactive);

  std::ostringstream out;
  write_trace(out, data);
  const TraceData again = parse_text(out.str());
  EXPECT_EQ(again.records, data.records);
  EXPECT_EQ(again.content_hash(), data.content_hash());
}

TEST(TraceFormat, ContentHashSeesEveryField) {
  TraceData a = parse_text(valid_trace_text());
  TraceData b = a;
  b.records[0].cls = MessageClass::Control;
  EXPECT_NE(a.content_hash(), b.content_hash());
  TraceData c = a;
  c.header.traffic.load = 0.25;
  EXPECT_NE(a.content_hash(), c.content_hash());
}

TEST(TraceFormat, RejectsBadMagic) {
  EXPECT_THROW(parse_text("flexnet-trace-v9\nend 0\n"), std::runtime_error);
  EXPECT_THROW(parse_text(""), std::runtime_error);
}

TEST(TraceFormat, RejectsDecreasingCycles) {
  std::string text = valid_trace_text();
  const std::size_t at = text.find("msg 7");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 5, "msg 0");  // after a cycle-0 record this is fine...
  (void)parse_text(text);        // ...nondecreasing is allowed
  text = valid_trace_text();
  text.replace(text.find("msg 0 3"), 7, "msg 9 3");  // 0,9,7 decreases
  EXPECT_THROW(parse_text(text), std::runtime_error);
}

TEST(TraceFormat, RejectsTruncation) {
  std::string text = valid_trace_text();
  text.erase(text.find("end 3"));  // trailer gone
  EXPECT_THROW(parse_text(text), std::runtime_error);
}

TEST(TraceFormat, RejectsMiscountedTrailer) {
  std::string text = valid_trace_text();
  text.replace(text.find("end 3"), 5, "end 2");
  EXPECT_THROW(parse_text(text), std::runtime_error);
}

TEST(TraceFormat, RejectsBadClass) {
  std::string text = valid_trace_text();
  text.replace(text.find("bulk"), 4, "bogo");
  EXPECT_THROW(parse_text(text), std::runtime_error);
}

TEST(TraceFormat, RejectsUnknownDirective) {
  std::string text = valid_trace_text();
  text.insert(text.find("# a comment"), "turbo on\n");
  EXPECT_THROW(parse_text(text), std::runtime_error);
}

TEST(TraceFormat, RejectsMsgBeforeCompleteHeader) {
  EXPECT_THROW(parse_text("flexnet-trace-v1\n"
                          "nodes 16\n"
                          "msg 0 0 5 8 bulk\n"
                          "end 1\n"),
               std::runtime_error);
}

TEST(TraceFormat, RejectsOutOfRangeNodesAndSelfTraffic) {
  std::string text = valid_trace_text();
  text.replace(text.find("msg 0 0 5"), 9, "msg 0 0 16");  // dst == nodes
  EXPECT_THROW(parse_text(text), std::runtime_error);
  text = valid_trace_text();
  text.replace(text.find("msg 0 0 5"), 9, "msg 0 5 5");  // src == dst
  EXPECT_THROW(parse_text(text), std::runtime_error);
}

TEST(TraceFormat, RejectsContentAfterTrailer) {
  EXPECT_THROW(parse_text(valid_trace_text() + "msg 8 0 5 8 bulk\n"),
               std::runtime_error);
}

TEST(TraceFormat, CaptureWriterEnforcesOrderAndSingleFinish) {
  std::ostringstream out;
  TraceHeader header = parse_text(valid_trace_text()).header;
  TraceCaptureWriter writer(out, header);
  writer.record(3, 0, 5, 8, MessageClass::Bulk);
  EXPECT_THROW(writer.record(2, 0, 5, 8, MessageClass::Bulk),
               std::logic_error);
  writer.finish();
  EXPECT_THROW(writer.finish(), std::logic_error);
  EXPECT_THROW(writer.record(9, 0, 5, 8, MessageClass::Bulk),
               std::logic_error);
  const TraceData data = parse_text(out.str());
  ASSERT_EQ(data.records.size(), 1u);
  EXPECT_EQ(data.records[0], (TraceRecord{3, 0, 5, 8, MessageClass::Bulk}));
}

// ---------------------------------------------------------------- pace

TEST(PaceSpec, BurstIsMeanNormalizedAndTagged) {
  const PaceProfile p = parse_pace_spec("burst(100,0.2,4)");
  EXPECT_NEAR(p.mean_multiplier(), 1.0, 1e-9);
  EXPECT_EQ(p.max_multiplier(), 4.0);
  MessageClass cls = MessageClass::Bulk;
  EXPECT_EQ(p.multiplier_at(0, &cls), 4.0);  // ON phase first
  EXPECT_EQ(cls, MessageClass::Burst);
  EXPECT_LT(p.multiplier_at(50, &cls), 1.0);  // OFF baseline < mean
  EXPECT_EQ(cls, MessageClass::Bulk);
  // Repeats: cycle 100 looks like cycle 0.
  EXPECT_EQ(p.multiplier_at(100), p.multiplier_at(0));
}

TEST(PaceSpec, OnoffAndRamp) {
  const PaceProfile onoff = parse_pace_spec("onoff(50,0.5)");
  EXPECT_NEAR(onoff.mean_multiplier(), 1.0, 1e-9);
  EXPECT_EQ(onoff.multiplier_at(0), 2.0);   // peak = 1/duty
  EXPECT_EQ(onoff.multiplier_at(30), 0.0);  // OFF is exactly silent

  const PaceProfile ramp = parse_pace_spec("ramp(100)");
  EXPECT_NEAR(ramp.mean_multiplier(), 1.0, 1e-9);
  EXPECT_EQ(ramp.max_multiplier(), 2.0);
  EXPECT_LT(ramp.multiplier_at(1), ramp.multiplier_at(99));
}

TEST(PaceSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_pace_spec("zigzag(10)"), std::invalid_argument);
  EXPECT_THROW(parse_pace_spec("burst(100,1.5,2)"), std::invalid_argument);
  EXPECT_THROW(parse_pace_spec("burst(100,0.2,9)"), std::invalid_argument);
  EXPECT_THROW(parse_pace_spec("burst(100,0.2)"), std::invalid_argument);
  EXPECT_THROW(parse_pace_spec("onoff(1,0.5)"), std::invalid_argument);
}

TEST(PaceFile, RoundTripAndStrictness) {
  const PaceProfile p = parse_pace_spec("burst(80,0.25,3)");
  std::ostringstream out;
  write_pace(out, p);
  std::istringstream in(out.str());
  const PaceProfile again = read_pace(in, "test");
  EXPECT_EQ(again, p);
  EXPECT_EQ(again.content_hash(), p.content_hash());

  std::istringstream bad_magic("flexnet-pace-v9\nphase 10 1 1 bulk\n");
  EXPECT_THROW((void)read_pace(bad_magic, "test"), std::runtime_error);
  std::istringstream bad_phase("flexnet-pace-v1\nphase 0 1 1 bulk\n");
  EXPECT_THROW((void)read_pace(bad_phase, "test"), std::runtime_error);
}

TEST(PacedInjection, RejectsBurstsBeyondOneMessagePerCycle) {
  const SimConfig cfg = small_sim_config();
  const auto net = make_network(cfg);
  TrafficConfig traffic;
  traffic.load = 0.9;  // probability 0.225/node/cycle at length 8
  EXPECT_THROW(
      PacedInjection(*net, traffic, 1, parse_pace_spec("onoff(100,0.2)")),
      std::invalid_argument);
  // A gentle profile is fine.
  PacedInjection ok(*net, traffic, 1, parse_pace_spec("ramp(100)"));
  EXPECT_EQ(ok.kind(), WorkloadKind::Paced);
}

// ---------------------------------------------------------------- spec/config

TEST(WorkloadSpec, ParsesAllKinds) {
  EXPECT_EQ(parse_workload_spec("bernoulli").kind, WorkloadKind::Bernoulli);
  const WorkloadConfig trace = parse_workload_spec("trace:/tmp/x.trace");
  EXPECT_EQ(trace.kind, WorkloadKind::Trace);
  EXPECT_EQ(trace.trace_path, "/tmp/x.trace");
  const WorkloadConfig pace = parse_workload_spec("pace:burst(100,0.2,4)");
  EXPECT_EQ(pace.kind, WorkloadKind::Paced);
  EXPECT_EQ(pace.pace_spec, "burst(100,0.2,4)");
  EXPECT_FALSE(pace.pace.empty());
  EXPECT_THROW(parse_workload_spec("poisson"), std::invalid_argument);
  EXPECT_THROW(parse_workload_spec("trace:"), std::invalid_argument);
}

TEST(WorkloadSpec, PointSuffixOnlyRenamesTheCaptureOutput) {
  WorkloadConfig cfg = parse_workload_spec("trace:shared.trace");
  cfg.capture_path = "out.trace";
  const WorkloadConfig p2 = cfg.with_point_suffix(2);
  EXPECT_EQ(p2.trace_path, "shared.trace");
  EXPECT_EQ(p2.capture_path, "out.trace.p2");
}

// ---------------------------------------------------------------- replay unit

TEST(TraceReplay, ReplaysRecordsAtTheirCyclesThenExhausts) {
  const std::string dir = temp_dir("flexnet_wl_replay_unit");
  const std::string path = dir + "/small.trace";
  {
    std::ofstream out(path);
    out << valid_trace_text();
  }
  const SimConfig cfg = small_sim_config();
  const auto net = make_network(cfg);
  TraceReplayInjection replay(*net, path, 1);
  EXPECT_EQ(replay.kind(), WorkloadKind::Trace);
  EXPECT_EQ(replay.num_records(), 3u);
  EXPECT_EQ(replay.header().traffic.load, 0.5);
  for (int i = 0; i < 20 && !replay.exhausted(); ++i) {
    replay.tick(*net);
    net->step();
  }
  EXPECT_TRUE(replay.exhausted());
  EXPECT_EQ(replay.cursor(), 3u);
  EXPECT_EQ(net->counters().generated, 3);
  EXPECT_EQ(net->counters().class_generated[class_index(MessageClass::Burst)],
            1);
}

TEST(TraceReplay, RejectsTraceFromDifferentTopologySize) {
  const std::string dir = temp_dir("flexnet_wl_replay_nodes");
  const std::string path = dir + "/big.trace";
  {
    std::ofstream out(path);
    std::string text = valid_trace_text();
    text.replace(text.find("nodes 16"), 8, "nodes 64");
    out << text;
  }
  const auto net = make_network(small_sim_config());  // 16 nodes
  EXPECT_THROW(TraceReplayInjection(*net, path, 1), std::runtime_error);
}

// ------------------------------------------------- capture -> replay e2e

ExperimentConfig capture_base_config() {
  ExperimentConfig cfg;
  cfg.sim.topology.k = 4;
  cfg.sim.topology.n = 2;
  cfg.sim.routing = RoutingKind::DOR;
  cfg.sim.message_length = 8;
  cfg.sim.seed = 11;
  cfg.traffic.load = 0.6;
  cfg.detector.interval = 50;
  cfg.run.warmup = 300;
  cfg.run.measure = 900;
  return cfg;
}

TEST(CaptureReplay, ReplayReproducesManifestAndMetricsByteExactly) {
  const std::string dir = temp_dir("flexnet_wl_replay_e2e");

  ExperimentConfig cap = capture_base_config();
  cap.workload.capture_path = dir + "/run.trace";
  cap.telemetry.manifest_path = dir + "/cap.json";
  cap.obs.metrics_path = dir + "/cap.ndjson";
  const ExperimentResult captured = run_experiment(cap);
  EXPECT_GT(captured.window.generated, 0);

  ExperimentConfig rep = capture_base_config();
  rep.traffic.load = 0.1;  // ignored: the replay adopts the header's traffic
  rep.workload = parse_workload_spec("trace:" + dir + "/run.trace");
  rep.telemetry.manifest_path = dir + "/rep.json";
  rep.obs.metrics_path = dir + "/rep.ndjson";
  const ExperimentResult replayed = run_experiment(rep);

  expect_same_window(captured.window, replayed.window);
  EXPECT_EQ(captured.normalized_throughput, replayed.normalized_throughput);
  EXPECT_EQ(captured.load, replayed.load);
  EXPECT_EQ(captured.avg_distance, replayed.avg_distance);

  // The observability stream is byte-identical with no exceptions.
  EXPECT_EQ(read_file(dir + "/cap.ndjson"), read_file(dir + "/rep.ndjson"));

  // Manifests agree everywhere but the workload block, the wall-clock
  // profile, and the metrics path.
  JsonValue a = JsonValue::parse(read_file(dir + "/cap.json"));
  JsonValue b = JsonValue::parse(read_file(dir + "/rep.json"));
  EXPECT_FALSE(same_json(a, b));  // the workload blocks differ by design
  strip_manifest(a);
  strip_manifest(b);
  EXPECT_TRUE(same_json(a, b));
}

TEST(CaptureReplay, MidTraceResumeIsBitExact) {
  const std::string dir = temp_dir("flexnet_wl_resume");

  ExperimentConfig cap = capture_base_config();
  cap.workload.capture_path = dir + "/run.trace";
  (void)run_experiment(cap);

  ExperimentConfig rep = capture_base_config();
  rep.workload = parse_workload_spec("trace:" + dir + "/run.trace");
  rep.snapshot.checkpoint_every = 500;
  rep.snapshot.checkpoint_dir = dir + "/ckpt";
  const ExperimentResult full = run_experiment(rep);

  // Cycle 500 is mid-trace and mid-warmup; 1000 is mid-measurement.
  for (const Cycle at : {Cycle{500}, Cycle{1000}}) {
    ExperimentConfig resume;
    resume.snapshot.resume_path =
        dir + "/ckpt/ckpt-" + std::to_string(at) + ".snap";
    const ExperimentResult resumed = run_experiment(resume);
    expect_same_window(full.window, resumed.window);
    EXPECT_EQ(full.normalized_throughput, resumed.normalized_throughput);
    EXPECT_EQ(resumed.resumed_at_cycle, at);
  }
}

TEST(CaptureReplay, ResumeRejectsAMutatedTrace) {
  const std::string dir = temp_dir("flexnet_wl_resume_tamper");

  ExperimentConfig cap = capture_base_config();
  cap.workload.capture_path = dir + "/run.trace";
  (void)run_experiment(cap);

  ExperimentConfig rep = capture_base_config();
  rep.workload = parse_workload_spec("trace:" + dir + "/run.trace");
  rep.snapshot.checkpoint_every = 500;
  rep.snapshot.checkpoint_dir = dir + "/ckpt";
  (void)run_experiment(rep);

  // Flip one record's class: the file still parses, but the content hash
  // stored in the snapshot must notice the workload changed.
  std::string text = read_file(dir + "/run.trace");
  const std::size_t at = text.find(" bulk\n");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 6, " burst\n");
  {
    std::ofstream out(dir + "/run.trace");
    out << text;
  }
  ExperimentConfig resume;
  resume.snapshot.resume_path = dir + "/ckpt/ckpt-500.snap";
  EXPECT_THROW((void)run_experiment(resume), std::runtime_error);
}

// -------------------------------------------------------- paced run e2e

TEST(PacedRun, SerialAndParallelSweepsMatch) {
  ExperimentConfig base = capture_base_config();
  base.run.warmup = 200;
  base.run.measure = 400;
  base.workload = parse_workload_spec("pace:burst(100,0.2,4)");
  const std::vector<double> loads{0.2, 0.4, 0.6};

  const auto serial = sweep_loads(base, loads, /*parallel=*/false);
  const auto parallel = sweep_loads(base, loads, /*parallel=*/true);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_same_window(serial[i].window, parallel[i].window);
    EXPECT_EQ(serial[i].normalized_throughput,
              parallel[i].normalized_throughput);
  }
}

TEST(PacedRun, ClassTotalsSumToScalarCounters) {
  ExperimentConfig cfg = capture_base_config();
  cfg.workload = parse_workload_spec("pace:burst(100,0.2,4)");
  const ExperimentResult r = run_experiment(cfg);

  std::int64_t generated = 0, delivered = 0, recovered = 0;
  for (const MessageClass cls : all_message_classes()) {
    const auto& cm = r.window.classes[class_index(cls)];
    generated += cm.generated;
    delivered += cm.delivered;
    recovered += cm.recovered;
  }
  EXPECT_EQ(generated, r.window.generated);
  EXPECT_EQ(delivered, r.window.delivered);
  EXPECT_EQ(recovered, r.window.recovered);
  // A burst profile actually produces both classes.
  EXPECT_GT(r.window.classes[class_index(MessageClass::Bulk)].generated, 0);
  EXPECT_GT(r.window.classes[class_index(MessageClass::Burst)].generated, 0);
}

TEST(BernoulliRun, EverythingStaysBulk) {
  const ExperimentResult r = run_experiment(capture_base_config());
  const auto& bulk = r.window.classes[class_index(MessageClass::Bulk)];
  EXPECT_EQ(bulk.generated, r.window.generated);
  EXPECT_EQ(bulk.delivered, r.window.delivered);
  for (const MessageClass cls :
       {MessageClass::Burst, MessageClass::Interactive, MessageClass::Control}) {
    EXPECT_EQ(r.window.classes[class_index(cls)].generated, 0);
    EXPECT_EQ(r.window.classes[class_index(cls)].delivered, 0);
  }
}

}  // namespace
}  // namespace flexnet
