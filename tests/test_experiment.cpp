#include "exp/experiment.hpp"

#include <gtest/gtest.h>

namespace flexnet {
namespace {

ExperimentConfig small_config(double load) {
  ExperimentConfig cfg;
  cfg.sim.topology.k = 4;
  cfg.sim.topology.n = 2;
  cfg.sim.routing = RoutingKind::TFAR;
  cfg.sim.message_length = 8;
  cfg.traffic.load = load;
  cfg.run.warmup = 500;
  cfg.run.measure = 1500;
  return cfg;
}

TEST(Experiment, BelowSaturationAcceptsOfferedLoad) {
  // A 4x4 torus saturates far below its nominal channel capacity (rings are
  // only four channels long), so "below saturation" means a light load.
  const ExperimentResult r = run_experiment(small_config(0.15));
  EXPECT_DOUBLE_EQ(r.load, 0.15);
  EXPECT_GT(r.capacity_flits_per_node, 0.0);
  EXPECT_NEAR(r.offered_flit_rate, 0.15 * r.capacity_flits_per_node, 1e-9);
  EXPECT_GT(r.accepted_ratio, 0.95);
  EXPECT_FALSE(r.saturated);
  EXPECT_GT(r.window.delivered, 0);
  EXPECT_NEAR(r.normalized_throughput,
              r.window.throughput_flits_per_node / r.capacity_flits_per_node,
              1e-12);
}

TEST(Experiment, OverloadSaturates) {
  const ExperimentResult r = run_experiment(small_config(1.4));
  EXPECT_TRUE(r.saturated);
  EXPECT_LT(r.accepted_ratio, 0.95);
}

TEST(Experiment, DeterministicForSameSeed) {
  const ExperimentResult a = run_experiment(small_config(0.5));
  const ExperimentResult b = run_experiment(small_config(0.5));
  EXPECT_EQ(a.window.delivered, b.window.delivered);
  EXPECT_EQ(a.window.generated, b.window.generated);
  EXPECT_EQ(a.window.deadlocks, b.window.deadlocks);
  EXPECT_DOUBLE_EQ(a.window.avg_latency, b.window.avg_latency);
  EXPECT_DOUBLE_EQ(a.window.blocked_messages.mean(),
                   b.window.blocked_messages.mean());
}

TEST(Experiment, SeedChangesTheRun) {
  ExperimentConfig cfg = small_config(0.5);
  const ExperimentResult a = run_experiment(cfg);
  cfg.sim.seed = 999;
  const ExperimentResult b = run_experiment(cfg);
  EXPECT_NE(a.window.generated, b.window.generated);
}

TEST(Experiment, InvariantCheckingModeRuns) {
  ExperimentConfig cfg = small_config(0.6);
  cfg.run.check_invariants = true;
  cfg.run.check_every = 50;
  EXPECT_NO_THROW((void)run_experiment(cfg));
}

TEST(Experiment, WarmupIsExcludedFromTheWindow) {
  ExperimentConfig cfg = small_config(0.3);
  cfg.run.warmup = 2000;
  cfg.run.measure = 500;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_EQ(r.window.window_cycles, 500);
  // Delivered in the window must be far less than total generated over the
  // whole run (most of it happened during warmup).
  EXPECT_LT(r.window.delivered, 2 * r.window.generated);
}

TEST(Experiment, SimulationExposesLiveObjects) {
  Simulation sim(small_config(0.4));
  sim.run_cycles(200);
  EXPECT_EQ(sim.network().now(), 200);
  EXPECT_GT(sim.network().counters().generated, 0);
  EXPECT_GT(sim.injection().capacity_flits_per_node(), 0.0);
  EXPECT_EQ(sim.detector().invocations(), 200 / sim.config().detector.interval);
}

TEST(Experiment, InvalidConfigThrowsAtConstruction) {
  ExperimentConfig cfg = small_config(0.4);
  cfg.sim.vcs = 0;
  EXPECT_THROW(Simulation sim(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace flexnet
