#include "traffic/injection.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "routing/routing.hpp"
#include "routing/selection.hpp"

namespace flexnet {
namespace {

std::unique_ptr<Network> make_net(SimConfig cfg) {
  return std::make_unique<Network>(cfg, NetworkDeps{nullptr, make_routing(cfg),
                                 make_selection(cfg.selection)});
}

TEST(Injection, PaperCapacityNumbers) {
  // Bidirectional 16-ary 2-cube: 1024 channels / (256 nodes x ~8 hops)
  // ~= 0.5 flits/node/cycle; unidirectional: 512 / (256 x ~15) ~= 0.133.
  SimConfig cfg;
  cfg.routing = RoutingKind::DOR;
  TrafficConfig traffic;
  traffic.load = 1.0;

  const auto bi = make_net(cfg);
  const InjectionProcess bi_inj(*bi, traffic, 1);
  EXPECT_NEAR(bi_inj.capacity_flits_per_node(), 0.5, 0.01);

  cfg.topology.bidirectional = false;
  const auto uni = make_net(cfg);
  const InjectionProcess uni_inj(*uni, traffic, 1);
  EXPECT_NEAR(uni_inj.capacity_flits_per_node(), 0.1333, 0.002);
}

TEST(Injection, OfferedRateScalesWithLoad) {
  SimConfig cfg;
  cfg.routing = RoutingKind::DOR;
  const auto net = make_net(cfg);
  TrafficConfig traffic;
  traffic.load = 0.25;
  const InjectionProcess inj(*net, traffic, 1);
  EXPECT_NEAR(inj.offered_flit_rate(), 0.25 * inj.capacity_flits_per_node(),
              1e-12);
  EXPECT_NEAR(inj.message_probability(),
              inj.offered_flit_rate() / cfg.message_length, 1e-12);
}

TEST(Injection, GenerationRateMatchesProbability) {
  SimConfig cfg;
  cfg.topology.k = 8;
  cfg.routing = RoutingKind::DOR;
  cfg.source_queue_limit = 0;  // unbounded: count raw generation
  auto net = make_net(cfg);
  TrafficConfig traffic;
  traffic.load = 0.5;
  InjectionProcess inj(*net, traffic, 7);
  constexpr int kCycles = 2000;
  for (int i = 0; i < kCycles; ++i) inj.tick(*net);
  const double expected =
      inj.message_probability() * net->topology().num_nodes() * kCycles;
  EXPECT_NEAR(static_cast<double>(net->counters().generated), expected,
              expected * 0.1);
}

TEST(Injection, HybridLengthsAverageCorrectly) {
  SimConfig cfg;
  cfg.topology.k = 4;
  cfg.routing = RoutingKind::DOR;
  cfg.message_length = 32;
  cfg.short_message_length = 8;
  cfg.short_message_fraction = 0.5;
  const auto net = make_net(cfg);
  TrafficConfig traffic;
  traffic.load = 0.5;
  const InjectionProcess inj(*net, traffic, 1);
  // Mean length 20 -> message probability uses it.
  EXPECT_NEAR(inj.message_probability(), inj.offered_flit_rate() / 20.0, 1e-12);
}

TEST(Injection, SourceQueueLimitStallsGeneration) {
  SimConfig cfg;
  cfg.topology.k = 4;
  cfg.routing = RoutingKind::DOR;
  cfg.source_queue_limit = 2;
  auto net = make_net(cfg);
  TrafficConfig traffic;
  traffic.load = 1.0;  // heavy offered load
  InjectionProcess inj(*net, traffic, 3);
  // Tick without stepping the network: queues fill and then stall.
  for (int i = 0; i < 5000; ++i) inj.tick(*net);
  for (NodeId n = 0; n < net->topology().num_nodes(); ++n) {
    EXPECT_LE(net->source_queue_length(n), 2u);
  }
  EXPECT_GT(inj.stalled_generations(), 0);
}

TEST(Injection, UnboundedQueueNeverStalls) {
  SimConfig cfg;
  cfg.topology.k = 4;
  cfg.routing = RoutingKind::DOR;
  cfg.source_queue_limit = 0;
  auto net = make_net(cfg);
  TrafficConfig traffic;
  traffic.load = 1.0;
  InjectionProcess inj(*net, traffic, 3);
  for (int i = 0; i < 2000; ++i) inj.tick(*net);
  EXPECT_EQ(inj.stalled_generations(), 0);
  EXPECT_GT(net->queued_message_count(), 0);
}

TEST(Injection, RejectsImpossibleLoads) {
  SimConfig cfg;
  cfg.routing = RoutingKind::DOR;
  cfg.message_length = 1;  // probability = offered rate
  const auto net = make_net(cfg);
  TrafficConfig traffic;
  traffic.load = 5.0;  // > 1 message/node/cycle at length 1
  EXPECT_THROW(InjectionProcess(*net, traffic, 1), std::invalid_argument);
  traffic.load = -0.1;
  EXPECT_THROW(InjectionProcess(*net, traffic, 1), std::invalid_argument);
}

TEST(Injection, DeterministicAcrossRuns) {
  SimConfig cfg;
  cfg.topology.k = 4;
  cfg.routing = RoutingKind::DOR;
  auto a = make_net(cfg);
  auto b = make_net(cfg);
  TrafficConfig traffic;
  traffic.load = 0.4;
  InjectionProcess inj_a(*a, traffic, 42);
  InjectionProcess inj_b(*b, traffic, 42);
  for (int i = 0; i < 500; ++i) {
    inj_a.tick(*a);
    inj_b.tick(*b);
  }
  ASSERT_EQ(a->num_messages(), b->num_messages());
  for (std::size_t i = 0; i < a->num_messages(); ++i) {
    EXPECT_EQ(a->message(static_cast<MessageId>(i)).src,
              b->message(static_cast<MessageId>(i)).src);
    EXPECT_EQ(a->message(static_cast<MessageId>(i)).dst,
              b->message(static_cast<MessageId>(i)).dst);
  }
}

}  // namespace
}  // namespace flexnet
