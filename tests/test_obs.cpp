// Observability layer: LogHistogram units, the ObsCollector's
// flexnet-metrics-v1 NDJSON stream contract, its snapshot codec, and the
// degree-ordered ASCII heatmap fallback for irregular topologies (golden
// against the committed examples/topologies/irregular-16.topo).
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "obs/histogram.hpp"
#include "obs/obs.hpp"
#include "telemetry/heatmap.hpp"
#include "util/binio.hpp"
#include "util/json.hpp"

#ifndef FLEXNET_TOPO_DIR
#error "FLEXNET_TOPO_DIR must point at examples/topologies"
#endif

namespace flexnet {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

ExperimentConfig small_torus_cfg() {
  ExperimentConfig cfg;
  cfg.sim.topology.k = 8;
  cfg.sim.topology.n = 2;
  cfg.sim.routing = RoutingKind::DOR;
  cfg.sim.seed = 11;
  cfg.traffic.load = 0.4;
  cfg.run.warmup = 200;
  cfg.run.measure = 800;
  return cfg;
}

// --- LogHistogram ----------------------------------------------------------

TEST(LogHistogram, BucketIndexingMatchesPowerOfTwoBounds) {
  EXPECT_EQ(LogHistogram::bucket_of(-5), 0);
  EXPECT_EQ(LogHistogram::bucket_of(0), 0);
  EXPECT_EQ(LogHistogram::bucket_of(1), 1);
  EXPECT_EQ(LogHistogram::bucket_of(2), 2);
  EXPECT_EQ(LogHistogram::bucket_of(3), 2);
  EXPECT_EQ(LogHistogram::bucket_of(4), 3);
  EXPECT_EQ(LogHistogram::bucket_of(INT64_MAX), 63);
  // Every bucket's range is consistent with its index.
  for (int b = 1; b < LogHistogram::kBuckets; ++b) {
    EXPECT_EQ(LogHistogram::bucket_of(LogHistogram::bucket_lo(b)), b);
    EXPECT_EQ(LogHistogram::bucket_of(LogHistogram::bucket_hi(b)), b);
  }
  EXPECT_EQ(LogHistogram::bucket_lo(0), 0);
  EXPECT_EQ(LogHistogram::bucket_hi(0), 0);
}

TEST(LogHistogram, QuantilesInterpolateAndClampToMax) {
  LogHistogram hist;
  EXPECT_EQ(hist.quantile(0.5), 0.0);  // Empty -> 0.

  for (std::int64_t v = 1; v <= 100; ++v) hist.record(v);
  EXPECT_EQ(hist.count(), 100);
  EXPECT_EQ(hist.max(), 100);
  EXPECT_DOUBLE_EQ(hist.mean(), 50.5);
  // The 50th sample lands in bucket [32, 63]; interpolation stays inside.
  EXPECT_GE(hist.p50(), 32.0);
  EXPECT_LE(hist.p50(), 63.0);
  // Upper quantiles are clamped by the recorded maximum, never beyond it.
  EXPECT_LE(hist.p99(), 100.0);
  EXPECT_LE(hist.p999(), 100.0);
  EXPECT_LE(hist.quantile(1.0), 100.0);
  EXPECT_GE(hist.p999(), hist.p99());
  EXPECT_GE(hist.p99(), hist.p50());
}

TEST(LogHistogram, MergeAddsAndSnapshotRoundTrips) {
  LogHistogram a, b;
  for (std::int64_t v = 0; v < 50; ++v) a.record(v);
  for (std::int64_t v = 1000; v < 1010; ++v) b.record(v);
  LogHistogram merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.count(), a.count() + b.count());
  EXPECT_EQ(merged.sum(), a.sum() + b.sum());
  EXPECT_EQ(merged.max(), 1009);

  BinWriter out;
  merged.save_state(out);
  LogHistogram restored;
  BinReader in(out.bytes().data(), out.bytes().size());
  restored.restore_state(in);
  EXPECT_EQ(restored, merged);
}

// --- ObsConfig -------------------------------------------------------------

TEST(ObsConfig, EnabledAndValidation) {
  ObsConfig cfg;
  EXPECT_FALSE(cfg.enabled());
  cfg.collect = true;
  EXPECT_TRUE(cfg.enabled());
  cfg.collect = false;
  cfg.metrics_path = "m.ndjson";
  EXPECT_TRUE(cfg.enabled());

  ExperimentConfig exp = small_torus_cfg();
  exp.sim.validate();
  Simulation sim(exp);
  ObsConfig bad;
  bad.collect = true;
  bad.interval = 0;
  EXPECT_THROW(ObsCollector(bad, sim.network()), std::invalid_argument);
  bad.interval = 100;
  bad.stall_ref = 0;
  EXPECT_THROW(ObsCollector(bad, sim.network()), std::invalid_argument);
}

TEST(ObsConfig, PointSuffixMatchesSweepConvention) {
  ObsConfig cfg;
  cfg.metrics_path = "m.ndjson";
  EXPECT_EQ(cfg.with_point_suffix(2).metrics_path, "m.ndjson.p2");
  ObsConfig no_path;
  no_path.collect = true;
  EXPECT_TRUE(no_path.with_point_suffix(1).metrics_path.empty());
}

// --- NDJSON stream contract ------------------------------------------------

TEST(ObsStream, WellFormedHeaderSamplesAndFinalRecord) {
  const std::string path = ::testing::TempDir() + "flexnet_obs_stream.ndjson";
  ExperimentConfig cfg = small_torus_cfg();
  cfg.obs.metrics_path = path;
  cfg.obs.interval = 100;
  const ExperimentResult result = run_experiment(cfg);

  ASSERT_TRUE(result.obs.enabled);
  EXPECT_EQ(result.obs.metrics_path, path);

  const std::vector<std::string> lines = split_lines(read_file(path));
  ASSERT_GE(lines.size(), 3u);  // header + >=1 sample + final

  const JsonValue header = JsonValue::parse(lines.front());
  EXPECT_EQ(header.at("schema").string, kMetricsSchema);
  EXPECT_EQ(header.at("interval").number, 100.0);
  EXPECT_EQ(header.at("nodes").number, 64.0);

  Cycle prev_cycle = 0;
  std::size_t samples = 0;
  for (std::size_t i = 1; i + 1 < lines.size(); ++i) {
    const JsonValue rec = JsonValue::parse(lines[i]);
    const auto cycle = static_cast<Cycle>(rec.at("cycle").number);
    // Strictly advancing sample cycles on the configured stride.
    EXPECT_EQ(cycle, prev_cycle + 100) << "line " << i + 1;
    prev_cycle = cycle;
    EXPECT_NE(rec.find("score"), nullptr);
    EXPECT_NE(rec.find("active_routers"), nullptr);
    ++samples;
  }
  EXPECT_EQ(samples, result.obs.samples);
  EXPECT_EQ(samples, 10u);  // 1000 cycles / 100-cycle stride.

  const JsonValue final_record = JsonValue::parse(lines.back());
  EXPECT_TRUE(final_record.at("final").boolean);
  EXPECT_EQ(final_record.at("schema").string, kMetricsSchema);
  EXPECT_EQ(static_cast<std::uint64_t>(final_record.at("samples").number),
            result.obs.samples);
  EXPECT_EQ(static_cast<std::int64_t>(final_record.at("warnings").number),
            result.obs.warnings);
}

TEST(ObsStream, CollectorSnapshotRoundTripsByteExactly) {
  ExperimentConfig cfg = small_torus_cfg();
  cfg.obs.collect = true;
  Simulation sim(cfg);
  sim.run_cycles(500);

  BinWriter first;
  sim.obs()->save_state(first);

  // A fresh collector restored from those bytes re-serializes identically.
  ObsCollector restored(cfg.obs, sim.network());
  BinReader in(first.bytes().data(), first.bytes().size());
  restored.restore_state(in);
  BinWriter second;
  restored.save_state(second);
  ASSERT_EQ(first.bytes().size(), second.bytes().size());
  EXPECT_EQ(first.bytes(), second.bytes());
}

// --- degree-ordered heatmap fallback ---------------------------------------

TEST(HeatmapFallback, GoldenDegreeOrderedTableOnIrregular16) {
  ExperimentConfig cfg;
  cfg.sim.topo_kind = TopoKind::File;
  cfg.sim.topo_file = FLEXNET_TOPO_DIR "/irregular-16.topo";
  cfg.sim.routing = RoutingKind::TableUpDown;
  cfg.sim.validate();
  Simulation sim(cfg);
  SpatialHeatmap heat(sim.network());

  // Zero traffic: every value 0, rows ordered by descending degree then id.
  const std::string golden =
      "heatmap traversals (per-node, degree-ordered, peak=0)\n"
      "  node  degree       value  bar\n"
      "     7       5           0  \n"
      "    13       5           0  \n"
      "     0       4           0  \n"
      "     2       4           0  \n"
      "     6       4           0  \n"
      "    10       4           0  \n"
      "     4       3           0  \n"
      "     5       3           0  \n"
      "     8       3           0  \n"
      "     9       3           0  \n"
      "    11       3           0  \n"
      "     3       2           0  \n"
      "    12       2           0  \n"
      "     1       1           0  \n"
      "    14       1           0  \n"
      "    15       1           0  \n";
  EXPECT_EQ(heat.ascii_grid(sim.network(), SpatialHeatmap::Field::Traversals),
            golden);
}

TEST(HeatmapFallback, RunOnIrregularTopologyRendersBars) {
  ExperimentConfig cfg;
  cfg.sim.topo_kind = TopoKind::File;
  cfg.sim.topo_file = FLEXNET_TOPO_DIR "/irregular-16.topo";
  cfg.sim.routing = RoutingKind::TableUpDown;
  cfg.sim.seed = 7;
  cfg.traffic.load = 0.5;
  cfg.run.warmup = 200;
  cfg.run.measure = 800;
  cfg.telemetry.collect = true;
  const ExperimentResult result = run_experiment(cfg);

  const std::string& table = result.telemetry.heatmap_ascii;
  ASSERT_FALSE(table.empty());
  EXPECT_NE(table.find("degree-ordered"), std::string::npos);
  // Traffic flowed, so the peak is nonzero and at least one bar rendered.
  EXPECT_EQ(table.find("peak=0"), std::string::npos);
  EXPECT_NE(table.find('#'), std::string::npos);
}

}  // namespace
}  // namespace flexnet
