// Link-fault injection (paper future work: irregular/faulty topologies):
// faults must preserve strong connectivity, never be routed onto, and force
// misroutes only where every minimal channel is gone — while the deadlock
// machinery keeps working.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/detector.hpp"
#include "routing/routing.hpp"
#include "routing/selection.hpp"
#include "sim/network.hpp"
#include "traffic/injection.hpp"

namespace flexnet {
namespace {

SimConfig faulty_config(double fraction, int k = 8) {
  SimConfig cfg;
  cfg.topology.k = k;
  cfg.topology.n = 2;
  cfg.routing = RoutingKind::TFAR;
  cfg.message_length = 8;
  cfg.link_fault_fraction = fraction;
  cfg.seed = 13;
  return cfg;
}

std::unique_ptr<Network> make_net(const SimConfig& cfg) {
  return std::make_unique<Network>(cfg, NetworkDeps{nullptr, make_routing(cfg),
                                 make_selection(cfg.selection)});
}

TEST(Faults, CountMatchesRequestedFraction) {
  const auto net = make_net(faulty_config(0.1));
  const int expected = static_cast<int>(0.1 * 8 * 8 * 4);
  EXPECT_EQ(net->faulted_channel_count(), expected);
  int marked = 0;
  for (std::size_t c = 0; c < net->num_network_channels(); ++c) {
    if (net->phys(static_cast<ChannelId>(c)).faulted) ++marked;
  }
  EXPECT_EQ(marked, expected);
}

TEST(Faults, InjectionAndEjectionNeverFaulted) {
  const auto net = make_net(faulty_config(0.2));
  for (NodeId n = 0; n < net->topology().num_nodes(); ++n) {
    EXPECT_FALSE(net->phys(net->injection_channel(n)).faulted);
    EXPECT_FALSE(net->phys(net->ejection_channel(n)).faulted);
  }
}

TEST(Faults, DeterministicPerSeed) {
  SimConfig cfg = faulty_config(0.15);
  const auto a = make_net(cfg);
  const auto b = make_net(cfg);
  for (std::size_t c = 0; c < a->num_network_channels(); ++c) {
    EXPECT_EQ(a->phys(static_cast<ChannelId>(c)).faulted,
              b->phys(static_cast<ChannelId>(c)).faulted);
  }
  cfg.seed = 999;
  const auto other = make_net(cfg);
  int differences = 0;
  for (std::size_t c = 0; c < a->num_network_channels(); ++c) {
    if (a->phys(static_cast<ChannelId>(c)).faulted !=
        other->phys(static_cast<ChannelId>(c)).faulted) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 0);
}

TEST(Faults, EveryMessageStillCompletesAroundFaults) {
  // Forced misroutes around faults can circle a message back onto a channel
  // it already owns — a self-deadlock. That is exactly what recovery is for,
  // so the completion guarantee is delivered + recovered == generated, with
  // deliveries dominating.
  const auto net = make_net(faulty_config(0.2));
  DetectorConfig det;
  det.livelock_hop_limit = 512;  // Disha-style timeout for wandering messages
  DeadlockDetector detector(det, 13);
  // One message between every 7th pair of nodes.
  for (NodeId src = 0; src < net->topology().num_nodes(); src += 7) {
    net->enqueue_message(src, (src + 31) % net->topology().num_nodes(), 8);
  }
  int steps = 0;
  while (!net->active_messages().empty() || net->queued_message_count() > 0) {
    ASSERT_LT(++steps, 20000) << "messages failed to route around faults";
    net->step();
    detector.tick(*net);
    if (steps % 100 == 0) net->check_invariants();
  }
  EXPECT_EQ(net->counters().delivered + net->counters().recovered,
            net->counters().generated);
  EXPECT_GT(net->counters().delivered, net->counters().recovered);
  // No flit ever crossed a faulted channel: every faulted channel's VCs
  // stayed untouched (free, empty) the whole run.
  for (std::size_t c = 0; c < net->num_network_channels(); ++c) {
    const PhysChannel& pc = net->phys(static_cast<ChannelId>(c));
    if (!pc.faulted) continue;
    for (int v = 0; v < pc.num_vcs; ++v) {
      EXPECT_TRUE(net->vc(pc.first_vc + v).is_free());
    }
  }
}

TEST(Faults, ForcedMisroutesHappenButPathsStayBounded) {
  const auto net = make_net(faulty_config(0.25));
  TrafficConfig traffic;
  traffic.load = 0.15;
  InjectionProcess injection(*net, traffic, 5);
  for (int i = 0; i < 4000; ++i) {
    injection.tick(*net);
    net->step();
  }
  std::int64_t misrouted = 0;
  for (std::size_t id = 0; id < net->num_messages(); ++id) {
    const Message& msg = net->message(static_cast<MessageId>(id));
    if (msg.status != MessageStatus::Delivered) continue;
    if (msg.misroutes > 0) ++misrouted;
    EXPECT_GE(msg.hops, net->topology().min_distance(msg.src, msg.dst));
  }
  EXPECT_GT(misrouted, 0) << "25% faults should force some detours";
}

TEST(Faults, DetectionAndRecoveryStillOperate) {
  SimConfig cfg = faulty_config(0.1);
  cfg.vcs = 1;
  const auto net = make_net(cfg);
  TrafficConfig traffic;
  traffic.load = 0.5;
  InjectionProcess injection(*net, traffic, 5);
  DetectorConfig det;
  DeadlockDetector detector(det, 5);
  for (int i = 0; i < 6000; ++i) {
    injection.tick(*net);
    net->step();
    detector.tick(*net);
    if (i % 250 == 0) net->check_invariants();
  }
  // TFAR1 at this load deadlocks with or without faults; the machinery must
  // keep the network flowing.
  EXPECT_GT(net->counters().delivered, 100);
}

TEST(Faults, ConfigValidation) {
  SimConfig cfg = faulty_config(0.1);
  cfg.routing = RoutingKind::DOR;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = faulty_config(0.6);
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = faulty_config(-0.1);
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = faulty_config(0.3);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Faults, ZeroFractionLeavesNetworkPristine) {
  const auto net = make_net(faulty_config(0.0));
  EXPECT_EQ(net->faulted_channel_count(), 0);
}

}  // namespace
}  // namespace flexnet
