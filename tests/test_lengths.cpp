// Parameterized sweep over message length x buffer depth: the wormhole /
// buffered-wormhole / virtual-cut-through spectrum must deliver correctly at
// every point, conserve flits, and keep the held-chain length consistent
// with the compaction the buffers allow.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/detector.hpp"
#include "routing/routing.hpp"
#include "routing/selection.hpp"
#include "sim/network.hpp"
#include "traffic/injection.hpp"

namespace flexnet {
namespace {

class LengthSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LengthSweep, DeliversAndConservesAcrossTheSwitchingSpectrum) {
  const auto [length, buffer] = GetParam();
  SimConfig cfg;
  cfg.topology.k = 4;
  cfg.topology.n = 2;
  cfg.routing = RoutingKind::TFAR;
  cfg.message_length = length;
  cfg.buffer_depth = buffer;
  cfg.seed = 21;
  Network net(cfg, NetworkDeps{nullptr, make_routing(cfg),
                                 make_selection(cfg.selection)});

  TrafficConfig traffic;
  traffic.load = 0.2;
  InjectionProcess injection(net, traffic, cfg.seed);
  // Deadlocks are possible at any length with 1 VC (short messages raise
  // the message rate sharply); recovery keeps the sweep drainable.
  DetectorConfig det;
  DeadlockDetector detector(det, cfg.seed);

  for (int i = 0; i < 1200; ++i) {
    injection.tick(net);
    net.step();
    detector.tick(net);
    if (i % 40 == 0) net.check_invariants();
  }
  for (int i = 0; i < 6000 && !net.active_messages().empty(); ++i) {
    net.step();
    detector.tick(net);
  }

  ASSERT_TRUE(net.active_messages().empty());
  EXPECT_GT(net.counters().delivered, 20);
  EXPECT_EQ(net.counters().delivered + net.counters().recovered,
            net.counters().generated);
  for (std::size_t id = 0; id < net.num_messages(); ++id) {
    const Message& msg = net.message(static_cast<MessageId>(id));
    if (msg.status != MessageStatus::Delivered) continue;
    EXPECT_EQ(msg.flits_delivered, length);
    EXPECT_EQ(msg.hops, net.topology().min_distance(msg.src, msg.dst));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Spectrum, LengthSweep,
    ::testing::Combine(
        /*length*/ ::testing::Values(1, 2, 5, 32),
        /*buffer*/ ::testing::Values(1, 2, 8, 32)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "len" + std::to_string(std::get<0>(info.param)) + "_buf" +
             std::to_string(std::get<1>(info.param));
    });

// A message never holds more VCs than its footprint requires: roughly
// ceil(length / buffer) + 2 (injection VC + the hop being entered), bounded
// by the path length.
TEST(LengthFootprint, HeldChainBoundedByCompaction) {
  SimConfig cfg;
  cfg.topology.k = 8;
  cfg.topology.n = 1;
  cfg.routing = RoutingKind::DOR;
  cfg.message_length = 8;
  cfg.buffer_depth = 4;
  Network net(cfg, NetworkDeps{nullptr, make_routing(cfg),
                                 make_selection(cfg.selection)});

  // A blocker occupies the ejection path at node 4 so the probe compacts.
  net.enqueue_message(3, 4, 8);
  const MessageId probe = net.enqueue_message(0, 4, 8);
  std::size_t max_held = 0;
  for (int i = 0; i < 120; ++i) {
    net.step();
    max_held = std::max(max_held, net.message(probe).held.size());
  }
  // 8 flits / 4-deep buffers: 2 buffers of payload + injection + frontier.
  EXPECT_LE(max_held, 5u);
  net.check_invariants();
}

}  // namespace
}  // namespace flexnet
