#include "core/pwg.hpp"

#include <gtest/gtest.h>

#include "core/knot.hpp"

namespace flexnet {
namespace {

TEST(Pwg, EmptyForNoMessages) {
  const Pwg pwg = Pwg::from_cwg(Cwg(4, {}));
  EXPECT_EQ(pwg.graph.num_vertices(), 0);
  EXPECT_FALSE(pwg.has_cycle());
}

TEST(Pwg, EdgeFromWaiterToOwner) {
  const Cwg cwg(6, {{.id = 1, .held = {0}, .requests = {2}},
                    {.id = 2, .held = {2, 3}, .requests = {}}});
  const Pwg pwg = Pwg::from_cwg(cwg);
  ASSERT_EQ(pwg.graph.num_vertices(), 2);
  const int m1 = pwg.index_of(1);
  const int m2 = pwg.index_of(2);
  EXPECT_TRUE(pwg.graph.has_edge(m1, m2));
  EXPECT_FALSE(pwg.graph.has_edge(m2, m1));
  EXPECT_FALSE(pwg.has_cycle());
  EXPECT_EQ(pwg.index_of(99), -1);
}

TEST(Pwg, RequestToFreeVcAddsNoEdge) {
  const Cwg cwg(6, {{.id = 1, .held = {0}, .requests = {5}}});
  const Pwg pwg = Pwg::from_cwg(cwg);
  EXPECT_EQ(pwg.graph.num_edges(), 0);
}

TEST(Pwg, ParallelWaitsDeduplicated) {
  // m1 waits on two VCs both owned by m2: one PWG edge.
  const Cwg cwg(6, {{.id = 1, .held = {0}, .requests = {2, 3}},
                    {.id = 2, .held = {2, 3}, .requests = {}}});
  const Pwg pwg = Pwg::from_cwg(cwg);
  EXPECT_EQ(pwg.graph.num_edges(), 1);
}

TEST(Pwg, MutualWaitIsACycle) {
  const Cwg cwg(4, {{.id = 1, .held = {0}, .requests = {1}},
                    {.id = 2, .held = {1}, .requests = {0}}});
  const Pwg pwg = Pwg::from_cwg(cwg);
  EXPECT_TRUE(pwg.has_cycle());
  EXPECT_EQ(pwg.messages_on_cycles(), 2);
}

TEST(Pwg, CyclicNonDeadlockHasPwgCyclesButNoKnot) {
  // The paper's Section 2.2.3 argument (and Fig. 4): m1/m2 wait on each
  // other's channels, but m1 has an escape to a free VC. The PWG contains a
  // cycle — Dally & Aoki's scheme would forbid this state — yet there is no
  // deadlock, so that restriction sacrifices routing freedom needlessly.
  const Cwg cwg(6, {{.id = 1, .held = {0}, .requests = {1, 5}},
                    {.id = 2, .held = {1}, .requests = {0}}});
  const Pwg pwg = Pwg::from_cwg(cwg);
  EXPECT_TRUE(pwg.has_cycle());
  EXPECT_FALSE(has_deadlock(cwg));
}

TEST(Pwg, SelfWaitsAreFiltered) {
  // A message requesting its own VC (misrouting pathology) yields no PWG
  // self-edge; the CWG-level knot still catches the self-deadlock.
  const Cwg cwg(4, {{.id = 1, .held = {0}, .requests = {0}}});
  const Pwg pwg = Pwg::from_cwg(cwg);
  EXPECT_EQ(pwg.graph.num_edges(), 0);
  EXPECT_FALSE(pwg.has_cycle());
  EXPECT_TRUE(has_deadlock(cwg));
}

TEST(Pwg, DeadlockImpliesPwgCycle) {
  // Knot => the deadlock-set messages wait on each other => PWG cycle
  // (the converse is false, per the cyclic non-deadlock above).
  const Cwg cwg(8, {{.id = 1, .held = {0, 1}, .requests = {3}},
                    {.id = 2, .held = {2, 3}, .requests = {5}},
                    {.id = 3, .held = {4, 5}, .requests = {7}},
                    {.id = 4, .held = {6, 7}, .requests = {1}}});
  ASSERT_TRUE(has_deadlock(cwg));
  const Pwg pwg = Pwg::from_cwg(cwg);
  EXPECT_TRUE(pwg.has_cycle());
  EXPECT_EQ(pwg.messages_on_cycles(), 4);
}

}  // namespace
}  // namespace flexnet
