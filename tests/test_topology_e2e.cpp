// End-to-end coverage for file-defined topologies: the committed
// examples/topologies/irregular-16.topo runs the full pipeline — saturate
// table routing, detect knots, capture snapshots, replay them — and
// mid-run checkpoints resume bit-exactly. Also pins snapshot backward
// compatibility: the committed v1 corpus (no topology section) still
// decodes and replays.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "snapshot/corpus.hpp"
#include "snapshot/snapshot.hpp"
#include "topo/factory.hpp"

namespace flexnet {
namespace {

const char* kIrregular16 = FLEXNET_TOPO_DIR "/irregular-16.topo";

ExperimentConfig irregular_cfg(RoutingKind routing) {
  ExperimentConfig cfg;
  cfg.sim.topo_kind = TopoKind::File;
  cfg.sim.topo_file = kIrregular16;
  cfg.sim.routing = routing;
  cfg.sim.seed = 7;
  cfg.traffic.load = 0.8;
  cfg.detector.interval = 50;
  cfg.run.warmup = 500;
  cfg.run.measure = 3500;
  return cfg;
}

std::vector<std::string> snap_files(const std::string& dir) {
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".snap") files.push_back(entry.path());
  }
  return files;
}

TEST(TopologyE2E, IrregularFileSaturateDetectCaptureReplay) {
  const std::string dir = ::testing::TempDir() + "flexnet_irregular_corpus";
  std::filesystem::remove_all(dir);

  ExperimentConfig cfg = irregular_cfg(RoutingKind::TableMin);
  cfg.snapshot.capture_dir = dir;
  cfg.snapshot.capture_limit = 8;
  const ExperimentResult result = run_experiment(cfg);

  // Minimal adaptive routing on the irregular graph deadlocks at saturation
  // (the paper's story, off the torus).
  EXPECT_GT(result.window.deadlocks, 0);
  ASSERT_GT(result.deadlocks_captured, 0);

  for (const std::string& path : snap_files(dir)) {
    const Snapshot snap = read_snapshot_file(path);
    ASSERT_TRUE(snap.topo.present);
    EXPECT_EQ(snap.topo.kind, TopoKind::File);
    EXPECT_EQ(snap.topo.nodes, 16);
    // The embedded link list rebuilds the exact topology: hashes agree with
    // a fresh parse of the file.
    EXPECT_EQ(snap.topo.content_hash, make_topology(snap.sim)->content_hash());
    const ReplayResult replay = replay_capture(snap);
    EXPECT_TRUE(replay.matches) << path << ": " << replay.detail;
  }
  std::filesystem::remove_all(dir);
}

TEST(TopologyE2E, UpDownStaysDeadlockFreeOnTheSameNetwork) {
  const ExperimentResult result =
      run_experiment(irregular_cfg(RoutingKind::TableUpDown));
  EXPECT_EQ(result.window.deadlocks, 0);
  EXPECT_GT(result.window.delivered, 0);
}

TEST(TopologyE2E, CheckpointResumeIsBitExactOnFileTopology) {
  const std::string dir = ::testing::TempDir() + "flexnet_irregular_ckpt";
  std::filesystem::remove_all(dir);

  ExperimentConfig with_ckpt = irregular_cfg(RoutingKind::TableMin);
  with_ckpt.run.measure = 1500;
  with_ckpt.snapshot.checkpoint_every = 700;
  with_ckpt.snapshot.checkpoint_dir = dir;
  const ExperimentResult full = run_experiment(with_ckpt);

  ExperimentConfig resume;
  resume.snapshot.resume_path = dir + "/ckpt-1400.snap";
  const ExperimentResult resumed = run_experiment(resume);

  EXPECT_EQ(full.window.delivered, resumed.window.delivered);
  EXPECT_EQ(full.window.deadlocks, resumed.window.deadlocks);
  EXPECT_EQ(full.window.flits_delivered, resumed.window.flits_delivered);
  EXPECT_EQ(full.window.avg_latency, resumed.window.avg_latency);
  EXPECT_EQ(full.normalized_throughput, resumed.normalized_throughput);
  std::filesystem::remove_all(dir);
}

TEST(TopologyE2E, VersionOneSnapshotsStillDecodeAndReplay) {
  const std::vector<std::string> files = snap_files(FLEXNET_CORPUS_DIR);
  ASSERT_FALSE(files.empty());
  for (const std::string& path : files) {
    const Snapshot snap = read_snapshot_file(path);
    // v1 files predate the topology section: they decode with torus
    // defaults and no embedded link list.
    EXPECT_FALSE(snap.topo.present) << path;
    EXPECT_EQ(snap.sim.topo_kind, TopoKind::Torus) << path;
    const ReplayResult replay = replay_capture(snap);
    EXPECT_TRUE(replay.matches) << path << ": " << replay.detail;
  }
}

}  // namespace
}  // namespace flexnet
