#include "core/cwg.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "exp/experiment.hpp"

namespace flexnet {
namespace {

TEST(Cwg, SolidChainFollowsAcquisitionOrder) {
  const Cwg cwg(5, {{.id = 1, .held = {0, 2, 4}, .requests = {}}});
  EXPECT_TRUE(cwg.graph().has_edge(0, 2));
  EXPECT_TRUE(cwg.graph().has_edge(2, 4));
  EXPECT_FALSE(cwg.graph().has_edge(4, 0));
  EXPECT_EQ(cwg.num_ownership_arcs(), 2);
  EXPECT_EQ(cwg.num_request_arcs(), 0);
  EXPECT_EQ(cwg.num_blocked_messages(), 0);
}

TEST(Cwg, RequestArcsLeaveTheNewestHeldVc) {
  const Cwg cwg(6, {{.id = 1, .held = {0, 1}, .requests = {3, 5}},
                    {.id = 2, .held = {3}, .requests = {}}});
  EXPECT_TRUE(cwg.graph().has_edge(1, 3));
  EXPECT_TRUE(cwg.graph().has_edge(1, 5));
  EXPECT_FALSE(cwg.graph().has_edge(0, 3));
  EXPECT_EQ(cwg.num_request_arcs(), 2);
  EXPECT_EQ(cwg.num_blocked_messages(), 1);
}

TEST(Cwg, OwnerTracking) {
  const Cwg cwg(4, {{.id = 7, .held = {1, 2}, .requests = {}}});
  EXPECT_EQ(cwg.owner_of(1), 7);
  EXPECT_EQ(cwg.owner_of(2), 7);
  EXPECT_EQ(cwg.owner_of(0), kInvalidMessage);
  ASSERT_NE(cwg.find_message(7), nullptr);
  EXPECT_EQ(cwg.find_message(7)->held.size(), 2u);
  EXPECT_EQ(cwg.find_message(99), nullptr);
}

TEST(Cwg, RejectsDoubleOwnership) {
  EXPECT_THROW(Cwg(4, {{.id = 1, .held = {0}, .requests = {}},
                       {.id = 2, .held = {0}, .requests = {}}}),
               std::invalid_argument);
}

TEST(Cwg, RejectsMessagesWithoutResources) {
  EXPECT_THROW(Cwg(4, {{.id = 1, .held = {}, .requests = {2}}}),
               std::invalid_argument);
}

TEST(Cwg, FromNetworkSnapshotsLiveState) {
  // Run a small congested network and validate the snapshot agrees with the
  // live message state at every level.
  ExperimentConfig cfg;
  cfg.sim.topology.k = 4;
  cfg.sim.topology.n = 2;
  cfg.sim.routing = RoutingKind::TFAR;
  cfg.sim.message_length = 8;
  cfg.traffic.load = 0.9;
  cfg.detector.recovery = RecoveryKind::None;
  Simulation sim(cfg);
  for (int i = 0; i < 500; ++i) {
    sim.injection().tick(sim.network());
    sim.network().step();
  }
  const Network& net = sim.network();
  const Cwg cwg = Cwg::from_network(net);

  EXPECT_EQ(cwg.num_vcs(), static_cast<int>(net.num_vcs()));
  EXPECT_EQ(cwg.messages().size(), net.active_messages().size());

  int blocked = 0;
  for (const MessageId id : net.active_messages()) {
    const Message& live = net.message(id);
    const CwgMessage* snap = cwg.find_message(id);
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->held, live.held);
    if (live.blocked) {
      ++blocked;
      EXPECT_EQ(snap->requests, live.request_set);
      // Requests were recorded at the route phase, when every candidate was
      // owned by another message; the transmit phase that followed may have
      // freed one (it will be granted next cycle). Never owned by itself.
      for (const VcId want : snap->requests) {
        EXPECT_NE(net.vc(want).owner, id);
      }
    } else {
      EXPECT_TRUE(snap->requests.empty());
    }
    for (const VcId held : snap->held) {
      EXPECT_EQ(cwg.owner_of(held), id);
    }
  }
  EXPECT_EQ(cwg.num_blocked_messages(), blocked);
  EXPECT_GT(blocked, 0) << "load 0.9 on a 4x4 torus should congest";
}

}  // namespace
}  // namespace flexnet
