// Dense-vs-event step equivalence: the activity-gated scheduler (the default)
// must be bit-identical to the dense per-cycle sweep (--step-dense) in every
// observable way — per-cycle network state bytes, detector verdicts, RNG
// consumption, snapshots, and telemetry manifests. The suite locksteps the
// two modes for DOR, TFAR, and TableMin at light / medium / saturation load,
// replays the committed deadlock corpus both ways, crosses modes over a
// mid-run checkpoint, and pins the recovery-wakeup contract: a network that
// just had a message removed must drain without a dense sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "exp/experiment.hpp"
#include "routing/routing.hpp"
#include "routing/selection.hpp"
#include "sim/network.hpp"
#include "snapshot/snapshot.hpp"
#include "traffic/injection.hpp"
#include "util/binio.hpp"

#ifndef FLEXNET_CORPUS_DIR
#error "FLEXNET_CORPUS_DIR must point at the committed tests/corpus directory"
#endif

namespace flexnet {
namespace {

std::vector<std::uint8_t> net_bytes(const Network& net) {
  BinWriter out;
  net.save_state(out);
  return out.bytes();
}

std::vector<std::uint8_t> detector_bytes(const DeadlockDetector& det) {
  BinWriter out;
  det.save_state(out);
  return out.bytes();
}

ExperimentConfig grid_config(RoutingKind routing, double load) {
  ExperimentConfig cfg;
  cfg.sim.topology.k = 8;
  cfg.sim.topology.n = 2;
  cfg.sim.vcs = 1;  // one VC per channel: wrap-around routing can deadlock
  cfg.sim.routing = routing;
  cfg.sim.message_length = 8;
  cfg.sim.seed = 13;
  cfg.traffic.load = load;
  cfg.detector.interval = 5;
  cfg.detector.recovery = RecoveryKind::RemoveOldest;
  return cfg;
}

/// Runs the same configuration event-driven and dense in lockstep, asserting
/// the full serialized network state matches periodically and every detector
/// verdict matches each cycle.
void run_lockstep(const ExperimentConfig& cfg, Cycle cycles) {
  ExperimentConfig dense_cfg = cfg;
  dense_cfg.run.step_dense = true;
  Simulation event(cfg);
  Simulation dense(dense_cfg);
  ASSERT_FALSE(event.network().step_dense());
  ASSERT_TRUE(dense.network().step_dense());

  for (Cycle i = 0; i < cycles; ++i) {
    event.injection().tick(event.network());
    event.network().step();
    const int event_verdict = event.detector().tick(event.network());
    dense.injection().tick(dense.network());
    dense.network().step();
    const int dense_verdict = dense.detector().tick(dense.network());
    ASSERT_EQ(event_verdict, dense_verdict) << "diverged at cycle " << i;
    if (i % 250 == 0) {
      ASSERT_EQ(net_bytes(event.network()), net_bytes(dense.network()))
          << "state diverged by cycle " << i;
    }
  }

  EXPECT_EQ(net_bytes(event.network()), net_bytes(dense.network()));
  EXPECT_EQ(detector_bytes(event.detector()), detector_bytes(dense.detector()));
  EXPECT_EQ(event.network().counters().delivered,
            dense.network().counters().delivered);
  EXPECT_EQ(event.network().counters().recovered,
            dense.network().counters().recovered);
  EXPECT_EQ(event.network().arc_epoch(), dense.network().arc_epoch());
  // The run must have moved traffic, or the equivalence is vacuous.
  EXPECT_GT(event.network().counters().delivered, 0);

  // Snapshots taken from either side of the lockstep pair are byte-identical:
  // the active sets are derived state and never enter the format.
  EXPECT_EQ(encode_snapshot(event.make_checkpoint()),
            encode_snapshot(dense.make_checkpoint()));
}

TEST(StepEquivalence, DorLightMediumSaturation) {
  for (const double load : {0.1, 0.5, 0.9}) {
    SCOPED_TRACE(load);
    run_lockstep(grid_config(RoutingKind::DOR, load), 2500);
  }
}

TEST(StepEquivalence, TfarLightMediumSaturation) {
  for (const double load : {0.1, 0.5, 0.9}) {
    SCOPED_TRACE(load);
    run_lockstep(grid_config(RoutingKind::TFAR, load), 2500);
  }
}

TEST(StepEquivalence, TableMinLightMediumSaturation) {
  for (const double load : {0.1, 0.5, 0.9}) {
    SCOPED_TRACE(load);
    run_lockstep(grid_config(RoutingKind::TableMin, load), 2500);
  }
}

TEST(StepEquivalence, MultiVcAdaptiveWithFaults) {
  // Deeper per-channel VC rotation plus misroute-capable selection: the
  // arbitration cursors and RNG draws must still line up exactly.
  ExperimentConfig cfg = grid_config(RoutingKind::TFAR, 0.6);
  cfg.sim.vcs = 3;
  cfg.sim.link_fault_fraction = 0.05;
  run_lockstep(cfg, 2000);
}

TEST(StepEquivalence, CommittedCorpusReplaysBothModes) {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(FLEXNET_CORPUS_DIR)) {
    if (entry.path().extension() == ".snap") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty());

  for (const std::string& path : files) {
    SCOPED_TRACE(path);
    const Snapshot snap = read_snapshot_file(path);
    RestoredSim event = restore_snapshot(snap);
    RestoredSim dense = restore_snapshot(snap);
    dense.net->set_step_dense(true);
    // Restore rebuilds the active sets from the captured knot: the very first
    // event-driven step must see the blocked channels without a dense sweep.
    DeadlockDetector event_det(DetectorConfig{.interval = 1}, 99);
    DeadlockDetector dense_det(DetectorConfig{.interval = 1}, 99);

    for (int i = 0; i < 300; ++i) {
      event.injection->tick(*event.net);
      event.net->step();
      const int event_verdict = event_det.tick(*event.net);
      dense.injection->tick(*dense.net);
      dense.net->step();
      const int dense_verdict = dense_det.tick(*dense.net);
      ASSERT_EQ(event_verdict, dense_verdict) << "diverged at step " << i;
    }
    EXPECT_GT(event_det.total_deadlocks(), 0) << "capture should re-deadlock";
    EXPECT_EQ(net_bytes(*event.net), net_bytes(*dense.net));
    EXPECT_EQ(detector_bytes(event_det), detector_bytes(dense_det));
  }
}

TEST(StepEquivalence, CheckpointCrossesModes) {
  // A checkpoint captured event-driven resumes dense (and vice versa): the
  // step strategy is an execution detail the format never records.
  const ExperimentConfig cfg = grid_config(RoutingKind::DOR, 0.7);
  Simulation original(cfg);
  for (Cycle i = 0; i < 1500; ++i) {
    original.injection().tick(original.network());
    original.network().step();
    original.detector().tick(original.network());
  }

  const Snapshot snap = original.make_checkpoint();
  RestoredSim resumed = restore_snapshot(snap);
  resumed.net->set_step_dense(true);
  EXPECT_EQ(net_bytes(*resumed.net), net_bytes(original.network()));

  for (Cycle i = 0; i < 800; ++i) {
    original.injection().tick(original.network());
    original.network().step();
    const int original_verdict = original.detector().tick(original.network());
    resumed.injection->tick(*resumed.net);
    resumed.net->step();
    const int resumed_verdict = resumed.detector->tick(*resumed.net);
    ASSERT_EQ(original_verdict, resumed_verdict) << "diverged at cycle " << i;
  }
  EXPECT_EQ(net_bytes(*resumed.net), net_bytes(original.network()));
}

TEST(StepEquivalence, RecoveryWakeupsDrainTheNetwork) {
  // 4-node unidirectional ring, every node sending two hops ahead: a
  // permanent deadlock. remove_message() must wake every channel the victim
  // held, or the event-driven core never revisits the survivors and the
  // network stays frozen forever. (Also keeps one deprecated two-dep
  // constructor overload exercised until it is removed.)
  SimConfig cfg;
  cfg.topology.k = 4;
  cfg.topology.n = 1;
  cfg.topology.bidirectional = false;
  cfg.routing = RoutingKind::DOR;
  cfg.message_length = 8;
  cfg.buffer_depth = 2;
  auto net = std::make_unique<Network>(cfg, NetworkDeps{nullptr, make_routing(cfg),
                                 make_selection(cfg.selection)});
  ASSERT_FALSE(net->step_dense());
  std::vector<MessageId> ids;
  for (NodeId n = 0; n < 4; ++n) {
    ids.push_back(net->enqueue_message(n, (n + 2) % 4, 8));
  }
  for (int i = 0; i < 200; ++i) net->step();
  ASSERT_EQ(net->counters().delivered, 0) << "ring should be deadlocked";
  for (const MessageId id : ids) {
    ASSERT_TRUE(net->message_immobile(id));
  }

  net->remove_message(ids.front());
  for (int i = 0; i < 500 && net->counters().delivered < 3; ++i) net->step();
  EXPECT_EQ(net->counters().delivered, 3)
      << "survivors did not drain after recovery";
  EXPECT_EQ(net->counters().recovered, 1);
}

TEST(StepEquivalence, IdleNetworkStepsDoNothing) {
  SimConfig cfg;
  cfg.topology.k = 8;
  cfg.topology.n = 2;
  NetworkDeps deps;
  deps.routing = make_routing(cfg);
  deps.selection = make_selection(cfg.selection);
  Network net(cfg, std::move(deps));
  for (int i = 0; i < 100; ++i) net.step();
  EXPECT_EQ(net.now(), 100);
  EXPECT_EQ(net.arc_epoch(), 0u);
  EXPECT_EQ(net.counters().delivered, 0);
  // After draining completely, the sets empty out again and steps are free.
  net.enqueue_message(0, 5, 4);
  for (int i = 0; i < 100; ++i) net.step();
  EXPECT_EQ(net.counters().delivered, 1);
  const std::uint64_t settled = net.arc_epoch();
  for (int i = 0; i < 50; ++i) net.step();
  EXPECT_EQ(net.arc_epoch(), settled);
}

/// Removes the manifest's "profile" object — the only block whose values are
/// wall-clock dependent — by brace-balancing from its key.
std::string strip_profile(std::string text) {
  const std::size_t key = text.find("\"profile\":");
  if (key == std::string::npos) return text;
  std::size_t open = text.find('{', key);
  int depth = 0;
  std::size_t end = open;
  for (; end < text.size(); ++end) {
    if (text[end] == '{') ++depth;
    if (text[end] == '}' && --depth == 0) break;
  }
  text.erase(key, end - key + 1);
  return text;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(StepEquivalence, ManifestAndMetricsStreamsByteIdentical) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "flexnet_step_equiv";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  ExperimentConfig cfg = grid_config(RoutingKind::TFAR, 0.6);
  cfg.run.warmup = 500;
  cfg.run.measure = 2000;
  cfg.obs.collect = true;
  cfg.obs.interval = 50;

  ExperimentConfig event_cfg = cfg;
  event_cfg.telemetry.manifest_path = (dir / "event.json").string();
  event_cfg.obs.metrics_path = (dir / "event.ndjson").string();
  ExperimentConfig dense_cfg = cfg;
  dense_cfg.run.step_dense = true;
  dense_cfg.telemetry.manifest_path = (dir / "dense.json").string();
  dense_cfg.obs.metrics_path = (dir / "dense.ndjson").string();

  const ExperimentResult event_result = run_experiment(event_cfg);
  const ExperimentResult dense_result = run_experiment(dense_cfg);
  EXPECT_EQ(event_result.window.delivered, dense_result.window.delivered);
  EXPECT_EQ(event_result.window.deadlocks, dense_result.window.deadlocks);

  // The metrics NDJSON stream carries only simulation-derived values and must
  // match byte for byte; the manifest matches once its profiler timings (the
  // one wall-clock block) are stripped and the self-referential metrics path
  // (the two runs write to different files by construction) is neutralized.
  EXPECT_EQ(read_file(dir / "event.ndjson"), read_file(dir / "dense.ndjson"));
  const auto neutralize = [](std::string text, const std::string& path) {
    const std::size_t at = text.find(path);
    if (at != std::string::npos) text.replace(at, path.size(), "<metrics>");
    return text;
  };
  const std::string event_manifest =
      neutralize(strip_profile(read_file(dir / "event.json")),
                 event_cfg.obs.metrics_path);
  const std::string dense_manifest =
      neutralize(strip_profile(read_file(dir / "dense.json")),
                 dense_cfg.obs.metrics_path);
  ASSERT_FALSE(event_manifest.empty());
  EXPECT_EQ(event_manifest, dense_manifest);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace flexnet
