#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace flexnet {
namespace {

std::string write_sample(int indent) {
  std::ostringstream out;
  JsonWriter json(out, indent);
  json.begin_object();
  json.field("name", "flex\"net\n");
  json.field("count", std::int64_t{42});
  json.field("ratio", 0.25);
  json.field("on", true);
  json.key("missing").null();
  json.key("list").begin_array();
  json.value(1).value(2).value(3);
  json.end_array();
  json.key("nested").begin_object();
  json.field("k", 4);
  json.end_object();
  json.end_object();
  return out.str();
}

TEST(JsonWriter, CompactOutputIsCanonical) {
  EXPECT_EQ(write_sample(0),
            "{\"name\":\"flex\\\"net\\n\",\"count\":42,\"ratio\":0.25,"
            "\"on\":true,\"missing\":null,\"list\":[1,2,3],"
            "\"nested\":{\"k\":4}}");
}

TEST(JsonWriter, IndentedOutputParsesBack) {
  const JsonValue v = JsonValue::parse(write_sample(2));
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("name").string, "flex\"net\n");
  EXPECT_EQ(v.at("count").as_int(), 42);
  EXPECT_DOUBLE_EQ(v.at("ratio").number, 0.25);
  EXPECT_TRUE(v.at("on").boolean);
  EXPECT_EQ(v.at("missing").type, JsonValue::Type::Null);
  ASSERT_EQ(v.at("list").array.size(), 3u);
  EXPECT_EQ(v.at("list").array[2].as_int(), 3);
  EXPECT_EQ(v.at("nested").at("k").as_int(), 4);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream out;
  JsonWriter json(out, 0);
  json.begin_array();
  json.value(std::numeric_limits<double>::quiet_NaN());
  json.value(std::numeric_limits<double>::infinity());
  json.value(1.5);
  json.end_array();
  EXPECT_EQ(out.str(), "[null,null,1.5]");
}

TEST(JsonWriter, DoublesUseShortestRoundTrip) {
  std::ostringstream out;
  JsonWriter json(out, 0);
  json.begin_array();
  json.value(0.1);
  json.value(1.0 / 3.0);
  json.end_array();
  const JsonValue v = JsonValue::parse(out.str());
  EXPECT_DOUBLE_EQ(v.array[0].number, 0.1);
  EXPECT_DOUBLE_EQ(v.array[1].number, 1.0 / 3.0);
}

TEST(JsonWriter, MisuseThrows) {
  std::ostringstream out;
  JsonWriter json(out, 0);
  json.begin_object();
  EXPECT_THROW(json.value(1), std::logic_error);   // value without key
  EXPECT_THROW(json.end_array(), std::logic_error);  // mismatched close
}

TEST(JsonValue, ObjectOrderIsPreserved) {
  const JsonValue v = JsonValue::parse(R"({"z":1,"a":2,"m":3})");
  ASSERT_EQ(v.object.size(), 3u);
  EXPECT_EQ(v.object[0].first, "z");
  EXPECT_EQ(v.object[1].first, "a");
  EXPECT_EQ(v.object[2].first, "m");
}

TEST(JsonValue, ParsesEscapesAndUnicode) {
  const JsonValue v = JsonValue::parse(R"(["\t\\Aé"])");
  EXPECT_EQ(v.array[0].string, "\t\\A\xc3\xa9");
}

TEST(JsonValue, ParsesNumbers) {
  const JsonValue v = JsonValue::parse("[-12, 3.5e2, 0, 1e-3]");
  EXPECT_EQ(v.array[0].as_int(), -12);
  EXPECT_DOUBLE_EQ(v.array[1].number, 350.0);
  EXPECT_EQ(v.array[2].as_int(), 0);
  EXPECT_DOUBLE_EQ(v.array[3].number, 1e-3);
}

TEST(JsonValue, FindAndAt) {
  const JsonValue v = JsonValue::parse(R"({"a":1})");
  EXPECT_NE(v.find("a"), nullptr);
  EXPECT_EQ(v.find("b"), nullptr);
  EXPECT_THROW((void)v.at("b"), std::runtime_error);
}

TEST(JsonValue, RejectsMalformedInput) {
  EXPECT_THROW((void)JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("tru"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("{} extra"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse(R"({"a" 1})"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse(""), std::runtime_error);
}

}  // namespace
}  // namespace flexnet
