// Property-based sweep: across routing algorithms, VC counts, buffer depths
// and topologies, a moderately loaded network preserves all structural
// invariants every cycle, routes minimally, conserves flits, and drains
// completely once injection stops.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/detector.hpp"
#include "routing/routing.hpp"
#include "routing/selection.hpp"
#include "sim/network.hpp"
#include "traffic/injection.hpp"

namespace flexnet {
namespace {

struct Shape {
  RoutingKind routing;
  int vcs;
  int buffer_depth;
  bool bidirectional;
};

class NetworkProperties : public ::testing::TestWithParam<Shape> {};

TEST_P(NetworkProperties, InvariantsHoldAndNetworkDrains) {
  const Shape shape = GetParam();
  SimConfig cfg;
  cfg.topology.k = 4;
  cfg.topology.n = 2;
  cfg.topology.bidirectional = shape.bidirectional;
  cfg.routing = shape.routing;
  cfg.vcs = shape.vcs;
  cfg.buffer_depth = shape.buffer_depth;
  cfg.message_length = 8;
  cfg.seed = 7;
  Network net(cfg, NetworkDeps{nullptr, make_routing(cfg),
                                 make_selection(cfg.selection)});

  TrafficConfig traffic;
  traffic.load = 0.25;  // busy; rare deadlocks possible on a 4x4 torus
  InjectionProcess injection(net, traffic, cfg.seed);

  // Recovery keeps the unrestricted algorithms drainable even if one of the
  // 4x4 torus's short rings does deadlock (avoidance shapes never need it).
  DetectorConfig det;
  det.interval = 50;
  DeadlockDetector detector(det, cfg.seed);

  for (int i = 0; i < 1500; ++i) {
    injection.tick(net);
    net.step();
    detector.tick(net);
    if (i % 25 == 0) net.check_invariants();
  }
  EXPECT_GT(net.counters().delivered, 50);

  // Stop injecting; everything in the system must eventually drain.
  for (int i = 0; i < 8000 && !net.active_messages().empty(); ++i) {
    net.step();
    detector.tick(net);
  }
  EXPECT_TRUE(net.active_messages().empty()) << "network failed to drain";
  EXPECT_EQ(net.queued_message_count(), 0);
  net.check_invariants();

  // Global conservation: every generated message completed one way or the
  // other; deadlock-free algorithms never recovered anything.
  EXPECT_EQ(net.counters().generated,
            net.counters().delivered + net.counters().recovered);
  if (net.routing_algorithm().deadlock_free()) {
    EXPECT_EQ(net.counters().recovered, 0);
  }

  // Minimal routing: hops equal the initial minimal distance for every
  // message that completed normally.
  for (std::size_t id = 0; id < net.num_messages(); ++id) {
    const Message& msg = net.message(static_cast<MessageId>(id));
    if (msg.status != MessageStatus::Delivered) continue;
    EXPECT_EQ(msg.hops, net.topology().min_distance(msg.src, msg.dst));
    EXPECT_EQ(msg.misroutes, 0);
    EXPECT_EQ(msg.flits_delivered, msg.length);
  }

  // Every VC ends free and empty.
  for (std::size_t v = 0; v < net.num_vcs(); ++v) {
    EXPECT_TRUE(net.vc(static_cast<VcId>(v)).is_free());
    EXPECT_TRUE(net.vc(static_cast<VcId>(v)).buffer.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, NetworkProperties,
    ::testing::Values(Shape{RoutingKind::DOR, 1, 2, true},
                      Shape{RoutingKind::DOR, 2, 2, true},
                      Shape{RoutingKind::DOR, 1, 2, false},
                      Shape{RoutingKind::DOR, 1, 8, true},
                      Shape{RoutingKind::TFAR, 1, 2, true},
                      Shape{RoutingKind::TFAR, 2, 4, true},
                      Shape{RoutingKind::TFAR, 1, 8, true},  // VCT
                      Shape{RoutingKind::DatelineDOR, 2, 2, true},
                      Shape{RoutingKind::DuatoTFAR, 3, 2, true}));

// Virtual cut-through: with buffers as deep as the message, a blocked
// message compacts entirely into one buffer and holds few VCs.
TEST(NetworkVct, MessagesCompactIntoSingleBuffers) {
  SimConfig cfg;
  cfg.topology.k = 4;
  cfg.topology.n = 1;
  cfg.routing = RoutingKind::DOR;
  cfg.message_length = 4;
  cfg.buffer_depth = 4;  // VCT
  Network net(cfg, NetworkDeps{nullptr, make_routing(cfg),
                                 make_selection(cfg.selection)});

  // Fill channel 1->2 with a long-lived message, then send another behind it.
  net.enqueue_message(1, 2, 4);
  net.enqueue_message(0, 2, 4);
  for (int i = 0; i < 6; ++i) net.step();
  net.check_invariants();
  // The second message can be fully buffered at node 1 while the first
  // drains through the shared ejection channel.
  std::int64_t max_held = 0;
  for (const MessageId id : net.active_messages()) {
    max_held = std::max<std::int64_t>(
        max_held, static_cast<std::int64_t>(net.message(id).held.size()));
  }
  EXPECT_LE(max_held, 3);
}

// Hybrid message lengths (extension): both lengths flow and deliver.
TEST(NetworkHybridLengths, ShortAndLongMessagesCoexist) {
  SimConfig cfg;
  cfg.topology.k = 4;
  cfg.topology.n = 2;
  cfg.routing = RoutingKind::TFAR;
  cfg.message_length = 16;
  cfg.short_message_length = 2;
  cfg.short_message_fraction = 0.5;
  Network net(cfg, NetworkDeps{nullptr, make_routing(cfg),
                                 make_selection(cfg.selection)});
  TrafficConfig traffic;
  traffic.load = 0.2;
  InjectionProcess injection(net, traffic, 3);
  for (int i = 0; i < 2000; ++i) {
    injection.tick(net);
    net.step();
  }
  int shorts = 0;
  int longs = 0;
  for (std::size_t id = 0; id < net.num_messages(); ++id) {
    const Message& msg = net.message(static_cast<MessageId>(id));
    if (msg.status != MessageStatus::Delivered) continue;
    (msg.length == 2 ? shorts : longs) += 1;
  }
  EXPECT_GT(shorts, 20);
  EXPECT_GT(longs, 20);
}

}  // namespace
}  // namespace flexnet
