#include "topo/topo_file.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "topo/generators.hpp"
#include "topo/graph_topology.hpp"

namespace flexnet {
namespace {

GraphTopology::Spec parse(const std::string& text) {
  std::istringstream in(text);
  return parse_topology_text(in, "test");
}

TEST(TopoFile, ParsesWellFormedFile) {
  const auto spec = parse(
      "flexnet-topo-v1\n"
      "# a 4-node ring with one wide chord\n"
      "nodes 4\n"
      "\n"
      "bilink 0 1\n"
      "bilink 1 2\n"
      "bilink 2 3\n"
      "bilink 3 0\n"
      "link 0 2 width=2\n"
      "link 2 0 width=2\n");
  EXPECT_EQ(spec.nodes, 4);
  EXPECT_EQ(spec.links.size(), 10u);  // 4 bilinks -> 8 + 2 directed
  const GraphTopology topo(spec);
  EXPECT_EQ(topo.min_distance(0, 2), 1);
  int wide = 0;
  for (const ChannelDesc& ch : topo.channels()) {
    if (ch.width == 2) ++wide;
  }
  EXPECT_EQ(wide, 2);
}

TEST(TopoFile, GoldenRejects) {
  // Each malformed input must fail loud with std::invalid_argument; the
  // parser never silently repairs or truncates.
  const char* bad[] = {
      // wrong magic
      "flexnet-topo-v2\nnodes 2\nbilink 0 1\n",
      // empty file (no magic at all)
      "",
      // truncated: magic only, no nodes declaration
      "flexnet-topo-v1\n",
      // truncated: nodes but an unfinished link line
      "flexnet-topo-v1\nnodes 2\nlink 0\n",
      // link before nodes
      "flexnet-topo-v1\nlink 0 1\nnodes 2\n",
      // duplicate nodes declaration
      "flexnet-topo-v1\nnodes 2\nnodes 2\nbilink 0 1\n",
      // dangling node id
      "flexnet-topo-v1\nnodes 2\nbilink 0 1\nlink 0 7\n",
      // negative node id
      "flexnet-topo-v1\nnodes 2\nbilink 0 -1\n",
      // self loop
      "flexnet-topo-v1\nnodes 2\nbilink 0 1\nlink 1 1\n",
      // duplicate link (bilink already added 1->0)
      "flexnet-topo-v1\nnodes 2\nbilink 0 1\nlink 1 0\n",
      // unknown directive
      "flexnet-topo-v1\nnodes 2\nbilink 0 1\nedge 0 1\n",
      // trailing garbage after a valid link
      "flexnet-topo-v1\nnodes 2\nbilink 0 1 extra\n",
      // malformed width
      "flexnet-topo-v1\nnodes 2\nbilink 0 1 width=zero\n",
      // zero width
      "flexnet-topo-v1\nnodes 2\nbilink 0 1 width=0\n",
      // zero nodes
      "flexnet-topo-v1\nnodes 0\n",
  };
  for (const char* text : bad) {
    EXPECT_THROW((void)GraphTopology(parse(text)), std::invalid_argument)
        << "accepted: " << text;
  }
}

TEST(TopoFile, DisconnectedGraphRejectedAtBuild) {
  const auto spec = parse(
      "flexnet-topo-v1\nnodes 4\nbilink 0 1\nbilink 2 3\n");
  EXPECT_THROW((void)GraphTopology(spec), std::invalid_argument);
}

TEST(TopoFile, ErrorsNameTheOriginAndLine) {
  try {
    (void)parse("flexnet-topo-v1\nnodes 2\nlink 0 7\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("test:3"), std::string::npos)
        << e.what();
  }
}

TEST(TopoFile, WriteParseRoundTripPreservesContentHash) {
  for (const auto& spec :
       {full_mesh_spec(6), dragonfly_spec(4, 1),
        random_irregular_spec(16, 3, 5)}) {
    const GraphTopology original(spec);
    const GraphTopology reparsed(parse(write_topology_text(spec)));
    EXPECT_EQ(original.content_hash(), reparsed.content_hash())
        << spec.name;
  }
}

TEST(TopoFile, WriterCollapsesAntiparallelPairsToBilinks) {
  const std::string text = write_topology_text(full_mesh_spec(4));
  EXPECT_EQ(text.find("\nlink "), std::string::npos)
      << "expected only bilink lines:\n" << text;
  EXPECT_NE(text.find("\nbilink "), std::string::npos);
}

TEST(TopoFile, OneWayLinksSurviveTheRoundTrip) {
  const auto spec = parse(
      "flexnet-topo-v1\nnodes 3\nlink 0 1\nlink 1 2\nlink 2 0\n");
  const GraphTopology ring(spec);
  EXPECT_EQ(ring.min_distance(0, 2), 2);  // no reverse links
  const GraphTopology reparsed(parse(write_topology_text(spec)));
  EXPECT_EQ(ring.content_hash(), reparsed.content_hash());
}

}  // namespace
}  // namespace flexnet
