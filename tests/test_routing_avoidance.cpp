// Deadlock-avoidance baselines: dateline DOR, Duato's protocol and the
// negative-first turn model must NEVER form a knot, at any load, while
// still delivering everything.
#include <gtest/gtest.h>

#include <memory>

#include "core/detector.hpp"
#include "routing/dateline.hpp"
#include "routing/duato.hpp"
#include "routing/routing.hpp"
#include "routing/selection.hpp"
#include "sim/network.hpp"
#include "topo/torus.hpp"
#include "traffic/injection.hpp"

namespace flexnet {
namespace {

struct AvoidanceCase {
  RoutingKind routing;
  int vcs;
  bool wrap;
};

class AvoidanceNeverDeadlocks
    : public ::testing::TestWithParam<AvoidanceCase> {};

TEST_P(AvoidanceNeverDeadlocks, NoKnotEverForms) {
  const AvoidanceCase param = GetParam();
  SimConfig cfg;
  cfg.topology.k = 4;
  cfg.topology.n = 2;
  cfg.topology.wrap = param.wrap;
  cfg.routing = param.routing;
  cfg.vcs = param.vcs;
  cfg.message_length = 8;
  cfg.seed = 11;
  Network net(cfg, NetworkDeps{nullptr, make_routing(cfg),
                                 make_selection(cfg.selection)});
  EXPECT_TRUE(net.routing_algorithm().deadlock_free());

  TrafficConfig traffic;
  traffic.load = 1.2;  // deliberately past saturation
  InjectionProcess injection(net, traffic, cfg.seed);

  DetectorConfig det_cfg;
  det_cfg.interval = 25;
  det_cfg.recovery = RecoveryKind::None;  // detection only; nothing to break
  det_cfg.require_quiescence = false;     // even transient knots must be absent
  DeadlockDetector detector(det_cfg, cfg.seed);

  for (int i = 0; i < 4000; ++i) {
    injection.tick(net);
    net.step();
    detector.tick(net);
  }
  EXPECT_EQ(detector.total_deadlocks(), 0);
  EXPECT_EQ(detector.transient_knots(), 0);
  EXPECT_GT(net.counters().delivered, 100);

  // Drain completely: guaranteed by deadlock freedom.
  for (int i = 0; i < 30000 && !net.active_messages().empty(); ++i) {
    net.step();
  }
  EXPECT_TRUE(net.active_messages().empty());
}

INSTANTIATE_TEST_SUITE_P(
    Baselines, AvoidanceNeverDeadlocks,
    ::testing::Values(AvoidanceCase{RoutingKind::DatelineDOR, 2, true},
                      AvoidanceCase{RoutingKind::DatelineDOR, 4, true},
                      AvoidanceCase{RoutingKind::DuatoTFAR, 3, true},
                      AvoidanceCase{RoutingKind::DuatoTFAR, 4, true},
                      AvoidanceCase{RoutingKind::NegativeFirst, 1, false},
                      AvoidanceCase{RoutingKind::NegativeFirst, 2, false}));

// --------------------------------------------------------- dateline classes

class DatelineTest : public ::testing::Test {
 protected:
  DatelineTest() {
    cfg_.topology.k = 8;
    cfg_.topology.n = 1;
    cfg_.routing = RoutingKind::DatelineDOR;
    cfg_.vcs = 2;
    net_ = std::make_unique<Network>(cfg_, NetworkDeps{nullptr, make_routing(cfg_),
                                 make_selection(cfg_.selection)});
  }

  Message msg(NodeId src, NodeId dst) const {
    Message m;
    m.src = src;
    m.dst = dst;
    return m;
  }

  SimConfig cfg_;
  std::unique_ptr<Network> net_;
};

TEST_F(DatelineTest, ClassZeroBeforeTheWrapLink) {
  // 1 -> 4: travels +1 without wrapping; class 0 on every hop.
  for (NodeId here = 1; here < 4; ++here) {
    const ChannelId ch = torus_topology(net_->topology()).out_channel(here, 0, +1);
    EXPECT_EQ(DatelineDorRouting::dateline_class(*net_, msg(1, 4), ch), 0);
  }
}

TEST_F(DatelineTest, ClassSwitchesAfterCrossingTheWrap) {
  // 6 -> 2: hops 6,7,(wrap),0,1. The wrap hop and everything after use
  // class 1; before it class 0.
  const Message m = msg(6, 2);
  EXPECT_EQ(DatelineDorRouting::dateline_class(
                *net_, m, torus_topology(net_->topology()).out_channel(6, 0, +1)),
            0);
  const ChannelId wrap = torus_topology(net_->topology()).out_channel(7, 0, +1);
  EXPECT_TRUE(net_->phys(wrap).is_wrap);
  EXPECT_EQ(DatelineDorRouting::dateline_class(*net_, m, wrap), 1);
  EXPECT_EQ(DatelineDorRouting::dateline_class(
                *net_, m, torus_topology(net_->topology()).out_channel(0, 0, +1)),
            1);
  EXPECT_EQ(DatelineDorRouting::dateline_class(
                *net_, m, torus_topology(net_->topology()).out_channel(1, 0, +1)),
            1);
}

TEST_F(DatelineTest, NegativeDirectionSymmetric) {
  // 1 -> 5 the short way is -1: hops 1,0,(wrap),7,6. Class 1 after the wrap.
  const Message m = msg(1, 5);
  EXPECT_EQ(DatelineDorRouting::dateline_class(
                *net_, m, torus_topology(net_->topology()).out_channel(1, 0, -1)),
            0);
  const ChannelId wrap = torus_topology(net_->topology()).out_channel(0, 0, -1);
  EXPECT_TRUE(net_->phys(wrap).is_wrap);
  EXPECT_EQ(DatelineDorRouting::dateline_class(*net_, m, wrap), 1);
  EXPECT_EQ(DatelineDorRouting::dateline_class(
                *net_, m, torus_topology(net_->topology()).out_channel(7, 0, -1)),
            1);
}

TEST_F(DatelineTest, VcAllowedMatchesParity) {
  const Message m = msg(1, 4);
  const ChannelId ch = torus_topology(net_->topology()).out_channel(1, 0, +1);
  DatelineDorRouting dateline;
  EXPECT_TRUE(dateline.vc_allowed(*net_, m, ch, 0, kInvalidVc));
  EXPECT_FALSE(dateline.vc_allowed(*net_, m, ch, 1, kInvalidVc));
}

// ------------------------------------------------------------- Duato escape

TEST(DuatoTest, AdaptiveVcsFreeEscapeVcsRestricted) {
  SimConfig cfg;
  cfg.topology.k = 8;
  cfg.topology.n = 2;
  cfg.routing = RoutingKind::DuatoTFAR;
  cfg.vcs = 3;
  Network net(cfg, NetworkDeps{nullptr, make_routing(cfg),
                                 make_selection(cfg.selection)});
  DuatoTfarRouting duato;
  EXPECT_TRUE(duato.prefer_high_vc_indices());

  Message m;
  m.src = torus_topology(net.topology()).coordinates().pack({0, 0});
  m.dst = torus_topology(net.topology()).coordinates().pack({2, 2});

  const ChannelId dim0 = torus_topology(net.topology()).out_channel(m.src, 0, +1);
  const ChannelId dim1 = torus_topology(net.topology()).out_channel(m.src, 1, +1);
  // Adaptive VC (index >= 2) allowed on any minimal channel.
  EXPECT_TRUE(duato.vc_allowed(net, m, dim0, 2, kInvalidVc));
  EXPECT_TRUE(duato.vc_allowed(net, m, dim1, 2, kInvalidVc));
  // Escape VCs only along the DOR path (dimension 0 first).
  EXPECT_TRUE(duato.vc_allowed(net, m, dim0, 0, kInvalidVc));
  EXPECT_FALSE(duato.vc_allowed(net, m, dim1, 0, kInvalidVc));
  // Escape class parity follows the dateline rule (no wrap here: class 0).
  EXPECT_FALSE(duato.vc_allowed(net, m, dim0, 1, kInvalidVc));
}

}  // namespace
}  // namespace flexnet
