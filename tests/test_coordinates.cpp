#include "topo/coordinates.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace flexnet {
namespace {

TEST(Coordinates, SizesAndStrides) {
  const Coordinates c(16, 2);
  EXPECT_EQ(c.radix(), 16);
  EXPECT_EQ(c.dimensions(), 2);
  EXPECT_EQ(c.num_nodes(), 256);

  const Coordinates d(4, 4);
  EXPECT_EQ(d.num_nodes(), 256);
}

TEST(Coordinates, PackUnpackRoundTrip) {
  const Coordinates c(5, 3);
  for (NodeId id = 0; id < c.num_nodes(); ++id) {
    EXPECT_EQ(c.pack(c.unpack(id)), id);
  }
}

TEST(Coordinates, CoordinateExtraction) {
  const Coordinates c(16, 2);
  // Node 0x4A = 74 = (10, 4): dimension 0 is the least significant digit.
  EXPECT_EQ(c.coordinate(74, 0), 10);
  EXPECT_EQ(c.coordinate(74, 1), 4);
}

TEST(Coordinates, PackNormalizesModuloRadix) {
  const Coordinates c(8, 2);
  EXPECT_EQ(c.pack({9, 0}), c.pack({1, 0}));
  EXPECT_EQ(c.pack({-1, 0}), c.pack({7, 0}));
}

TEST(Coordinates, NeighborWrapsAround) {
  const Coordinates c(4, 2);
  // (3, 0) + dim0 -> (0, 0)
  EXPECT_EQ(c.neighbor(3, 0, +1), 0);
  // (0, 0) - dim0 -> (3, 0)
  EXPECT_EQ(c.neighbor(0, 0, -1), 3);
  // (1, 3) + dim1 -> (1, 0)
  EXPECT_EQ(c.neighbor(c.pack({1, 3}), 1, +1), c.pack({1, 0}));
}

TEST(Coordinates, NeighborIsInvolutionWithOpposite) {
  const Coordinates c(6, 3);
  for (NodeId id = 0; id < c.num_nodes(); id += 7) {
    for (int dim = 0; dim < 3; ++dim) {
      EXPECT_EQ(c.neighbor(c.neighbor(id, dim, +1), dim, -1), id);
    }
  }
}

TEST(Coordinates, RejectsInvalidShapes) {
  EXPECT_THROW(Coordinates(1, 2), std::invalid_argument);
  EXPECT_THROW(Coordinates(4, 0), std::invalid_argument);
  EXPECT_THROW(Coordinates(2, 40), std::invalid_argument);  // overflow guard
}

TEST(Coordinates, PackRejectsWrongArity) {
  const Coordinates c(4, 2);
  EXPECT_THROW((void)c.pack({1, 2, 3}), std::invalid_argument);
}

}  // namespace
}  // namespace flexnet
