#include "metrics/metrics.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "routing/routing.hpp"
#include "routing/selection.hpp"
#include "traffic/injection.hpp"

namespace flexnet {
namespace {

struct Rig {
  explicit Rig(double load, RoutingKind routing = RoutingKind::DOR,
               bool unidirectional = false) {
    cfg.topology.k = 4;
    cfg.topology.n = 2;
    cfg.topology.bidirectional = !unidirectional;
    cfg.routing = routing;
    cfg.message_length = 8;
    net = std::make_unique<Network>(cfg, NetworkDeps{nullptr, make_routing(cfg),
                                 make_selection(cfg.selection)});
    TrafficConfig traffic;
    traffic.load = load;
    injection = std::make_unique<InjectionProcess>(*net, traffic, 9);
    DetectorConfig det;
    det.interval = 25;
    detector = std::make_unique<DeadlockDetector>(det, 9);
  }

  void run(int cycles, MetricsCollector* collector = nullptr) {
    for (int i = 0; i < cycles; ++i) {
      injection->tick(*net);
      net->step();
      detector->tick(*net);
      if (collector) collector->sample(*net);
    }
  }

  SimConfig cfg;
  std::unique_ptr<Network> net;
  std::unique_ptr<InjectionProcess> injection;
  std::unique_ptr<DeadlockDetector> detector;
};

TEST(Metrics, WindowCountsAreDeltasNotTotals) {
  Rig rig(0.3);
  rig.run(500);  // warmup outside the window
  const std::int64_t before = rig.net->counters().delivered;
  ASSERT_GT(before, 0);

  MetricsCollector collector;
  collector.begin_window(*rig.net);
  rig.detector->reset_statistics();
  rig.run(1000, &collector);
  const WindowMetrics m = collector.finish(*rig.net, *rig.detector, true);

  EXPECT_EQ(m.window_cycles, 1000);
  EXPECT_EQ(m.delivered, rig.net->counters().delivered - before);
  EXPECT_GT(m.delivered, 0);
  EXPECT_GT(m.generated, 0);
  // Windowed flit and message counts agree up to boundary straddlers:
  // messages partially delivered before the window opened (their remaining
  // flits land in-window) and messages still in flight when it closed.
  const std::int64_t slack =
      8 * static_cast<std::int64_t>(rig.net->active_messages().size() + 8);
  EXPECT_GT(m.flits_delivered, m.delivered * 8 - slack);
  EXPECT_LT(m.flits_delivered, m.delivered * 8 + slack);
  EXPECT_GT(m.throughput_flits_per_node, 0.0);
  EXPECT_GT(m.avg_latency, 8.0);  // at least the serialization latency
  EXPECT_GT(m.avg_hops, 1.0);
}

TEST(Metrics, ThroughputMatchesOfferedBelowSaturation) {
  Rig rig(0.25);
  rig.run(500);
  MetricsCollector collector;
  collector.begin_window(*rig.net);
  rig.detector->reset_statistics();
  rig.run(2000, &collector);
  const WindowMetrics m = collector.finish(*rig.net, *rig.detector, true);
  EXPECT_NEAR(m.throughput_flits_per_node, rig.injection->offered_flit_rate(),
              rig.injection->offered_flit_rate() * 0.15);
}

TEST(Metrics, CongestionSamplesAreBounded) {
  Rig rig(0.8);
  MetricsCollector collector;
  collector.begin_window(*rig.net);
  rig.run(800, &collector);
  const WindowMetrics m = collector.finish(*rig.net, *rig.detector, true);
  EXPECT_GT(m.in_network_messages.mean(), 0.0);
  EXPECT_GE(m.blocked_fraction.min(), 0.0);
  EXPECT_LE(m.blocked_fraction.max(), 1.0);
  EXPECT_GE(m.blocked_messages.mean(), 0.0);
}

TEST(Metrics, DeadlockRecordsAggregatedIntoWindow) {
  // Unidirectional 4x4 torus DOR at high load deadlocks reliably.
  Rig rig(0.9, RoutingKind::DOR, /*unidirectional=*/true);
  MetricsCollector collector;
  collector.begin_window(*rig.net);
  rig.detector->reset_statistics();
  rig.run(4000, &collector);
  const WindowMetrics m = collector.finish(*rig.net, *rig.detector, true);
  ASSERT_GT(m.deadlocks, 0) << "expected deadlocks in a uni-torus at 0.9 load";
  EXPECT_EQ(m.deadlocks, rig.detector->total_deadlocks());
  EXPECT_GT(m.deadlock_set_size.mean(), 1.0);
  EXPECT_GT(m.resource_set_size.mean(), m.deadlock_set_size.mean());
  EXPECT_EQ(m.single_cycle_deadlocks + m.multi_cycle_deadlocks, m.deadlocks);
  EXPECT_GT(m.recovered, 0);
  // Normalized deadlocks uses completed messages as the denominator.
  EXPECT_NEAR(m.normalized_deadlocks,
              static_cast<double>(m.deadlocks) /
                  static_cast<double>(m.delivered + m.recovered),
              1e-12);
}

TEST(Metrics, RecoveredExcludedWhenConfigured) {
  Rig rig(0.9, RoutingKind::DOR, true);
  MetricsCollector collector;
  collector.begin_window(*rig.net);
  rig.detector->reset_statistics();
  rig.run(4000, &collector);
  const WindowMetrics with = collector.finish(*rig.net, *rig.detector, true);
  const WindowMetrics without = collector.finish(*rig.net, *rig.detector, false);
  ASSERT_GT(with.recovered, 0);
  EXPECT_GT(without.normalized_deadlocks, with.normalized_deadlocks);
  EXPECT_EQ(with.completed(true), with.delivered + with.recovered);
  EXPECT_EQ(without.completed(false), without.delivered);
}

TEST(Metrics, SampleStrideSubsamples) {
  Rig rig(0.3);
  MetricsCollector every(1);
  MetricsCollector sparse(10);
  every.begin_window(*rig.net);
  sparse.begin_window(*rig.net);
  for (int i = 0; i < 100; ++i) {
    rig.injection->tick(*rig.net);
    rig.net->step();
    every.sample(*rig.net);
    sparse.sample(*rig.net);
  }
  const WindowMetrics dense = every.finish(*rig.net, *rig.detector, true);
  const WindowMetrics thin = sparse.finish(*rig.net, *rig.detector, true);
  EXPECT_EQ(dense.in_network_messages.count(), 100);
  EXPECT_EQ(thin.in_network_messages.count(), 10);
}

}  // namespace
}  // namespace flexnet
