#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <array>
#include <sstream>

#include "exp/cli.hpp"
#include "exp/experiment.hpp"
#include "trace/forensics.hpp"
#include "trace/sinks.hpp"

namespace flexnet {
namespace {

TraceEvent make_event(Cycle cycle, TraceEventKind kind, MessageId msg = 7,
                      VcId vc = 3, VcId vc2 = kInvalidVc) {
  TraceEvent e;
  e.cycle = cycle;
  e.kind = kind;
  e.message = msg;
  e.vc = vc;
  e.vc2 = vc2;
  e.node = 1;
  e.arg = 42;
  return e;
}

/// A deadlock-prone configuration: unidirectional 4-ary 2-cube, unrestricted
/// DOR, one VC (the paper's most deadlock-heavy corner).
ExperimentConfig deadlocky_config() {
  ExperimentConfig cfg;
  cfg.sim.topology.k = 4;
  cfg.sim.topology.bidirectional = false;
  cfg.sim.routing = RoutingKind::DOR;
  cfg.sim.vcs = 1;
  cfg.traffic.load = 0.6;
  cfg.run.warmup = 500;
  cfg.run.measure = 2000;
  return cfg;
}

TEST(TraceEventKindNames, RoundTrip) {
  for (std::size_t i = 0; i < kNumTraceEventKinds; ++i) {
    const auto kind = static_cast<TraceEventKind>(i);
    EXPECT_EQ(parse_trace_event_kind(to_string(kind)), kind);
  }
  EXPECT_EQ(parse_trace_event_kind("NotAKind"), TraceEventKind::kCount_);
}

TEST(RingBufferSink, RetainsNewestEventsInOrder) {
  RingBufferSink ring(4);
  for (Cycle t = 0; t < 10; ++t) {
    ring.on_event(make_event(t, TraceEventKind::FlitHopped));
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_seen(), 10u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].cycle, static_cast<Cycle>(6 + i));
  }
}

TEST(RingBufferSink, FiltersByMessageAndFindsLastProgress) {
  RingBufferSink ring(16);
  ring.on_event(make_event(1, TraceEventKind::VcAllocated, 5));
  ring.on_event(make_event(2, TraceEventKind::FlitHopped, 6));
  ring.on_event(make_event(3, TraceEventKind::FlitHopped, 5));
  ring.on_event(make_event(4, TraceEventKind::MessageBlocked, 5));
  EXPECT_EQ(ring.events_for_message(5).size(), 3u);
  // The blocked event at cycle 4 is not progress; the hop at 3 is.
  EXPECT_EQ(ring.last_progress_cycle(5), 3);
  EXPECT_EQ(ring.last_progress_cycle(6), 2);
  EXPECT_EQ(ring.last_progress_cycle(99), -1);
}

TEST(Tracer, FansOutToEverySink) {
  RingBufferSink a(8);
  RingBufferSink b(8);
  Tracer tracer;
  EXPECT_FALSE(tracer.has_sinks());
  tracer.add_sink(&a);
  tracer.add_sink(&b);
  tracer.emit(make_event(1, TraceEventKind::FlitInjected));
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(a.snapshot().front(), b.snapshot().front());
}

TEST(BinaryEncoding, RoundTripsEveryField) {
  TraceEvent e = make_event(123456789012345, TraceEventKind::DeadlockDetected,
                            -1, kInvalidVc, 17);
  e.node = kInvalidNode;
  e.arg = -7;
  std::array<std::uint8_t, kBinaryTraceEventSize> buf{};
  encode_trace_event(e, buf.data());
  EXPECT_EQ(decode_trace_event(buf.data()), e);
}

TEST(BinaryTraceSink, StreamRoundTripAndTruncationDetection) {
  std::ostringstream out(std::ios::binary);
  BinaryTraceSink sink(out);
  std::vector<TraceEvent> sent;
  for (Cycle t = 0; t < 5; ++t) {
    sent.push_back(make_event(t, TraceEventKind::VcFreed, t));
    sink.on_event(sent.back());
  }
  sink.flush();
  EXPECT_EQ(sink.events_written(), 5u);

  std::istringstream in(out.str(), std::ios::binary);
  EXPECT_EQ(read_binary_trace(in), sent);

  std::istringstream truncated(out.str().substr(0, out.str().size() - 1),
                               std::ios::binary);
  EXPECT_THROW(read_binary_trace(truncated), std::runtime_error);
}

TEST(ChromeTraceSink, EmitsLoadableJson) {
  std::ostringstream out;
  {
    ChromeTraceSink sink(out);
    sink.on_event(make_event(10, TraceEventKind::FlitInjected));
    TraceEvent blocked = make_event(20, TraceEventKind::MessageBlocked, 9);
    sink.on_event(blocked);
    TraceEvent unblocked = make_event(35, TraceEventKind::MessageUnblocked, 9);
    sink.on_event(unblocked);
    sink.flush();
  }
  const std::string json = out.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.substr(json.size() - 2), "]\n");
  EXPECT_NE(json.find("\"FlitInjected\""), std::string::npos);
  // The blocked episode collapses into one complete slice with its duration.
  EXPECT_NE(json.find("\"MessageBlocked\",\"ph\":\"X\",\"ts\":20"),
            std::string::npos);
  EXPECT_NE(json.find("\"dur\":15"), std::string::npos);
  EXPECT_EQ(json.find("MessageUnblocked"), std::string::npos);
}

TEST(LiveTracing, EventCountsMatchNetworkCounters) {
  ExperimentConfig cfg = deadlocky_config();
  Simulation sim(cfg);
  RingBufferSink ring(1 << 20);
  Tracer tracer;
  tracer.add_sink(&ring);
  NetworkHooks hooks = sim.network().hooks();
  hooks.tracer = &tracer;
  sim.network().install_hooks(hooks);
  sim.run_cycles(1500);

  std::array<std::int64_t, kNumTraceEventKinds> counts{};
  Cycle prev = -1;
  for (const TraceEvent& e : ring.snapshot()) {
    ++counts[static_cast<std::size_t>(e.kind)];
    EXPECT_GE(e.cycle, prev);  // emitted in causal (cycle) order
    prev = e.cycle;
  }
  const auto count = [&](TraceEventKind k) {
    return counts[static_cast<std::size_t>(k)];
  };
  const Network::Counters& c = sim.network().counters();
  EXPECT_EQ(count(TraceEventKind::MessageInjected), c.injected);
  EXPECT_EQ(count(TraceEventKind::MessageDelivered), c.delivered);
  EXPECT_EQ(count(TraceEventKind::MessageRemoved), c.recovered);
  EXPECT_EQ(count(TraceEventKind::FlitDelivered), c.flits_delivered);
  EXPECT_GT(count(TraceEventKind::FlitHopped), 0);
  EXPECT_GT(count(TraceEventKind::DeadlockDetected), 0);
  EXPECT_EQ(count(TraceEventKind::DeadlockRecovered),
            count(TraceEventKind::DeadlockDetected));
  // Every blocked episode that ended produced exactly one unblock or removal.
  EXPECT_GE(count(TraceEventKind::MessageBlocked),
            count(TraceEventKind::MessageUnblocked));
  // Dashed arcs are balanced up to the ones still open at the end.
  EXPECT_GE(count(TraceEventKind::CwgArcAdded),
            count(TraceEventKind::CwgArcRemoved));
}

TEST(LiveTracing, DisabledTracerChangesNothing) {
  ExperimentConfig cfg = deadlocky_config();
  const ExperimentResult untraced = run_experiment(cfg);
  cfg.trace.ring_capacity = 4096;
  cfg.trace.forensics = true;
  const ExperimentResult traced = run_experiment(cfg);
  EXPECT_EQ(untraced.window.generated, traced.window.generated);
  EXPECT_EQ(untraced.window.delivered, traced.window.delivered);
  EXPECT_EQ(untraced.window.deadlocks, traced.window.deadlocks);
}

TEST(Forensics, RecordsFormationOfRealDeadlocks) {
  ExperimentConfig cfg = deadlocky_config();
  cfg.trace.forensics = true;
  const ExperimentResult result = run_experiment(cfg);
  ASSERT_GT(result.window.deadlocks, 0);
  ASSERT_FALSE(result.forensics.empty());

  for (const ForensicsReport& report : result.forensics) {
    EXPECT_GT(report.detected_at, 0);
    EXPECT_GT(report.knot_size, 0);
    ASSERT_FALSE(report.members.empty());
    EXPECT_NE(report.victim, kInvalidMessage);
    // Closure order is sorted by when each member's blocked episode began.
    for (std::size_t i = 1; i < report.members.size(); ++i) {
      EXPECT_LE(report.members[i - 1].blocked_since,
                report.members[i].blocked_since);
    }
    bool victim_in_set = false;
    for (const ForensicsMember& m : report.members) {
      EXPECT_FALSE(m.held.empty());
      EXPECT_FALSE(m.requests.empty());
      // The default ring is deep enough to cover each member's history.
      EXPECT_GE(m.last_progress, 0);
      EXPECT_LE(m.last_progress, report.detected_at);
      victim_in_set |= (m.id == report.victim);
    }
    EXPECT_TRUE(victim_in_set);
    EXPECT_NE(report.dot.find("digraph"), std::string::npos);

    const std::string text = format_forensics_report(report);
    EXPECT_NE(text.find("formation forensics"), std::string::npos);
    EXPECT_NE(text.find("last progress"), std::string::npos);
  }
}

TEST(TraceConfig, PointSuffixKeepsFilesDistinct) {
  TraceConfig base;
  base.chrome_path = "out.json";
  base.binary_path = "out.bin";
  base.forensics_dot_prefix = "dl_";
  const TraceConfig p2 = base.with_point_suffix(2);
  EXPECT_EQ(p2.chrome_path, "out.json.p2");
  EXPECT_EQ(p2.binary_path, "out.bin.p2");
  EXPECT_EQ(p2.forensics_dot_prefix, "dl_.p2.");
  EXPECT_FALSE(TraceConfig{}.enabled());
  EXPECT_TRUE(p2.enabled());
}

TEST(TraceCli, FlagsReachTraceConfig) {
  const char* argv[] = {"prog",           "--trace-ring", "1024",
                        "--trace-chrome", "t.json",       "--trace-bin",
                        "t.bin",          "--forensics"};
  const auto opts = Options::parse(8, argv);
  ASSERT_TRUE(opts.has_value());
  const ExperimentConfig cfg = experiment_from_options(*opts);
  EXPECT_EQ(cfg.trace.ring_capacity, 1024u);
  EXPECT_EQ(cfg.trace.chrome_path, "t.json");
  EXPECT_EQ(cfg.trace.binary_path, "t.bin");
  EXPECT_TRUE(cfg.trace.forensics);
}

}  // namespace
}  // namespace flexnet
