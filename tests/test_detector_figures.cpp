// The paper's Section 2 worked examples (Figures 1-4), reconstructed as
// channel wait-for graphs and pushed through the exact detection pipeline.
// These tests pin down the definitions: deadlock set, resource set, knot
// cycle density, dependent messages, and the cycles-without-knot case.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/knot.hpp"

namespace flexnet {
namespace {

// ---------------------------------------------------------------------------
// Figure 1: "single-cycle deadlock" under DOR with 1 VC.
// m1 owns {c1,c2} and requires c3; m2 owns {c3,c4,c5} and requires c6;
// m3 owns {c6,c7,c0} and requires c1. m4 and m5 are en route and own all the
// channels they need (no request arcs).
Cwg figure1() {
  return Cwg(12, {{.id = 1, .held = {1, 2}, .requests = {3}},
                  {.id = 2, .held = {3, 4, 5}, .requests = {6}},
                  {.id = 3, .held = {6, 7, 0}, .requests = {1}},
                  {.id = 4, .held = {8, 9}, .requests = {}},
                  {.id = 5, .held = {10, 11}, .requests = {}}});
}

TEST(PaperFigure1, KnotContainsAllEightChannels) {
  const auto knots = find_knots(figure1());
  ASSERT_EQ(knots.size(), 1u);
  EXPECT_EQ(knots[0].knot_vcs, (std::vector<VcId>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(PaperFigure1, DeadlockSetIsTheThreeBlockedMessages) {
  const auto knots = find_knots(figure1());
  ASSERT_EQ(knots.size(), 1u);
  EXPECT_EQ(knots[0].deadlock_set, (std::vector<MessageId>{1, 2, 3}));
  EXPECT_EQ(knots[0].resource_set.size(), 8u);
}

TEST(PaperFigure1, KnotCycleDensityIsOne) {
  const Cwg cwg = figure1();
  const auto knots = find_knots(cwg);
  ASSERT_EQ(knots.size(), 1u);
  const CycleEnumeration density = knot_cycle_density(cwg, knots[0], 100);
  EXPECT_EQ(density.count, 1);  // single-cycle deadlock
}

TEST(PaperFigure1, MovingMessagesStayOutOfEverything) {
  const auto knots = find_knots(figure1());
  ASSERT_EQ(knots.size(), 1u);
  for (const MessageId moving : {4, 5}) {
    EXPECT_FALSE(std::binary_search(knots[0].deadlock_set.begin(),
                                    knots[0].deadlock_set.end(),
                                    static_cast<MessageId>(moving)));
  }
  EXPECT_TRUE(knots[0].dependent_messages.empty());
}

// ---------------------------------------------------------------------------
// Figure 2: "single-cycle deadlock" under minimal adaptive routing, 1 VC.
// Four messages have exhausted their adaptivity; each owns two channels and
// waits for the single channel that continues its route, owned by the next
// member. The knot is {c1,c3,c5,c7} while the resource set has 8 channels.
// m6 owns {c8,c9} and waits on c1 - a *dependent* message.
Cwg figure2() {
  return Cwg(10, {{.id = 1, .held = {0, 1}, .requests = {3}},
                  {.id = 2, .held = {2, 3}, .requests = {5}},
                  {.id = 3, .held = {4, 5}, .requests = {7}},
                  {.id = 4, .held = {6, 7}, .requests = {1}},
                  {.id = 6, .held = {8, 9}, .requests = {1}}});
}

TEST(PaperFigure2, KnotIsTheOddChannels) {
  const auto knots = find_knots(figure2());
  ASSERT_EQ(knots.size(), 1u);
  EXPECT_EQ(knots[0].knot_vcs, (std::vector<VcId>{1, 3, 5, 7}));
}

TEST(PaperFigure2, DeadlockSetHasFourMessagesAndEightResources) {
  const auto knots = find_knots(figure2());
  ASSERT_EQ(knots.size(), 1u);
  EXPECT_EQ(knots[0].deadlock_set, (std::vector<MessageId>{1, 2, 3, 4}));
  EXPECT_EQ(knots[0].resource_set, (std::vector<VcId>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(PaperFigure2, DensityOneDespiteAdaptiveRouting) {
  const Cwg cwg = figure2();
  const auto knots = find_knots(cwg);
  ASSERT_EQ(knots.size(), 1u);
  EXPECT_EQ(knot_cycle_density(cwg, knots[0], 100).count, 1);
}

TEST(PaperFigure2, M6IsDependentNotDeadlocked) {
  const auto knots = find_knots(figure2());
  ASSERT_EQ(knots.size(), 1u);
  EXPECT_EQ(knots[0].dependent_messages, (std::vector<MessageId>{6}));
  EXPECT_FALSE(std::binary_search(knots[0].deadlock_set.begin(),
                                  knots[0].deadlock_set.end(),
                                  static_cast<MessageId>(6)));
}

// ---------------------------------------------------------------------------
// Figure 3: "multi-cycle deadlock" under minimal adaptive routing with 2 VCs.
// The figure's exact wiring is not recoverable from the text, so this graph
// reproduces its published characterization instead: 8 blocked messages,
// 16 occupied VCs, an 8-VC knot, and a knot cycle density of 4.
//
// Tips t_i are the odd VCs {1,3,...,15}; message i holds {2i, 2i+1}. The tip
// ring t1->t2->...->t8->t1 carries one cycle; three chords (t1->t4, t2->t7,
// t3->t2) each add exactly one more and are mutually incompatible, so the
// density is exactly 4.
Cwg figure3() {
  auto tip = [](int i) { return 2 * (i - 1) + 1; };  // t1..t8 -> 1,3,...,15
  std::vector<CwgMessage> messages;
  for (int i = 1; i <= 8; ++i) {
    CwgMessage m;
    m.id = i;
    m.held = {2 * (i - 1), 2 * (i - 1) + 1};
    m.requests = {tip(i % 8 + 1)};  // ring successor
    messages.push_back(std::move(m));
  }
  messages[0].requests.push_back(tip(4));  // t1 -> t4
  messages[1].requests.push_back(tip(7));  // t2 -> t7
  messages[2].requests.push_back(tip(2));  // t3 -> t2
  return Cwg(16, std::move(messages));
}

TEST(PaperFigure3, EightMessageSixteenResourceKnot) {
  const auto knots = find_knots(figure3());
  ASSERT_EQ(knots.size(), 1u);
  EXPECT_EQ(knots[0].knot_vcs,
            (std::vector<VcId>{1, 3, 5, 7, 9, 11, 13, 15}));
  EXPECT_EQ(knots[0].deadlock_set.size(), 8u);
  EXPECT_EQ(knots[0].resource_set.size(), 16u);
}

TEST(PaperFigure3, KnotCycleDensityIsFour) {
  const Cwg cwg = figure3();
  const auto knots = find_knots(cwg);
  ASSERT_EQ(knots.size(), 1u);
  const CycleEnumeration density = knot_cycle_density(cwg, knots[0], 1000);
  EXPECT_EQ(density.count, 4);  // multi-cycle deadlock
  EXPECT_FALSE(density.capped);
}

// ---------------------------------------------------------------------------
// Figure 4: "cyclic non-deadlock". Identical to Figure 3 except one message's
// destination changed so that it can also acquire an escape VC (c16, held by
// a draining message m9). Cycles abound, yet no knot exists: c16 is reachable
// from the would-be knot but nothing returns from it.
Cwg figure4() {
  auto tip = [](int i) { return 2 * (i - 1) + 1; };
  std::vector<CwgMessage> messages;
  for (int i = 1; i <= 8; ++i) {
    CwgMessage m;
    m.id = i;
    m.held = {2 * (i - 1), 2 * (i - 1) + 1};
    m.requests = {tip(i % 8 + 1)};
    messages.push_back(std::move(m));
  }
  messages[0].requests.push_back(tip(4));
  messages[1].requests.push_back(tip(7));
  messages[2].requests.push_back(tip(2));
  // The changed destination: m5 can now also use c16.
  messages[4].requests.push_back(16);
  // m9 currently owns c16 but is draining toward delivery (not blocked).
  messages.push_back({.id = 9, .held = {16, 17}, .requests = {}});
  return Cwg(18, std::move(messages));
}

TEST(PaperFigure4, CyclesExistButNoKnot) {
  const Cwg cwg = figure4();
  EXPECT_FALSE(has_deadlock(cwg));
  const CycleEnumeration cycles = enumerate_simple_cycles(cwg.graph(), 1000);
  EXPECT_EQ(cycles.count, 4);  // the same cycles as Figure 3 remain
}

TEST(PaperFigure4, EscapeVertexReachableButNotReturning) {
  const Cwg cwg = figure4();
  // c16 reachable from the cycle set; nothing returns (its owner drains).
  EXPECT_TRUE(cwg.graph().has_edge(9, 16));  // m5's tip is VC 9
  EXPECT_TRUE(cwg.graph().out(16).size() == 1u);  // solid arc 16->17 only
  EXPECT_TRUE(cwg.graph().out(17).empty());
}

TEST(PaperFigure4, CyclesAreNecessaryButNotSufficient) {
  // The headline of the paper's Section 2.2.3, per Duato: eliminating all
  // cycles (as strict avoidance does) is overly restrictive.
  const Cwg with_escape = figure4();
  const Cwg without_escape = figure3();
  EXPECT_GT(enumerate_simple_cycles(with_escape.graph(), 100).count, 0);
  EXPECT_FALSE(has_deadlock(with_escape));
  EXPECT_TRUE(has_deadlock(without_escape));
}

}  // namespace
}  // namespace flexnet
