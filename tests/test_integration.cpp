// Paper-level integration claims at a tractable scale (8-ary 2-cube, short
// windows): the qualitative results of Section 3 must reproduce.
#include <gtest/gtest.h>

#include "exp/experiment.hpp"

namespace flexnet {
namespace {

ExperimentConfig base_config() {
  ExperimentConfig cfg;
  cfg.sim.topology.k = 8;
  cfg.sim.topology.n = 2;
  cfg.sim.message_length = 16;
  cfg.run.warmup = 2000;
  cfg.run.measure = 6000;
  return cfg;
}

ExperimentResult run(RoutingKind routing, int vcs, double load,
                     bool bidirectional = true, int buffer_depth = 2) {
  ExperimentConfig cfg = base_config();
  cfg.sim.routing = routing;
  cfg.sim.vcs = vcs;
  cfg.sim.topology.bidirectional = bidirectional;
  cfg.sim.buffer_depth = buffer_depth;
  cfg.traffic.load = load;
  return run_experiment(cfg);
}

TEST(PaperClaims, UnidirectionalDeadlocksMoreThanBidirectional) {
  // Section 3.1: the uni-torus sees substantially more deadlock than the
  // bi-torus under DOR with one VC.
  const ExperimentResult uni = run(RoutingKind::DOR, 1, 0.6, false);
  const ExperimentResult bi = run(RoutingKind::DOR, 1, 0.6, true);
  EXPECT_GT(uni.window.deadlocks, 0);
  EXPECT_GT(uni.window.normalized_deadlocks,
            2.0 * bi.window.normalized_deadlocks);
}

TEST(PaperClaims, DorDeadlocksAreSmallAndSingleCycle) {
  // Section 3.2: DOR forms only single-cycle deadlocks with small sets.
  const ExperimentResult r = run(RoutingKind::DOR, 1, 0.5);
  ASSERT_GT(r.window.deadlocks, 0);
  EXPECT_EQ(r.window.multi_cycle_deadlocks, 0);
  EXPECT_LE(r.window.deadlock_set_size.max(), 40.0);
}

TEST(PaperClaims, TfarDeadlocksAreLargerAndMultiCycle) {
  // Section 3.2: TFAR's deadlocks are rarer but much larger multi-cycle
  // knots with higher knot cycle density.
  const ExperimentResult dor = run(RoutingKind::DOR, 1, 0.5);
  const ExperimentResult tfar = run(RoutingKind::TFAR, 1, 0.5);
  ASSERT_GT(tfar.window.deadlocks, 0);
  ASSERT_GT(dor.window.deadlocks, 0);
  // At this scale (8-ary rings are half as long as the paper's) DOR's ring
  // knots are closer in size, so the factor is smaller than the paper's 5-7x.
  EXPECT_GT(tfar.window.deadlock_set_size.mean(),
            1.2 * dor.window.deadlock_set_size.mean());
  EXPECT_GT(tfar.window.resource_set_size.mean(),
            1.2 * dor.window.resource_set_size.mean());
  EXPECT_GT(tfar.window.knot_cycle_density.max(),
            dor.window.knot_cycle_density.max());
  EXPECT_GT(tfar.window.multi_cycle_deadlocks, 0);
}

TEST(PaperClaims, DorSustainsHigherSaturationThroughputThanTfar) {
  // Section 3.2: "DOR has higher sustained throughput over TFAR despite
  // having a larger number of deadlocks"; TFAR's performance is wrecked by
  // a few large deadlocks.
  const ExperimentResult dor = run(RoutingKind::DOR, 1, 0.6);
  const ExperimentResult tfar = run(RoutingKind::TFAR, 1, 0.6);
  EXPECT_GT(dor.window.throughput_flits_per_node,
            tfar.window.throughput_flits_per_node);
  EXPECT_GT(dor.window.deadlocks, tfar.window.deadlocks);
}

TEST(PaperClaims, VirtualChannelsPushDeadlockOnsetOutward) {
  // Section 3.3: the second VC more than doubles the load at which
  // deadlocks appear; with enough VCs no deadlock occurs below saturation.
  const ExperimentResult dor1 = run(RoutingKind::DOR, 1, 0.25);
  const ExperimentResult dor2 = run(RoutingKind::DOR, 2, 0.25);
  EXPECT_GT(dor1.window.deadlocks, 0);
  EXPECT_EQ(dor2.window.deadlocks, 0);
}

TEST(PaperClaims, TfarWithTwoVcsIsDeadlockFreeBelowSaturation) {
  const ExperimentResult r = run(RoutingKind::TFAR, 2, 0.3);
  EXPECT_FALSE(r.saturated);
  EXPECT_EQ(r.window.deadlocks, 0);
}

TEST(PaperClaims, TfarWithThreeVcsSeesNoDeadlockEvenDeepInSaturation) {
  const ExperimentResult r = run(RoutingKind::TFAR, 3, 1.2);
  EXPECT_EQ(r.window.deadlocks, 0);
}

TEST(PaperClaims, VirtualCutThroughOutlastsWormhole) {
  // Section 3.4: virtual cut-through (buffer depth = message length) both
  // saturates at a substantially higher load and sees far less deadlock. At
  // a load where 2-flit wormhole has collapsed into deadlocks, VCT still
  // accepts the full offered traffic with none.
  const ExperimentResult wormhole =
      run(RoutingKind::TFAR, 1, 0.3, true, /*buffer_depth=*/2);
  const ExperimentResult vct =
      run(RoutingKind::TFAR, 1, 0.3, true, /*buffer_depth=*/16);
  EXPECT_TRUE(wormhole.saturated);
  EXPECT_GT(wormhole.window.deadlocks, 0);
  EXPECT_FALSE(vct.saturated);
  EXPECT_EQ(vct.window.deadlocks, 0);
}

TEST(PaperClaims, HigherNodeDegreeReducesDeadlocks) {
  // Section 3.5: a 4-ary 4-cube (same node count as 16-ary 2-cube) sees far
  // fewer deadlocks under TFAR with one VC. Scaled here to 3-ary 4-cube vs
  // 9-ary 2-cube (81 nodes each).
  ExperimentConfig low = base_config();
  low.sim.routing = RoutingKind::TFAR;
  low.sim.topology.k = 9;
  low.sim.topology.n = 2;
  low.traffic.load = 0.5;
  ExperimentConfig high = low;
  high.sim.topology.k = 3;
  high.sim.topology.n = 4;
  const ExperimentResult low_degree = run_experiment(low);
  const ExperimentResult high_degree = run_experiment(high);
  EXPECT_GT(low_degree.window.deadlocks, 0);
  EXPECT_LT(high_degree.window.normalized_deadlocks,
            0.5 * low_degree.window.normalized_deadlocks);
}

TEST(PaperClaims, RecoveryKeepsDorFlowingThroughDeadlocks) {
  // With recovery, a deadlock-prone configuration still delivers the bulk of
  // its traffic (the premise of recovery-based routing).
  const ExperimentResult r = run(RoutingKind::DOR, 1, 0.5);
  ASSERT_GT(r.window.deadlocks, 0);
  EXPECT_GT(r.window.delivered, 10 * r.window.deadlocks);
  EXPECT_GT(r.normalized_throughput, 0.05);
}

TEST(PaperClaims, CyclesAppearAtSaturationBeyondTheDeadlocks) {
  // Section 3.2: resource dependency cycles abound once TFAR saturates —
  // far more cycle sightings than actual knots (cycles are necessary but
  // not sufficient; the graph-level proof of that is in the Figure 4 tests).
  ExperimentConfig cfg = base_config();
  cfg.sim.routing = RoutingKind::TFAR;
  cfg.sim.vcs = 1;
  cfg.traffic.load = 0.4;
  cfg.detector.count_total_cycles = true;
  cfg.detector.cycle_sample_every = 1;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_GT(r.window.cwg_cycles.max(), 0.0);
  // Most sampled instants with cycles did not coincide with a deadlock.
  EXPECT_GT(r.window.cwg_cycles.sum(), static_cast<double>(r.window.deadlocks));
}

}  // namespace
}  // namespace flexnet
