#include "routing/table.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "routing/routing.hpp"
#include "routing/selection.hpp"
#include "sim/network.hpp"

namespace flexnet {
namespace {

SimConfig graph_cfg(TopoKind kind, RoutingKind routing) {
  SimConfig cfg;
  cfg.topo_kind = kind;
  cfg.topo_nodes = 24;
  cfg.topo_degree = 3;
  cfg.topo_seed = 11;
  cfg.routing = routing;
  return cfg;
}

Network make_net(const SimConfig& cfg) {
  return Network(cfg, NetworkDeps{nullptr, make_routing(cfg),
                                 make_selection(cfg.selection)});
}

const TableRouting& tables_of(const Network& net) {
  const auto* table =
      dynamic_cast<const TableRouting*>(&net.routing_algorithm());
  EXPECT_NE(table, nullptr);
  return *table;
}

// Parsed view of a flexnet-rtable-v1 dump, for walking routes in the test
// without reaching into TableRouting internals.
struct ParsedTables {
  int nodes = 0;
  int states = 1;
  std::set<ChannelId> down;
  std::map<std::tuple<int, int, int>, std::vector<ChannelId>> route;
};

ParsedTables parse_tables(const std::string& text) {
  ParsedTables t;
  std::istringstream in(text);
  std::string word;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    if (!(ls >> word)) continue;
    if (word == "nodes") {
      ls >> t.nodes;
    } else if (word == "states") {
      ls >> t.states;
    } else if (word == "down") {
      ChannelId ch;
      ls >> ch;
      t.down.insert(ch);
    } else if (word == "route") {
      int v = 0, s = 0, dst = 0;
      ls >> v >> s >> dst;
      std::vector<ChannelId> entries;
      ChannelId ch;
      while (ls >> ch) entries.push_back(ch);
      t.route[{v, s, dst}] = std::move(entries);
    }
  }
  return t;
}

std::string dump_text(const TableRouting& table) {
  std::ostringstream out;
  table.dump(out);
  return out.str();
}

TEST(TableRouting, MinimalTablesDecreaseDistanceEverywhere) {
  const Network net(
      make_net(graph_cfg(TopoKind::RandomIrregular, RoutingKind::TableMin)));
  const ParsedTables t = parse_tables(dump_text(tables_of(net)));
  const Topology& topo = net.topology();
  int entries = 0;
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    for (NodeId dst = 0; dst < topo.num_nodes(); ++dst) {
      if (v == dst) continue;
      const auto it = t.route.find({v, 0, dst});
      ASSERT_NE(it, t.route.end()) << v << " -> " << dst << " has no entry";
      ASSERT_FALSE(it->second.empty());
      for (const ChannelId id : it->second) {
        const ChannelDesc& ch = topo.channel(id);
        EXPECT_EQ(ch.src, v);
        EXPECT_EQ(topo.min_distance(ch.dst, dst), topo.min_distance(v, dst) - 1);
        ++entries;
      }
    }
  }
  EXPECT_GT(entries, 0);
}

TEST(TableRouting, FullMeshRoutesAreSingleHop) {
  SimConfig cfg = graph_cfg(TopoKind::FullMesh, RoutingKind::TableMin);
  cfg.topo_nodes = 8;
  const Network net(make_net(cfg));
  const ParsedTables t = parse_tables(dump_text(tables_of(net)));
  for (NodeId v = 0; v < 8; ++v) {
    for (NodeId dst = 0; dst < 8; ++dst) {
      if (v == dst) continue;
      const auto& entries = t.route.at({v, 0, dst});
      ASSERT_EQ(entries.size(), 1u);
      EXPECT_EQ(net.topology().channel(entries[0]).dst, dst);
    }
  }
}

// Walk the tables like a header flit would: at each hop take a candidate,
// update the up/down state, and require arrival within a generous hop bound.
void expect_all_pairs_reachable(const Network& net, const ParsedTables& t) {
  const Topology& topo = net.topology();
  for (NodeId src = 0; src < topo.num_nodes(); ++src) {
    for (NodeId dst = 0; dst < topo.num_nodes(); ++dst) {
      if (src == dst) continue;
      NodeId cur = src;
      int state = 0;
      int hops = 0;
      while (cur != dst) {
        ASSERT_LE(++hops, 2 * topo.num_nodes())
            << src << " -> " << dst << " did not terminate";
        const auto it = t.route.find({cur, state, dst});
        ASSERT_NE(it, t.route.end());
        ASSERT_FALSE(it->second.empty());
        const ChannelDesc& ch = topo.channel(it->second.front());
        ASSERT_EQ(ch.src, cur);
        if (t.states > 1) state = t.down.count(ch.id) ? 1 : 0;
        cur = ch.dst;
      }
    }
  }
}

TEST(TableRouting, MinimalTablesReachAllPairs) {
  const Network net(
      make_net(graph_cfg(TopoKind::RandomIrregular, RoutingKind::TableMin)));
  expect_all_pairs_reachable(net, parse_tables(dump_text(tables_of(net))));
}

TEST(TableRouting, UpDownTablesReachAllPairs) {
  const Network net(make_net(
      graph_cfg(TopoKind::RandomIrregular, RoutingKind::TableUpDown)));
  const ParsedTables t = parse_tables(dump_text(tables_of(net)));
  EXPECT_EQ(t.states, 2);
  expect_all_pairs_reachable(net, t);
}

TEST(TableRouting, UpDownNeverClimbsAfterDescending) {
  const Network net(make_net(
      graph_cfg(TopoKind::RandomIrregular, RoutingKind::TableUpDown)));
  const ParsedTables t = parse_tables(dump_text(tables_of(net)));
  // State 1 = "has taken a down channel": every candidate must be down.
  for (const auto& [key, entries] : t.route) {
    if (std::get<1>(key) != 1) continue;
    for (const ChannelId ch : entries) {
      EXPECT_TRUE(t.down.count(ch))
          << "up channel " << ch << " offered in down-only state";
    }
  }
}

TEST(TableRouting, UpDownChannelDependencyGraphIsAcyclic) {
  // The deadlock-freedom argument made executable: build the channel
  // dependency graph induced by the tables (ch1 -> ch2 iff some destination
  // routes a message arriving over ch1 onto ch2) and verify it has no cycle.
  const Network net(make_net(
      graph_cfg(TopoKind::RandomIrregular, RoutingKind::TableUpDown)));
  const ParsedTables t = parse_tables(dump_text(tables_of(net)));
  const Topology& topo = net.topology();
  const std::size_t n = topo.channels().size();
  std::vector<std::set<ChannelId>> deps(n);
  for (const auto& [key, entries] : t.route) {
    const auto [v, s, dst] = key;
    for (const ChannelId out : entries) {
      // Which incoming channels can a message be on at (v, s)? Any channel
      // into v whose post-traversal state is s.
      for (const ChannelDesc& in : topo.channels()) {
        if (in.dst != v) continue;
        const int in_state = t.down.count(in.id) ? 1 : 0;
        if (in_state == s) deps[static_cast<std::size_t>(in.id)].insert(out);
      }
    }
  }
  // Iterative three-color DFS.
  std::vector<int> color(n, 0);  // 0 white, 1 gray, 2 black
  for (std::size_t root = 0; root < n; ++root) {
    if (color[root] != 0) continue;
    std::vector<std::pair<std::size_t, bool>> stack{{root, false}};
    while (!stack.empty()) {
      auto [v, done] = stack.back();
      stack.pop_back();
      if (done) {
        color[v] = 2;
        continue;
      }
      if (color[v] != 0) continue;  // reached earlier via a sibling
      color[v] = 1;
      stack.push_back({v, true});
      for (const ChannelId w : deps[v]) {
        const auto wi = static_cast<std::size_t>(w);
        ASSERT_NE(color[wi], 1) << "cycle through channel " << w;
        if (color[wi] == 0) stack.push_back({wi, false});
      }
    }
  }
}

TEST(TableRouting, DumpLoadRoundTripIsByteIdentical) {
  const std::string path = ::testing::TempDir() + "flexnet_tables.rt";
  SimConfig cfg = graph_cfg(TopoKind::RandomIrregular, RoutingKind::TableUpDown);
  {
    const Network net(make_net(cfg));
    std::ofstream out(path);
    tables_of(net).dump(out);
  }
  cfg.route_table_file = path;
  const Network loaded(make_net(cfg));
  {
    const Network built(make_net(graph_cfg(TopoKind::RandomIrregular,
                                           RoutingKind::TableUpDown)));
    EXPECT_EQ(dump_text(tables_of(loaded)), dump_text(tables_of(built)));
  }
  std::filesystem::remove(path);
}

TEST(TableRouting, LoadRejectsTopologyMismatch) {
  const std::string path = ::testing::TempDir() + "flexnet_tables_mismatch.rt";
  {
    const Network net(
        make_net(graph_cfg(TopoKind::RandomIrregular, RoutingKind::TableMin)));
    std::ofstream out(path);
    tables_of(net).dump(out);
  }
  SimConfig other = graph_cfg(TopoKind::RandomIrregular, RoutingKind::TableMin);
  other.topo_seed = 12;  // different graph, different content hash
  other.route_table_file = path;
  EXPECT_THROW((void)make_net(other), std::runtime_error);

  SimConfig wrong_mode =
      graph_cfg(TopoKind::RandomIrregular, RoutingKind::TableUpDown);
  wrong_mode.route_table_file = path;
  EXPECT_THROW((void)make_net(wrong_mode), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(TableRouting, LoadRejectsTruncatedFile) {
  const std::string path = ::testing::TempDir() + "flexnet_tables_trunc.rt";
  SimConfig cfg = graph_cfg(TopoKind::RandomIrregular, RoutingKind::TableMin);
  {
    const Network net(make_net(cfg));
    const std::string full = dump_text(tables_of(net));
    std::ofstream out(path);
    out << full.substr(0, full.size() / 2);  // drop the tail route lines
  }
  cfg.route_table_file = path;
  EXPECT_THROW((void)make_net(cfg), std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace flexnet
