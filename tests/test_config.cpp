#include "sim/config.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace flexnet {
namespace {

TEST(SimConfig, DefaultsMatchThePaperBaseline) {
  const SimConfig cfg;
  EXPECT_EQ(cfg.topology.k, 16);
  EXPECT_EQ(cfg.topology.n, 2);
  EXPECT_TRUE(cfg.topology.bidirectional);
  EXPECT_TRUE(cfg.topology.wrap);
  EXPECT_EQ(cfg.vcs, 1);
  EXPECT_EQ(cfg.buffer_depth, 2);
  EXPECT_EQ(cfg.message_length, 32);
  EXPECT_EQ(cfg.injection_vcs, 1);
  EXPECT_EQ(cfg.ejection_vcs, 1);
  EXPECT_EQ(cfg.selection, SelectionKind::PreferStraight);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(SimConfig, VirtualCutThroughDetection) {
  SimConfig cfg;
  cfg.buffer_depth = 32;
  EXPECT_TRUE(cfg.is_virtual_cut_through());
  cfg.buffer_depth = 16;
  EXPECT_FALSE(cfg.is_virtual_cut_through());
}

TEST(SimConfig, RejectsBadShapes) {
  SimConfig cfg;
  cfg.topology.k = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = SimConfig{};
  cfg.topology.n = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = SimConfig{};
  cfg.topology.wrap = false;
  cfg.topology.bidirectional = false;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(SimConfig, RejectsBadResources) {
  SimConfig cfg;
  cfg.vcs = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = SimConfig{};
  cfg.buffer_depth = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = SimConfig{};
  cfg.injection_vcs = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = SimConfig{};
  cfg.message_length = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(SimConfig, RejectsBadHybridLengths) {
  SimConfig cfg;
  cfg.short_message_fraction = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = SimConfig{};
  cfg.short_message_fraction = 0.5;
  cfg.short_message_length = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.short_message_length = 4;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(SimConfig, AvoidanceAlgorithmsNeedTheirResources) {
  SimConfig cfg;
  cfg.routing = RoutingKind::DatelineDOR;
  cfg.vcs = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.vcs = 2;
  EXPECT_NO_THROW(cfg.validate());
  cfg.topology.wrap = false;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);  // dateline targets tori

  cfg = SimConfig{};
  cfg.routing = RoutingKind::DuatoTFAR;
  cfg.vcs = 2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.vcs = 3;
  EXPECT_NO_THROW(cfg.validate());

  cfg = SimConfig{};
  cfg.routing = RoutingKind::NegativeFirst;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);  // torus by default
  cfg.topology.wrap = false;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(SimConfig, MisroutingNeedsAdaptivity) {
  SimConfig cfg;
  cfg.routing = RoutingKind::DOR;
  cfg.max_misroutes = 2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.routing = RoutingKind::TFAR;
  EXPECT_NO_THROW(cfg.validate());
  cfg.max_misroutes = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(EnumNames, RoundTripStrings) {
  EXPECT_EQ(to_string(RoutingKind::DOR), "DOR");
  EXPECT_EQ(to_string(RoutingKind::TFAR), "TFAR");
  EXPECT_EQ(to_string(RoutingKind::DatelineDOR), "DatelineDOR");
  EXPECT_EQ(to_string(RoutingKind::DuatoTFAR), "DuatoTFAR");
  EXPECT_EQ(to_string(RoutingKind::NegativeFirst), "NegativeFirst");
  EXPECT_EQ(to_string(SelectionKind::PreferStraight), "PreferStraight");
  EXPECT_EQ(to_string(SelectionKind::Random), "Random");
  EXPECT_EQ(to_string(SelectionKind::LowestIndex), "LowestIndex");
  EXPECT_EQ(to_string(RecoveryKind::RemoveOldest), "RemoveOldest");
  EXPECT_EQ(to_string(RecoveryKind::None), "None");
}

}  // namespace
}  // namespace flexnet
