// Timing, bandwidth and fairness properties of the flit pipeline: wormhole
// latency composition, one-flit-per-channel-per-cycle bandwidth limits,
// reception serialization, and round-robin fairness between competing flows.
#include <gtest/gtest.h>

#include <memory>

#include "routing/routing.hpp"
#include "routing/selection.hpp"
#include "sim/network.hpp"

namespace flexnet {
namespace {

std::unique_ptr<Network> ring_net(int k, int length, int buffer = 4,
                                  int vcs = 1) {
  SimConfig cfg;
  cfg.topology.k = k;
  cfg.topology.n = 1;
  cfg.routing = RoutingKind::DOR;
  cfg.message_length = length;
  cfg.buffer_depth = buffer;
  cfg.vcs = vcs;
  return std::make_unique<Network>(cfg, NetworkDeps{nullptr, make_routing(cfg),
                                 make_selection(cfg.selection)});
}

TEST(Timing, WormholeLatencyScalesWithHopsPlusLength) {
  // Uncontended wormhole latency ~= hops + length + pipeline constants; the
  // distance contribution must be additive, not multiplicative.
  Cycle latency_by_hops[4] = {0, 0, 0, 0};
  for (int hops = 1; hops <= 3; ++hops) {
    auto net = ring_net(8, 16);
    const MessageId id = net->enqueue_message(0, hops, 16);
    while (net->message(id).status != MessageStatus::Delivered) {
      ASSERT_LT(net->now(), 200);
      net->step();
    }
    latency_by_hops[hops] = net->message(id).latency();
  }
  // Each extra hop costs a small constant (header pipeline), not a full
  // serialization of the message.
  const Cycle per_hop_1 = latency_by_hops[2] - latency_by_hops[1];
  const Cycle per_hop_2 = latency_by_hops[3] - latency_by_hops[2];
  EXPECT_EQ(per_hop_1, per_hop_2);
  EXPECT_GE(per_hop_1, 1);
  EXPECT_LE(per_hop_1, 4);
  EXPECT_GE(latency_by_hops[1], 16);  // serialization dominates
}

TEST(Timing, ChannelBandwidthIsOneFlitPerCycle) {
  // A single long message crossing one hop: delivery takes ~length cycles
  // after the head arrives — the channel can't move two flits per cycle.
  auto net = ring_net(4, 32);
  const MessageId id = net->enqueue_message(0, 1, 32);
  while (net->message(id).status != MessageStatus::Delivered) {
    ASSERT_LT(net->now(), 300);
    net->step();
  }
  EXPECT_GE(net->message(id).latency(), 32);
  EXPECT_LE(net->message(id).latency(), 32 + 12);
}

TEST(Timing, ReceptionSerializesConcurrentArrivals) {
  // Two messages from different sources to the same destination: the single
  // reception channel delivers 1 flit/cycle total, so the pair takes at
  // least 2 x length cycles to fully deliver.
  SimConfig cfg;
  cfg.topology.k = 8;
  cfg.topology.n = 1;
  cfg.routing = RoutingKind::DOR;
  cfg.message_length = 16;
  cfg.buffer_depth = 4;
  cfg.ejection_vcs = 2;  // both can own an ejection VC; bandwidth still 1/cycle
  Network net(cfg, NetworkDeps{nullptr, make_routing(cfg),
                                 make_selection(cfg.selection)});
  const Cycle start = net.now();
  net.enqueue_message(3, 4, 16);  // arrives from the left
  net.enqueue_message(5, 4, 16);  // arrives from the right
  while (net.counters().delivered < 2) {
    ASSERT_LT(net.now(), 300);
    net.step();
  }
  EXPECT_GE(net.now() - start, 2 * 16);
}

TEST(Timing, RoundRobinSharesAChannelFairly) {
  // Two infinite-ish flows (back-to-back messages) from nodes 0 and 1 both
  // crossing channel 1->2 toward node 3: arbitration must not starve either.
  SimConfig cfg;
  cfg.topology.k = 8;
  cfg.topology.n = 1;
  cfg.topology.bidirectional = false;
  cfg.routing = RoutingKind::DOR;
  cfg.message_length = 4;
  cfg.vcs = 2;  // flows can hold separate VCs on the shared link
  cfg.source_queue_limit = 0;
  Network net(cfg, NetworkDeps{nullptr, make_routing(cfg),
                                 make_selection(cfg.selection)});
  for (int i = 0; i < 40; ++i) {
    net.enqueue_message(0, 3, 4);
    net.enqueue_message(1, 3, 4);
  }
  for (int i = 0; i < 1500 && net.counters().delivered < 60; ++i) net.step();
  int from0 = 0;
  int from1 = 0;
  for (std::size_t id = 0; id < net.num_messages(); ++id) {
    const Message& msg = net.message(static_cast<MessageId>(id));
    if (msg.status != MessageStatus::Delivered) continue;
    (msg.src == 0 ? from0 : from1) += 1;
  }
  ASSERT_GT(from0 + from1, 40);
  // Exact 50/50 is not expected: flow 0 can stage a message in each of the
  // two VCs of channel 0->1 while flow 1 holds only its injection VC, so
  // flow 0 legitimately wins up to ~2/3 of the allocations on the shared
  // link. Fairness here means neither flow is starved.
  EXPECT_GT(from0 * 4, from0 + from1);
  EXPECT_GT(from1 * 4, from0 + from1);
}

TEST(Timing, BackToBackMessagesPipelineThroughTheInjectionChannel) {
  // The injection channel sends one flit per cycle; N short messages from
  // one node need ~N x length cycles to even enter the network.
  auto net = ring_net(4, 8);
  for (int i = 0; i < 5; ++i) net->enqueue_message(0, 1, 8);
  while (net->counters().delivered < 5) {
    ASSERT_LT(net->now(), 400);
    net->step();
  }
  EXPECT_GE(net->now(), 5 * 8);
  EXPECT_LE(net->now(), 5 * 8 + 40);
}

TEST(Timing, CountersAreMonotonic) {
  auto net = ring_net(8, 8);
  for (int i = 0; i < 6; ++i) net->enqueue_message(i % 4, (i % 4) + 2, 8);
  Network::Counters last = net->counters();
  for (int i = 0; i < 200; ++i) {
    net->step();
    const Network::Counters& now = net->counters();
    EXPECT_GE(now.delivered, last.delivered);
    EXPECT_GE(now.flits_delivered, last.flits_delivered);
    EXPECT_GE(now.injected, last.injected);
    last = now;
  }
}

}  // namespace
}  // namespace flexnet
