#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/detector.hpp"
#include "exp/experiment.hpp"
#include "routing/routing.hpp"
#include "routing/selection.hpp"
#include "telemetry/manifest.hpp"
#include "util/json.hpp"

namespace flexnet {
namespace {

std::unique_ptr<Network> make_network(SimConfig cfg) {
  return std::make_unique<Network>(cfg, NetworkDeps{nullptr, make_routing(cfg),
                                 make_selection(cfg.selection)});
}

SimConfig torus_4x4() {
  SimConfig cfg;
  cfg.topology.k = 4;
  cfg.topology.n = 2;
  cfg.message_length = 4;
  cfg.routing = RoutingKind::DOR;
  return cfg;
}

Cycle run_until_delivered(Network& net, Cycle limit = 1000) {
  while (net.counters().delivered == 0 && net.now() < limit) net.step();
  return net.now();
}

// --- IntervalRecorder ------------------------------------------------------

TEST(IntervalRecorder, RejectsNonPositiveInterval) {
  EXPECT_THROW(IntervalRecorder(0, 8), std::invalid_argument);
}

TEST(IntervalRecorder, RingBoundsRetainedSamples) {
  auto net = make_network(torus_4x4());
  DeadlockDetector detector(DetectorConfig{}, 1);
  IntervalRecorder recorder(10, 4);

  for (int i = 0; i < 10; ++i) {
    for (int c = 0; c < 10; ++c) net->step();
    recorder.sample(*net, detector);
  }

  EXPECT_EQ(recorder.capacity(), 4u);
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.total_samples(), 10u);
  EXPECT_EQ(recorder.dropped(), 6u);
  // Oldest-first iteration: the four youngest samples survive.
  EXPECT_EQ(recorder.at(0).cycle, 70);
  EXPECT_EQ(recorder.at(3).cycle, 100);
}

TEST(IntervalRecorder, SamplesCountIntervalFlow) {
  auto net = make_network(torus_4x4());
  DeadlockDetector detector(DetectorConfig{}, 1);
  IntervalRecorder recorder(100, 16);

  net->enqueue_message(0, 5, 4);
  run_until_delivered(*net);
  while (net->now() < 100) net->step();
  recorder.sample(*net, detector);

  ASSERT_EQ(recorder.size(), 1u);
  const IntervalSample& s = recorder.at(0);
  EXPECT_EQ(s.cycle, 100);
  EXPECT_EQ(s.delivered, 1);
  EXPECT_EQ(s.flits_delivered, 4);
  EXPECT_GT(s.avg_latency, 0.0);
  EXPECT_EQ(s.in_network, 0);
  EXPECT_EQ(s.blocked, 0);
  EXPECT_EQ(s.cwg_ownership_arcs, 0);

  // The next sample covers an idle interval: all-zero flow.
  while (net->now() < 200) net->step();
  recorder.sample(*net, detector);
  EXPECT_EQ(recorder.at(1).delivered, 0);
  EXPECT_DOUBLE_EQ(recorder.at(1).throughput_flits_per_node, 0.0);
}

// --- SpatialHeatmap --------------------------------------------------------

TEST(SpatialHeatmap, CountsTraversalsForSingleMessage) {
  auto net = make_network(torus_4x4());
  SpatialHeatmap heatmap(*net);
  NetworkHooks hooks;
  hooks.heatmap = &heatmap;
  net->install_hooks(hooks);

  const int length = 4;
  const MessageId id = net->enqueue_message(0, 5, length);
  run_until_delivered(*net);
  ASSERT_EQ(net->counters().delivered, 1);
  const int hops = net->message(id).hops;
  EXPECT_EQ(hops, 2);  // (0,0) -> (1,1) under DOR

  // Every channel along the route (injection + hops network channels +
  // ejection) carries each of the message's flits exactly once.
  EXPECT_EQ(heatmap.total_traversals(),
            static_cast<std::int64_t>(hops + 2) * length);
  int hot_network_channels = 0;
  for (std::size_t c = 0; c < net->num_network_channels(); ++c) {
    const std::int64_t t = heatmap.channel(static_cast<ChannelId>(c)).traversals;
    if (t == 0) continue;
    EXPECT_EQ(t, length);
    ++hot_network_channels;
  }
  EXPECT_EQ(hot_network_channels, hops);
  EXPECT_EQ(heatmap.channel(net->injection_channel(0)).traversals, length);
  EXPECT_EQ(heatmap.channel(net->ejection_channel(5)).traversals, length);

  EXPECT_EQ(heatmap.total_injection_stalls(), 0);
  EXPECT_EQ(heatmap.total_blocked_cycles(), 0);  // never sampled
}

TEST(SpatialHeatmap, OccupancySamplingChargesOwnedVcs) {
  auto net = make_network(torus_4x4());
  SpatialHeatmap heatmap(*net);
  NetworkHooks hooks;
  hooks.heatmap = &heatmap;
  net->install_hooks(hooks);

  net->enqueue_message(0, 5, 4);
  net->step();
  net->step();  // header has acquired at least the injection VC

  std::int64_t owned = 0;
  for (const MessageId id : net->active_messages()) {
    owned += static_cast<std::int64_t>(net->message(id).held.size());
  }
  ASSERT_GT(owned, 0);

  heatmap.sample_occupancy(*net, 10);
  std::int64_t busy = 0;
  for (std::size_t c = 0; c < net->num_channels(); ++c) {
    busy += heatmap.channel(static_cast<ChannelId>(c)).busy_cycles;
  }
  EXPECT_EQ(busy, owned * 10);
}

TEST(SpatialHeatmap, CountsInjectionStalls) {
  SimConfig cfg = torus_4x4();
  cfg.injection_vcs = 1;
  auto net = make_network(cfg);
  SpatialHeatmap heatmap(*net);
  NetworkHooks hooks;
  hooks.heatmap = &heatmap;
  net->install_hooks(hooks);

  // Two messages at the same node: the second waits for the injection VC.
  net->enqueue_message(0, 5, 4);
  net->enqueue_message(0, 6, 4);
  for (int i = 0; i < 100; ++i) net->step();
  EXPECT_EQ(net->counters().delivered, 2);
  EXPECT_GT(heatmap.injection_stall_cycles(0), 0);
  EXPECT_EQ(heatmap.injection_stall_cycles(1), 0);
}

TEST(SpatialHeatmap, AsciiGridFor2DAndFallbackTable) {
  auto net2d = make_network(torus_4x4());
  SpatialHeatmap heat2d(*net2d);
  const std::string grid =
      heat2d.ascii_grid(*net2d, SpatialHeatmap::Field::Traversals);
  ASSERT_FALSE(grid.empty());
  EXPECT_NE(grid.find("4x4"), std::string::npos);

  // Non-2-D topologies get the degree-ordered per-node table instead.
  SimConfig cfg3 = torus_4x4();
  cfg3.topology.n = 3;
  auto net3d = make_network(cfg3);
  SpatialHeatmap heat3d(*net3d);
  const std::string table =
      heat3d.ascii_grid(*net3d, SpatialHeatmap::Field::Traversals);
  ASSERT_FALSE(table.empty());
  EXPECT_NE(table.find("degree-ordered"), std::string::npos);
  EXPECT_NE(table.find("node  degree"), std::string::npos);
  // 64 nodes -> 64 data rows plus the two header lines.
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 66);
}

TEST(SpatialHeatmap, CsvHasFixedSchemaAndAllRows) {
  auto net = make_network(torus_4x4());
  SpatialHeatmap heatmap(*net);
  std::ostringstream out;
  heatmap.write_csv(out, *net);
  std::istringstream in(out.str());
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header,
            "row,id,kind,src,dst,dim,dir,channel,vc_index,traversals,"
            "busy_cycles,blocked_cycles,stall_cycles");
  std::size_t rows = 0;
  for (std::string line; std::getline(in, line);) ++rows;
  EXPECT_EQ(rows, net->num_channels() + net->num_vcs() +
                      static_cast<std::size_t>(net->topology().num_nodes()));
}

// --- PhaseProfiler ---------------------------------------------------------

TEST(PhaseProfiler, ScopedPhaseAccumulates) {
  PhaseProfiler profiler;
  for (int i = 0; i < 3; ++i) {
    ScopedPhase scope(&profiler, SimPhase::Route);
  }
  { ScopedPhase scope(nullptr, SimPhase::Route); }  // null target: no-op
  EXPECT_EQ(profiler.stats(SimPhase::Route).calls, 3);
  EXPECT_EQ(profiler.stats(SimPhase::Deliver).calls, 0);
  profiler.reset();
  EXPECT_EQ(profiler.stats(SimPhase::Route).calls, 0);
}

// --- end-to-end: Simulation + manifest ------------------------------------

ExperimentConfig telemetry_config() {
  ExperimentConfig cfg;
  cfg.sim = torus_4x4();
  cfg.sim.vcs = 2;
  cfg.traffic.load = 0.4;
  cfg.run.warmup = 200;
  cfg.run.measure = 1000;
  cfg.telemetry.collect = true;
  cfg.telemetry.interval = 50;
  return cfg;
}

std::string run_and_write_manifest(const ExperimentConfig& cfg) {
  Simulation sim(cfg);
  const ExperimentResult result = sim.run();
  std::ostringstream out;
  write_manifest_json(out, sim.config(), result, *sim.telemetry(),
                      sim.network());
  return out.str();
}

TEST(Telemetry, DisabledByDefaultEnabledByAnyPath) {
  TelemetryConfig cfg;
  EXPECT_FALSE(cfg.enabled());
  cfg.manifest_path = "x.json";
  EXPECT_TRUE(cfg.enabled());
  const TelemetryConfig p = cfg.with_point_suffix(3);
  EXPECT_EQ(p.manifest_path, "x.json.p3");
}

TEST(Telemetry, SimulationCollectsSeriesAndProfile) {
  Simulation sim(telemetry_config());
  ASSERT_NE(sim.telemetry(), nullptr);
  EXPECT_EQ(sim.network().hooks().heatmap, &sim.telemetry()->heatmap());
  EXPECT_EQ(sim.network().hooks().profiler, &sim.telemetry()->profiler());

  const ExperimentResult result = sim.run();
  EXPECT_TRUE(result.telemetry.enabled);
  // 1200 cycles at interval 50 -> 24 samples.
  EXPECT_EQ(result.telemetry.interval_samples, 24u);
  EXPECT_EQ(result.telemetry.samples_dropped, 0u);
  EXPECT_FALSE(result.telemetry.heatmap_ascii.empty());
  EXPECT_NE(result.telemetry.profile_table.find("transmit"),
            std::string::npos);
  EXPECT_GT(sim.telemetry()->heatmap().total_traversals(), 0);
  EXPECT_GT(sim.telemetry()->profiler().stats(SimPhase::Transmit).calls, 0);
}

TEST(Telemetry, RingBoundingSurfacesInArtifacts) {
  ExperimentConfig cfg = telemetry_config();
  cfg.telemetry.ring_capacity = 4;
  Simulation sim(cfg);
  const ExperimentResult result = sim.run();
  EXPECT_EQ(result.telemetry.interval_samples, 4u);
  EXPECT_EQ(result.telemetry.samples_dropped, 20u);
}

TEST(Telemetry, DisabledSimulationHasNoProbes) {
  ExperimentConfig cfg = telemetry_config();
  cfg.telemetry = TelemetryConfig{};
  Simulation sim(cfg);
  EXPECT_EQ(sim.telemetry(), nullptr);
  EXPECT_EQ(sim.network().hooks().heatmap, nullptr);
  EXPECT_EQ(sim.network().hooks().profiler, nullptr);
  const ExperimentResult result = sim.run();
  EXPECT_FALSE(result.telemetry.enabled);
}

TEST(Telemetry, ManifestParsesWithFullSchema) {
  const JsonValue root =
      JsonValue::parse(run_and_write_manifest(telemetry_config()));
  EXPECT_EQ(root.at("schema").string, kManifestSchema);
  EXPECT_FALSE(root.at("build").at("git_sha").string.empty());
  EXPECT_EQ(root.at("config").at("sim").at("k").as_int(), 4);
  EXPECT_DOUBLE_EQ(root.at("config").at("traffic").at("load").number, 0.4);
  EXPECT_EQ(root.at("config").at("detector").at("full_rebuild").boolean, false);
  EXPECT_GT(root.at("result").at("window").at("delivered").as_int(), 0);

  // Detection-cost accounting: every scheduled pass is an invocation; the
  // skipped count is how many the incremental pipeline answered for free.
  const JsonValue& det = root.at("result").at("detector");
  EXPECT_GT(det.at("invocations").as_int(), 0);
  EXPECT_GE(det.at("skipped_passes").as_int(), 0);
  EXPECT_LE(det.at("skipped_passes").as_int(), det.at("invocations").as_int());

  const JsonValue& series = root.at("series");
  EXPECT_EQ(series.at("interval").as_int(), 50);
  ASSERT_EQ(series.at("samples").array.size(), 24u);
  const JsonValue& sample = series.at("samples").array.front();
  EXPECT_EQ(sample.at("cycle").as_int(), 50);  // warmup ramp is part of the series
  EXPECT_NE(sample.find("cwg_request_arcs"), nullptr);
  ASSERT_NE(sample.find("detector_skipped"), nullptr);
  EXPECT_GE(sample.at("detector_skipped").as_int(), 0);
  EXPECT_LE(sample.at("detector_skipped").as_int(),
            sample.at("detector_invocations").as_int());

  EXPECT_GT(root.at("heatmap").at("total_traversals").as_int(), 0);
  EXPECT_FALSE(root.at("heatmap").at("hot_channels").array.empty());
  EXPECT_EQ(root.at("profile").at("phases").array.size(), kNumSimPhases);
}

TEST(Telemetry, ManifestDeterministicModuloProfile) {
  const ExperimentConfig cfg = telemetry_config();
  const std::string a = run_and_write_manifest(cfg);
  const std::string b = run_and_write_manifest(cfg);
  // Everything up to the wall-clock "profile" section must match bytewise.
  const std::size_t cut_a = a.find("\"profile\"");
  const std::size_t cut_b = b.find("\"profile\"");
  ASSERT_NE(cut_a, std::string::npos);
  EXPECT_EQ(a.substr(0, cut_a), b.substr(0, cut_b));
}

}  // namespace
}  // namespace flexnet
