#include "core/dot.hpp"

#include <gtest/gtest.h>

#include "util/logging.hpp"

namespace flexnet {
namespace {

TEST(Dot, EmptyGraphIsValidDot) {
  const std::string dot = cwg_to_dot(Cwg(4, {}));
  EXPECT_NE(dot.find("digraph cwg {"), std::string::npos);
  EXPECT_NE(dot.find("}"), std::string::npos);
  EXPECT_EQ(dot.find("->"), std::string::npos);
}

TEST(Dot, SolidAndDashedArcs) {
  const Cwg cwg(6, {{.id = 1, .held = {0, 2}, .requests = {4}},
                    {.id = 2, .held = {4}, .requests = {}}});
  const std::string dot = cwg_to_dot(cwg);
  EXPECT_NE(dot.find("c0 -> c2 [label=\"m1\"]"), std::string::npos);
  EXPECT_NE(dot.find("c2 -> c4 [style=dashed label=\"m1\"]"), std::string::npos);
  // Isolated VCs (1, 3, 5) are omitted.
  EXPECT_EQ(dot.find("c1;"), std::string::npos);
  EXPECT_EQ(dot.find("c5;"), std::string::npos);
}

TEST(Dot, KnotVerticesHighlighted) {
  const Cwg cwg(4, {{.id = 1, .held = {0}, .requests = {1}},
                    {.id = 2, .held = {1}, .requests = {0}}});
  const auto knots = find_knots(cwg);
  ASSERT_EQ(knots.size(), 1u);
  const std::string dot = cwg_to_dot(cwg, knots);
  EXPECT_NE(dot.find("c0 [style=filled fillcolor=salmon]"), std::string::npos);
  EXPECT_NE(dot.find("c1 [style=filled fillcolor=salmon]"), std::string::npos);
}

TEST(Dot, NoHighlightWithoutKnots) {
  const Cwg cwg(4, {{.id = 1, .held = {0}, .requests = {1}},
                    {.id = 2, .held = {1}, .requests = {}}});
  const std::string dot = cwg_to_dot(cwg, find_knots(cwg));
  EXPECT_EQ(dot.find("salmon"), std::string::npos);
}

// Logging smoke coverage (kept here to avoid a one-test suite).
TEST(Logging, LevelGatingAndRestore) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  FLEXNET_LOG(Info) << "suppressed " << 42;   // below threshold: no effect
  FLEXNET_LOG(Error) << "emitted " << 43;     // goes to stderr
  set_log_level(LogLevel::Off);
  FLEXNET_LOG(Error) << "also suppressed";
  set_log_level(before);
}

}  // namespace
}  // namespace flexnet
