// WorkerPool: the persistent spin-barrier pool behind the sharded stepping
// engine. Exercises the dispatch barrier (all parties run, run() is a full
// barrier), sequential-phase visibility, exception propagation and reuse
// after an exception, and the single-party inline degenerate case.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/parallel.hpp"

namespace flexnet {
namespace {

TEST(WorkerPool, RunsEveryPartyExactlyOnce) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.parties(), 4u);
  std::vector<std::atomic<int>> hits(4);
  for (int round = 0; round < 100; ++round) {
    pool.run([&](std::size_t i) { ++hits[i]; });
  }
  for (const auto& h : hits) EXPECT_EQ(h.load(), 100);
}

TEST(WorkerPool, RunIsAFullBarrierBetweenPhases) {
  // Phase N+1 must see phase N's plain (non-atomic) writes: exactly the
  // deliver -> route -> transmit contract in the sharded engine.
  WorkerPool pool(8);
  std::vector<std::size_t> scratch(8, 0);
  for (std::size_t round = 1; round <= 200; ++round) {
    pool.run([&](std::size_t i) { scratch[i] = i + round; });
    std::size_t total = 0;
    pool.run([&](std::size_t i) {
      if (i == 0) {  // party 0 is the caller: sums what every party wrote
        total = std::accumulate(scratch.begin(), scratch.end(), std::size_t{0});
      }
    });
    EXPECT_EQ(total, 8 * round + (8 * 7) / 2);
  }
}

TEST(WorkerPool, SinglePartyRunsInline) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.parties(), 1u);
  std::size_t ran = 0;
  pool.run([&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++ran;
  });
  EXPECT_EQ(ran, 1u);
}

TEST(WorkerPool, ZeroPartiesClampsToOne) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.parties(), 1u);
  bool ran = false;
  pool.run([&](std::size_t) { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(WorkerPool, PropagatesWorkerExceptionAndStaysUsable) {
  WorkerPool pool(4);
  EXPECT_THROW(
      pool.run([](std::size_t i) {
        if (i == 2) throw std::runtime_error("boom");
      }),
      std::runtime_error);
  // The pool must survive a throwing job: the barrier still completed.
  std::atomic<int> ok{0};
  pool.run([&](std::size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 4);
}

TEST(WorkerPool, PropagatesCallerPartyException) {
  WorkerPool pool(3);
  EXPECT_THROW(
      pool.run([](std::size_t i) {
        if (i == 0) throw std::logic_error("caller party");
      }),
      std::logic_error);
  std::atomic<int> ok{0};
  pool.run([&](std::size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 3);
}

TEST(WorkerPool, ManyDispatchesAreCheap) {
  // The engine issues five dispatches per simulated cycle; 50k dispatches
  // must complete promptly (this is a liveness check, not a timing assert).
  WorkerPool pool(4);
  std::atomic<std::size_t> total{0};
  for (int i = 0; i < 50000; ++i) {
    pool.run([&](std::size_t) { total.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(total.load(), 200000u);
}

}  // namespace
}  // namespace flexnet
