// Precursor-warning validation: on every committed deadlock capture
// (tests/corpus/*.snap) the composite score crosses the default threshold
// strictly before a delayed detection pass confirms the knot — the lead time
// the observability layer exists to provide — and on deadlock-free controls
// (up*/down* on the irregular 16-node graph, Duato escape VCs on the torus)
// at the same load it never fires at all.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "obs/obs.hpp"
#include "snapshot/snapshot.hpp"
#include "trace/sinks.hpp"
#include "trace/trace.hpp"

#ifndef FLEXNET_CORPUS_DIR
#error "FLEXNET_CORPUS_DIR must point at the committed tests/corpus directory"
#endif
#ifndef FLEXNET_TOPO_DIR
#error "FLEXNET_TOPO_DIR must point at examples/topologies"
#endif

namespace flexnet {
namespace {

/// Minimum cycles of warning the corpus replays must deliver.
constexpr Cycle kMinLead = 50;

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(FLEXNET_CORPUS_DIR)) {
    if (entry.path().extension() == ".snap") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(ObsPrecursor, EveryCorpusCaptureWarnsBeforeConfirmation) {
  const std::vector<std::string> files = corpus_files();
  ASSERT_GE(files.size(), 4u);
  for (const std::string& path : files) {
    SCOPED_TRACE(path);
    RestoredSim restored = restore_snapshot(read_snapshot_file(path));
    Network& net = *restored.net;
    // The capture run's own detection records came back with the snapshot;
    // drop them so confirmation is pinned to the pass *this* replay runs.
    restored.detector->reset_statistics();

    // Cheap metrics sampling every 10 cycles while detection is withheld for
    // 600 — the regime the precursor is for: detector passes are the
    // expensive operation, stall-age sampling is nearly free.
    ObsConfig cfg;
    cfg.collect = true;
    cfg.interval = 10;
    ObsCollector obs(cfg, net);

    Tracer tracer;
    RingBufferSink ring(1024);
    tracer.add_sink(&ring);
    NetworkHooks hooks;
    hooks.tracer = &tracer;
    obs.contribute_hooks(hooks);
    net.install_hooks(hooks);

    for (int i = 0; i < 600; ++i) {
      net.step();
      obs.tick(net, *restored.detector);
    }
    EXPECT_GE(obs.warnings(), 1) << "no warning while the knot aged";
    EXPECT_GE(obs.first_warning_cycle(), 0);
    EXPECT_GE(obs.peak_score(), cfg.warn_threshold);

    // The warning also landed in the trace stream.
    const std::vector<TraceEvent> events = ring.snapshot();
    const bool traced =
        std::any_of(events.begin(), events.end(), [](const TraceEvent& e) {
          return e.kind == TraceEventKind::DeadlockWarning;
        });
    EXPECT_TRUE(traced) << "no DeadlockWarning trace event";

    // Now let the (delayed) detection pass confirm the knot.
    const int knots = restored.detector->run_detection(net);
    ASSERT_GT(knots, 0) << "restored capture no longer detects as a knot";
    obs.finalize(net, *restored.detector);

    ASSERT_GE(obs.first_confirmation_cycle(), 0);
    EXPECT_LT(obs.first_warning_cycle(), obs.first_confirmation_cycle())
        << "warning did not precede confirmation";
    EXPECT_GE(obs.lead_cycles(), kMinLead);
    const ObsArtifacts art = obs.artifacts();
    EXPECT_EQ(art.lead_cycles, obs.lead_cycles());
    EXPECT_EQ(art.first_warning_cycle, obs.first_warning_cycle());
  }
}

TEST(ObsPrecursor, UpDownOnIrregularGraphNeverWarns) {
  ExperimentConfig cfg;
  cfg.sim.topo_kind = TopoKind::File;
  cfg.sim.topo_file = FLEXNET_TOPO_DIR "/irregular-16.topo";
  cfg.sim.routing = RoutingKind::TableUpDown;
  cfg.sim.seed = 7;
  cfg.traffic.load = 0.8;
  cfg.run.warmup = 500;
  cfg.run.measure = 3500;
  cfg.obs.collect = true;
  cfg.obs.interval = 50;
  const ExperimentResult result = run_experiment(cfg);

  EXPECT_EQ(result.window.deadlocks, 0);
  EXPECT_GT(result.window.delivered, 0);
  EXPECT_EQ(result.obs.warnings, 0) << "peak score " << result.obs.peak_score;
  EXPECT_EQ(result.obs.first_warning_cycle, -1);
  EXPECT_EQ(result.obs.lead_cycles, -1);
}

TEST(ObsPrecursor, DuatoEscapeVcsOnTorusNeverWarn) {
  ExperimentConfig cfg;
  cfg.sim.topology.k = 8;
  cfg.sim.topology.n = 2;
  cfg.sim.vcs = 3;
  cfg.sim.routing = RoutingKind::DuatoTFAR;
  cfg.sim.seed = 7;
  cfg.traffic.load = 0.8;
  cfg.run.warmup = 500;
  cfg.run.measure = 3500;
  cfg.obs.collect = true;
  cfg.obs.interval = 50;
  const ExperimentResult result = run_experiment(cfg);

  EXPECT_EQ(result.window.deadlocks, 0);
  EXPECT_GT(result.window.delivered, 0);
  EXPECT_EQ(result.obs.warnings, 0) << "peak score " << result.obs.peak_score;
  EXPECT_EQ(result.obs.first_warning_cycle, -1);
}

}  // namespace
}  // namespace flexnet
