#include "exp/sweep.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "exp/report.hpp"

namespace flexnet {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.sim.topology.k = 4;
  cfg.sim.topology.n = 2;
  cfg.sim.routing = RoutingKind::TFAR;
  cfg.sim.message_length = 8;
  cfg.run.warmup = 300;
  cfg.run.measure = 700;
  return cfg;
}

TEST(Linspace, EvenSpacing) {
  const std::vector<double> v = linspace(0.1, 0.5, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v[0], 0.1);
  EXPECT_DOUBLE_EQ(v[2], 0.3);
  EXPECT_DOUBLE_EQ(v[4], 0.5);
}

TEST(Linspace, SingleStepAndErrors) {
  EXPECT_EQ(linspace(0.7, 1.0, 1), (std::vector<double>{0.7}));
  EXPECT_THROW(linspace(0, 1, 0), std::invalid_argument);
  EXPECT_THROW(linspace(0, 1, -3), std::invalid_argument);
}

TEST(Linspace, DegenerateRangeRepeatsTheBound) {
  const std::vector<double> v = linspace(0.4, 0.4, 4);
  ASSERT_EQ(v.size(), 4u);
  for (const double x : v) EXPECT_DOUBLE_EQ(x, 0.4);
  // Endpoints are hit exactly even with a degenerate single-point range.
  EXPECT_EQ(linspace(0.9, 0.9, 1), (std::vector<double>{0.9}));
}

TEST(Sweep, EmptyLoadListYieldsNoResults) {
  const auto results =
      sweep_loads(tiny_config(), std::vector<double>{}, /*parallel=*/false);
  EXPECT_TRUE(results.empty());
  const auto parallel_results =
      sweep_loads(tiny_config(), std::vector<double>{}, /*parallel=*/true);
  EXPECT_TRUE(parallel_results.empty());
  // saturation_load on an empty sweep is NaN, matching "nothing saturated".
  EXPECT_TRUE(std::isnan(saturation_load(results)));
}

TEST(Sweep, ResultsFollowLoadOrder) {
  const std::vector<double> loads{0.2, 0.5, 1.3};
  const auto results = sweep_loads(tiny_config(), loads, /*parallel=*/false);
  ASSERT_EQ(results.size(), 3u);
  for (std::size_t i = 0; i < loads.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i].load, loads[i]);
  }
  // Throughput grows with offered load until saturation.
  EXPECT_LT(results[0].window.throughput_flits_per_node,
            results[1].window.throughput_flits_per_node);
}

TEST(Sweep, ParallelMatchesSerial) {
  const std::vector<double> loads{0.2, 0.6};
  const auto serial = sweep_loads(tiny_config(), loads, false);
  const auto parallel = sweep_loads(tiny_config(), loads, true);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].window.generated, parallel[i].window.generated);
    EXPECT_EQ(serial[i].window.delivered, parallel[i].window.delivered);
  }
}

TEST(Sweep, SaturationLoadFindsFirstSaturatedPoint) {
  const std::vector<double> loads{0.2, 0.4, 1.3, 1.4};
  const auto results = sweep_loads(tiny_config(), loads, false);
  const double sat = saturation_load(results);
  EXPECT_FALSE(std::isnan(sat));
  EXPECT_GE(sat, 0.4);
  EXPECT_LE(sat, 1.3);
}

TEST(Sweep, SaturationLoadNanWhenNonePresent) {
  const std::vector<double> loads{0.1, 0.2};
  const auto results = sweep_loads(tiny_config(), loads, false);
  EXPECT_TRUE(std::isnan(saturation_load(results)));
}

TEST(Report, LoadSeriesPrintsEveryRowAndMarksSaturation) {
  const std::vector<double> loads{0.2, 1.3, 1.4};
  const auto results = sweep_loads(tiny_config(), loads, false);
  std::ostringstream out;
  const auto columns = deadlock_columns();
  print_load_series(out, "demo", results, columns);
  const std::string text = out.str();
  EXPECT_NE(text.find("== demo =="), std::string::npos);
  EXPECT_NE(text.find("norm_deadlocks"), std::string::npos);
  EXPECT_NE(text.find("0.200"), std::string::npos);
  EXPECT_NE(text.find("1.400"), std::string::npos);
  EXPECT_NE(text.find("*"), std::string::npos);  // saturation marker
}

TEST(Report, CsvHasOneLinePerResultPlusHeader) {
  const std::vector<double> loads{0.2, 0.5};
  const auto results = sweep_loads(tiny_config(), loads, false);
  std::ostringstream out;
  write_results_csv(out, results, "demo");
  int lines = 0;
  for (const char c : out.str()) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3);
  EXPECT_NE(out.str().find("norm_deadlocks"), std::string::npos);
  EXPECT_NE(out.str().find("demo"), std::string::npos);
}

TEST(Report, ColumnSetsEvaluate) {
  const auto results = sweep_loads(tiny_config(), std::vector<double>{0.3}, false);
  for (const auto& columns : {deadlock_columns(), set_size_columns(),
                              cycle_columns(), throughput_columns()}) {
    for (const SeriesColumn& col : columns) {
      EXPECT_NO_THROW(col.value(results[0]));
      EXPECT_FALSE(col.name.empty());
    }
  }
}

TEST(Report, DeadlockRecordsCsv) {
  DeadlockRecord a;
  a.detected_at = 150;
  a.deadlock_set_size = 3;
  a.resource_set_size = 8;
  a.knot_size = 8;
  a.dependent_count = 1;
  a.knot_cycle_density = 1;
  a.victim = 42;
  std::ostringstream out;
  write_deadlock_records_csv(out, std::vector<DeadlockRecord>{a}, "demo");
  EXPECT_NE(out.str().find("demo,150,3,8,8,1,1,0,42"), std::string::npos);
}

TEST(Report, SetSizeHistogramRendersBars) {
  Histogram h(16);
  h.add(3);
  h.add(3);
  h.add(7);
  std::ostringstream out;
  print_set_size_histogram(out, "demo", h);
  const std::string text = out.str();
  EXPECT_NE(text.find("== demo =="), std::string::npos);
  EXPECT_NE(text.find("####"), std::string::npos);
}

TEST(Report, SetSizeHistogramEmptyCase) {
  std::ostringstream out;
  print_set_size_histogram(out, "empty", Histogram(8));
  EXPECT_NE(out.str().find("(no deadlocks)"), std::string::npos);
}

TEST(Report, WindowHistogramIsPopulated) {
  ExperimentConfig cfg = tiny_config();
  cfg.sim.routing = RoutingKind::DOR;
  cfg.sim.topology.bidirectional = false;  // deadlock-heavy
  cfg.traffic.load = 0.9;
  cfg.run.measure = 2000;
  const ExperimentResult r = run_experiment(cfg);
  ASSERT_GT(r.window.deadlocks, 0);
  EXPECT_EQ(r.window.deadlock_set_histogram.total(), r.window.deadlocks);
}

}  // namespace
}  // namespace flexnet
