#include "routing/selection.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "routing/routing.hpp"
#include "sim/network.hpp"
#include "topo/torus.hpp"

namespace flexnet {
namespace {

class SelectionTest : public ::testing::Test {
 protected:
  SelectionTest() {
    cfg_.topology.k = 8;
    cfg_.topology.n = 2;
    cfg_.routing = RoutingKind::TFAR;
    net_ = std::make_unique<Network>(cfg_, NetworkDeps{nullptr, make_routing(cfg_),
                                 make_selection(cfg_.selection)});
  }

  SimConfig cfg_;
  std::unique_ptr<Network> net_;
  Pcg32 rng_{99};
};

TEST_F(SelectionTest, PreferStraightPutsCurrentDimensionFirst) {
  const auto policy = make_selection(SelectionKind::PreferStraight);
  // Header arrived via a dim-1 channel into node 9.
  const ChannelId in_ch = torus_topology(net_->topology()).out_channel(1, 1, +1);
  const VcId in_vc = net_->phys(in_ch).first_vc;
  const NodeId here = net_->phys(in_ch).dst;

  std::vector<ChannelId> channels{
      torus_topology(net_->topology()).out_channel(here, 0, +1),
      torus_topology(net_->topology()).out_channel(here, 1, +1),
      torus_topology(net_->topology()).out_channel(here, 0, -1),
  };
  Message m;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<ChannelId> ordered = channels;
    policy->order(*net_, m, in_vc, ordered, rng_);
    ASSERT_EQ(ordered.size(), 3u);
    EXPECT_EQ(net_->phys(ordered[0]).dim, 1) << "straight channel must lead";
  }
}

TEST_F(SelectionTest, PreferStraightRandomizesEqualAlternatives) {
  // From the injection channel there is no current dimension; all orders
  // should appear over repeated trials (the detail that keeps adaptive
  // routing from collapsing into dimension order).
  const auto policy = make_selection(SelectionKind::PreferStraight);
  const VcId inj_vc = net_->phys(net_->injection_channel(0)).first_vc;
  std::vector<ChannelId> channels{
      torus_topology(net_->topology()).out_channel(0, 0, +1),
      torus_topology(net_->topology()).out_channel(0, 1, +1),
  };
  Message m;
  std::set<ChannelId> leaders;
  for (int trial = 0; trial < 64; ++trial) {
    std::vector<ChannelId> ordered = channels;
    policy->order(*net_, m, inj_vc, ordered, rng_);
    leaders.insert(ordered[0]);
  }
  EXPECT_EQ(leaders.size(), 2u);
}

TEST_F(SelectionTest, RandomIsAPermutationAndVaries) {
  const auto policy = make_selection(SelectionKind::Random);
  std::vector<ChannelId> channels{0, 1, 2, 3, 4, 5};
  Message m;
  std::set<std::vector<ChannelId>> orders;
  for (int trial = 0; trial < 32; ++trial) {
    std::vector<ChannelId> ordered = channels;
    policy->order(*net_, m, 0, ordered, rng_);
    std::vector<ChannelId> sorted = ordered;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, channels);  // a permutation, nothing lost
    orders.insert(ordered);
  }
  EXPECT_GT(orders.size(), 5u);
}

TEST_F(SelectionTest, LowestIndexSorts) {
  const auto policy = make_selection(SelectionKind::LowestIndex);
  std::vector<ChannelId> channels{5, 1, 3};
  Message m;
  policy->order(*net_, m, 0, channels, rng_);
  EXPECT_EQ(channels, (std::vector<ChannelId>{1, 3, 5}));
}

TEST_F(SelectionTest, PolicyNamesAreStable) {
  EXPECT_EQ(make_selection(SelectionKind::PreferStraight)->name(),
            "PreferStraight");
  EXPECT_EQ(make_selection(SelectionKind::Random)->name(), "Random");
  EXPECT_EQ(make_selection(SelectionKind::LowestIndex)->name(), "LowestIndex");
}

}  // namespace
}  // namespace flexnet
