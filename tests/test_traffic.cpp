#include "traffic/traffic.hpp"

#include "topo/generators.hpp"
#include "topo/graph_topology.hpp"
#include "topo/torus.hpp"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>

namespace flexnet {
namespace {

KAryNCube torus16x16() {
  TopologyConfig cfg;
  cfg.k = 16;
  cfg.n = 2;
  return KAryNCube(cfg);
}

TrafficConfig traffic_cfg(TrafficKind kind) {
  TrafficConfig cfg;
  cfg.pattern = kind;
  return cfg;
}

TEST(Traffic, UniformNeverPicksTheSource) {
  const KAryNCube topo = torus16x16();
  const auto pattern =
      make_traffic(TrafficKind::Uniform, topo, traffic_cfg(TrafficKind::Uniform));
  Pcg32 rng(1);
  std::map<NodeId, int> counts;
  for (int i = 0; i < 20000; ++i) {
    const NodeId dst = pattern->destination(77, rng);
    ASSERT_NE(dst, 77);
    ASSERT_GE(dst, 0);
    ASSERT_LT(dst, topo.num_nodes());
    ++counts[dst];
  }
  // All 255 other nodes hit.
  EXPECT_EQ(counts.size(), 255u);
  EXPECT_FALSE(pattern->deterministic());
}

TEST(Traffic, BitReversal) {
  const KAryNCube topo = torus16x16();  // 256 nodes = 8 bits
  const auto pattern = make_traffic(TrafficKind::BitReversal, topo,
                                    traffic_cfg(TrafficKind::BitReversal));
  Pcg32 rng(1);
  // 0b00000001 -> 0b10000000
  EXPECT_EQ(pattern->destination(1, rng), 128);
  // 0b00010011 (19) -> 0b11001000 (200)
  EXPECT_EQ(pattern->destination(19, rng), 200);
  // Palindromic addresses map to themselves -> no traffic.
  EXPECT_EQ(pattern->destination(0, rng), kInvalidNode);
  EXPECT_EQ(pattern->destination(255, rng), kInvalidNode);
  EXPECT_TRUE(pattern->deterministic());
}

TEST(Traffic, BitReversalIsAnInvolution) {
  const KAryNCube topo = torus16x16();
  const auto pattern = make_traffic(TrafficKind::BitReversal, topo,
                                    traffic_cfg(TrafficKind::BitReversal));
  Pcg32 rng(1);
  for (NodeId src = 0; src < topo.num_nodes(); ++src) {
    const NodeId dst = pattern->destination(src, rng);
    if (dst == kInvalidNode) continue;
    EXPECT_EQ(pattern->destination(dst, rng), src);
  }
}

TEST(Traffic, MatrixTranspose) {
  const KAryNCube topo = torus16x16();
  const auto pattern = make_traffic(TrafficKind::Transpose, topo,
                                    traffic_cfg(TrafficKind::Transpose));
  Pcg32 rng(1);
  // (x, y) -> (y, x): node 0x4A = (10, 4) -> 0xA4 = (4, 10).
  EXPECT_EQ(pattern->destination(0x4A, rng), 0xA4);
  // Diagonal maps to itself.
  EXPECT_EQ(pattern->destination(0x55, rng), kInvalidNode);
}

TEST(Traffic, PerfectShuffleRotatesLeft) {
  const KAryNCube topo = torus16x16();
  const auto pattern = make_traffic(TrafficKind::PerfectShuffle, topo,
                                    traffic_cfg(TrafficKind::PerfectShuffle));
  Pcg32 rng(1);
  // 0b01000001 (65) -> 0b10000010 (130)
  EXPECT_EQ(pattern->destination(65, rng), 130);
  // 0b10000000 (128) -> 0b00000001 (1)
  EXPECT_EQ(pattern->destination(128, rng), 1);
  EXPECT_EQ(pattern->destination(0, rng), kInvalidNode);    // fixed point
  EXPECT_EQ(pattern->destination(255, rng), kInvalidNode);  // fixed point
}

TEST(Traffic, BitPermutationsRequirePowerOfTwo) {
  TopologyConfig cfg;
  cfg.k = 6;
  cfg.n = 2;  // 36 nodes
  const KAryNCube topo(cfg);
  EXPECT_THROW(make_traffic(TrafficKind::BitReversal, topo,
                            traffic_cfg(TrafficKind::BitReversal)),
               std::invalid_argument);
}

TEST(Traffic, HotSpotConcentratesTraffic) {
  const KAryNCube topo = torus16x16();
  TrafficConfig cfg = traffic_cfg(TrafficKind::HotSpot);
  cfg.hotspot_nodes = 4;
  cfg.hotspot_fraction = 0.5;
  const auto pattern = make_traffic(TrafficKind::HotSpot, topo, cfg);
  Pcg32 rng(3);
  std::map<NodeId, int> counts;
  constexpr int kSamples = 40000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[pattern->destination(17, rng)];
  }
  // The four hot nodes (0, 64, 128, 192) absorb ~50% plus background.
  const double hot_share =
      static_cast<double>(counts[0] + counts[64] + counts[128] + counts[192]) /
      kSamples;
  EXPECT_GT(hot_share, 0.45);
  EXPECT_LT(hot_share, 0.60);
}

TEST(Traffic, HotSpotValidatesParameters) {
  const KAryNCube topo = torus16x16();
  TrafficConfig cfg = traffic_cfg(TrafficKind::HotSpot);
  cfg.hotspot_nodes = 0;
  EXPECT_THROW(make_traffic(TrafficKind::HotSpot, topo, cfg),
               std::invalid_argument);
}

TEST(Traffic, TornadoGoesHalfwayInEveryDimension) {
  const KAryNCube topo = torus16x16();
  const auto pattern = make_traffic(TrafficKind::Tornado, topo,
                                    traffic_cfg(TrafficKind::Tornado));
  Pcg32 rng(1);
  const NodeId src = topo.coordinates().pack({3, 5});
  const NodeId dst = pattern->destination(src, rng);
  EXPECT_EQ(topo.coordinates().coordinate(dst, 0), (3 + 7) % 16);
  EXPECT_EQ(topo.coordinates().coordinate(dst, 1), (5 + 7) % 16);
}

TEST(Traffic, NearestNeighborStaysAdjacent) {
  const KAryNCube topo = torus16x16();
  const auto pattern = make_traffic(TrafficKind::NearestNeighbor, topo,
                                    traffic_cfg(TrafficKind::NearestNeighbor));
  Pcg32 rng(4);
  for (int i = 0; i < 500; ++i) {
    const NodeId dst = pattern->destination(100, rng);
    ASSERT_NE(dst, kInvalidNode);
    EXPECT_EQ(topo.min_distance(100, dst), 1);
  }
}

TEST(Traffic, AveragePatternDistanceUniformMatchesTopology) {
  const KAryNCube topo = torus16x16();
  const auto pattern =
      make_traffic(TrafficKind::Uniform, topo, traffic_cfg(TrafficKind::Uniform));
  const double avg = average_pattern_distance(topo, *pattern, 1);
  EXPECT_NEAR(avg, topo.average_distance(), 0.1);
}

TEST(Traffic, AveragePatternDistanceExactForPermutations) {
  const KAryNCube topo = torus16x16();
  const auto pattern = make_traffic(TrafficKind::Tornado, topo,
                                    traffic_cfg(TrafficKind::Tornado));
  // Tornado: 7 hops in each of 2 dimensions from every source.
  EXPECT_DOUBLE_EQ(average_pattern_distance(topo, *pattern, 1), 14.0);
}

TEST(Traffic, HybridMixesTwoPatterns) {
  const KAryNCube topo = torus16x16();
  TrafficConfig cfg = traffic_cfg(TrafficKind::Tornado);
  cfg.hybrid_fraction = 0.5;
  cfg.hybrid_with = TrafficKind::Transpose;
  const auto pattern = make_traffic(TrafficKind::Tornado, topo, cfg);
  EXPECT_EQ(pattern->name(), "Hybrid");
  EXPECT_FALSE(pattern->deterministic());
  Pcg32 rng(8);
  const NodeId src = topo.coordinates().pack({3, 5});
  const NodeId tornado_dst = topo.coordinates().pack({10, 12});
  const NodeId transpose_dst = topo.coordinates().pack({5, 3});
  int tornado = 0;
  int transpose = 0;
  constexpr int kSamples = 4000;
  for (int i = 0; i < kSamples; ++i) {
    const NodeId dst = pattern->destination(src, rng);
    if (dst == tornado_dst) ++tornado;
    if (dst == transpose_dst) ++transpose;
  }
  EXPECT_EQ(tornado + transpose, kSamples);
  EXPECT_NEAR(static_cast<double>(transpose) / kSamples, 0.5, 0.05);
}

TEST(Traffic, HybridZeroFractionIsPrimaryOnly) {
  const KAryNCube topo = torus16x16();
  TrafficConfig cfg = traffic_cfg(TrafficKind::Tornado);
  cfg.hybrid_fraction = 0.0;
  const auto pattern = make_traffic(TrafficKind::Tornado, topo, cfg);
  EXPECT_EQ(pattern->name(), "Tornado");
}

TEST(Traffic, HybridRejectsBadFraction) {
  const KAryNCube topo = torus16x16();
  TrafficConfig cfg = traffic_cfg(TrafficKind::Uniform);
  cfg.hybrid_fraction = 1.5;
  EXPECT_THROW(make_traffic(TrafficKind::Uniform, topo, cfg),
               std::invalid_argument);
  cfg.hybrid_fraction = -0.1;
  EXPECT_THROW(make_traffic(TrafficKind::Uniform, topo, cfg),
               std::invalid_argument);
}

TEST(Traffic, HybridRejectsSecondaryThatGeneratesNoTraffic) {
  // Tornado's "nearly half-way around" hop is zero on a radix-2 torus, so
  // every source maps to itself; the hybrid must fail at construction, not
  // silently never mix.
  TopologyConfig tc;
  tc.k = 2;
  tc.n = 2;
  const KAryNCube topo(tc);
  TrafficConfig cfg = traffic_cfg(TrafficKind::Uniform);
  cfg.hybrid_fraction = 0.5;
  cfg.hybrid_with = TrafficKind::Tornado;
  EXPECT_THROW(make_traffic(TrafficKind::Uniform, topo, cfg),
               std::invalid_argument);
}

TEST(Traffic, HybridTornadoSecondaryWorksOffTorus) {
  // Tornado generalizes to arbitrary graphs (fixed far destination), so the
  // eager no-traffic probe must pass on a full mesh.
  const GraphTopology topo(full_mesh_spec(8));
  TrafficConfig cfg = traffic_cfg(TrafficKind::Uniform);
  cfg.hybrid_fraction = 0.5;
  cfg.hybrid_with = TrafficKind::Tornado;
  const auto pattern = make_traffic(TrafficKind::Uniform, topo, cfg);
  EXPECT_EQ(pattern->name(), "Hybrid");
  Pcg32 rng(3);
  for (int i = 0; i < 100; ++i) {
    const NodeId dst = pattern->destination(2, rng);
    ASSERT_NE(dst, kInvalidNode);
    ASSERT_NE(dst, 2);
  }
}

TEST(Traffic, NamesAreStable) {
  EXPECT_EQ(to_string(TrafficKind::Uniform), "Uniform");
  EXPECT_EQ(to_string(TrafficKind::BitReversal), "BitReversal");
  EXPECT_EQ(to_string(TrafficKind::Transpose), "Transpose");
  EXPECT_EQ(to_string(TrafficKind::PerfectShuffle), "PerfectShuffle");
  EXPECT_EQ(to_string(TrafficKind::HotSpot), "HotSpot");
  EXPECT_EQ(to_string(TrafficKind::Tornado), "Tornado");
  EXPECT_EQ(to_string(TrafficKind::NearestNeighbor), "NearestNeighbor");
}

}  // namespace
}  // namespace flexnet
