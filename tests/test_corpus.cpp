// Replays the committed deadlock corpus (tests/corpus/*.snap): every capture
// must decode, restore, and re-produce the recorded knot — same canonical
// CWG hash, same deadlock/resource set sizes — when detection is re-run on
// the restored network. This pins the snapshot format AND the detector's
// verdict against regressions.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "snapshot/corpus.hpp"
#include "snapshot/snapshot.hpp"

#ifndef FLEXNET_CORPUS_DIR
#error "FLEXNET_CORPUS_DIR must point at the committed tests/corpus directory"
#endif

namespace flexnet {
namespace {

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(FLEXNET_CORPUS_DIR)) {
    if (entry.path().extension() == ".snap") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(CommittedCorpus, HoldsAtLeastThreeCaptures) {
  EXPECT_GE(corpus_files().size(), 3u);
}

TEST(CommittedCorpus, EveryCaptureReplaysWithMatchingVerdict) {
  const std::vector<std::string> files = corpus_files();
  ASSERT_FALSE(files.empty());
  for (const std::string& path : files) {
    SCOPED_TRACE(path);
    const Snapshot snap = read_snapshot_file(path);
    EXPECT_EQ(snap.meta.kind, SnapshotKind::DeadlockCapture);
    EXPECT_GT(snap.meta.deadlock_set_size, 0);
    EXPECT_GE(snap.meta.resource_set_size, snap.meta.knot_size);
    const ReplayResult replay = replay_capture(snap);
    EXPECT_TRUE(replay.knot_found) << "no knot in restored network";
    EXPECT_TRUE(replay.matches) << replay.detail;
    EXPECT_EQ(replay.cwg_hash, snap.meta.cwg_hash);
    EXPECT_EQ(replay.deadlock_set_size, snap.meta.deadlock_set_size);
    EXPECT_EQ(replay.resource_set_size, snap.meta.resource_set_size);
  }
}

}  // namespace
}  // namespace flexnet
