#include "routing/tfar.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "routing/routing.hpp"
#include "routing/selection.hpp"
#include "sim/network.hpp"
#include "topo/torus.hpp"

namespace flexnet {
namespace {

class TfarTest : public ::testing::Test {
 protected:
  TfarTest() {
    cfg_.topology.k = 8;
    cfg_.topology.n = 2;
    cfg_.routing = RoutingKind::TFAR;
    net_ = std::make_unique<Network>(cfg_, NetworkDeps{nullptr, make_routing(cfg_),
                                 make_selection(cfg_.selection)});
  }

  Message msg_to(NodeId src, NodeId dst, int misroutes = 0) const {
    Message m;
    m.id = 0;
    m.src = src;
    m.dst = dst;
    m.length = 8;
    m.misroutes = misroutes;
    return m;
  }

  VcId injection_vc(NodeId node) const {
    return net_->phys(net_->injection_channel(node)).first_vc;
  }

  SimConfig cfg_;
  std::unique_ptr<Network> net_;
};

TEST_F(TfarTest, OffersEveryMinimalDirection) {
  TfarRouting tfar;
  const NodeId src = torus_topology(net_->topology()).coordinates().pack({0, 0});
  const NodeId dst = torus_topology(net_->topology()).coordinates().pack({2, 6});  // +2, -2
  std::vector<ChannelId> out;
  tfar.candidate_channels(*net_, msg_to(src, dst), src, injection_vc(src), out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(net_->phys(out[0]).dim, 0);
  EXPECT_EQ(net_->phys(out[0]).dir, +1);
  EXPECT_EQ(net_->phys(out[1]).dim, 1);
  EXPECT_EQ(net_->phys(out[1]).dir, -1);
}

TEST_F(TfarTest, TieDistanceOffersBothDirections) {
  TfarRouting tfar;
  const NodeId src = torus_topology(net_->topology()).coordinates().pack({0, 0});
  const NodeId dst = torus_topology(net_->topology()).coordinates().pack({4, 4});  // k/2 both
  std::vector<ChannelId> out;
  tfar.candidate_channels(*net_, msg_to(src, dst), src, injection_vc(src), out);
  EXPECT_EQ(out.size(), 4u);  // both directions in both dimensions
}

TEST_F(TfarTest, SingleDimensionLeftMeansOneCandidate) {
  TfarRouting tfar;
  const NodeId here = torus_topology(net_->topology()).coordinates().pack({2, 3});
  const NodeId dst = torus_topology(net_->topology()).coordinates().pack({2, 5});
  std::vector<ChannelId> out;
  tfar.candidate_channels(*net_, msg_to(0, dst), here, injection_vc(here), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(net_->phys(out[0]).dim, 1);
  EXPECT_EQ(net_->phys(out[0]).dir, +1);
}

TEST_F(TfarTest, NoMisroutingByDefault) {
  TfarRouting tfar(0);
  const NodeId src = 0;
  std::vector<ChannelId> out;
  tfar.candidate_channels(*net_, msg_to(src, 1), src, injection_vc(src), out);
  EXPECT_EQ(out.size(), 1u);  // only the single minimal channel
}

TEST_F(TfarTest, MisrouteBudgetAddsNonMinimalCandidates) {
  TfarRouting tfar(2);
  const NodeId src = 0;
  std::vector<ChannelId> out;
  tfar.candidate_channels(*net_, msg_to(src, 1, /*misroutes=*/0), src,
                          injection_vc(src), out);
  // 1 minimal + 3 non-minimal (4 outgoing channels, none excluded for a
  // header still at its injection channel).
  EXPECT_EQ(out.size(), 4u);
  // Minimal candidate listed first.
  EXPECT_EQ(net_->phys(out[0]).dim, 0);
  EXPECT_EQ(net_->phys(out[0]).dir, +1);
}

TEST_F(TfarTest, MisrouteBudgetExhaustedFallsBackToMinimal) {
  TfarRouting tfar(2);
  const NodeId src = 0;
  std::vector<ChannelId> out;
  tfar.candidate_channels(*net_, msg_to(src, 1, /*misroutes=*/2), src,
                          injection_vc(src), out);
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(TfarTest, MisrouteExcludesImmediateUturn) {
  TfarRouting tfar(4);
  // Header sits in the VC of the channel arriving at node 1 from node 0
  // (dim 0, dir +1); the reverse channel (1 -> 0) must not be offered.
  const ChannelId in_ch = torus_topology(net_->topology()).out_channel(0, 0, +1);
  const VcId in_vc = net_->phys(in_ch).first_vc;
  const NodeId here = 1;
  std::vector<ChannelId> out;
  tfar.candidate_channels(*net_, msg_to(0, 2), here, in_vc, out);
  const ChannelId reverse = torus_topology(net_->topology()).out_channel(1, 0, -1);
  EXPECT_TRUE(std::find(out.begin(), out.end(), reverse) == out.end());
  EXPECT_EQ(out.size(), 3u);  // 4 outgoing - reverse (minimal one included)
}

TEST_F(TfarTest, MisroutedMessagesStillDeliver) {
  SimConfig cfg = cfg_;
  cfg.max_misroutes = 3;
  Network net(cfg, NetworkDeps{nullptr, make_routing(cfg),
                                 make_selection(cfg.selection)});
  for (NodeId n = 0; n < 16; ++n) {
    net.enqueue_message(n, (n + 21) % 64, 8);
  }
  int steps = 0;
  while (net.counters().delivered < 16) {
    ASSERT_LT(++steps, 3000);
    net.step();
    if (steps % 50 == 0) net.check_invariants();
  }
  // Hops may exceed the minimal distance by at most 2x the misroute budget
  // (each misroute adds one hop away plus one back).
  for (std::size_t id = 0; id < net.num_messages(); ++id) {
    const Message& msg = net.message(static_cast<MessageId>(id));
    EXPECT_LE(msg.misroutes, 3);
    EXPECT_GE(msg.hops, net.topology().min_distance(msg.src, msg.dst));
    EXPECT_LE(msg.hops, net.topology().min_distance(msg.src, msg.dst) + 6);
  }
}

TEST_F(TfarTest, UnrestrictedAndNotDeadlockFree) {
  TfarRouting tfar;
  EXPECT_FALSE(tfar.deadlock_free());
  EXPECT_TRUE(tfar.vc_allowed(*net_, msg_to(0, 1), 0, 0, injection_vc(0)));
}

}  // namespace
}  // namespace flexnet
