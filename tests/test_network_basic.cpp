#include "sim/network.hpp"
#include "topo/torus.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "routing/routing.hpp"
#include "routing/selection.hpp"

namespace flexnet {
namespace {

std::unique_ptr<Network> make_network(SimConfig cfg) {
  return std::make_unique<Network>(cfg, NetworkDeps{nullptr, make_routing(cfg),
                                 make_selection(cfg.selection)});
}

SimConfig small_config() {
  SimConfig cfg;
  cfg.topology.k = 4;
  cfg.topology.n = 2;
  cfg.message_length = 8;
  cfg.routing = RoutingKind::DOR;
  return cfg;
}

TEST(NetworkBasic, ConstructionBuildsAllChannels) {
  const auto net = make_network(small_config());
  // 16 nodes x 2 dims x 2 dirs network channels + 16 injection + 16 ejection.
  EXPECT_EQ(net->num_network_channels(), 64u);
  EXPECT_EQ(net->num_channels(), 64u + 16 + 16);
  EXPECT_EQ(net->num_vcs(), 64u + 16 + 16);  // 1 VC everywhere

  EXPECT_EQ(net->phys(net->injection_channel(3)).kind, ChannelKind::Injection);
  EXPECT_EQ(net->phys(net->ejection_channel(3)).kind, ChannelKind::Ejection);
  EXPECT_EQ(net->phys(net->injection_channel(3)).src, 3);
}

TEST(NetworkBasic, VcTableMatchesChannelConfig) {
  SimConfig cfg = small_config();
  cfg.vcs = 3;
  cfg.injection_vcs = 2;
  cfg.ejection_vcs = 1;
  const auto net = make_network(cfg);
  EXPECT_EQ(net->num_vcs(), 64u * 3 + 16 * 2 + 16 * 1);
  const PhysChannel& pc = net->phys(0);
  EXPECT_EQ(pc.num_vcs, 3);
  for (int i = 0; i < pc.num_vcs; ++i) {
    const VcState& vc = net->vc(pc.first_vc + i);
    EXPECT_EQ(vc.channel, pc.id);
    EXPECT_EQ(vc.index, i);
    EXPECT_TRUE(vc.is_free());
    EXPECT_EQ(vc.buffer.capacity(), cfg.buffer_depth);
  }
}

TEST(NetworkBasic, SingleMessageDeliveredWithMinimalHops) {
  const auto net = make_network(small_config());
  const NodeId src = 0;
  const NodeId dst = torus_topology(net->topology()).coordinates().pack({2, 1});
  const MessageId id = net->enqueue_message(src, dst, 8);
  EXPECT_EQ(net->counters().generated, 1);

  for (int i = 0; i < 200 && net->counters().delivered == 0; ++i) {
    net->step();
    net->check_invariants();
  }
  const Message& msg = net->message(id);
  EXPECT_EQ(msg.status, MessageStatus::Delivered);
  EXPECT_EQ(msg.hops, net->topology().min_distance(src, dst));
  EXPECT_EQ(msg.flits_delivered, 8);
  EXPECT_EQ(net->counters().flits_delivered, 8);
  EXPECT_TRUE(msg.held.empty());
  EXPECT_TRUE(net->active_messages().empty());
  // All VCs released.
  for (std::size_t v = 0; v < net->num_vcs(); ++v) {
    EXPECT_TRUE(net->vc(static_cast<VcId>(v)).is_free());
  }
}

TEST(NetworkBasic, UncontendedLatencyIsPipelineDepth) {
  // One hop: inject (1 cycle/flit), route, transmit, eject. The tail flit of
  // an L-flit message needs L injection cycles, then the per-hop pipeline.
  const auto net = make_network(small_config());
  const NodeId dst = torus_topology(net->topology()).coordinates().pack({1, 0});
  const MessageId id = net->enqueue_message(0, dst, 8);
  while (net->message(id).status != MessageStatus::Delivered) {
    ASSERT_LT(net->now(), 100);
    net->step();
  }
  const Cycle latency = net->message(id).latency();
  // Lower bound: length + hops (wormhole pipeline); upper bound: generous.
  EXPECT_GE(latency, 8 + 1);
  EXPECT_LE(latency, 8 + 8);
}

TEST(NetworkBasic, SingleFlitMessage) {
  const auto net = make_network(small_config());
  const MessageId id = net->enqueue_message(0, 5, 1);
  for (int i = 0; i < 50 && net->message(id).status != MessageStatus::Delivered;
       ++i) {
    net->step();
    net->check_invariants();
  }
  EXPECT_EQ(net->message(id).status, MessageStatus::Delivered);
}

TEST(NetworkBasic, MessagesFromSameSourceSerializeThroughInjection) {
  const auto net = make_network(small_config());
  const MessageId a = net->enqueue_message(0, 2, 8);
  const MessageId b = net->enqueue_message(0, 2, 8);
  EXPECT_EQ(net->queued_message_count(), 2);
  EXPECT_EQ(net->source_queue_length(0), 2u);
  int steps = 0;
  while (net->counters().delivered < 2) {
    ASSERT_LT(++steps, 500);
    net->step();
  }
  // FIFO: the first queued message finishes first.
  EXPECT_LT(net->message(a).finished, net->message(b).finished);
}

TEST(NetworkBasic, RejectsInvalidMessages) {
  const auto net = make_network(small_config());
  EXPECT_THROW(net->enqueue_message(3, 3, 8), std::invalid_argument);
  EXPECT_THROW(net->enqueue_message(0, 1, 0), std::invalid_argument);
}

TEST(NetworkBasic, CapacityFormula) {
  SimConfig cfg;
  cfg.topology.k = 16;
  cfg.topology.n = 2;
  cfg.routing = RoutingKind::DOR;
  const auto net = make_network(cfg);
  // 1024 channels / (256 nodes x avg distance).
  const double avg = net->topology().average_distance();
  EXPECT_NEAR(net->capacity_flits_per_node(avg), 1024.0 / (256.0 * avg), 1e-12);
}

TEST(NetworkBasic, RemoveMessageFreesEverything) {
  const auto net = make_network(small_config());
  const MessageId id = net->enqueue_message(0, 10, 8);
  for (int i = 0; i < 4; ++i) net->step();  // partially in flight
  ASSERT_EQ(net->message(id).status, MessageStatus::InFlight);
  ASSERT_FALSE(net->message(id).held.empty());

  net->remove_message(id);
  EXPECT_EQ(net->message(id).status, MessageStatus::Recovered);
  EXPECT_EQ(net->counters().recovered, 1);
  EXPECT_TRUE(net->active_messages().empty());
  for (std::size_t v = 0; v < net->num_vcs(); ++v) {
    EXPECT_TRUE(net->vc(static_cast<VcId>(v)).is_free());
  }
  net->check_invariants();
  // Cannot remove twice.
  EXPECT_THROW(net->remove_message(id), std::invalid_argument);
}

TEST(NetworkBasic, RequiresPolicies) {
  SimConfig cfg = small_config();
  EXPECT_THROW(
      Network(cfg, NetworkDeps{nullptr, nullptr, make_selection(cfg.selection)}),
      std::invalid_argument);
  EXPECT_THROW(Network(cfg, NetworkDeps{nullptr, make_routing(cfg), nullptr}),
               std::invalid_argument);
}

}  // namespace
}  // namespace flexnet
