#include "exp/report.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

namespace flexnet {
namespace {

ExperimentResult result_with(double load, double accepted, bool saturated) {
  ExperimentResult r;
  r.load = load;
  r.accepted_ratio = accepted;
  r.saturated = saturated;
  return r;
}

std::vector<SeriesColumn> ratio_column() {
  return {{"ratio",
           [](const ExperimentResult& r) { return r.accepted_ratio; }, 2}};
}

TEST(PrintLoadSeries, MarksFirstSaturatedRowOnly) {
  const std::vector<ExperimentResult> results{
      result_with(0.1, 1.0, false),
      result_with(0.2, 0.5, true),
      result_with(0.3, 0.25, true),
  };
  std::ostringstream out;
  print_load_series(out, "ratio", results, ratio_column());
  EXPECT_EQ(out.str(),
            "== ratio ==\n"
            "load   ratio  sat\n"
            "-----------------\n"
            "0.100  1.00   \n"
            "0.200  0.50   *\n"
            "0.300  0.25   +\n");
}

TEST(PrintLoadSeries, NoSaturationAndNanValues) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<ExperimentResult> results{
      result_with(0.1, nan, false),
      result_with(0.2, nan, false),
  };
  std::ostringstream out;
  print_load_series(out, "ratio", results, ratio_column());
  const std::string text = out.str();
  // NaN cells print as '-' and no row earns the saturation marker.
  EXPECT_EQ(text,
            "== ratio ==\n"
            "load   ratio  sat\n"
            "-----------------\n"
            "0.100  -      \n"
            "0.200  -      \n");
  EXPECT_EQ(text.find('*'), std::string::npos);
}

TEST(WriteResultsCsv, FixedColumnSchema) {
  std::ostringstream out;
  write_results_csv(out, std::vector<ExperimentResult>{}, "empty");
  EXPECT_EQ(out.str(),
            "label,load,capacity,offered,avg_distance,throughput,"
            "norm_throughput,accepted_ratio,saturated,generated,delivered,"
            "recovered,latency,hops,blocked_mean,blocked_frac_mean,"
            "in_network_mean,queued_mean,deadlocks,norm_deadlocks,"
            "deadlock_set_mean,deadlock_set_max,resource_set_mean,"
            "resource_set_max,knot_density_mean,knot_density_max,"
            "dependent_mean,single_cycle,multi_cycle,cycles_mean,cycles_max,"
            "cycles_capped\n");
}

TEST(WriteResultsCsv, GoldenRowForKnownResult) {
  ExperimentResult r;
  r.load = 0.25;
  r.capacity_flits_per_node = 0.5;
  r.offered_flit_rate = 0.125;
  r.avg_distance = 2.0;
  r.normalized_throughput = 0.2;
  r.accepted_ratio = 0.8;
  r.saturated = true;
  r.window.generated = 100;
  r.window.delivered = 80;
  r.window.recovered = 2;
  r.window.throughput_flits_per_node = 0.1;
  r.window.avg_latency = 55.5;
  r.window.avg_hops = 2.25;
  r.window.deadlocks = 3;
  r.window.normalized_deadlocks = 3.0 / 82.0;
  r.window.deadlock_set_size.add(4.0);
  r.window.deadlock_set_size.add(6.0);

  std::ostringstream out;
  write_results_csv(out, std::vector<ExperimentResult>{r}, "golden");
  std::istringstream in(out.str());
  std::string header;
  std::string row;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, row));
  EXPECT_EQ(row,
            "golden,0.2500,0.500000,0.125000,2.0000,0.100000,0.2000,0.8000,1,"
            "100,80,2,55.50,2.25,0.00,0.0000,0.00,0.00,3,0.036585,"
            "5.00,6,0.00,0,0.00,0,0.00,0,0,0.0,0,0");
}

TEST(WriteResultsCsv, RowCountMatchesResults) {
  const std::vector<ExperimentResult> results{
      result_with(0.1, 1.0, false), result_with(0.2, 0.9, false)};
  std::ostringstream out;
  write_results_csv(out, results, "two");
  std::istringstream in(out.str());
  std::size_t lines = 0;
  for (std::string line; std::getline(in, line);) ++lines;
  EXPECT_EQ(lines, 3u);  // header + one row per result
}

}  // namespace
}  // namespace flexnet
