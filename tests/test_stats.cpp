#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace flexnet {
namespace {

TEST(RunningStat, EmptyIsZeroed) {
  RunningStat s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, SingleSampleHasZeroVariance) {
  RunningStat s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStat, MergeMatchesSequential) {
  RunningStat all;
  RunningStat left;
  RunningStat right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStat, MergeWithEmptySides) {
  RunningStat a;
  RunningStat empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStat b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStat, ResetClearsState) {
  RunningStat s;
  s.add(5.0);
  s.reset();
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, CountsAndClampsOverflow) {
  Histogram h(4);  // buckets 0..3
  h.add(0);
  h.add(2);
  h.add(3);
  h.add(99);  // clamps into bucket 3
  h.add(-5);  // clamps into bucket 0
  EXPECT_EQ(h.total(), 5);
  EXPECT_EQ(h.bucket(0), 2);
  EXPECT_EQ(h.bucket(1), 0);
  EXPECT_EQ(h.bucket(2), 1);
  EXPECT_EQ(h.bucket(3), 2);
}

TEST(Histogram, Quantiles) {
  Histogram h(10);
  for (int i = 0; i < 9; ++i) h.add(1);
  h.add(8);
  EXPECT_EQ(h.quantile(0.5), 1);
  EXPECT_EQ(h.quantile(0.9), 1);
  EXPECT_EQ(h.quantile(1.0), 8);
}

TEST(Histogram, QuantileOnEmptyIsZero) {
  Histogram h(4);
  EXPECT_EQ(h.quantile(0.0), 0);
  EXPECT_EQ(h.quantile(0.5), 0);
  EXPECT_EQ(h.quantile(1.0), 0);
}

TEST(Histogram, QuantileAtBounds) {
  Histogram h(10);
  h.add(2);
  h.add(5);
  h.add(7);
  // q = 0 is trivially satisfied by value 0; q = 1 is the largest sample.
  EXPECT_EQ(h.quantile(0.0), 0);
  EXPECT_EQ(h.quantile(1.0), 7);
}

TEST(Histogram, MergeGrowsAndAccumulates) {
  Histogram a(2);
  Histogram b(6);
  a.add(1);
  b.add(5);
  b.add(1);
  a.merge(b);
  EXPECT_EQ(a.total(), 3);
  EXPECT_EQ(a.size(), 6u);
  EXPECT_EQ(a.bucket(1), 2);
  EXPECT_EQ(a.bucket(5), 1);
}

TEST(Histogram, MergeSmallerIntoLargerKeepsShape) {
  Histogram a(6);
  Histogram b(2);
  a.add(5);
  b.add(1);
  b.add(1);
  a.merge(b);
  EXPECT_EQ(a.size(), 6u);
  EXPECT_EQ(a.total(), 3);
  EXPECT_EQ(a.bucket(1), 2);
  EXPECT_EQ(a.bucket(5), 1);
}

TEST(Histogram, MergeWithEmptyEitherSide) {
  Histogram a(4);
  Histogram empty(4);
  a.add(2);
  a.merge(empty);
  EXPECT_EQ(a.total(), 1);
  EXPECT_EQ(a.bucket(2), 1);

  Histogram b(4);
  b.merge(a);
  EXPECT_EQ(b.total(), 1);
  EXPECT_EQ(b.bucket(2), 1);
}

}  // namespace
}  // namespace flexnet
