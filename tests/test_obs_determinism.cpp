// Metrics-stream determinism: the flexnet-metrics-v1 NDJSON bytes must not
// depend on how the run was executed — sweep points produce byte-identical
// streams serial vs parallel, checkpointing does not perturb the stream, and
// a resumed run continues it bit-exactly (header + the post-checkpoint
// records of the uninterrupted run).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/sweep.hpp"
#include "util/json.hpp"

namespace flexnet {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

ExperimentConfig base_cfg() {
  ExperimentConfig cfg;
  cfg.sim.topology.k = 8;
  cfg.sim.topology.n = 2;
  cfg.sim.routing = RoutingKind::DOR;
  cfg.sim.seed = 11;
  cfg.run.warmup = 200;
  cfg.run.measure = 800;
  cfg.obs.interval = 100;
  return cfg;
}

TEST(ObsDeterminism, SweepStreamsAreByteIdenticalSerialVsParallel) {
  const std::string dir = ::testing::TempDir() + "flexnet_obs_sweep";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::vector<double> loads = {0.3, 0.6};

  ExperimentConfig serial = base_cfg();
  serial.obs.metrics_path = dir + "/serial.ndjson";
  ExperimentConfig parallel = base_cfg();
  parallel.obs.metrics_path = dir + "/parallel.ndjson";

  (void)sweep_loads(serial, loads, /*parallel=*/false);
  (void)sweep_loads(parallel, loads, /*parallel=*/true);

  for (std::size_t i = 0; i < loads.size(); ++i) {
    const std::string suffix = ".p" + std::to_string(i);
    const std::string a = read_file(dir + "/serial.ndjson" + suffix);
    const std::string b = read_file(dir + "/parallel.ndjson" + suffix);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "point " << i << " diverged";
  }
  std::filesystem::remove_all(dir);
}

TEST(ObsDeterminism, ResumeContinuesTheStreamBitExactly) {
  const std::string dir = ::testing::TempDir() + "flexnet_obs_resume";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // Uninterrupted reference run.
  ExperimentConfig full = base_cfg();
  full.traffic.load = 0.5;
  full.obs.metrics_path = dir + "/full.ndjson";
  (void)run_experiment(full);

  // Same run with mid-flight checkpoints: the stream must not change.
  ExperimentConfig ckpt = base_cfg();
  ckpt.traffic.load = 0.5;
  ckpt.obs.metrics_path = dir + "/ckpt.ndjson";
  ckpt.snapshot.checkpoint_every = 500;
  ckpt.snapshot.checkpoint_dir = dir;
  (void)run_experiment(ckpt);
  EXPECT_EQ(read_file(dir + "/full.ndjson"), read_file(dir + "/ckpt.ndjson"));

  // Resume from the mid-run checkpoint into a fresh stream.
  ExperimentConfig resume;
  resume.snapshot.resume_path = dir + "/ckpt-500.snap";
  resume.obs.metrics_path = dir + "/resumed.ndjson";
  resume.obs.interval = full.obs.interval;
  (void)run_experiment(resume);

  // Resumed stream = header + exactly the reference records after cycle 500
  // (the checkpoint carried sample cadence, histograms and watermarks), with
  // every line byte-identical — including the final summary record.
  const std::vector<std::string> ref = split_lines(read_file(dir + "/full.ndjson"));
  const std::vector<std::string> res =
      split_lines(read_file(dir + "/resumed.ndjson"));
  ASSERT_GE(ref.size(), 3u);
  ASSERT_GE(res.size(), 2u);
  EXPECT_EQ(res.front(), ref.front()) << "header diverged";

  std::vector<std::string> expected;
  expected.push_back(ref.front());
  for (std::size_t i = 1; i < ref.size(); ++i) {
    const JsonValue rec = JsonValue::parse(ref[i]);
    const JsonValue* final_flag = rec.find("final");
    const bool is_final = final_flag != nullptr && final_flag->boolean;
    if (is_final || rec.at("cycle").number > 500.0) expected.push_back(ref[i]);
  }
  EXPECT_EQ(res, expected);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace flexnet
