#include "topo/topology.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "topo/generators.hpp"
#include "topo/graph_topology.hpp"
#include "topo/torus.hpp"

namespace flexnet {
namespace {

TopologyConfig torus_cfg(int k, int n) {
  TopologyConfig cfg;
  cfg.k = k;
  cfg.n = n;
  return cfg;
}

TEST(Topology, CsrAdjacencyMatchesChannelList) {
  const GraphTopology topo(full_mesh_spec(6));
  std::size_t seen = 0;
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    ChannelId prev = -1;
    for (const ChannelId id : topo.out_channels(v)) {
      const ChannelDesc& ch = topo.channel(id);
      EXPECT_EQ(ch.src, v);
      EXPECT_EQ(ch.id, id);
      EXPECT_GT(id, prev);  // ascending within a node
      prev = id;
      ++seen;
    }
  }
  EXPECT_EQ(seen, topo.channels().size());
}

TEST(Topology, CanonicalOrderIsConstructionIndependent) {
  // Same links presented in a different order must produce the identical
  // canonical channel list (and therefore the identical content hash).
  GraphTopology::Spec fwd = random_irregular_spec(12, 3, 42);
  GraphTopology::Spec rev = fwd;
  std::reverse(rev.links.begin(), rev.links.end());
  const GraphTopology a(std::move(fwd));
  const GraphTopology b(std::move(rev));
  EXPECT_EQ(a.content_hash(), b.content_hash());
  ASSERT_EQ(a.channels().size(), b.channels().size());
  for (std::size_t i = 0; i < a.channels().size(); ++i) {
    EXPECT_EQ(a.channels()[i].src, b.channels()[i].src);
    EXPECT_EQ(a.channels()[i].dst, b.channels()[i].dst);
  }
}

TEST(Topology, ContentHashSeparatesTopologies) {
  const GraphTopology mesh8(full_mesh_spec(8));
  const GraphTopology mesh9(full_mesh_spec(9));
  const GraphTopology rand1(random_irregular_spec(16, 3, 1));
  const GraphTopology rand2(random_irregular_spec(16, 3, 2));
  std::set<std::uint64_t> hashes{mesh8.content_hash(), mesh9.content_hash(),
                                 rand1.content_hash(), rand2.content_hash()};
  EXPECT_EQ(hashes.size(), 4u);
}

TEST(Topology, FullMeshIsDiameterOne) {
  const GraphTopology topo(full_mesh_spec(8));
  EXPECT_EQ(topo.num_nodes(), 8);
  EXPECT_EQ(topo.channels().size(), 8u * 7u);
  EXPECT_DOUBLE_EQ(topo.average_distance(), 1.0);
  for (NodeId a = 0; a < 8; ++a) {
    for (NodeId b = 0; b < 8; ++b) {
      EXPECT_EQ(topo.min_distance(a, b), a == b ? 0 : 1);
    }
  }
}

TEST(Topology, DragonflyShape) {
  // a = 4 routers/group, h = 1 global link/router: g = a*h + 1 = 5 groups,
  // 20 nodes, each router has (a-1) local + h global = 4 outgoing links.
  const GraphTopology topo(dragonfly_spec(4, 1));
  EXPECT_EQ(topo.num_nodes(), 20);
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    EXPECT_EQ(topo.out_channels(v).size(), 4u);
  }
}

TEST(Topology, RandomIrregularIsDeterministicInSeed) {
  const GraphTopology a(random_irregular_spec(24, 3, 7));
  const GraphTopology b(random_irregular_spec(24, 3, 7));
  EXPECT_EQ(a.content_hash(), b.content_hash());
  // Strong connectivity: the all-pairs BFS never sees an unreachable pair
  // (GraphTopology would have thrown), so distances are positive.
  for (NodeId v = 1; v < a.num_nodes(); ++v) {
    EXPECT_GT(a.min_distance(0, v), 0);
    EXPECT_GT(a.min_distance(v, 0), 0);
  }
}

TEST(Topology, GraphRejectsMalformedSpecs) {
  GraphTopology::Spec self;
  self.nodes = 2;
  self.links = {{0, 1}, {1, 0}, {1, 1}};
  EXPECT_THROW(GraphTopology{std::move(self)}, std::invalid_argument);

  GraphTopology::Spec dup;
  dup.nodes = 2;
  dup.links = {{0, 1}, {1, 0}, {0, 1}};
  EXPECT_THROW(GraphTopology{std::move(dup)}, std::invalid_argument);

  GraphTopology::Spec dangling;
  dangling.nodes = 2;
  dangling.links = {{0, 1}, {1, 0}, {0, 5}};
  EXPECT_THROW(GraphTopology{std::move(dangling)}, std::invalid_argument);

  GraphTopology::Spec disconnected;  // two isolated bidirectional pairs
  disconnected.nodes = 4;
  disconnected.links = {{0, 1}, {1, 0}, {2, 3}, {3, 2}};
  EXPECT_THROW(GraphTopology{std::move(disconnected)}, std::invalid_argument);
}

TEST(Topology, TorusDowncastHelpers) {
  const KAryNCube torus(torus_cfg(4, 2));
  EXPECT_EQ(torus.as_torus(), &torus);
  EXPECT_EQ(&torus_topology(torus), &torus);

  const GraphTopology graph(full_mesh_spec(4));
  EXPECT_EQ(graph.as_torus(), nullptr);
  EXPECT_THROW((void)torus_topology(graph), std::logic_error);
}

TEST(Topology, TorusHopMinimalityMatchesDistancePredicate) {
  // KAryNCube overrides hop_is_minimal with the historical per-dimension
  // check; it must agree with the generic distance-decreasing default on
  // every (channel, destination) pair.
  for (const bool bidir : {true, false}) {
    TopologyConfig cfg = torus_cfg(5, 2);
    cfg.bidirectional = bidir;
    const KAryNCube topo(cfg);
    for (const ChannelDesc& ch : topo.channels()) {
      for (NodeId dst = 0; dst < topo.num_nodes(); ++dst) {
        const bool generic =
            topo.min_distance(ch.dst, dst) < topo.min_distance(ch.src, dst);
        EXPECT_EQ(topo.hop_is_minimal(ch, dst), generic)
            << "ch " << ch.src << "->" << ch.dst << " dst " << dst;
      }
    }
  }
}

}  // namespace
}  // namespace flexnet
