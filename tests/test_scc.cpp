#include "core/scc.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace flexnet {
namespace {

TEST(Scc, ChainIsAllSingletons) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const SccResult scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 4);
  for (const int s : scc.size) EXPECT_EQ(s, 1);
}

TEST(Scc, CycleIsOneComponent) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  const SccResult scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 1);
  EXPECT_EQ(scc.size[0], 3);
}

TEST(Scc, TwoCyclesWithBridge) {
  // 0<->1 -> 2<->3 : two components, edges respect reverse-topological ids.
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 2);
  const SccResult scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 2);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[2], scc.component[3]);
  EXPECT_NE(scc.component[0], scc.component[2]);
}

TEST(Scc, ComponentsAreReverseTopological) {
  // Tarjan emits components in reverse topological order: every cross edge
  // goes from a higher component id to a lower one. The knot finder relies
  // only on explicit out-edge checks, but this property documents the
  // numbering and guards against regressions.
  Digraph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);  // SCC A
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 3);  // SCC B
  g.add_edge(4, 5);  // singleton C
  const SccResult scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 3);
  for (int v = 0; v < g.num_vertices(); ++v) {
    for (const int w : g.out(v)) {
      EXPECT_GE(scc.component[v], scc.component[w]);
    }
  }
}

TEST(Scc, SelfLoopIsItsOwnComponent) {
  Digraph g(2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  const SccResult scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 2);
  EXPECT_EQ(scc.size[static_cast<std::size_t>(scc.component[0])], 1);
}

TEST(Scc, MembersListsComponentVertices) {
  Digraph g(5);
  g.add_edge(1, 3);
  g.add_edge(3, 1);
  const SccResult scc = strongly_connected_components(g);
  const int comp = scc.component[1];
  const std::vector<int> members = scc.members(comp);
  EXPECT_EQ(members, (std::vector<int>{1, 3}));
}

TEST(Scc, DisconnectedGraphCoversAllVertices) {
  Digraph g(100);
  for (int i = 0; i + 1 < 100; i += 2) {
    g.add_edge(i, i + 1);
    g.add_edge(i + 1, i);
  }
  const SccResult scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 50);
  std::set<int> assigned(scc.component.begin(), scc.component.end());
  EXPECT_EQ(assigned.size(), 50u);
}

TEST(Scc, LargeCycleUsesNoRecursion) {
  // 200k-vertex cycle: would overflow the stack with a recursive Tarjan.
  constexpr int kN = 200000;
  Digraph g(kN);
  for (int i = 0; i < kN; ++i) g.add_edge(i, (i + 1) % kN);
  const SccResult scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 1);
  EXPECT_EQ(scc.size[0], kN);
}

}  // namespace
}  // namespace flexnet
