// Timeout-based (presumed) deadlock detection vs the knot-based ground
// truth: the timeout must flag true deadlocks eventually, and its
// false-positive classification must separate congestion and dependent
// messages from real deadlock-set members.
#include "core/timeout.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "routing/routing.hpp"
#include "routing/selection.hpp"
#include "sim/network.hpp"

namespace flexnet {
namespace {

std::unique_ptr<Network> deadlocked_ring() {
  SimConfig cfg;
  cfg.topology.k = 4;
  cfg.topology.n = 1;
  cfg.topology.bidirectional = false;
  cfg.routing = RoutingKind::DOR;
  cfg.message_length = 8;
  auto net = std::make_unique<Network>(cfg, NetworkDeps{nullptr, make_routing(cfg),
                                 make_selection(cfg.selection)});
  for (NodeId n = 0; n < 4; ++n) net->enqueue_message(n, (n + 2) % 4, 8);
  for (int i = 0; i < 300; ++i) net->step();
  return net;
}

TEST(Timeout, FlagsNothingBeforeTheThreshold) {
  const auto net = deadlocked_ring();
  EXPECT_TRUE(presumed_deadlocked(*net, 100000).empty());
}

TEST(Timeout, EventuallyFlagsEveryDeadlockedMessage) {
  const auto net = deadlocked_ring();
  const auto presumed = presumed_deadlocked(*net, 100);
  EXPECT_EQ(presumed.size(), 4u);
}

TEST(Timeout, ClassifiesRingDeadlockAsAllTruePositives) {
  const auto net = deadlocked_ring();
  const TimeoutAccuracy acc = classify_timeout_detection(*net, 100);
  EXPECT_EQ(acc.presumed, 4);
  EXPECT_EQ(acc.true_positive, 4);
  EXPECT_EQ(acc.false_positive, 0);
  EXPECT_EQ(acc.dependent, 0);
  EXPECT_EQ(acc.actually_deadlocked, 4);
  EXPECT_EQ(acc.missed(), 0);
  EXPECT_DOUBLE_EQ(acc.false_positive_rate(), 0.0);
}

TEST(Timeout, HighThresholdMissesTheDeadlock) {
  const auto net = deadlocked_ring();
  const TimeoutAccuracy acc = classify_timeout_detection(*net, 100000);
  EXPECT_EQ(acc.presumed, 0);
  EXPECT_EQ(acc.actually_deadlocked, 4);
  EXPECT_EQ(acc.missed(), 4);
}

TEST(Timeout, CongestionWithoutDeadlockIsAllFalsePositives) {
  // A long blocker congests followers on a straight same-direction line
  // (no wrap crossing, so no cycle is possible among these flows) — an
  // aggressive timeout presumes deadlock where none can exist.
  SimConfig cfg;
  cfg.topology.k = 8;
  cfg.topology.n = 1;
  cfg.topology.wrap = true;
  cfg.routing = RoutingKind::DOR;
  cfg.message_length = 32;
  Network net(cfg, NetworkDeps{nullptr, make_routing(cfg),
                                 make_selection(cfg.selection)});
  net.enqueue_message(2, 3, 32);  // slow drain occupies 2->3
  net.enqueue_message(1, 3, 32);  // blocked behind it
  net.enqueue_message(0, 3, 32);  // blocked further back
  for (int i = 0; i < 30; ++i) net.step();

  const TimeoutAccuracy acc = classify_timeout_detection(net, 10);
  EXPECT_GT(acc.presumed, 0);
  EXPECT_EQ(acc.actually_deadlocked, 0);
  EXPECT_EQ(acc.true_positive, 0);
  EXPECT_EQ(acc.false_positive, acc.presumed);
  EXPECT_DOUBLE_EQ(acc.false_positive_rate(), 1.0);
}

TEST(Timeout, DependentMessagesAreClassifiedSeparately) {
  // Ring deadlock + one outside message blocked on a deadlocked channel:
  // the timeout flags it too, but removing it would not resolve anything.
  // Buffers hold a whole message here so the ring members release their
  // injection VCs and the late message can enter the network.
  SimConfig cfg;
  cfg.topology.k = 4;
  cfg.topology.n = 1;
  cfg.topology.bidirectional = false;
  cfg.routing = RoutingKind::DOR;
  cfg.message_length = 4;
  cfg.buffer_depth = 4;
  auto net = std::make_unique<Network>(cfg, NetworkDeps{nullptr, make_routing(cfg),
                                 make_selection(cfg.selection)});
  for (NodeId n = 0; n < 4; ++n) net->enqueue_message(n, (n + 2) % 4, 4);
  for (int i = 0; i < 300; ++i) net->step();
  // A message from node 0 wanting node 1 needs channel 0->1, which a
  // deadlock-set member owns.
  const MessageId late = net->enqueue_message(0, 1, 4);
  for (int i = 0; i < 300; ++i) net->step();
  ASSERT_TRUE(net->message(late).blocked);

  const TimeoutAccuracy acc = classify_timeout_detection(*net, 100);
  EXPECT_EQ(acc.true_positive, 4);
  EXPECT_EQ(acc.dependent, 1);
  EXPECT_EQ(acc.false_positive, 0);
}

}  // namespace
}  // namespace flexnet
